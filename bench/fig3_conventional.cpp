// Reproduces Figure 3: training and inference energy/time of HDC and ML
// algorithms on conventional devices (Raspberry Pi, desktop CPU, edge GPU),
// reported as the geometric mean over the eleven benchmarks.
//
// Expected shape (§3.3): (i) classical ML beats HDC on every conventional
// device, (ii) GENERIC encoding costs more than the simpler HDC encodings,
// (iii) the eGPU's bit-packed kernels claw back ~2 orders of magnitude for
// HDC but still trail the best conventional baseline (RF).
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "data/benchmarks.h"
#include "hwmodel/device.h"

using namespace generic;

namespace {

struct Algo {
  const char* label;
  bool is_hdc;
  ml::MlKind ml_kind;          // valid when !is_hdc
  double hdc_cost_factor = 1;  // GENERIC windows cost ~n x simpler encodings
};

}  // namespace

int main(int argc, char** argv) {
  bench::Flags(argc, argv).done();
  const std::vector<Algo> algos{
      {"rp", true, ml::MlKind::kMlp, 0.4},
      {"level-id", true, ml::MlKind::kMlp, 0.5},
      {"GENERIC", true, ml::MlKind::kMlp, 1.0},
      {"LR", false, ml::MlKind::kLogReg},
      {"KNN", false, ml::MlKind::kKnn},
      {"MLP", false, ml::MlKind::kMlp},
      {"SVM", false, ml::MlKind::kSvm},
      {"RF", false, ml::MlKind::kRandomForest},
      {"DNN", false, ml::MlKind::kDnn},
  };
  const std::vector<hw::Device> devices{hw::raspberry_pi(), hw::desktop_cpu(),
                                        hw::edge_gpu()};

  for (const bool training : {true, false}) {
    std::printf("Figure 3 (%s): geomean energy per input (mJ) / time (ms)\n",
                training ? "train" : "inference");
    std::printf("%-10s", "Algo");
    for (const auto& dev : devices)
      std::printf(" %12s", std::string(dev.name).c_str());
    std::printf("\n");
    bench::print_rule(10 + 13 * devices.size());

    for (const auto& algo : algos) {
      std::printf("%-10s", algo.label);
      for (const auto& dev : devices) {
        std::vector<double> energies, times;
        for (const auto& name : data::benchmark_names()) {
          const auto ds = data::make_benchmark(name);
          hw::Workload w;
          if (algo.is_hdc) {
            w = training ? hw::hdc_training(ds.num_features(), 4096, 3,
                                            ds.num_classes, 20)
                         : hw::hdc_inference(ds.num_features(), 4096, 3,
                                             ds.num_classes);
            // Simpler encodings process one hypervector per element instead
            // of n per window (§3.3 observation ii).
            w.simple_ops *= algo.hdc_cost_factor;
          } else {
            w = training ? hw::ml_training(algo.ml_kind, ds.num_features(),
                                           ds.num_classes, ds.train_size())
                         : hw::ml_inference(algo.ml_kind, ds.num_features(),
                                            ds.num_classes, ds.train_size());
          }
          energies.push_back(hw::energy_j(dev, w) * 1e3);  // mJ
          times.push_back(hw::time_s(dev, w) * 1e3);       // ms
        }
        std::printf(" %6.2e/%5.2e", geomean(energies), geomean(times));
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

  // Headline ratios the paper quotes in §3.3.
  const auto w_inf = hw::hdc_inference(120, 4096, 3, 9);
  const auto w_trn = hw::hdc_training(120, 4096, 3, 9, 20);
  const double e_gpu = hw::energy_j(hw::edge_gpu(), w_inf);
  std::printf("GENERIC inference: eGPU vs R-Pi energy %.0fx, time %.0fx\n",
              hw::energy_j(hw::raspberry_pi(), w_inf) / e_gpu,
              hw::time_s(hw::raspberry_pi(), w_inf) /
                  hw::time_s(hw::edge_gpu(), w_inf));
  std::printf("GENERIC inference: eGPU vs CPU  energy %.0fx, time %.0fx\n",
              hw::energy_j(hw::desktop_cpu(), w_inf) / e_gpu,
              hw::time_s(hw::desktop_cpu(), w_inf) /
                  hw::time_s(hw::edge_gpu(), w_inf));
  const double rf_inf = hw::energy_j(
      hw::desktop_cpu(), hw::ml_inference(ml::MlKind::kRandomForest, 120, 9, 1300));
  const double rf_trn = hw::energy_j(
      hw::desktop_cpu(), hw::ml_training(ml::MlKind::kRandomForest, 120, 9, 1300));
  std::printf(
      "HDC-on-eGPU vs RF-on-CPU: inference %.1fx, train %.1fx more energy\n",
      e_gpu / rf_inf, hw::energy_j(hw::edge_gpu(), w_trn) / rf_trn);
  return 0;
}
