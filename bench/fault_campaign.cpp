// Fault-injection campaign over a trained classifier (companion to
// fig6_voltage): sweeps fault kind x rate with N seeded Monte Carlo
// trials per cell and emits the accuracy-vs-rate surface as JSON
// (schema generic.fault_campaign.v1, docs/resilience.md) plus a
// human-readable table.
//
//   fault_campaign [--quick] [--dataset=FACE] [--bw=8] [--trials=5]
//                  [--seed=64023] [--degrade] [--out=campaign.json]
//                  [--threads=N] [--target=class|level|id_seed] [--remat]
//                  [--trace=out.json] [--metrics=out.json]
//
// The qualitative claim this reproduces: HDC accuracy degrades gracefully
// — monotonically, with no cliff — as the bit-error rate rises through
// 1e-3 (the voltage-over-scaling argument of §4.3.4), and the BlockGuard
// detect-and-mask policy (--degrade) recovers most of the loss for
// block-structured faults.
//
// --target selects which datapath SRAM the campaign corrupts: the class
// memory (default, run_campaign) or the encoder's level memory / rotating
// id seed (run_encoder_campaign, which re-encodes every trial through the
// damaged memory). --remat builds the encoder with rematerialized level
// memory (PR 7): its level rows physically do not exist, so a --target=level
// sweep sits at baseline in every cell — the campaign-shaped proof of the
// remat immunity claim — while --target=id_seed still bites (the seed row is
// stored in both modes). --threads fans Monte Carlo trials (class memory) or
// the per-trial re-encoding (encoder targets) across a pool; the JSON is
// byte-identical for any thread count.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "data/benchmarks.h"
#include "encoding/encoders.h"
#include "model/pipeline.h"
#include "obs/export.h"
#include "resilience/campaign.h"

using namespace generic;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const bool quick = flags.has("--quick");
  const std::string name = flags.value("--dataset", "FACE");
  const std::size_t dims = quick ? 2048 : 4096;
  const std::size_t epochs = quick ? 5 : 20;
  const int bw = static_cast<int>(flags.size("--bw", 8));
  const std::size_t trials = flags.size("--trials", quick ? 3 : 5);
  const auto seed = static_cast<std::uint64_t>(
      std::stoull(flags.value("--seed", "64023")));
  const std::string out_path = flags.value("--out", "");
  const std::string target_name = flags.value("--target", "class");
  const bool remat = flags.has("--remat");
  const bool degrade = flags.has("--degrade");
  const std::size_t threads = flags.threads();
  obs::Session obs_session(flags.value("--trace", ""),
                           flags.value("--metrics", ""));
  flags.done();

  resilience::FaultTarget target = resilience::FaultTarget::kClassMemory;
  if (target_name == "level") {
    target = resilience::FaultTarget::kLevelMemory;
  } else if (target_name == "id_seed") {
    target = resilience::FaultTarget::kIdSeed;
  } else if (target_name != "class") {
    std::fprintf(stderr, "error: --target must be class, level, or id_seed\n");
    return 1;
  }

  const auto ds = data::make_benchmark(name);
  enc::EncoderConfig cfg;
  cfg.dims = dims;
  cfg.remat = remat;
  enc::GenericEncoder encoder(cfg);
  encoder.fit(ds.train_x);
  const auto train = model::encode_all(encoder, ds.train_x);
  const auto test = model::encode_all(encoder, ds.test_x);
  model::HdcClassifier clf(dims, ds.num_classes);
  clf.fit(train, ds.train_y, epochs);
  clf.quantize(bw);

  resilience::CampaignConfig cc;
  cc.trials = trials;
  cc.seed = seed;
  cc.degrade = degrade;
  cc.threads = threads;
  cc.rates = {0.0, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 0.03, 0.07};

  const auto result =
      target == resilience::FaultTarget::kClassMemory
          ? resilience::run_campaign(clf, test, ds.test_y, cc)
          : resilience::run_encoder_campaign(encoder, clf, ds.test_x,
                                             ds.test_y, cc, target);

  std::printf("Fault campaign: %s, D=%zu, %db model, %zu trials/cell, "
              "target=%s%s%s\n",
              name.c_str(), dims, bw, trials,
              std::string(resilience::fault_target_name(target)).c_str(),
              remat ? ", remat encoder" : "",
              cc.degrade ? ", detect+mask degradation ON" : "");
  if (target != resilience::FaultTarget::kClassMemory)
    std::printf("encoder footprint: %zu bytes (%s)\n",
                result.encoder_footprint_bytes,
                result.encoder_remat ? "rematerialized" : "stored");
  std::printf("baseline accuracy: %.2f%%\n\n", 100.0 * result.baseline_accuracy);
  std::printf("%-12s", "rate");
  for (auto k : cc.kinds)
    std::printf(" %12s", std::string(resilience::fault_kind_name(k)).c_str());
  std::printf("\n");
  bench::print_rule(12 + 13 * cc.kinds.size());
  for (std::size_t ri = 0; ri < cc.rates.size(); ++ri) {
    std::printf("%-12g", cc.rates[ri]);
    for (std::size_t ki = 0; ki < cc.kinds.size(); ++ki) {
      const auto& cell = result.cells[ki * cc.rates.size() + ri];
      std::printf(" %6.1f%%±%4.1f", 100.0 * cell.mean_accuracy,
                  100.0 * cell.stddev_accuracy);
    }
    std::printf("\n");
  }

  if (!out_path.empty()) {
    resilience::write_campaign_json(out_path, result);
    std::printf("\nJSON written to %s\n", out_path.c_str());
  } else {
    std::printf("\n%s", resilience::campaign_to_json(result).c_str());
  }
  return 0;
}
