// Reproduces Figure 5: accuracy vs number of dimensions used at inference
// (on-demand dimension reduction, §4.3.3) with the stale full-model
// ("Constant") L2 norms versus the per-128-dim sub-norms stored in the
// norm2 memory ("Updated").
//
// Expected shape: Updated >= Constant everywhere, with the gap opening as
// dimensions shrink (paper: up to 20.1 pts on EEG and 8.5 on ISOLET), and
// ISOLET holding accuracy down to ~1K dimensions (the §4.3.4 discussion).
#include <cstdio>

#include "bench/bench_util.h"
#include "data/benchmarks.h"
#include "encoding/encoders.h"
#include "model/pipeline.h"

using namespace generic;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const bool quick = flags.has("--quick");
  flags.done();
  const std::size_t full_dims = 4096;
  const std::size_t epochs = quick ? 5 : 20;

  std::printf(
      "Figure 5: accuracy (%%) vs dimensions, Constant vs Updated L2 norms\n");
  for (const char* name : {"EEG", "ISOLET"}) {
    const auto ds = data::make_benchmark(name);
    enc::EncoderConfig cfg;
    cfg.dims = full_dims;
    const auto gcfg = data::generic_config_for(name);
    cfg.use_ids = gcfg.use_ids;
    cfg.window = gcfg.window;
    enc::GenericEncoder encoder(cfg);
    encoder.fit(ds.train_x);
    const auto train = model::encode_all(encoder, ds.train_x);
    const auto test = model::encode_all(encoder, ds.test_x);
    model::HdcClassifier clf(full_dims, ds.num_classes);
    clf.fit(train, ds.train_y, epochs);

    std::printf("\n%s\n%-8s %12s %12s %8s\n", name, "dims", "Constant",
                "Updated", "gap");
    bench::print_rule(44);
    for (std::size_t dims = 512; dims <= full_dims; dims += 512) {
      auto acc = [&](model::NormMode mode) {
        std::size_t hits = 0;
        for (std::size_t i = 0; i < test.size(); ++i)
          hits += clf.predict_reduced(test[i], dims, mode) == ds.test_y[i];
        return 100.0 * static_cast<double>(hits) /
               static_cast<double>(test.size());
      };
      const double c = acc(model::NormMode::kConstant);
      const double u = acc(model::NormMode::kUpdated);
      std::printf("%-8zu %11.1f%% %11.1f%% %+7.1f\n", dims, c, u, u - c);
    }
  }
  return 0;
}
