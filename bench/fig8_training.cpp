// Reproduces Figure 8: per-input training energy and execution time of the
// GENERIC ASIC versus RF and SVM on the desktop CPU and DNN / HDC on the
// edge GPU (the strongest baseline device per algorithm, §5.2.1).
//
// GENERIC's numbers are behavioural: the ASIC model actually trains on
// each benchmark (constant 20 epochs, like the paper) and its cycle/energy
// counters are divided by the number of processed inputs. Baselines come
// from the calibrated device cost models.
//
// Expected shape: GENERIC wins energy by 2-3 orders of magnitude against
// everything (paper: 528x vs RF, 1257x vs DNN, 694x vs eGPU-HDC) while RF
// remains ~an order of magnitude faster in wall-clock (paper: 12x).
// `--threads N` fans the per-application ASIC training runs out across a
// worker pool; each application fills an indexed slot, so the table is
// byte-identical to the serial run for any thread count.
#include <cstdio>
#include <vector>

#include "arch/generic_asic.h"
#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "data/benchmarks.h"
#include "hwmodel/device.h"
#include "obs/export.h"

using namespace generic;

namespace {

struct AppResult {
  double asic_e = 0.0, asic_t = 0.0;
  double rf_e = 0.0, rf_t = 0.0, svm_e = 0.0, svm_t = 0.0;
  double dnn_e = 0.0, dnn_t = 0.0, hdc_e = 0.0, hdc_t = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const bool quick = flags.has("--quick");
  const std::size_t threads = flags.threads();
  obs::Session obs_session(flags.value("--trace", ""),
                           flags.value("--metrics", ""));
  flags.done();
  const std::size_t dims = quick ? 2048 : 4096;
  const std::size_t epochs = quick ? 5 : 20;

  const auto& names = data::benchmark_names();
  std::vector<AppResult> results(names.size());
  ThreadPool pool(threads);

  obs::Stopwatch timer;
  pool.parallel_for(names.size(), [&](std::size_t begin, std::size_t end,
                                      std::size_t) {
    for (std::size_t i = begin; i < end; ++i) {
      GENERIC_SPAN("fig8.app");
      const auto& name = names[i];
      const auto ds = data::make_benchmark(name);
      arch::AppSpec spec;
      spec.dims = dims;
      spec.features = ds.num_features();
      spec.classes = ds.num_classes;
      const auto gcfg = data::generic_config_for(name);
      spec.window = gcfg.window;
      spec.use_ids = gcfg.use_ids;

      AppResult& out = results[i];
      arch::GenericAsic asic(spec);
      asic.train(ds.train_x, ds.train_y, epochs);
      const double inputs = static_cast<double>(ds.train_size());
      out.asic_e = asic.energy_j() / inputs;
      out.asic_t = asic.elapsed_seconds() / inputs;

      const std::size_t d = ds.num_features();
      const std::size_t nc = ds.num_classes;
      const std::size_t n = ds.train_size();
      out.rf_e = hw::energy_j(
          hw::desktop_cpu(), hw::ml_training(ml::MlKind::kRandomForest, d, nc, n));
      out.rf_t = hw::time_s(
          hw::desktop_cpu(), hw::ml_training(ml::MlKind::kRandomForest, d, nc, n));
      out.svm_e = hw::energy_j(hw::desktop_cpu(),
                               hw::ml_training(ml::MlKind::kSvm, d, nc, n));
      out.svm_t = hw::time_s(hw::desktop_cpu(),
                             hw::ml_training(ml::MlKind::kSvm, d, nc, n));
      out.dnn_e = hw::energy_j(hw::edge_gpu(),
                               hw::ml_training(ml::MlKind::kDnn, d, nc, n));
      out.dnn_t = hw::time_s(hw::edge_gpu(),
                             hw::ml_training(ml::MlKind::kDnn, d, nc, n));
      out.hdc_e = hw::energy_j(hw::edge_gpu(),
                               hw::hdc_training(d, 4096, 3, nc, epochs));
      out.hdc_t = hw::time_s(hw::edge_gpu(),
                             hw::hdc_training(d, 4096, 3, nc, epochs));
    }
  });

  std::vector<double> asic_e, asic_t;
  std::vector<double> rf_e, rf_t, svm_e, svm_t, dnn_e, dnn_t, hdc_e, hdc_t;
  for (const auto& r : results) {
    asic_e.push_back(r.asic_e);
    asic_t.push_back(r.asic_t);
    rf_e.push_back(r.rf_e);
    rf_t.push_back(r.rf_t);
    svm_e.push_back(r.svm_e);
    svm_t.push_back(r.svm_t);
    dnn_e.push_back(r.dnn_e);
    dnn_t.push_back(r.dnn_t);
    hdc_e.push_back(r.hdc_e);
    hdc_t.push_back(r.hdc_t);
  }

  struct Row {
    const char* label;
    double e, t;
  };
  const Row rows[] = {
      {"GENERIC", geomean(asic_e), geomean(asic_t)},
      {"RF (CPU)", geomean(rf_e), geomean(rf_t)},
      {"SVM (CPU)", geomean(svm_e), geomean(svm_t)},
      {"DNN (eGPU)", geomean(dnn_e), geomean(dnn_t)},
      {"HDC (eGPU)", geomean(hdc_e), geomean(hdc_t)},
  };

  std::printf("Figure 8: training energy and time per input (geomean)\n");
  std::printf("%-12s %14s %14s %12s %12s\n", "Algo", "Energy (mJ)",
              "Time (ms)", "E vs GENERIC", "T vs GENERIC");
  bench::print_rule(68);
  for (const auto& r : rows)
    std::printf("%-12s %14.4e %14.4e %11.1fx %11.1fx\n", r.label, r.e * 1e3,
                r.t * 1e3, r.e / rows[0].e, r.t / rows[0].t);

  // Average training power (paper: ~2.06 mW).
  std::printf("\nGENERIC average training power: %.2f mW\n",
              1e3 * geomean(asic_e) / geomean(asic_t));
  std::printf("[fig8] completed in %.1f s\n", timer.seconds());
  obs_session.set_pool_stats(pool.stats());
  return 0;
}
