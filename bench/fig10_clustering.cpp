// Reproduces Figure 10: per-input clustering energy of the GENERIC ASIC
// versus K-means on the desktop CPU and the Raspberry Pi, per FCPS/Iris
// dataset, plus the per-input execution-time comparison of §5.3.
//
// Expected shape: GENERIC sits 4-5 orders of magnitude below both devices
// in energy (paper: 17,523x vs R-Pi, 61,400x vs CPU at 0.068 uJ/input) and
// runs tens of times faster per input (paper: 9.6 us vs 394/248 us).
#include <cstdio>
#include <vector>

#include "arch/generic_asic.h"
#include "bench/bench_util.h"
#include "common/stats.h"
#include "data/fcps.h"
#include "hwmodel/device.h"

using namespace generic;

int main(int argc, char** argv) {
  bench::Flags(argc, argv).done();
  std::printf("Figure 10: clustering energy per input (uJ)\n");
  std::printf("%-14s %12s %14s %14s\n", "Dataset", "GENERIC", "K-means(CPU)",
              "K-means(R-Pi)");
  bench::print_rule(58);

  std::vector<double> asic_e, asic_t, cpu_e, cpu_t, rpi_e, rpi_t;
  for (const auto& name : data::fcps_names()) {
    const auto ds = data::make_fcps(name);
    arch::AppSpec spec;
    spec.dims = 4096;
    spec.features = ds.num_features();
    spec.classes = ds.num_clusters;
    spec.window = std::min<std::size_t>(3, ds.num_features());

    arch::GenericAsic asic(spec);
    const std::size_t epochs = 10;
    (void)asic.cluster(ds.points, epochs);
    // Per input amortized over the stream the ASIC actually processed.
    const double processed =
        static_cast<double>(asic.counts().feature_reads) /
        (static_cast<double>(arch::CycleModel().passes(spec)) *
         static_cast<double>(spec.features));
    const double e_asic = asic.energy_j() / processed;
    const double t_asic = asic.elapsed_seconds() / processed;

    const auto w = hw::kmeans_per_input(ds.num_features(), ds.num_clusters);
    const double e_cpu = hw::energy_j(hw::desktop_cpu(), w);
    const double e_rpi = hw::energy_j(hw::raspberry_pi(), w);

    asic_e.push_back(e_asic);
    asic_t.push_back(t_asic);
    cpu_e.push_back(e_cpu);
    cpu_t.push_back(hw::time_s(hw::desktop_cpu(), w));
    rpi_e.push_back(e_rpi);
    rpi_t.push_back(hw::time_s(hw::raspberry_pi(), w));
    std::printf("%-14s %12.4f %14.1f %14.1f\n", name.c_str(), e_asic * 1e6,
                e_cpu * 1e6, e_rpi * 1e6);
  }

  std::printf("\nGeomean energy: GENERIC %.3f uJ; CPU/GENERIC %.0fx, "
              "R-Pi/GENERIC %.0fx\n",
              geomean(asic_e) * 1e6, geomean(cpu_e) / geomean(asic_e),
              geomean(rpi_e) / geomean(asic_e));
  std::printf("Geomean time/input: GENERIC %.1f us, CPU %.0f us (%.0fx), "
              "R-Pi %.0f us (%.0fx)\n",
              geomean(asic_t) * 1e6, geomean(cpu_t) * 1e6,
              geomean(cpu_t) / geomean(asic_t), geomean(rpi_t) * 1e6,
              geomean(rpi_t) / geomean(asic_t));
  return 0;
}
