// Reproduces Table 2: normalized mutual information of K-means and HDC
// clustering on the FCPS suite (Hepta, Tetra, TwoDiamonds, WingNut) and
// Iris.
//
// Expected shape: K-means slightly ahead on average (paper: +0.031), HDC
// within a few hundredths everywhere, both near 1.0 on Hepta/TwoDiamonds.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "data/fcps.h"
#include "encoding/encoders.h"
#include "ml/kmeans.h"
#include "ml/metrics.h"
#include "model/hdc_cluster.h"
#include "model/pipeline.h"

using namespace generic;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const bool quick = flags.has("--quick");
  flags.done();
  const std::size_t dims = quick ? 2048 : 4096;

  std::printf("Table 2: mutual information score of K-means and HDC\n");
  std::printf("%-14s %9s %9s\n", "Dataset", "K-means", "HDC");
  bench::print_rule(36);

  std::vector<double> km_scores, hdc_scores;
  for (const auto& name : data::fcps_names()) {
    const auto ds = data::make_fcps(name);

    ml::KMeansConfig kcfg;
    kcfg.k = ds.num_clusters;
    const auto km = ml::kmeans(ds.points, kcfg);
    const double km_nmi =
        ml::normalized_mutual_information(ds.labels, km.labels);

    enc::EncoderConfig cfg;
    cfg.dims = dims;
    // Window length is capped by the feature count (2-4 on FCPS): this is
    // the §5.3 remark that windows lose their edge on few-feature data.
    cfg.window = std::min<std::size_t>(3, ds.num_features());
    enc::GenericEncoder encoder(cfg);
    encoder.fit(ds.points);
    const auto encoded = model::encode_all(encoder, ds.points);
    model::HdcCluster hc(dims, ds.num_clusters);
    hc.fit(encoded);
    const double hdc_nmi =
        ml::normalized_mutual_information(ds.labels, hc.labels(encoded));

    km_scores.push_back(km_nmi);
    hdc_scores.push_back(hdc_nmi);
    std::printf("%-14s %9.3f %9.3f\n", name.c_str(), km_nmi, hdc_nmi);
  }
  std::printf("%-14s %9.3f %9.3f   (paper: K-means +0.031 on average)\n",
              "Mean", mean(km_scores), mean(hdc_scores));
  return 0;
}
