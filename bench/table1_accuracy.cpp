// Reproduces Table 1: classification accuracy of the five HDC encodings
// (RP, level-id, ngram, permute, GENERIC) and four ML comparators
// (MLP, SVM, RF, DNN) on the eleven benchmark clones, plus the Mean and
// STDV aggregate rows.
//
// Expected shape (paper): GENERIC has the highest mean (+3.5 pts over the
// best HDC baseline, +6.5 over the best classical ML) and the lowest STDV;
// RP collapses on EEG/EMG/LANG, ngram collapses on ISOLET/MNIST/PAMAP2,
// only ngram and GENERIC reach ~100% on LANG.
//
// Flags: --quick (fewer dims/epochs), --hdc-only, --ml-only,
//        --datasets=NAME1,NAME2  (default: all eleven)
//        --threads=N  (fan datasets across a pool; table bytes are
//                      identical to the serial run for any N)
#include <cstdio>
#include <map>
#include <sstream>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "data/benchmarks.h"
#include "encoding/encoders.h"
#include "ml/classifier.h"
#include "model/pipeline.h"
#include "obs/export.h"

namespace {

using namespace generic;

std::vector<std::string> parse_datasets(const std::string& csv) {
  if (csv.empty()) return data::benchmark_names();
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(item);
  return out;
}

/// One dataset's table row: its accuracy per column (header order) and the
/// formatted row text, buffered so rows print in dataset order regardless
/// of which thread finished first.
struct RowResult {
  std::vector<double> hdc_pcts, ml_pcts;
  std::string line;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const bool quick = flags.has("--quick");
  const bool hdc_only = flags.has("--hdc-only");
  const bool ml_only = flags.has("--ml-only");
  const std::size_t threads = flags.threads();
  const auto datasets = parse_datasets(flags.value("--datasets", ""));
  obs::Session obs_session(flags.value("--trace", ""),
                           flags.value("--metrics", ""));
  flags.done();

  const std::size_t dims = quick ? 2048 : 4096;
  const std::size_t epochs = quick ? 10 : 20;

  const std::vector<enc::EncoderKind> hdc_kinds{
      enc::EncoderKind::kRp, enc::EncoderKind::kLevelId,
      enc::EncoderKind::kNgram, enc::EncoderKind::kPermutation,
      enc::EncoderKind::kGeneric};
  const std::vector<ml::MlKind> ml_kinds{
      ml::MlKind::kMlp, ml::MlKind::kSvm, ml::MlKind::kRandomForest,
      ml::MlKind::kDnn};

  // column header
  std::printf("Table 1: accuracy of HDC and ML algorithms (%%)\n");
  std::printf("%-8s", "Dataset");
  if (!ml_only)
    for (auto kind : hdc_kinds)
      std::printf(" %9s", std::string(enc::to_string(kind)).c_str());
  if (!hdc_only)
    for (auto kind : ml_kinds)
      std::printf(" %9s", std::string(ml::to_string(kind)).c_str());
  std::printf("\n");
  bench::print_rule(8 + 10 * ((ml_only ? 0 : hdc_kinds.size()) +
                              (hdc_only ? 0 : ml_kinds.size())));

  std::map<std::string, std::vector<double>> columns;
  obs::Stopwatch total;

  std::vector<RowResult> rows_out(datasets.size());
  ThreadPool pool(threads);
  pool.parallel_for(datasets.size(), [&](std::size_t begin, std::size_t end,
                                         std::size_t) {
    for (std::size_t di = begin; di < end; ++di) {
      GENERIC_SPAN("table1.dataset");
      const auto& name = datasets[di];
      const auto ds = data::make_benchmark(name);
      RowResult& row = rows_out[di];
      char cell[16];
      std::snprintf(cell, sizeof(cell), "%-8s", ds.name.c_str());
      row.line = cell;

      if (!ml_only) {
        for (auto kind : hdc_kinds) {
          enc::EncoderConfig cfg;
          cfg.dims = dims;
          const auto gcfg = data::generic_config_for(name);
          cfg.window = gcfg.window;
          if (kind == enc::EncoderKind::kGeneric) cfg.use_ids = gcfg.use_ids;
          auto encoder = enc::make_encoder(kind, cfg);
          const auto res = model::run_hdc_classification(*encoder, ds, epochs);
          const double pct = 100.0 * res.test_accuracy;
          row.hdc_pcts.push_back(pct);
          std::snprintf(cell, sizeof(cell), " %8.1f%%", pct);
          row.line += cell;
        }
      }
      if (!hdc_only) {
        for (auto kind : ml_kinds) {
          auto clf = ml::make_classifier(kind);
          clf->train(ds.train_x, ds.train_y, ds.num_classes);
          const double pct = 100.0 * clf->accuracy(ds.test_x, ds.test_y);
          row.ml_pcts.push_back(pct);
          std::snprintf(cell, sizeof(cell), " %8.1f%%", pct);
          row.line += cell;
        }
      }
      row.line += "\n";
    }
  });

  // Rows print — and columns accumulate — in dataset order, so the table
  // and the Mean/STDV aggregates match the serial run byte for byte.
  for (const auto& row : rows_out) {
    std::fputs(row.line.c_str(), stdout);
    if (!ml_only)
      for (std::size_t k = 0; k < hdc_kinds.size(); ++k)
        columns[std::string(enc::to_string(hdc_kinds[k]))].push_back(
            row.hdc_pcts[k]);
    if (!hdc_only)
      for (std::size_t k = 0; k < ml_kinds.size(); ++k)
        columns[std::string(ml::to_string(ml_kinds[k]))].push_back(
            row.ml_pcts[k]);
  }

  // Aggregate rows, in the same column order as the header.
  auto print_agg = [&](const char* label, auto fn) {
    std::printf("%-8s", label);
    if (!ml_only)
      for (auto kind : hdc_kinds)
        std::printf(" %8.1f%%", fn(columns[std::string(enc::to_string(kind))]));
    if (!hdc_only)
      for (auto kind : ml_kinds)
        std::printf(" %8.1f%%", fn(columns[std::string(ml::to_string(kind))]));
    std::printf("\n");
  };
  print_agg("Mean", [](const std::vector<double>& v) { return mean(v); });
  print_agg("STDV", [](const std::vector<double>& v) { return stddev(v); });

  std::printf("\n[table1] completed in %.1f s\n", total.seconds());
  obs_session.set_pool_stats(pool.stats());
  return 0;
}
