// Accuracy / energy / latency trade-off sweep — the §4.1 claim that
// GENERIC's flexible dimensionality "trades off the accuracy and
// energy/performance on-demand", shown as the full Pareto curve per
// application rather than Figure 5's two accuracy-only probes.
//
// For each application, inference runs at every 512-multiple of the
// hypervector dimensionality with Updated sub-norms; the ASIC energy and
// latency come from the behavioural model.
//
// Flags: --quick, --datasets=NAME1,NAME2
#include <cstdio>
#include <sstream>

#include "arch/generic_asic.h"
#include "bench/bench_util.h"
#include "data/benchmarks.h"

using namespace generic;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const bool quick = flags.has("--quick");
  const std::string csv = flags.value("--datasets", "");
  flags.done();
  const std::size_t full_dims = 4096;
  const std::size_t epochs = quick ? 5 : 15;
  std::vector<std::string> datasets{"ISOLET", "EMG", "PAGE"};
  if (!csv.empty()) {
    datasets.clear();
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ',')) datasets.push_back(item);
  }

  for (const auto& name : datasets) {
    const auto ds = data::make_benchmark(name);
    arch::AppSpec spec;
    spec.dims = full_dims;
    spec.features = ds.num_features();
    spec.classes = ds.num_classes;
    const auto g = data::generic_config_for(name);
    spec.window = g.window;
    spec.use_ids = g.use_ids;
    arch::GenericAsic asic(spec);
    asic.train(ds.train_x, ds.train_y, epochs);
    const auto trained = asic.snapshot_model();

    auto measure = [&](std::size_t dims, double& acc, double& e, double& t) {
      asic.restore_model(trained);
      asic.set_active_dims(dims);
      asic.reset_counts();
      std::size_t hits = 0;
      for (std::size_t i = 0; i < ds.test_x.size(); ++i)
        hits += asic.infer(ds.test_x[i]) == ds.test_y[i];
      const auto n = static_cast<double>(ds.test_size());
      acc = 100.0 * static_cast<double>(hits) / n;
      e = asic.energy_j() / n;
      t = asic.elapsed_seconds() / n;
    };

    double full_acc, full_e, full_t;
    measure(full_dims, full_acc, full_e, full_t);

    std::printf("\n%s: dimensionality trade-off (on-demand, §4.3.3)\n",
                name.c_str());
    std::printf("%-8s %10s %14s %14s %12s %10s\n", "dims", "accuracy",
                "energy/inf", "latency", "energy gain", "acc cost");
    bench::print_rule(74);
    for (std::size_t dims = 512; dims <= full_dims; dims += 512) {
      double acc, e, t;
      if (dims == full_dims) {
        acc = full_acc;
        e = full_e;
        t = full_t;
      } else {
        measure(dims, acc, e, t);
      }
      std::printf("%-8zu %9.1f%% %11.4f uJ %11.1f us %10.1fx %+9.1f\n", dims,
                  acc, e * 1e6, t * 1e6, full_e / e, acc - full_acc);
    }
  }
  return 0;
}
