// Accuracy / energy / latency trade-off sweep — the §4.1 claim that
// GENERIC's flexible dimensionality "trades off the accuracy and
// energy/performance on-demand", shown as the full Pareto curve per
// application rather than Figure 5's two accuracy-only probes.
//
// For each application, inference runs at every 512-multiple of the
// hypervector dimensionality with Updated sub-norms; the ASIC energy and
// latency come from the behavioural model.
//
// With --out, the same trained model is additionally pushed through the
// serving engine under an overloaded seeded trace so the SLO ladder walks
// the rungs, and the JSON pairs each rung's ASIC accuracy/energy with the
// engine's served-latency percentiles (p50/p95/p99, virtual us) — the full
// latency-vs-accuracy trade-off from one file. The JSON is byte-identical
// for a fixed (flags, seed) at any --threads value.
//
// Flags: --quick, --datasets=NAME1,NAME2, --out=FILE,
//        --serve-rate=RPS, --serve-requests=N, --threads=N
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "arch/generic_asic.h"
#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "data/benchmarks.h"
#include "model/pipeline.h"
#include "serve/engine.h"

using namespace generic;

namespace {

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

struct SweepRow {
  std::size_t dims = 0;
  double accuracy_pct = 0.0;
  double energy_j = 0.0;
  double latency_s = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const bool quick = flags.has("--quick");
  const std::string csv = flags.value("--datasets", "");
  const std::string out_path = flags.value("--out", "");
  const std::size_t serve_rate = flags.size("--serve-rate", 2400);
  const std::size_t serve_requests =
      flags.size("--serve-requests", quick ? 1200 : 4000);
  const std::size_t threads = flags.threads();
  flags.done();
  const std::size_t full_dims = 4096;
  const std::size_t epochs = quick ? 5 : 15;
  std::vector<std::string> datasets{"ISOLET", "EMG", "PAGE"};
  if (!csv.empty()) {
    datasets.clear();
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ',')) datasets.push_back(item);
  }

  set_global_threads(threads);
  ThreadPool& pool = global_pool();

  std::string json = "{\n  \"schema\": \"generic.tradeoff.v1\",\n";
  json += "  \"serve_rate_rps\": " + std::to_string(serve_rate) +
          ",\n  \"serve_requests\": " + std::to_string(serve_requests) +
          ",\n  \"datasets\": [";
  bool first_dataset = true;

  for (const auto& name : datasets) {
    const auto ds = data::make_benchmark(name);
    arch::AppSpec spec;
    spec.dims = full_dims;
    spec.features = ds.num_features();
    spec.classes = ds.num_classes;
    const auto g = data::generic_config_for(name);
    spec.window = g.window;
    spec.use_ids = g.use_ids;
    arch::GenericAsic asic(spec);
    asic.train(ds.train_x, ds.train_y, epochs);
    const auto trained = asic.snapshot_model();

    auto measure = [&](std::size_t dims, double& acc, double& e, double& t) {
      asic.restore_model(trained);
      asic.set_active_dims(dims);
      asic.reset_counts();
      std::size_t hits = 0;
      for (std::size_t i = 0; i < ds.test_x.size(); ++i)
        hits += asic.infer(ds.test_x[i]) == ds.test_y[i];
      const auto n = static_cast<double>(ds.test_size());
      acc = 100.0 * static_cast<double>(hits) / n;
      e = asic.energy_j() / n;
      t = asic.elapsed_seconds() / n;
    };

    double full_acc, full_e, full_t;
    measure(full_dims, full_acc, full_e, full_t);

    std::printf("\n%s: dimensionality trade-off (on-demand, §4.3.3)\n",
                name.c_str());
    std::printf("%-8s %10s %14s %14s %12s %10s\n", "dims", "accuracy",
                "energy/inf", "latency", "energy gain", "acc cost");
    bench::print_rule(74);
    std::vector<SweepRow> rows;
    for (std::size_t dims = 512; dims <= full_dims; dims += 512) {
      double acc, e, t;
      if (dims == full_dims) {
        acc = full_acc;
        e = full_e;
        t = full_t;
      } else {
        measure(dims, acc, e, t);
      }
      std::printf("%-8zu %9.1f%% %11.4f uJ %11.1f us %10.1fx %+9.1f\n", dims,
                  acc, e * 1e6, t * 1e6, full_e / e, acc - full_acc);
      rows.push_back(SweepRow{dims, acc, e, t});
    }

    if (out_path.empty()) continue;

    // Serve the SAME trained model under overload so the degradation ladder
    // exercises its rungs; per-rung served-latency percentiles land next to
    // the ASIC sweep in the JSON.
    const auto queries = model::encode_all(asic.encoder(), ds.test_x, pool);
    serve::ServeConfig cfg;
    // Per-dataset seed via FNV-1a over the name: stable across platforms
    // (std::hash would not be).
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char ch : name) h = (h ^ static_cast<unsigned char>(ch)) *
                                   0x100000001b3ULL;
    cfg.seed = 0x5EB7EULL ^ h;
    serve::ServeEngine engine(trained, queries, ds.test_y, cfg, pool);
    Rng gen(cfg.seed ^ 0x0A11CE5ULL);
    const double mean_gap_us = 1e6 / static_cast<double>(serve_rate);
    std::uint64_t vt = 0;
    std::vector<serve::ResponseFuture> futures;
    futures.reserve(serve_requests);
    for (std::size_t id = 0; id < serve_requests; ++id) {
      const double gap = -std::log(1.0 - gen.uniform()) * mean_gap_us;
      vt += static_cast<std::uint64_t>(
          std::max<long long>(std::llround(gap), 1));
      serve::Request req;
      req.id = id;
      req.arrival_us = vt;
      req.deadline_us = vt + cfg.deadline_us;
      req.query = static_cast<std::size_t>(gen.below(queries.size()));
      futures.push_back(engine.submit(req));
    }
    const serve::ServeReport report = engine.finish();

    json += first_dataset ? "\n" : ",\n";
    first_dataset = false;
    json += "    {\"name\": \"" + name + "\", \"sweep\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const SweepRow& r = rows[i];
      json += (i == 0 ? "\n" : ",\n");
      json += "      {\"dims\": " + std::to_string(r.dims) +
              ", \"accuracy_pct\": " + fmt(r.accuracy_pct) +
              ", \"energy_j\": " + fmt(r.energy_j) +
              ", \"asic_latency_s\": " + fmt(r.latency_s) +
              ", \"energy_gain\": " + fmt(full_e / r.energy_j) + "}";
    }
    json += "\n    ], \"serve_rungs\": [";
    for (std::size_t i = 0; i < report.rungs.size(); ++i) {
      const serve::RungStats& r = report.rungs[i];
      json += (i == 0 ? "\n" : ",\n");
      json += "      {\"dims\": " + std::to_string(r.dims) +
              ", \"served\": " + std::to_string(r.served) +
              ", \"accuracy\": " +
              fmt(r.served == 0 ? 0.0
                                : static_cast<double>(r.correct) /
                                      static_cast<double>(r.served)) +
              ", \"latency_us\": {\"count\": " +
              std::to_string(r.latency.count) +
              ", \"p50\": " + std::to_string(r.latency.percentile(0.50)) +
              ", \"p95\": " + std::to_string(r.latency.percentile(0.95)) +
              ", \"p99\": " + std::to_string(r.latency.percentile(0.99)) +
              "}}";
    }
    json += "\n    ]}";

    std::printf("serving under overload (%zu rps): per-rung latency p50/p95/"
                "p99 (virtual us)\n", serve_rate);
    for (const auto& r : report.rungs)
      if (r.served > 0)
        std::printf("  rung D=%-5zu served %-6llu %llu / %llu / %llu\n",
                    r.dims, static_cast<unsigned long long>(r.served),
                    static_cast<unsigned long long>(r.latency.percentile(0.5)),
                    static_cast<unsigned long long>(r.latency.percentile(0.95)),
                    static_cast<unsigned long long>(
                        r.latency.percentile(0.99)));
  }

  if (!out_path.empty()) {
    json += "\n  ]\n}\n";
    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << json;
    std::printf("\ntrade-off JSON written to %s\n", out_path.c_str());
  }
  return 0;
}
