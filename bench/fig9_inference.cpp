// Reproduces Figure 9: per-input inference energy of GENERIC and
// GENERIC-LP against previous HDC accelerators (Datta et al. [10],
// tiny-HD [8], scaled to 14 nm) and against RF / SVM / DNN on the CPU and
// HDC on the edge GPU.
//
// GENERIC-LP applies the §4.3 techniques *application-opportunistically*,
// exactly as the paper frames it: for each application it picks the most
// aggressive (dimension reduction, bit-width, voltage) operating point
// whose accuracy on a held-out slice of the training data stays within a
// small tolerance of nominal — spending Table 1's accuracy headroom on
// energy. Both the energy gain and the realized accuracy cost are printed.
//
// Expected shape: LP ~15x below base GENERIC; ~4x below tiny-HD and ~15x
// below Datta; 3+ orders of magnitude below any conventional baseline.
// `--threads N` fans the per-application pipelines (train, operating-point
// search, evaluation) out across a worker pool; each application writes an
// indexed result slot and buffers its report line, so the printed output
// is byte-identical to the serial run for any thread count.
#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "arch/generic_asic.h"
#include "arch/tinyhd.h"
#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "data/benchmarks.h"
#include "hwmodel/device.h"
#include "obs/export.h"

using namespace generic;

namespace {

/// Everything one application contributes to the figure.
struct AppResult {
  double base_e = 0.0, lp_e = 0.0, base_acc = 0.0, lp_acc = 0.0;
  double rf_e = 0.0, svm_e = 0.0, dnn_e = 0.0, egpu_e = 0.0, tinyhd_e = 0.0;
  double hw_energy_j = 0.0;   ///< total ASIC energy of the test-set runs
  double hw_elapsed_s = 0.0;  ///< modeled wall-clock of the test-set runs
  std::uint64_t hw_cycles = 0;
  std::string line;  ///< buffered per-app report, printed in fixed order
};

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const bool quick = flags.has("--quick");
  const std::size_t threads = flags.threads();
  obs::Session obs_session(flags.value("--trace", ""),
                           flags.value("--metrics", ""));
  flags.done();
  const std::size_t dims = 4096;
  const std::size_t epochs = quick ? 5 : 15;

  const arch::TinyHdModel tinyhd_model;
  const auto& names = data::benchmark_names();
  std::vector<AppResult> results(names.size());
  ThreadPool pool(threads);

  obs::Stopwatch timer;
  auto run_app = [&](std::size_t app_index) {
    GENERIC_SPAN("fig9.app");
    const auto& name = names[app_index];
    AppResult out;
    const auto ds = data::make_benchmark(name);
    arch::AppSpec spec;
    spec.dims = dims;
    spec.features = ds.num_features();
    spec.classes = ds.num_classes;
    const auto gcfg = data::generic_config_for(name);
    spec.window = gcfg.window;
    spec.use_ids = gcfg.use_ids;

    // Hold out the tail of the training split for operating-point
    // selection (never the test set).
    const std::size_t val_n = std::min<std::size_t>(200, ds.train_size() / 4);
    std::vector<std::vector<float>> val_x(ds.train_x.end() - static_cast<std::ptrdiff_t>(val_n),
                                          ds.train_x.end());
    std::vector<int> val_y(ds.train_y.end() - static_cast<std::ptrdiff_t>(val_n),
                           ds.train_y.end());

    struct OpPoint {
      std::size_t dims;
      int bw;
      double ber;
    };
    // Nominal first, then the §4.3 grid: dimension reduction alone is
    // nearly free with Updated sub-norms (Figure 5), quantization and
    // voltage scaling stack on top where the application tolerates them.
    const std::vector<OpPoint> points{
        {dims, 16, 0.0},        {dims / 2, 16, 0.0},   {dims / 4, 16, 0.0},
        {dims, 8, 0.001},       {dims / 2, 8, 0.001},  {dims / 4, 8, 0.001},
        {dims / 2, 4, 0.005},   {dims / 4, 4, 0.005},  {dims / 4, 4, 0.01},
    };

    auto run_point = [&](const OpPoint& p, const auto& xs, const auto& ys,
                         double& acc_out, arch::GenericAsic& asic) {
      if (p.dims != dims) asic.set_active_dims(p.dims);
      if (p.bw != 16) asic.quantize(p.bw);
      if (p.ber > 0.0) asic.apply_voltage_scaling(p.ber);
      asic.reset_counts();
      std::size_t hits = 0;
      for (std::size_t i = 0; i < xs.size(); ++i)
        hits += asic.infer(xs[i]) == ys[i];
      acc_out = static_cast<double>(hits) / static_cast<double>(xs.size());
      return asic.energy_j() / static_cast<double>(xs.size());
    };

    arch::GenericAsic asic(spec);
    asic.train(ds.train_x, ds.train_y, epochs);
    const auto trained = asic.snapshot_model();

    // Nominal accuracy/energy on the test set.
    double acc = 0.0;
    out.base_e = run_point(points[0], ds.test_x, ds.test_y, acc, asic);
    out.base_acc = acc;
    out.hw_energy_j += asic.energy_j();
    out.hw_elapsed_s += asic.elapsed_seconds();
    out.hw_cycles += asic.counts().cycles;

    // Operating-point selection uses a *selector* model trained without
    // the validation slice, so validation accuracy is an honest estimate;
    // a candidate must survive two independent fault-injection draws.
    // The tolerance (5 pts) is the headroom Table 1 buys over prior
    // accelerators (e.g. +10.3 pts vs [10]) — what GENERIC-LP spends.
    std::vector<std::vector<float>> fit_x(ds.train_x.begin(),
                                          ds.train_x.end() - static_cast<std::ptrdiff_t>(val_n));
    std::vector<int> fit_y(ds.train_y.begin(),
                           ds.train_y.end() - static_cast<std::ptrdiff_t>(val_n));
    arch::GenericAsic selector(spec);
    selector.train(fit_x, fit_y, epochs);
    const auto selector_model = selector.snapshot_model();
    double val_nominal = 0.0;
    (void)run_point(points[0], val_x, val_y, val_nominal, selector);
    OpPoint chosen = points[0];
    double chosen_energy = std::numeric_limits<double>::infinity();
    for (std::size_t p = 1; p < points.size(); ++p) {
      double worst = 1.0;
      double cand_energy = 0.0;
      for (int rep = 0; rep < 2; ++rep) {
        selector.restore_model(selector_model);
        double val_acc = 0.0;
        cand_energy = run_point(points[p], val_x, val_y, val_acc, selector);
        worst = std::min(worst, val_acc);
      }
      if (worst >= val_nominal - 0.05 && cand_energy < chosen_energy) {
        chosen = points[p];
        chosen_energy = cand_energy;
      }
    }
    asic.restore_model(trained);
    out.lp_e = run_point(chosen, ds.test_x, ds.test_y, acc, asic);
    out.lp_acc = acc;
    out.hw_energy_j += asic.energy_j();
    out.hw_elapsed_s += asic.elapsed_seconds();
    out.hw_cycles += asic.counts().cycles;
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  [%-7s] LP point: dims=%zu bw=%d ber=%.3f -> %.3f uJ "
                  "(base %.3f uJ), acc %.1f%%\n",
                  name.c_str(), chosen.dims, chosen.bw, chosen.ber,
                  out.lp_e * 1e6, out.base_e * 1e6, 100.0 * acc);
    out.line = line;

    const std::size_t d = ds.num_features();
    const std::size_t nc = ds.num_classes;
    const std::size_t n = ds.train_size();
    out.rf_e = hw::energy_j(
        hw::desktop_cpu(), hw::ml_inference(ml::MlKind::kRandomForest, d, nc, n));
    out.svm_e = hw::energy_j(hw::desktop_cpu(),
                             hw::ml_inference(ml::MlKind::kSvm, d, nc, n));
    out.dnn_e = hw::energy_j(hw::desktop_cpu(),
                             hw::ml_inference(ml::MlKind::kDnn, d, nc, n));
    out.egpu_e =
        hw::energy_j(hw::edge_gpu(), hw::hdc_inference(d, dims, 3, nc));
    out.tinyhd_e = tinyhd_model.energy_per_input_j(spec);
    results[app_index] = std::move(out);
  };

  pool.parallel_for(names.size(),
                    [&](std::size_t begin, std::size_t end, std::size_t) {
                      for (std::size_t i = begin; i < end; ++i) run_app(i);
                    });

  std::vector<double> base_e, lp_e, base_acc, lp_acc;
  std::vector<double> rf_e, svm_e, dnn_e, egpu_e, tinyhd_model_e;
  for (const auto& r : results) {
    std::fputs(r.line.c_str(), stdout);
    base_e.push_back(r.base_e);
    lp_e.push_back(r.lp_e);
    base_acc.push_back(r.base_acc);
    lp_acc.push_back(r.lp_acc);
    rf_e.push_back(r.rf_e);
    svm_e.push_back(r.svm_e);
    dnn_e.push_back(r.dnn_e);
    egpu_e.push_back(r.egpu_e);
    tinyhd_model_e.push_back(r.tinyhd_e);
  }

  const double lp = geomean(lp_e);
  struct Row {
    const char* label;
    double e;
  };
  const Row rows[] = {
      {"GENERIC", geomean(base_e)},
      {"GENERIC-LP", lp},
      {"tiny-HD [8]", hw::tiny_hd_energy_per_input_j()},
      {"tinyHD-style*", geomean(tinyhd_model_e)},
      {"Datta [10]", hw::datta_hd_processor_energy_per_input_j()},
      {"RF (CPU)", geomean(rf_e)},
      {"SVM (CPU)", geomean(svm_e)},
      {"DNN (CPU)", geomean(dnn_e)},
      {"HDC (eGPU)", geomean(egpu_e)},
  };

  std::printf("Figure 9: inference energy per input (geomean over benchmarks)\n");
  std::printf("%-14s %14s %14s\n", "Platform", "Energy (uJ)", "vs GENERIC-LP");
  bench::print_rule(46);
  for (const auto& r : rows)
    std::printf("%-14s %14.4e %12.1fx\n", r.label, r.e * 1e6, r.e / lp);

  std::printf(
      "\n* tinyHD-style: inference-only engine rebuilt from this repo's\n"
      "  component model (1-bit class arrays, no norms/divider) — isolates\n"
      "  the architectural cost of trainability from technology effects.\n");
  std::printf(
      "\nGENERIC-LP saves %.1fx over base GENERIC; accuracy cost "
      "%.1f pts (%.1f%% -> %.1f%%)\n",
      geomean(base_e) / lp, 100.0 * (mean(base_acc) - mean(lp_acc)),
      100.0 * mean(base_acc), 100.0 * mean(lp_acc));
  std::printf("[fig9] completed in %.1f s (%zu thread%s)\n", timer.seconds(),
              threads, threads == 1 ? "" : "s");
  obs_session.set_pool_stats(pool.stats());
  obs::HardwareStats hw_stats;
  for (const auto& r : results) {
    hw_stats.energy_j += r.hw_energy_j;
    hw_stats.elapsed_s += r.hw_elapsed_s;
    hw_stats.cycles += r.hw_cycles;
  }
  obs_session.set_hardware(hw_stats);
  return 0;
}
