// Reproduces Figure 6: accuracy and class-memory power reduction as a
// function of the SRAM bit-error rate induced by voltage over-scaling
// (§4.3.4), for model bit-widths {8, 4, 2, 1}.
//
// Expected shape: the 1-bit FACE model tolerates ~7% flips; ISOLET needs a
// wider model and degrades beyond ~4% at 4 bits; the right-hand columns
// show the [20]-style static (up to ~7x) and dynamic (up to ~3x) savings.
#include <cstdio>
#include <vector>

#include "arch/energy_model.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "data/benchmarks.h"
#include "encoding/encoders.h"
#include "model/pipeline.h"

using namespace generic;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const bool quick = flags.has("--quick");
  flags.done();
  const std::size_t dims = quick ? 2048 : 4096;
  const std::size_t epochs = quick ? 5 : 20;
  const int repeats = quick ? 1 : 3;  // injection seeds averaged

  const std::vector<double> error_rates{0.0,  0.005, 0.01, 0.02,
                                        0.04, 0.07,  0.10};
  const std::vector<int> bit_widths{8, 4, 2, 1};

  std::printf("Figure 6: accuracy vs class-memory bit error rate (%%)\n");
  for (const char* name : {"FACE", "ISOLET"}) {
    const auto ds = data::make_benchmark(name);
    enc::EncoderConfig cfg;
    cfg.dims = dims;
    enc::GenericEncoder encoder(cfg);
    encoder.fit(ds.train_x);
    const auto train = model::encode_all(encoder, ds.train_x);
    const auto test = model::encode_all(encoder, ds.test_x);
    model::HdcClassifier base(dims, ds.num_classes);
    base.fit(train, ds.train_y, epochs);

    std::printf("\n%s\n%-8s", name, "BER");
    for (int bw : bit_widths) std::printf(" %7db", bw);
    std::printf(" %9s %9s\n", "pwr(s)", "pwr(dyn)");
    bench::print_rule(8 + 9 * bit_widths.size() + 20);

    for (double ber : error_rates) {
      std::printf("%6.1f%% ", 100.0 * ber);
      for (int bw : bit_widths) {
        double acc_sum = 0.0;
        for (int r = 0; r < repeats; ++r) {
          model::HdcClassifier clf = base;  // fresh copy per operating point
          clf.quantize(bw);
          Rng rng(1234 + static_cast<std::uint64_t>(r) * 77 +
                  static_cast<std::uint64_t>(bw));
          clf.inject_bit_flips(ber, rng);
          std::size_t hits = 0;
          for (std::size_t i = 0; i < test.size(); ++i)
            hits += clf.predict(test[i]) == ds.test_y[i];
          acc_sum += static_cast<double>(hits) /
                     static_cast<double>(test.size());
        }
        std::printf(" %7.1f%%", 100.0 * acc_sum / repeats);
      }
      const auto vos = arch::vos_for_error_rate(ber);
      std::printf(" %8.2fx %8.2fx\n", vos.static_reduction,
                  vos.dynamic_reduction);
    }
  }
  return 0;
}
