// Micro-benchmarks (google-benchmark) of the HDC primitive operations that
// dominate the software stack: random generation, binding, permutation,
// bundling, encoding and similarity search. Useful for spotting regressions
// in the kernels the Table 1 harness spends its time in.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "encoding/encoders.h"
#include "hdc/hypervector.h"
#include "hdc/item_memory.h"
#include "model/binary_model.h"
#include "model/hdc_classifier.h"

namespace {

using namespace generic;

void BM_RandomHv(benchmark::State& state) {
  Rng rng(1);
  const auto dims = static_cast<std::size_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(hdc::BinaryHV::random(dims, rng));
}
BENCHMARK(BM_RandomHv)->Arg(1024)->Arg(4096);

void BM_XorBind(benchmark::State& state) {
  Rng rng(2);
  const auto dims = static_cast<std::size_t>(state.range(0));
  auto a = hdc::BinaryHV::random(dims, rng);
  const auto b = hdc::BinaryHV::random(dims, rng);
  for (auto _ : state) {
    a ^= b;
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_XorBind)->Arg(4096);

void BM_Rotate(benchmark::State& state) {
  Rng rng(3);
  const auto a = hdc::BinaryHV::random(4096, rng);
  for (auto _ : state) benchmark::DoNotOptimize(a.rotated(7));
}
BENCHMARK(BM_Rotate);

void BM_Accumulate(benchmark::State& state) {
  Rng rng(4);
  const auto dims = static_cast<std::size_t>(state.range(0));
  const auto a = hdc::BinaryHV::random(dims, rng);
  hdc::IntHV acc(dims, 0);
  for (auto _ : state) {
    a.accumulate_into(acc);
    benchmark::DoNotOptimize(acc.data());
  }
}
BENCHMARK(BM_Accumulate)->Arg(1024)->Arg(4096);

void BM_IntDot(benchmark::State& state) {
  Rng rng(5);
  const auto dims = static_cast<std::size_t>(state.range(0));
  hdc::IntHV a(dims), b(dims);
  for (std::size_t i = 0; i < dims; ++i) {
    a[i] = static_cast<std::int32_t>(rng.range(-100, 100));
    b[i] = static_cast<std::int32_t>(rng.range(-30000, 30000));
  }
  for (auto _ : state) benchmark::DoNotOptimize(hdc::dot(a, b));
}
BENCHMARK(BM_IntDot)->Arg(4096);

void BM_EncodeGeneric(benchmark::State& state) {
  enc::EncoderConfig cfg;
  cfg.dims = static_cast<std::size_t>(state.range(0));
  enc::GenericEncoder encoder(cfg);
  Rng rng(6);
  std::vector<float> sample(128);
  for (auto& v : sample) v = static_cast<float>(rng.uniform());
  const std::vector<std::vector<float>> fit{{0.0f, 1.0f}};
  encoder.fit(fit);
  for (auto _ : state) benchmark::DoNotOptimize(encoder.encode(sample));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 128);
}
BENCHMARK(BM_EncodeGeneric)->Arg(1024)->Arg(4096);

void BM_ClassifierPredict(benchmark::State& state) {
  const std::size_t dims = 4096, classes = 16;
  Rng rng(7);
  std::vector<hdc::IntHV> train;
  std::vector<int> labels;
  for (std::size_t c = 0; c < classes; ++c)
    for (int i = 0; i < 4; ++i) {
      train.push_back(hdc::BinaryHV::random(dims, rng).to_int());
      labels.push_back(static_cast<int>(c));
    }
  model::HdcClassifier clf(dims, classes);
  clf.train_init(train, labels);
  const auto q = hdc::BinaryHV::random(dims, rng).to_int();
  for (auto _ : state) benchmark::DoNotOptimize(clf.predict(q));
}
BENCHMARK(BM_ClassifierPredict);

void BM_BinaryModelPredict(benchmark::State& state) {
  // 1-bit packed fast path vs BM_ClassifierPredict's int32 path.
  const std::size_t dims = 4096, classes = 16;
  Rng rng(8);
  std::vector<hdc::IntHV> train;
  std::vector<int> labels;
  for (std::size_t c = 0; c < classes; ++c)
    for (int i = 0; i < 4; ++i) {
      train.push_back(hdc::BinaryHV::random(dims, rng).to_int());
      labels.push_back(static_cast<int>(c));
    }
  model::HdcClassifier clf(dims, classes);
  clf.train_init(train, labels);
  const model::BinaryModel fast(clf);
  const auto q = hdc::BinaryHV::random(dims, rng);
  for (auto _ : state) benchmark::DoNotOptimize(fast.predict_packed(q));
}
BENCHMARK(BM_BinaryModelPredict);

}  // namespace

BENCHMARK_MAIN();
