// Ablations over GENERIC's design choices (beyond the paper's figures,
// backing the design discussion DESIGN.md calls out):
//   (a) window length n — §3.1 states n=3 maximizes mean accuracy;
//   (b) id binding on/off — the global-order term of Eq. 1;
//   (c) quantization level count — §5.1 notes the level memory is <10% of
//       area/power, so levels are effectively free; accuracy saturates;
//   (d) class-memory banking {1,2,4,8} — §4.3.2's area x power argument;
//   (e) retraining epochs — §5.2.1: "the accuracy of most datasets
//       saturates after a few epochs" (the paper still budgets 20).
#include <cstdio>
#include <vector>

#include "arch/energy_model.h"
#include "bench/bench_util.h"
#include "common/stats.h"
#include "data/benchmarks.h"
#include "encoding/encoders.h"
#include "model/pipeline.h"

using namespace generic;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const bool quick = flags.has("--quick");
  flags.done();
  const std::size_t dims = quick ? 1024 : 2048;
  const std::size_t epochs = quick ? 5 : 10;
  // A positional, a temporal and a sequence task: the three structural
  // regimes windows must serve.
  const std::vector<std::string> names{"MNIST", "EEG", "LANG"};

  std::printf("Ablation (a): GENERIC accuracy (%%) vs window length n\n");
  std::printf("%-8s", "n");
  for (const auto& n : names) std::printf(" %8s", n.c_str());
  std::printf(" %8s\n", "mean");
  bench::print_rule(8 + 9 * (names.size() + 1));
  for (std::size_t n = 1; n <= 5; ++n) {
    std::printf("%-8zu", n);
    std::vector<double> accs;
    for (const auto& name : names) {
      const auto ds = data::make_benchmark(name);
      enc::EncoderConfig cfg;
      cfg.dims = dims;
      cfg.window = n;
      cfg.use_ids = data::generic_config_for(name).use_ids;
      enc::GenericEncoder encoder(cfg);
      const auto res = model::run_hdc_classification(encoder, ds, epochs);
      accs.push_back(100.0 * res.test_accuracy);
      std::printf(" %7.1f%%", accs.back());
    }
    std::printf(" %7.1f%%\n", mean(accs));
  }

  std::printf("\nAblation (b): id binding on/off (n = 3)\n");
  std::printf("%-8s %10s %10s\n", "dataset", "ids on", "ids off");
  bench::print_rule(32);
  for (const auto& name : names) {
    const auto ds = data::make_benchmark(name);
    double acc[2];
    for (int ids = 0; ids < 2; ++ids) {
      enc::EncoderConfig cfg;
      cfg.dims = dims;
      cfg.use_ids = ids == 1;
      enc::GenericEncoder encoder(cfg);
      acc[ids] = 100.0 * model::run_hdc_classification(encoder, ds, epochs)
                             .test_accuracy;
    }
    std::printf("%-8s %9.1f%% %9.1f%%\n", name.c_str(), acc[1], acc[0]);
  }

  std::printf("\nAblation (c): accuracy (%%) vs quantization levels\n");
  std::printf("%-8s", "levels");
  for (const auto& n : names) std::printf(" %8s", n.c_str());
  std::printf("\n");
  bench::print_rule(8 + 9 * names.size());
  for (std::size_t levels : {4u, 16u, 64u, 128u}) {
    std::printf("%-8zu", levels);
    for (const auto& name : names) {
      const auto ds = data::make_benchmark(name);
      enc::EncoderConfig cfg;
      cfg.dims = dims;
      cfg.levels = levels;
      cfg.use_ids = data::generic_config_for(name).use_ids;
      enc::GenericEncoder encoder(cfg);
      const auto res = model::run_hdc_classification(encoder, ds, epochs);
      std::printf(" %7.1f%%", 100.0 * res.test_accuracy);
    }
    std::printf("\n");
  }

  std::printf("\nAblation (e): accuracy (%%) vs retraining epochs\n");
  std::printf("%-8s", "epochs");
  for (const auto& n : names) std::printf(" %8s", n.c_str());
  std::printf("\n");
  bench::print_rule(8 + 9 * names.size());
  for (std::size_t ep : {0u, 1u, 2u, 5u, 10u, 20u}) {
    std::printf("%-8zu", ep);
    for (const auto& name : names) {
      const auto ds = data::make_benchmark(name);
      enc::EncoderConfig cfg;
      cfg.dims = dims;
      cfg.use_ids = data::generic_config_for(name).use_ids;
      enc::GenericEncoder encoder(cfg);
      const auto res = model::run_hdc_classification(encoder, ds, ep);
      std::printf(" %7.1f%%", 100.0 * res.test_accuracy);
    }
    std::printf("\n");
  }

  std::printf("\nAblation (d): class-memory banking (typical app, nC=9)\n");
  std::printf("%-6s %12s %14s %16s\n", "banks", "active", "static (mW)",
              "area x power");
  bench::print_rule(52);
  arch::EnergyModel em;
  arch::AppSpec typical;
  typical.dims = 4096;
  typical.features = 64;
  typical.classes = 9;
  for (std::size_t banks : {1u, 2u, 4u, 8u}) {
    const double frac = em.active_bank_fraction(typical, banks);
    arch::Breakdown st = em.static_power_full_mw();
    st.class_mem *= frac;
    const double cost = st.total() * em.banking_area_overhead(banks);
    std::printf("%-6zu %11.0f%% %14.4f %16.4f%s\n", banks, 100.0 * frac,
                st.total(), cost, banks == 4 ? "  <- minimum (§4.3.2)" : "");
  }
  return 0;
}
