// Shared helpers for the table/figure harnesses: fixed-width table
// printing and strict flag parsing. Each bench binary regenerates one
// table or figure of the paper (see DESIGN.md §2); output is plain text
// shaped like the paper's rows so runs can be diffed against
// EXPERIMENTS.md. Wall-clock timing lives in obs::Stopwatch (src/obs).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <map>
#include <set>
#include <string>
#include <string_view>

#include "hdc/kernels.h"
#include "obs/obs.h"

namespace generic::bench {

/// Strict command-line parser for the bench/tool harnesses. Flags are
/// spelled `--key` or `--key=value` (plus the historical `--threads N`
/// two-token spelling). Construction rejects positional arguments and the
/// malformed `--key=` (empty value); done() rejects any flag no accessor
/// asked about. Errors print to stderr and exit(2), so a typo'd sweep
/// fails loudly instead of silently running with defaults.
class Flags {
 public:
  Flags(int argc, char** argv) : program_(argc > 0 ? argv[0] : "bench") {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg.rfind("--", 0) != 0 || arg.size() == 2)
        die("unexpected argument '" + std::string(arg) +
            "' (flags are --key or --key=value)");
      const auto eq = arg.find('=');
      if (eq != std::string_view::npos) {
        if (eq + 1 == arg.size())
          die("empty value in '" + std::string(arg) +
              "' (use --key=value or drop the '=')");
        values_[std::string(arg.substr(0, eq))] =
            std::string(arg.substr(eq + 1));
      } else if (arg == "--threads" && i + 1 < argc &&
                 is_number(argv[i + 1])) {
        values_["--threads"] = argv[++i];
      } else {
        values_[std::string(arg)] = "";
      }
    }
  }

  /// True when `--flag` appears (bare or with a value).
  bool has(std::string_view flag) {
    requested_.insert(std::string(flag));
    return values_.count(std::string(flag)) != 0;
  }

  /// Value of `--key=value`, or `fallback` when the flag is absent. A bare
  /// `--key` with no value is an error for value-carrying flags.
  std::string value(std::string_view key, std::string_view fallback) {
    requested_.insert(std::string(key));
    const auto it = values_.find(std::string(key));
    if (it == values_.end()) return std::string(fallback);
    if (it->second.empty())
      die("flag '" + it->first + "' needs a value (use " + it->first +
          "=...)");
    return it->second;
  }

  /// Integer value of `--key=N`, or `fallback` when absent. Non-numeric
  /// values are an error (the old parser silently fell back).
  std::size_t size(std::string_view key, std::size_t fallback) {
    const std::string v = value(key, "");
    if (v.empty()) return fallback;
    if (!is_number(v.c_str()))
      die("flag '" + std::string(key) + "' needs an integer, got '" + v +
          "'");
    return static_cast<std::size_t>(std::strtoull(v.c_str(), nullptr, 10));
  }

  /// Like size(), but zero is an error too: use for counts and intervals
  /// where 0 can only be a typo (silently accepting --metrics-every=0 or
  /// --rate=0 would run forever or divide by zero downstream).
  std::size_t positive_size(std::string_view key, std::size_t fallback) {
    const std::string v = value(key, "");
    if (v.empty()) return fallback;
    const std::size_t n = size(key, fallback);
    if (n == 0)
      die("flag '" + std::string(key) + "' must be a positive integer");
    return n;
  }

  /// Real value of `--key=X`, or `fallback` when absent. The whole token
  /// must parse (strtod leftovers are an error, not a truncation).
  double real(std::string_view key, double fallback) {
    const std::string v = value(key, "");
    if (v.empty()) return fallback;
    char* end = nullptr;
    const double x = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0')
      die("flag '" + std::string(key) + "' needs a number, got '" + v + "'");
    return x;
  }

  /// Like real(), but the value must be strictly positive (rates, periods).
  double positive_real(std::string_view key, double fallback) {
    const std::string v = value(key, "");
    if (v.empty()) return fallback;
    const double x = real(key, fallback);
    if (!(x > 0.0))
      die("flag '" + std::string(key) + "' must be > 0, got '" + v + "'");
    return x;
  }

  /// Pool lane count from `--threads=N` / `--threads N`. Default 1 — every
  /// bench stays serial, and therefore byte-identical to its pre-parallel
  /// output, unless asked; 0 also means serial.
  std::size_t threads() {
    const std::size_t n = size("--threads", 1);
    return n == 0 ? 1 : n;
  }

  /// Call after the last accessor: any parsed flag nothing asked about is
  /// an unknown flag and aborts.
  void done() {
    for (const auto& [key, val] : values_) {
      (void)val;
      if (requested_.count(key) == 0) die("unknown flag '" + key + "'");
    }
  }

 private:
  [[noreturn]] void die(const std::string& msg) const {
    std::fprintf(stderr, "%s: error: %s\n", program_.c_str(), msg.c_str());
    std::exit(2);
  }

  static bool is_number(const char* s) {
    if (*s == '\0') return false;
    for (; *s != '\0'; ++s)
      if (*s < '0' || *s > '9') return false;
    return true;
  }

  std::string program_;
  std::map<std::string, std::string> values_;
  std::set<std::string> requested_;
};

/// Consume --kernel-backend=<auto|scalar|avx2|avx512|neon> and force the
/// XOR+popcount kernel backend (hdc/kernels.h) before any hypervector work
/// runs. GENERIC_KERNEL_BACKEND sets the same thing from the environment;
/// the flag wins because it resolves first. Unknown or uncompiled backends
/// exit(2) with the list of choices this binary actually has.
inline void apply_kernel_backend(Flags& flags) {
  const std::string name = flags.value("--kernel-backend", "auto");
  try {
    hdc::kernels::set_backend_from_string(name);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "--kernel-backend: %s\n", e.what());
    std::exit(2);
  }
}

inline void print_rule(std::size_t width) {
  for (std::size_t i = 0; i < width; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

}  // namespace generic::bench
