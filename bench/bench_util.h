// Shared helpers for the table/figure harnesses: fixed-width table
// printing, wall-clock timing, and simple flag parsing. Each bench binary
// regenerates one table or figure of the paper (see DESIGN.md §2); output
// is plain text shaped like the paper's rows so runs can be diffed against
// EXPERIMENTS.md.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

namespace generic::bench {

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// True when `--flag` appears in argv.
inline bool has_flag(int argc, char** argv, std::string_view flag) {
  for (int i = 1; i < argc; ++i)
    if (flag == argv[i]) return true;
  return false;
}

/// Value of `--key=value`, or `fallback` when absent.
inline std::string flag_value(int argc, char** argv, std::string_view key,
                              std::string_view fallback) {
  const std::string prefix = std::string(key) + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return std::string(arg.substr(prefix.size()));
  }
  return std::string(fallback);
}

/// Integer value of `--key=value`, or `fallback` when absent/non-numeric.
inline std::size_t flag_size(int argc, char** argv, std::string_view key,
                             std::size_t fallback) {
  const std::string v = flag_value(argc, argv, key, "");
  if (v.empty()) return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0') return fallback;
  return static_cast<std::size_t>(parsed);
}

/// Pool lane count from --threads=N (supports the space-separated
/// `--threads N` spelling too). Default 1 — every bench stays serial, and
/// therefore byte-identical to its pre-parallel output, unless asked.
inline std::size_t threads_flag(int argc, char** argv) {
  const std::size_t eq = flag_size(argc, argv, "--threads", 0);
  if (eq != 0) return eq;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view(argv[i]) == "--threads") {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(argv[i + 1], &end, 10);
      if (end != argv[i + 1] && *end == '\0' && parsed > 0)
        return static_cast<std::size_t>(parsed);
    }
  }
  return 1;
}

inline void print_rule(std::size_t width) {
  for (std::size_t i = 0; i < width; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

}  // namespace generic::bench
