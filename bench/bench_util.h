// Shared helpers for the table/figure harnesses: fixed-width table
// printing, wall-clock timing, and simple flag parsing. Each bench binary
// regenerates one table or figure of the paper (see DESIGN.md §2); output
// is plain text shaped like the paper's rows so runs can be diffed against
// EXPERIMENTS.md.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace generic::bench {

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// True when `--flag` appears in argv.
inline bool has_flag(int argc, char** argv, std::string_view flag) {
  for (int i = 1; i < argc; ++i)
    if (flag == argv[i]) return true;
  return false;
}

/// Value of `--key=value`, or `fallback` when absent.
inline std::string flag_value(int argc, char** argv, std::string_view key,
                              std::string_view fallback) {
  const std::string prefix = std::string(key) + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return std::string(arg.substr(prefix.size()));
  }
  return std::string(fallback);
}

inline void print_rule(std::size_t width) {
  for (std::size_t i = 0; i < width; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

}  // namespace generic::bench
