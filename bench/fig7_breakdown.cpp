// Reproduces Figure 7: area, static-power and dynamic-power breakdown of
// the GENERIC ASIC (14 nm, 500 MHz). Area and static power come from the
// calibrated component model; the dynamic breakdown is the average over
// the eleven benchmark workloads' inference access patterns.
//
// Expected shape: class memories dominate every chart (~72-90%); the level
// memory stays below 10% of area and power (§5.1: "using more levels does
// not considerably affect the area or power").
#include <cstdio>

#include "arch/energy_model.h"
#include "bench/bench_util.h"
#include "data/benchmarks.h"

using namespace generic;

namespace {

void print_breakdown(const char* title, const arch::Breakdown& b,
                     const char* unit) {
  const double total = b.total();
  std::printf("\n%s (total %.3f %s)\n", title, total, unit);
  const struct {
    const char* label;
    double value;
  } rows[] = {{"control", b.control},       {"datapath", b.datapath},
              {"base mem", b.base_mem},     {"feature mem", b.feature_mem},
              {"level mem", b.level_mem},   {"class mem", b.class_mem}};
  for (const auto& row : rows)
    std::printf("  %-12s %8.4f %-4s %5.1f%%\n", row.label, row.value, unit,
                100.0 * row.value / total);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags(argc, argv).done();
  arch::EnergyModel em;
  arch::CycleModel cm;

  std::printf("Figure 7: GENERIC area and power breakdown (14 nm)\n");
  print_breakdown("(a) Area", em.area_mm2(), "mm2");
  print_breakdown("(b) Static power (all banks on)", em.static_power_full_mw(),
                  "mW");

  // Dynamic power averaged over the benchmark suite's inference workloads.
  arch::Breakdown dyn_avg;
  double static_typical = 0.0;
  std::size_t n = 0;
  for (const auto& name : data::benchmark_names()) {
    const auto ds = data::make_benchmark(name);
    arch::AppSpec spec;
    spec.dims = 4096;
    spec.features = ds.num_features();
    spec.classes = ds.num_classes;
    dyn_avg += em.dynamic_power_mw(spec, cm.infer_input(spec));
    static_typical += em.static_power_mw(spec).total();
    ++n;
  }
  const double inv = 1.0 / static_cast<double>(n);
  arch::Breakdown scaled;
  scaled.control = dyn_avg.control * inv;
  scaled.datapath = dyn_avg.datapath * inv;
  scaled.base_mem = dyn_avg.base_mem * inv;
  scaled.feature_mem = dyn_avg.feature_mem * inv;
  scaled.level_mem = dyn_avg.level_mem * inv;
  scaled.class_mem = dyn_avg.class_mem * inv;
  print_breakdown("(c) Dynamic power (benchmark average)", scaled, "mW");

  std::printf(
      "\nTypical static power with application-opportunistic gating: "
      "%.3f mW (worst case 0.250 mW)\n",
      static_typical * inv);
  return 0;
}
