// Microbenchmark for the runtime-dispatched XOR+popcount kernel backends
// (hdc/kernels.h) and the stored-vs-rematerialized item/level memory trade
// (hdc/item_memory.h).
//
// For every backend available on this host it measures:
//   * hamming_blocked  — one query vs one reference (1v1 span kernel)
//   * nearest_hamming  — one query vs `--classes` rows (the tile×rows
//                        kernel that dominates classification/serving)
// and reports Mwords/s plus speedup vs the forced-scalar reference. Every
// measured distance is cross-checked against scalar before timing: a
// backend that is fast but wrong fails loudly here, not in production.
//
// The remat section times GenericEncoder encode throughput with stored vs
// rematerialized level memory and reports both footprints — the
// Schmuck/Benini/Rahimi memory/recompute trade, quantified.
//
// All numbers land in generic.metrics.v1 gauges when --metrics is given:
//   kernels.<backend>.blocked_mwords_per_s
//   kernels.<backend>.nearest_mwords_per_s
//   kernels.<backend>.nearest_speedup_milli   (1000 = scalar parity)
//   remat.encode_stored_ns_per_sample / remat.encode_remat_ns_per_sample
//   remat.recompute_overhead_milli
//   remat.footprint.stored_payload_bytes / remat.footprint.remat_payload_bytes
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "encoding/encoders.h"
#include "hdc/hypervector.h"
#include "hdc/kernels.h"
#include "hdc/ops.h"
#include "obs/export.h"
#include "obs/obs.h"

using namespace generic;
namespace k = hdc::kernels;

namespace {

struct Workload {
  hdc::BinaryHV query;
  std::vector<hdc::BinaryHV> refs;
  std::vector<hdc::BinaryHV> queries;
};

Workload make_workload(std::size_t dims, std::size_t classes,
                       std::size_t queries) {
  Rng rng(0xBE7C8);
  Workload w;
  w.query = hdc::BinaryHV::random(dims, rng);
  for (std::size_t c = 0; c < classes; ++c)
    w.refs.push_back(hdc::BinaryHV::random(dims, rng));
  for (std::size_t q = 0; q < queries; ++q)
    w.queries.push_back(hdc::BinaryHV::random(dims, rng));
  return w;
}

/// Time `body` (which processes `words_per_rep` packed words per call)
/// until ~target_s elapsed; returns Mwords/s.
template <typename F>
double measure_mwords(F&& body, double words_per_rep, double target_s) {
  // Calibrate: run once, scale the rep count to the time budget.
  obs::Stopwatch warm;
  body();
  const double once = warm.seconds();
  std::size_t reps = once > 0 ? static_cast<std::size_t>(target_s / once) : 1;
  if (reps < 3) reps = 3;
  obs::Stopwatch timer;
  for (std::size_t r = 0; r < reps; ++r) body();
  const double secs = timer.seconds();
  return words_per_rep * static_cast<double>(reps) / secs / 1e6;
}

void set_gauge(const std::string& name, double v) {
  obs::Registry::instance().gauge(name).set(
      v < 0 ? 0 : static_cast<std::uint64_t>(v + 0.5));
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const bool quick = flags.has("--quick");
  const std::size_t dims = flags.size("--dims", 4096);
  const std::size_t classes = flags.size("--classes", 64);
  const std::size_t queries = flags.size("--queries", 32);
  obs::Session session(flags.value("--trace", ""),
                       flags.value("--metrics", ""));
  bench::apply_kernel_backend(flags);
  flags.done();
  const k::Backend session_backend = k::active_backend();

  const double target_s = quick ? 0.05 : 0.4;
  const Workload w = make_workload(dims, classes, queries);
  const double words = static_cast<double>(w.query.num_words());

  // Scalar truths every backend is diffed against before it is timed.
  k::set_backend(k::Backend::kScalar);
  const std::size_t want_blocked = hdc::hamming_blocked(w.query, w.refs[0]);
  std::vector<std::size_t> want_nearest;
  for (const auto& q : w.queries)
    want_nearest.push_back(hdc::nearest_hamming(q, w.refs));

  std::printf("kernels: dims=%zu classes=%zu queries=%zu active=%s\n", dims,
              classes, queries,
              std::string(k::to_string(session_backend)).c_str());
  std::printf("%-8s %22s %22s %10s\n", "backend", "blocked Mwords/s",
              "nearest Mwords/s", "speedup");
  bench::print_rule(66);

  double scalar_nearest = 0.0;
  for (k::Backend backend : k::compiled_backends()) {
    if (!k::available(backend)) continue;
    k::set_backend(backend);
    const std::string name(k::to_string(backend));

    // Correctness gate: bit-identical distances and winners or abort.
    if (hdc::hamming_blocked(w.query, w.refs[0]) != want_blocked) {
      std::fprintf(stderr, "%s: blocked distance diverged from scalar\n",
                   name.c_str());
      return 1;
    }
    for (std::size_t q = 0; q < w.queries.size(); ++q)
      if (hdc::nearest_hamming(w.queries[q], w.refs) != want_nearest[q]) {
        std::fprintf(stderr, "%s: nearest winner diverged from scalar\n",
                     name.c_str());
        return 1;
      }

    std::size_t sink = 0;
    const double blocked = measure_mwords(
        [&] { sink += hdc::hamming_blocked(w.query, w.refs[0]); }, words,
        target_s);
    const double nearest = measure_mwords(
        [&] {
          for (const auto& q : w.queries)
            sink += hdc::nearest_hamming(q, w.refs);
        },
        words * static_cast<double>(classes * queries), target_s);
    if (backend == k::Backend::kScalar) scalar_nearest = nearest;
    const double speedup = scalar_nearest > 0 ? nearest / scalar_nearest : 0;

    std::printf("%-8s %22.0f %22.0f %9.2fx%s\n", name.c_str(), blocked,
                nearest, speedup, sink == 0 ? " " : "");
    set_gauge("kernels." + name + ".blocked_mwords_per_s", blocked);
    set_gauge("kernels." + name + ".nearest_mwords_per_s", nearest);
    set_gauge("kernels." + name + ".nearest_speedup_milli", speedup * 1000.0);
  }

  // ---- stored vs rematerialized memories ---------------------------------
  Rng rng(0x5A17);
  const std::size_t features = 32;
  const std::size_t samples = quick ? 16 : 64;
  std::vector<std::vector<float>> xs(samples, std::vector<float>(features));
  for (auto& x : xs)
    for (auto& v : x) v = static_cast<float>(rng.uniform()) * 2.0f - 1.0f;

  enc::EncoderConfig cfg;
  cfg.dims = dims;
  enc::GenericEncoder stored(cfg);
  cfg.remat = true;
  enc::GenericEncoder remat(cfg);
  stored.fit(xs);
  remat.fit(xs);

  std::size_t enc_sink = 0;
  auto encode_all_with = [&](const enc::Encoder& e) {
    for (const auto& x : xs) enc_sink += static_cast<std::size_t>(e.encode(x)[0]);
  };
  const double stored_mw = measure_mwords([&] { encode_all_with(stored); },
                                          static_cast<double>(samples),
                                          target_s);
  const double remat_mw = measure_mwords([&] { encode_all_with(remat); },
                                         static_cast<double>(samples),
                                         target_s);
  // measure_mwords returned "Msamples/s"; invert into ns/sample.
  const double stored_ns = 1e3 / stored_mw;
  const double remat_ns = 1e3 / remat_mw;
  const double overhead = stored_ns > 0 ? remat_ns / stored_ns : 0;

  std::printf("\nremat: generic encoder, dims=%zu levels=%zu%s\n", dims,
              cfg.levels, enc_sink == std::size_t(-1) ? "!" : "");
  std::printf("  stored: %10.0f ns/sample  footprint %8zu B\n", stored_ns,
              stored.memory_footprint_bytes());
  std::printf("  remat : %10.0f ns/sample  footprint %8zu B  (%.2fx encode "
              "cost)\n",
              remat_ns, remat.memory_footprint_bytes(), overhead);
  set_gauge("remat.encode_stored_ns_per_sample", stored_ns);
  set_gauge("remat.encode_remat_ns_per_sample", remat_ns);
  set_gauge("remat.recompute_overhead_milli", overhead * 1000.0);
  set_gauge("remat.footprint.stored_payload_bytes",
            static_cast<double>(stored.memory_footprint_bytes()));
  set_gauge("remat.footprint.remat_payload_bytes",
            static_cast<double>(remat.memory_footprint_bytes()));

  k::set_backend(session_backend);
  return 0;
}
