// Microbenchmark for the rtrace recorder's three cost regimes
// (obs/rtrace.h, docs/observability.md):
//   * record   — trace sink on: seq assignment + append to the trace log
//                (the cost a --rtrace run pays per lifecycle event)
//   * disabled — both sinks off: should be ~one relaxed load + branch,
//                the cost every *uninstrumented* run pays at each site
//   * wrap     — flight sink on with a tiny ring, so every record
//                overwrites the oldest slot (steady-state black-box cost)
//
// Numbers land in generic.metrics.v1 gauges when --metrics is given:
//   obs.rtrace.record_ns_per_event
//   obs.rtrace.disabled_ns_per_event
//   obs.rtrace.wrap_ns_per_event
//   obs.rtrace.events_per_rep
//
// Under -DGENERIC_OBS=OFF record() compiles to nothing; the bench still
// runs and reports the (near-zero) no-op cost, so the gauges stay
// comparable across build flavors.
#include <cstdio>

#include "bench/bench_util.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "obs/rtrace.h"

using namespace generic;
namespace rtrace = obs::rtrace;

namespace {

/// Time `body` until ~target_s elapsed; returns ns per inner event given
/// `events_per_rep` record() calls per body() invocation.
template <typename F>
double measure_ns(F&& body, double events_per_rep, double target_s) {
  obs::Stopwatch warm;
  body();
  const double once = warm.seconds();
  std::size_t reps = once > 0 ? static_cast<std::size_t>(target_s / once) : 1;
  if (reps < 3) reps = 3;
  obs::Stopwatch timer;
  for (std::size_t r = 0; r < reps; ++r) body();
  const double secs = timer.seconds();
  return secs * 1e9 / (static_cast<double>(reps) * events_per_rep);
}

void set_gauge(const char* name, double v) {
  obs::Registry::instance().gauge(name).set(
      v < 0 ? 0 : static_cast<std::uint64_t>(v + 0.5));
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const bool quick = flags.has("--quick");
  const std::size_t events = flags.positive_size("--events", 4096);
  obs::Session session(flags.value("--trace", ""),
                       flags.value("--metrics", ""));
  flags.done();

  const double target_s = quick ? 0.05 : 0.4;
  const double per_rep = static_cast<double>(events);

  // A body of `events` records keeps loop overhead amortised and, for the
  // trace phase, stays far under kMaxTraceEvents between resets.
  auto burst = [&](std::uint64_t base) {
    for (std::size_t i = 0; i < events; ++i)
      rtrace::record(rtrace::EventKind::kPredict, base + i, i, 1, 0,
                     static_cast<std::int64_t>(i));
  };

  // record: trace sink on. Reset between timing reps is not possible (the
  // rep loop lives inside measure_ns), so rely on the log's drop-past-cap
  // path being the same append cost either way, and reset around the phase.
  rtrace::reset();
  rtrace::set_trace(true);
  rtrace::set_flight(false);
  const double record_ns = measure_ns([&] { burst(0); }, per_rep, target_s);
  const std::uint64_t recorded = rtrace::trace_log().events.size();
  rtrace::reset();

  // disabled: both sinks off — the cost at every instrumented call site in
  // an uninstrumented run (~one relaxed load + branch, or pure no-op when
  // built with -DGENERIC_OBS=OFF).
  rtrace::set_trace(false);
  rtrace::set_flight(false);
  const double disabled_ns = measure_ns([&] { burst(0); }, per_rep, target_s);

  // wrap: flight ring only, capacity far below the burst size so (nearly)
  // every record overwrites the oldest slot — the black box at cruise.
  rtrace::reset();
  rtrace::set_flight_capacity(64);
  rtrace::set_flight(true);
  const double wrap_ns = measure_ns([&] { burst(0); }, per_rep, target_s);
  rtrace::set_flight(false);
  rtrace::reset();
  rtrace::set_flight_capacity(rtrace::kDefaultFlightCapacity);

  std::printf("obs_overhead: %zu events/rep (obs %s)\n", events,
              GENERIC_OBS_ENABLED ? "on" : "off");
  bench::print_rule(48);
  std::printf("%-26s %12.2f ns/event\n", "record (trace sink)", record_ns);
  std::printf("%-26s %12.2f ns/event\n", "disabled (sinks off)", disabled_ns);
  std::printf("%-26s %12.2f ns/event\n", "wrap (flight ring)", wrap_ns);
  std::printf("trace log kept %llu events in the timed phase\n",
              static_cast<unsigned long long>(recorded));

  set_gauge("obs.rtrace.record_ns_per_event", record_ns);
  set_gauge("obs.rtrace.disabled_ns_per_event", disabled_ns);
  set_gauge("obs.rtrace.wrap_ns_per_event", wrap_ns);
  set_gauge("obs.rtrace.events_per_rep", per_rep);
  return 0;
}
