// generic-train: train a GENERIC HDC model on a labelled CSV and save it.
//
//   generic_train --data=train.csv --model=out.ghdc
//                 [--dims=4096] [--levels=64] [--window=3] [--no-ids]
//                 [--epochs=20] [--test-frac=0.25] [--label-col=-1]
//                 [--seed=1] [--trace=out.json] [--metrics=out.json]
//
// CSV format: one row per sample, numeric features, integer class label in
// the last column (or --label-col). A header line is auto-skipped. The
// saved model file loads back with generic_infer or model::load_model_file.
#include <cstdio>

#include "data/csv.h"
#include "encoding/encoders.h"
#include "model/model_io.h"
#include "model/pipeline.h"
#include "obs/export.h"
#include "tools/cli_util.h"

using namespace generic;

int main(int argc, char** argv) {
  const std::string data_path = tools::flag_value(argc, argv, "--data");
  const std::string model_path = tools::flag_value(argc, argv, "--model");
  if (data_path.empty() || model_path.empty())
    tools::usage_exit(
        "usage: generic_train --data=train.csv --model=out.ghdc\n"
        "       [--dims=4096] [--levels=64] [--window=3] [--no-ids]\n"
        "       [--epochs=20] [--test-frac=0.25] [--label-col=-1] [--seed=1]\n"
        "       [--trace=out.json] [--metrics=out.json]\n"
        "       [--kernel-backend=auto|scalar|avx2|avx512|neon]\n");
  obs::Session obs_session(tools::flag_value(argc, argv, "--trace"),
                           tools::flag_value(argc, argv, "--metrics"));
  tools::apply_kernel_backend(argc, argv);

  try {
    auto samples = data::load_labeled_csv(
        data_path,
        static_cast<int>(tools::flag_double(argc, argv, "--label-col", -1)));
    const double test_frac =
        tools::flag_double(argc, argv, "--test-frac", 0.25);
    const auto seed =
        static_cast<std::uint64_t>(tools::flag_size(argc, argv, "--seed", 1));
    std::printf("loaded %zu samples, %zu features, %zu classes\n",
                samples.x.size(), samples.x.front().size(),
                samples.num_classes);

    const auto ds =
        data::to_dataset("cli", std::move(samples), 1.0 - test_frac, seed);

    enc::EncoderConfig cfg;
    cfg.dims = tools::flag_size(argc, argv, "--dims", 4096);
    cfg.levels = tools::flag_size(argc, argv, "--levels", 64);
    cfg.window = tools::flag_size(argc, argv, "--window", 3);
    cfg.use_ids = !tools::has_flag(argc, argv, "--no-ids");
    cfg.seed = seed;

    enc::GenericEncoder encoder(cfg);
    encoder.fit(ds.train_x);
    const auto train_hv = model::encode_all(encoder, ds.train_x);
    model::HdcClassifier clf(cfg.dims, ds.num_classes);
    clf.fit(train_hv, ds.train_y,
            tools::flag_size(argc, argv, "--epochs", 20));

    std::size_t hits = 0;
    for (std::size_t i = 0; i < ds.train_x.size(); ++i)
      hits += clf.predict(train_hv[i]) == ds.train_y[i];
    std::printf("train accuracy: %.2f%%\n",
                100.0 * static_cast<double>(hits) /
                    static_cast<double>(ds.train_size()));
    if (ds.test_size() > 0) {
      hits = 0;
      for (std::size_t i = 0; i < ds.test_x.size(); ++i)
        hits += clf.predict(encoder.encode(ds.test_x[i])) == ds.test_y[i];
      std::printf("held-out accuracy (%zu samples): %.2f%%\n", ds.test_size(),
                  100.0 * static_cast<double>(hits) /
                      static_cast<double>(ds.test_size()));
    }

    model::save_model_file(model_path, encoder, clf);
    std::printf("model written to %s\n", model_path.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
