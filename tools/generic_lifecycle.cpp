// generic_lifecycle — the online-lifecycle scenario end to end
// (docs/lifecycle.md): a model serves a seeded concept-shift stream, the
// drift detector notices the post-shift margin collapse, a background
// retrain adapts a shadow on replayed canaries, validation gates it at
// every ladder rung, and the serving engine hot-swaps it in between batches
// — zero requests dropped, zero served from a half-installed model.
//
//   generic_lifecycle [--quick] [--requests=N] [--rate=RPS] [--shift-at=K]
//                     [--canary-every=M] [--severity=S] [--seed=S]
//                     [--threads=N] [--retrain-cost-us=C]
//                     [--shadow-fault-rate=P] [--ckpt-dir=DIR]
//                     [--out=serve.json] [--lifecycle-out=lifecycle.json]
//                     [--trace=out.json] [--metrics=out.json]
//                     [--rtrace=out.json] [--rtrace-chrome=out.json]
//                     [--flight-dump=out.json]
//
// Determinism: the whole run — every arrival, margin, alarm, retrain
// trigger, validation verdict and swap, and both JSON reports — is a pure
// function of (flags, seed). --threads only changes wall-clock speed;
// reports are byte-identical (the CI lifecycle smoke cmp's them).
//
// --shadow-fault-rate corrupts the retrained shadow before validation (the
// rejection-gate demo): the validator must refuse it and the engine must
// record a rollback instead of a swap.
#include <array>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "data/drift.h"
#include "encoding/encoders.h"
#include "lifecycle/manager.h"
#include "model/pipeline.h"
#include "obs/export.h"
#include "obs/rtrace.h"
#include "serve/engine.h"

using namespace generic;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const bool quick = flags.has("--quick");
  const std::size_t dims = quick ? 1024 : 2048;
  const std::size_t epochs = quick ? 5 : 10;
  const std::size_t requests =
      flags.positive_size("--requests", quick ? 2000 : 4000);
  const std::size_t rate_rps = flags.positive_size("--rate", 1200);
  const std::size_t shift_at =
      flags.size("--shift-at", quick ? 600 : 1000);
  const std::size_t canary_every = flags.positive_size("--canary-every", 2);
  const double severity = flags.real("--severity", 0.75);
  const std::uint64_t seed = flags.size("--seed", 0xD21F7);
  const std::size_t threads = flags.threads();
  const std::uint64_t retrain_cost_us =
      flags.positive_size("--retrain-cost-us", 30000);
  const double shadow_fault_rate = flags.real("--shadow-fault-rate", 0.0);
  const std::string ckpt_dir = flags.value("--ckpt-dir", "");
  const std::string out_path = flags.value("--out", "");
  const std::string lifecycle_out = flags.value("--lifecycle-out", "");
  const std::string rtrace_path = flags.value("--rtrace", "");
  const std::string rtrace_chrome = flags.value("--rtrace-chrome", "");
  const std::string flight_path = flags.value("--flight-dump", "");
  obs::Session obs_session(flags.value("--trace", ""),
                           flags.value("--metrics", ""));
  bench::apply_kernel_backend(flags);
  flags.done();

  if (shift_at >= requests) {
    std::fprintf(stderr, "error: need --shift-at < --requests\n");
    return 2;
  }

  obs::rtrace::set_trace(!rtrace_path.empty() || !rtrace_chrome.empty());
  obs::rtrace::set_flight(!flight_path.empty());

  set_global_threads(threads);
  ThreadPool& pool = global_pool();

  // The concept-shift stream: one label space, two feature regimes.
  data::DriftStreamSpec dspec;
  dspec.severity = severity;
  dspec.seed = seed;
  data::DriftStream stream(dspec);

  // Train encoder + initial model on PRE-shift data only — the model the
  // shift will strand.
  const auto ds = stream.make_dataset(quick ? 600 : 1200, 200, false);
  enc::EncoderConfig ecfg;
  ecfg.dims = dims;
  enc::GenericEncoder encoder(ecfg);
  encoder.fit(ds.train_x);
  const auto train = model::encode_all(encoder, ds.train_x, pool);
  auto initial = std::make_shared<model::HdcClassifier>(dims, dspec.classes);
  initial->fit_parallel(train, ds.train_y, epochs, pool);

  // The serving trace: request i serves stream sample i — pre-shift regime
  // before --shift-at, post-shift after. Encoded up front so the engine's
  // query indices cover both regimes.
  std::vector<std::vector<float>> xs;
  std::vector<int> labels;
  xs.reserve(requests);
  labels.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    auto s = stream.sample(i, i >= shift_at);
    xs.push_back(std::move(s.x));
    labels.push_back(s.label);
  }
  const auto queries = model::encode_all(encoder, xs, pool);

  serve::ServeConfig cfg;
  cfg.seed = seed ^ 0x5EB7EULL;
  cfg.min_dims = dims / 4;  // ladder {D, D/2, D/4}

  lifecycle::LifecycleConfig lcfg;
  lcfg.replay_capacity = 256;
  lcfg.holdout = 96;
  lcfg.min_replay = 192;
  lcfg.min_fresh = 160;
  lcfg.retrain_epochs = 3;
  lcfg.retrain_cost_us = retrain_cost_us;
  lcfg.cooldown_us = 50000;
  lcfg.min_dims = cfg.min_dims;
  lcfg.threads = threads == 0 ? 1 : threads;
  lcfg.seed = seed ^ 0xC1F3ULL;
  lcfg.shadow_fault_rate = shadow_fault_rate;

  // --ckpt-dir both saves validated versions AND restarts from disk: when
  // the store already holds a checkpoint of matching geometry, boot serves
  // from it (corrupt files are quarantined, the walk falls back to older
  // versions) and version numbering continues where the last run stopped.
  std::unique_ptr<lifecycle::CheckpointStore> store;
  if (!ckpt_dir.empty()) {
    store = std::make_unique<lifecycle::CheckpointStore>(ckpt_dir, 4);
    if (auto loaded = store->load_latest(); loaded.has_value()) {
      if (loaded->model.dims() == dims &&
          loaded->model.num_classes() == dspec.classes) {
        initial = std::make_shared<model::HdcClassifier>(
            std::move(loaded->model));
        lcfg.initial_version = loaded->version;
        std::printf("booted from checkpoint version %llu (%llu corrupt "
                    "quarantined)\n",
                    static_cast<unsigned long long>(loaded->version),
                    static_cast<unsigned long long>(store->quarantined()));
      } else {
        std::fprintf(stderr,
                     "warning: checkpoint geometry mismatch "
                     "(D=%zu/%zu classes); using the fresh model\n",
                     loaded->model.dims(), loaded->model.num_classes());
      }
    }
  }

  lifecycle::Manager manager(initial, queries, labels, lcfg, store.get());
  serve::ServeEngine engine(*initial, queries, labels, cfg, pool, {},
                            &manager);

  // Seeded open-loop Poisson arrivals; every --canary-every'th request is a
  // labeled canary the lifecycle may learn from.
  Rng gen(seed ^ 0x0A11CE5ULL);
  const double mean_gap_us = 1e6 / static_cast<double>(rate_rps);
  std::uint64_t vt = 0;
  std::vector<serve::ResponseFuture> futures;
  futures.reserve(requests);
  for (std::size_t id = 0; id < requests; ++id) {
    const double gap = -std::log(1.0 - gen.uniform()) * mean_gap_us;
    vt += static_cast<std::uint64_t>(std::max<long long>(std::llround(gap), 1));
    serve::Request req;
    req.id = id;
    req.arrival_us = vt;
    req.deadline_us = vt + cfg.deadline_us;
    req.query = id;
    req.canary = (id % canary_every == 0);
    futures.push_back(engine.submit(req));
  }
  const serve::ServeReport report = engine.finish();
  const lifecycle::LifecycleReport lreport = manager.report();

  // Invariants the scenario stands on: every future resolved, and the
  // per-version tallies account for every served request exactly once.
  std::array<std::uint64_t, serve::kNumOutcomes> seen{};
  for (const auto& f : futures) {
    const auto r = f.try_get();
    if (!r.has_value()) {
      std::fprintf(stderr, "error: unresolved future after finish()\n");
      return 1;
    }
    ++seen[static_cast<std::size_t>(r->outcome)];
  }
  if (seen != report.outcomes) {
    std::fprintf(stderr, "error: future outcomes disagree with report\n");
    return 1;
  }
  std::uint64_t version_served = 0;
  for (const auto& v : report.versions) version_served += v.served;
  if (version_served != report.served) {
    std::fprintf(stderr, "error: per-version tallies do not sum to served\n");
    return 1;
  }

  std::printf("generic_lifecycle: D=%zu, %zu requests at %zu rps, shift at "
              "request %zu, canary every %zu, %zu threads\n",
              dims, requests, rate_rps, shift_at, canary_every, threads);
  bench::print_rule(72);
  std::printf("drift: %llu alarms, score %.3f, margin ewma %.4f\n",
              static_cast<unsigned long long>(lreport.alarms),
              lreport.drift_score, lreport.margin_ewma);
  std::printf("retrains: %llu triggered, %llu swapped, %llu rolled back\n",
              static_cast<unsigned long long>(lreport.triggered),
              static_cast<unsigned long long>(lreport.swapped),
              static_cast<unsigned long long>(lreport.rolled_back));
  std::printf("canary accuracy ewma: %.4f at first trigger -> %.4f final\n",
              lreport.accuracy_ewma_at_trigger, lreport.final_accuracy_ewma);
  for (const auto& v : lreport.versions) {
    std::printf("  version %llu (%s, %s) vt=%llu us, %zu updates",
                static_cast<unsigned long long>(v.version),
                v.from_retrain ? "retrain" : "initial",
                v.installed ? "installed" : "rejected",
                static_cast<unsigned long long>(v.vt), v.updates);
    for (std::size_t r = 0; r < v.rung_dims.size(); ++r)
      std::printf("%s D=%zu %.3f vs %.3f", r == 0 ? " |" : ",",
                  v.rung_dims[r], v.holdout_accuracy[r],
                  v.baseline_accuracy[r]);
    std::printf("\n");
  }
  for (const auto& v : report.versions)
    std::printf("  served by version %llu: %llu (accuracy %.4f)\n",
                static_cast<unsigned long long>(v.version),
                static_cast<unsigned long long>(v.served),
                v.served == 0 ? 0.0
                              : static_cast<double>(v.correct) /
                                    static_cast<double>(v.served));
  if (store)
    std::printf("checkpoints: %llu saved, %llu pruned (dir %s)\n",
                static_cast<unsigned long long>(store->saved()),
                static_cast<unsigned long long>(store->pruned()),
                store->dir().c_str());

  obs_session.set_pool_stats(pool.stats());
  if (!out_path.empty()) {
    serve::write_serve_json(out_path, report);
    std::printf("serve report written to %s\n", out_path.c_str());
  }
  if (!lifecycle_out.empty()) {
    lifecycle::write_lifecycle_json(lifecycle_out, lreport);
    std::printf("lifecycle report written to %s\n", lifecycle_out.c_str());
  }
  if (!rtrace_path.empty()) {
    obs::rtrace::write_rtrace_json(rtrace_path, obs::rtrace::trace_log());
    std::printf("rtrace written to %s\n", rtrace_path.c_str());
  }
  if (!rtrace_chrome.empty()) {
    obs::rtrace::write_rtrace_chrome_json(rtrace_chrome,
                                          obs::rtrace::trace_log());
    std::printf("rtrace chrome trace written to %s\n", rtrace_chrome.c_str());
  }
  if (!flight_path.empty()) {
    obs::rtrace::write_flight_json(flight_path, obs::rtrace::flight_log());
    std::printf("flight recorder dumped to %s\n", flight_path.c_str());
  }
  return 0;
}
