// Minimal flag parsing shared by the CLI tools.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <string_view>

#include "hdc/kernels.h"

namespace generic::tools {

inline bool has_flag(int argc, char** argv, std::string_view flag) {
  for (int i = 1; i < argc; ++i)
    if (flag == argv[i]) return true;
  return false;
}

inline std::string flag_value(int argc, char** argv, std::string_view key,
                              std::string_view fallback = "") {
  const std::string prefix = std::string(key) + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind(prefix, 0) == 0)
      return std::string(arg.substr(prefix.size()));
  }
  return std::string(fallback);
}

inline std::size_t flag_size(int argc, char** argv, std::string_view key,
                             std::size_t fallback) {
  const std::string v = flag_value(argc, argv, key);
  return v.empty() ? fallback : static_cast<std::size_t>(std::stoull(v));
}

inline double flag_double(int argc, char** argv, std::string_view key,
                          double fallback) {
  const std::string v = flag_value(argc, argv, key);
  return v.empty() ? fallback : std::stod(v);
}

/// Apply --kernel-backend=<auto|scalar|avx2|avx512|neon>: force the
/// XOR+popcount kernel backend (hdc/kernels.h) before any hypervector work
/// runs. GENERIC_KERNEL_BACKEND sets the same thing from the environment;
/// the flag wins because it resolves first. Unknown or uncompiled backends
/// exit(2) with the list of choices this binary actually has.
inline void apply_kernel_backend(int argc, char** argv) {
  const std::string name = flag_value(argc, argv, "--kernel-backend", "auto");
  try {
    hdc::kernels::set_backend_from_string(name);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "--kernel-backend: %s\n", e.what());
    std::exit(2);
  }
}

[[noreturn]] inline void usage_exit(const char* text) {
  std::fputs(text, stderr);
  std::exit(2);
}

}  // namespace generic::tools
