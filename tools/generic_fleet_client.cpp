// generic_fleet_client — the real-socket closed-loop client population
// (docs/fleet.md).
//
//   generic_fleet_client --port=P | --port-file=PATH
//                        [--quick] [--seed=S] [--io-timeout-ms=30000]
//
// Connects one TCP connection per configured (tenant, client) of the
// reference fleet topology — the SAME default_fleet_config(--quick) with
// the SAME --seed as the generic_fleet --listen server — and runs each
// client's seeded ClientModel over the framed protocol: HELLO with its
// (tenant, client) identity, read the HELLO_ACK query counts, then the
// closed loop (at most one request outstanding; the next virtual send time
// is computed client-side from the response's virtual finish plus a seeded
// think time) until the model is exhausted, then BYE.
//
// Because the trace model is identical to the simulator's, the server-side
// coordinator replays the simulated schedule exactly; CI compares the two
// reports byte for byte. Exit code: 0 when every client completed its loop
// with no protocol error.
#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "fleet/client_model.h"
#include "fleet/types.h"
#include "net/protocol.h"
#include "net/socket.h"

using namespace generic;

namespace {

/// Blocking framed connection: write whole frames, read until the parser
/// yields the next one. Any violation or EOF latches failed().
class FramedConn {
 public:
  explicit FramedConn(net::Fd fd) : fd_(std::move(fd)) {}

  bool send(const std::vector<std::uint8_t>& frame) {
    if (!fd_.valid()) return false;
    return net::write_all(fd_.get(), frame.data(), frame.size());
  }

  std::optional<net::Frame> recv() {
    for (;;) {
      if (parser_.failed()) return std::nullopt;
      if (auto f = parser_.next()) return f;
      std::uint8_t buf[4096];
      const std::ptrdiff_t n = net::read_some(fd_.get(), buf, sizeof(buf));
      if (n <= 0) return std::nullopt;  // EOF or error
      parser_.feed(buf, static_cast<std::size_t>(n));
    }
  }

 private:
  net::Fd fd_;
  net::FrameParser parser_;
};

/// One closed-loop client: returns true on a clean full loop.
bool run_client(const fleet::FleetConfig& cfg, std::uint16_t port,
                std::uint16_t tenant, std::uint16_t client) {
  FramedConn conn(net::connect_loopback(port));

  net::Hello hello;
  hello.tenant = tenant;
  hello.client = client;
  std::vector<std::uint8_t> out;
  net::encode_hello(hello, out);
  if (!conn.send(out)) return false;

  auto ackf = conn.recv();
  if (!ackf || ackf->kind != net::FrameKind::kHelloAck) return false;
  net::HelloAck ack;
  if (net::decode_hello_ack(*ackf, ack) != net::ProtoError::kNone)
    return false;

  fleet::ClientModel model(cfg, tenant, client, ack.model_queries);
  const std::uint8_t priority =
      static_cast<std::uint8_t>(cfg.tenants[tenant].priority);

  std::optional<fleet::Send> send = model.start();
  while (send) {
    net::WireRequest req;
    req.id = send->id;
    req.send_us = send->send_us;
    req.model = send->model;
    req.priority = priority;
    req.deadline_rel_us = send->deadline_rel_us;
    req.query = send->query;
    out.clear();
    net::encode_request(req, out);
    if (!conn.send(out)) return false;

    auto rf = conn.recv();
    if (!rf || rf->kind != net::FrameKind::kResponse) return false;
    net::WireResponse wire;
    if (net::decode_response(*rf, wire) != net::ProtoError::kNone)
      return false;
    if (wire.id != send->id) return false;  // protocol is strictly in-order

    fleet::FleetResponse resp;
    resp.id = wire.id;
    resp.status = static_cast<fleet::FleetStatus>(wire.status);
    resp.predicted = wire.predicted;
    resp.margin_micro = wire.margin_micro;
    resp.dims_used = wire.dims_used;
    resp.attempts = wire.attempts;
    resp.finish_us = wire.finish_us;
    resp.latency_us = wire.latency_us;
    resp.version = wire.version;
    resp.rung = wire.rung;
    send = model.on_response(resp);
  }

  out.clear();
  net::encode_bye(out);
  conn.send(out);  // best-effort; the server closes after BYE
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const bool quick = flags.has("--quick");
  const std::uint64_t seed = flags.size("--seed", 0xF1EE7);
  std::uint16_t port = static_cast<std::uint16_t>(flags.size("--port", 0));
  const std::string port_file = flags.value("--port-file", "");
  flags.done();

  if (port == 0 && !port_file.empty()) {
    std::ifstream f(port_file);
    unsigned p = 0;
    if (f >> p) port = static_cast<std::uint16_t>(p);
  }
  if (port == 0) {
    std::fprintf(stderr, "error: need --port or --port-file\n");
    return 2;
  }

  fleet::FleetConfig cfg = fleet::default_fleet_config(quick);
  cfg.seed = seed;

  // Thread-per-client: each runs its own blocking closed loop. The
  // server-side coordinator sequences them by virtual time, so wall-clock
  // interleaving here cannot change the schedule.
  std::atomic<std::size_t> failed{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < cfg.tenants.size(); ++t) {
    for (std::size_t c = 0; c < cfg.tenants[t].clients; ++c) {
      threads.emplace_back([&, t, c] {
        if (!run_client(cfg, port, static_cast<std::uint16_t>(t),
                        static_cast<std::uint16_t>(c)))
          ++failed;
      });
    }
  }
  for (auto& th : threads) th.join();

  if (failed.load() != 0) {
    std::fprintf(stderr, "error: %zu client loops failed\n", failed.load());
    return 1;
  }
  std::printf("all %zu client loops completed\n", threads.size());
  return 0;
}
