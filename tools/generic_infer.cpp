// generic-infer: classify a CSV with a saved GENERIC model.
//
//   generic_infer --model=m.ghdc --data=samples.csv
//                 [--labeled] [--label-col=-1] [--binary]
//
// With --labeled, the last column (or --label-col) holds ground truth and
// accuracy is reported; otherwise one prediction per line is printed.
// --binary runs the packed 1-bit fast path (model::BinaryModel).
#include <cstdio>

#include "data/csv.h"
#include "encoding/encoders.h"
#include "model/binary_model.h"
#include "model/model_io.h"
#include "tools/cli_util.h"

using namespace generic;

int main(int argc, char** argv) {
  const std::string model_path = tools::flag_value(argc, argv, "--model");
  const std::string data_path = tools::flag_value(argc, argv, "--data");
  if (model_path.empty() || data_path.empty())
    tools::usage_exit(
        "usage: generic_infer --model=m.ghdc --data=samples.csv\n"
        "       [--labeled] [--label-col=-1] [--binary]\n");

  try {
    const auto saved = model::load_model_file(model_path);
    enc::GenericEncoder encoder(saved.encoder_config);
    if (!saved.quantizer_fitted)
      throw std::runtime_error("model was saved with an unfitted encoder");
    encoder.fit_range(saved.quantizer_lo, saved.quantizer_hi);

    const bool labeled = tools::has_flag(argc, argv, "--labeled");
    const bool binary = tools::has_flag(argc, argv, "--binary");
    std::unique_ptr<model::BinaryModel> fast;
    if (binary) fast = std::make_unique<model::BinaryModel>(saved.classifier);
    auto predict = [&](const std::vector<float>& x) {
      const auto q = encoder.encode(x);
      return binary ? fast->predict(q) : saved.classifier.predict(q);
    };

    if (labeled) {
      const auto samples = data::load_labeled_csv(
          data_path,
          static_cast<int>(tools::flag_double(argc, argv, "--label-col", -1)));
      std::size_t hits = 0;
      for (std::size_t i = 0; i < samples.x.size(); ++i)
        hits += predict(samples.x[i]) == samples.y[i];
      std::printf("accuracy: %.2f%% (%zu/%zu)%s\n",
                  100.0 * static_cast<double>(hits) /
                      static_cast<double>(samples.x.size()),
                  hits, samples.x.size(), binary ? " [1-bit fast path]" : "");
    } else {
      const auto xs = data::load_unlabeled_csv(data_path);
      for (const auto& x : xs) std::printf("%d\n", predict(x));
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
