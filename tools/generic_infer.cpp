// generic-infer: classify a CSV with a saved GENERIC model.
//
//   generic_infer --model=m.ghdc --data=samples.csv
//                 [--labeled] [--label-col=-1] [--binary]
//                 [--fault-campaign [--fault-kinds=transient,dead_block]
//                  [--fault-rates=0,1e-4,1e-3,1e-2] [--fault-trials=5]
//                  [--fault-seed=64023] [--degrade] [--fault-out=c.json]
//                  [--threads=N]]
//                 [--trace=out.json] [--metrics=out.json]
//
// With --labeled, the last column (or --label-col) holds ground truth and
// accuracy is reported; otherwise one prediction per line is printed.
// --binary runs the packed 1-bit fast path (model::BinaryModel).
//
// --fault-campaign (implies labelled data) runs the Monte Carlo
// fault-injection campaign of resilience::run_campaign on the loaded
// model against the CSV and prints (or writes with --fault-out) the
// deterministic JSON accuracy surface — see docs/resilience.md.
#include <cstdio>
#include <sstream>

#include "data/csv.h"
#include "encoding/encoders.h"
#include "model/binary_model.h"
#include "model/model_io.h"
#include "model/pipeline.h"
#include "obs/export.h"
#include "resilience/campaign.h"
#include "tools/cli_util.h"

using namespace generic;

int main(int argc, char** argv) {
  const std::string model_path = tools::flag_value(argc, argv, "--model");
  const std::string data_path = tools::flag_value(argc, argv, "--data");
  if (model_path.empty() || data_path.empty())
    tools::usage_exit(
        "usage: generic_infer --model=m.ghdc --data=samples.csv\n"
        "       [--labeled] [--label-col=-1] [--binary]\n"
        "       [--fault-campaign [--fault-kinds=...] [--fault-rates=...]\n"
        "        [--fault-trials=5] [--fault-seed=64023] [--degrade]\n"
        "        [--fault-out=campaign.json] [--threads=N]]\n"
        "       [--trace=out.json] [--metrics=out.json]\n"
        "       [--kernel-backend=auto|scalar|avx2|avx512|neon]\n");
  obs::Session obs_session(tools::flag_value(argc, argv, "--trace"),
                           tools::flag_value(argc, argv, "--metrics"));
  tools::apply_kernel_backend(argc, argv);

  try {
    const auto saved = model::load_model_file(model_path);
    enc::GenericEncoder encoder(saved.encoder_config);
    if (!saved.quantizer_fitted)
      throw std::runtime_error("model was saved with an unfitted encoder");
    encoder.fit_range(saved.quantizer_lo, saved.quantizer_hi);

    if (tools::has_flag(argc, argv, "--fault-campaign")) {
      const auto samples = data::load_labeled_csv(
          data_path,
          static_cast<int>(tools::flag_double(argc, argv, "--label-col", -1)));
      const auto encoded = model::encode_all(encoder, samples.x);

      resilience::CampaignConfig cc;
      cc.trials = tools::flag_size(argc, argv, "--fault-trials", 5);
      cc.seed = static_cast<std::uint64_t>(
          tools::flag_size(argc, argv, "--fault-seed", 64023));
      cc.degrade = tools::has_flag(argc, argv, "--degrade");
      // Trials fan out across the pool; the JSON is byte-identical for
      // any thread count (see docs/parallelism.md).
      cc.threads = tools::flag_size(argc, argv, "--threads", 1);
      const std::string kinds = tools::flag_value(argc, argv, "--fault-kinds");
      if (!kinds.empty()) {
        cc.kinds.clear();
        std::stringstream ss(kinds);
        for (std::string item; std::getline(ss, item, ',');)
          cc.kinds.push_back(resilience::fault_kind_from_name(item));
      }
      const std::string rates = tools::flag_value(argc, argv, "--fault-rates");
      if (!rates.empty()) {
        cc.rates.clear();
        std::stringstream ss(rates);
        for (std::string item; std::getline(ss, item, ',');)
          cc.rates.push_back(std::stod(item));
      }

      const auto result = resilience::run_campaign(saved.classifier, encoded,
                                                   samples.y, cc);
      const std::string out = tools::flag_value(argc, argv, "--fault-out");
      if (out.empty()) {
        std::fputs(resilience::campaign_to_json(result).c_str(), stdout);
      } else {
        resilience::write_campaign_json(out, result);
        std::fprintf(stderr, "campaign JSON written to %s\n", out.c_str());
      }
      return 0;
    }

    const bool labeled = tools::has_flag(argc, argv, "--labeled");
    const bool binary = tools::has_flag(argc, argv, "--binary");
    std::unique_ptr<model::BinaryModel> fast;
    if (binary) fast = std::make_unique<model::BinaryModel>(saved.classifier);
    auto predict = [&](const std::vector<float>& x) {
      const auto q = encoder.encode(x);
      return binary ? fast->predict(q) : saved.classifier.predict(q);
    };

    if (labeled) {
      const auto samples = data::load_labeled_csv(
          data_path,
          static_cast<int>(tools::flag_double(argc, argv, "--label-col", -1)));
      std::size_t hits = 0;
      for (std::size_t i = 0; i < samples.x.size(); ++i)
        hits += predict(samples.x[i]) == samples.y[i];
      std::printf("accuracy: %.2f%% (%zu/%zu)%s\n",
                  100.0 * static_cast<double>(hits) /
                      static_cast<double>(samples.x.size()),
                  hits, samples.x.size(), binary ? " [1-bit fast path]" : "");
    } else {
      const auto xs = data::load_unlabeled_csv(data_path);
      for (const auto& x : xs) std::printf("%d\n", predict(x));
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
