// generic_fleet — multi-model, multi-tenant serving fleet (docs/fleet.md).
//
//   generic_fleet [--quick] [--seed=S] [--threads=N] [--out=fleet.json]
//                 [--listen] [--port=P] [--port-file=PATH]
//                 [--max-connections=64] [--io-timeout-ms=30000]
//                 [--rtrace=out.json] [--rtrace-chrome=out.json]
//                 [--flight-dump=out.json]
//
// Builds the reference three-model fleet (seeded synthetic worlds, one
// ServeEngine per model over one shared thread pool) and drives it through
// the closed-loop multi-tenant trace on ONE of two ingress paths:
//
//   default      — simulated ingress: the seeded ClientModels run
//                  in-process and the whole run is a discrete-event
//                  simulation on virtual time. This is the goldens/CI path:
//                  the generic.fleet.v1 report is byte-identical for a
//                  fixed (--quick, --seed) at any --threads value and
//                  kernel backend.
//   --listen     — real-socket ingress: serve the framed TCP protocol on
//                  127.0.0.1 (--port, 0 = ephemeral; the bound port is
//                  written to --port-file for the client to find) and wait
//                  for one generic_fleet_client process to connect the
//                  whole client population. Clients carry their own virtual
//                  send times, so the socket run replays the simulated
//                  schedule and writes the IDENTICAL report — CI cmp's the
//                  two files.
//
// Exit code: 0 on a clean run, 1 when the socket path saw any protocol
// error, timeout, or early disconnect (the report of a failed socket run
// is not comparable).
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "fleet/engine.h"
#include "fleet/simulator.h"
#include "fleet/socket_driver.h"
#include "net/server.h"
#include "obs/export.h"
#include "obs/rtrace.h"

using namespace generic;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const bool quick = flags.has("--quick");
  const bool listen = flags.has("--listen");
  const std::uint64_t seed = flags.size("--seed", 0xF1EE7);
  const std::size_t threads = flags.threads();
  const std::string out_path = flags.value("--out", "");
  const std::uint16_t port =
      static_cast<std::uint16_t>(flags.size("--port", 0));
  const std::string port_file = flags.value("--port-file", "");
  const std::size_t max_conns = flags.positive_size("--max-connections", 64);
  const int io_timeout_ms =
      static_cast<int>(flags.positive_size("--io-timeout-ms", 30000));
  const std::string rtrace_path = flags.value("--rtrace", "");
  const std::string rtrace_chrome = flags.value("--rtrace-chrome", "");
  const std::string flight_path = flags.value("--flight-dump", "");
  obs::Session obs_session(flags.value("--trace", ""),
                           flags.value("--metrics", ""));
  bench::apply_kernel_backend(flags);
  flags.done();

  obs::rtrace::set_trace(!rtrace_path.empty() || !rtrace_chrome.empty());
  obs::rtrace::set_flight(!flight_path.empty());

  fleet::FleetConfig cfg = fleet::default_fleet_config(quick);
  cfg.seed = seed;

  set_global_threads(threads);
  ThreadPool& pool = global_pool();

  std::printf("building %zu model worlds (%s)...\n", cfg.models.size(),
              quick ? "quick" : "full");
  std::vector<fleet::ModelWorld> worlds;
  worlds.reserve(cfg.models.size());
  for (const fleet::ModelSpec& m : cfg.models)
    worlds.push_back(fleet::build_world(m, pool));

  fleet::FleetEngine engine(cfg, std::move(worlds), pool);

  bool ok = true;
  std::size_t delivered = 0;
  if (!listen) {
    auto owned = fleet::make_sim_ports(cfg, engine);
    std::vector<fleet::ClientPort*> ports;
    ports.reserve(owned.size());
    for (auto& p : owned) ports.push_back(p.get());
    delivered = fleet::run_closed_loop(engine, ports);
  } else {
    net::ServerConfig scfg;
    scfg.port = port;
    scfg.max_connections = max_conns;
    scfg.num_tenants = cfg.tenants.size();
    scfg.model_queries = engine.model_queries();
    net::Server server(scfg);
    if (!server.listening()) {
      std::fprintf(stderr, "error: cannot listen on 127.0.0.1:%u\n",
                   static_cast<unsigned>(port));
      return 1;
    }
    std::printf("listening on 127.0.0.1:%u\n",
                static_cast<unsigned>(server.port()));
    if (!port_file.empty()) {
      std::ofstream f(port_file, std::ios::binary);
      f << server.port() << "\n";
    }
    fleet::SocketFleetDriver driver(server, cfg, io_timeout_ms);
    if (!driver.wait_ready(io_timeout_ms)) {
      std::fprintf(stderr,
                   "error: client population not ready within %d ms\n",
                   io_timeout_ms);
      return 1;
    }
    delivered = fleet::run_closed_loop(engine, driver.ports());
    server.drain(io_timeout_ms);
    ok = driver.ok();
    const net::ServerStats& st = server.stats();
    std::printf("socket ingress: %llu accepted, %llu frames, %llu requests, "
                "%llu protocol errors\n",
                static_cast<unsigned long long>(st.accepted),
                static_cast<unsigned long long>(st.frames),
                static_cast<unsigned long long>(st.requests),
                static_cast<unsigned long long>(st.protocol_errors));
    if (st.protocol_errors > 0) ok = false;
  }

  const fleet::FleetReport report = engine.finish();
  std::printf("%s ingress: %zu responses delivered, %llu requests, "
              "makespan %llu us\n",
              listen ? "socket" : "simulated", delivered,
              static_cast<unsigned long long>(report.requests),
              static_cast<unsigned long long>(report.makespan_us));
  for (std::size_t t = 0; t < report.tenants.size(); ++t) {
    const fleet::PartyStats& s = report.tenants[t];
    std::printf(
        "  tenant %-8s %6llu requests  %6llu served  %5llu quota  "
        "%5llu shed  p99 %llu us\n",
        report.config.tenants[t].name.c_str(),
        static_cast<unsigned long long>(s.requests),
        static_cast<unsigned long long>(s.served),
        static_cast<unsigned long long>(s.statuses[static_cast<std::size_t>(
            fleet::FleetStatus::kQuotaRejected)]),
        static_cast<unsigned long long>(s.statuses[static_cast<std::size_t>(
            fleet::FleetStatus::kPriorityShed)]),
        static_cast<unsigned long long>(s.latency.percentile(0.99)));
  }
  for (std::size_t m = 0; m < report.models.size(); ++m) {
    const fleet::PartyStats& s = report.models[m];
    std::printf("  model  %-8s %6llu requests  %6llu served  accuracy %.4f\n",
                report.config.models[m].id.c_str(),
                static_cast<unsigned long long>(s.requests),
                static_cast<unsigned long long>(s.served),
                s.served == 0 ? 0.0
                              : static_cast<double>(s.correct) /
                                    static_cast<double>(s.served));
  }

  if (!out_path.empty()) {
    fleet::write_fleet_json(out_path, report);
    std::printf("fleet report written to %s\n", out_path.c_str());
  }
  if (!rtrace_path.empty()) {
    obs::rtrace::write_rtrace_json(rtrace_path, obs::rtrace::trace_log());
    std::printf("rtrace written to %s\n", rtrace_path.c_str());
  }
  if (!rtrace_chrome.empty()) {
    obs::rtrace::write_rtrace_chrome_json(rtrace_chrome,
                                          obs::rtrace::trace_log());
    std::printf("chrome trace written to %s\n", rtrace_chrome.c_str());
  }
  if (!flight_path.empty()) {
    obs::rtrace::write_flight_json(flight_path, obs::rtrace::flight_log());
    std::printf("flight recorder dumped to %s\n", flight_path.c_str());
  }
  if (!ok) {
    std::fprintf(stderr, "error: socket run failed (see above)\n");
    return 1;
  }
  return 0;
}
