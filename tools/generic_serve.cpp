// generic_serve — resilient serving demo over a trained HDC classifier
// (docs/serving.md).
//
//   generic_serve [--quick] [--dataset=FACE] [--requests=N] [--rate=RPS]
//                 [--servers=2] [--deadline-us=4000] [--slo-us=2000]
//                 [--max-attempts=3] [--min-dims=512]
//                 [--service-base-us=900] [--fault-rate=P]
//                 [--fault-bit-rate=P] [--dead-chunks=K] [--seed=S]
//                 [--encoder-fault-rate=P] [--encoder-fault-bit-rate=P]
//                 [--encoder-fault-at-us=T] [--scrub-every-us=T]
//                 [--encoder-repair=detect|mask|scrub]
//                 [--threads=N] [--checkpoint-dir=DIR] [--out=serve.json]
//                 [--trace=out.json] [--metrics=out.json]
//                 [--metrics-every=SECONDS] [--rtrace=out.json]
//                 [--rtrace-chrome=out.json] [--flight-dump=out.json]
//
// --rtrace / --rtrace-chrome write the request-level causal trace
// (generic.rtrace.v1 / Chrome trace events with per-request flow arrows);
// --flight-dump writes the last-N-events flight ring (generic.flight.v1).
// All three are on virtual time and byte-identical across --threads and
// kernel backends (docs/observability.md).
//
// Trains a classifier on a Table 1 benchmark clone in-process, then drives
// it through the ServeEngine with a seeded open-loop Poisson load: arrival
// times are VIRTUAL microseconds derived from the rng stream, never the
// wall clock, so the run — every admission, shed, retry, timeout and
// ladder move, and the whole generic.serve.v1 report — is byte-identical
// for a fixed (flags, seed) at any --threads value.
//
// Knobs for the acceptance scenario: --rate above the service capacity
// (servers * 1e6 / service-base-us) forces overload so the SLO ladder
// engages; --fault-rate injects per-attempt transient upsets (real bit
// flips at --fault-bit-rate, detected by parity and retried with backoff);
// --dead-chunks kills K dimension blocks in the model and serves around
// them through the masked prediction path.
//
// --checkpoint-dir restarts from disk: boot loads the newest checkpoint
// that verifies (corrupt files are quarantined and the walk falls back to
// the next-older version), skipping the training phase entirely; a cold
// store trains as usual and saves the fresh model for the next boot.
//
// --encoder-fault-rate > 0 schedules one encoder-memory burst at
// --encoder-fault-at-us: each level row (and the rotating id seed) is hit
// with that probability and corrupted at --encoder-fault-bit-rate per bit.
// Both timing flags default to 0 = auto-placed against the expected
// makespan, so the whole corrupt -> mask -> scrub arc fits in the run.
// The EncoderGuard scans on the --scrub-every-us virtual tick and repairs
// per --encoder-repair: "detect" reports and serves through the damage,
// "mask" re-encodes around the corrupted rows, "scrub" masks one tick and
// then rematerializes the rows from their seeds (CRC-verified, the
// docs/resilience.md self-healing path).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "chaos/encoder_chaos.h"
#include "common/thread_pool.h"
#include "data/benchmarks.h"
#include "encoding/encoders.h"
#include "lifecycle/checkpoint_store.h"
#include "model/pipeline.h"
#include "obs/export.h"
#include "obs/rtrace.h"
#include "resilience/encoder_guard.h"
#include "resilience/fault_model.h"
#include "serve/engine.h"

using namespace generic;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const bool quick = flags.has("--quick");
  const std::string name = flags.value("--dataset", "FACE");
  const std::size_t dims = quick ? 2048 : 4096;
  const std::size_t epochs = quick ? 5 : 20;
  const std::size_t requests =
      flags.positive_size("--requests", quick ? 800 : 4000);
  const std::size_t rate_rps = flags.positive_size("--rate", 1800);

  serve::ServeConfig cfg;
  cfg.servers = flags.positive_size("--servers", cfg.servers);
  cfg.deadline_us = flags.positive_size("--deadline-us", cfg.deadline_us);
  cfg.slo_us = flags.positive_size("--slo-us", cfg.slo_us);
  cfg.max_attempts = static_cast<std::uint32_t>(
      flags.positive_size("--max-attempts", cfg.max_attempts));
  cfg.min_dims = flags.positive_size("--min-dims", cfg.min_dims);
  cfg.service_base_us =
      flags.positive_size("--service-base-us", cfg.service_base_us);
  cfg.fault_rate = flags.real("--fault-rate", cfg.fault_rate);
  cfg.fault_bit_rate = flags.real("--fault-bit-rate", cfg.fault_bit_rate);
  cfg.seed = flags.size("--seed", cfg.seed);

  const std::size_t dead_chunks = flags.size("--dead-chunks", 0);
  const double enc_fault_rate = flags.real("--encoder-fault-rate", 0.0);
  const double enc_fault_bit_rate =
      flags.real("--encoder-fault-bit-rate", 0.25);
  // 0 = auto-place against the expected makespan (requests / rate): the
  // burst lands ~2/5 in and the scrub period is ~1/5, so every phase of
  // the incident fits inside the run at any --requests/--rate sizing.
  const std::size_t horizon_us = requests * 1'000'000 / rate_rps;
  std::size_t enc_fault_at = flags.size("--encoder-fault-at-us", 0);
  if (enc_fault_at == 0) enc_fault_at = std::max<std::size_t>(1, horizon_us * 2 / 5);
  std::size_t scrub_every = flags.size("--scrub-every-us", 0);
  if (scrub_every == 0) scrub_every = std::max<std::size_t>(1, horizon_us / 5);
  const std::string repair_name = flags.value("--encoder-repair", "scrub");
  resilience::RepairPolicy encoder_repair = resilience::RepairPolicy::kScrub;
  try {
    encoder_repair = resilience::repair_policy_from_name(repair_name);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "--encoder-repair: %s\n", e.what());
    return 2;
  }
  const std::size_t threads = flags.threads();
  const std::string ckpt_dir = flags.value("--checkpoint-dir", "");
  const std::string out_path = flags.value("--out", "");
  const std::string rtrace_path = flags.value("--rtrace", "");
  const std::string rtrace_chrome = flags.value("--rtrace-chrome", "");
  const std::string flight_path = flags.value("--flight-dump", "");
  const double metrics_every = flags.positive_real("--metrics-every", 0.0);
  obs::Session obs_session(flags.value("--trace", ""),
                           flags.value("--metrics", ""));
  obs_session.stream_metrics_every(metrics_every);
  bench::apply_kernel_backend(flags);
  flags.done();

  obs::rtrace::set_trace(!rtrace_path.empty() || !rtrace_chrome.empty());
  obs::rtrace::set_flight(!flight_path.empty());

  set_global_threads(threads);
  ThreadPool& pool = global_pool();

  const auto ds = data::make_benchmark(name);
  enc::EncoderConfig ecfg;
  ecfg.dims = dims;
  enc::GenericEncoder encoder(ecfg);
  encoder.fit(ds.train_x);
  const auto train = model::encode_all(encoder, ds.train_x);
  const auto test = model::encode_all(encoder, ds.test_x);
  model::HdcClassifier clf(dims, ds.num_classes);

  // Restart-from-checkpoint: boot from the newest verifying checkpoint
  // (corrupt files get quarantined, the walk falls back to older
  // versions); train fresh only when nothing on disk fits.
  std::unique_ptr<lifecycle::CheckpointStore> store;
  bool booted = false;
  if (!ckpt_dir.empty()) {
    store = std::make_unique<lifecycle::CheckpointStore>(ckpt_dir, 4);
    if (auto loaded = store->load_latest(); loaded.has_value()) {
      if (loaded->model.dims() == dims &&
          loaded->model.num_classes() == ds.num_classes) {
        clf = std::move(loaded->model);
        booted = true;
        std::printf("booted from checkpoint version %llu (%llu corrupt "
                    "quarantined)\n",
                    static_cast<unsigned long long>(loaded->version),
                    static_cast<unsigned long long>(store->quarantined()));
      } else {
        std::fprintf(stderr,
                     "warning: checkpoint geometry mismatch "
                     "(D=%zu/%zu classes); retraining\n",
                     loaded->model.dims(), loaded->model.num_classes());
      }
    }
  }
  if (!booted) {
    clf.fit_parallel(train, ds.train_y, epochs, pool);
    if (store) {
      std::uint64_t next_version = 1;
      for (const auto& info : store->list())
        next_version = std::max(next_version, info.version + 1);
      store->save(clf, next_version, 0);
      std::printf("trained model checkpointed as version %llu\n",
                  static_cast<unsigned long long>(next_version));
    }
  }

  // Optional faulty-block scenario: actually kill the blocks in class
  // memory, then tell the engine which chunks to serve around — the
  // BlockGuard-style graceful-degradation path.
  std::vector<bool> chunk_ok;
  if (dead_chunks > 0) {
    if (dead_chunks >= clf.num_chunks()) {
      std::fprintf(stderr, "error: --dead-chunks must be < %zu\n",
                   clf.num_chunks());
      return 1;
    }
    chunk_ok.assign(clf.num_chunks(), true);
    Rng pick(cfg.seed ^ 0xDEADB10CULL);
    std::vector<std::size_t> dead;
    while (dead.size() < dead_chunks) {
      // Chunk 0 stays alive so every ladder rung keeps a healthy chunk.
      const auto k = static_cast<std::size_t>(
          1 + pick.below(clf.num_chunks() - 1));
      if (chunk_ok[k]) {
        chunk_ok[k] = false;
        dead.push_back(k);
      }
    }
    resilience::inject_dead_blocks(clf, dead);
  }

  // Optional encoder-memory incident: one scheduled burst, detected and
  // repaired on the scrub tick per --encoder-repair (chaos/encoder_chaos.h
  // precomputes the whole corrupt -> mask -> scrub timeline up front).
  std::unique_ptr<serve::ScriptedEncoderFaults> encoder_hook;
  if (enc_fault_rate > 0.0) {
    chaos::EncoderIncidentSpec espec;
    chaos::FaultBurst burst;
    burst.vt_us = enc_fault_at;
    burst.fault.kind = resilience::FaultKind::kTransient;
    burst.fault.rate = enc_fault_rate;
    burst.fault.burst_rate = enc_fault_bit_rate;
    espec.bursts.push_back(burst);
    espec.scrub_every_us = scrub_every;
    espec.policy = encoder_repair;
    espec.seed = cfg.seed ^ 0xE2C0DE5ULL;
    encoder_hook = std::make_unique<serve::ScriptedEncoderFaults>(
        chaos::script_encoder_incident(encoder, ds.test_x, test, espec,
                                       pool));
  }

  serve::ServeEngine engine(clf, test, ds.test_y, cfg, pool, chunk_ok,
                            nullptr, encoder_hook.get());

  // Seeded open-loop Poisson load: exponential inter-arrival gaps on the
  // virtual clock, query drawn uniformly from the test set.
  Rng gen(cfg.seed ^ 0x0A11CE5ULL);
  const double mean_gap_us = 1e6 / static_cast<double>(rate_rps);
  std::uint64_t vt = 0;
  std::vector<serve::ResponseFuture> futures;
  futures.reserve(requests);
  for (std::size_t id = 0; id < requests; ++id) {
    const double gap = -std::log(1.0 - gen.uniform()) * mean_gap_us;
    vt += static_cast<std::uint64_t>(std::max<long long>(std::llround(gap), 1));
    serve::Request req;
    req.id = id;
    req.arrival_us = vt;
    req.deadline_us = vt + cfg.deadline_us;
    req.query = static_cast<std::size_t>(gen.below(test.size()));
    futures.push_back(engine.submit(req));
  }
  const serve::ServeReport report = engine.finish();

  // Cross-check: the futures the callers hold must tell the same story as
  // the engine's own tally.
  std::array<std::uint64_t, serve::kNumOutcomes> seen{};
  for (const auto& f : futures) {
    const auto r = f.try_get();
    if (!r.has_value()) {
      std::fprintf(stderr, "error: unresolved future after finish()\n");
      return 1;
    }
    ++seen[static_cast<std::size_t>(r->outcome)];
  }
  if (seen != report.outcomes) {
    std::fprintf(stderr, "error: future outcomes disagree with report\n");
    return 1;
  }

  std::printf("generic_serve: %s, D=%zu, %zu requests at %zu rps "
              "(capacity ~%.0f rps), %zu threads\n",
              name.c_str(), dims, requests, rate_rps,
              static_cast<double>(cfg.servers) * 1e6 /
                  static_cast<double>(cfg.service_base_us),
              threads);
  bench::print_rule(72);
  std::printf("%-10s %8s\n", "outcome", "count");
  for (std::size_t i = 0; i < serve::kNumOutcomes; ++i)
    std::printf("%-10s %8llu\n",
                std::string(serve::outcome_name(
                                static_cast<serve::Outcome>(i)))
                    .c_str(),
                static_cast<unsigned long long>(report.outcomes[i]));
  bench::print_rule(72);
  std::printf("served %llu/%llu, throughput %.1f rps (virtual), "
              "accuracy %.4f\n",
              static_cast<unsigned long long>(report.served),
              static_cast<unsigned long long>(report.requests),
              report.throughput_rps,
              report.served == 0 ? 0.0
                                 : static_cast<double>(report.correct) /
                                       static_cast<double>(report.served));
  std::printf("latency p50/p95/p99: %llu / %llu / %llu us (virtual)\n",
              static_cast<unsigned long long>(report.latency.percentile(0.5)),
              static_cast<unsigned long long>(report.latency.percentile(0.95)),
              static_cast<unsigned long long>(report.latency.percentile(0.99)));
  std::printf("ladder: %llu down / %llu up, final rung %zu\n",
              static_cast<unsigned long long>(report.steps_down),
              static_cast<unsigned long long>(report.steps_up),
              report.final_rung);
  for (const auto& r : report.rungs)
    std::printf("  rung D=%-5zu (%zu chunks): served %llu, accuracy %.4f\n",
                r.dims, r.active_chunks,
                static_cast<unsigned long long>(r.served),
                r.served == 0 ? 0.0
                              : static_cast<double>(r.correct) /
                                    static_cast<double>(r.served));
  if (!report.encoder_faults.empty()) {
    std::printf("encoder incident (%llu rows scrubbed total):\n",
                static_cast<unsigned long long>(report.scrubbed_rows));
    for (const auto& e : report.encoder_faults)
      std::printf("  vt=%-8llu %-7s faulty=%zu%s scrubbed=%zu%s%s\n",
                  static_cast<unsigned long long>(e.vt),
                  std::string(serve::encoder_phase_name(e.phase)).c_str(),
                  e.faulty_rows, e.id_seed_faulty ? " (incl id seed)" : "",
                  e.scrubbed_rows, e.scrub_verified ? " verified" : "",
                  e.stepped_ladder ? " [ladder stepped]" : "");
  }

  obs_session.set_pool_stats(pool.stats());
  if (!out_path.empty()) {
    serve::write_serve_json(out_path, report);
    std::printf("report written to %s\n", out_path.c_str());
  }
  if (!rtrace_path.empty()) {
    obs::rtrace::write_rtrace_json(rtrace_path, obs::rtrace::trace_log());
    std::printf("rtrace written to %s\n", rtrace_path.c_str());
  }
  if (!rtrace_chrome.empty()) {
    obs::rtrace::write_rtrace_chrome_json(rtrace_chrome,
                                          obs::rtrace::trace_log());
    std::printf("rtrace chrome trace written to %s\n", rtrace_chrome.c_str());
  }
  if (!flight_path.empty()) {
    obs::rtrace::write_flight_json(flight_path, obs::rtrace::flight_log());
    std::printf("flight recorder dumped to %s\n", flight_path.c_str());
  }
  return 0;
}
