// generic_chaos — named end-to-end chaos campaigns (docs/chaos.md).
//
// Runs one (or every) registered scenario through the chaos orchestrator:
// shaped traffic, concept shifts, correlated class-memory fault bursts and
// corrupted checkpoints, all seeded and on virtual time, with a
// generic.chaos.v1 report per scenario and a per-invariant verdict.
//
//   generic_chaos [--scenario=all|NAME] [--quick] [--seed=S] [--threads=N]
//                 [--out=DIR] [--work-dir=DIR] [--list] [--rtrace=DIR]
//                 [--flight-dump=DIR]
//
// --out writes <DIR>/<scenario>.json per scenario. --list prints the
// registry and exits. Exit code: 0 when every run passed its invariants,
// 1 otherwise.
//
// Black box: every scenario records into the rtrace flight ring. A failed
// invariant auto-dumps the ring as <scenario>.flight.json (into
// --flight-dump, else --out, else the working directory) so the decisions
// that led to the violation can be read post mortem; --flight-dump also
// dumps passing runs. --rtrace additionally writes the FULL causal trace
// per scenario as <scenario>.rtrace.json plus a Chrome/Perfetto view
// <scenario>.rtrace.chrome.json.
//
// Determinism: every report is a pure function of (scenario, --quick,
// --seed). --threads only changes wall-clock speed — the CI chaos job
// cmp's reports across thread counts.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "chaos/orchestrator.h"
#include "fleet/tenant_storm.h"

using namespace generic;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const bool quick = flags.has("--quick");
  const bool list = flags.has("--list");
  const std::string which = flags.value("--scenario", "all");
  const std::uint64_t seed = flags.size("--seed", 0xC4A05);
  const std::size_t threads = flags.threads();
  const std::string out_dir = flags.value("--out", "");
  const std::string work_dir = flags.value("--work-dir", "");
  const std::string rtrace_dir = flags.value("--rtrace", "");
  const std::string flight_dir = flags.value("--flight-dump", "");
  bench::apply_kernel_backend(flags);
  flags.done();

  if (list) {
    for (const auto& s : chaos::all_scenarios(quick))
      std::printf("%-24s %zu requests, D=%zu — %s\n", s.name.c_str(),
                  s.requests, s.dims, s.description.c_str());
    std::printf("%-24s fleet campaign — one batch tenant floods at ~10x "
                "its quota; the admission pipeline must protect the rest\n",
                "tenant_storm");
    return 0;
  }

  // The fleet campaign lives beside the serve-layer registry: it runs a
  // whole multi-model fleet (src/fleet) rather than one ServeEngine.
  const bool run_storm = which == "all" || which == "tenant_storm";

  std::vector<chaos::ScenarioSpec> specs;
  if (which == "all") {
    specs = chaos::all_scenarios(quick);
  } else if (!run_storm) {
    auto s = chaos::find_scenario(which, quick);
    if (!s.has_value()) {
      std::fprintf(stderr, "error: unknown scenario '%s' (try --list)\n",
                   which.c_str());
      return 1;
    }
    specs.push_back(std::move(*s));
  }

  if (!out_dir.empty()) std::filesystem::create_directories(out_dir);
  if (!rtrace_dir.empty()) std::filesystem::create_directories(rtrace_dir);
  if (!flight_dir.empty()) std::filesystem::create_directories(flight_dir);

  bool all_passed = true;
  for (const auto& spec : specs) {
    chaos::RunOptions opt;
    opt.seed = seed;
    opt.threads = threads;
    opt.work_dir =
        work_dir.empty() ? "" : work_dir + "/" + spec.name;
    opt.rtrace = !rtrace_dir.empty();

    const chaos::ChaosReport report = chaos::run_scenario(spec, opt);
    all_passed = all_passed && report.passed;

    std::printf("%-24s %s  (%zu requests", spec.name.c_str(),
                report.passed ? "PASS" : "FAIL", spec.requests);
    if (report.boot.from_checkpoint)
      std::printf(", booted v%llu, %llu quarantined",
                  static_cast<unsigned long long>(report.boot.version),
                  static_cast<unsigned long long>(report.boot.quarantined));
    std::printf(")\n");
    for (const auto& inv : report.invariants) {
      if (!inv.enabled) continue;
      std::printf("  %-22s %s  value=%.4g bound=%.4g\n", inv.name.c_str(),
                  inv.passed ? "ok" : "VIOLATED", inv.value, inv.bound);
    }

    if (!out_dir.empty()) {
      const std::string path = out_dir + "/" + spec.name + ".json";
      chaos::write_chaos_json(path, report);
      std::printf("  report written to %s\n", path.c_str());
    }
    if (!rtrace_dir.empty()) {
      const std::string base = rtrace_dir + "/" + spec.name;
      obs::rtrace::write_rtrace_json(base + ".rtrace.json", report.rtrace);
      obs::rtrace::write_rtrace_chrome_json(base + ".rtrace.chrome.json",
                                            report.rtrace);
      std::printf("  rtrace written to %s.rtrace.json\n", base.c_str());
    }
    // The black box: always dumped on demand, and automatically on any
    // invariant failure so the postmortem ships with the verdict.
    if (!flight_dir.empty() || !report.passed) {
      const std::string dir = !flight_dir.empty() ? flight_dir
                              : !out_dir.empty()  ? out_dir
                                                  : std::string(".");
      const std::string path = dir + "/" + spec.name + ".flight.json";
      obs::rtrace::write_flight_json(path, report.flight);
      std::printf("  flight recorder %s to %s\n",
                  report.passed ? "dumped" : "auto-dumped on failure",
                  path.c_str());
    }
  }
  if (run_storm) {
    const fleet::StormReport storm =
        fleet::run_tenant_storm(quick, seed, threads);
    all_passed = all_passed && storm.passed;
    std::printf("%-24s %s  (%llu requests, flood tenant %s)\n",
                "tenant_storm", storm.passed ? "PASS" : "FAIL",
                static_cast<unsigned long long>(storm.fleet.requests),
                storm.fleet.config.tenants[storm.flood_tenant].name.c_str());
    for (const auto& inv : storm.invariants) {
      if (!inv.enabled) continue;
      std::printf("  %-22s %s  value=%.4g bound=%.4g\n", inv.name.c_str(),
                  inv.passed ? "ok" : "VIOLATED", inv.value, inv.bound);
    }
    if (!out_dir.empty()) {
      const std::string path = out_dir + "/tenant_storm.json";
      fleet::write_storm_json(path, storm);
      std::printf("  report written to %s\n", path.c_str());
    }
  }

  return all_passed ? 0 : 1;
}
