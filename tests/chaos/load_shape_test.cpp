#include "chaos/load_shape.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace generic::chaos {
namespace {

TEST(ChaosLoadShape, PoissonRateIsConstant) {
  LoadShapeSpec s;
  s.kind = LoadKind::kPoisson;
  s.base_rps = 1234.0;
  EXPECT_DOUBLE_EQ(rate_at(s, 0), 1234.0);
  EXPECT_DOUBLE_EQ(rate_at(s, 999'999), 1234.0);
  EXPECT_DOUBLE_EQ(peak_rate(s), 1234.0);
}

TEST(ChaosLoadShape, DiurnalSwingsTroughToCrest) {
  LoadShapeSpec s;
  s.kind = LoadKind::kDiurnal;
  s.low_rps = 600.0;
  s.high_rps = 2400.0;
  s.period_us = 1'000'000;
  // Phase 0 is the trough (campaigns warm up at low traffic), half a
  // period later is the crest, and a full period wraps around.
  EXPECT_NEAR(rate_at(s, 0), 600.0, 1e-9);
  EXPECT_NEAR(rate_at(s, 500'000), 2400.0, 1e-9);
  EXPECT_NEAR(rate_at(s, 1'000'000), 600.0, 1e-9);
  EXPECT_DOUBLE_EQ(peak_rate(s), 2400.0);
  for (std::uint64_t vt = 0; vt < 1'000'000; vt += 50'000) {
    EXPECT_GE(rate_at(s, vt), 600.0 - 1e-9);
    EXPECT_LE(rate_at(s, vt), 2400.0 + 1e-9);
  }
}

TEST(ChaosLoadShape, FlashMultiplierOnlyInsideWindow) {
  LoadShapeSpec s;
  s.kind = LoadKind::kFlash;
  s.base_rps = 900.0;
  s.flash_start_us = 100'000;
  s.flash_len_us = 50'000;
  s.flash_mult = 6.0;
  EXPECT_DOUBLE_EQ(rate_at(s, 99'999), 900.0);
  EXPECT_DOUBLE_EQ(rate_at(s, 100'000), 5400.0);
  EXPECT_DOUBLE_EQ(rate_at(s, 149'999), 5400.0);
  EXPECT_DOUBLE_EQ(rate_at(s, 150'000), 900.0);
  EXPECT_DOUBLE_EQ(peak_rate(s), 5400.0);
}

TEST(ChaosLoadShape, ArrivalsAreSeedDeterministicAndIncreasing) {
  LoadShapeSpec s;
  s.kind = LoadKind::kDiurnal;
  Rng r1(42), r2(42), r3(43);
  const auto a = sample_arrivals(s, 500, r1);
  const auto b = sample_arrivals(s, 500, r2);
  const auto c = sample_arrivals(s, 500, r3);
  ASSERT_EQ(a.size(), 500u);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  for (std::size_t i = 1; i < a.size(); ++i) EXPECT_GT(a[i], a[i - 1]);
}

TEST(ChaosLoadShape, ThinningTracksTheIntensity) {
  // Over one diurnal period the crest half must see clearly more arrivals
  // than the trough half — the thinning sanity check.
  LoadShapeSpec s;
  s.kind = LoadKind::kDiurnal;
  s.low_rps = 400.0;
  s.high_rps = 2000.0;
  s.period_us = 1'000'000;
  Rng rng(7);
  const auto arrivals = sample_arrivals(s, 1000, rng);
  std::size_t trough = 0, crest = 0;
  for (const auto vt : arrivals) {
    const std::uint64_t phase = vt % s.period_us;
    if (phase < 250'000 || phase >= 750'000)
      ++trough;
    else
      ++crest;
  }
  EXPECT_GT(crest, trough * 2);
}

TEST(ChaosLoadShape, RejectsDegenerateSpecs) {
  LoadShapeSpec zero;
  zero.kind = LoadKind::kPoisson;
  zero.base_rps = 0.0;
  Rng rng(1);
  EXPECT_THROW(sample_arrivals(zero, 10, rng), std::invalid_argument);

  LoadShapeSpec no_period;
  no_period.kind = LoadKind::kDiurnal;
  no_period.period_us = 0;
  EXPECT_THROW(sample_arrivals(no_period, 10, rng), std::invalid_argument);
}

}  // namespace
}  // namespace generic::chaos
