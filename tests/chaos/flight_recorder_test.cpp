// The black-box story (docs/chaos.md, docs/observability.md): every chaos
// run records into the rtrace flight ring, and a failed invariant ships
// the ring with the verdict — the last-N decisions before the violation,
// fault injections and ladder moves included, without anyone having asked
// for tracing up front.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "chaos/orchestrator.h"
#include "obs/rtrace.h"

namespace generic::chaos {
namespace {

namespace fs = std::filesystem;
namespace rtrace = obs::rtrace;

std::string scratch_dir(const std::string& tag) {
  const fs::path dir = fs::path(testing::TempDir()) / ("flight-" + tag);
  fs::remove_all(dir);
  return dir.string();
}

ChaosReport run(const ScenarioSpec& spec, const std::string& tag) {
  RunOptions opt;
  opt.seed = 0xC4A05;
  opt.threads = 2;
  opt.work_dir = scratch_dir(tag);
  return run_scenario(spec, opt);
}

std::size_t count_kind(const rtrace::FlightLog& log, rtrace::EventKind kind) {
  std::size_t n = 0;
  for (const auto& e : log.events)
    if (e.kind == kind) ++n;
  return n;
}

#if GENERIC_OBS_ENABLED

// Drive bank_faults into a guaranteed invariant failure (a swap quota no
// run can meet) and read the crash back out of the flight recorder: the
// chaos fault injection and the ladder's degrade steps must be in the
// ring, each stamped with virtual time and model version.
TEST(ChaosFlightRecorder, InvariantFailureShipsTheBlackBox) {
  auto spec = find_scenario("bank_faults", true);
  ASSERT_TRUE(spec.has_value());
  spec->name = "bank_faults_forced_fail";
  spec->invariants.min_swaps = 1000;  // unreachable: the run must fail

  const ChaosReport report = run(*spec, "forced");
  EXPECT_FALSE(report.passed);

  ASSERT_FALSE(report.flight.events.empty());
  EXPECT_GE(count_kind(report.flight, rtrace::EventKind::kFaultInject), 1u)
      << "the chaos burst should be on the black box";
  EXPECT_GE(count_kind(report.flight, rtrace::EventKind::kDegradeStep), 1u)
      << "the ladder's moves should be on the black box";
  // Ring bookkeeping: everything kept is the tail of one seq stream.
  EXPECT_EQ(report.flight.recorded,
            report.flight.dropped + report.flight.events.size());
  for (std::size_t i = 1; i < report.flight.events.size(); ++i)
    EXPECT_LT(report.flight.events[i - 1].seq, report.flight.events[i].seq);

  // The dump renders as a complete generic.flight.v1 document.
  const std::string json = rtrace::flight_to_json(report.flight);
  EXPECT_NE(json.find("\"schema\": \"generic.flight.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"fault_inject\""), std::string::npos);
}

// A passing run still records (the box is always armed), and the
// orchestrator restores whatever sink switches the caller had: running a
// campaign must not leave tracing on behind the tools' backs.
TEST(ChaosFlightRecorder, OrchestratorArmsAndRestoresSinks) {
  rtrace::set_trace(false);
  rtrace::set_flight(false);
  auto spec = find_scenario("diurnal", true);
  ASSERT_TRUE(spec.has_value());
  const ChaosReport report = run(*spec, "restore");
  EXPECT_TRUE(report.passed);
  EXPECT_GT(report.flight.recorded, 0u);
  EXPECT_FALSE(rtrace::trace_enabled());
  EXPECT_FALSE(rtrace::flight_enabled());
  // opt.rtrace was false, so the full log was not collected.
  EXPECT_TRUE(report.rtrace.events.empty());
}

// With opt.rtrace the full causal stream rides the report, and the serve
// block's burn alerts mirror the kSloAlert events in it.
TEST(ChaosFlightRecorder, RtraceOptionCapturesTheFullStream) {
  auto spec = find_scenario("drift_under_overload", true);
  ASSERT_TRUE(spec.has_value());
  RunOptions opt;
  opt.seed = 0xC4A05;
  opt.threads = 2;
  opt.work_dir = scratch_dir("full");
  opt.rtrace = true;
  const ChaosReport report = run_scenario(*spec, opt);
  ASSERT_FALSE(report.rtrace.events.empty());
  std::size_t slo_events = 0;
  for (const auto& e : report.rtrace.events)
    if (e.kind == rtrace::EventKind::kSloAlert) ++slo_events;
  EXPECT_EQ(slo_events, report.serve.slo_alerts.size())
      << "report alerts and rtrace kSloAlert edges should agree";
  rtrace::set_trace(false);
}

#else  // GENERIC_OBS_ENABLED == 0

TEST(ChaosFlightRecorder, ObsOffRunsStillPassWithEmptyBox) {
  auto spec = find_scenario("diurnal", true);
  ASSERT_TRUE(spec.has_value());
  const ChaosReport report = run(*spec, "obsoff");
  EXPECT_TRUE(report.passed);
  EXPECT_TRUE(report.flight.events.empty());
  const std::string json = rtrace::flight_to_json(report.flight);
  EXPECT_NE(json.find("\"schema\": \"generic.flight.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"obs_enabled\": false"), std::string::npos);
}

#endif  // GENERIC_OBS_ENABLED

}  // namespace
}  // namespace generic::chaos
