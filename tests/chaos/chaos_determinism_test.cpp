// The chaos campaigns' two load-bearing contracts:
//
//  1. Determinism — every scenario's generic.chaos.v1 report is a pure
//     function of (spec, seed): byte-identical across worker thread counts
//     (1/2/7) and pinned byte-for-byte by the golden fixtures under
//     tests/chaos/golden/. To regenerate after an INTENTIONAL change:
//       GENERIC_UPDATE_GOLDEN=1 ./tests/test_chaos \
//           --gtest_filter='ChaosGolden.*'
//     then commit the fixtures and call the change out in the PR.
//
//  2. The scenarios actually tell their stories: every invariant passes,
//     the bank burst fires and is healed by a clean hot-swap, and the
//     corrupt-checkpoint boot quarantines the bad file and falls back.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "chaos/orchestrator.h"

#ifndef GENERIC_GOLDEN_DIR
#error "GENERIC_GOLDEN_DIR must be defined by the build"
#endif

namespace generic::chaos {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kSeed = 0xC4A05;

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return {};
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

/// Scratch dir unique per (scenario, tag) so ctest -j cases never collide.
std::string scratch_dir(const std::string& scenario, const std::string& tag) {
  const fs::path dir = fs::path(testing::TempDir()) /
                       ("chaos-" + scenario + "-" + tag);
  fs::remove_all(dir);
  return dir.string();
}

ChaosReport run(const ScenarioSpec& spec, std::size_t threads,
                const std::string& tag) {
  RunOptions opt;
  opt.seed = kSeed;
  opt.threads = threads;
  opt.work_dir = scratch_dir(spec.name, tag);
  return run_scenario(spec, opt);
}

TEST(ChaosScenario, RegistryShipsTheFiveCampaigns) {
  const auto scenarios = all_scenarios(true);
  ASSERT_EQ(scenarios.size(), 5u);
  const char* expected[] = {"diurnal", "flash_crowd", "bank_faults",
                            "drift_under_overload",
                            "corrupt_checkpoint_boot"};
  for (std::size_t i = 0; i < scenarios.size(); ++i)
    EXPECT_EQ(scenarios[i].name, expected[i]);
  EXPECT_TRUE(find_scenario("bank_faults", true).has_value());
  EXPECT_FALSE(find_scenario("nope", true).has_value());
  // Quick and full specs are distinct sizings of the same campaign.
  EXPECT_LT(find_scenario("diurnal", true)->requests,
            find_scenario("diurnal", false)->requests);
}

TEST(ChaosDeterminism, ReportsByteIdenticalAcrossThreads) {
  for (const auto& spec : all_scenarios(true)) {
    const std::string t1 =
        chaos_report_to_json(run(spec, 1, "t1"));
    const std::string t2 =
        chaos_report_to_json(run(spec, 2, "t2"));
    const std::string t7 =
        chaos_report_to_json(run(spec, 7, "t7"));
    EXPECT_EQ(t1, t2) << spec.name << ": threads 1 vs 2";
    EXPECT_EQ(t1, t7) << spec.name << ": threads 1 vs 7";
  }
}

TEST(ChaosGolden, ReportsMatchCommittedFixtures) {
  for (const auto& spec : all_scenarios(true)) {
    const std::string got = chaos_report_to_json(run(spec, 2, "golden"));
    const std::string path =
        std::string(GENERIC_GOLDEN_DIR) + "/" + spec.name + ".json";

    if (std::getenv("GENERIC_UPDATE_GOLDEN") != nullptr) {
      std::ofstream f(path, std::ios::binary | std::ios::trunc);
      ASSERT_TRUE(f) << "cannot write fixture " << path;
      f << got;
      continue;
    }
    const std::string want = read_file(path);
    ASSERT_FALSE(want.empty())
        << "missing fixture " << path
        << " — run with GENERIC_UPDATE_GOLDEN=1 to create it";
    EXPECT_EQ(got, want)
        << spec.name
        << " diverged from its committed fixture; if the change is "
           "intentional, regenerate with GENERIC_UPDATE_GOLDEN=1";
  }
  if (std::getenv("GENERIC_UPDATE_GOLDEN") != nullptr)
    GTEST_SKIP() << "fixtures regenerated under " << GENERIC_GOLDEN_DIR;
}

TEST(ChaosScenario, EveryCampaignPassesItsInvariants) {
  for (const auto& spec : all_scenarios(true)) {
    const ChaosReport report = run(spec, 2, "inv");
    EXPECT_TRUE(report.passed) << spec.name;
    for (const auto& inv : report.invariants)
      EXPECT_TRUE(inv.passed)
          << spec.name << ": " << inv.name << " value=" << inv.value
          << " bound=" << inv.bound;
  }
}

TEST(ChaosScenario, BankBurstFiresCollapsesAndHeals) {
  const auto spec = find_scenario("bank_faults", true);
  ASSERT_TRUE(spec.has_value());
  const ChaosReport report = run(*spec, 2, "story");

  // The burst fired as a chaos-version install at its scheduled time.
  ASSERT_EQ(report.bursts.size(), 1u);
  const BurstRecord& burst = report.bursts[0];
  EXPECT_EQ(burst.version, kChaosVersionBase);
  EXPECT_GE(burst.fired_vt_us, burst.scheduled_vt_us);
  EXPECT_FALSE(burst.banks.empty());
  bool chaos_install = false, heal_swap = false;
  std::uint64_t chaos_vt = 0, heal_vt = 0;
  for (const auto& s : report.serve.swaps) {
    if (s.version >= kChaosVersionBase && !s.rollback) {
      chaos_install = true;
      chaos_vt = s.vt;
    }
    if (s.version < kChaosVersionBase && !s.rollback && !heal_swap) {
      heal_swap = true;
      heal_vt = s.vt;
    }
  }
  EXPECT_TRUE(chaos_install);
  ASSERT_TRUE(heal_swap) << "no clean retrain swap healed the burst";
  EXPECT_GT(heal_vt, chaos_vt);

  // The corrupted version measurably collapsed accuracy; the healed
  // versions won it back.
  double corrupted_acc = 1.0, healed_acc = 0.0;
  for (const auto& v : report.serve.versions) {
    const double acc = v.served == 0 ? 0.0
                                     : static_cast<double>(v.correct) /
                                           static_cast<double>(v.served);
    if (v.version >= kChaosVersionBase) corrupted_acc = acc;
    if (v.version > 0 && v.version < kChaosVersionBase) healed_acc = acc;
  }
  EXPECT_LT(corrupted_acc, 0.6);
  EXPECT_GT(healed_acc, 0.8);
  EXPECT_GE(report.lifecycle.swapped, 1u);
}

TEST(ChaosScenario, CorruptCheckpointBootQuarantinesAndFallsBack) {
  const auto spec = find_scenario("corrupt_checkpoint_boot", true);
  ASSERT_TRUE(spec.has_value());
  const ChaosReport report = run(*spec, 2, "story");

  EXPECT_TRUE(report.boot.from_checkpoint);
  EXPECT_EQ(report.boot.store_versions_seeded, 2u);
  EXPECT_EQ(report.boot.quarantined, 1u);
  // The newest (corrupted) version 2 was refused; boot fell back to 1.
  EXPECT_EQ(report.boot.version, 1u);
  // Lifecycle version numbering continues from the booted checkpoint.
  ASSERT_FALSE(report.lifecycle.versions.empty());
  EXPECT_EQ(report.lifecycle.versions[0].version, 1u);
  EXPECT_TRUE(report.passed);
  for (const auto& inv : report.invariants) EXPECT_TRUE(inv.passed) << inv.name;
}

}  // namespace
}  // namespace generic::chaos
