#include "encoding/encoders.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "hdc/hypervector.h"

namespace generic::enc {
namespace {

std::vector<std::vector<float>> unit_range_samples() {
  return {{0.0f, 1.0f}, {0.5f, 0.25f}};
}

EncoderConfig small_cfg() {
  EncoderConfig cfg;
  cfg.dims = 2048;
  cfg.levels = 16;
  cfg.window = 3;
  cfg.seed = 99;
  return cfg;
}

class AllEncodersTest : public ::testing::TestWithParam<EncoderKind> {};

TEST_P(AllEncodersTest, DeterministicAcrossInstances) {
  const auto cfg = small_cfg();
  auto e1 = make_encoder(GetParam(), cfg);
  auto e2 = make_encoder(GetParam(), cfg);
  const auto fit_data = unit_range_samples();
  e1->fit(fit_data);
  e2->fit(fit_data);
  const std::vector<float> x{0.1f, 0.9f, 0.4f, 0.6f, 0.2f, 0.8f};
  EXPECT_EQ(e1->encode(x), e2->encode(x));
}

TEST_P(AllEncodersTest, OutputHasConfiguredDims) {
  const auto cfg = small_cfg();
  auto e = make_encoder(GetParam(), cfg);
  e->fit(unit_range_samples());
  const std::vector<float> x{0.1f, 0.9f, 0.4f, 0.6f};
  EXPECT_EQ(e->encode(x).size(), cfg.dims);
}

TEST_P(AllEncodersTest, DifferentInputsGiveDifferentCodes) {
  auto e = make_encoder(GetParam(), small_cfg());
  e->fit(unit_range_samples());
  const std::vector<float> x{0.1f, 0.9f, 0.4f, 0.6f, 0.3f};
  const std::vector<float> y{0.9f, 0.1f, 0.6f, 0.4f, 0.7f};
  EXPECT_NE(e->encode(x), e->encode(y));
}

TEST_P(AllEncodersTest, SimilarInputsMoreSimilarThanDissimilar) {
  auto e = make_encoder(GetParam(), small_cfg());
  e->fit(unit_range_samples());
  std::vector<float> base(24), near(24), far(24);
  for (std::size_t i = 0; i < base.size(); ++i) {
    base[i] = 0.05f + 0.035f * static_cast<float>(i);
    near[i] = base[i] + 0.02f;
    far[i] = 1.0f - base[i];
  }
  const auto hb = e->encode(base);
  const auto hn = e->encode(near);
  const auto hf = e->encode(far);
  EXPECT_GT(hdc::cosine(hb, hn), hdc::cosine(hb, hf));
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllEncodersTest,
                         ::testing::Values(EncoderKind::kRp,
                                           EncoderKind::kLevelId,
                                           EncoderKind::kNgram,
                                           EncoderKind::kPermutation,
                                           EncoderKind::kGeneric,
                                           EncoderKind::kSymbolNgram),
                         [](const auto& info) {
                           std::string s{to_string(info.param)};
                           for (auto& c : s)
                             if (c == '-') c = '_';
                           return s;
                         });

TEST(GenericEncoder, WithoutIdsEqualsNgram) {
  // Paper §3.1: setting the id hypervectors to {0} skips global binding;
  // the encoding degenerates to pure windowed subsequence statistics.
  auto cfg = small_cfg();
  cfg.use_ids = false;
  GenericEncoder gen(cfg);
  NgramEncoder ngram(cfg);
  const auto fit_data = unit_range_samples();
  gen.fit(fit_data);
  ngram.fit(fit_data);
  const std::vector<float> x{0.1f, 0.7f, 0.3f, 0.9f, 0.5f, 0.2f};
  EXPECT_EQ(gen.encode(x), ngram.encode(x));
}

TEST(GenericEncoder, IdsMakeShiftedInputsDistinct) {
  // With ids, the same subsequence at a different global offset must map to
  // a different code (global order is bound); without ids it must not.
  auto cfg = small_cfg();
  cfg.window = 3;
  const std::vector<float> a{0.1f, 0.5f, 0.9f, 0.1f, 0.1f, 0.1f, 0.1f};
  const std::vector<float> b{0.1f, 0.1f, 0.1f, 0.1f, 0.1f, 0.5f, 0.9f};
  // shifted motif {0.1,0.5,0.9}
  cfg.use_ids = true;
  GenericEncoder with_ids(cfg);
  with_ids.fit(unit_range_samples());
  const double sim_ids =
      hdc::cosine(with_ids.encode(a), with_ids.encode(b));
  cfg.use_ids = false;
  GenericEncoder no_ids(cfg);
  no_ids.fit(unit_range_samples());
  const double sim_free = hdc::cosine(no_ids.encode(a), no_ids.encode(b));
  EXPECT_GT(sim_free, sim_ids + 0.1);
}

TEST(NgramEncoder, ShortInputYieldsZeroVector) {
  auto cfg = small_cfg();
  cfg.window = 5;
  NgramEncoder e(cfg);
  e.fit(unit_range_samples());
  const std::vector<float> x{0.5f, 0.5f};  // shorter than the window
  const auto h = e.encode(x);
  for (auto v : h) EXPECT_EQ(v, 0);
}

TEST(NgramEncoder, WindowCountReflectedInL1Mass) {
  // Each window contributes exactly one bipolar hypervector, so the sum of
  // dimension parities equals d-n+1 windows (mod 2 per dimension), and the
  // total L1 mass is bounded by (d-n+1).
  auto cfg = small_cfg();
  cfg.window = 3;
  NgramEncoder e(cfg);
  e.fit(unit_range_samples());
  const std::vector<float> x{0.1f, 0.2f, 0.3f, 0.4f, 0.5f, 0.6f, 0.7f, 0.8f};
  const auto h = e.encode(x);
  const int windows = static_cast<int>(x.size() - cfg.window + 1);
  for (auto v : h) {
    EXPECT_LE(std::abs(v), windows);
    EXPECT_EQ((v - windows) % 2, 0);
  }
}

TEST(RpEncoder, IsLinearInQuantizedFeatures) {
  // RP is a linear map of the quantized features: encoding a vector whose
  // bins are the element-wise sum of two others equals the sum of their
  // encodings. This is the structural weakness Table 1 exposes on EEG.
  EncoderConfig cfg = small_cfg();
  cfg.levels = 8;
  RpEncoder e(cfg);
  const std::vector<std::vector<float>> range{{0.0f, 8.0f}};
  e.fit(range);  // bins == floor(value) for values 0..7
  const std::vector<float> a{1.2f, 2.2f, 0.2f};
  const std::vector<float> b{2.2f, 1.2f, 3.2f};
  const std::vector<float> sum{3.2f, 3.2f, 3.2f};
  auto ha = e.encode(a);
  auto hb = e.encode(b);
  const auto hs = e.encode(sum);
  hdc::add_into(ha, hb);
  EXPECT_EQ(ha, hs);
}

TEST(PermutationEncoder, PositionSensitive) {
  auto cfg = small_cfg();
  PermutationEncoder e(cfg);
  e.fit(unit_range_samples());
  // Same multiset of values, different order -> dissimilar encodings.
  // Extreme values are used so levels at swapped positions are themselves
  // ~orthogonal and the remaining similarity is pure position leakage.
  const std::vector<float> a{0.0f, 1.0f, 0.0f, 1.0f};
  const std::vector<float> b{1.0f, 0.0f, 1.0f, 0.0f};
  const double sim = hdc::cosine(e.encode(a), e.encode(b));
  EXPECT_LT(sim, 0.35);
}

TEST(SymbolNgram, TreatsBinsAsCategorical) {
  // Adjacent bins must be ~orthogonal for sym-ngram (independent items)
  // but similar for level-based ngram (distance-preserving levels).
  auto cfg = small_cfg();
  cfg.window = 1;  // single-symbol windows isolate the item table
  SymbolNgramEncoder sym(cfg);
  NgramEncoder lvl(cfg);
  const std::vector<std::vector<float>> range{{0.0f, 16.0f}};
  sym.fit(range);
  lvl.fit(range);
  const std::vector<float> a(8, 7.5f);  // bin 7 everywhere
  const std::vector<float> b(8, 8.5f);  // adjacent bin 8
  EXPECT_LT(hdc::cosine(sym.encode(a), sym.encode(b)), 0.2);
  EXPECT_GT(hdc::cosine(lvl.encode(a), lvl.encode(b)), 0.7);
}

TEST(EncoderFactory, NamesRoundTrip) {
  for (auto kind :
       {EncoderKind::kRp, EncoderKind::kLevelId, EncoderKind::kNgram,
        EncoderKind::kPermutation, EncoderKind::kGeneric,
        EncoderKind::kSymbolNgram}) {
    auto e = make_encoder(kind, small_cfg());
    EXPECT_EQ(e->name(), to_string(kind));
  }
}

TEST(Encoder, FitRangeMatchesFitOnThatRange) {
  // fit_range is the deserialization/deployment path: it must configure
  // the quantizer identically to fitting on data spanning the same range.
  auto cfg = small_cfg();
  GenericEncoder by_data(cfg);
  const std::vector<std::vector<float>> span_data{{-2.0f, 3.0f}};
  by_data.fit(span_data);
  GenericEncoder by_range(cfg);
  by_range.fit_range(-2.0f, 3.0f);
  const std::vector<float> x{-1.0f, 0.0f, 1.0f, 2.5f, -1.7f};
  EXPECT_EQ(by_data.encode(x), by_range.encode(x));
}

TEST(GenericEncoder, InputShorterThanWindowIsZero) {
  auto cfg = small_cfg();
  cfg.window = 4;
  GenericEncoder e(cfg);
  e.fit(unit_range_samples());
  const std::vector<float> x{0.5f, 0.5f};
  for (auto v : e.encode(x)) EXPECT_EQ(v, 0);
}

TEST(Encoder, ZeroWindowRejected) {
  auto cfg = small_cfg();
  cfg.window = 0;
  EXPECT_THROW(NgramEncoder{cfg}, std::invalid_argument);
  EXPECT_THROW(GenericEncoder{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace generic::enc
