// Wire-protocol contract (src/net/protocol.h): every encode/decode pair
// round-trips exactly, and the parser is TOTAL — the fuzz-ish corpus below
// (truncated frames, zero/oversized length prefixes, zero-length payloads,
// garbage mid-stream, adversarial split feeds, seeded random byte soup)
// must land every malformed input in exactly one typed ProtoError without
// crashing. The asan/ubsan presets run this suite with sanitizers on,
// which is what turns "no crash" into "no UB".
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "net/protocol.h"

namespace generic::net {
namespace {

std::optional<Frame> parse_one(const std::vector<std::uint8_t>& bytes,
                               FrameParser& p) {
  p.feed(bytes.data(), bytes.size());
  return p.next();
}

TEST(ProtocolTest, HelloRoundTrip) {
  Hello in;
  in.tenant = 7;
  in.client = 11;
  std::vector<std::uint8_t> bytes;
  encode_hello(in, bytes);

  FrameParser p;
  auto f = parse_one(bytes, p);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->kind, FrameKind::kHello);
  Hello out;
  ASSERT_EQ(decode_hello(*f, out), ProtoError::kNone);
  EXPECT_EQ(out.version, kProtoVersion);
  EXPECT_EQ(out.tenant, 7);
  EXPECT_EQ(out.client, 11);
  EXPECT_FALSE(p.next().has_value());
  EXPECT_FALSE(p.failed());
}

TEST(ProtocolTest, HelloAckRoundTrip) {
  HelloAck in;
  in.model_queries = {160, 320, 7};
  std::vector<std::uint8_t> bytes;
  encode_hello_ack(in, bytes);

  FrameParser p;
  auto f = parse_one(bytes, p);
  ASSERT_TRUE(f.has_value());
  HelloAck out;
  ASSERT_EQ(decode_hello_ack(*f, out), ProtoError::kNone);
  EXPECT_EQ(out.model_queries, in.model_queries);
}

TEST(ProtocolTest, RequestRoundTrip) {
  WireRequest in;
  in.id = 0x0123456789ABCDEFull;
  in.send_us = 42000;
  in.model = 2;
  in.priority = 1;
  in.deadline_rel_us = 4000;
  in.query = 159;
  std::vector<std::uint8_t> bytes;
  encode_request(in, bytes);

  FrameParser p;
  auto f = parse_one(bytes, p);
  ASSERT_TRUE(f.has_value());
  WireRequest out;
  ASSERT_EQ(decode_request(*f, out), ProtoError::kNone);
  EXPECT_EQ(out.id, in.id);
  EXPECT_EQ(out.send_us, in.send_us);
  EXPECT_EQ(out.model, in.model);
  EXPECT_EQ(out.priority, in.priority);
  EXPECT_EQ(out.deadline_rel_us, in.deadline_rel_us);
  EXPECT_EQ(out.query, in.query);
}

TEST(ProtocolTest, ResponseRoundTripWithNegativeFields) {
  WireResponse in;
  in.id = 99;
  in.status = kStatusPriorityShed;
  in.predicted = -1;
  in.margin_micro = -123456789;
  in.dims_used = 512;
  in.attempts = 3;
  in.finish_us = 1000000;
  in.latency_us = 2500;
  in.version = 4;
  in.rung = 2;
  std::vector<std::uint8_t> bytes;
  encode_response(in, bytes);

  FrameParser p;
  auto f = parse_one(bytes, p);
  ASSERT_TRUE(f.has_value());
  WireResponse out;
  ASSERT_EQ(decode_response(*f, out), ProtoError::kNone);
  EXPECT_EQ(out.predicted, -1);
  EXPECT_EQ(out.margin_micro, -123456789);
  EXPECT_EQ(out.status, kStatusPriorityShed);
  EXPECT_EQ(out.rung, 2u);
}

TEST(ProtocolTest, ByeAndErrorRoundTrip) {
  std::vector<std::uint8_t> bytes;
  encode_bye(bytes);
  encode_error(ProtoError::kUnknownTenant, bytes);

  FrameParser p;
  p.feed(bytes.data(), bytes.size());
  auto bye = p.next();
  ASSERT_TRUE(bye.has_value());
  EXPECT_EQ(bye->kind, FrameKind::kBye);
  EXPECT_TRUE(bye->body.empty());
  auto err = p.next();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->kind, FrameKind::kError);
  ProtoError code = ProtoError::kNone;
  ASSERT_EQ(decode_error(*err, code), ProtoError::kNone);
  EXPECT_EQ(code, ProtoError::kUnknownTenant);
}

TEST(ProtocolTest, ByteAtATimeFeedStillYieldsFrames) {
  WireRequest in;
  in.id = 5;
  in.query = 3;
  std::vector<std::uint8_t> bytes;
  encode_request(in, bytes);
  encode_bye(bytes);

  FrameParser p;
  std::size_t frames = 0;
  for (std::uint8_t b : bytes) {
    p.feed(&b, 1);
    while (p.next()) ++frames;
  }
  EXPECT_EQ(frames, 2u);
  EXPECT_FALSE(p.failed());
  EXPECT_EQ(p.buffered(), 0u);
}

// ---- The malformed-input corpus (satellite: fuzz-ish typed errors) --------

TEST(ProtocolCorpus, TruncatedFrameIsNotAFrameAndNotAnError) {
  std::vector<std::uint8_t> bytes;
  encode_bye(bytes);
  bytes.pop_back();  // drop the kind byte: header promises more than sent

  FrameParser p;
  p.feed(bytes.data(), bytes.size());
  EXPECT_FALSE(p.next().has_value());
  EXPECT_FALSE(p.failed());  // incomplete, not invalid
  EXPECT_GT(p.buffered(), 0u);
}

TEST(ProtocolCorpus, ZeroLengthPrefixIsTyped) {
  const std::uint8_t bytes[] = {0, 0, 0, 0};
  FrameParser p;
  p.feed(bytes, sizeof(bytes));
  EXPECT_FALSE(p.next().has_value());
  EXPECT_TRUE(p.failed());
  EXPECT_EQ(p.error(), ProtoError::kZeroLength);
}

TEST(ProtocolCorpus, OversizedLengthPrefixIsTypedWithoutBuffering) {
  // length = kMaxFrameLen + 1: must fail from the 4 header bytes alone,
  // never waiting for (or allocating) the advertised body.
  const std::uint32_t len = kMaxFrameLen + 1;
  const std::uint8_t bytes[] = {
      static_cast<std::uint8_t>(len & 0xFF),
      static_cast<std::uint8_t>((len >> 8) & 0xFF),
      static_cast<std::uint8_t>((len >> 16) & 0xFF),
      static_cast<std::uint8_t>((len >> 24) & 0xFF)};
  FrameParser p;
  p.feed(bytes, sizeof(bytes));
  EXPECT_FALSE(p.next().has_value());
  EXPECT_EQ(p.error(), ProtoError::kOversized);
}

TEST(ProtocolCorpus, UnknownKindIsTyped) {
  const std::uint8_t bytes[] = {1, 0, 0, 0, 0x7F};
  FrameParser p;
  p.feed(bytes, sizeof(bytes));
  EXPECT_FALSE(p.next().has_value());
  EXPECT_EQ(p.error(), ProtoError::kUnknownKind);
}

TEST(ProtocolCorpus, ErrorIsStickyAndLaterFeedsAreDiscarded) {
  const std::uint8_t bad[] = {0, 0, 0, 0};
  FrameParser p;
  p.feed(bad, sizeof(bad));
  EXPECT_FALSE(p.next().has_value());
  ASSERT_TRUE(p.failed());

  std::vector<std::uint8_t> good;
  encode_bye(good);
  p.feed(good.data(), good.size());
  EXPECT_FALSE(p.next().has_value());  // still failed; nothing revives it
  EXPECT_EQ(p.error(), ProtoError::kZeroLength);
}

TEST(ProtocolCorpus, GarbageAfterValidFrameFailsAtTheGarbage) {
  std::vector<std::uint8_t> bytes;
  encode_bye(bytes);
  const std::uint8_t junk[] = {0xFF, 0xFF, 0xFF, 0xFF, 0xAA, 0xBB};
  bytes.insert(bytes.end(), junk, junk + sizeof(junk));

  FrameParser p;
  p.feed(bytes.data(), bytes.size());
  auto f = p.next();
  ASSERT_TRUE(f.has_value());  // the valid frame still comes out
  EXPECT_EQ(f->kind, FrameKind::kBye);
  EXPECT_FALSE(p.next().has_value());
  EXPECT_EQ(p.error(), ProtoError::kOversized);  // 0xFFFFFFFF length
}

TEST(ProtocolCorpus, ZeroLengthRequestPayloadIsTypedBadPayload) {
  // Hand-build a kRequest whose payload_len is 0 (no query index at all).
  std::vector<std::uint8_t> bytes;
  WireRequest r;
  encode_request(r, bytes);
  // Patch payload_len (last 6 bytes are u16 payload_len + u32 query):
  // truncate the query and rewrite payload_len = 0, then fix the prefix.
  bytes.resize(bytes.size() - 4);           // drop query
  bytes[bytes.size() - 2] = 0;              // payload_len lo
  bytes[bytes.size() - 1] = 0;              // payload_len hi
  const std::uint32_t len = static_cast<std::uint32_t>(bytes.size() - 4);
  bytes[0] = static_cast<std::uint8_t>(len & 0xFF);
  bytes[1] = static_cast<std::uint8_t>((len >> 8) & 0xFF);
  bytes[2] = static_cast<std::uint8_t>((len >> 16) & 0xFF);
  bytes[3] = static_cast<std::uint8_t>((len >> 24) & 0xFF);

  FrameParser p;
  auto f = parse_one(bytes, p);
  ASSERT_TRUE(f.has_value());
  WireRequest out;
  EXPECT_EQ(decode_request(*f, out), ProtoError::kBadPayload);
}

TEST(ProtocolCorpus, ShortAndTrailingBodiesAreTyped) {
  std::vector<std::uint8_t> bytes;
  encode_hello(Hello{}, bytes);
  FrameParser p;
  auto f = parse_one(bytes, p);
  ASSERT_TRUE(f.has_value());

  Frame short_f = *f;
  short_f.body.resize(3);  // half a tenant field
  Hello h;
  EXPECT_EQ(decode_hello(short_f, h), ProtoError::kShortBody);

  Frame long_f = *f;
  long_f.body.push_back(0xEE);
  EXPECT_EQ(decode_hello(long_f, h), ProtoError::kTrailingBytes);

  Frame wrong_version = *f;
  wrong_version.body[0] = 0xFE;
  wrong_version.body[1] = 0xCA;
  EXPECT_EQ(decode_hello(wrong_version, h), ProtoError::kBadVersion);
}

TEST(ProtocolCorpus, SeededRandomByteSoupNeverCrashes) {
  // 64 seeded streams of random bytes, fed in random chunk sizes. Every
  // stream must either keep yielding (possibly garbage-bodied but
  // well-framed) frames or land in a typed error — and decoders must
  // return a typed verdict on whatever comes out. Run under asan/ubsan
  // this is the no-UB proof for arbitrary network input.
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    Rng rng(0xF422ED ^ (seed * 0x9E3779B97F4A7C15ull));
    std::vector<std::uint8_t> soup(2048);
    for (auto& b : soup) b = static_cast<std::uint8_t>(rng.below(256));

    FrameParser p;
    std::size_t off = 0;
    while (off < soup.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(1 + rng.below(97), soup.size() - off);
      p.feed(soup.data() + off, chunk);
      off += chunk;
      while (auto f = p.next()) {
        Hello h;
        HelloAck a;
        WireRequest req;
        WireResponse resp;
        ProtoError code;
        (void)decode_hello(*f, h);
        (void)decode_hello_ack(*f, a);
        (void)decode_request(*f, req);
        (void)decode_response(*f, resp);
        (void)decode_error(*f, code);
      }
      if (p.failed()) break;
    }
    SUCCEED();
  }
}

TEST(ProtocolCorpus, LongLivedParserCompactsItsBuffer) {
  // Feed thousands of frames through one parser; buffered() returning to 0
  // and the soup above bound memory, this pins the consumed-prefix compact.
  FrameParser p;
  std::vector<std::uint8_t> bytes;
  WireRequest r;
  for (int i = 0; i < 5000; ++i) {
    bytes.clear();
    r.id = static_cast<std::uint64_t>(i);
    encode_request(r, bytes);
    p.feed(bytes.data(), bytes.size());
    auto f = p.next();
    ASSERT_TRUE(f.has_value());
    WireRequest out;
    ASSERT_EQ(decode_request(*f, out), ProtoError::kNone);
    ASSERT_EQ(out.id, static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(p.buffered(), 0u);
  EXPECT_FALSE(p.failed());
}

}  // namespace
}  // namespace generic::net
