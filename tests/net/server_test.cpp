// Poll-pump server contract (src/net/server.h): accept/HELLO/request/BYE
// lifecycle over real loopback sockets, per-connection protocol-error
// isolation, the connection limit, and graceful drain. Client side runs
// inline on blocking sockets; the pump side is driven by poll_once().
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/protocol.h"
#include "net/server.h"
#include "net/socket.h"

namespace generic::net {
namespace {

ServerConfig test_config() {
  ServerConfig cfg;
  cfg.port = 0;  // ephemeral
  cfg.num_tenants = 2;
  cfg.model_queries = {100, 50};
  return cfg;
}

/// Blocking client half for driving the pump from the same thread: the
/// server is nonblocking, so feed-it / pump-it alternation cannot deadlock.
struct TestClient {
  Fd fd;
  FrameParser parser;

  explicit TestClient(std::uint16_t port) : fd(connect_loopback(port)) {}

  void send(const std::vector<std::uint8_t>& bytes) {
    ASSERT_TRUE(write_all(fd.get(), bytes.data(), bytes.size()));
  }

  /// Read until one frame is complete (server must have flushed already).
  std::optional<Frame> recv() {
    for (int spin = 0; spin < 1000; ++spin) {
      if (auto f = parser.next()) return f;
      std::uint8_t buf[512];
      const auto n = read_some(fd.get(), buf, sizeof(buf));
      if (n <= 0) return std::nullopt;
      parser.feed(buf, static_cast<std::size_t>(n));
    }
    return std::nullopt;
  }
};

/// Pump until an event of `kind` shows up (collecting everything), or the
/// poll budget runs out.
std::vector<ServerEvent> pump_until(Server& server, ServerEvent::Kind kind) {
  std::vector<ServerEvent> all;
  for (int spin = 0; spin < 200; ++spin) {
    for (auto& ev : server.poll_once(50)) {
      all.push_back(ev);
      if (ev.kind == kind) return all;
    }
  }
  return all;
}

bool saw(const std::vector<ServerEvent>& events, ServerEvent::Kind kind) {
  for (const auto& ev : events)
    if (ev.kind == kind) return true;
  return false;
}

TEST(ServerTest, HelloRequestByeLifecycle) {
  Server server(test_config());
  ASSERT_TRUE(server.listening());
  ASSERT_NE(server.port(), 0);

  TestClient client(server.port());
  ASSERT_TRUE(client.fd.valid());

  Hello hello;
  hello.tenant = 1;
  hello.client = 3;
  std::vector<std::uint8_t> bytes;
  encode_hello(hello, bytes);
  client.send(bytes);

  auto events = pump_until(server, ServerEvent::Kind::kHello);
  ASSERT_TRUE(saw(events, ServerEvent::Kind::kAccept));
  ASSERT_TRUE(saw(events, ServerEvent::Kind::kHello));
  const ServerEvent& hev = events.back();
  EXPECT_EQ(hev.tenant, 1);
  EXPECT_EQ(hev.client, 3);

  // HELLO_ACK carries the topology.
  auto ack_frame = client.recv();
  ASSERT_TRUE(ack_frame.has_value());
  ASSERT_EQ(ack_frame->kind, FrameKind::kHelloAck);
  HelloAck ack;
  ASSERT_EQ(decode_hello_ack(*ack_frame, ack), ProtoError::kNone);
  EXPECT_EQ(ack.model_queries, (std::vector<std::uint32_t>{100, 50}));

  // A validated request surfaces with the connection's identity attached.
  WireRequest req;
  req.id = 77;
  req.model = 1;
  req.query = 49;
  bytes.clear();
  encode_request(req, bytes);
  client.send(bytes);
  events = pump_until(server, ServerEvent::Kind::kRequest);
  ASSERT_TRUE(saw(events, ServerEvent::Kind::kRequest));
  const ServerEvent& rev = events.back();
  EXPECT_EQ(rev.tenant, 1);
  EXPECT_EQ(rev.client, 3);
  EXPECT_EQ(rev.req.id, 77u);
  EXPECT_EQ(rev.req.query, 49u);

  // Response comes back on the same connection.
  WireResponse resp;
  resp.id = 77;
  resp.status = 0;
  ASSERT_TRUE(server.send_response(rev.conn, resp));
  auto resp_frame = client.recv();
  ASSERT_TRUE(resp_frame.has_value());
  ASSERT_EQ(resp_frame->kind, FrameKind::kResponse);
  WireResponse got;
  ASSERT_EQ(decode_response(*resp_frame, got), ProtoError::kNone);
  EXPECT_EQ(got.id, 77u);

  // BYE drains and closes the connection.
  bytes.clear();
  encode_bye(bytes);
  client.send(bytes);
  events = pump_until(server, ServerEvent::Kind::kClosed);
  EXPECT_TRUE(saw(events, ServerEvent::Kind::kBye));
  EXPECT_TRUE(saw(events, ServerEvent::Kind::kClosed));
  EXPECT_EQ(server.open_connections(), 0u);
  EXPECT_EQ(server.stats().requests, 1u);
  EXPECT_EQ(server.stats().protocol_errors, 0u);
}

TEST(ServerTest, UnknownTenantGetsTypedErrorFrameAndClose) {
  Server server(test_config());
  TestClient client(server.port());

  Hello hello;
  hello.tenant = 9;  // topology has 2 tenants
  std::vector<std::uint8_t> bytes;
  encode_hello(hello, bytes);
  client.send(bytes);

  auto events = pump_until(server, ServerEvent::Kind::kClosed);
  ASSERT_TRUE(saw(events, ServerEvent::Kind::kClosed));
  EXPECT_EQ(events.back().error, ProtoError::kUnknownTenant);
  EXPECT_EQ(server.stats().protocol_errors, 1u);

  auto err_frame = client.recv();
  ASSERT_TRUE(err_frame.has_value());
  ASSERT_EQ(err_frame->kind, FrameKind::kError);
  ProtoError code = ProtoError::kNone;
  ASSERT_EQ(decode_error(*err_frame, code), ProtoError::kNone);
  EXPECT_EQ(code, ProtoError::kUnknownTenant);
}

TEST(ServerTest, RequestBeforeHelloIsBadSequence) {
  Server server(test_config());
  TestClient client(server.port());

  std::vector<std::uint8_t> bytes;
  WireRequest req;
  encode_request(req, bytes);
  client.send(bytes);

  auto events = pump_until(server, ServerEvent::Kind::kClosed);
  ASSERT_TRUE(saw(events, ServerEvent::Kind::kClosed));
  EXPECT_EQ(events.back().error, ProtoError::kBadSequence);
}

TEST(ServerTest, OutOfRangeModelAndQueryAreTyped) {
  for (const bool bad_model : {true, false}) {
    Server server(test_config());
    TestClient client(server.port());
    std::vector<std::uint8_t> bytes;
    encode_hello(Hello{}, bytes);
    WireRequest req;
    req.model = bad_model ? 2 : 0;  // 2 models in topology
    req.query = bad_model ? 0 : 100;  // model 0 has 100 queries
    encode_request(req, bytes);
    client.send(bytes);

    auto events = pump_until(server, ServerEvent::Kind::kClosed);
    ASSERT_TRUE(saw(events, ServerEvent::Kind::kClosed));
    EXPECT_EQ(events.back().error, bad_model ? ProtoError::kUnknownModel
                                             : ProtoError::kBadPayload);
  }
}

TEST(ServerTest, GarbageBytesCloseOnlyTheOffendingConnection) {
  Server server(test_config());
  TestClient good(server.port());
  TestClient evil(server.port());

  std::vector<std::uint8_t> bytes;
  encode_hello(Hello{}, bytes);
  good.send(bytes);
  pump_until(server, ServerEvent::Kind::kHello);

  const std::uint8_t junk[] = {0, 0, 0, 0};  // zero-length prefix
  ASSERT_TRUE(write_all(evil.fd.get(), junk, sizeof(junk)));
  auto events = pump_until(server, ServerEvent::Kind::kClosed);
  ASSERT_TRUE(saw(events, ServerEvent::Kind::kClosed));
  EXPECT_EQ(events.back().error, ProtoError::kZeroLength);
  EXPECT_EQ(server.open_connections(), 1u);  // the good one survives
}

TEST(ServerTest, ConnectionLimitRejectsTheOverflow) {
  ServerConfig cfg = test_config();
  cfg.max_connections = 1;
  Server server(cfg);

  TestClient first(server.port());
  ASSERT_TRUE(first.fd.valid());
  pump_until(server, ServerEvent::Kind::kAccept);
  ASSERT_EQ(server.open_connections(), 1u);

  TestClient second(server.port());
  ASSERT_TRUE(second.fd.valid());  // connect() lands in the backlog...
  for (int spin = 0; spin < 20; ++spin) server.poll_once(10);
  EXPECT_EQ(server.open_connections(), 1u);  // ...but never becomes a conn
  EXPECT_EQ(server.stats().rejected_at_limit, 1u);
  // The overflow peer sees EOF.
  std::uint8_t buf[16];
  EXPECT_EQ(read_some(second.fd.get(), buf, sizeof(buf)), 0);
}

TEST(ServerTest, DrainFlushesAndClosesEverything) {
  Server server(test_config());
  TestClient client(server.port());
  std::vector<std::uint8_t> bytes;
  encode_hello(Hello{}, bytes);
  client.send(bytes);
  auto events = pump_until(server, ServerEvent::Kind::kHello);
  const std::uint64_t conn = events.back().conn;

  WireResponse resp;
  resp.id = 123;
  ASSERT_TRUE(server.send_response(conn, resp));

  auto drained = server.drain(1000);
  EXPECT_TRUE(saw(drained, ServerEvent::Kind::kClosed));
  EXPECT_EQ(server.open_connections(), 0u);

  // Queued bytes made it out before the close: HELLO_ACK then response.
  auto ack = client.recv();
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->kind, FrameKind::kHelloAck);
  auto r = client.recv();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->kind, FrameKind::kResponse);
  // And the server is really gone: next read is EOF.
  EXPECT_FALSE(client.recv().has_value());
}

TEST(ServerTest, KickSendsTypedErrorAndCloses) {
  Server server(test_config());
  TestClient client(server.port());
  std::vector<std::uint8_t> bytes;
  encode_hello(Hello{}, bytes);
  client.send(bytes);
  auto events = pump_until(server, ServerEvent::Kind::kHello);
  const std::uint64_t conn = events.back().conn;

  server.kick(conn, ProtoError::kBadSequence);
  EXPECT_EQ(server.open_connections(), 0u);
  EXPECT_EQ(server.stats().protocol_errors, 1u);

  auto ack = client.recv();  // HELLO_ACK was queued before the kick
  ASSERT_TRUE(ack.has_value());
  auto err = client.recv();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->kind, FrameKind::kError);
}

}  // namespace
}  // namespace generic::net
