#include "model/binary_model.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/benchmarks.h"
#include "encoding/encoders.h"
#include "model/pipeline.h"

namespace generic::model {
namespace {

TEST(BinaryModel, BinarizeSignConvention) {
  const hdc::IntHV v{5, -3, 0, -1, 7};
  const auto b = BinaryModel::binarize(v);
  EXPECT_TRUE(b.bit(0));
  EXPECT_FALSE(b.bit(1));
  EXPECT_TRUE(b.bit(2));  // zero maps to +1
  EXPECT_FALSE(b.bit(3));
  EXPECT_TRUE(b.bit(4));
}

TEST(BinaryModel, MatchesOneBitQuantizedClassifier) {
  // A BinaryModel must agree exactly with the int-domain classifier after
  // quantize(1) when the query is also binarized: identical sign algebra,
  // identical norms (all D), so identical argmax modulo ties.
  Rng rng(3);
  HdcClassifier clf(1024, 4);
  std::vector<hdc::IntHV> enc;
  std::vector<int> labels;
  for (int c = 0; c < 4; ++c)
    for (int i = 0; i < 10; ++i) {
      enc.push_back(hdc::BinaryHV::random(1024, rng).to_int());
      labels.push_back(c);
    }
  clf.train_init(enc, labels);
  BinaryModel fast(clf);
  clf.quantize(1);
  for (int i = 0; i < 40; ++i) {
    const auto q = hdc::BinaryHV::random(1024, rng);
    const auto qi = q.to_int();
    EXPECT_EQ(fast.predict_packed(q), clf.predict(qi)) << i;
  }
}

TEST(BinaryModel, QueryDimensionValidated) {
  HdcClassifier clf(256, 2, 128);
  BinaryModel fast(clf);
  hdc::BinaryHV wrong(128);
  EXPECT_THROW(fast.predict_packed(wrong), std::invalid_argument);
}

TEST(BinaryModel, AccuracyAtBothOperatingPoints) {
  // Figure 6's premise: sign *models* barely lose accuracy. Binarizing the
  // query too (the fully-binary XOR+popcount point) costs several more
  // points — the known trade of fully binary HDC inference.
  const auto ds = data::make_benchmark("UCIHAR");
  enc::EncoderConfig cfg;
  cfg.dims = 2048;
  enc::GenericEncoder encoder(cfg);
  encoder.fit(ds.train_x);
  const auto train = encode_all(encoder, ds.train_x);
  const auto test = encode_all(encoder, ds.test_x);
  HdcClassifier clf(2048, ds.num_classes);
  clf.fit(train, ds.train_y, 5);
  BinaryModel fast(clf);
  std::size_t full_hits = 0, mixed_hits = 0, binary_hits = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    full_hits += clf.predict(test[i]) == ds.test_y[i];
    mixed_hits += fast.predict_mixed(test[i]) == ds.test_y[i];
    binary_hits += fast.predict(test[i]) == ds.test_y[i];
  }
  const auto n = static_cast<double>(test.size());
  const double full = static_cast<double>(full_hits) / n;
  EXPECT_GT(static_cast<double>(mixed_hits) / n, full - 0.08);
  EXPECT_GT(static_cast<double>(binary_hits) / n, full - 0.20);
  EXPECT_GT(static_cast<double>(binary_hits) / n,
            2.0 / static_cast<double>(ds.num_classes));
}

TEST(BinaryModel, MixedMatchesOneBitQuantizedClassifier) {
  Rng rng(9);
  HdcClassifier clf(512, 3, 128);
  std::vector<hdc::IntHV> enc;
  std::vector<int> labels;
  for (int c = 0; c < 3; ++c)
    for (int i = 0; i < 8; ++i) {
      enc.push_back(hdc::BinaryHV::random(512, rng).to_int());
      labels.push_back(c);
    }
  clf.train_init(enc, labels);
  BinaryModel fast(clf);
  clf.quantize(1);
  for (int i = 0; i < 30; ++i) {
    hdc::IntHV q(512);
    for (auto& v : q) v = static_cast<std::int32_t>(rng.range(-20, 20));
    // Same sign model; quantize(1) scoring normalizes by the shared norm,
    // so the argmax agrees whenever the top dot is unique.
    EXPECT_EQ(fast.predict_mixed(q), clf.predict(q)) << i;
  }
}

TEST(BinaryModel, GeometryPreserved) {
  HdcClassifier clf(512, 3, 128);
  BinaryModel fast(clf);
  EXPECT_EQ(fast.dims(), 512u);
  EXPECT_EQ(fast.num_classes(), 3u);
  EXPECT_EQ(fast.class_vector(0).dims(), 512u);
}

}  // namespace
}  // namespace generic::model
