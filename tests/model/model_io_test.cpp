#include "model/model_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>

#include "data/benchmarks.h"
#include "encoding/encoders.h"
#include "model/pipeline.h"

namespace generic::model {
namespace {

struct Trained {
  data::Dataset ds = data::make_benchmark("PAGE");
  enc::GenericEncoder encoder;
  HdcClassifier clf;

  Trained()
      : encoder([] {
          enc::EncoderConfig cfg;
          cfg.dims = 1024;
          return cfg;
        }()),
        clf(1024, 5) {
    encoder.fit(ds.train_x);
    const auto train = encode_all(encoder, ds.train_x);
    clf = HdcClassifier(1024, ds.num_classes);
    clf.fit(train, ds.train_y, 5);
  }
};

TEST(ModelIo, RoundTripPreservesPredictions) {
  Trained t;
  const auto blob = serialize_model(t.encoder, t.clf);
  const SavedModel loaded = deserialize_model(blob);

  EXPECT_EQ(loaded.encoder_config.dims, 1024u);
  EXPECT_EQ(loaded.encoder_config.window, 3u);
  EXPECT_TRUE(loaded.quantizer_fitted);

  enc::GenericEncoder enc2(loaded.encoder_config);
  enc2.fit_range(loaded.quantizer_lo, loaded.quantizer_hi);
  for (std::size_t i = 0; i < t.ds.test_x.size(); ++i) {
    const auto q = enc2.encode(t.ds.test_x[i]);
    ASSERT_EQ(loaded.classifier.predict(q),
              t.clf.predict(t.encoder.encode(t.ds.test_x[i])))
        << "sample " << i;
  }
}

TEST(ModelIo, RoundTripPreservesNormsAndBitWidth) {
  Trained t;
  t.clf.quantize(8);
  const auto loaded = deserialize_model(serialize_model(t.encoder, t.clf));
  EXPECT_EQ(loaded.classifier.bit_width(), 8);
  for (std::size_t c = 0; c < t.clf.num_classes(); ++c) {
    EXPECT_EQ(loaded.classifier.class_vector(c), t.clf.class_vector(c));
    for (std::size_t k = 0; k < t.clf.num_chunks(); ++k)
      EXPECT_EQ(loaded.classifier.chunk_norm(c, k), t.clf.chunk_norm(c, k));
  }
}

/// Recompute and overwrite the CRC footer after mutating the body, so the
/// corruption tests can reach the checks *behind* the CRC gate (magic,
/// version, geometry) with a blob that passes integrity verification.
void reseal(std::vector<std::uint8_t>& blob) {
  const std::size_t body = blob.size() - sizeof(std::uint32_t);
  const std::uint32_t crc = crc32(blob.data(), body);
  std::memcpy(blob.data() + body, &crc, sizeof(crc));
}

/// Run deserialize_model and capture the failure message ("" if it
/// unexpectedly succeeds) — the corruption suite asserts each corruption
/// class yields its own distinct diagnostic.
std::string failure_message(const std::vector<std::uint8_t>& blob) {
  try {
    (void)deserialize_model(blob);
    return "";
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
}

TEST(ModelIo, SingleByteCorruptionCaughtByCrc) {
  Trained t;
  auto blob = serialize_model(t.encoder, t.clf);
  blob[blob.size() / 2] ^= 0x40;
  EXPECT_EQ(failure_message(blob), "model blob CRC mismatch");
}

TEST(ModelIo, EveryHeaderBytePositionIsCovered) {
  // Flip each byte of the header region one at a time; the CRC footer
  // must catch all of them — no blind spots.
  Trained t;
  const auto golden = serialize_model(t.encoder, t.clf);
  for (std::size_t i = 0; i < 64; ++i) {
    auto blob = golden;
    blob[i] ^= 0x01;
    EXPECT_EQ(failure_message(blob), "model blob CRC mismatch") << "byte " << i;
  }
}

TEST(ModelIo, TruncationDetected) {
  Trained t;
  auto blob = serialize_model(t.encoder, t.clf);
  blob.resize(blob.size() / 2);
  EXPECT_EQ(failure_message(blob), "model blob CRC mismatch");
  blob.resize(3);  // below the smallest possible well-formed blob
  EXPECT_EQ(failure_message(blob), "model blob too small");
}

TEST(ModelIo, TruncatedButResealedPayloadDetected) {
  // Chop off payload bytes and re-seal: integrity passes, but the header
  // promises more payload than the blob holds.
  Trained t;
  auto blob = serialize_model(t.encoder, t.clf);
  blob.resize(blob.size() - 128);
  blob.resize(blob.size() + sizeof(std::uint32_t));  // room for the footer
  reseal(blob);
  EXPECT_EQ(failure_message(blob), "model blob payload size mismatch");
}

TEST(ModelIo, BadMagicDetected) {
  Trained t;
  auto blob = serialize_model(t.encoder, t.clf);
  blob[0] = 'X';
  reseal(blob);
  EXPECT_EQ(failure_message(blob), "model blob bad magic");
}

TEST(ModelIo, NewerSchemaVersionIsATypedError) {
  // An intact blob from a NEWER writer is not corruption: the reader must
  // raise UnsupportedVersionError (so deployment code can say "upgrade the
  // reader" and the lifecycle CheckpointStore knows not to quarantine).
  Trained t;
  auto blob = serialize_model(t.encoder, t.clf);
  ++blob[4];  // version u32 lives right after the 4-byte magic
  reseal(blob);
  try {
    (void)deserialize_model(blob);
    FAIL() << "newer-schema blob was accepted";
  } catch (const UnsupportedVersionError& e) {
    EXPECT_EQ(e.found(), 2u);
    EXPECT_EQ(e.supported(), 1u);
    EXPECT_EQ(std::string(e.what()),
              "model blob schema version 2 is newer than supported version 1");
  }
  // The typed error is still an invalid_argument, so callers that only
  // distinguish success from failure keep working.
  EXPECT_THROW((void)deserialize_model(blob), std::invalid_argument);
}

TEST(ModelIo, NewerVersionBehindBrokenCrcIsJustCorruption) {
  // A bumped version WITHOUT a valid CRC must stay a plain corruption
  // complaint — the version field of a damaged blob means nothing.
  Trained t;
  auto blob = serialize_model(t.encoder, t.clf);
  ++blob[4];
  EXPECT_EQ(failure_message(blob), "model blob CRC mismatch");
}

TEST(ModelIo, ClassifierBlobRoundTrip) {
  Trained t;
  t.clf.quantize(8);
  const auto blob = serialize_classifier(t.clf);
  const HdcClassifier loaded = deserialize_classifier(blob);
  EXPECT_EQ(loaded.dims(), t.clf.dims());
  EXPECT_EQ(loaded.num_classes(), t.clf.num_classes());
  EXPECT_EQ(loaded.bit_width(), 8);
  for (std::size_t c = 0; c < t.clf.num_classes(); ++c) {
    EXPECT_EQ(loaded.class_vector(c), t.clf.class_vector(c));
    for (std::size_t k = 0; k < t.clf.num_chunks(); ++k)
      EXPECT_EQ(loaded.chunk_norm(c, k), t.clf.chunk_norm(c, k));
  }
}

TEST(ModelIo, ClassifierBlobCorruptionAndVersioning) {
  Trained t;
  auto blob = serialize_classifier(t.clf);
  {
    auto bad = blob;
    bad[bad.size() / 2] ^= 0x10;
    EXPECT_THROW((void)deserialize_classifier(bad), std::invalid_argument);
  }
  {
    auto newer = blob;
    ++newer[4];  // version follows the "GCLS" magic
    reseal(newer);
    EXPECT_THROW((void)deserialize_classifier(newer), UnsupportedVersionError);
  }
}

TEST(ModelIo, EmptyBlobRejected) {
  EXPECT_EQ(failure_message({}), "model blob too small");
}

TEST(ModelIo, FileRoundTrip) {
  Trained t;
  const auto path =
      (std::filesystem::temp_directory_path() / "generic_model_io_test.ghdc")
          .string();
  save_model_file(path, t.encoder, t.clf);
  const auto loaded = load_model_file(path);
  EXPECT_EQ(loaded.classifier.num_classes(), t.clf.num_classes());
  EXPECT_EQ(loaded.classifier.class_vector(0), t.clf.class_vector(0));
  std::remove(path.c_str());
  EXPECT_THROW(load_model_file(path), std::runtime_error);
}

TEST(ModelIo, Crc32KnownVector) {
  // CRC-32("123456789") == 0xCBF43926 — the classic check value.
  const char* s = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(s), 9), 0xCBF43926u);
}

}  // namespace
}  // namespace generic::model
