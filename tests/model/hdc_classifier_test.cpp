#include "model/hdc_classifier.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/benchmarks.h"
#include "encoding/encoders.h"
#include "model/pipeline.h"

namespace generic::model {
namespace {

/// Synthetic encodings: per-class random prototypes + noise, mimicking what
/// an encoder emits for a well-separated dataset.
struct Synth {
  std::vector<hdc::IntHV> train, test;
  std::vector<int> train_y, test_y;
};

Synth make_synth(std::size_t dims, std::size_t classes, std::size_t per_class,
                 double noise, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<hdc::BinaryHV> protos;
  for (std::size_t c = 0; c < classes; ++c)
    protos.push_back(hdc::BinaryHV::random(dims, rng));
  Synth s;
  auto sample = [&](std::size_t c) {
    hdc::BinaryHV hv = protos[c];
    for (std::size_t i = 0; i < dims; ++i)
      if (rng.bernoulli(noise)) hv.flip(i);
    return hv.to_int();
  };
  for (std::size_t c = 0; c < classes; ++c)
    for (std::size_t i = 0; i < per_class; ++i) {
      s.train.push_back(sample(c));
      s.train_y.push_back(static_cast<int>(c));
      if (i % 3 == 0) {
        s.test.push_back(sample(c));
        s.test_y.push_back(static_cast<int>(c));
      }
    }
  return s;
}

TEST(HdcClassifier, ConstructorValidation) {
  EXPECT_THROW(HdcClassifier(0, 2), std::invalid_argument);
  EXPECT_THROW(HdcClassifier(256, 0), std::invalid_argument);
  EXPECT_THROW(HdcClassifier(200, 2, 128), std::invalid_argument);  // not multiple
  HdcClassifier ok(512, 4, 128);
  EXPECT_EQ(ok.num_chunks(), 4u);
}

TEST(HdcClassifier, OneShotTrainingSeparatesCleanPrototypes) {
  const auto s = make_synth(1024, 4, 20, 0.1, 5);
  HdcClassifier clf(1024, 4);
  clf.train_init(s.train, s.train_y);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < s.test.size(); ++i)
    hits += clf.predict(s.test[i]) == s.test_y[i];
  EXPECT_EQ(hits, s.test.size());
}

TEST(HdcClassifier, RetrainingReducesTrainErrors) {
  const auto s = make_synth(1024, 6, 30, 0.35, 7);
  HdcClassifier clf(1024, 6);
  clf.train_init(s.train, s.train_y);
  const std::size_t e1 = clf.retrain_epoch(s.train, s.train_y);
  std::size_t last = e1;
  for (int i = 0; i < 10; ++i) last = clf.retrain_epoch(s.train, s.train_y);
  EXPECT_LE(last, e1);
}

TEST(HdcClassifier, FitStopsEarlyWhenConverged) {
  const auto s = make_synth(1024, 3, 10, 0.05, 9);
  HdcClassifier clf(1024, 3);
  clf.fit(s.train, s.train_y, 50);
  // Converged model: one more epoch makes zero updates.
  EXPECT_EQ(clf.retrain_epoch(s.train, s.train_y), 0u);
}

TEST(HdcClassifier, TrainInitMatchesManualBundling) {
  const auto s = make_synth(256, 2, 5, 0.2, 11);
  HdcClassifier clf(256, 2, 64);
  clf.train_init(s.train, s.train_y);
  hdc::IntHV manual(256, 0);
  for (std::size_t i = 0; i < s.train.size(); ++i)
    if (s.train_y[i] == 0) hdc::add_into(manual, s.train[i]);
  EXPECT_EQ(clf.class_vector(0), manual);
}

TEST(HdcClassifier, ChunkNormsSumToFullNorm) {
  const auto s = make_synth(512, 3, 8, 0.3, 13);
  HdcClassifier clf(512, 3, 128);
  clf.train_init(s.train, s.train_y);
  for (std::size_t c = 0; c < 3; ++c) {
    std::int64_t sum = 0;
    for (std::size_t k = 0; k < clf.num_chunks(); ++k)
      sum += clf.chunk_norm(c, k);
    EXPECT_EQ(sum, hdc::norm2(clf.class_vector(c)));
  }
}

TEST(HdcClassifier, ChunkNormsStayExactAfterRetraining) {
  // The incremental norm maintenance in retrain_epoch must agree with a
  // full recomputation.
  const auto s = make_synth(512, 4, 25, 0.4, 15);
  HdcClassifier clf(512, 4, 128);
  clf.train_init(s.train, s.train_y);
  clf.retrain_epoch(s.train, s.train_y);
  std::vector<std::vector<std::int64_t>> saved;
  for (std::size_t c = 0; c < 4; ++c) {
    saved.emplace_back();
    for (std::size_t k = 0; k < clf.num_chunks(); ++k)
      saved.back().push_back(clf.chunk_norm(c, k));
  }
  clf.recompute_norms();
  for (std::size_t c = 0; c < 4; ++c)
    for (std::size_t k = 0; k < clf.num_chunks(); ++k)
      EXPECT_EQ(clf.chunk_norm(c, k), saved[c][k]) << c << "," << k;
}

TEST(HdcClassifier, ReducedDimsUpdatedBeatsConstant) {
  // Figure 5's claim: with few dimensions, Updated sub-norms dominate the
  // stale Constant norm. Build a model where class norms are *unbalanced*
  // across classes so the stale norm misleads.
  const auto ds = data::make_benchmark("ISOLET");
  enc::EncoderConfig cfg;
  cfg.dims = 2048;
  auto encoder = enc::make_encoder(enc::EncoderKind::kGeneric, cfg);
  encoder->fit(ds.train_x);
  const auto train = encode_all(*encoder, ds.train_x);
  const auto test = encode_all(*encoder, ds.test_x);
  HdcClassifier clf(2048, ds.num_classes);
  clf.fit(train, ds.train_y, 10);
  auto acc = [&](std::size_t dims_used, NormMode mode) {
    std::size_t hits = 0;
    for (std::size_t i = 0; i < test.size(); ++i)
      hits += clf.predict_reduced(test[i], dims_used, mode) == ds.test_y[i];
    return static_cast<double>(hits) / static_cast<double>(test.size());
  };
  const double updated = acc(512, NormMode::kUpdated);
  const double constant = acc(512, NormMode::kConstant);
  EXPECT_GE(updated + 1e-9, constant);
  // Full dims: both modes identical by construction.
  EXPECT_DOUBLE_EQ(acc(2048, NormMode::kUpdated),
                   acc(2048, NormMode::kConstant));
}

TEST(HdcClassifier, ScoreValidation) {
  HdcClassifier clf(256, 2, 64);
  hdc::IntHV q(256, 0);
  EXPECT_THROW(clf.score(q, 0, 100, NormMode::kUpdated), std::invalid_argument);
  EXPECT_THROW(clf.score(q, 0, 0, NormMode::kUpdated), std::invalid_argument);
  hdc::IntHV bad(128, 0);
  EXPECT_THROW(clf.score(bad, 0, 128, NormMode::kUpdated),
               std::invalid_argument);
}

class QuantizeTest : public ::testing::TestWithParam<int> {};

TEST_P(QuantizeTest, ValuesFitBitWidthAndAccuracySurvives) {
  const int bw = GetParam();
  const auto s = make_synth(1024, 4, 30, 0.25, 17);
  HdcClassifier clf(1024, 4);
  clf.fit(s.train, s.train_y, 5);
  clf.quantize(bw);
  EXPECT_EQ(clf.bit_width(), bw);
  const std::int32_t lim = bw == 1 ? 1 : (1 << (bw - 1)) - 1;
  for (std::size_t c = 0; c < 4; ++c)
    for (auto v : clf.class_vector(c)) {
      EXPECT_LE(v, lim);
      EXPECT_GE(v, bw == 1 ? -1 : -lim - 1);
    }
  // HDC models tolerate aggressive quantization (paper §4.3.4).
  std::size_t hits = 0;
  for (std::size_t i = 0; i < s.test.size(); ++i)
    hits += clf.predict(s.test[i]) == s.test_y[i];
  EXPECT_GT(static_cast<double>(hits) / static_cast<double>(s.test.size()),
            0.9)
      << "bw=" << bw;
}

INSTANTIATE_TEST_SUITE_P(BitWidths, QuantizeTest,
                         ::testing::Values(1, 2, 4, 8, 16));

TEST(HdcClassifier, QuantizeRejectsBadWidth) {
  HdcClassifier clf(256, 2, 64);
  EXPECT_THROW(clf.quantize(0), std::invalid_argument);
  EXPECT_THROW(clf.quantize(17), std::invalid_argument);
}

TEST(HdcClassifier, BitFlipsDegradeGracefully) {
  const auto s = make_synth(2048, 4, 30, 0.2, 19);
  HdcClassifier clf(2048, 4);
  clf.fit(s.train, s.train_y, 5);
  clf.quantize(8);
  auto acc = [&] {
    std::size_t hits = 0;
    for (std::size_t i = 0; i < s.test.size(); ++i)
      hits += clf.predict(s.test[i]) == s.test_y[i];
    return static_cast<double>(hits) / static_cast<double>(s.test.size());
  };
  const double clean = acc();
  Rng rng(33);
  clf.inject_bit_flips(0.005, rng);  // 0.5% flips: HDC shrugs this off
  EXPECT_GT(acc(), clean - 0.15);
  HdcClassifier wrecked(2048, 4);
  wrecked.train_init(s.train, s.train_y);
  wrecked.quantize(8);
  Rng rng2(35);
  wrecked.inject_bit_flips(0.5, rng2);  // memory is now noise
  EXPECT_LT(acc(), 1.01);               // sanity; wrecked model is separate
}

TEST(HdcClassifier, ZeroRateInjectionIsIdentity) {
  const auto s = make_synth(512, 2, 10, 0.2, 21);
  HdcClassifier clf(512, 2, 128);
  clf.fit(s.train, s.train_y, 3);
  const auto before = clf.class_vector(0);
  Rng rng(1);
  clf.inject_bit_flips(0.0, rng);
  EXPECT_EQ(clf.class_vector(0), before);
}

TEST(HdcClassifier, OneBitModelStaysBipolarUnderFlips) {
  const auto s = make_synth(512, 2, 10, 0.2, 23);
  HdcClassifier clf(512, 2, 128);
  clf.fit(s.train, s.train_y, 3);
  clf.quantize(1);
  Rng rng(3);
  clf.inject_bit_flips(0.3, rng);
  for (std::size_t c = 0; c < 2; ++c)
    for (auto v : clf.class_vector(c)) EXPECT_TRUE(v == 1 || v == -1);
}

}  // namespace
}  // namespace generic::model
