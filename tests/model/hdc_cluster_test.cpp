#include "model/hdc_cluster.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/fcps.h"
#include "encoding/encoders.h"
#include "ml/metrics.h"
#include "model/pipeline.h"

namespace generic::model {
namespace {

std::vector<hdc::IntHV> blob_encodings(std::size_t dims, std::size_t k,
                                       std::size_t per_cluster, double noise,
                                       std::vector<int>& truth,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<hdc::BinaryHV> protos;
  for (std::size_t c = 0; c < k; ++c)
    protos.push_back(hdc::BinaryHV::random(dims, rng));
  std::vector<hdc::IntHV> out;
  // Interleave clusters so the first-k seeding sees distinct clusters.
  for (std::size_t i = 0; i < per_cluster; ++i)
    for (std::size_t c = 0; c < k; ++c) {
      hdc::BinaryHV hv = protos[c];
      for (std::size_t j = 0; j < dims; ++j)
        if (rng.bernoulli(noise)) hv.flip(j);
      out.push_back(hv.to_int());
      truth.push_back(static_cast<int>(c));
    }
  return out;
}

TEST(HdcCluster, ConstructorValidation) {
  EXPECT_THROW(HdcCluster(0, 2), std::invalid_argument);
  EXPECT_THROW(HdcCluster(128, 0), std::invalid_argument);
}

TEST(HdcCluster, FitRequiresAtLeastKPoints) {
  HdcCluster hc(128, 5);
  std::vector<hdc::IntHV> pts(3, hdc::IntHV(128, 0));
  EXPECT_THROW(hc.fit(pts), std::invalid_argument);
}

TEST(HdcCluster, RecoversHypervectorBlobs) {
  std::vector<int> truth;
  const auto pts = blob_encodings(2048, 4, 40, 0.15, truth, 41);
  HdcCluster hc(2048, 4);
  const std::size_t epochs = hc.fit(pts);
  EXPECT_GT(epochs, 0u);
  const auto labels = hc.labels(pts);
  EXPECT_GT(ml::normalized_mutual_information(truth, labels), 0.95);
}

TEST(HdcCluster, StopsWhenAssignmentsStabilize) {
  std::vector<int> truth;
  const auto pts = blob_encodings(1024, 3, 30, 0.1, truth, 43);
  HdcCluster hc(1024, 3);
  const std::size_t epochs = hc.fit(pts, 50);
  EXPECT_LT(epochs, 50u);  // easy blobs converge quickly
}

TEST(HdcCluster, AssignConsistentWithLabels) {
  std::vector<int> truth;
  const auto pts = blob_encodings(1024, 3, 20, 0.2, truth, 45);
  HdcCluster hc(1024, 3);
  hc.fit(pts);
  const auto labels = hc.labels(pts);
  for (std::size_t i = 0; i < pts.size(); ++i)
    EXPECT_EQ(labels[i], hc.assign(pts[i]));
}

TEST(HdcCluster, CentroidCountStable) {
  std::vector<int> truth;
  const auto pts = blob_encodings(512, 5, 15, 0.25, truth, 47);
  HdcCluster hc(512, 5);
  hc.fit(pts);
  EXPECT_EQ(hc.centroids().size(), 5u);
  for (const auto& c : hc.centroids()) EXPECT_EQ(c.size(), 512u);
}

TEST(HdcCluster, EndToEndFcpsHeptaMatchesGroundTruth) {
  // Table 2 anchor: HDC clustering on Hepta scores ~0.9 NMI in the paper.
  const auto ds = data::make_fcps("Hepta");
  enc::EncoderConfig cfg;
  cfg.dims = 2048;
  enc::GenericEncoder encoder(cfg);
  encoder.fit(ds.points);
  const auto encoded = encode_all(encoder, ds.points);
  HdcCluster hc(2048, ds.num_clusters);
  hc.fit(encoded);
  const double nmi =
      ml::normalized_mutual_information(ds.labels, hc.labels(encoded));
  EXPECT_GT(nmi, 0.7);
}

}  // namespace
}  // namespace generic::model
