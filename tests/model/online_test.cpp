// Online (single-sample) adaptation tests — the continuous-learning mode
// of an always-on edge node, and its ASIC-side accounting.
#include <gtest/gtest.h>

#include "arch/generic_asic.h"
#include "data/benchmarks.h"
#include "encoding/encoders.h"
#include "model/pipeline.h"

namespace generic::model {
namespace {

TEST(OnlineUpdate, CorrectPredictionLeavesModelUntouched) {
  HdcClassifier clf(256, 2, 128);
  hdc::IntHV a(256, 0), b(256, 0);
  a[0] = 10;
  b[1] = 10;
  const std::vector<hdc::IntHV> enc{a, b};
  const std::vector<int> labels{0, 1};
  clf.train_init(enc, labels);
  const auto before = clf.class_vector(0);
  EXPECT_FALSE(clf.online_update(a, 0));
  EXPECT_EQ(clf.class_vector(0), before);
}

TEST(OnlineUpdate, MispredictionMovesBoundary) {
  HdcClassifier clf(256, 2, 128);
  hdc::IntHV a(256, 0), b(256, 0);
  a[0] = 10;
  b[1] = 10;
  const std::vector<hdc::IntHV> enc{a, b};
  const std::vector<int> labels{0, 1};
  clf.train_init(enc, labels);
  // Claim `a` belongs to class 1: the model must update both classes and
  // keep its norms exact.
  EXPECT_TRUE(clf.online_update(a, 1));
  EXPECT_EQ(clf.class_vector(1)[0], 10);
  EXPECT_EQ(clf.class_vector(0)[0], 0);
  const auto n0 = clf.chunk_norm(0, 0);
  clf.recompute_norms();
  EXPECT_EQ(clf.chunk_norm(0, 0), n0);
}

TEST(OnlineUpdate, LabelValidation) {
  HdcClassifier clf(256, 2, 128);
  hdc::IntHV q(256, 0);
  EXPECT_THROW(clf.online_update(q, -1), std::invalid_argument);
  EXPECT_THROW(clf.online_update(q, 2), std::invalid_argument);
}

TEST(OnlineUpdate, StreamAdaptationRecoversFromDrift) {
  // Train on half the classes' data only, then stream the rest online:
  // accuracy on a held-out slice must improve.
  const auto ds = data::make_benchmark("EMG");
  enc::EncoderConfig cfg;
  cfg.dims = 2048;
  enc::GenericEncoder encoder(cfg);
  encoder.fit(ds.train_x);
  const auto train = encode_all(encoder, ds.train_x);
  const auto test = encode_all(encoder, ds.test_x);

  const std::size_t half = train.size() / 2;
  HdcClassifier clf(2048, ds.num_classes);
  clf.train_init(std::span(train.data(), half),
                 std::span(ds.train_y.data(), half));
  auto acc = [&] {
    std::size_t hits = 0;
    for (std::size_t i = 0; i < test.size(); ++i)
      hits += clf.predict(test[i]) == ds.test_y[i];
    return static_cast<double>(hits) / static_cast<double>(test.size());
  };
  const double before = acc();
  for (std::size_t i = half; i < train.size(); ++i)
    clf.online_update(train[i], ds.train_y[i]);
  EXPECT_GE(acc(), before);
}


TEST(OnlineUpdateAdaptive, ConvergesAtLeastAsWellAsUnitUpdates) {
  // Same drift scenario as StreamAdaptationRecoversFromDrift, comparing
  // the similarity-weighted extension against unit updates.
  const auto ds = data::make_benchmark("EMG");
  enc::EncoderConfig cfg;
  cfg.dims = 2048;
  enc::GenericEncoder encoder(cfg);
  encoder.fit(ds.train_x);
  const auto train = encode_all(encoder, ds.train_x);
  const auto test = encode_all(encoder, ds.test_x);
  const std::size_t half = train.size() / 2;

  auto run = [&](bool adaptive) {
    HdcClassifier clf(2048, ds.num_classes);
    clf.train_init(std::span(train.data(), half),
                   std::span(ds.train_y.data(), half));
    for (std::size_t i = half; i < train.size(); ++i) {
      if (adaptive)
        clf.online_update_adaptive(train[i], ds.train_y[i]);
      else
        clf.online_update(train[i], ds.train_y[i]);
    }
    std::size_t hits = 0;
    for (std::size_t i = 0; i < test.size(); ++i)
      hits += clf.predict(test[i]) == ds.test_y[i];
    return static_cast<double>(hits) / static_cast<double>(test.size());
  };
  EXPECT_GE(run(true), run(false) - 0.03);
}

TEST(OnlineUpdateAdaptive, NoChangeOnCorrectPrediction) {
  HdcClassifier clf(256, 2, 128);
  hdc::IntHV a(256, 0), b(256, 0);
  a[0] = 10;
  b[1] = 10;
  const std::vector<hdc::IntHV> enc{a, b};
  const std::vector<int> labels{0, 1};
  clf.train_init(enc, labels);
  const auto before = clf.class_vector(0);
  EXPECT_FALSE(clf.online_update_adaptive(a, 0));
  EXPECT_EQ(clf.class_vector(0), before);
  EXPECT_THROW(clf.online_update_adaptive(a, 7), std::invalid_argument);
}

TEST(OnlineUpdateAdaptive, UpdateMagnitudeBoundedByEncoding) {
  // Weights live in [0,2] into the right class and [0,1] out of the wrong
  // one; no element may move by more than 2x the encoding value.
  HdcClassifier clf(256, 2, 128);
  hdc::IntHV a(256, 0), b(256, 0);
  for (std::size_t i = 0; i < 256; ++i) {
    a[i] = (i % 2) ? 4 : -4;
    b[i] = (i % 2) ? -4 : 4;
  }
  const std::vector<hdc::IntHV> enc{a, b};
  const std::vector<int> labels{0, 1};
  clf.train_init(enc, labels);
  const auto before0 = clf.class_vector(0);
  EXPECT_TRUE(clf.online_update_adaptive(b, 0));  // force a misprediction
  for (std::size_t j = 0; j < 256; ++j) {
    const auto delta = std::abs(clf.class_vector(0)[j] - before0[j]);
    EXPECT_LE(delta, 2 * std::abs(b[j]) + 1) << j;
  }
}

TEST(AsicOnlineUpdate, CountsInferencePlusUpdateCycles) {
  const auto ds = data::make_benchmark("PAGE");
  arch::AppSpec spec;
  spec.dims = 1024;
  spec.features = ds.num_features();
  spec.classes = ds.num_classes;
  arch::GenericAsic asic(spec);
  asic.train(ds.train_x, ds.train_y, 3);
  asic.reset_counts();

  arch::CycleModel cm;
  const auto infer_cost = cm.infer_input(spec).cycles;
  const auto update_cost = cm.retrain_update(spec).cycles;

  // Feed samples with a deliberately wrong label until one update fires.
  std::uint64_t expected = 0;
  bool updated = false;
  for (std::size_t i = 0; i < ds.test_x.size() && !updated; ++i) {
    const int pred = asic.online_update(
        ds.test_x[i], (ds.test_y[i] + 1) % static_cast<int>(ds.num_classes));
    expected += infer_cost;
    if (pred != (ds.test_y[i] + 1) % static_cast<int>(ds.num_classes)) {
      expected += update_cost;
      updated = true;
    }
  }
  EXPECT_TRUE(updated);
  EXPECT_EQ(asic.counts().cycles, expected);
}

TEST(AsicOnlineUpdate, ValidatesLabel) {
  const auto ds = data::make_benchmark("PAGE");
  arch::AppSpec spec;
  spec.dims = 1024;
  spec.features = ds.num_features();
  spec.classes = ds.num_classes;
  arch::GenericAsic asic(spec);
  asic.train(ds.train_x, ds.train_y, 2);
  EXPECT_THROW(asic.online_update(ds.test_x[0], 99), std::invalid_argument);
}

TEST(CycleModelBurst, FirstLoadOnlyExposedOnce) {
  arch::AppSpec spec;
  spec.dims = 2048;
  spec.features = 100;
  spec.classes = 4;
  arch::CycleModel cm;
  const auto one = cm.infer_input(spec);
  const auto burst = cm.infer_burst(spec, 50);
  EXPECT_EQ(burst.cycles, one.cycles * 50 + spec.features);
  EXPECT_EQ(burst.mac_ops, one.mac_ops * 50);
  EXPECT_EQ(cm.infer_burst(spec, 0).cycles, 0u);
  // Throughput benefit: per-input burst latency < isolated load+process.
  const double per_input_burst =
      static_cast<double>(burst.cycles) / 50.0;
  EXPECT_LT(per_input_burst,
            static_cast<double>(one.cycles + spec.features));
}

}  // namespace
}  // namespace generic::model
