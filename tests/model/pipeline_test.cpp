#include "model/pipeline.h"

#include <gtest/gtest.h>

#include "data/benchmarks.h"
#include "encoding/encoders.h"

namespace generic::model {
namespace {

TEST(Pipeline, EncodeAllShapes) {
  const auto ds = data::make_benchmark("PAGE");
  enc::EncoderConfig cfg;
  cfg.dims = 1024;
  enc::GenericEncoder encoder(cfg);
  encoder.fit(ds.train_x);
  const auto enc = encode_all(encoder, ds.train_x);
  ASSERT_EQ(enc.size(), ds.train_x.size());
  for (const auto& h : enc) EXPECT_EQ(h.size(), 1024u);
}

TEST(Pipeline, GenericBeatsChanceOnEveryBenchmark) {
  // Cheap smoke over all 11 benchmark clones with a small model.
  for (const auto& name : data::benchmark_names()) {
    const auto ds = data::make_benchmark(name);
    enc::EncoderConfig cfg;
    cfg.dims = 1024;
    const auto gcfg = data::generic_config_for(name);
    cfg.use_ids = gcfg.use_ids;
    cfg.window = gcfg.window;
    enc::GenericEncoder encoder(cfg);
    const auto res = run_hdc_classification(encoder, ds, 5);
    const double chance = 1.0 / static_cast<double>(ds.num_classes);
    // "Clearly above chance": double it, but cap so 2-class sets don't
    // demand the impossible 100%.
    const double bar = std::min(2.0 * chance, chance + 0.25);
    EXPECT_GT(res.test_accuracy, bar) << name;
    EXPECT_EQ(res.predictions.size(), ds.test_size()) << name;
  }
}

TEST(Pipeline, MoreDimsDoNotHurtMuch) {
  const auto ds = data::make_benchmark("ISOLET");
  enc::EncoderConfig small_cfg;
  small_cfg.dims = 512;
  enc::GenericEncoder small_enc(small_cfg);
  const double small = run_hdc_classification(small_enc, ds, 5).test_accuracy;
  enc::EncoderConfig big_cfg;
  big_cfg.dims = 4096;
  enc::GenericEncoder big_enc(big_cfg);
  const double big = run_hdc_classification(big_enc, ds, 5).test_accuracy;
  EXPECT_GE(big + 0.05, small);
}

}  // namespace
}  // namespace generic::model
