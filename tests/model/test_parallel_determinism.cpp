// Seed-equivalence suite for the batched/parallel engine: every parallel
// entry point — encode_batch, train_batch, retrain_epoch_parallel,
// fit_parallel, predict_batch and the pooled run_hdc_classification — must
// produce BYTE-IDENTICAL models and predictions to its serial counterpart
// for every pool width, including pools far wider than the machine
// (threads ∈ {1, 2, 7, 16} on a possibly single-core host). This is the
// acceptance criterion of the parallel engine: parallelism is an execution
// detail, never an observable one (docs/parallelism.md).
//
// Two synthetic datasets with different structure exercise different
// encoder paths: a template dataset (positional structure, ids bound) and
// a markov symbol dataset (windowed n-gram structure).
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "encoding/encoders.h"
#include "model/hdc_classifier.h"
#include "model/pipeline.h"

namespace generic::model {
namespace {

const std::size_t kLaneCounts[] = {1, 2, 7, 16};

/// Template dataset: 4 classes with positional means (§3.2 "templates").
data::Dataset make_template_dataset() {
  data::TemplateSpec spec;
  spec.classes = 4;
  spec.features = 32;
  spec.noise = 0.35;
  Rng rng(0x7E5701ul);
  const auto templates = data::make_templates(spec, rng);
  data::Dataset ds;
  ds.name = "tmpl";
  ds.num_classes = spec.classes;
  for (std::size_t c = 0; c < spec.classes; ++c) {
    for (int i = 0; i < 30; ++i) {
      ds.train_x.push_back(data::sample_template(templates[c], spec.noise, rng));
      ds.train_y.push_back(static_cast<int>(c));
    }
    for (int i = 0; i < 12; ++i) {
      ds.test_x.push_back(data::sample_template(templates[c], spec.noise, rng));
      ds.test_y.push_back(static_cast<int>(c));
    }
  }
  return ds;
}

/// Markov symbol dataset: class-specific transition statistics (§3.2
/// "markov symbols") — the windowed/n-gram encoder path.
data::Dataset make_markov_dataset() {
  data::MarkovSpec spec;
  spec.classes = 3;
  spec.features = 48;
  spec.alphabet = 8;
  Rng rng(0x7E5702ul);
  const auto bank = data::make_markov_bank(spec, rng);
  data::Dataset ds;
  ds.name = "markov";
  ds.num_classes = spec.classes;
  for (std::size_t c = 0; c < spec.classes; ++c) {
    for (int i = 0; i < 30; ++i) {
      ds.train_x.push_back(data::sample_markov(spec, bank, c, rng));
      ds.train_y.push_back(static_cast<int>(c));
    }
    for (int i = 0; i < 12; ++i) {
      ds.test_x.push_back(data::sample_markov(spec, bank, c, rng));
      ds.test_y.push_back(static_cast<int>(c));
    }
  }
  return ds;
}

enc::EncoderConfig small_config(bool use_ids) {
  enc::EncoderConfig cfg;
  cfg.dims = 512;  // 4 chunks of 128 — small but multi-chunk
  cfg.use_ids = use_ids;
  return cfg;
}

/// Every class accumulator and every stored chunk norm must match exactly
/// — integer equality, no tolerance.
void expect_models_identical(const HdcClassifier& a, const HdcClassifier& b,
                             const char* what, std::size_t lanes) {
  ASSERT_EQ(a.num_classes(), b.num_classes());
  for (std::size_t c = 0; c < a.num_classes(); ++c)
    EXPECT_EQ(a.class_vector(c), b.class_vector(c))
        << what << ": class " << c << " diverged at lanes=" << lanes;
  for (std::size_t c = 0; c < a.num_classes(); ++c)
    for (std::size_t k = 0; k < a.num_chunks(); ++k)
      EXPECT_EQ(a.chunk_norm(c, k), b.chunk_norm(c, k))
          << what << ": norm (" << c << "," << k << ") at lanes=" << lanes;
}

class ParallelDeterminismTest : public ::testing::TestWithParam<bool> {
 protected:
  // Param selects the dataset / encoder flavour.
  data::Dataset dataset() const {
    return GetParam() ? make_template_dataset() : make_markov_dataset();
  }
};

TEST_P(ParallelDeterminismTest, EncodeBatchMatchesSerialEncode) {
  const auto ds = dataset();
  enc::GenericEncoder encoder(small_config(GetParam()));
  encoder.fit(ds.train_x);
  const auto serial = encode_all(encoder, ds.train_x);
  for (std::size_t lanes : kLaneCounts) {
    ThreadPool pool(lanes);
    const auto batched = encoder.encode_batch(ds.train_x, pool);
    ASSERT_EQ(batched.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
      EXPECT_EQ(batched[i], serial[i]) << "sample " << i << " lanes=" << lanes;
  }
}

TEST_P(ParallelDeterminismTest, TrainBatchMatchesTrainInit) {
  const auto ds = dataset();
  enc::GenericEncoder encoder(small_config(GetParam()));
  encoder.fit(ds.train_x);
  const auto encoded = encode_all(encoder, ds.train_x);

  HdcClassifier serial(512, ds.num_classes);
  serial.train_init(encoded, ds.train_y);

  for (std::size_t lanes : kLaneCounts) {
    ThreadPool pool(lanes);
    HdcClassifier parallel(512, ds.num_classes);
    parallel.train_batch(encoded, ds.train_y, pool);
    expect_models_identical(serial, parallel, "train_batch", lanes);
  }
}

TEST_P(ParallelDeterminismTest, RetrainEpochParallelMatchesSerial) {
  const auto ds = dataset();
  enc::GenericEncoder encoder(small_config(GetParam()));
  encoder.fit(ds.train_x);
  const auto encoded = encode_all(encoder, ds.train_x);

  HdcClassifier serial(512, ds.num_classes);
  serial.train_init(encoded, ds.train_y);
  std::vector<std::size_t> serial_updates;
  for (int e = 0; e < 3; ++e)
    serial_updates.push_back(serial.retrain_epoch(encoded, ds.train_y));

  for (std::size_t lanes : kLaneCounts) {
    ThreadPool pool(lanes);
    HdcClassifier parallel(512, ds.num_classes);
    parallel.train_batch(encoded, ds.train_y, pool);
    for (int e = 0; e < 3; ++e)
      EXPECT_EQ(parallel.retrain_epoch_parallel(encoded, ds.train_y, pool),
                serial_updates[static_cast<std::size_t>(e)])
          << "epoch " << e << " update count diverged at lanes=" << lanes;
    expect_models_identical(serial, parallel, "retrain", lanes);
  }
}

TEST_P(ParallelDeterminismTest, FitParallelMatchesFit) {
  const auto ds = dataset();
  enc::GenericEncoder encoder(small_config(GetParam()));
  encoder.fit(ds.train_x);
  const auto encoded = encode_all(encoder, ds.train_x);

  HdcClassifier serial(512, ds.num_classes);
  serial.fit(encoded, ds.train_y, 5);

  for (std::size_t lanes : kLaneCounts) {
    ThreadPool pool(lanes);
    HdcClassifier parallel(512, ds.num_classes);
    parallel.fit_parallel(encoded, ds.train_y, 5, pool);
    expect_models_identical(serial, parallel, "fit_parallel", lanes);
  }
}

TEST_P(ParallelDeterminismTest, PredictBatchMatchesSerialPredict) {
  const auto ds = dataset();
  enc::GenericEncoder encoder(small_config(GetParam()));
  encoder.fit(ds.train_x);
  const auto train = encode_all(encoder, ds.train_x);
  const auto test = encode_all(encoder, ds.test_x);
  HdcClassifier clf(512, ds.num_classes);
  clf.fit(train, ds.train_y, 5);

  std::vector<int> serial;
  for (const auto& q : test) serial.push_back(clf.predict(q));

  for (std::size_t lanes : kLaneCounts) {
    ThreadPool pool(lanes);
    EXPECT_EQ(clf.predict_batch(test, pool), serial) << "lanes=" << lanes;
  }
}

TEST_P(ParallelDeterminismTest, PredictReducedBatchMatchesSerial) {
  const auto ds = dataset();
  enc::GenericEncoder encoder(small_config(GetParam()));
  encoder.fit(ds.train_x);
  const auto train = encode_all(encoder, ds.train_x);
  const auto test = encode_all(encoder, ds.test_x);
  HdcClassifier clf(512, ds.num_classes);
  clf.fit(train, ds.train_y, 5);

  for (const std::size_t dims_used : {512ul, 256ul, 128ul}) {
    std::vector<int> serial;
    for (const auto& q : test)
      serial.push_back(clf.predict_reduced(q, dims_used, NormMode::kUpdated));
    for (std::size_t lanes : kLaneCounts) {
      ThreadPool pool(lanes);
      EXPECT_EQ(clf.predict_reduced_batch(test, dims_used, NormMode::kUpdated,
                                          pool),
                serial)
          << "dims=" << dims_used << " lanes=" << lanes;
    }
  }
}

TEST_P(ParallelDeterminismTest, PredictMaskedBatchMatchesSerial) {
  const auto ds = dataset();
  enc::GenericEncoder encoder(small_config(GetParam()));
  encoder.fit(ds.train_x);
  const auto train = encode_all(encoder, ds.train_x);
  const auto test = encode_all(encoder, ds.test_x);
  HdcClassifier clf(512, ds.num_classes);
  clf.fit(train, ds.train_y, 5);

  const std::vector<bool> chunk_ok = {true, false, true, false};
  std::vector<int> serial;
  for (const auto& q : test) serial.push_back(clf.predict_masked(q, chunk_ok));
  for (std::size_t lanes : kLaneCounts) {
    ThreadPool pool(lanes);
    EXPECT_EQ(clf.predict_masked_batch(test, chunk_ok, pool), serial)
        << "lanes=" << lanes;
  }
}

TEST_P(ParallelDeterminismTest, PooledPipelineMatchesSerialPipeline) {
  const auto ds = dataset();
  enc::GenericEncoder serial_enc(small_config(GetParam()));
  const auto serial = run_hdc_classification(serial_enc, ds, 5);

  for (std::size_t lanes : kLaneCounts) {
    ThreadPool pool(lanes);
    enc::GenericEncoder pooled_enc(small_config(GetParam()));
    const auto pooled = run_hdc_classification(pooled_enc, ds, 5, pool);
    EXPECT_EQ(pooled.test_accuracy, serial.test_accuracy) << "lanes=" << lanes;
    EXPECT_EQ(pooled.epochs_run, serial.epochs_run) << "lanes=" << lanes;
    EXPECT_EQ(pooled.predictions, serial.predictions) << "lanes=" << lanes;
  }
}

TEST_P(ParallelDeterminismTest, RepeatedParallelRunsAreIdentical) {
  // Same pool, same inputs, back-to-back: no hidden state may leak from
  // one batched run into the next.
  const auto ds = dataset();
  enc::GenericEncoder encoder(small_config(GetParam()));
  encoder.fit(ds.train_x);
  ThreadPool pool(7);
  const auto first = encoder.encode_batch(ds.test_x, pool);
  const auto second = encoder.encode_batch(ds.test_x, pool);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i)
    EXPECT_EQ(first[i], second[i]) << "sample " << i;
}

INSTANTIATE_TEST_SUITE_P(Datasets, ParallelDeterminismTest,
                         ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Template" : "Markov";
                         });

}  // namespace
}  // namespace generic::model
