// EncoderGuard: CRC detection of corrupted encoder rows, masked encoding
// around them, and the seed-rematerialization scrub (bit-identical repair,
// the runtime enforcement of the PR 7 remat contract).
#include "resilience/encoder_guard.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "encoding/encoders.h"
#include "resilience/fault_model.h"

namespace generic::resilience {
namespace {

constexpr std::size_t kDims = 512;
constexpr std::size_t kSamples = 40;
constexpr std::size_t kFeatures = 24;

enc::EncoderConfig base_cfg() {
  enc::EncoderConfig cfg;
  cfg.dims = kDims;
  return cfg;
}

std::vector<std::vector<float>> make_samples() {
  Rng rng(0x5A17E);
  std::vector<std::vector<float>> xs(kSamples,
                                     std::vector<float>(kFeatures));
  for (auto& x : xs)
    for (auto& v : x) v = static_cast<float>(rng.uniform());
  return xs;
}

/// GenericEncoder is pinned in place (copies and moves are deleted), so
/// the helper hands back an owning pointer.
std::unique_ptr<enc::GenericEncoder> make_encoder(bool remat = false) {
  auto cfg = base_cfg();
  cfg.remat = remat;
  auto encoder = std::make_unique<enc::GenericEncoder>(cfg);
  encoder->fit_range(0.0f, 1.0f);
  return encoder;
}

void corrupt_rows(enc::GenericEncoder& encoder,
                  const std::vector<std::size_t>& rows, bool hit_id) {
  Rng rng(0xBAD);
  inject_encoder_rows(encoder.mutable_level_memory(), rows,
                      FaultKind::kTransient, 0.3, rng);
  if (hit_id)
    inject_id_seed(encoder.mutable_id_memory(), FaultKind::kTransient, 0.3,
                   rng);
}

TEST(EncoderGuard, CleanEncoderScansClean) {
  const auto encoder_p = make_encoder();
  auto& encoder = *encoder_p;
  const auto guard = EncoderGuard::commission(encoder);
  const auto scan = guard.scan(encoder);
  EXPECT_TRUE(scan.all_ok());
  EXPECT_EQ(scan.num_faulty(), 0u);
  EXPECT_EQ(guard.count_faulty(encoder), 0u);
  EXPECT_EQ(scan.level_ok.size(), encoder.level_memory().num_levels());
}

TEST(EncoderGuard, ScanFlagsExactlyTheCorruptedRows) {
  const auto encoder_p = make_encoder();
  auto& encoder = *encoder_p;
  const auto guard = EncoderGuard::commission(encoder);
  const std::vector<std::size_t> bad = {3, 7, 40};
  corrupt_rows(encoder, bad, /*hit_id=*/true);
  const auto scan = guard.scan(encoder);
  for (std::size_t l = 0; l < scan.level_ok.size(); ++l) {
    const bool expect_bad =
        std::find(bad.begin(), bad.end(), l) != bad.end();
    EXPECT_EQ(scan.level_ok[l], !expect_bad) << "row " << l;
  }
  EXPECT_FALSE(scan.id_ok);
  EXPECT_EQ(scan.num_faulty(), bad.size() + 1);
}

TEST(EncoderGuard, ScrubRestoresEncodingsBitIdentical) {
  // The ISSUE 9 scrub-equivalence claim end to end: corruption changes the
  // encodings, scrub() brings back the exact clean bytes.
  const auto encoder_p = make_encoder();
  auto& encoder = *encoder_p;
  const auto xs = make_samples();
  std::vector<hdc::IntHV> before;
  for (const auto& x : xs) before.push_back(encoder.encode(x));
  const auto guard = EncoderGuard::commission(encoder);

  corrupt_rows(encoder, {1, 5, 9, 22}, /*hit_id=*/true);
  std::vector<hdc::IntHV> corrupt;
  for (const auto& x : xs) corrupt.push_back(encoder.encode(x));
  EXPECT_NE(before, corrupt);

  const std::size_t repaired = guard.scrub(encoder);
  EXPECT_EQ(repaired, 5u);
  EXPECT_EQ(guard.count_faulty(encoder), 0u);
  std::vector<hdc::IntHV> after;
  for (const auto& x : xs) after.push_back(encoder.encode(x));
  EXPECT_EQ(before, after);
}

TEST(EncoderGuard, ScrubIsIdempotentOnCleanEncoder) {
  const auto encoder_p = make_encoder();
  auto& encoder = *encoder_p;
  const auto guard = EncoderGuard::commission(encoder);
  EXPECT_EQ(guard.scrub(encoder), 0u);
}

TEST(EncoderGuard, MaskedEncodeIgnoresCorruptRowContents) {
  // encode_masked never reads a row flagged bad, so its output through a
  // corrupted encoder equals its output through the clean one under the
  // same mask — the bit-exact statement of "masking skips the damage".
  const auto clean_p = make_encoder();
  auto& clean_encoder = *clean_p;
  const auto encoder_p = make_encoder();
  auto& encoder = *encoder_p;
  const auto guard = EncoderGuard::commission(encoder);
  corrupt_rows(encoder, {2, 11, 30}, /*hit_id=*/false);
  const auto scan = guard.scan(encoder);
  ASSERT_EQ(scan.num_faulty(), 3u);

  for (const auto& x : make_samples())
    EXPECT_EQ(encoder.encode_masked(x, scan.level_ok, scan.id_ok),
              clean_encoder.encode_masked(x, scan.level_ok, scan.id_ok));
}

TEST(EncoderGuard, MaskedEncodeWithAllRowsOkEqualsPlainEncode) {
  const auto encoder_p = make_encoder();
  auto& encoder = *encoder_p;
  const std::vector<bool> all_ok(encoder.level_memory().num_levels(), true);
  for (const auto& x : make_samples())
    EXPECT_EQ(encoder.encode_masked(x, all_ok, true), encoder.encode(x));
}

TEST(EncoderGuard, MaskedEncodeWithoutIdEqualsNoIdEncoder) {
  // id_ok == false drops the id binding entirely, which must reproduce the
  // use_ids = false encoding bit for bit.
  const auto encoder_p = make_encoder();
  auto& encoder = *encoder_p;
  auto cfg = base_cfg();
  cfg.use_ids = false;
  enc::GenericEncoder no_ids(cfg);
  no_ids.fit_range(0.0f, 1.0f);
  const std::vector<bool> all_ok(encoder.level_memory().num_levels(), true);
  for (const auto& x : make_samples())
    EXPECT_EQ(encoder.encode_masked(x, all_ok, false), no_ids.encode(x));
}

TEST(EncoderGuard, SeedlessGuardRefusesScrubButStillScans) {
  const auto encoder_p = make_encoder();
  auto& encoder = *encoder_p;
  const auto guard = EncoderGuard::commission(encoder,
                                              /*seed_available=*/false);
  corrupt_rows(encoder, {4}, /*hit_id=*/false);
  EXPECT_EQ(guard.count_faulty(encoder), 1u);
  EXPECT_THROW(guard.scrub(encoder), std::logic_error);
}

TEST(EncoderGuard, RematLevelRowsAreImmuneButIdSeedIsNot) {
  // A kRematerialized level memory stores no rows: nothing to corrupt,
  // scans always clean. The id seed row is stored in both modes and stays
  // both corruptible and scrubbable.
  const auto encoder_p = make_encoder(/*remat=*/true);
  auto& encoder = *encoder_p;
  const auto guard = EncoderGuard::commission(encoder);
  EXPECT_EQ(guard.count_faulty(encoder), 0u);

  Rng rng(0xBAD5EED);
  inject_id_seed(encoder.mutable_id_memory(), FaultKind::kStuckAt1, 0.4,
                 rng);
  const auto scan = guard.scan(encoder);
  EXPECT_FALSE(scan.id_ok);
  EXPECT_EQ(scan.num_faulty(), 1u);
  for (const auto ok : scan.level_ok) EXPECT_TRUE(ok);

  EXPECT_EQ(guard.scrub(encoder), 1u);
  EXPECT_EQ(guard.count_faulty(encoder), 0u);
}

TEST(EncoderGuard, GeometryMismatchThrows) {
  const auto encoder_p = make_encoder();
  auto& encoder = *encoder_p;
  const auto guard = EncoderGuard::commission(encoder);
  auto cfg = base_cfg();
  cfg.dims = kDims * 2;
  enc::GenericEncoder other(cfg);
  other.fit_range(0.0f, 1.0f);
  EXPECT_THROW(guard.scan(other), std::invalid_argument);
}

TEST(EncoderGuard, RepairPolicyNamesRoundTrip) {
  for (const auto p : {RepairPolicy::kDetect, RepairPolicy::kMask,
                       RepairPolicy::kScrub})
    EXPECT_EQ(repair_policy_from_name(repair_policy_name(p)), p);
  EXPECT_THROW(repair_policy_from_name("noop"), std::invalid_argument);
}

}  // namespace
}  // namespace generic::resilience
