#include "resilience/fault_model.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace generic::resilience {
namespace {

model::HdcClassifier small_model(std::size_t dims = 256,
                                 std::size_t classes = 3) {
  model::HdcClassifier clf(dims, classes);
  Rng rng(99);
  for (std::size_t c = 0; c < classes; ++c) {
    auto& v = clf.mutable_class_vector(c);
    for (auto& x : v) x = static_cast<std::int32_t>(rng.range(-100, 100));
  }
  clf.recompute_norms();
  return clf;
}

TEST(FaultModel, KindNamesRoundTrip) {
  for (FaultKind k : {FaultKind::kTransient, FaultKind::kStuckAt0,
                      FaultKind::kStuckAt1, FaultKind::kDeadBlock})
    EXPECT_EQ(fault_kind_from_name(fault_kind_name(k)), k);
  EXPECT_THROW(fault_kind_from_name("gamma_ray"), std::invalid_argument);
}

TEST(FaultModel, TransientInjectionIsSeedDeterministic) {
  auto a = small_model();
  auto b = small_model();
  Rng ra(42), rb(42);
  inject(a, {FaultKind::kTransient, 0.01}, ra);
  inject(b, {FaultKind::kTransient, 0.01}, rb);
  for (std::size_t c = 0; c < a.num_classes(); ++c)
    EXPECT_EQ(a.class_vector(c), b.class_vector(c));
  // A different seed produces a different pattern.
  auto d = small_model();
  Rng rd(43);
  inject(d, {FaultKind::kTransient, 0.01}, rd);
  bool any_diff = false;
  for (std::size_t c = 0; c < a.num_classes() && !any_diff; ++c)
    any_diff = a.class_vector(c) != d.class_vector(c);
  EXPECT_TRUE(any_diff);
}

TEST(FaultModel, TransientAtRateOneIsAnInvolution) {
  // rate 1.0 flips every bit regardless of the rng draws, so applying the
  // fault twice restores the original word — a structural check that the
  // injector really is a per-bit XOR.
  auto clf = small_model();
  const auto golden = clf;
  Rng r1(1), r2(2);
  inject(clf, {FaultKind::kTransient, 1.0}, r1);
  bool changed = false;
  for (std::size_t c = 0; c < clf.num_classes() && !changed; ++c)
    changed = clf.class_vector(c) != golden.class_vector(c);
  EXPECT_TRUE(changed);
  inject(clf, {FaultKind::kTransient, 1.0}, r2);
  for (std::size_t c = 0; c < clf.num_classes(); ++c)
    EXPECT_EQ(clf.class_vector(c), golden.class_vector(c));
}

TEST(FaultModel, StuckAtExtremesForceWords) {
  auto clf = small_model();
  clf.quantize(8);
  Rng r(7);
  inject(clf, {FaultKind::kStuckAt0, 1.0}, r);
  for (std::size_t c = 0; c < clf.num_classes(); ++c)
    for (auto v : clf.class_vector(c)) EXPECT_EQ(v, 0);

  auto clf1 = small_model();
  clf1.quantize(8);
  Rng r1(7);
  inject(clf1, {FaultKind::kStuckAt1, 1.0}, r1);
  // All 8 bits set == two's-complement -1.
  for (std::size_t c = 0; c < clf1.num_classes(); ++c)
    for (auto v : clf1.class_vector(c)) EXPECT_EQ(v, -1);
}

TEST(FaultModel, OneBitModelUsesBipolarStorage) {
  auto clf = small_model();
  clf.quantize(1);
  Rng r0(5), r1(5);
  auto zero = clf, one = clf;
  inject(zero, {FaultKind::kStuckAt0, 1.0}, r0);
  inject(one, {FaultKind::kStuckAt1, 1.0}, r1);
  for (std::size_t c = 0; c < clf.num_classes(); ++c)
    for (std::size_t j = 0; j < clf.dims(); ++j) {
      EXPECT_EQ(zero.class_vector(c)[j], -1);
      EXPECT_EQ(one.class_vector(c)[j], 1);
    }
}

TEST(FaultModel, DeadBlockKillsWholeChunksAcrossClasses) {
  auto clf = small_model(512, 3);  // 4 chunks of 128
  inject_dead_blocks(clf, {1, 3});
  for (std::size_t c = 0; c < clf.num_classes(); ++c)
    for (std::size_t j = 0; j < clf.dims(); ++j) {
      const std::size_t k = j / 128;
      if (k == 1 || k == 3) {
        EXPECT_EQ(clf.class_vector(c)[j], 0) << "class " << c << " dim " << j;
      }
    }
  EXPECT_THROW(inject_dead_blocks(clf, {4}), std::out_of_range);
}

TEST(FaultModel, DeadBlockSamplingMatchesInjection) {
  auto clf = small_model(1024, 2);  // 8 chunks
  Rng sample_rng(21), inject_rng(21);
  const auto dead = sample_dead_chunks(clf.num_chunks(), 0.5, sample_rng);
  inject(clf, {FaultKind::kDeadBlock, 0.5}, inject_rng);
  for (std::size_t k = 0; k < clf.num_chunks(); ++k) {
    const bool expect_dead =
        std::find(dead.begin(), dead.end(), k) != dead.end();
    bool all_zero = true;
    for (std::size_t j = k * 128; j < (k + 1) * 128 && all_zero; ++j)
      all_zero = clf.class_vector(0)[j] == 0;
    if (expect_dead) {
      EXPECT_TRUE(all_zero) << "chunk " << k;
    }
  }
  EXPECT_FALSE(dead.empty());  // 8 chunks at p=0.5: all-alive is a bug smell
}

TEST(FaultModel, InjectionLeavesNormsStale) {
  // The hardware keeps norms in the separate norm2 array; the injector
  // must NOT refresh them — BlockGuard detection depends on it.
  auto clf = small_model();
  const auto norm_before = clf.chunk_norm(0, 0);
  Rng r(3);
  inject(clf, {FaultKind::kTransient, 0.5}, r);
  EXPECT_EQ(clf.chunk_norm(0, 0), norm_before);
}

TEST(FaultModel, BinaryHvInjection) {
  Rng rng(11);
  auto hv = hdc::BinaryHV::random(256, rng);
  auto copy = hv;
  Rng r1(5);
  inject(copy, {FaultKind::kStuckAt1, 1.0}, r1);
  for (std::size_t i = 0; i < 256; ++i) EXPECT_TRUE(copy.bit(i));
  Rng r0(5);
  inject(copy, {FaultKind::kStuckAt0, 1.0}, r0);
  for (std::size_t i = 0; i < 256; ++i) EXPECT_FALSE(copy.bit(i));

  // Dead block zeroes an aligned 128-bit span.
  auto blocky = hv;
  Rng rb(17);
  inject(blocky, {FaultKind::kDeadBlock, 1.0}, rb);
  for (std::size_t i = 0; i < 256; ++i) EXPECT_FALSE(blocky.bit(i));
}

TEST(FaultModel, BankCorrelatedHitsOnlyDrawnBanks) {
  // Unlike kDeadBlock — which kills one chunk across ALL classes — the
  // bank-correlated burst corrupts whole class vectors and leaves every
  // class outside the hit banks untouched.
  auto clf = small_model(512, 6);
  const auto golden = clf;
  Rng r(123);
  inject_bank_correlated(clf, {1, 4}, 0.5, r);
  for (std::size_t c = 0; c < clf.num_classes(); ++c) {
    const bool hit = (c % kClassMemoryBanks == 1) || (c % kClassMemoryBanks == 4);
    if (hit) {
      EXPECT_NE(clf.class_vector(c), golden.class_vector(c)) << "class " << c;
    } else {
      EXPECT_EQ(clf.class_vector(c), golden.class_vector(c)) << "class " << c;
    }
  }
}

TEST(FaultModel, BankCorrelatedSamplingMatchesInjection) {
  auto a = small_model(256, 6);
  auto b = a;
  Rng sample_rng(77), inject_rng(77);
  const auto banks = sample_faulty_banks(0.3, sample_rng);
  const double burst = 0.4;
  inject_bank_correlated(a, banks, burst, sample_rng);
  inject(b, {FaultKind::kBankCorrelated, 0.3, burst}, inject_rng);
  for (std::size_t c = 0; c < a.num_classes(); ++c)
    EXPECT_EQ(a.class_vector(c), b.class_vector(c)) << "class " << c;
}

TEST(FaultModel, BankCorrelatedIsSeedDeterministic) {
  auto a = small_model(256, 6);
  auto b = small_model(256, 6);
  Rng ra(42), rb(42);
  inject(a, {FaultKind::kBankCorrelated, 0.5, 0.2}, ra);
  inject(b, {FaultKind::kBankCorrelated, 0.5, 0.2}, rb);
  for (std::size_t c = 0; c < a.num_classes(); ++c)
    EXPECT_EQ(a.class_vector(c), b.class_vector(c));
}

TEST(FaultModel, BankCorrelatedDrawsAllSixteenBanks) {
  // The hit pattern belongs to the 16 physical banks, not the model: at
  // rate 1.0 every bank is drawn, and with 6 classes exactly banks 0..5
  // land on storage.
  Rng r(1);
  const auto banks = sample_faulty_banks(1.0, r);
  ASSERT_EQ(banks.size(), kClassMemoryBanks);
  auto clf = small_model(256, 6);
  const auto golden = clf;
  Rng ri(9);
  inject(clf, {FaultKind::kBankCorrelated, 1.0, 1.0}, ri);
  // burst_rate 1.0 flips every bit of every stored word.
  for (std::size_t c = 0; c < clf.num_classes(); ++c)
    EXPECT_NE(clf.class_vector(c), golden.class_vector(c));
}

TEST(FaultModel, BankCorrelatedLeavesNormsStale) {
  auto clf = small_model(256, 3);
  const auto norm_before = clf.chunk_norm(1, 0);
  Rng r(3);
  inject(clf, {FaultKind::kBankCorrelated, 1.0, 0.5}, r);
  EXPECT_EQ(clf.chunk_norm(1, 0), norm_before);
}

TEST(FaultModel, BankCorrelatedRejectsEncoderMemories) {
  // The mode is defined over the 16 class-memory banks; item/level rows and
  // accumulators have no bank structure to correlate over.
  Rng rng(2);
  auto hv = hdc::BinaryHV::random(128, rng);
  EXPECT_THROW(
      { Rng r(1); inject(hv, {FaultKind::kBankCorrelated, 0.1}, r); },
      std::invalid_argument);
  hdc::IntHV acc(128, 1);
  EXPECT_THROW(
      { Rng r(1); inject(acc, {FaultKind::kBankCorrelated, 0.1}, r, 8); },
      std::invalid_argument);
}

TEST(FaultModel, BankCorrelatedNameRoundTrips) {
  EXPECT_EQ(fault_kind_name(FaultKind::kBankCorrelated), "bank_correlated");
  EXPECT_EQ(fault_kind_from_name("bank_correlated"),
            FaultKind::kBankCorrelated);
}

TEST(FaultModel, IntHvInjectionRespectsBitWidth) {
  hdc::IntHV acc(256, 3);
  Rng r(9);
  inject(acc, {FaultKind::kStuckAt1, 1.0}, r, 4);
  for (auto v : acc) EXPECT_EQ(v, -1);  // 4-bit all-ones
  EXPECT_THROW(
      { Rng bad(1); inject(acc, {FaultKind::kTransient, 0.1}, bad, 0); },
      std::invalid_argument);
}

}  // namespace
}  // namespace generic::resilience
