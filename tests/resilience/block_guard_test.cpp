// BlockGuard detection / masking / scrubbing, including the acceptance
// criterion of the resilience issue: a model with <= 10% dead 128-dim
// blocks, masked, loses <= 2% absolute accuracy vs the fault-free model
// on the synthetic benchmark.
#include "resilience/block_guard.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "arch/microarch.h"
#include "data/benchmarks.h"
#include "encoding/encoders.h"
#include "model/pipeline.h"
#include "resilience/fault_model.h"

namespace generic::resilience {
namespace {

/// Trained rig on the PAGE synthetic clone. dims = 1280 -> 10 chunks, so
/// one dead chunk is exactly the 10% budget of the acceptance criterion.
struct Rig {
  data::Dataset ds = data::make_benchmark("PAGE");
  std::unique_ptr<enc::GenericEncoder> encoder;
  model::HdcClassifier clf{1280, 5};
  std::vector<hdc::IntHV> test;

  explicit Rig(std::size_t dims = 1280) : clf(dims, 5) {
    enc::EncoderConfig cfg;
    cfg.dims = dims;
    encoder = std::make_unique<enc::GenericEncoder>(cfg);
    encoder->fit(ds.train_x);
    const auto train = model::encode_all(*encoder, ds.train_x);
    clf = model::HdcClassifier(dims, ds.num_classes);
    clf.fit(train, ds.train_y, 5);
    test = model::encode_all(*encoder, ds.test_x);
  }

  double accuracy(const model::HdcClassifier& m) const {
    std::size_t hits = 0;
    for (std::size_t i = 0; i < test.size(); ++i)
      hits += m.predict(test[i]) == ds.test_y[i];
    return static_cast<double>(hits) / static_cast<double>(test.size());
  }

  double accuracy_masked(const model::HdcClassifier& m,
                         const std::vector<bool>& ok) const {
    std::size_t hits = 0;
    for (std::size_t i = 0; i < test.size(); ++i)
      hits += m.predict_masked(test[i], ok) == ds.test_y[i];
    return static_cast<double>(hits) / static_cast<double>(test.size());
  }
};

TEST(BlockGuard, CleanModelScansAllOk) {
  Rig rig;
  const auto guard = BlockGuard::commission(rig.clf);
  const auto ok = guard.scan(rig.clf);
  EXPECT_EQ(ok.size(), rig.clf.num_chunks());
  for (bool b : ok) EXPECT_TRUE(b);
  EXPECT_EQ(guard.count_faulty(rig.clf), 0u);
}

TEST(BlockGuard, GeometryMismatchRejected) {
  Rig rig;
  const auto guard = BlockGuard::commission(rig.clf);
  model::HdcClassifier other(256, 5);
  EXPECT_THROW(guard.scan(other), std::invalid_argument);
}

TEST(BlockGuard, DetectsExactlyTheDeadChunks) {
  Rig rig;
  const auto guard = BlockGuard::commission(rig.clf);
  auto faulty = rig.clf;
  inject_dead_blocks(faulty, {2, 7});
  const auto ok = guard.scan(faulty);
  for (std::size_t k = 0; k < ok.size(); ++k)
    EXPECT_EQ(ok[k], k != 2 && k != 7) << "chunk " << k;
}

TEST(BlockGuard, DetectsTransientCorruption) {
  Rig rig;
  const auto guard = BlockGuard::commission(rig.clf);
  auto faulty = rig.clf;
  Rng rng(123);
  inject(faulty, {FaultKind::kTransient, 1e-3}, rng);
  EXPECT_GT(guard.count_faulty(faulty), 0u);
}

TEST(BlockGuard, MaskedInferenceWithTenPercentDeadBlocksLosesAtMostTwoPercent) {
  Rig rig;
  const double baseline = rig.accuracy(rig.clf);
  const auto guard = BlockGuard::commission(rig.clf);

  auto faulty = rig.clf;
  inject_dead_blocks(faulty, {3});  // 1 of 10 chunks == 10% dead
  const auto ok = guard.scan(faulty);
  EXPECT_EQ(std::count(ok.begin(), ok.end(), false), 1);

  const double masked = rig.accuracy_masked(faulty, ok);
  EXPECT_GE(masked, baseline - 0.02)
      << "masked=" << masked << " baseline=" << baseline;
}

TEST(BlockGuard, ScrubRepairsFromGolden) {
  Rig rig;
  const auto golden = rig.clf;
  const auto guard = BlockGuard::commission(rig.clf);

  auto faulty = rig.clf;
  inject_dead_blocks(faulty, {0, 4, 9});
  Rng rng(5);
  inject(faulty, {FaultKind::kTransient, 1e-4}, rng);
  const std::size_t faulty_blocks = guard.count_faulty(faulty);
  EXPECT_GE(faulty_blocks, 3u);

  const std::size_t repaired = guard.scrub(faulty, golden);
  EXPECT_EQ(repaired, faulty_blocks);
  EXPECT_EQ(guard.count_faulty(faulty), 0u);
  for (std::size_t c = 0; c < golden.num_classes(); ++c) {
    EXPECT_EQ(faulty.class_vector(c), golden.class_vector(c));
    for (std::size_t k = 0; k < golden.num_chunks(); ++k)
      EXPECT_EQ(faulty.chunk_norm(c, k), golden.chunk_norm(c, k));
  }
}

TEST(BlockGuard, ScrubFromCrcVerifiedBlob) {
  Rig rig;
  const auto guard = BlockGuard::commission(rig.clf);
  const auto blob = model::serialize_model(*rig.encoder, rig.clf);

  auto faulty = rig.clf;
  inject_dead_blocks(faulty, {5});
  EXPECT_EQ(guard.scrub_from_blob(faulty, blob), 1u);
  EXPECT_EQ(faulty.class_vector(0), rig.clf.class_vector(0));

  // A corrupted golden blob must be rejected, not silently used.
  auto bad = blob;
  bad[bad.size() / 2] ^= 0x01;
  inject_dead_blocks(faulty, {5});
  EXPECT_THROW(guard.scrub_from_blob(faulty, bad), std::invalid_argument);
}

TEST(BlockGuard, AllChunksMaskedThrows) {
  Rig rig;
  const std::vector<bool> none(rig.clf.num_chunks(), false);
  EXPECT_THROW(rig.clf.predict_masked(rig.test[0], none),
               std::invalid_argument);
}

TEST(BlockGuard, MicroArchBlockMaskMatchesSoftwareMasking) {
  // The cycle-level simulator's set_block_mask reuses the dimension-
  // reduction datapath; its masked predictions must track the software
  // masked predictions (up to the Mitchell-vs-exact compare band).
  Rig rig;
  arch::AppSpec spec;
  spec.dims = rig.clf.dims();
  spec.features = rig.ds.num_features();
  spec.classes = rig.ds.num_classes;
  const auto g = data::generic_config_for("PAGE");
  spec.window = g.window;
  spec.use_ids = g.use_ids;

  auto faulty = rig.clf;
  inject_dead_blocks(faulty, {3});
  const auto guard = BlockGuard::commission(rig.clf);
  const auto ok = guard.scan(faulty);

  arch::MicroArchSim sim(spec, *rig.encoder, faulty);
  sim.set_block_mask(ok);
  std::size_t agree = 0;
  const std::size_t n = std::min<std::size_t>(rig.ds.test_x.size(), 200);
  for (std::size_t i = 0; i < n; ++i) {
    const auto hw = sim.infer(rig.ds.test_x[i]);
    agree += hw.label == faulty.predict_masked(rig.test[i], ok);
  }
  EXPECT_GE(static_cast<double>(agree), 0.9 * static_cast<double>(n));

  // Masked-out blocks also save their passes' cycles, like §4.3.3.
  sim.clear_block_mask();
  const auto full = sim.infer(rig.ds.test_x[0]);
  sim.set_block_mask(ok);
  const auto masked = sim.infer(rig.ds.test_x[0]);
  EXPECT_LT(masked.cycles, full.cycles);

  // Training demands a full mask.
  EXPECT_THROW(sim.train_step(rig.ds.test_x[0], 0), std::logic_error);

  // A mask that kills every chunk is rejected.
  EXPECT_THROW(sim.set_block_mask(std::vector<bool>(ok.size(), false)),
               std::invalid_argument);
}

}  // namespace
}  // namespace generic::resilience
