// Campaign runner: determinism (same seed -> byte-identical JSON) and the
// paper's qualitative resilience claim (graceful, cliff-free degradation
// up to BER ~ 1e-3 for transient faults).
#include "resilience/campaign.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>

#include "data/benchmarks.h"
#include "encoding/encoders.h"
#include "model/pipeline.h"

namespace generic::resilience {
namespace {

struct Rig {
  data::Dataset ds = data::make_benchmark("PAGE");
  std::unique_ptr<enc::GenericEncoder> encoder;
  model::HdcClassifier clf{1024, 5};
  std::vector<hdc::IntHV> test;

  Rig() {
    enc::EncoderConfig cfg;
    cfg.dims = 1024;
    encoder = std::make_unique<enc::GenericEncoder>(cfg);
    encoder->fit(ds.train_x);
    const auto train = model::encode_all(*encoder, ds.train_x);
    clf = model::HdcClassifier(1024, ds.num_classes);
    clf.fit(train, ds.train_y, 5);
    clf.quantize(8);  // the deployed operating point of Figure 6
    test = model::encode_all(*encoder, ds.test_x);
  }
};

Rig& rig() {
  static Rig r;  // train once for the whole suite
  return r;
}

TEST(Campaign, SameSeedProducesByteIdenticalJson) {
  CampaignConfig cfg;
  cfg.kinds = {FaultKind::kTransient, FaultKind::kDeadBlock};
  cfg.rates = {0.0, 1e-3, 0.05};
  cfg.trials = 3;
  cfg.seed = 77;
  const auto a = run_campaign(rig().clf, rig().test, rig().ds.test_y, cfg);
  const auto b = run_campaign(rig().clf, rig().test, rig().ds.test_y, cfg);
  EXPECT_EQ(campaign_to_json(a), campaign_to_json(b));

  // And a different seed changes at least the sampled accuracies' bytes
  // (rates > 0 make that overwhelmingly likely on this grid).
  cfg.seed = 78;
  const auto c = run_campaign(rig().clf, rig().test, rig().ds.test_y, cfg);
  EXPECT_NE(campaign_to_json(a), campaign_to_json(c));
}

TEST(Campaign, ZeroRateCellsEqualBaseline) {
  CampaignConfig cfg;
  cfg.rates = {0.0};
  cfg.trials = 2;
  const auto res = run_campaign(rig().clf, rig().test, rig().ds.test_y, cfg);
  ASSERT_EQ(res.cells.size(), cfg.kinds.size());
  for (const auto& cell : res.cells) {
    EXPECT_DOUBLE_EQ(cell.mean_accuracy, res.baseline_accuracy);
    EXPECT_DOUBLE_EQ(cell.stddev_accuracy, 0.0);
  }
}

TEST(Campaign, TransientFaultsDegradeGracefullyUpToBer1e3) {
  // The §4.3.4 claim: no accuracy cliff through BER ~ 1e-3. Every rate on
  // the sweep must stay within 2% absolute of the fault-free baseline.
  CampaignConfig cfg;
  cfg.kinds = {FaultKind::kTransient};
  cfg.rates = {0.0, 1e-4, 3e-4, 1e-3};
  cfg.trials = 5;
  cfg.seed = 2022;
  const auto res = run_campaign(rig().clf, rig().test, rig().ds.test_y, cfg);
  ASSERT_EQ(res.cells.size(), 4u);
  for (const auto& cell : res.cells)
    EXPECT_GE(cell.mean_accuracy, res.baseline_accuracy - 0.02)
        << "cliff at rate " << cell.rate;
}

TEST(Campaign, DegradationPolicyRecoversDeadBlockAccuracy) {
  CampaignConfig cfg;
  cfg.kinds = {FaultKind::kDeadBlock};
  cfg.rates = {0.25};  // expect ~2 of 8 chunks dead per trial
  cfg.trials = 4;
  cfg.seed = 31;
  auto raw_cfg = cfg;
  raw_cfg.degrade = false;
  auto masked_cfg = cfg;
  masked_cfg.degrade = true;
  const auto raw =
      run_campaign(rig().clf, rig().test, rig().ds.test_y, raw_cfg);
  const auto masked =
      run_campaign(rig().clf, rig().test, rig().ds.test_y, masked_cfg);
  // Dead blocks read as zeros, so raw inference is already fairly benign;
  // masking must be at least as good up to trial noise, never a cliff.
  EXPECT_GE(masked.cells[0].mean_accuracy,
            raw.cells[0].mean_accuracy - 0.01);
  EXPECT_GE(masked.cells[0].mean_accuracy, masked.baseline_accuracy - 0.05);
  EXPECT_GT(masked.cells[0].mean_blocks_masked, 0.0);
  EXPECT_DOUBLE_EQ(raw.cells[0].mean_blocks_masked, 0.0);
}

TEST(Campaign, JsonShapeAndFileRoundTrip) {
  CampaignConfig cfg;
  cfg.kinds = {FaultKind::kTransient, FaultKind::kStuckAt0};
  cfg.rates = {0.0, 1e-3};
  cfg.trials = 2;
  const auto res = run_campaign(rig().clf, rig().test, rig().ds.test_y, cfg);
  const auto json = campaign_to_json(res);
  EXPECT_NE(json.find("\"schema\": \"generic.fault_campaign.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"fault\": \"transient\""), std::string::npos);
  EXPECT_NE(json.find("\"fault\": \"stuck_at_0\""), std::string::npos);
  EXPECT_EQ(res.cells.size(), 4u);

  const auto path = (std::filesystem::temp_directory_path() /
                     "generic_campaign_test.json")
                        .string();
  write_campaign_json(path, res);
  std::ifstream f(path);
  std::string contents((std::istreambuf_iterator<char>(f)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, json);
  std::remove(path.c_str());
}

TEST(Campaign, RejectsDegenerateInputs) {
  CampaignConfig cfg;
  EXPECT_THROW(run_campaign(rig().clf, {}, {}, cfg), std::invalid_argument);
  cfg.trials = 0;
  EXPECT_THROW(run_campaign(rig().clf, rig().test, rig().ds.test_y, cfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace generic::resilience
