// Campaign runner: determinism (same seed -> byte-identical JSON) and the
// paper's qualitative resilience claim (graceful, cliff-free degradation
// up to BER ~ 1e-3 for transient faults).
#include "resilience/campaign.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>

#include "data/benchmarks.h"
#include "encoding/encoders.h"
#include "model/pipeline.h"

namespace generic::resilience {
namespace {

struct Rig {
  data::Dataset ds = data::make_benchmark("PAGE");
  std::unique_ptr<enc::GenericEncoder> encoder;
  model::HdcClassifier clf{1024, 5};
  std::vector<hdc::IntHV> test;

  Rig() {
    enc::EncoderConfig cfg;
    cfg.dims = 1024;
    encoder = std::make_unique<enc::GenericEncoder>(cfg);
    encoder->fit(ds.train_x);
    const auto train = model::encode_all(*encoder, ds.train_x);
    clf = model::HdcClassifier(1024, ds.num_classes);
    clf.fit(train, ds.train_y, 5);
    clf.quantize(8);  // the deployed operating point of Figure 6
    test = model::encode_all(*encoder, ds.test_x);
  }
};

Rig& rig() {
  static Rig r;  // train once for the whole suite
  return r;
}

TEST(Campaign, SameSeedProducesByteIdenticalJson) {
  CampaignConfig cfg;
  cfg.kinds = {FaultKind::kTransient, FaultKind::kDeadBlock};
  cfg.rates = {0.0, 1e-3, 0.05};
  cfg.trials = 3;
  cfg.seed = 77;
  const auto a = run_campaign(rig().clf, rig().test, rig().ds.test_y, cfg);
  const auto b = run_campaign(rig().clf, rig().test, rig().ds.test_y, cfg);
  EXPECT_EQ(campaign_to_json(a), campaign_to_json(b));

  // And a different seed changes at least the sampled accuracies' bytes
  // (rates > 0 make that overwhelmingly likely on this grid).
  cfg.seed = 78;
  const auto c = run_campaign(rig().clf, rig().test, rig().ds.test_y, cfg);
  EXPECT_NE(campaign_to_json(a), campaign_to_json(c));
}

TEST(Campaign, ZeroRateCellsEqualBaseline) {
  CampaignConfig cfg;
  cfg.rates = {0.0};
  cfg.trials = 2;
  const auto res = run_campaign(rig().clf, rig().test, rig().ds.test_y, cfg);
  ASSERT_EQ(res.cells.size(), cfg.kinds.size());
  for (const auto& cell : res.cells) {
    EXPECT_DOUBLE_EQ(cell.mean_accuracy, res.baseline_accuracy);
    EXPECT_DOUBLE_EQ(cell.stddev_accuracy, 0.0);
  }
}

TEST(Campaign, TransientFaultsDegradeGracefullyUpToBer1e3) {
  // The §4.3.4 claim: no accuracy cliff through BER ~ 1e-3. Every rate on
  // the sweep must stay within 2% absolute of the fault-free baseline.
  CampaignConfig cfg;
  cfg.kinds = {FaultKind::kTransient};
  cfg.rates = {0.0, 1e-4, 3e-4, 1e-3};
  cfg.trials = 5;
  cfg.seed = 2022;
  const auto res = run_campaign(rig().clf, rig().test, rig().ds.test_y, cfg);
  ASSERT_EQ(res.cells.size(), 4u);
  for (const auto& cell : res.cells)
    EXPECT_GE(cell.mean_accuracy, res.baseline_accuracy - 0.02)
        << "cliff at rate " << cell.rate;
}

TEST(Campaign, DegradationPolicyRecoversDeadBlockAccuracy) {
  CampaignConfig cfg;
  cfg.kinds = {FaultKind::kDeadBlock};
  cfg.rates = {0.25};  // expect ~2 of 8 chunks dead per trial
  cfg.trials = 4;
  cfg.seed = 31;
  auto raw_cfg = cfg;
  raw_cfg.degrade = false;
  auto masked_cfg = cfg;
  masked_cfg.degrade = true;
  const auto raw =
      run_campaign(rig().clf, rig().test, rig().ds.test_y, raw_cfg);
  const auto masked =
      run_campaign(rig().clf, rig().test, rig().ds.test_y, masked_cfg);
  // Dead blocks read as zeros, so raw inference is already fairly benign;
  // masking must be at least as good up to trial noise, never a cliff.
  EXPECT_GE(masked.cells[0].mean_accuracy,
            raw.cells[0].mean_accuracy - 0.01);
  EXPECT_GE(masked.cells[0].mean_accuracy, masked.baseline_accuracy - 0.05);
  EXPECT_GT(masked.cells[0].mean_blocks_masked, 0.0);
  EXPECT_DOUBLE_EQ(raw.cells[0].mean_blocks_masked, 0.0);
}

TEST(Campaign, JsonShapeAndFileRoundTrip) {
  CampaignConfig cfg;
  cfg.kinds = {FaultKind::kTransient, FaultKind::kStuckAt0};
  cfg.rates = {0.0, 1e-3};
  cfg.trials = 2;
  const auto res = run_campaign(rig().clf, rig().test, rig().ds.test_y, cfg);
  const auto json = campaign_to_json(res);
  EXPECT_NE(json.find("\"schema\": \"generic.fault_campaign.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"fault\": \"transient\""), std::string::npos);
  EXPECT_NE(json.find("\"fault\": \"stuck_at_0\""), std::string::npos);
  EXPECT_EQ(res.cells.size(), 4u);

  const auto path = (std::filesystem::temp_directory_path() /
                     "generic_campaign_test.json")
                        .string();
  write_campaign_json(path, res);
  std::ifstream f(path);
  std::string contents((std::istreambuf_iterator<char>(f)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, json);
  std::remove(path.c_str());
}

TEST(Campaign, RejectsDegenerateInputs) {
  CampaignConfig cfg;
  EXPECT_THROW(run_campaign(rig().clf, {}, {}, cfg), std::invalid_argument);
  cfg.trials = 0;
  EXPECT_THROW(run_campaign(rig().clf, rig().test, rig().ds.test_y, cfg),
               std::invalid_argument);
}

TEST(Campaign, ThreadedTrialsProduceByteIdenticalJson) {
  // Trial seeds depend only on (kind, rate, trial) indices and statistics
  // reduce in trial-index order, so any lane count — including pools far
  // wider than the trial count — yields the serial JSON byte for byte.
  CampaignConfig cfg;
  cfg.kinds = {FaultKind::kTransient, FaultKind::kDeadBlock};
  cfg.rates = {0.0, 1e-3, 0.05};
  cfg.trials = 4;
  cfg.seed = 99;
  cfg.threads = 1;
  const auto serial = campaign_to_json(
      run_campaign(rig().clf, rig().test, rig().ds.test_y, cfg));
  for (std::size_t threads : {2u, 7u, 16u}) {
    cfg.threads = threads;
    const auto threaded = campaign_to_json(
        run_campaign(rig().clf, rig().test, rig().ds.test_y, cfg));
    EXPECT_EQ(threaded, serial) << "threads=" << threads;
  }
}

TEST(Campaign, ThreadedDegradePathIsDeterministicToo) {
  CampaignConfig cfg;
  cfg.kinds = {FaultKind::kDeadBlock};
  cfg.rates = {0.25};
  cfg.trials = 3;
  cfg.seed = 31;
  cfg.degrade = true;
  cfg.threads = 1;
  const auto serial = campaign_to_json(
      run_campaign(rig().clf, rig().test, rig().ds.test_y, cfg));
  cfg.threads = 5;
  const auto threaded = campaign_to_json(
      run_campaign(rig().clf, rig().test, rig().ds.test_y, cfg));
  EXPECT_EQ(threaded, serial);
}

// ---- Encoder-memory campaign (level rows / id seed) -----------------------

CampaignConfig encoder_cfg() {
  CampaignConfig cfg;
  cfg.kinds = {FaultKind::kTransient, FaultKind::kStuckAt1};
  cfg.rates = {0.0, 1e-3, 0.05};
  cfg.trials = 2;
  cfg.seed = 4242;
  return cfg;
}

TEST(EncoderCampaign, LevelMemoryZeroRateEqualsBaseline) {
  auto cfg = encoder_cfg();
  const auto res =
      run_encoder_campaign(*rig().encoder, rig().clf, rig().ds.test_x,
                           rig().ds.test_y, cfg, FaultTarget::kLevelMemory);
  EXPECT_EQ(res.target, FaultTarget::kLevelMemory);
  ASSERT_EQ(res.cells.size(), cfg.kinds.size() * cfg.rates.size());
  for (std::size_t ki = 0; ki < cfg.kinds.size(); ++ki) {
    const auto& zero_cell = res.cells[ki * cfg.rates.size()];
    EXPECT_DOUBLE_EQ(zero_cell.rate, 0.0);
    EXPECT_DOUBLE_EQ(zero_cell.mean_accuracy, res.baseline_accuracy);
    EXPECT_DOUBLE_EQ(zero_cell.stddev_accuracy, 0.0);
  }
}

TEST(EncoderCampaign, RestoresEncoderStateAfterSweep) {
  // The sweep corrupts the shared encoder in place; after it returns the
  // commissioned memories must be back, so a fresh encoding matches one
  // taken before the campaign.
  const auto before = model::encode_all(*rig().encoder, rig().ds.test_x);
  auto cfg = encoder_cfg();
  (void)run_encoder_campaign(*rig().encoder, rig().clf, rig().ds.test_x,
                             rig().ds.test_y, cfg, FaultTarget::kLevelMemory);
  (void)run_encoder_campaign(*rig().encoder, rig().clf, rig().ds.test_x,
                             rig().ds.test_y, cfg, FaultTarget::kIdSeed);
  const auto after = model::encode_all(*rig().encoder, rig().ds.test_x);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_EQ(before[i], after[i]) << "sample " << i;
}

TEST(EncoderCampaign, DeterministicAcrossRunsAndThreads) {
  auto cfg = encoder_cfg();
  cfg.threads = 1;
  const auto a = campaign_to_json(
      run_encoder_campaign(*rig().encoder, rig().clf, rig().ds.test_x,
                           rig().ds.test_y, cfg, FaultTarget::kIdSeed));
  const auto b = campaign_to_json(
      run_encoder_campaign(*rig().encoder, rig().clf, rig().ds.test_x,
                           rig().ds.test_y, cfg, FaultTarget::kIdSeed));
  EXPECT_EQ(a, b);
  cfg.threads = 7;
  const auto threaded = campaign_to_json(
      run_encoder_campaign(*rig().encoder, rig().clf, rig().ds.test_x,
                           rig().ds.test_y, cfg, FaultTarget::kIdSeed));
  EXPECT_EQ(threaded, a);
}

TEST(EncoderCampaign, HighRateLevelFaultsHurtAccuracy) {
  // Saturating the level rows with stuck-at-1 faults must visibly damage
  // accuracy — the encoder campaign actually flows through the encoder.
  CampaignConfig cfg;
  cfg.kinds = {FaultKind::kStuckAt1};
  cfg.rates = {0.5};
  cfg.trials = 2;
  cfg.seed = 7;
  const auto res =
      run_encoder_campaign(*rig().encoder, rig().clf, rig().ds.test_x,
                           rig().ds.test_y, cfg, FaultTarget::kLevelMemory);
  EXPECT_LT(res.cells[0].mean_accuracy, res.baseline_accuracy);
}

TEST(EncoderCampaign, JsonCarriesTargetField) {
  auto cfg = encoder_cfg();
  cfg.kinds = {FaultKind::kTransient};
  cfg.rates = {1e-3};
  const auto json = campaign_to_json(
      run_encoder_campaign(*rig().encoder, rig().clf, rig().ds.test_x,
                           rig().ds.test_y, cfg, FaultTarget::kLevelMemory));
  EXPECT_NE(json.find("\"target\": \"level_memory\""), std::string::npos);
  // The class-memory runner stamps its own target name.
  CampaignConfig ccfg;
  ccfg.kinds = {FaultKind::kTransient};
  ccfg.rates = {0.0};
  ccfg.trials = 1;
  const auto cjson = campaign_to_json(
      run_campaign(rig().clf, rig().test, rig().ds.test_y, ccfg));
  EXPECT_NE(cjson.find("\"target\": \"class_memory\""), std::string::npos);
}

TEST(EncoderCampaign, RematLevelMemoryIsImmuneToLevelFaults) {
  // A kRematerialized level memory stores no rows, so a level-memory sweep
  // cannot bite: every cell sits exactly at baseline — the campaign-shaped
  // proof of the PR 7 immunity claim — and the report's footprint gauge
  // shows the storage the immunity costs nothing to give up.
  enc::EncoderConfig ecfg;
  ecfg.dims = 1024;
  ecfg.remat = true;
  enc::GenericEncoder remat(ecfg);
  remat.fit(rig().ds.train_x);
  CampaignConfig cfg;
  cfg.kinds = {FaultKind::kStuckAt1};
  cfg.rates = {0.5};  // saturating on a stored encoder (see HighRate test)
  cfg.trials = 2;
  cfg.seed = 7;
  const auto res =
      run_encoder_campaign(remat, rig().clf, rig().ds.test_x, rig().ds.test_y,
                           cfg, FaultTarget::kLevelMemory);
  EXPECT_TRUE(res.encoder_remat);
  EXPECT_LT(res.encoder_footprint_bytes,
            rig().encoder->memory_footprint_bytes());
  for (const auto& cell : res.cells) {
    EXPECT_DOUBLE_EQ(cell.mean_accuracy, res.baseline_accuracy);
    EXPECT_DOUBLE_EQ(cell.stddev_accuracy, 0.0);
  }
  const auto json = campaign_to_json(res);
  EXPECT_NE(json.find("\"encoder\": {\"remat\": true"), std::string::npos);
  EXPECT_NE(json.find("\"footprint_bytes\": "), std::string::npos);
}

TEST(EncoderCampaign, RematIdSeedStillBites) {
  // The seed row is stored in both modes (it IS the remat source), so an
  // id_seed campaign must still damage accuracy on a remat encoder.
  enc::EncoderConfig ecfg;
  ecfg.dims = 1024;
  ecfg.remat = true;
  enc::GenericEncoder remat(ecfg);
  remat.fit(rig().ds.train_x);
  CampaignConfig cfg;
  cfg.kinds = {FaultKind::kStuckAt1};
  cfg.rates = {0.5};
  cfg.trials = 2;
  cfg.seed = 7;
  const auto res =
      run_encoder_campaign(remat, rig().clf, rig().ds.test_x, rig().ds.test_y,
                           cfg, FaultTarget::kIdSeed);
  EXPECT_TRUE(res.encoder_remat);
  EXPECT_LT(res.cells[0].mean_accuracy, res.baseline_accuracy);
}

TEST(EncoderCampaign, ClassMemoryJsonOmitsEncoderBlock) {
  // The encoder gauges must not leak into class-memory reports: their
  // committed goldens (fault_campaign_page.json) predate the block.
  CampaignConfig cfg;
  cfg.kinds = {FaultKind::kTransient};
  cfg.rates = {0.0};
  cfg.trials = 1;
  const auto json = campaign_to_json(
      run_campaign(rig().clf, rig().test, rig().ds.test_y, cfg));
  EXPECT_EQ(json.find("\"encoder\""), std::string::npos);
}

TEST(EncoderCampaign, RejectsUnsupportedModes) {
  auto cfg = encoder_cfg();
  EXPECT_THROW(
      run_encoder_campaign(*rig().encoder, rig().clf, rig().ds.test_x,
                           rig().ds.test_y, cfg, FaultTarget::kClassMemory),
      std::invalid_argument);
  cfg.degrade = true;
  EXPECT_THROW(
      run_encoder_campaign(*rig().encoder, rig().clf, rig().ds.test_x,
                           rig().ds.test_y, cfg, FaultTarget::kLevelMemory),
      std::invalid_argument);
}

}  // namespace
}  // namespace generic::resilience
