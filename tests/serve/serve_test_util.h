// Shared fixture for the serve suites: a small deterministic classifier
// (512 dims, 4 chunks, 3 classes) plus a labelled query set the model
// classifies well, so accuracy assertions have signal.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "hdc/hypervector.h"
#include "model/hdc_classifier.h"

namespace generic::serve::test {

struct TinyWorkload {
  model::HdcClassifier clf{512, 3, 128};
  std::vector<hdc::IntHV> queries;
  std::vector<int> labels;
};

inline TinyWorkload make_workload(std::size_t n_queries = 64) {
  TinyWorkload w;
  Rng rng(0x5EEDF00Dull);
  const std::size_t dims = 512;
  const int classes = 3;
  std::vector<hdc::IntHV> base(classes, hdc::IntHV(dims));
  for (auto& b : base)
    for (auto& v : b) v = rng.bernoulli(0.5) ? 1 : -1;
  std::vector<hdc::IntHV> train;
  std::vector<int> train_y;
  for (int c = 0; c < classes; ++c) {
    for (int i = 0; i < 20; ++i) {
      hdc::IntHV h = base[static_cast<std::size_t>(c)];
      for (auto& v : h)
        if (rng.bernoulli(0.05)) v = -v;
      train.push_back(h);
      train_y.push_back(c);
    }
  }
  w.clf.train_init(train, train_y);
  for (std::size_t i = 0; i < n_queries; ++i) {
    const int c = static_cast<int>(i % classes);
    hdc::IntHV h = base[static_cast<std::size_t>(c)];
    for (auto& v : h)
      if (rng.bernoulli(0.05)) v = -v;
    w.queries.push_back(h);
    w.labels.push_back(c);
  }
  return w;
}

}  // namespace generic::serve::test
