// The rtrace determinism contract (docs/observability.md): the full
// generic.rtrace.v1 stream, the flight ring, and the Chrome view recorded
// while the engine serves a stressed trace must render to byte-identical
// JSON at pool widths {1, 2, 7} and on every compiled kernel backend —
// every event is emitted on the virtual-time control thread, so seq
// numbers included, SIMD selection and lane count can never show. The
// stream is additionally pinned byte-for-byte by a committed golden
// fixture; to regenerate after an INTENTIONAL change run test_serve with
// GENERIC_UPDATE_GOLDEN=1 and --gtest_filter='RtraceGolden.*'.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "hdc/kernels.h"
#include "obs/rtrace.h"
#include "serve/engine.h"
#include "serve_test_util.h"

#ifndef GENERIC_GOLDEN_DIR
#error "GENERIC_GOLDEN_DIR must be defined by the build"
#endif

namespace generic::serve {
namespace {

namespace rtrace = obs::rtrace;

ServeConfig stress_config() {
  ServeConfig cfg;
  cfg.servers = 2;
  cfg.queue_capacity = 64;
  cfg.high_water = 32;
  cfg.low_water = 4;
  cfg.deadline_us = 4000;
  cfg.slo_us = 1500;
  cfg.max_attempts = 3;
  cfg.service_base_us = 900;
  cfg.service_jitter = 0.2;
  cfg.fault_rate = 0.2;
  cfg.fault_bit_rate = 0.5;
  cfg.min_dims = 128;
  cfg.cooldown = 4;
  cfg.compute_batch = 8;
  cfg.burn_min_events = 16;  // small trace: let the burn monitor speak
  return cfg;
}

std::vector<Request> make_trace(const ServeConfig& cfg, std::size_t n,
                                std::size_t num_queries) {
  Rng gen(cfg.seed ^ 0x0A11CE5ull);
  std::vector<Request> trace;
  std::uint64_t vt = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double gap = -std::log(1.0 - gen.uniform()) * 400.0;
    vt += static_cast<std::uint64_t>(
        std::max<long long>(std::llround(gap), 1));
    Request r;
    r.id = i;
    r.arrival_us = vt;
    r.deadline_us = vt + cfg.deadline_us;
    r.query = static_cast<std::size_t>(gen.below(num_queries));
    trace.push_back(r);
  }
  return trace;
}

/// One instrumented run; returns {rtrace json, flight json, chrome json}.
struct Capture {
  std::string rtrace;
  std::string flight;
  std::string chrome;
};

Capture run_once(const test::TinyWorkload& w,
                 const std::vector<Request>& trace, const ServeConfig& cfg,
                 std::size_t lanes) {
  rtrace::reset();
  rtrace::set_flight_capacity(128);  // small enough that the ring wraps
  rtrace::set_trace(true);
  rtrace::set_flight(true);
  {
    ThreadPool pool(lanes);
    ServeEngine engine(w.clf, w.queries, w.labels, cfg, pool);
    for (const Request& r : trace) (void)engine.submit(r);
    (void)engine.finish();
  }
  Capture c;
  c.rtrace = rtrace::rtrace_to_json();
  c.flight = rtrace::flight_to_json();
  c.chrome = rtrace::rtrace_to_chrome_json();
  rtrace::set_trace(false);
  rtrace::set_flight(false);
  rtrace::set_flight_capacity(rtrace::kDefaultFlightCapacity);
  rtrace::reset();
  return c;
}

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return {};
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

#if GENERIC_OBS_ENABLED

TEST(RtraceDeterminism, StreamsByteIdenticalAcrossLaneCounts) {
  const test::TinyWorkload w = test::make_workload(96);
  const ServeConfig cfg = stress_config();
  const auto trace = make_trace(cfg, 400, w.queries.size());

  const Capture baseline = run_once(w, trace, cfg, 1);
  // The run must actually exercise the interesting emission sites, or
  // identical streams would prove nothing.
  EXPECT_NE(baseline.rtrace.find("\"kind\": \"upset\""), std::string::npos);
  EXPECT_NE(baseline.rtrace.find("\"kind\": \"retry_attempt\""),
            std::string::npos);
  EXPECT_NE(baseline.rtrace.find("\"kind\": \"degrade_step\""),
            std::string::npos);
  EXPECT_NE(baseline.rtrace.find("\"kind\": \"slo_alert\""),
            std::string::npos);
  // The ring is smaller than the stream, so wrap accounting is in play.
  EXPECT_EQ(baseline.flight.find("\"dropped\": 0,"), std::string::npos);
  for (const std::size_t lanes : {2ul, 7ul}) {
    const Capture got = run_once(w, trace, cfg, lanes);
    EXPECT_EQ(baseline.rtrace, got.rtrace) << "rtrace differs, lanes=" << lanes;
    EXPECT_EQ(baseline.flight, got.flight) << "flight differs, lanes=" << lanes;
    EXPECT_EQ(baseline.chrome, got.chrome) << "chrome differs, lanes=" << lanes;
  }
}

TEST(RtraceDeterminism, StreamsByteIdenticalAcrossKernelBackends) {
  namespace k = hdc::kernels;
  const test::TinyWorkload w = test::make_workload(64);
  const ServeConfig cfg = stress_config();
  const auto trace = make_trace(cfg, 250, w.queries.size());

  const k::Backend saved = k::active_backend();
  k::set_backend(k::Backend::kScalar);
  const Capture baseline = run_once(w, trace, cfg, 2);
  for (k::Backend backend : k::compiled_backends()) {
    if (!k::available(backend) || backend == k::Backend::kScalar) continue;
    k::set_backend(backend);
    const Capture got = run_once(w, trace, cfg, 2);
    EXPECT_EQ(baseline.rtrace, got.rtrace)
        << "backend " << k::to_string(backend) << " leaked into the rtrace";
    EXPECT_EQ(baseline.flight, got.flight)
        << "backend " << k::to_string(backend) << " leaked into the flight log";
  }
  k::set_backend(saved);
}

// Byte-for-byte pin of the rtrace and flight documents for a fixed
// (workload, trace, config) — the schema freeze the CI rtrace job and any
// external consumer rely on.
TEST(RtraceGolden, StreamsMatchCommittedFixtures) {
  const test::TinyWorkload w = test::make_workload(64);
  const ServeConfig cfg = stress_config();
  const auto trace = make_trace(cfg, 250, w.queries.size());
  const Capture got = run_once(w, trace, cfg, 2);

  const struct {
    const char* file;
    const std::string& content;
  } fixtures[] = {
      {"serve_rtrace.json", got.rtrace},
      {"serve_flight.json", got.flight},
  };
  for (const auto& fx : fixtures) {
    const std::string path = std::string(GENERIC_GOLDEN_DIR) + "/" + fx.file;
    if (std::getenv("GENERIC_UPDATE_GOLDEN") != nullptr) {
      std::ofstream f(path, std::ios::binary | std::ios::trunc);
      ASSERT_TRUE(f) << "cannot write fixture " << path;
      f << fx.content;
      continue;
    }
    const std::string want = read_file(path);
    ASSERT_FALSE(want.empty())
        << "missing fixture " << path
        << " — run with GENERIC_UPDATE_GOLDEN=1 to create it";
    EXPECT_EQ(fx.content, want)
        << fx.file
        << " diverged from its committed fixture; if the change is "
           "intentional, regenerate with GENERIC_UPDATE_GOLDEN=1";
  }
  if (std::getenv("GENERIC_UPDATE_GOLDEN") != nullptr)
    GTEST_SKIP() << "fixtures regenerated under " << GENERIC_GOLDEN_DIR;
}

// The report's burn-rate alerts are part of the same determinism contract:
// same trace, same alert edges, at any lane count.
TEST(RtraceDeterminism, BurnAlertsAreDeterministic) {
  const test::TinyWorkload w = test::make_workload(64);
  ServeConfig cfg = stress_config();
  const auto trace = make_trace(cfg, 300, w.queries.size());

  std::vector<BurnAlert> baseline;
  for (const std::size_t lanes : {1ul, 2ul, 7ul}) {
    ThreadPool pool(lanes);
    ServeEngine engine(w.clf, w.queries, w.labels, cfg, pool);
    for (const Request& r : trace) (void)engine.submit(r);
    const ServeReport rep = engine.finish();
    ASSERT_FALSE(rep.slo_alerts.empty())
        << "stressed trace should burn error budget";
    EXPECT_TRUE(rep.slo_alerts.front().fired);
    for (const BurnAlert& a : rep.slo_alerts)
      EXPECT_GE(a.fast_burn, 0.0);
    if (lanes == 1ul) {
      baseline = rep.slo_alerts;
      continue;
    }
    ASSERT_EQ(baseline.size(), rep.slo_alerts.size()) << "lanes=" << lanes;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      EXPECT_EQ(baseline[i].vt, rep.slo_alerts[i].vt);
      EXPECT_EQ(baseline[i].fired, rep.slo_alerts[i].fired);
      EXPECT_EQ(baseline[i].fast_burn, rep.slo_alerts[i].fast_burn);
      EXPECT_EQ(baseline[i].slow_burn, rep.slo_alerts[i].slow_burn);
    }
  }
}

#else  // GENERIC_OBS_ENABLED == 0

// Obs-off builds must still run instrumented-looking configurations and
// produce empty-but-valid documents (the tools' --rtrace/--flight-dump
// outputs under -DGENERIC_OBS=OFF).
TEST(RtraceDeterminism, ObsOffRunProducesEmptyButValidDocuments) {
  const test::TinyWorkload w = test::make_workload(32);
  const ServeConfig cfg = stress_config();
  const auto trace = make_trace(cfg, 100, w.queries.size());
  const Capture got = run_once(w, trace, cfg, 2);
  EXPECT_NE(got.rtrace.find("\"schema\": \"generic.rtrace.v1\""),
            std::string::npos);
  EXPECT_NE(got.rtrace.find("\"obs_enabled\": false"), std::string::npos);
  EXPECT_NE(got.rtrace.find("\"events\": []"), std::string::npos);
  EXPECT_NE(got.flight.find("\"schema\": \"generic.flight.v1\""),
            std::string::npos);
  EXPECT_NE(got.flight.find("\"events\": []"), std::string::npos);
  EXPECT_NE(got.chrome.find("\"traceEvents\""), std::string::npos);
}

#endif  // GENERIC_OBS_ENABLED

}  // namespace
}  // namespace generic::serve
