// ServeEngine behaviour: deadline expiry (at completion and fail-fast at
// dequeue), shed ordering at the high-water mark, retry exhaustion,
// degradation ladder transitions in both directions, and exact agreement
// of served predictions with the predict_reduced / predict_masked goldens.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.h"
#include "serve/engine.h"
#include "serve_test_util.h"

namespace generic::serve {
namespace {

using test::TinyWorkload;
using test::make_workload;

/// Deterministic scenario knobs: no service jitter, no faults; individual
/// tests override what they exercise.
ServeConfig base_config() {
  ServeConfig cfg;
  cfg.servers = 1;
  cfg.queue_capacity = 64;
  cfg.high_water = 48;
  cfg.service_base_us = 1000;
  cfg.service_jitter = 0.0;
  cfg.fault_rate = 0.0;
  cfg.deadline_us = 100000;
  cfg.slo_us = 100000;  // controller never engages unless asked
  cfg.min_dims = 512;   // single-rung ladder unless asked
  cfg.compute_batch = 4;
  return cfg;
}

Request make_request(std::uint64_t id, std::uint64_t arrival,
                     std::uint64_t deadline_us, std::size_t query) {
  Request r;
  r.id = id;
  r.arrival_us = arrival;
  r.deadline_us = arrival + deadline_us;
  r.query = query;
  return r;
}

TEST(ServeEngineTest, UnderloadServesEverythingOkAndMatchesPredict) {
  const TinyWorkload w = make_workload(24);
  ThreadPool pool(2);
  const ServeConfig cfg = base_config();
  ServeEngine engine(w.clf, w.queries, w.labels, cfg, pool);

  std::vector<ResponseFuture> futures;
  for (std::uint64_t i = 0; i < 24; ++i)
    futures.push_back(engine.submit(
        make_request(i, (i + 1) * 2000, cfg.deadline_us, i % 24)));
  const ServeReport rep = engine.finish();

  EXPECT_EQ(rep.requests, 24u);
  EXPECT_EQ(rep.served, 24u);
  EXPECT_EQ(rep.outcomes[static_cast<std::size_t>(Outcome::kOk)], 24u);
  EXPECT_EQ(rep.attempts, 24u);
  EXPECT_EQ(rep.retries, 0u);
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const auto r = futures[i].try_get();
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->outcome, Outcome::kOk);
    EXPECT_EQ(r->attempts, 1u);
    EXPECT_EQ(r->dims_used, 512u);
    EXPECT_EQ(r->predicted, w.clf.predict(w.queries[i % 24]));
    EXPECT_EQ(r->latency_us, 1000u);  // exactly one jitter-free service
  }
}

TEST(ServeEngineTest, DeadlineExpiryAtCompletionAndAtDequeue) {
  const TinyWorkload w = make_workload(8);
  ThreadPool pool(1);
  ServeConfig cfg = base_config();
  cfg.deadline_us = 1500;  // one service fits (1000us), two do not
  ServeEngine engine(w.clf, w.queries, w.labels, cfg, pool);

  // Five simultaneous arrivals, one server: r0 serves in budget, r1's
  // completion lands at +2000 > deadline, r2..r4 are already expired when a
  // server frees and must fail fast at dequeue without burning service.
  std::vector<ResponseFuture> futures;
  for (std::uint64_t i = 0; i < 5; ++i)
    futures.push_back(engine.submit(make_request(i, 1000, 1500, i)));
  const ServeReport rep = engine.finish();

  EXPECT_EQ(rep.outcomes[static_cast<std::size_t>(Outcome::kOk)], 1u);
  EXPECT_EQ(rep.outcomes[static_cast<std::size_t>(Outcome::kTimeout)], 4u);
  const auto r0 = futures[0].try_get();
  ASSERT_TRUE(r0.has_value());
  EXPECT_EQ(r0->outcome, Outcome::kOk);
  const auto r1 = futures[1].try_get();
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->outcome, Outcome::kTimeout);
  EXPECT_EQ(r1->attempts, 1u);  // was in service when the budget ran out
  EXPECT_EQ(r1->finish_us, 3000u);
  for (std::size_t i = 2; i < 5; ++i) {
    const auto r = futures[i].try_get();
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->outcome, Outcome::kTimeout);
    EXPECT_EQ(r->attempts, 0u);  // failed fast at dequeue
    EXPECT_EQ(r->predicted, -1);
  }
}

TEST(ServeEngineTest, ShedsNewestArrivalsAtHighWater) {
  const TinyWorkload w = make_workload(8);
  ThreadPool pool(1);
  ServeConfig cfg = base_config();
  cfg.high_water = 2;
  cfg.service_base_us = 10000;
  ServeEngine engine(w.clf, w.queries, w.labels, cfg, pool);

  // One server busy + two pending == high water: arrivals 3..5 shed, in
  // arrival order, while the earlier ones are eventually served.
  std::vector<ResponseFuture> futures;
  for (std::uint64_t i = 0; i < 6; ++i)
    futures.push_back(engine.submit(make_request(i, 100, 100000, i)));
  const ServeReport rep = engine.finish();

  EXPECT_EQ(rep.outcomes[static_cast<std::size_t>(Outcome::kOk)], 3u);
  EXPECT_EQ(rep.outcomes[static_cast<std::size_t>(Outcome::kShed)], 3u);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_EQ(futures[i].try_get()->outcome, Outcome::kOk) << i;
  for (std::size_t i = 3; i < 6; ++i) {
    const auto r = futures[i].try_get();
    EXPECT_EQ(r->outcome, Outcome::kShed) << i;
    EXPECT_EQ(r->attempts, 0u);
    EXPECT_EQ(r->finish_us, 100u);  // refused at the arrival instant
  }
}

TEST(ServeEngineTest, RetryExhaustionFails) {
  const TinyWorkload w = make_workload(4);
  ThreadPool pool(2);
  ServeConfig cfg = base_config();
  cfg.fault_rate = 1.0;      // every attempt upsets...
  cfg.fault_bit_rate = 0.5;  // ...and certainly corrupts
  cfg.max_attempts = 2;
  ServeEngine engine(w.clf, w.queries, w.labels, cfg, pool);

  std::vector<ResponseFuture> futures;
  for (std::uint64_t i = 0; i < 4; ++i)
    futures.push_back(
        engine.submit(make_request(i, (i + 1) * 20000, 100000, i)));
  const ServeReport rep = engine.finish();

  EXPECT_EQ(rep.outcomes[static_cast<std::size_t>(Outcome::kFailed)], 4u);
  EXPECT_EQ(rep.served, 0u);
  EXPECT_EQ(rep.attempts, 8u);
  EXPECT_EQ(rep.retries, 4u);
  for (const auto& f : futures) {
    const auto r = f.try_get();
    EXPECT_EQ(r->outcome, Outcome::kFailed);
    EXPECT_EQ(r->attempts, 2u);
    EXPECT_EQ(r->predicted, -1);
  }
}

TEST(ServeEngineTest, TransientFaultsRetryThenServeCorrectly) {
  const TinyWorkload w = make_workload(40);
  ThreadPool pool(2);
  ServeConfig cfg = base_config();
  cfg.fault_rate = 0.4;
  cfg.fault_bit_rate = 0.5;
  cfg.max_attempts = 8;  // exhaustion essentially impossible
  ServeEngine engine(w.clf, w.queries, w.labels, cfg, pool);

  std::vector<ResponseFuture> futures;
  for (std::uint64_t i = 0; i < 40; ++i)
    futures.push_back(
        engine.submit(make_request(i, (i + 1) * 20000, 100000, i)));
  const ServeReport rep = engine.finish();

  const auto retried = rep.outcomes[static_cast<std::size_t>(Outcome::kRetried)];
  EXPECT_GT(retried, 0u);
  EXPECT_EQ(rep.served, 40u);
  EXPECT_EQ(rep.retries, rep.attempts - 40u);
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const auto r = futures[i].try_get();
    ASSERT_TRUE(r.has_value());
    if (r->outcome == Outcome::kRetried) {
      EXPECT_GT(r->attempts, 1u);
    }
    if (r->outcome == Outcome::kOk) {
      EXPECT_EQ(r->attempts, 1u);
    }
    // Retries never change the answer: served == full-dims golden.
    EXPECT_EQ(r->predicted, w.clf.predict(w.queries[i]));
  }
}

TEST(ServeEngineTest, OverloadWalksLadderDownAndRecovers) {
  const TinyWorkload w = make_workload(64);
  ThreadPool pool(2);
  ServeConfig cfg = base_config();
  cfg.min_dims = 128;  // ladder {512, 256, 128}
  cfg.slo_us = 1500;
  cfg.deadline_us = 4000;
  cfg.cooldown = 2;
  cfg.high_water = 40;
  ServeEngine engine(w.clf, w.queries, w.labels, cfg, pool);
  ASSERT_EQ(engine.ladder(), (std::vector<std::size_t>{512, 256, 128}));

  // Phase 1 — overload: 2000 rps against 1000 rps full-dims capacity.
  std::vector<Request> requests;
  std::uint64_t vt = 0;
  for (std::uint64_t i = 0; i < 120; ++i) {
    vt += 500;
    requests.push_back(make_request(i, vt, cfg.deadline_us, i % 64));
  }
  // Phase 2 — calm: widely spaced arrivals let the EWMA sink and the
  // ladder step back up.
  for (std::uint64_t i = 120; i < 160; ++i) {
    vt += 10000;
    requests.push_back(make_request(i, vt, cfg.deadline_us, i % 64));
  }
  std::vector<ResponseFuture> futures;
  for (const Request& r : requests) futures.push_back(engine.submit(r));
  const ServeReport rep = engine.finish();

  EXPECT_GT(rep.steps_down, 0u);
  EXPECT_GT(rep.steps_up, 0u);
  EXPECT_EQ(rep.final_rung, 0u);  // recovered to full dimensions
  EXPECT_GT(rep.rungs[1].served + rep.rungs[2].served, 0u);
  EXPECT_GT(rep.outcomes[static_cast<std::size_t>(Outcome::kDegraded)], 0u);

  // Accuracy-at-degradation golden: every degraded response equals
  // predict_reduced at its rung with Updated norms.
  std::uint64_t checked = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const auto r = futures[i].try_get();
    ASSERT_TRUE(r.has_value());
    if (r->outcome != Outcome::kDegraded) continue;
    EXPECT_LT(r->dims_used, 512u);
    EXPECT_EQ(r->predicted,
              w.clf.predict_reduced(w.queries[requests[i].query],
                                    r->dims_used, model::NormMode::kUpdated));
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST(ServeEngineTest, MaskedServingMatchesPredictMasked) {
  const TinyWorkload w = make_workload(16);
  ThreadPool pool(2);
  const ServeConfig cfg = base_config();
  const std::vector<bool> chunk_ok = {true, false, true, true};
  ServeEngine engine(w.clf, w.queries, w.labels, cfg, pool, chunk_ok);

  std::vector<ResponseFuture> futures;
  for (std::uint64_t i = 0; i < 16; ++i)
    futures.push_back(
        engine.submit(make_request(i, (i + 1) * 5000, 100000, i)));
  const ServeReport rep = engine.finish();

  // Serving around a dead block is degraded service even at the full rung.
  EXPECT_EQ(rep.outcomes[static_cast<std::size_t>(Outcome::kDegraded)], 16u);
  EXPECT_EQ(rep.rungs[0].active_chunks, 3u);
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const auto r = futures[i].try_get();
    EXPECT_EQ(r->predicted, w.clf.predict_masked(w.queries[i], chunk_ok));
  }
}

TEST(ServeEngineTest, RejectsLadderRungWithNoHealthyChunk) {
  const TinyWorkload w = make_workload(4);
  ThreadPool pool(1);
  ServeConfig cfg = base_config();
  cfg.min_dims = 128;  // floor rung is exactly chunk 0
  const std::vector<bool> chunk_ok = {false, true, true, true};
  EXPECT_THROW(ServeEngine(w.clf, w.queries, w.labels, cfg, pool, chunk_ok),
               std::invalid_argument);
}

/// Scripted lifecycle hook: records every observation and hands out one
/// prepared update when the virtual clock reaches its vt.
class ScriptedLifecycle : public ModelLifecycle {
 public:
  void observe(const ServedObservation& obs) override { seen.push_back(obs); }

  std::optional<ModelUpdate> poll(std::uint64_t now) override {
    if (pending.has_value() && now >= pending->vt) {
      ModelUpdate u = std::move(*pending);
      pending.reset();
      return u;
    }
    return std::nullopt;
  }

  std::vector<ServedObservation> seen;
  std::optional<ModelUpdate> pending;
};

/// A same-geometry model that disagrees with `clf` on purpose: classes 0
/// and 1 trade accumulators (norms recomputed), so post-swap predictions
/// are distinguishable from pre-swap ones.
model::HdcClassifier make_swapped_classes(const model::HdcClassifier& clf) {
  model::HdcClassifier other = clf;
  std::swap(other.mutable_class_vector(0), other.mutable_class_vector(1));
  other.recompute_norms();
  return other;
}

TEST(ServeEngineTest, HotSwapInstallsBetweenBatchesAndAttributesVersions) {
  const TinyWorkload w = make_workload(48);
  ThreadPool pool(2);
  const ServeConfig cfg = base_config();
  const auto next = std::make_shared<const model::HdcClassifier>(
      make_swapped_classes(w.clf));

  ScriptedLifecycle lc;
  lc.pending = ModelUpdate{next, 1, 50000, false};
  ServeEngine engine(w.clf, w.queries, w.labels, cfg, pool, {}, &lc);

  std::vector<ResponseFuture> futures;
  for (std::uint64_t i = 0; i < 48; ++i) {
    Request r = make_request(i, (i + 1) * 2000, cfg.deadline_us, i);
    r.canary = (i % 4 == 0);
    futures.push_back(engine.submit(r));
  }
  const ServeReport rep = engine.finish();

  // Exactly one swap, no rollback, and the engine now carries two versions
  // whose tallies account for every served request exactly once.
  ASSERT_EQ(rep.swaps.size(), 1u);
  EXPECT_FALSE(rep.swaps[0].rollback);
  EXPECT_EQ(rep.swaps[0].version, 1u);
  EXPECT_GE(rep.swaps[0].vt, 50000u);
  ASSERT_EQ(rep.versions.size(), 2u);
  EXPECT_EQ(rep.versions[0].version, 0u);
  EXPECT_EQ(rep.versions[1].version, 1u);
  EXPECT_GT(rep.versions[0].served, 0u);
  EXPECT_GT(rep.versions[1].served, 0u);
  EXPECT_EQ(rep.versions[0].served + rep.versions[1].served, rep.served);

  // No request dropped and none served by a half-installed model: every
  // future resolves, and requests arriving after the swap instant match
  // the NEW model's golden prediction while the earliest requests match
  // the old one.
  EXPECT_EQ(rep.served, 48u);
  std::uint64_t checked_new = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const auto r = futures[i].try_get();
    ASSERT_TRUE(r.has_value()) << "unresolved future " << i;
    const std::uint64_t arrival = (i + 1) * 2000;
    if (arrival > rep.swaps[0].vt) {
      EXPECT_EQ(r->predicted, next->predict(w.queries[i])) << i;
      ++checked_new;
    }
  }
  EXPECT_GT(checked_new, 0u);
  EXPECT_EQ(futures[0].try_get()->predicted, w.clf.predict(w.queries[0]));

  // The observation stream carries every served request in virtual order,
  // with canary flags and normalized margins intact.
  ASSERT_EQ(lc.seen.size(), rep.served);
  std::uint64_t canaries = 0;
  for (std::size_t i = 0; i < lc.seen.size(); ++i) {
    const ServedObservation& o = lc.seen[i];
    EXPECT_GE(o.margin, 0.0);
    EXPECT_LE(o.margin, 1.0);
    EXPECT_EQ(o.label, w.labels[o.query]);
    if (o.canary) ++canaries;
    if (i > 0) {
      EXPECT_GE(o.vt, lc.seen[i - 1].vt);
    }
  }
  EXPECT_EQ(canaries, 12u);
}

TEST(ServeEngineTest, RollbackIsRecordedWithoutInstalling) {
  const TinyWorkload w = make_workload(16);
  ThreadPool pool(1);
  const ServeConfig cfg = base_config();
  ScriptedLifecycle lc;
  lc.pending = ModelUpdate{nullptr, 1, 10000, true};
  ServeEngine engine(w.clf, w.queries, w.labels, cfg, pool, {}, &lc);

  std::vector<ResponseFuture> futures;
  for (std::uint64_t i = 0; i < 16; ++i)
    futures.push_back(
        engine.submit(make_request(i, (i + 1) * 2000, cfg.deadline_us, i)));
  const ServeReport rep = engine.finish();

  ASSERT_EQ(rep.swaps.size(), 1u);
  EXPECT_TRUE(rep.swaps[0].rollback);
  ASSERT_EQ(rep.versions.size(), 1u);  // nothing installed
  EXPECT_EQ(rep.versions[0].served, rep.served);
  for (std::size_t i = 0; i < futures.size(); ++i)
    EXPECT_EQ(futures[i].try_get()->predicted, w.clf.predict(w.queries[i]));
}

TEST(ServeEngineTest, SubmitAfterFinishResolvesShed) {
  const TinyWorkload w = make_workload(4);
  ThreadPool pool(1);
  ServeEngine engine(w.clf, w.queries, w.labels, base_config(), pool);
  engine.submit(make_request(0, 100, 1000, 0));
  (void)engine.finish();
  const auto r = engine.submit(make_request(1, 200, 1000, 1)).try_get();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->outcome, Outcome::kShed);
}

// tick(vt) is the discrete-event coordinator handle (fleet::run_closed_loop):
// it must resolve every future finishing <= vt before returning, report the
// next scheduled event exactly, and go kNoEvent when idle.
TEST(ServeEngineTest, TickResolvesFuturesAndReportsTheNextEvent) {
  const TinyWorkload w = make_workload(8);
  ThreadPool pool(1);
  const ServeConfig cfg = base_config();  // 1 server, 1000us, jitter-free
  ServeEngine engine(w.clf, w.queries, w.labels, cfg, pool);

  EXPECT_EQ(engine.tick(0), ServeEngine::kNoEvent);  // idle engine

  // Two back-to-back requests on one lane: completions at 2000 and 3000.
  auto f0 = engine.submit(make_request(0, 1000, cfg.deadline_us, 0));
  auto f1 = engine.submit(make_request(1, 1000, cfg.deadline_us, 1));

  const std::uint64_t next = engine.tick(1500);
  EXPECT_EQ(next, 2000u);  // first completion still pending
  EXPECT_FALSE(f0.try_get().has_value());

  EXPECT_EQ(engine.tick(2000), 3000u);  // first done, second scheduled
  const auto r0 = f0.try_get();
  ASSERT_TRUE(r0.has_value());
  EXPECT_EQ(r0->outcome, Outcome::kOk);
  EXPECT_EQ(r0->finish_us, 2000u);
  EXPECT_FALSE(f1.try_get().has_value());

  EXPECT_EQ(engine.tick(5000), ServeEngine::kNoEvent);  // fully drained
  const auto r1 = f1.try_get();
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->finish_us, 3000u);

  const ServeReport rep = engine.finish();
  EXPECT_EQ(rep.served, 2u);
}

#if GENERIC_OBS_ENABLED
// Several engines in one process must tally into disjoint registry metrics:
// cfg.model_id namespaces them as "serve.<stem>{model=<id>}", while an
// empty id keeps the legacy process-global "serve.<stem>" series.
TEST(ServeEngineTest, RegistryMetricsAreNamespacedPerModel) {
  obs::Registry& reg = obs::Registry::instance();
  obs::Counter& alpha = reg.counter("serve.requests{model=alpha}");
  obs::Counter& beta = reg.counter("serve.requests{model=beta}");
  obs::Counter& legacy = reg.counter("serve.requests");
  alpha.reset_value();
  beta.reset_value();
  legacy.reset_value();

  const TinyWorkload w = make_workload(8);
  ThreadPool pool(2);
  ServeConfig cfg_a = base_config();
  cfg_a.model_id = "alpha";
  ServeConfig cfg_b = base_config();
  cfg_b.model_id = "beta";
  ServeEngine ea(w.clf, w.queries, w.labels, cfg_a, pool);
  ServeEngine eb(w.clf, w.queries, w.labels, cfg_b, pool);

  for (std::uint64_t i = 0; i < 5; ++i)
    ea.submit(make_request(i, (i + 1) * 2000, 100000, i));
  for (std::uint64_t i = 0; i < 3; ++i)
    eb.submit(make_request(i, (i + 1) * 2000, 100000, i));
  (void)ea.finish();
  (void)eb.finish();

  EXPECT_EQ(alpha.value(), 5u);
  EXPECT_EQ(beta.value(), 3u);
  EXPECT_EQ(legacy.value(), 0u) << "namespaced engines leaked into the "
                                   "process-global series";

  // An engine with no model_id still feeds the legacy series.
  ServeEngine legacy_engine(w.clf, w.queries, w.labels, base_config(), pool);
  legacy_engine.submit(make_request(0, 1000, 100000, 0));
  (void)legacy_engine.finish();
  EXPECT_EQ(legacy.value(), 1u);
  EXPECT_EQ(alpha.value(), 5u);
}
#endif  // GENERIC_OBS_ENABLED

}  // namespace
}  // namespace generic::serve
