// Serving policies: ladder construction, backoff determinism and bounds,
// and the SLO controller's step-down / step-up / cooldown behaviour.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "serve/policy.h"

namespace generic::serve {
namespace {

TEST(ServePolicyTest, LadderMatchesFig5) {
  EXPECT_EQ(dims_ladder(4096, 128, 512),
            (std::vector<std::size_t>{4096, 2048, 1024, 512}));
}

TEST(ServePolicyTest, LadderRoundsRungsToChunkGrid) {
  // 768 halves to 384 then 192; 192 rounds down to the 128 grid == floor.
  EXPECT_EQ(dims_ladder(768, 128, 100),
            (std::vector<std::size_t>{768, 384, 128}));
}

TEST(ServePolicyTest, LadderFloorNeverBelowOneChunk) {
  EXPECT_EQ(dims_ladder(512, 128, 0),
            (std::vector<std::size_t>{512, 256, 128}));
}

TEST(ServePolicyTest, LadderDegenerateSingleRung) {
  EXPECT_EQ(dims_ladder(512, 128, 512), (std::vector<std::size_t>{512}));
}

TEST(ServePolicyTest, LadderRejectsNonChunkMultiple) {
  EXPECT_THROW(dims_ladder(1000, 128, 128), std::invalid_argument);
  EXPECT_THROW(dims_ladder(0, 128, 128), std::invalid_argument);
}

TEST(ServePolicyTest, BackoffDeterministicAndBounded) {
  const BackoffPolicy policy(100, 0.25);
  Rng a(42), b(42);
  for (std::uint32_t attempt = 1; attempt <= 5; ++attempt) {
    const std::uint64_t da = policy.delay_us(attempt, a);
    const std::uint64_t db = policy.delay_us(attempt, b);
    EXPECT_EQ(da, db);  // same stream, same delays
    const double exp = 100.0 * static_cast<double>(1u << (attempt - 1));
    EXPECT_GE(static_cast<double>(da), exp * 0.75 - 1.0);
    EXPECT_LE(static_cast<double>(da), exp * 1.25 + 1.0);
  }
}

TEST(ServePolicyTest, BackoffRejectsAttemptZero) {
  const BackoffPolicy policy(100, 0.25);
  Rng rng(1);
  EXPECT_THROW(policy.delay_us(0, rng), std::invalid_argument);
}

ServeConfig controller_config() {
  ServeConfig cfg;
  cfg.slo_us = 1000;
  cfg.ewma_alpha = 1.0;  // EWMA == last sample: crisp thresholds
  cfg.cooldown = 0;
  cfg.step_up_frac = 0.5;
  cfg.low_water = 4;
  return cfg;
}

TEST(ServePolicyTest, ControllerWalksDownUnderSloBreach) {
  DegradeController ctl({4096, 2048, 1024, 512}, controller_config());
  EXPECT_EQ(ctl.dims(), 4096u);
  for (int i = 0; i < 10; ++i) ctl.on_completion(2000, 0);
  EXPECT_EQ(ctl.rung(), 3u);  // clamped at the floor rung
  EXPECT_EQ(ctl.dims(), 512u);
  EXPECT_EQ(ctl.steps_down(), 3u);
}

TEST(ServePolicyTest, ControllerStepsUpOnlyWhenCalmAndShallow) {
  DegradeController ctl({4096, 2048, 1024, 512}, controller_config());
  for (int i = 0; i < 4; ++i) ctl.on_completion(2000, 0);
  ASSERT_EQ(ctl.rung(), 3u);
  // Fast latencies but a deep queue: must NOT step up.
  for (int i = 0; i < 4; ++i) ctl.on_completion(100, 10);
  EXPECT_EQ(ctl.rung(), 3u);
  // Fast and shallow: walks back to full dimensions.
  for (int i = 0; i < 4; ++i) ctl.on_completion(100, 0);
  EXPECT_EQ(ctl.rung(), 0u);
  EXPECT_EQ(ctl.steps_up(), 3u);
}

TEST(ServePolicyTest, ControllerLatencyBetweenThresholdsHolds) {
  DegradeController ctl({4096, 2048}, controller_config());
  ctl.on_completion(2000, 0);
  ASSERT_EQ(ctl.rung(), 1u);
  // 600us: below the SLO but above step_up_frac * slo == 500us.
  for (int i = 0; i < 8; ++i) ctl.on_completion(600, 0);
  EXPECT_EQ(ctl.rung(), 1u);
}

TEST(ServePolicyTest, ControllerCooldownSpacesMoves) {
  ServeConfig cfg = controller_config();
  cfg.cooldown = 3;
  DegradeController ctl({4096, 2048, 1024, 512}, cfg);
  ctl.on_completion(2000, 0);  // first move is allowed immediately
  EXPECT_EQ(ctl.rung(), 1u);
  ctl.on_completion(2000, 0);  // cooldown: held
  ctl.on_completion(2000, 0);
  ctl.on_completion(2000, 0);
  EXPECT_EQ(ctl.rung(), 1u);
  ctl.on_completion(2000, 0);  // cooldown elapsed
  EXPECT_EQ(ctl.rung(), 2u);
}

TEST(ServePolicyTest, ControllerRejectsEmptyLadder) {
  EXPECT_THROW(DegradeController({}, controller_config()),
               std::invalid_argument);
}

TEST(ServePolicyTest, OutcomeNamesAreStable) {
  EXPECT_EQ(outcome_name(Outcome::kOk), "ok");
  EXPECT_EQ(outcome_name(Outcome::kRetried), "retried");
  EXPECT_EQ(outcome_name(Outcome::kDegraded), "degraded");
  EXPECT_EQ(outcome_name(Outcome::kShed), "shed");
  EXPECT_EQ(outcome_name(Outcome::kTimeout), "timeout");
  EXPECT_EQ(outcome_name(Outcome::kFailed), "failed");
}

}  // namespace
}  // namespace generic::serve
