// Thread-count independence of the serving engine: the full
// generic.serve.v1 report — every admission, shed, retry, timeout and
// ladder move, every latency bucket and accuracy tally — must render to
// byte-identical JSON for pool widths {1, 2, 7}, and re-running the same
// width must reproduce itself. This extends the seed-equivalence contract
// of tests/model/test_parallel_determinism.cpp up through the serving
// layer: the virtual-time control loop is the only decision maker, and the
// pool only executes prediction batches that are themselves bit-identical
// at any lane count.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "hdc/kernels.h"
#include "serve/engine.h"
#include "serve_test_util.h"

namespace generic::serve {
namespace {

ServeConfig stress_config() {
  ServeConfig cfg;
  cfg.servers = 2;
  cfg.queue_capacity = 64;
  cfg.high_water = 32;
  cfg.low_water = 4;
  cfg.deadline_us = 4000;
  cfg.slo_us = 1500;
  cfg.max_attempts = 3;
  cfg.service_base_us = 900;
  cfg.service_jitter = 0.2;
  cfg.fault_rate = 0.2;  // plenty of retries in the mix
  cfg.fault_bit_rate = 0.5;
  cfg.min_dims = 128;
  cfg.cooldown = 4;
  cfg.compute_batch = 8;
  return cfg;
}

/// Seeded open-loop trace shared by every run: Poisson arrivals at ~2500
/// rps (over the 2 * 1111 rps full-dims capacity, so everything happens:
/// queueing, shedding, degradation, timeouts, retries).
std::vector<Request> make_trace(const ServeConfig& cfg, std::size_t n,
                                std::size_t num_queries) {
  Rng gen(cfg.seed ^ 0x0A11CE5ull);
  std::vector<Request> trace;
  std::uint64_t vt = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double gap = -std::log(1.0 - gen.uniform()) * 400.0;
    vt += static_cast<std::uint64_t>(
        std::max<long long>(std::llround(gap), 1));
    Request r;
    r.id = i;
    r.arrival_us = vt;
    r.deadline_us = vt + cfg.deadline_us;
    r.query = static_cast<std::size_t>(gen.below(num_queries));
    trace.push_back(r);
  }
  return trace;
}

std::string run_once(const test::TinyWorkload& w,
                     const std::vector<Request>& trace,
                     const ServeConfig& cfg, std::size_t lanes) {
  ThreadPool pool(lanes);
  ServeEngine engine(w.clf, w.queries, w.labels, cfg, pool);
  std::vector<ResponseFuture> futures;
  for (const Request& r : trace) futures.push_back(engine.submit(r));
  const ServeReport rep = engine.finish();
  for (const auto& f : futures)  // every future resolved after finish()
    EXPECT_TRUE(f.try_get().has_value());
  return serve_report_to_json(rep);
}

TEST(ServeDeterminismTest, ReportByteIdenticalAcrossLaneCounts) {
  const test::TinyWorkload w = test::make_workload(96);
  const ServeConfig cfg = stress_config();
  const auto trace = make_trace(cfg, 400, w.queries.size());

  const std::string baseline = run_once(w, trace, cfg, 1);
  // The scenario must actually exercise the resilient paths, or identical
  // reports would prove nothing.
  EXPECT_EQ(baseline.find("\"degraded\": 0,"), std::string::npos);
  EXPECT_EQ(baseline.find("\"retried\": 0,"), std::string::npos);
  EXPECT_NE(baseline.find("\"schema\": \"generic.serve.v1\""),
            std::string::npos);
  for (const std::size_t lanes : {2ul, 7ul}) {
    EXPECT_EQ(baseline, run_once(w, trace, cfg, lanes))
        << "report differs at lanes=" << lanes;
  }
}

TEST(ServeDeterminismTest, SameLaneCountReproducesItself) {
  const test::TinyWorkload w = test::make_workload(64);
  const ServeConfig cfg = stress_config();
  const auto trace = make_trace(cfg, 200, w.queries.size());
  EXPECT_EQ(run_once(w, trace, cfg, 2), run_once(w, trace, cfg, 2));
}

// End-to-end backend invariance: the generic.serve.v1 report must be
// byte-identical no matter which XOR+popcount kernel backend
// (hdc/kernels.h) serves the predictions — SIMD selection can never be
// observable in a report, only in wall-clock.
TEST(ServeKernelInvariance, ReportByteIdenticalAcrossKernelBackends) {
  namespace k = hdc::kernels;
  const test::TinyWorkload w = test::make_workload(64);
  const ServeConfig cfg = stress_config();
  const auto trace = make_trace(cfg, 250, w.queries.size());

  const k::Backend saved = k::active_backend();
  k::set_backend(k::Backend::kScalar);
  const std::string baseline = run_once(w, trace, cfg, 2);
  EXPECT_NE(baseline.find("\"schema\": \"generic.serve.v1\""),
            std::string::npos);
  for (k::Backend backend : k::compiled_backends()) {
    if (!k::available(backend) || backend == k::Backend::kScalar) continue;
    k::set_backend(backend);
    EXPECT_EQ(run_once(w, trace, cfg, 2), baseline)
        << "backend " << k::to_string(backend)
        << " leaked into the serve report";
  }
  k::set_backend(saved);
}

TEST(ServeDeterminismTest, ReportCountsAreConsistent) {
  const test::TinyWorkload w = test::make_workload(64);
  const ServeConfig cfg = stress_config();
  const auto trace = make_trace(cfg, 300, w.queries.size());
  ThreadPool pool(2);
  ServeEngine engine(w.clf, w.queries, w.labels, cfg, pool);
  for (const Request& r : trace) (void)engine.submit(r);
  const ServeReport rep = engine.finish();

  std::uint64_t total = 0;
  for (const auto c : rep.outcomes) total += c;
  EXPECT_EQ(total, rep.requests);
  EXPECT_EQ(rep.requests, trace.size());
  EXPECT_EQ(rep.served,
            rep.outcomes[static_cast<std::size_t>(Outcome::kOk)] +
                rep.outcomes[static_cast<std::size_t>(Outcome::kRetried)] +
                rep.outcomes[static_cast<std::size_t>(Outcome::kDegraded)]);
  EXPECT_EQ(rep.latency.count, rep.served);
  std::uint64_t rung_served = 0, rung_correct = 0;
  for (const auto& r : rep.rungs) {
    rung_served += r.served;
    rung_correct += r.correct;
  }
  EXPECT_EQ(rung_served, rep.served);
  EXPECT_EQ(rung_correct, rep.correct);
  EXPECT_GE(rep.attempts, rep.served);
}

}  // namespace
}  // namespace generic::serve
