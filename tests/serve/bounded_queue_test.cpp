// BoundedQueue: FIFO order, capacity refusal, close semantics, and an
// MPMC stress that the tsan preset runs under ThreadSanitizer.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/bounded_queue.h"

namespace generic::serve {
namespace {

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> q(16);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 10; ++i) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueueTest, TryPushRefusesWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.size(), 2u);
  auto v = q.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1);
  EXPECT_TRUE(q.try_push(3));
}

TEST(BoundedQueueTest, TryPopOnEmpty) {
  BoundedQueue<int> q(2);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BoundedQueueTest, CloseDrainsThenEnds) {
  BoundedQueue<int> q(8);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.push(3));      // refused after close
  EXPECT_FALSE(q.try_push(3));
  auto a = q.pop();
  auto b = q.pop();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, 1);
  EXPECT_EQ(*b, 2);
  EXPECT_FALSE(q.pop().has_value());  // closed and drained
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(4);
  std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
  q.close();
  consumer.join();
}

TEST(BoundedQueueTest, MpmcStressKeepsEveryItem) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 1000;
  BoundedQueue<std::uint64_t> q(8);  // small: exercises backpressure

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const auto item = static_cast<std::uint64_t>(p) * kPerProducer +
                          static_cast<std::uint64_t>(i);
        ASSERT_TRUE(q.push(item));
      }
    });
  }
  std::mutex mu;
  std::vector<std::uint64_t> seen;
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      std::vector<std::uint64_t> local;
      while (auto item = q.pop()) local.push_back(*item);
      std::lock_guard<std::mutex> lock(mu);
      seen.insert(seen.end(), local.begin(), local.end());
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  ASSERT_EQ(seen.size(),
            static_cast<std::size_t>(kProducers) * kPerProducer);
  std::sort(seen.begin(), seen.end());
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);
}

// Producers racing close() mid-stream (the ServeEngine::finish path while
// fleet coordinators are still submitting). Run under TSan this pins the
// close/push/pop synchronization; under any build it pins the accounting:
// every push that reported success is popped exactly once, every push
// after close reports failure, and nobody deadlocks on a full queue.
TEST(BoundedQueueTest, ProducersRacingCloseNeverLoseAcceptedItems) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  for (int round = 0; round < 8; ++round) {
    BoundedQueue<std::uint64_t> q(4);  // tiny: close hits blocked pushers
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<bool> go{false};

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        while (!go.load(std::memory_order_acquire)) {}
        for (int i = 0; i < kPerProducer; ++i) {
          const auto item = static_cast<std::uint64_t>(p) * kPerProducer +
                            static_cast<std::uint64_t>(i);
          if (!q.push(item)) {
            EXPECT_TRUE(q.closed());  // the only legal refusal
            break;                    // closed: push must refuse forever
          }
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    std::uint64_t popped = 0;
    std::thread consumer([&] {
      while (q.pop().has_value()) ++popped;
    });

    go.store(true, std::memory_order_release);
    // Close from a fourth party while pushes and pops are in flight.
    std::this_thread::yield();
    q.close();

    for (auto& t : producers) t.join();
    consumer.join();
    EXPECT_TRUE(q.closed());
    // No accepted item may vanish and none may be duplicated — even the
    // ones accepted in the instants around close().
    EXPECT_EQ(popped, accepted.load());
    EXPECT_FALSE(q.push(1));
    EXPECT_FALSE(q.pop().has_value());
  }
}

}  // namespace
}  // namespace generic::serve
