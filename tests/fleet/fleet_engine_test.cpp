// FleetEngine admission mechanics (src/fleet/engine.h): the exact integer
// token bucket, the priority-weighted shed gate, the tally cross-checks,
// and the tenant_storm chaos scenario's protection story.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "fleet/engine.h"
#include "fleet/simulator.h"
#include "fleet/tenant_storm.h"
#include "fleet/types.h"

namespace generic::fleet {
namespace {

constexpr std::uint64_t kSeed = 0xC4A05;

/// Smallest fleet that exercises the gates: one tiny model, caller-provided
/// tenants. service_base_us=700 over 2 servers -> backlog cost 350us/admit.
FleetConfig tiny_config(std::vector<TenantSpec> tenants) {
  FleetConfig cfg;
  cfg.seed = kSeed;
  ModelSpec m;
  m.id = "tiny";
  m.dims = 256;
  m.classes = 3;
  m.features = 16;
  m.train_samples = 80;
  m.queries = 40;
  m.epochs = 2;
  m.world_seed = 0x71C0;
  m.serve.model_id = "tiny";
  m.serve.servers = 2;
  m.serve.service_base_us = 700;
  m.serve.min_dims = 128;
  m.serve.seed = kSeed;
  cfg.models.push_back(std::move(m));
  cfg.tenants = std::move(tenants);
  return cfg;
}

struct Fixture {
  ThreadPool pool;
  FleetConfig cfg;
  FleetEngine fleet;

  explicit Fixture(std::vector<TenantSpec> tenants)
      : pool(2),
        cfg(tiny_config(std::move(tenants))),
        fleet(cfg, {build_world(cfg.models[0], pool)}, pool) {}
};

Send make_send(std::uint64_t send_us, std::uint16_t tenant, std::uint64_t id) {
  Send s;
  s.send_us = send_us;
  s.tenant = tenant;
  s.model = 0;
  s.id = id;
  s.query = static_cast<std::uint32_t>(id % 40);
  s.deadline_rel_us = 4000;
  return s;
}

TEST(FleetEngineTest, TokenBucketIsExactIntegerMath) {
  TenantSpec t;
  t.name = "t";
  t.priority = PriorityClass::kStandard;
  t.quota_rps = 1000;  // exactly 1 token per 1000 virtual us
  t.quota_burst = 4;
  Fixture fx({t});

  std::vector<serve::ResponseFuture> futures;
  FleetResponse rej;
  std::uint64_t id = 0;

  // Full bucket at t=0: exactly quota_burst admits, then empty.
  for (int i = 0; i < 4; ++i) {
    auto f = fx.fleet.route(make_send(0, 0, id++), rej);
    EXPECT_TRUE(f.has_value()) << "burst admit " << i;
    if (f) futures.push_back(std::move(*f));
  }
  auto f5 = fx.fleet.route(make_send(0, 0, id++), rej);
  EXPECT_FALSE(f5.has_value());
  EXPECT_EQ(rej.status, FleetStatus::kQuotaRejected);
  EXPECT_EQ(rej.id, 4u);
  EXPECT_EQ(rej.finish_us, 0u);

  // 1000us later the refill is exactly one token: one admit, not two.
  auto f6 = fx.fleet.route(make_send(1000, 0, id++), rej);
  EXPECT_TRUE(f6.has_value());
  if (f6) futures.push_back(std::move(*f6));
  auto f7 = fx.fleet.route(make_send(1000, 0, id++), rej);
  EXPECT_FALSE(f7.has_value());
  EXPECT_EQ(rej.status, FleetStatus::kQuotaRejected);

  // Half a token (500us * 1000rps = 500000 micro-tokens) is NOT a token...
  auto f8 = fx.fleet.route(make_send(1500, 0, id++), rej);
  EXPECT_FALSE(f8.has_value());
  EXPECT_EQ(rej.status, FleetStatus::kQuotaRejected);
  // ...but the fractional balance carries: 500us more completes the token.
  auto f9 = fx.fleet.route(make_send(2000, 0, id++), rej);
  EXPECT_TRUE(f9.has_value());
  if (f9) futures.push_back(std::move(*f9));

  const FleetReport rep = fx.fleet.finish();
  EXPECT_EQ(rep.requests, 9u);
  EXPECT_EQ(rep.statuses[static_cast<std::size_t>(FleetStatus::kQuotaRejected)],
            3u);
}

TEST(FleetEngineTest, WeightedShedTurnsBatchAwayBeforeCritical) {
  TenantSpec critical;
  critical.name = "crit";
  critical.priority = PriorityClass::kCritical;
  critical.quota_rps = 100000;  // quota never the limiting gate here
  critical.quota_burst = 64;
  TenantSpec batch = critical;
  batch.name = "batch";
  batch.priority = PriorityClass::kBatch;
  Fixture fx({critical, batch});

  std::vector<serve::ResponseFuture> futures;
  FleetResponse rej;
  std::uint64_t id = 0;

  // Push the model's projected backlog past the 4000us batch budget but
  // far below the 64000us critical budget: 13 admits * 350us = 4550us.
  for (int i = 0; i < 13; ++i) {
    auto f = fx.fleet.route(make_send(0, 0, id++), rej);
    ASSERT_TRUE(f.has_value()) << "backlog admit " << i;
    futures.push_back(std::move(*f));
  }

  // Same instant, same backlog: batch is shed, critical sails through.
  auto fb = fx.fleet.route(make_send(0, 1, id++), rej);
  EXPECT_FALSE(fb.has_value());
  EXPECT_EQ(rej.status, FleetStatus::kPriorityShed);
  auto fc = fx.fleet.route(make_send(0, 0, id++), rej);
  EXPECT_TRUE(fc.has_value());
  if (fc) futures.push_back(std::move(*fc));

  // A shed consumes neither backlog nor tokens: batch is still refused.
  auto fb2 = fx.fleet.route(make_send(0, 1, id++), rej);
  EXPECT_FALSE(fb2.has_value());
  EXPECT_EQ(rej.status, FleetStatus::kPriorityShed);

  const FleetReport rep = fx.fleet.finish();
  const auto shed = static_cast<std::size_t>(FleetStatus::kPriorityShed);
  EXPECT_EQ(rep.tenants[0].statuses[shed], 0u);
  EXPECT_EQ(rep.tenants[1].statuses[shed], 2u);
}

TEST(FleetEngineTest, TalliesCrossCheckAcrossTenantsModelsAndTotals) {
  const FleetConfig cfg = default_fleet_config(true);
  ThreadPool pool(2);
  std::vector<ModelWorld> worlds;
  for (const ModelSpec& m : cfg.models) worlds.push_back(build_world(m, pool));
  FleetEngine fleet(cfg, std::move(worlds), pool);
  auto owned = make_sim_ports(cfg, fleet);
  std::vector<ClientPort*> ports;
  for (auto& p : owned) ports.push_back(p.get());
  const std::size_t delivered = run_closed_loop(fleet, ports);
  const FleetReport rep = fleet.finish();

  // Every configured request was sent and terminally answered.
  std::uint64_t expected = 0;
  for (const TenantSpec& t : cfg.tenants)
    expected += t.clients * t.requests_per_client;
  EXPECT_EQ(rep.requests, expected);
  EXPECT_EQ(delivered, expected);

  // The global status histogram is exactly the sum of the tenant view and
  // exactly the sum of the model view.
  for (std::size_t s = 0; s < kNumFleetStatuses; ++s) {
    std::uint64_t by_tenant = 0, by_model = 0;
    for (const PartyStats& t : rep.tenants) by_tenant += t.statuses[s];
    for (const PartyStats& m : rep.models) by_model += m.statuses[s];
    EXPECT_EQ(rep.statuses[s], by_tenant) << "status " << s;
    EXPECT_EQ(rep.statuses[s], by_model) << "status " << s;
  }
  std::uint64_t tenant_requests = 0;
  for (const PartyStats& t : rep.tenants) tenant_requests += t.requests;
  EXPECT_EQ(tenant_requests, expected);

  // Engine-admitted totals reconcile: whatever the fleet gates let through
  // is exactly what the per-model ServeEngines saw.
  std::uint64_t engine_requests = 0;
  for (const serve::ServeReport& sr : rep.model_reports)
    engine_requests += sr.requests;
  const std::uint64_t refused =
      rep.statuses[static_cast<std::size_t>(FleetStatus::kQuotaRejected)] +
      rep.statuses[static_cast<std::size_t>(FleetStatus::kPriorityShed)];
  EXPECT_EQ(engine_requests, expected - refused);
}

// The committed acceptance story for the tenant_storm chaos scenario:
// one batch tenant floods at >10x quota; BOTH refusal mechanisms engage
// (token bucket for the sustained rate, weighted shed for the burst), and
// weighted shedding keeps the high-priority tenants' service and accuracy
// untouched.
TEST(FleetEngineTest, TenantStormShedsTheFloodAndProtectsTheVictims) {
  const StormReport rep = run_tenant_storm(true, kSeed, 2);
  EXPECT_TRUE(rep.passed);
  for (const StormInvariant& inv : rep.invariants)
    EXPECT_TRUE(inv.passed) << inv.name << " value=" << inv.value
                            << " bound=" << inv.bound;

  const PartyStats& flood = rep.fleet.tenants[rep.flood_tenant];
  EXPECT_GT(flood.statuses[static_cast<std::size_t>(
                FleetStatus::kQuotaRejected)],
            0u);
  EXPECT_GT(
      flood.statuses[static_cast<std::size_t>(FleetStatus::kPriorityShed)],
      0u);

  // Victims: every non-flood tenant keeps >= 90% service; the critical
  // tenant is never shed at all.
  for (std::size_t t = 0; t < rep.fleet.tenants.size(); ++t) {
    if (t == rep.flood_tenant) continue;
    const PartyStats& victim = rep.fleet.tenants[t];
    EXPECT_GE(static_cast<double>(victim.served),
              0.9 * static_cast<double>(victim.requests))
        << rep.fleet.config.tenants[t].name;
  }
  const PartyStats& gold = rep.fleet.tenants[0];
  EXPECT_EQ(
      gold.statuses[static_cast<std::size_t>(FleetStatus::kPriorityShed)], 0u);
  EXPECT_EQ(
      gold.statuses[static_cast<std::size_t>(FleetStatus::kQuotaRejected)],
      0u);
}

}  // namespace
}  // namespace generic::fleet
