// The ISSUE's sharpest acceptance criterion, in-process: a real-socket
// closed loop over loopback (net::Server + SocketFleetDriver on this
// thread, one blocking client thread per configured (tenant, client))
// produces a generic.fleet.v1 report BYTE-IDENTICAL to the simulated
// ingress path for the same (config, seed).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "fleet/client_model.h"
#include "fleet/engine.h"
#include "fleet/simulator.h"
#include "fleet/socket_driver.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/socket.h"

namespace generic::fleet {
namespace {

constexpr std::uint64_t kSeed = 0xC4A05;

FleetConfig test_config() {
  FleetConfig cfg = default_fleet_config(true);
  cfg.seed = kSeed;
  return cfg;
}

std::string run_sim(const FleetConfig& cfg) {
  ThreadPool pool(2);
  std::vector<ModelWorld> worlds;
  for (const ModelSpec& m : cfg.models) worlds.push_back(build_world(m, pool));
  FleetEngine fleet(cfg, std::move(worlds), pool);
  auto owned = make_sim_ports(cfg, fleet);
  std::vector<ClientPort*> ports;
  for (auto& p : owned) ports.push_back(p.get());
  run_closed_loop(fleet, ports);
  return fleet_report_to_json(fleet.finish());
}

/// The generic_fleet_client loop, inlined: blocking framed closed loop for
/// one (tenant, client) identity.
bool run_client(const FleetConfig& cfg, std::uint16_t port,
                std::uint16_t tenant, std::uint16_t client) {
  net::Fd fd = net::connect_loopback(port);
  if (!fd.valid()) return false;
  net::FrameParser parser;
  const auto send_frame = [&](const std::vector<std::uint8_t>& f) {
    return net::write_all(fd.get(), f.data(), f.size());
  };
  const auto recv_frame = [&]() -> std::optional<net::Frame> {
    for (;;) {
      if (parser.failed()) return std::nullopt;
      if (auto f = parser.next()) return f;
      std::uint8_t buf[4096];
      const std::ptrdiff_t n = net::read_some(fd.get(), buf, sizeof(buf));
      if (n <= 0) return std::nullopt;
      parser.feed(buf, static_cast<std::size_t>(n));
    }
  };

  net::Hello hello;
  hello.tenant = tenant;
  hello.client = client;
  std::vector<std::uint8_t> out;
  net::encode_hello(hello, out);
  if (!send_frame(out)) return false;
  auto ackf = recv_frame();
  if (!ackf || ackf->kind != net::FrameKind::kHelloAck) return false;
  net::HelloAck ack;
  if (net::decode_hello_ack(*ackf, ack) != net::ProtoError::kNone) return false;

  ClientModel model(cfg, tenant, client, ack.model_queries);
  std::optional<Send> send = model.start();
  while (send) {
    net::WireRequest req;
    req.id = send->id;
    req.send_us = send->send_us;
    req.model = send->model;
    req.priority = static_cast<std::uint8_t>(cfg.tenants[tenant].priority);
    req.deadline_rel_us = send->deadline_rel_us;
    req.query = send->query;
    out.clear();
    net::encode_request(req, out);
    if (!send_frame(out)) return false;

    auto rf = recv_frame();
    if (!rf || rf->kind != net::FrameKind::kResponse) return false;
    net::WireResponse wire;
    if (net::decode_response(*rf, wire) != net::ProtoError::kNone) return false;
    if (wire.id != send->id) return false;

    FleetResponse resp;
    resp.id = wire.id;
    resp.status = static_cast<FleetStatus>(wire.status);
    resp.predicted = wire.predicted;
    resp.margin_micro = wire.margin_micro;
    resp.dims_used = wire.dims_used;
    resp.attempts = wire.attempts;
    resp.finish_us = wire.finish_us;
    resp.latency_us = wire.latency_us;
    resp.version = wire.version;
    resp.rung = wire.rung;
    send = model.on_response(resp);
  }
  out.clear();
  net::encode_bye(out);
  send_frame(out);
  return true;
}

TEST(SocketRoundtrip, LoopbackReportIsByteIdenticalToTheSimulatedRun) {
  const FleetConfig cfg = test_config();
  const std::string sim_json = run_sim(cfg);

  ThreadPool pool(2);
  std::vector<ModelWorld> worlds;
  for (const ModelSpec& m : cfg.models) worlds.push_back(build_world(m, pool));
  FleetEngine fleet(cfg, std::move(worlds), pool);

  net::ServerConfig scfg;
  scfg.port = 0;
  scfg.num_tenants = cfg.tenants.size();
  scfg.model_queries = fleet.model_queries();
  net::Server server(scfg);
  ASSERT_TRUE(server.listening());

  std::atomic<std::size_t> failed{0};
  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < cfg.tenants.size(); ++t)
    for (std::size_t c = 0; c < cfg.tenants[t].clients; ++c)
      clients.emplace_back([&, t, c] {
        if (!run_client(cfg, server.port(), static_cast<std::uint16_t>(t),
                        static_cast<std::uint16_t>(c)))
          ++failed;
      });

  SocketFleetDriver driver(server, cfg, /*io_timeout_ms=*/30000);
  ASSERT_TRUE(driver.wait_ready(30000)) << "clients never all arrived";
  const std::size_t delivered = run_closed_loop(fleet, driver.ports());
  const std::string socket_json = fleet_report_to_json(fleet.finish());
  server.drain(1000);
  for (auto& th : clients) th.join();

  EXPECT_TRUE(driver.ok());
  EXPECT_EQ(failed.load(), 0u);
  EXPECT_EQ(server.stats().protocol_errors, 0u);

  std::uint64_t expected = 0;
  for (const TenantSpec& t : cfg.tenants)
    expected += t.clients * t.requests_per_client;
  EXPECT_EQ(delivered, expected);
  EXPECT_EQ(server.stats().requests, expected);

  EXPECT_EQ(socket_json, sim_json)
      << "real-socket ingress diverged from the simulated schedule";
}

}  // namespace
}  // namespace generic::fleet
