// Behavioural tests for the from-scratch ML comparators: each must learn a
// clearly learnable problem and expose its structural blind spots (e.g.
// trees vs rotated boundaries are out of scope; we only guarantee the
// qualitative contracts the Table 1 harness relies on).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ml/classifier.h"
#include "ml/knn.h"
#include "ml/mlp.h"
#include "ml/random_forest.h"
#include "ml/svm.h"

namespace generic::ml {
namespace {

/// Two Gaussian blobs, linearly separable.
void make_blobs(Matrix& x, std::vector<int>& y, std::size_t n_per_class,
                double sep, std::uint64_t seed) {
  Rng rng(seed);
  for (std::size_t c = 0; c < 2; ++c)
    for (std::size_t i = 0; i < n_per_class; ++i) {
      const double cx = c == 0 ? -sep : sep;
      x.push_back({static_cast<float>(cx + rng.normal()),
                   static_cast<float>(rng.normal())});
      y.push_back(static_cast<int>(c));
    }
}

/// XOR-style checkerboard: not linearly separable.
void make_xor(Matrix& x, std::vector<int>& y, std::size_t n,
              std::uint64_t seed) {
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const float a = static_cast<float>(rng.uniform(-1.0, 1.0));
    const float b = static_cast<float>(rng.uniform(-1.0, 1.0));
    x.push_back({a, b});
    y.push_back((a > 0) != (b > 0) ? 1 : 0);
  }
}

class AllClassifiersTest : public ::testing::TestWithParam<MlKind> {};

TEST_P(AllClassifiersTest, LearnsLinearlySeparableBlobs) {
  Matrix x;
  std::vector<int> y;
  make_blobs(x, y, 150, 2.0, 42);
  auto clf = make_classifier(GetParam());
  clf->train(x, y, 2);
  Matrix tx;
  std::vector<int> ty;
  make_blobs(tx, ty, 50, 2.0, 43);
  EXPECT_GT(clf->accuracy(tx, ty), 0.9) << to_string(GetParam());
}

TEST_P(AllClassifiersTest, NameMatchesKind) {
  EXPECT_EQ(make_classifier(GetParam())->name(), to_string(GetParam()));
}

TEST_P(AllClassifiersTest, PredictBeforeTrainThrows) {
  auto clf = make_classifier(GetParam());
  const std::vector<float> x{0.0f, 0.0f};
  EXPECT_THROW((void)clf->predict(x), std::logic_error);
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllClassifiersTest,
                         ::testing::Values(MlKind::kMlp, MlKind::kDnn,
                                           MlKind::kSvm,
                                           MlKind::kRandomForest,
                                           MlKind::kLogReg, MlKind::kKnn),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(Mlp, SolvesXor) {
  Matrix x;
  std::vector<int> y;
  make_xor(x, y, 600, 7);
  MlpConfig cfg;
  cfg.hidden = {32};
  cfg.epochs = 60;
  Mlp mlp(cfg);
  mlp.train(x, y, 2);
  Matrix tx;
  std::vector<int> ty;
  make_xor(tx, ty, 200, 8);
  EXPECT_GT(mlp.accuracy(tx, ty), 0.9);
}

TEST(Mlp, ProbabilitiesSumToOne) {
  Matrix x;
  std::vector<int> y;
  make_blobs(x, y, 50, 1.0, 3);
  Mlp mlp(MlpConfig{});
  mlp.train(x, y, 2);
  const auto p = mlp.predict_proba(x[0]);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-5);
  EXPECT_GE(p[0], 0.0f);
  EXPECT_GE(p[1], 0.0f);
}

TEST(Svm, RffSolvesXorLinearCannot) {
  Matrix x;
  std::vector<int> y;
  make_xor(x, y, 800, 11);
  Matrix tx;
  std::vector<int> ty;
  make_xor(tx, ty, 200, 12);

  SvmConfig rbf;
  rbf.gamma = 2.0;
  Svm svm_rbf(rbf);
  svm_rbf.train(x, y, 2);
  EXPECT_GT(svm_rbf.accuracy(tx, ty), 0.85);

  SvmConfig lin;
  lin.fourier_dims = 0;  // plain linear SVM
  Svm svm_lin(lin);
  svm_lin.train(x, y, 2);
  EXPECT_LT(svm_lin.accuracy(tx, ty), 0.7);  // structurally impossible
}

TEST(Svm, DecisionFunctionRanksPredictedClassFirst) {
  Matrix x;
  std::vector<int> y;
  make_blobs(x, y, 100, 2.0, 13);
  Svm svm{SvmConfig{}};
  svm.train(x, y, 2);
  const auto margins = svm.decision_function(x[0]);
  ASSERT_EQ(margins.size(), 2u);
  const int pred = svm.predict(x[0]);
  EXPECT_GE(margins[static_cast<std::size_t>(pred)],
            margins[static_cast<std::size_t>(1 - pred)]);
}

TEST(DecisionTree, PerfectlyFitsAxisAlignedSplit) {
  Matrix x{{0.1f}, {0.2f}, {0.8f}, {0.9f}};
  std::vector<int> y{0, 0, 1, 1};
  DecisionTree tree{TreeConfig{}};
  tree.train(x, y, 2);
  EXPECT_EQ(tree.predict(std::vector<float>{0.0f}), 0);
  EXPECT_EQ(tree.predict(std::vector<float>{1.0f}), 1);
  EXPECT_GE(tree.node_count(), 3u);
  EXPECT_GE(tree.depth(), 2u);
}

TEST(DecisionTree, MaxDepthBoundsTree) {
  Matrix x;
  std::vector<int> y;
  make_xor(x, y, 400, 17);
  TreeConfig cfg;
  cfg.max_depth = 3;
  cfg.features_per_split = 2;
  DecisionTree tree(cfg);
  tree.train(x, y, 2);
  EXPECT_LE(tree.depth(), 4u);  // root at depth 1
}

TEST(RandomForest, BeatsSingleShallowTreeOnXor) {
  Matrix x;
  std::vector<int> y;
  make_xor(x, y, 800, 19);
  Matrix tx;
  std::vector<int> ty;
  make_xor(tx, ty, 300, 20);
  RandomForest rf{ForestConfig{}};
  rf.train(x, y, 2);
  EXPECT_EQ(rf.num_trees(), 30u);
  EXPECT_GT(rf.accuracy(tx, ty), 0.9);
}

TEST(Knn, ExactNeighborVote) {
  Matrix x{{0.0f}, {0.1f}, {1.0f}, {1.1f}, {1.2f}};
  std::vector<int> y{0, 0, 1, 1, 1};
  Knn knn(3);
  knn.train(x, y, 2);
  EXPECT_EQ(knn.predict(std::vector<float>{0.05f}), 0);
  EXPECT_EQ(knn.predict(std::vector<float>{1.05f}), 1);
}

TEST(Classifiers, TrainRejectsBadInput) {
  auto clf = make_classifier(MlKind::kMlp);
  Matrix x{{0.0f}};
  std::vector<int> y{0, 1};
  EXPECT_THROW(clf->train(x, y, 2), std::invalid_argument);
}

}  // namespace
}  // namespace generic::ml
