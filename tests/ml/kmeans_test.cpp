#include "ml/kmeans.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/fcps.h"
#include "ml/metrics.h"
#include "ml/scaler.h"

namespace generic::ml {
namespace {

TEST(KMeans, RecoversSeparatedBlobs) {
  Rng rng(31);
  Matrix pts;
  std::vector<int> truth;
  const std::vector<std::pair<float, float>> centers{{0, 0}, {10, 0}, {0, 10}};
  for (std::size_t c = 0; c < centers.size(); ++c)
    for (int i = 0; i < 60; ++i) {
      pts.push_back({centers[c].first + static_cast<float>(rng.normal()),
                     centers[c].second + static_cast<float>(rng.normal())});
      truth.push_back(static_cast<int>(c));
    }
  KMeansConfig cfg;
  cfg.k = 3;
  const auto res = kmeans(pts, cfg);
  EXPECT_NEAR(normalized_mutual_information(truth, res.labels), 1.0, 1e-6);
  EXPECT_GT(res.iterations, 0u);
}

TEST(KMeans, InertiaDecreasesWithMoreClusters) {
  const auto ds = data::make_fcps("Tetra");
  KMeansConfig cfg;
  cfg.k = 2;
  const double inertia2 = kmeans(ds.points, cfg).inertia;
  cfg.k = 4;
  const double inertia4 = kmeans(ds.points, cfg).inertia;
  EXPECT_LT(inertia4, inertia2);
}

TEST(KMeans, DeterministicInSeed) {
  const auto ds = data::make_fcps("Hepta");
  KMeansConfig cfg;
  cfg.k = 7;
  const auto a = kmeans(ds.points, cfg);
  const auto b = kmeans(ds.points, cfg);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(KMeans, LabelsInRangeAndAssignConsistent) {
  const auto ds = data::make_fcps("TwoDiamonds");
  KMeansConfig cfg;
  cfg.k = 2;
  const auto res = kmeans(ds.points, cfg);
  ASSERT_EQ(res.labels.size(), ds.points.size());
  for (std::size_t i = 0; i < ds.points.size(); ++i) {
    ASSERT_GE(res.labels[i], 0);
    ASSERT_LT(res.labels[i], 2);
    EXPECT_EQ(res.labels[i], kmeans_assign(res.centroids, ds.points[i]));
  }
}

TEST(KMeans, BadArgumentsThrow) {
  Matrix pts{{0.0f}, {1.0f}};
  KMeansConfig cfg;
  cfg.k = 0;
  EXPECT_THROW(kmeans(pts, cfg), std::invalid_argument);
  cfg.k = 3;
  EXPECT_THROW(kmeans(pts, cfg), std::invalid_argument);
  EXPECT_THROW(kmeans(Matrix{}, KMeansConfig{}), std::invalid_argument);
}

TEST(KMeans, HeptaNmiNearOne) {
  // Table 2 anchor: K-means on Hepta scores 1.0 in the paper.
  const auto ds = data::make_fcps("Hepta");
  KMeansConfig cfg;
  cfg.k = 7;
  const auto res = kmeans(ds.points, cfg);
  EXPECT_GT(normalized_mutual_information(ds.labels, res.labels), 0.95);
}

TEST(StandardScaler, ZeroMeanUnitVariance) {
  Matrix x{{1.0f, 10.0f}, {3.0f, 30.0f}, {5.0f, 50.0f}};
  StandardScaler scaler;
  scaler.fit(x);
  const auto t = scaler.transform_all(x);
  for (std::size_t j = 0; j < 2; ++j) {
    double mean = 0.0, var = 0.0;
    for (const auto& row : t) mean += row[j];
    mean /= 3.0;
    for (const auto& row : t) var += (row[j] - mean) * (row[j] - mean);
    EXPECT_NEAR(mean, 0.0, 1e-6);
    EXPECT_NEAR(var / 3.0, 1.0, 1e-5);
  }
}

TEST(StandardScaler, ConstantFeatureDoesNotBlowUp) {
  Matrix x{{1.0f, 7.0f}, {2.0f, 7.0f}};
  StandardScaler scaler;
  scaler.fit(x);
  const auto t = scaler.transform(x[0]);
  EXPECT_TRUE(std::isfinite(t[1]));
  EXPECT_FLOAT_EQ(t[1], 0.0f);
}

}  // namespace
}  // namespace generic::ml
