#include "ml/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace generic::ml {
namespace {

TEST(Accuracy, Basics) {
  const std::vector<int> t{0, 1, 2, 1};
  const std::vector<int> p{0, 1, 1, 1};
  EXPECT_DOUBLE_EQ(accuracy_score(t, p), 0.75);
  EXPECT_THROW(accuracy_score(t, std::vector<int>{0}), std::invalid_argument);
}

TEST(Entropy, UniformAndDegenerate) {
  const std::vector<int> uniform{0, 1, 2, 3};
  EXPECT_NEAR(entropy(uniform), std::log(4.0), 1e-12);
  const std::vector<int> single{5, 5, 5};
  EXPECT_DOUBLE_EQ(entropy(single), 0.0);
}

TEST(MutualInformation, IdenticalLabelingsEqualEntropy) {
  const std::vector<int> a{0, 0, 1, 1, 2, 2};
  EXPECT_NEAR(mutual_information(a, a), entropy(a), 1e-12);
}

TEST(MutualInformation, IndependentLabelingsNearZero) {
  // b alternates independently of a's block structure.
  std::vector<int> a, b;
  for (int i = 0; i < 400; ++i) {
    a.push_back(i < 200 ? 0 : 1);
    b.push_back(i % 2);
  }
  EXPECT_NEAR(mutual_information(a, b), 0.0, 1e-9);
}

TEST(Nmi, PermutationInvariant) {
  // NMI must not care about cluster ids, only the partition.
  const std::vector<int> t{0, 0, 1, 1, 2, 2};
  const std::vector<int> renamed{2, 2, 0, 0, 1, 1};
  EXPECT_NEAR(normalized_mutual_information(t, renamed), 1.0, 1e-12);
}

TEST(Nmi, RangeAndDegradation) {
  const std::vector<int> t{0, 0, 0, 1, 1, 1};
  const std::vector<int> perfect{1, 1, 1, 0, 0, 0};
  const std::vector<int> partial{0, 0, 1, 1, 1, 1};
  const std::vector<int> junk{0, 1, 0, 1, 0, 1};
  const double s_perfect = normalized_mutual_information(t, perfect);
  const double s_partial = normalized_mutual_information(t, partial);
  const double s_junk = normalized_mutual_information(t, junk);
  EXPECT_NEAR(s_perfect, 1.0, 1e-12);
  EXPECT_GT(s_perfect, s_partial);
  EXPECT_GT(s_partial, s_junk);
  EXPECT_GE(s_junk, 0.0);
}

TEST(Nmi, SingleClusterConventions) {
  const std::vector<int> one{0, 0, 0};
  EXPECT_DOUBLE_EQ(normalized_mutual_information(one, one), 1.0);
  const std::vector<int> split{0, 1, 2};
  EXPECT_DOUBLE_EQ(normalized_mutual_information(one, split), 0.0);
}

TEST(ConfusionMatrix, CountsLandInCells) {
  const std::vector<int> t{0, 0, 1, 1};
  const std::vector<int> p{0, 1, 1, 1};
  const auto m = confusion_matrix(t, p, 2);
  EXPECT_EQ(m[0][0], 1u);
  EXPECT_EQ(m[0][1], 1u);
  EXPECT_EQ(m[1][0], 0u);
  EXPECT_EQ(m[1][1], 2u);
}

}  // namespace
}  // namespace generic::ml
