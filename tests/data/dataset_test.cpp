#include "data/dataset.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace generic::data {
namespace {

TEST(ShuffleXy, KeepsPairsTogether) {
  std::vector<std::vector<float>> xs;
  std::vector<int> ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back({static_cast<float>(i)});
    ys.push_back(i);
  }
  Rng rng(3);
  shuffle_xy(xs, ys, rng);
  for (std::size_t i = 0; i < xs.size(); ++i)
    EXPECT_EQ(static_cast<int>(xs[i][0]), ys[i]);
  std::set<int> seen(ys.begin(), ys.end());
  EXPECT_EQ(seen.size(), 50u);
}

TEST(ShuffleXy, SizeMismatchThrows) {
  std::vector<std::vector<float>> xs(3);
  std::vector<int> ys(2);
  Rng rng(1);
  EXPECT_THROW(shuffle_xy(xs, ys, rng), std::invalid_argument);
}

TEST(SplitTrainTest, StratifiedSplit) {
  std::vector<std::vector<float>> xs;
  std::vector<int> ys;
  for (int c = 0; c < 3; ++c)
    for (int i = 0; i < 100; ++i) {
      xs.push_back({static_cast<float>(c)});
      ys.push_back(c);
    }
  Rng rng(5);
  const Dataset ds = split_train_test("t", 3, xs, ys, 0.75, rng);
  EXPECT_EQ(ds.train_size(), 225u);
  EXPECT_EQ(ds.test_size(), 75u);
  // Per-class balance preserved on both sides.
  for (int c = 0; c < 3; ++c) {
    const auto train_c = std::count(ds.train_y.begin(), ds.train_y.end(), c);
    const auto test_c = std::count(ds.test_y.begin(), ds.test_y.end(), c);
    EXPECT_EQ(train_c, 75);
    EXPECT_EQ(test_c, 25);
  }
}

}  // namespace
}  // namespace generic::data
