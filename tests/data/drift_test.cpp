// DriftStream: the determinism contract (sample(i, regime) is a pure
// function of (spec, i, regime), labels independent of regime) and the
// semantic contract (a model frozen on the pre-shift regime measurably
// degrades post-shift — the degradation src/lifecycle exists to repair).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "data/drift.h"
#include "encoding/encoders.h"
#include "model/hdc_classifier.h"
#include "model/pipeline.h"

namespace generic::data {
namespace {

DriftStreamSpec tiny_spec() {
  DriftStreamSpec spec;
  spec.classes = 4;
  spec.features = 32;
  spec.seed = 0xD21F7;
  return spec;
}

TEST(DriftStreamTest, LabelsAreDeterministicAndRegimeIndependent) {
  const DriftStreamSpec spec = tiny_spec();
  const DriftStream a(spec);
  const DriftStream b(spec);
  for (std::uint64_t i = 0; i < 256; ++i) {
    const int label = a.label_at(i);
    EXPECT_EQ(b.label_at(i), label) << i;
    EXPECT_EQ(a.sample(i, false).label, label) << i;
    EXPECT_EQ(a.sample(i, true).label, label) << i;
    EXPECT_GE(label, 0);
    EXPECT_LT(label, static_cast<int>(spec.classes));
  }
}

TEST(DriftStreamTest, SamplesArePureFunctionsOfIndexAndRegime) {
  const DriftStream stream(tiny_spec());
  for (std::uint64_t i : {std::uint64_t{0}, std::uint64_t{17},
                          std::uint64_t{4096}, std::uint64_t{1} << 40}) {
    for (const bool regime : {false, true}) {
      const auto s1 = stream.sample(i, regime);
      const auto s2 = stream.sample(i, regime);
      EXPECT_EQ(s1.label, s2.label);
      ASSERT_EQ(s1.x.size(), tiny_spec().features);
      EXPECT_EQ(s1.x, s2.x) << "index " << i << " regime " << regime;
    }
    // The shift moves features, not labels: same index, different regime,
    // different x (severity 0.75 moves every class template).
    EXPECT_NE(stream.sample(i, false).x, stream.sample(i, true).x);
  }
}

TEST(DriftStreamTest, FillMatchesSample) {
  const DriftStream stream(tiny_spec());
  std::vector<std::vector<float>> xs;
  std::vector<int> ys;
  stream.fill(100, 32, true, xs, ys);
  ASSERT_EQ(xs.size(), 32u);
  ASSERT_EQ(ys.size(), 32u);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const auto s = stream.sample(100 + i, true);
    EXPECT_EQ(xs[i], s.x) << i;
    EXPECT_EQ(ys[i], s.label) << i;
  }
}

TEST(DriftStreamTest, SeverityZeroMeansNoShift) {
  DriftStreamSpec spec = tiny_spec();
  spec.severity = 0.0;
  const DriftStream stream(spec);
  for (std::uint64_t i = 0; i < 16; ++i)
    EXPECT_EQ(stream.sample(i, false).x, stream.sample(i, true).x) << i;
}

TEST(DriftStreamTest, ShiftDegradesAFrozenModel) {
  DriftStreamSpec spec;  // default 6 classes / 64 features / severity 0.75
  const DriftStream stream(spec);
  // Same split sizes → the two test sets share indices (same labels, same
  // noise draws); only the regime templates differ between them.
  const auto pre = stream.make_dataset(400, 160, false);
  const auto post = stream.make_dataset(400, 160, true);

  ThreadPool pool(2);
  enc::EncoderConfig ecfg;
  ecfg.dims = 1024;
  enc::GenericEncoder encoder(ecfg);
  encoder.fit(pre.train_x);
  const auto train = model::encode_all(encoder, pre.train_x, pool);
  model::HdcClassifier clf(ecfg.dims, spec.classes);
  clf.fit_parallel(train, pre.train_y, 5, pool);

  auto accuracy = [&](const Dataset& ds) {
    const auto qs = model::encode_all(encoder, ds.test_x, pool);
    std::size_t hits = 0;
    for (std::size_t i = 0; i < qs.size(); ++i)
      hits += clf.predict(qs[i]) == ds.test_y[i];
    return static_cast<double>(hits) / static_cast<double>(qs.size());
  };

  const double pre_acc = accuracy(pre);
  const double post_acc = accuracy(post);
  EXPECT_GT(pre_acc, 0.85) << "frozen model should master its own regime";
  EXPECT_GT(pre_acc - post_acc, 0.15)
      << "pre " << pre_acc << " post " << post_acc
      << ": shift should strand the frozen model";
}

}  // namespace
}  // namespace generic::data
