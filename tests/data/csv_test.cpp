#include "data/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace generic::data {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  std::string path(const char* name) {
    return (std::filesystem::temp_directory_path() / name).string();
  }
  void write(const std::string& p, const char* content) {
    std::ofstream f(p, std::ios::trunc);
    f << content;
  }
  void TearDown() override {
    for (const auto& p : created_) std::remove(p.c_str());
  }
  std::string make(const char* name, const char* content) {
    const auto p = path(name);
    write(p, content);
    created_.push_back(p);
    return p;
  }
  std::vector<std::string> created_;
};

TEST_F(CsvTest, LoadLabeledBasic) {
  const auto p = make("t1.csv", "1.0,2.0,0\n3.0,4.0,1\n5.5,6.5,1\n");
  const auto s = load_labeled_csv(p);
  ASSERT_EQ(s.x.size(), 3u);
  EXPECT_EQ(s.x[0], (std::vector<float>{1.0f, 2.0f}));
  EXPECT_EQ(s.y, (std::vector<int>{0, 1, 1}));
  EXPECT_EQ(s.num_classes, 2u);
}

TEST_F(CsvTest, HeaderAutoSkipped) {
  const auto p = make("t2.csv", "feat_a,feat_b,label\n1,2,0\n3,4,1\n");
  const auto s = load_labeled_csv(p);
  EXPECT_EQ(s.x.size(), 2u);
}

TEST_F(CsvTest, ExplicitLabelColumn) {
  const auto p = make("t3.csv", "2,1.5,2.5\n0,3.5,4.5\n");
  const auto s = load_labeled_csv(p, 0);
  EXPECT_EQ(s.y, (std::vector<int>{2, 0}));
  EXPECT_EQ(s.x[0], (std::vector<float>{1.5f, 2.5f}));
  EXPECT_EQ(s.num_classes, 3u);
}

TEST_F(CsvTest, MalformedContentRejected) {
  EXPECT_THROW(load_labeled_csv(make("r1.csv", "1,2,0\n3,4\n")),
               std::invalid_argument);  // ragged
  EXPECT_THROW(load_labeled_csv(make("r2.csv", "1,abc,0\n")),
               std::invalid_argument);  // non-numeric
  EXPECT_THROW(load_labeled_csv(make("r3.csv", "1,2,-1\n")),
               std::invalid_argument);  // negative label
  EXPECT_THROW(load_labeled_csv(make("r4.csv", "1,2,0.5\n")),
               std::invalid_argument);  // fractional label
  EXPECT_THROW(load_labeled_csv(make("r5.csv", "5\n")),
               std::invalid_argument);  // single column
  EXPECT_THROW(load_labeled_csv(make("r6.csv", "a,b,c\n")),
               std::invalid_argument);  // header only
  EXPECT_THROW(load_labeled_csv(path("missing_file.csv")),
               std::runtime_error);
}

TEST_F(CsvTest, NonFiniteValuesRejected) {
  EXPECT_THROW(load_labeled_csv(make("n1.csv", "1,nan,0\n")),
               std::invalid_argument);
  EXPECT_THROW(load_labeled_csv(make("n2.csv", "1,inf,0\n")),
               std::invalid_argument);
  EXPECT_THROW(load_labeled_csv(make("n3.csv", "1,-inf,0\n")),
               std::invalid_argument);
  EXPECT_THROW(load_labeled_csv(make("n4.csv", "1,1e40,0\n")),
               std::invalid_argument);  // overflows float to +inf
  EXPECT_THROW(load_unlabeled_csv(make("n5.csv", "1,nan\n")),
               std::invalid_argument);
}

TEST_F(CsvTest, ErrorsCarryFileLineNumbers) {
  try {
    load_labeled_csv(make("e1.csv", "a,b,c\n1,2,0\n3,nan,1\n"));
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    // Line 3 of the file (header counts), column 2.
    EXPECT_NE(std::string(e.what()).find("line 3, column 2"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("non-finite"), std::string::npos);
  }
  try {
    load_labeled_csv(make("e2.csv", "1,2,0\n\n3,x,1\n"));
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    // Blank line 2 is skipped but still counted.
    EXPECT_NE(std::string(e.what()).find("line 3, column 2"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("non-numeric"), std::string::npos);
  }
  try {
    load_labeled_csv(make("e3.csv", "1,2,-1\n"));
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos)
        << e.what();
  }
}

TEST_F(CsvTest, FieldCountFixedByHeader) {
  // The header has 3 fields, so a 4-field data row is ragged even though
  // all data rows agree with each other.
  try {
    load_labeled_csv(make("f1.csv", "a,b,c\n1,2,3,0\n4,5,6,1\n"));
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("has 4 fields, expected 3"),
              std::string::npos)
        << e.what();
  }
  // Without a header the first data row fixes the count.
  EXPECT_THROW(load_labeled_csv(make("f2.csv", "1,2,0\n1,2,3,0\n")),
               std::invalid_argument);
  EXPECT_THROW(load_unlabeled_csv(make("f3.csv", "1,2\n1\n")),
               std::invalid_argument);
}

TEST_F(CsvTest, UnlabeledRoundTrip) {
  const auto p = make("u1.csv", "1.5, 2.5\n3.5,4.5\n");
  const auto xs = load_unlabeled_csv(p);
  ASSERT_EQ(xs.size(), 2u);
  EXPECT_EQ(xs[1], (std::vector<float>{3.5f, 4.5f}));
}

TEST_F(CsvTest, SaveLoadRoundTrip) {
  const std::vector<std::vector<float>> x{{1.25f, -2.0f}, {0.0f, 3.5f}};
  const std::vector<int> y{1, 0};
  const auto p = path("rt.csv");
  created_.push_back(p);
  save_labeled_csv(p, x, y);
  const auto s = load_labeled_csv(p);
  EXPECT_EQ(s.x, x);
  EXPECT_EQ(s.y, y);
}

TEST_F(CsvTest, ToDatasetStratifies) {
  LabeledSamples s;
  for (int c = 0; c < 2; ++c)
    for (int i = 0; i < 40; ++i) {
      s.x.push_back({static_cast<float>(c), static_cast<float>(i)});
      s.y.push_back(c);
    }
  s.num_classes = 2;
  const auto ds = to_dataset("t", std::move(s), 0.75);
  EXPECT_EQ(ds.train_size(), 60u);
  EXPECT_EQ(ds.test_size(), 20u);
}

}  // namespace
}  // namespace generic::data
