#include "data/benchmarks.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace generic::data {
namespace {

class AllBenchmarksTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AllBenchmarksTest, WellFormed) {
  const auto ds = make_benchmark(GetParam());
  EXPECT_EQ(ds.name, GetParam());
  ASSERT_GT(ds.num_classes, 1u);
  ASSERT_FALSE(ds.train_x.empty());
  ASSERT_FALSE(ds.test_x.empty());
  ASSERT_EQ(ds.train_x.size(), ds.train_y.size());
  ASSERT_EQ(ds.test_x.size(), ds.test_y.size());
  const std::size_t d = ds.num_features();
  ASSERT_GT(d, 0u);
  for (const auto& x : ds.train_x) ASSERT_EQ(x.size(), d);
  for (const auto& x : ds.test_x) ASSERT_EQ(x.size(), d);
  for (int y : ds.train_y) {
    ASSERT_GE(y, 0);
    ASSERT_LT(y, static_cast<int>(ds.num_classes));
  }
  // Every class appears in both splits.
  std::set<int> train_classes(ds.train_y.begin(), ds.train_y.end());
  std::set<int> test_classes(ds.test_y.begin(), ds.test_y.end());
  EXPECT_EQ(train_classes.size(), ds.num_classes);
  EXPECT_EQ(test_classes.size(), ds.num_classes);
  // All values finite.
  for (const auto& x : ds.train_x)
    for (float v : x) ASSERT_TRUE(std::isfinite(v));
}

TEST_P(AllBenchmarksTest, DeterministicInSeed) {
  const auto a = make_benchmark(GetParam(), 99);
  const auto b = make_benchmark(GetParam(), 99);
  ASSERT_EQ(a.train_x.size(), b.train_x.size());
  EXPECT_EQ(a.train_x.front(), b.train_x.front());
  EXPECT_EQ(a.train_y, b.train_y);
  const auto c = make_benchmark(GetParam(), 100);
  EXPECT_NE(a.train_x.front(), c.train_x.front());
}

TEST_P(AllBenchmarksTest, LabelsShuffled) {
  // The assembly loop generates class-by-class; the final shuffle must mix
  // them (first-k centroid seeding and SGD depend on it).
  const auto ds = make_benchmark(GetParam());
  bool mixed = false;
  for (std::size_t i = 1; i < std::min<std::size_t>(ds.train_y.size(), 50); ++i)
    if (ds.train_y[i] != ds.train_y[0]) mixed = true;
  EXPECT_TRUE(mixed);
}

INSTANTIATE_TEST_SUITE_P(Names, AllBenchmarksTest,
                         ::testing::ValuesIn(benchmark_names()));

TEST(Benchmarks, UnknownNameThrows) {
  EXPECT_THROW(make_benchmark("NOPE"), std::invalid_argument);
}

TEST(Benchmarks, ElevenDatasets) {
  EXPECT_EQ(benchmark_names().size(), 11u);
}

TEST(Benchmarks, GenericConfigSkipsIdsOnOrderFreeTasks) {
  EXPECT_FALSE(generic_config_for("LANG").use_ids);
  EXPECT_FALSE(generic_config_for("DNA").use_ids);
  EXPECT_TRUE(generic_config_for("MNIST").use_ids);
  EXPECT_TRUE(generic_config_for("ISOLET").use_ids);
  EXPECT_EQ(generic_config_for("MNIST").window, 3u);
}

TEST(Benchmarks, EegSamplesHaveWeakMeanSignal) {
  // The EEG clone's defining property: only a weak linear signal in the
  // per-feature means (motifs land at random offsets, so their average
  // contribution per position stays well below the motif amplitude ~1.1).
  const auto ds = make_benchmark("EEG");
  const std::size_t d = ds.num_features();
  std::vector<double> mean0(d, 0.0), mean1(d, 0.0);
  std::size_t n0 = 0, n1 = 0;
  for (std::size_t i = 0; i < ds.train_x.size(); ++i) {
    auto& m = ds.train_y[i] == 0 ? mean0 : mean1;
    (ds.train_y[i] == 0 ? n0 : n1)++;
    for (std::size_t j = 0; j < d; ++j) m[j] += ds.train_x[i][j];
  }
  double max_gap = 0.0;
  for (std::size_t j = 0; j < d; ++j)
    max_gap = std::max(max_gap,
                       std::abs(mean0[j] / static_cast<double>(n0) -
                                mean1[j] / static_cast<double>(n1)));
  EXPECT_LT(max_gap, 0.6);
}

TEST(Benchmarks, LangSymbolsWithinAlphabet) {
  const auto ds = make_benchmark("LANG");
  for (const auto& x : ds.train_x)
    for (float v : x) {
      ASSERT_GE(v, 0.0f);
      ASSERT_LT(v, 26.0f);
    }
}

}  // namespace
}  // namespace generic::data
