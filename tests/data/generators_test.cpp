#include "data/generators.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/fcps.h"

namespace generic::data {
namespace {

TEST(SmoothCurve, NormalizedShape) {
  Rng rng(1);
  const auto c = smooth_curve(128, 0.9, rng);
  ASSERT_EQ(c.size(), 128u);
  double mean = 0.0, max_abs = 0.0;
  for (float v : c) {
    mean += v;
    max_abs = std::max(max_abs, static_cast<double>(std::abs(v)));
  }
  EXPECT_NEAR(mean / 128.0, 0.0, 1e-5);
  EXPECT_NEAR(max_abs, 1.0, 1e-5);
}

TEST(SmoothCurve, SmoothnessControlsRoughness) {
  Rng rng(2);
  const auto smooth = smooth_curve(256, 0.98, rng);
  const auto rough = smooth_curve(256, 0.0, rng);
  auto total_variation = [](const std::vector<float>& v) {
    double tv = 0.0;
    for (std::size_t i = 1; i < v.size(); ++i)
      tv += std::abs(v[i] - v[i - 1]);
    return tv;
  };
  EXPECT_LT(total_variation(smooth), 0.5 * total_variation(rough));
}

TEST(Templates, NoiseControlsSpread) {
  TemplateSpec spec;
  spec.classes = 2;
  spec.features = 64;
  Rng rng(3);
  const auto tmpls = make_templates(spec, rng);
  ASSERT_EQ(tmpls.size(), 2u);
  const auto clean = sample_template(tmpls[0], 0.0, rng);
  EXPECT_EQ(clean, tmpls[0]);
  const auto noisy = sample_template(tmpls[0], 0.5, rng);
  double rms = 0.0;
  for (std::size_t i = 0; i < noisy.size(); ++i) {
    const double diff = noisy[i] - tmpls[0][i];
    rms += diff * diff;
  }
  EXPECT_NEAR(std::sqrt(rms / 64.0), 0.5, 0.2);
}

TEST(Envelopes, SamplesAreZeroMeanWithEnvelopeVariance) {
  VarianceSpec spec;
  spec.classes = 1;
  spec.features = 8;
  Rng rng(5);
  const auto envs = make_envelopes(spec, rng);
  for (float e : envs[0]) {
    EXPECT_GE(e, static_cast<float>(spec.min_sigma) - 1e-5f);
    EXPECT_LE(e, static_cast<float>(spec.max_sigma) + 1e-5f);
  }
  std::vector<double> sum(8, 0.0), sum2(8, 0.0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto x = sample_envelope(envs[0], rng);
    for (std::size_t j = 0; j < 8; ++j) {
      sum[j] += x[j];
      sum2[j] += static_cast<double>(x[j]) * x[j];
    }
  }
  for (std::size_t j = 0; j < 8; ++j) {
    EXPECT_NEAR(sum[j] / n, 0.0, 0.05);
    EXPECT_NEAR(std::sqrt(sum2[j] / n), envs[0][j], 0.05);
  }
}

TEST(Motifs, InsertedWithinHomeRegion) {
  MotifSpec spec;
  spec.classes = 4;
  spec.features = 64;
  spec.motif_len = 6;
  spec.positional = true;
  spec.background_noise = 0.0;
  Rng rng(7);
  const auto bank = make_motif_bank(spec, rng);
  for (std::size_t c = 0; c < spec.classes; ++c) {
    ASSERT_LT(bank.home_lo[c], bank.home_hi[c] + 1);
    ASSERT_LE(bank.home_hi[c], spec.features - spec.motif_len);
    const auto x = sample_motifs(spec, bank, c, rng);
    // With zero background noise, non-zero values only inside
    // [home_lo, home_hi + motif_len).
    for (std::size_t i = 0; i < bank.home_lo[c]; ++i)
      EXPECT_EQ(x[i], 0.0f) << "class " << c << " idx " << i;
    for (std::size_t i = bank.home_hi[c] + spec.motif_len; i < spec.features; ++i)
      EXPECT_EQ(x[i], 0.0f) << "class " << c << " idx " << i;
  }
}

TEST(Motifs, MotifTooLongThrows) {
  MotifSpec spec;
  spec.features = 8;
  spec.motif_len = 8;
  Rng rng(9);
  EXPECT_THROW(make_motif_bank(spec, rng), std::invalid_argument);
}

TEST(Markov, SymbolsInRangeAndClassDependent) {
  MarkovSpec spec;
  spec.classes = 3;
  spec.features = 2000;
  spec.alphabet = 5;
  spec.unigram_bias = 0.8;
  spec.concentration = 0.1;
  Rng rng(11);
  const auto bank = make_markov_bank(spec, rng);
  std::vector<std::vector<double>> hist(3, std::vector<double>(5, 0.0));
  for (std::size_t c = 0; c < 3; ++c) {
    const auto x = sample_markov(spec, bank, c, rng);
    for (float v : x) {
      ASSERT_GE(v, 0.0f);
      ASSERT_LT(v, 5.0f);
      hist[c][static_cast<std::size_t>(v)] += 1.0;
    }
  }
  // Different classes must have visibly different symbol compositions
  // (rotated-Zipf unigram profiles).
  double gap01 = 0.0, gap12 = 0.0;
  for (std::size_t s = 0; s < 5; ++s) {
    gap01 += std::abs(hist[0][s] - hist[1][s]);
    gap12 += std::abs(hist[1][s] - hist[2][s]);
  }
  EXPECT_GT(gap01 / 2000.0, 0.15);
  EXPECT_GT(gap12 / 2000.0, 0.15);
}

TEST(MixInto, WeightedSum) {
  std::vector<float> a{1.0f, 2.0f};
  mix_into(a, {10.0f, 20.0f}, 0.5f);
  EXPECT_FLOAT_EQ(a[0], 6.0f);
  EXPECT_FLOAT_EQ(a[1], 12.0f);
  EXPECT_THROW(mix_into(a, {1.0f}, 1.0f), std::invalid_argument);
}

class FcpsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(FcpsTest, WellFormedAndDeterministic) {
  const auto a = make_fcps(GetParam(), 42);
  EXPECT_EQ(a.name, GetParam());
  ASSERT_GT(a.num_clusters, 1u);
  ASSERT_GE(a.points.size(), a.num_clusters * 20);
  ASSERT_EQ(a.points.size(), a.labels.size());
  for (int l : a.labels) {
    ASSERT_GE(l, 0);
    ASSERT_LT(l, static_cast<int>(a.num_clusters));
  }
  const auto b = make_fcps(GetParam(), 42);
  EXPECT_EQ(a.points.front(), b.points.front());
  EXPECT_EQ(a.labels, b.labels);
}

INSTANTIATE_TEST_SUITE_P(Names, FcpsTest,
                         ::testing::ValuesIn(fcps_extended_names()));

TEST(Fcps, ExtendedSupersetOfTable2Names) {
  const auto& base = fcps_names();
  const auto& ext = fcps_extended_names();
  ASSERT_EQ(base.size(), 5u);
  ASSERT_EQ(ext.size(), 8u);
  for (std::size_t i = 0; i < base.size(); ++i) EXPECT_EQ(ext[i], base[i]);
}

TEST(Fcps, UnknownThrows) {
  EXPECT_THROW(make_fcps("Octo"), std::invalid_argument);
}

TEST(Fcps, HeptaClustersAreSeparated) {
  // Hepta is the easy FCPS case: both k-means and HDC should get NMI ~1,
  // which requires genuinely separated blobs.
  const auto ds = make_fcps("Hepta");
  // Min inter-centroid distance 3 vs sigma 0.45: compute class centroids
  // and verify separation.
  std::vector<std::vector<double>> centroids(7, std::vector<double>(3, 0.0));
  std::vector<std::size_t> counts(7, 0);
  for (std::size_t i = 0; i < ds.points.size(); ++i) {
    const auto c = static_cast<std::size_t>(ds.labels[i]);
    counts[c]++;
    for (int d = 0; d < 3; ++d) centroids[c][static_cast<std::size_t>(d)] += ds.points[i][static_cast<std::size_t>(d)];
  }
  for (std::size_t c = 0; c < 7; ++c)
    for (auto& v : centroids[c]) v /= static_cast<double>(counts[c]);
  for (std::size_t a = 0; a < 7; ++a)
    for (std::size_t b = a + 1; b < 7; ++b) {
      double d2 = 0.0;
      for (int d = 0; d < 3; ++d) {
        const double diff = centroids[a][static_cast<std::size_t>(d)] - centroids[b][static_cast<std::size_t>(d)];
        d2 += diff * diff;
      }
      EXPECT_GT(std::sqrt(d2), 2.0) << a << " vs " << b;
    }
}

}  // namespace
}  // namespace generic::data
