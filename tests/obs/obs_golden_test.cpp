// Golden-file regression for the generic.metrics.v1 schema: a fixed-seed
// single-lane pipeline run must produce a metrics document whose SHAPE —
// every key, the field order, the counter/gauge values, stage call counts
// and pool chunk accounting — matches the committed fixture byte for byte
// after timing-dependent numbers are scrubbed to "<num>".
//
// Scrubbing replaces the value of every key ending in _s, _bytes or
// _per_s (wall times, stage durations, RSS, throughput) — everything else
// in the document is deterministic under a fixed seed and one pool lane.
//
// To regenerate after an INTENTIONAL schema or instrumentation change:
//   GENERIC_UPDATE_GOLDEN=1 ./tests/test_obs --gtest_filter='ObsGolden.*'
// then commit the updated fixture and call the change out in the PR.
//
// A second suite pins the behavioural contract the exporters ride on:
// collection on vs off must not change pipeline results by a single byte.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>

#include "common/thread_pool.h"
#include "data/benchmarks.h"
#include "encoding/encoders.h"
#include "model/pipeline.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "resilience/campaign.h"

#ifndef GENERIC_GOLDEN_DIR
#error "GENERIC_GOLDEN_DIR must be defined by the build"
#endif

namespace generic {
namespace {

std::string fixture_path() {
  return std::string(GENERIC_GOLDEN_DIR) + "/metrics_page_scrubbed.json";
}

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return {};
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

/// Replace the numeric value of every timing/size key with "<num>". The
/// key list is structural: anything measured in seconds, bytes or rates.
std::string scrub_volatile(const std::string& json) {
  static const std::regex volatile_value(
      R"re(("[A-Za-z0-9_.]*(?:_s|_bytes|_per_s)": )-?[0-9][0-9eE+.\-]*)re");
  return std::regex_replace(json, volatile_value, "$1\"<num>\"");
}

/// The pinned instrumented run. One pool lane keeps every count (chunks,
/// jobs, per-lane attribution) deterministic; the seed-fixed pipeline
/// keeps epochs, ops counts and predictions deterministic.
std::string run_pinned_metrics() {
  obs::Registry& reg = obs::Registry::instance();
  obs::set_tracing(false);
  obs::set_metrics(false);
  reg.reset();
  obs::set_tracing(true);
  obs::set_metrics(true);

  ThreadPool pool(1);
  const auto ds = data::make_benchmark("PAGE");
  enc::EncoderConfig cfg;
  cfg.dims = 1024;
  enc::GenericEncoder encoder(cfg);
  (void)model::run_hdc_classification(encoder, ds, 5, pool);

  obs::MetricsSnapshot snap = obs::collect_metrics();
  snap.pool = pool.stats();
  // Counters registered by OTHER tests in this binary survive reset() as
  // zero-valued entries (the macros cache Counter references, so entries
  // are never erased). Drop them: the fixture pins what the pipeline
  // records, independent of which suites ran first.
  auto drop_zeros = [](std::vector<std::pair<std::string, std::uint64_t>>& v) {
    std::erase_if(v, [](const auto& kv) { return kv.second == 0; });
  };
  drop_zeros(snap.counters);
  drop_zeros(snap.gauges);
  std::erase_if(snap.histograms,
                [](const auto& kv) { return kv.second.count == 0; });
  obs::set_tracing(false);
  obs::set_metrics(false);
  reg.reset();
  return scrub_volatile(obs::metrics_to_json(snap));
}

TEST(ObsGolden, ScrubbedMetricsMatchCommittedFixture) {
#if !GENERIC_OBS_ENABLED
  GTEST_SKIP() << "built with GENERIC_OBS=OFF — no metrics to pin";
#else
  const std::string got = run_pinned_metrics();

  if (std::getenv("GENERIC_UPDATE_GOLDEN") != nullptr) {
    std::ofstream f(fixture_path(), std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(f) << "cannot write fixture " << fixture_path();
    f << got;
    GTEST_SKIP() << "fixture regenerated at " << fixture_path();
  }

  const std::string want = read_file(fixture_path());
  ASSERT_FALSE(want.empty())
      << "missing fixture " << fixture_path()
      << " — run with GENERIC_UPDATE_GOLDEN=1 to create it";
  EXPECT_EQ(got, want)
      << "metrics document diverged from the committed fixture; if the "
         "schema or instrumentation change is intentional, regenerate "
         "with GENERIC_UPDATE_GOLDEN=1";
#endif
}

TEST(ObsGolden, FixtureDeclaresSchemaAndCoreSections) {
  // Independent of the byte comparison: the committed fixture itself must
  // carry the v1 schema, the scrub marker, and the instrumented stages a
  // pipeline run is expected to produce.
  const std::string want = read_file(fixture_path());
  ASSERT_FALSE(want.empty()) << "missing fixture " << fixture_path();
  EXPECT_NE(want.find("\"schema\": \"generic.metrics.v1\""),
            std::string::npos);
  EXPECT_NE(want.find("\"wall_time_s\": \"<num>\""), std::string::npos)
      << "fixture was committed unscrubbed";
  for (const char* marker :
       {"\"encode.samples\"", "\"train.samples\"", "\"pool.jobs\"",
        "\"pipeline.run\"", "\"predict.batch\"", "\"thread_pool\"",
        "\"lanes\": 1"})
    EXPECT_NE(want.find(marker), std::string::npos) << "missing " << marker;
}

/// Acceptance contract of the whole layer: enabling collection must not
/// perturb the computation. The campaign JSON (every accuracy to 9
/// significant digits) is compared byte for byte with collection off vs
/// fully on, serial and pooled.
std::string run_pinned_campaign(std::size_t threads) {
  const auto ds = data::make_benchmark("PAGE");
  enc::EncoderConfig cfg;
  cfg.dims = 1024;
  enc::GenericEncoder encoder(cfg);
  encoder.fit(ds.train_x);
  const auto test = model::encode_all(encoder, ds.test_x);
  const auto train = model::encode_all(encoder, ds.train_x);
  model::HdcClassifier clf(1024, ds.num_classes);
  clf.fit(train, ds.train_y, 5);
  clf.quantize(8);

  resilience::CampaignConfig cc;
  cc.kinds = {resilience::FaultKind::kTransient,
              resilience::FaultKind::kDeadBlock};
  cc.rates = {0.0, 1e-3};
  cc.trials = 2;
  cc.seed = 20220722;
  cc.threads = threads;
  return resilience::campaign_to_json(
      resilience::run_campaign(clf, test, ds.test_y, cc));
}

class ObsDeterminism : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_tracing(false);
    obs::set_metrics(false);
    obs::Registry::instance().reset();
  }
  void TearDown() override { SetUp(); }
};

TEST_F(ObsDeterminism, CollectionOnAndOffProduceIdenticalCampaignJson) {
  const std::string off = run_pinned_campaign(1);
  obs::set_tracing(true);
  obs::set_metrics(true);
  const std::string on = run_pinned_campaign(1);
  EXPECT_EQ(off, on)
      << "instrumentation perturbed the serial campaign output";
}

TEST_F(ObsDeterminism, InstrumentedParallelRunMatchesSerialUninstrumented) {
  const std::string serial_off = run_pinned_campaign(1);
  obs::set_tracing(true);
  obs::set_metrics(true);
  const std::string pooled_on = run_pinned_campaign(4);
  EXPECT_EQ(serial_off, pooled_on)
      << "instrumentation or pooling perturbed the campaign output";
}

}  // namespace
}  // namespace generic
