// Unit tests for the obs core (src/obs/obs.h): counters, gauges, span
// recording gated by the runtime switches, per-thread tracks, stage
// aggregation, the per-thread span cap, and reset().
#include "obs/obs.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

namespace generic::obs {
namespace {

/// Every test starts from a clean registry with collection off and leaves
/// it that way — the registry is process-wide state.
class ObsCore : public ::testing::Test {
 protected:
  void SetUp() override {
    set_tracing(false);
    set_metrics(false);
    Registry::instance().reset();
  }
  void TearDown() override {
    set_tracing(false);
    set_metrics(false);
    Registry::instance().reset();
  }
};

TEST_F(ObsCore, CounterAccumulatesAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add(3);
  c.add(4);
  EXPECT_EQ(c.value(), 7u);
  c.reset_value();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsCore, GaugeMaxOfIsAHighWatermark) {
  Gauge g;
  g.max_of(5);
  g.max_of(3);  // lower — ignored
  EXPECT_EQ(g.value(), 5u);
  g.max_of(9);
  EXPECT_EQ(g.value(), 9u);
  g.set(1);
  EXPECT_EQ(g.value(), 1u);
}

TEST_F(ObsCore, RegistryHandlesAreStablePerName) {
  Registry& reg = Registry::instance();
  Counter& a = reg.counter("test.counter");
  Counter& b = reg.counter("test.counter");
  EXPECT_EQ(&a, &b);
  a.add(2);
  const auto values = reg.counter_values();
  bool found = false;
  for (const auto& [name, v] : values)
    if (name == "test.counter") {
      found = true;
      EXPECT_EQ(v, 2u);
    }
  EXPECT_TRUE(found);
}

TEST_F(ObsCore, SpansIgnoredWhileCollectionOff) {
  { ScopedSpan span("test.off"); }
  EXPECT_TRUE(Registry::instance().trace_events().empty());
  EXPECT_TRUE(Registry::instance().stage_stats().empty());
}

TEST_F(ObsCore, TracingRecordsEventsMetricsRecordsStages) {
  Registry& reg = Registry::instance();
  set_tracing(true);
  { ScopedSpan span("test.trace_only"); }
  ASSERT_EQ(reg.trace_events().size(), 1u);
  EXPECT_STREQ(reg.trace_events()[0].name, "test.trace_only");
  EXPECT_TRUE(reg.stage_stats().empty()) << "metrics were off";

  set_tracing(false);
  set_metrics(true);
  { ScopedSpan span("test.metrics_only"); }
  EXPECT_EQ(reg.trace_events().size(), 1u) << "tracing was off";
  ASSERT_EQ(reg.stage_stats().size(), 1u);
  EXPECT_EQ(reg.stage_stats()[0].first, "test.metrics_only");
}

TEST_F(ObsCore, StageAggregatesAreExactOverKnownDurations) {
  Registry& reg = Registry::instance();
  set_metrics(true);
  reg.record_span("test.stage", 100, 150);  // 50 ns
  reg.record_span("test.stage", 200, 230);  // 30 ns
  reg.record_span("test.stage", 300, 380);  // 80 ns
  const auto stages = reg.stage_stats();
  ASSERT_EQ(stages.size(), 1u);
  const StageStats& s = stages[0].second;
  EXPECT_EQ(s.calls, 3u);
  EXPECT_EQ(s.total_ns, 160u);
  EXPECT_EQ(s.min_ns, 30u);
  EXPECT_EQ(s.max_ns, 80u);
}

TEST_F(ObsCore, SpanEventsAreOrderedWithinATrack) {
  Registry& reg = Registry::instance();
  set_tracing(true);
  reg.record_span("b", 200, 300);
  reg.record_span("a", 100, 400);  // earlier start — must sort first
  const auto events = reg.trace_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "a");
  EXPECT_STREQ(events[1].name, "b");
}

TEST_F(ObsCore, PerThreadCapCountsDrops) {
  Registry& reg = Registry::instance();
  set_tracing(true);
  for (std::size_t i = 0; i < Registry::kMaxSpansPerThread + 7; ++i)
    reg.record_span("test.cap", i, i + 1);
  EXPECT_EQ(reg.dropped_spans(), 7u);
  EXPECT_EQ(reg.trace_events().size(), Registry::kMaxSpansPerThread);
}

TEST_F(ObsCore, ThreadsGetDistinctNamedTracks) {
  Registry& reg = Registry::instance();
  set_tracing(true);
  set_current_thread_name("obs-test-main");
  { ScopedSpan span("test.main_span"); }
  std::thread t([&] {
    set_current_thread_name("obs-test-worker");
    ScopedSpan span("test.worker_span");
  });
  t.join();  // worker buffer retires into the registry

  const auto events = reg.trace_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].track, events[1].track);

  const auto tracks = reg.track_names();
  std::vector<std::string> names;
  for (const auto& [track, name] : tracks) names.push_back(name);
  EXPECT_NE(std::find(names.begin(), names.end(), "obs-test-main"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "obs-test-worker"),
            names.end());
}

TEST_F(ObsCore, ResetClearsSpansStagesCountersAndDrops) {
  Registry& reg = Registry::instance();
  set_tracing(true);
  set_metrics(true);
  reg.record_span("test.reset", 1, 2);
  reg.counter("test.reset_counter").add(5);
  reg.gauge("test.reset_gauge").max_of(5);
  reg.reset();
  EXPECT_TRUE(reg.trace_events().empty());
  EXPECT_TRUE(reg.stage_stats().empty());
  EXPECT_EQ(reg.dropped_spans(), 0u);
  for (const auto& [name, v] : reg.counter_values()) EXPECT_EQ(v, 0u) << name;
  for (const auto& [name, v] : reg.gauge_values()) EXPECT_EQ(v, 0u) << name;
}

TEST_F(ObsCore, MacrosFeedTheRegistryWhenCompiledIn) {
#if !GENERIC_OBS_ENABLED
  GTEST_SKIP() << "built with GENERIC_OBS=OFF — macros are no-ops";
#else
  Registry& reg = Registry::instance();
  set_tracing(true);
  set_metrics(true);
  {
    GENERIC_SPAN("test.macro_span");
    GENERIC_COUNTER_ADD("test.macro_counter", 3);
    GENERIC_GAUGE_MAX("test.macro_gauge", 11);
  }
  bool saw_span = false;
  for (const auto& [name, s] : reg.stage_stats())
    saw_span |= name == "test.macro_span";
  EXPECT_TRUE(saw_span);
  EXPECT_EQ(reg.counter("test.macro_counter").value(), 3u);
  EXPECT_EQ(reg.gauge("test.macro_gauge").value(), 11u);
#endif
}

TEST_F(ObsCore, ConcurrentRecordingIsRaceFree) {
  // Hammer spans, counters and snapshot reads from several threads at once;
  // run under the tsan preset to prove the locking discipline.
  Registry& reg = Registry::instance();
  set_tracing(true);
  set_metrics(true);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 500; ++i) {
        ScopedSpan span("test.concurrent");
        GENERIC_COUNTER_ADD("test.concurrent_counter", 1);
        if (t == 0 && i % 50 == 0) {
          (void)reg.trace_events();
          (void)reg.stage_stats();
          (void)reg.dropped_spans();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
#if GENERIC_OBS_ENABLED
  EXPECT_EQ(reg.counter("test.concurrent_counter").value(), 2000u);
#endif
}

TEST_F(ObsCore, HistogramBucketsByBitWidth) {
  Histogram h;
  h.record(0);  // bucket 0
  h.record(1);  // bucket 1
  h.record(2);  // bucket 2: [2, 3]
  h.record(3);
  h.record(1000);  // bucket 10: [512, 1023]
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, 1006u);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 2u);
  EXPECT_EQ(snap.buckets[10], 1u);
  EXPECT_EQ(HistogramSnapshot::bucket_upper(0), 0u);
  EXPECT_EQ(HistogramSnapshot::bucket_upper(2), 3u);
  EXPECT_EQ(HistogramSnapshot::bucket_upper(10), 1023u);
}

TEST_F(ObsCore, HistogramPercentilesUseCeilRank) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.record(100);   // bucket 7, upper 127
  for (int i = 0; i < 10; ++i) h.record(5000);  // bucket 13, upper 8191
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.percentile(0.50), 127u);
  EXPECT_EQ(snap.percentile(0.90), 127u);
  EXPECT_EQ(snap.percentile(0.95), 8191u);
  EXPECT_EQ(snap.percentile(0.99), 8191u);
  EXPECT_EQ(snap.percentile(0.0), 127u);   // ceil-rank floor is rank 1
  EXPECT_EQ(snap.percentile(1.0), 8191u);
  // The log-2 layout guarantees the upper bound is < 2x the true value.
  EXPECT_LT(snap.percentile(0.5), 2 * 100u);
  EXPECT_LT(snap.percentile(0.99), 2 * 5000u);
}

TEST_F(ObsCore, HistogramEmptyAndReset) {
  Histogram h;
  EXPECT_EQ(h.snapshot().percentile(0.99), 0u);
  h.record(42);
  h.reset_value();
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0u);
}

TEST_F(ObsCore, RegistryHistogramsAreNamedAndResettable) {
  Registry& reg = Registry::instance();
  Histogram& h = reg.histogram("test.latency");
  EXPECT_EQ(&h, &reg.histogram("test.latency"));  // stable handle
  h.record(7);
  auto values = reg.histogram_values();
  bool found = false;
  for (const auto& [name, snap] : values)
    if (name == "test.latency") {
      found = true;
      EXPECT_EQ(snap.count, 1u);
    }
  EXPECT_TRUE(found);
  reg.reset();
  for (const auto& [name, snap] : reg.histogram_values()) {
    if (name == "test.latency") {
      EXPECT_EQ(snap.count, 0u);
    }
  }
}

TEST_F(ObsCore, HistogramMacroRecordsWhenCompiledIn) {
#if !GENERIC_OBS_ENABLED
  GTEST_SKIP() << "built with GENERIC_OBS=OFF — macros are no-ops";
#else
  GENERIC_HISTO_RECORD("test.histo_macro", 9);
  GENERIC_HISTO_RECORD("test.histo_macro", 17);
  const HistogramSnapshot snap =
      Registry::instance().histogram("test.histo_macro").snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.sum, 26u);
#endif
}

}  // namespace
}  // namespace generic::obs
