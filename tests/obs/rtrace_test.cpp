// Recorder-level tests for the request tracer (obs/rtrace.h): flight-ring
// wrap/dropped accounting, trace-log capture, switch gating, and the
// empty-but-valid exporter contract that -DGENERIC_OBS=OFF builds (and
// runs without --rtrace) rely on.
#include "obs/rtrace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

namespace generic::obs::rtrace {
namespace {

class RtraceTest : public ::testing::Test {
 protected:
  void SetUp() override { wipe(); }
  void TearDown() override { wipe(); }
  static void wipe() {
    set_trace(false);
    set_flight(false);
    set_flight_capacity(kDefaultFlightCapacity);
    reset();
  }
};

void record_n(std::size_t n, std::uint64_t base_vt = 0) {
  for (std::size_t i = 0; i < n; ++i)
    record(EventKind::kPredict, base_vt + i, i, 1, 0,
           static_cast<std::int64_t>(i));
}

TEST_F(RtraceTest, EventKindNamesCoverTheSchema) {
  ASSERT_EQ(static_cast<std::size_t>(EventKind::kFleetShed) + 1,
            kNumEventKinds);
  EXPECT_EQ(event_kind_name(EventKind::kAdmit), "admit");
  EXPECT_EQ(event_kind_name(EventKind::kSloAlert), "slo_alert");
  EXPECT_EQ(event_kind_name(EventKind::kEncoderScrub), "encoder_scrub");
  EXPECT_EQ(event_kind_name(EventKind::kNetAccept), "net_accept");
  EXPECT_EQ(event_kind_name(EventKind::kFleetShed), "fleet_shed");
  for (std::size_t i = 0; i < kNumEventKinds; ++i)
    EXPECT_FALSE(event_kind_name(static_cast<EventKind>(i)).empty()) << i;
}

#if GENERIC_OBS_ENABLED

TEST_F(RtraceTest, SinksOffRecordsNothing) {
  record_n(10);
  EXPECT_TRUE(trace_log().events.empty());
  EXPECT_EQ(flight_log().recorded, 0u);
}

TEST_F(RtraceTest, TraceLogKeepsEverythingInOrder) {
  set_trace(true);
  record_n(100);
  const TraceLog log = trace_log();
  ASSERT_EQ(log.events.size(), 100u);
  EXPECT_EQ(log.dropped, 0u);
  for (std::size_t i = 0; i < log.events.size(); ++i) {
    EXPECT_EQ(log.events[i].seq, i);
    EXPECT_EQ(log.events[i].vt_us, i);
    EXPECT_EQ(log.events[i].request, i);
  }
}

TEST_F(RtraceTest, FlightRingWrapsKeepsLastNAndCountsDrops) {
  set_flight_capacity(8);
  set_flight(true);
  record_n(8 + 5);  // capacity k, record k + m
  const FlightLog log = flight_log();
  EXPECT_EQ(log.capacity, 8u);
  EXPECT_EQ(log.recorded, 13u);
  EXPECT_EQ(log.dropped, 5u);  // the m oldest were overwritten
  ASSERT_EQ(log.events.size(), 8u);
  // Oldest first, and seq is the FULL-stream position (pre-wrap numbering).
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_EQ(log.events[i].seq, 5 + i) << "slot " << i;
}

TEST_F(RtraceTest, FlightRingBelowCapacityDropsNothing) {
  set_flight_capacity(16);
  set_flight(true);
  record_n(7);
  const FlightLog log = flight_log();
  EXPECT_EQ(log.recorded, 7u);
  EXPECT_EQ(log.dropped, 0u);
  ASSERT_EQ(log.events.size(), 7u);
  EXPECT_EQ(log.events.front().seq, 0u);
  EXPECT_EQ(log.events.back().seq, 6u);
}

TEST_F(RtraceTest, BothSinksShareOneSeqStream) {
  set_trace(true);
  set_flight_capacity(4);
  set_flight(true);
  record_n(10);
  const TraceLog t = trace_log();
  const FlightLog f = flight_log();
  ASSERT_EQ(t.events.size(), 10u);
  ASSERT_EQ(f.events.size(), 4u);
  // The ring's survivors are literally the tail of the trace log.
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(f.events[i], t.events[6 + i]);
}

TEST_F(RtraceTest, SetFlightCapacityDropsContentsResetZeroesCounters) {
  set_flight_capacity(4);
  set_flight(true);
  record_n(6);
  set_flight_capacity(8);  // resize drops current contents
  EXPECT_EQ(flight_capacity(), 8u);
  EXPECT_TRUE(flight_log().events.empty());
  record_n(3, 100);
  reset();
  EXPECT_TRUE(flight_log().events.empty());
  EXPECT_EQ(flight_log().recorded, 0u);
  record_n(1);
  EXPECT_EQ(trace_log().events.size(), 0u);  // trace sink still off
  EXPECT_EQ(flight_log().events.front().seq, 0u);  // seq restarted
}

TEST_F(RtraceTest, RtraceJsonRendersEventsAndNullRequests) {
  set_trace(true);
  record(EventKind::kAdmit, 10, 7, 2, 1, 3);
  record(EventKind::kSwapInstall, 20, kNoRequest, 3, 0, 0);
  const std::string json = rtrace_to_json();
  EXPECT_NE(json.find("\"schema\": \"generic.rtrace.v1\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"obs_enabled\": true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"recorded\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"kind\": \"admit\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"request\": 7"), std::string::npos) << json;
  // Engine-scoped events render an explicit null, not the sentinel value.
  EXPECT_NE(json.find("\"request\": null"), std::string::npos) << json;
  EXPECT_EQ(json.find("18446744073709551615"), std::string::npos) << json;
}

TEST_F(RtraceTest, ChromeJsonLinksMultiEventRequestsWithSpansAndFlows) {
  set_trace(true);
  record(EventKind::kAdmit, 10, 1, 1, 0, 0);
  record(EventKind::kEncode, 20, 1, 1, 0, 512);
  record(EventKind::kPredict, 30, 1, 1, 0, 2);
  record(EventKind::kDriftAlarm, 40);  // single, engine-scoped: no span
  const std::string json = rtrace_to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos) << json;
  EXPECT_NE(json.find("generic.rtrace.chrome.v1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos) << json;
  // Async request span and the flow arrows stitching its three slices.
  EXPECT_NE(json.find("\"ph\": \"b\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\": \"e\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos) << json;
}

TEST_F(RtraceTest, FlightJsonCarriesWrapAccounting) {
  set_flight_capacity(4);
  set_flight(true);
  record_n(6);
  const std::string json = flight_to_json();
  EXPECT_NE(json.find("\"schema\": \"generic.flight.v1\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"capacity\": 4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"recorded\": 6"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dropped\": 2"), std::string::npos) << json;
}

#else  // GENERIC_OBS_ENABLED == 0

TEST_F(RtraceTest, ObsOffRecordIsInertButSwitchesStillWork) {
  set_trace(true);
  set_flight(true);
  record_n(10);
  EXPECT_TRUE(trace_log().events.empty());
  EXPECT_EQ(flight_log().recorded, 0u);
}

#endif  // GENERIC_OBS_ENABLED

// Empty logs must still render complete, schema-stamped documents — this
// is what --rtrace/--flight-dump emit under -DGENERIC_OBS=OFF (and what
// any run that recorded nothing emits), so downstream parsers never see a
// missing file or truncated JSON.
TEST_F(RtraceTest, EmptyLogsExportValidDocuments) {
  const std::string r = rtrace_to_json();
  EXPECT_NE(r.find("\"schema\": \"generic.rtrace.v1\""), std::string::npos);
  EXPECT_NE(r.find("\"events\": []"), std::string::npos) << r;
  EXPECT_NE(r.find("\"recorded\": 0"), std::string::npos) << r;

  const std::string f = flight_to_json();
  EXPECT_NE(f.find("\"schema\": \"generic.flight.v1\""), std::string::npos);
  EXPECT_NE(f.find("\"events\": []"), std::string::npos) << f;

  const std::string c = rtrace_to_chrome_json();
  EXPECT_NE(c.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(c.find("generic.rtrace.chrome.v1"), std::string::npos);
  const bool says_on = r.find("\"obs_enabled\": true") != std::string::npos;
  EXPECT_EQ(says_on, GENERIC_OBS_ENABLED != 0);
}

}  // namespace
}  // namespace generic::obs::rtrace
