// Tests for the exporters (src/obs/export.h): the generic.metrics.v1 JSON
// field order, the Chrome trace-event shape, derived-throughput emission
// rules, and Session file writing / flag lifecycle.
#include "obs/export.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/obs.h"

namespace generic::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class ObsExport : public ::testing::Test {
 protected:
  void SetUp() override {
    set_tracing(false);
    set_metrics(false);
    Registry::instance().reset();
  }
  void TearDown() override {
    set_tracing(false);
    set_metrics(false);
    Registry::instance().reset();
  }
};

TEST_F(ObsExport, MetricsJsonHasStableSchemaAndFieldOrder) {
  MetricsSnapshot snap;
  snap.wall_time_s = 1.5;
  snap.peak_rss_bytes = 1024;
  snap.dropped_spans = 0;
  snap.counters = {{"encode.samples", 200}};
  snap.gauges = {{"pool.max_chunks_per_job", 4}};
  StageStats st;
  st.calls = 2;
  st.total_ns = 2'000'000'000ull;  // 2 s
  st.min_ns = 900'000'000ull;
  st.max_ns = 1'100'000'000ull;
  snap.stages = {{"encode.batch", st}};

  const std::string json = metrics_to_json(snap);
  const char* keys_in_order[] = {
      "\"schema\": \"generic.metrics.v1\"", "\"obs_enabled\"",
      "\"wall_time_s\"",                    "\"peak_rss_bytes\": 1024",
      "\"dropped_spans\": 0",               "\"counters\"",
      "\"encode.samples\": 200",            "\"gauges\"",
      "\"pool.max_chunks_per_job\": 4",     "\"stages\"",
      "\"encode.batch\"",                   "\"calls\": 2",
      "\"total_s\": 2",                     "\"mean_s\": 1",
      "\"min_s\": 0.9",                     "\"max_s\": 1.1",
      "\"derived\"",                        "\"thread_pool\"",
  };
  std::size_t pos = 0;
  for (const char* key : keys_in_order) {
    const std::size_t found = json.find(key, pos);
    ASSERT_NE(found, std::string::npos) << "missing or out of order: " << key
                                        << "\n" << json;
    pos = found;
  }
  // encode.samples counter + encode.batch stage present => derived rate.
  EXPECT_NE(json.find("\"encode.samples_per_s\": 100"), std::string::npos)
      << json;
  // No pool stats attached => explicit null, not an empty object.
  EXPECT_NE(json.find("\"thread_pool\": null"), std::string::npos) << json;
}

TEST_F(ObsExport, DerivedRatesOnlyEmittedWhenBothSidesPresent) {
  MetricsSnapshot snap;
  snap.counters = {{"predict.queries", 50}};  // counter without its stage
  StageStats st;
  st.calls = 1;
  st.total_ns = 1'000'000'000ull;
  snap.stages = {{"train.batch", st}};  // stage without its counter
  const std::string json = metrics_to_json(snap);
  EXPECT_EQ(json.find("per_s"), std::string::npos) << json;
}

TEST_F(ObsExport, PoolStatsBlockListsEveryLane) {
  MetricsSnapshot snap;
  PoolStats pool;
  pool.lanes = 2;
  pool.wall_ns = 3'000'000'000ull;
  pool.jobs = 5;
  pool.chunks = 10;
  pool.max_chunks_per_job = 2;
  pool.per_lane = {{1'000'000'000ull, 6}, {500'000'000ull, 4}};
  snap.pool = pool;
  const std::string json = metrics_to_json(snap);
  EXPECT_NE(json.find("\"lanes\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"jobs\": 5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"chunks_executed\": 10"), std::string::npos) << json;
  EXPECT_NE(json.find("\"max_chunks_per_job\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"lane\": 0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"lane\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"busy_s\": 1,"), std::string::npos) << json;
  EXPECT_NE(json.find("\"busy_s\": 0.5,"), std::string::npos) << json;
  EXPECT_NE(json.find("\"chunks\": 6"), std::string::npos) << json;
}

TEST_F(ObsExport, TraceJsonIsChromeTraceShaped) {
  Registry& reg = Registry::instance();
  set_tracing(true);
  set_current_thread_name("obs-export-test");
  reg.record_span("test.span", reg.now_ns(), reg.now_ns() + 1000);
  const std::string json = trace_to_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"obs-export-test\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\": \"test.span\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("generic.trace.v1"), std::string::npos) << json;
}

TEST_F(ObsExport, TraceJsonRendersSpanArgsInRecordedOrder) {
  Registry& reg = Registry::instance();
  set_tracing(true);
  const std::uint64_t t0 = reg.now_ns();
  reg.record_span("swap.span", t0, t0 + 1000, {{"version", 3}, {"rung", 2}});
  const std::string json = trace_to_json();
  EXPECT_NE(json.find("\"name\": \"swap.span\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"args\": {\"version\": 3, \"rung\": 2}"),
            std::string::npos)
      << json;
}

TEST_F(ObsExport, SpanWithoutArgsRendersNoArgsObject) {
  Registry& reg = Registry::instance();
  set_tracing(true);
  const std::uint64_t t0 = reg.now_ns();
  reg.record_span("plain.span", t0, t0 + 1000);
  const std::string json = trace_to_json();
  const std::size_t at = json.find("\"name\": \"plain.span\"");
  ASSERT_NE(at, std::string::npos) << json;
  // The rest of this trace event (up to its closing brace) has no "args"
  // object; only metadata events carry one.
  const std::string event = json.substr(at, json.find('}', at) - at);
  EXPECT_EQ(event.find("\"args\""), std::string::npos) << json;
}

TEST_F(ObsExport, SpanArgsBeyondMaxAreDroppedAtRecordTime) {
  Registry& reg = Registry::instance();
  set_tracing(true);
  const SpanArg many[] = {{"a0", 0}, {"a1", 1}, {"a2", 2},
                          {"a3", 3}, {"a4", 4}, {"a5", 5}};
  const std::uint64_t t0 = reg.now_ns();
  reg.record_span("many.span", t0, t0 + 1000, many, 6);
  const std::string json = trace_to_json();
  EXPECT_NE(json.find("\"a3\": 3"), std::string::npos) << json;
  EXPECT_EQ(json.find("\"a4\""), std::string::npos) << json;
  EXPECT_EQ(json.find("\"a5\""), std::string::npos) << json;
}

TEST_F(ObsExport, ScopedSpanMacroAttachesArgs) {
  set_tracing(true);
  {
    GENERIC_SPAN_ARGS("test.macro_span", {"batch", 7}, {"epoch", 1});
  }
  const std::string json = trace_to_json();
#if GENERIC_OBS_ENABLED
  EXPECT_NE(json.find("\"name\": \"test.macro_span\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"args\": {\"batch\": 7, \"epoch\": 1}"),
            std::string::npos)
      << json;
#else
  EXPECT_EQ(json.find("test.macro_span"), std::string::npos) << json;
#endif
}

TEST_F(ObsExport, SessionEnablesCollectsAndWritesFiles) {
  const std::string dir = ::testing::TempDir();
  const std::string trace_path = dir + "/obs_session_trace.json";
  const std::string metrics_path = dir + "/obs_session_metrics.json";
  {
    Session session(trace_path, metrics_path);
#if GENERIC_OBS_ENABLED
    EXPECT_TRUE(tracing_enabled());
    EXPECT_TRUE(metrics_enabled());
#endif
    GENERIC_SPAN("test.session_span");
    GENERIC_COUNTER_ADD("test.session_counter", 1);
  }
  EXPECT_FALSE(tracing_enabled());
  EXPECT_FALSE(metrics_enabled());

  const std::string trace = slurp(trace_path);
  const std::string metrics = slurp(metrics_path);
  ASSERT_FALSE(trace.empty());
  ASSERT_FALSE(metrics.empty());
  EXPECT_NE(metrics.find("\"schema\": \"generic.metrics.v1\""),
            std::string::npos);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
#if GENERIC_OBS_ENABLED
  EXPECT_NE(trace.find("test.session_span"), std::string::npos);
  EXPECT_NE(metrics.find("\"test.session_counter\": 1"), std::string::npos);
  EXPECT_NE(metrics.find("\"obs_enabled\": true"), std::string::npos);
#else
  EXPECT_NE(metrics.find("\"obs_enabled\": false"), std::string::npos);
#endif
  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
}

TEST_F(ObsExport, SessionWithoutPathsWritesNothingAndStaysOff) {
  { Session session("", ""); }
  EXPECT_FALSE(tracing_enabled());
  EXPECT_FALSE(metrics_enabled());
  EXPECT_TRUE(Registry::instance().trace_events().empty());
}

TEST_F(ObsExport, HistogramsRenderSummaryAndSparseBuckets) {
  MetricsSnapshot snap;
  HistogramSnapshot h;
  h.count = 3;
  h.sum = 1102;
  h.buckets[7] = 2;    // two values near 100
  h.buckets[10] = 1;   // one near 1000
  snap.histograms = {{"serve.latency_us", h}};
  const std::string json = metrics_to_json(snap);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"serve.latency_us\": {\"count\": 3, \"sum\": 1102, "
                      "\"p50\": 127, \"p95\": 1023, \"p99\": 1023, "
                      "\"buckets\": {\"7\": 2, \"10\": 1}}"),
            std::string::npos)
      << json;
  // Histograms sit between gauges and stages in the fixed field order.
  EXPECT_LT(json.find("\"gauges\""), json.find("\"histograms\""));
  EXPECT_LT(json.find("\"histograms\""), json.find("\"stages\""));
}

TEST_F(ObsExport, HardwareBlockNullUnlessInjected) {
  MetricsSnapshot snap;
  EXPECT_NE(metrics_to_json(snap).find("\"hardware\": null"),
            std::string::npos);
  HardwareStats hw;
  hw.energy_j = 0.25;
  hw.elapsed_s = 1.5;
  hw.cycles = 123456;
  snap.hardware = hw;
  const std::string json = metrics_to_json(snap);
  EXPECT_NE(json.find("\"hardware\": {\"energy_j\": 0.25, \"elapsed_s\": 1.5, "
                      "\"cycles\": 123456}"),
            std::string::npos)
      << json;
  // hardware renders after thread_pool, closing the document.
  EXPECT_LT(json.find("\"thread_pool\""), json.find("\"hardware\""));
}

TEST_F(ObsExport, JsonLineIsOneCompactLine) {
  MetricsSnapshot snap;
  snap.counters = {{"a", 1}, {"b", 2}};
  const std::string line = metrics_to_json_line(snap);
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  EXPECT_EQ(line.find('\n'), line.size() - 1);  // exactly one newline
  EXPECT_NE(line.find("\"schema\": \"generic.metrics.v1\""),
            std::string::npos);
  EXPECT_NE(line.find("\"a\": 1"), std::string::npos);
}

TEST_F(ObsExport, SessionStreamsPeriodicSnapshotLines) {
  const std::string path = "obs_stream_test_metrics.jsonl";
  {
    Session session("", path);
    session.stream_metrics_every(0.02);
    GENERIC_COUNTER_ADD("test.stream_counter", 3);
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
  }
  const std::string content = slurp(path);
  std::size_t lines = 0;
  std::istringstream in(content);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    // Every line is a complete one-line generic.metrics.v1 document.
    EXPECT_EQ(line.find('\n'), std::string::npos);
    EXPECT_EQ(line.rfind("{\"schema\": \"generic.metrics.v1\"", 0), 0u)
        << line;
    EXPECT_EQ(line.back(), '}') << line;
  }
  // At least one periodic line plus the final snapshot at destruction.
  EXPECT_GE(lines, 2u);
#if GENERIC_OBS_ENABLED
  EXPECT_NE(content.find("\"test.stream_counter\": 3"), std::string::npos);
#endif
  std::remove(path.c_str());
}

TEST_F(ObsExport, StreamingIgnoredWithoutMetricsPath) {
  Session session("", "");
  session.stream_metrics_every(0.01);  // must be a harmless no-op
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "\"plain\"");
  EXPECT_EQ(json_escape("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_escape("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(json_escape("line\nbreak\ttab\rret"),
            "\"line\\nbreak\\ttab\\rret\"");
  EXPECT_EQ(json_escape(std::string("bell\x07") + "\x1f"),
            "\"bell\\u0007\\u001f\"");
  EXPECT_EQ(json_escape("\b\f"), "\"\\b\\f\"");
}

TEST(JsonEscape, HighBytesDoNotSignExtend) {
  // A 0x80..0xff byte run through a signed char used to sign-extend into
  // an 8-hex-digit escape ending in ffXX; it must stay either literal
  // (valid UTF-8 continuation bytes pass through) or a 4-digit escape.
  std::string s;
  s.push_back(static_cast<char>(0xff));
  const std::string out = json_escape(s);
  EXPECT_EQ(out.find("ffffff"), std::string::npos) << out;
}

TEST(JsonEscape, AppendVariantAppendsWithoutQuotes) {
  std::string out = "prefix:";
  append_json_escaped(out, "a\"b");
  EXPECT_EQ(out, "prefix:a\\\"b");
}

TEST_F(ObsExport, CollectMetricsReportsProcessFacts) {
  set_metrics(true);
  GENERIC_COUNTER_ADD("test.collect", 2);
  const MetricsSnapshot snap = collect_metrics();
  EXPECT_EQ(snap.enabled, GENERIC_OBS_ENABLED != 0);
  EXPECT_GT(snap.peak_rss_bytes, 0u);
#if GENERIC_OBS_ENABLED
  bool found = false;
  for (const auto& [name, v] : snap.counters)
    if (name == "test.collect") {
      found = true;
      EXPECT_EQ(v, 2u);
    }
  EXPECT_TRUE(found);
#endif
}

}  // namespace
}  // namespace generic::obs
