#include "common/bitops.h"

#include <gtest/gtest.h>

#include <vector>

namespace generic {
namespace {

TEST(Bitops, WordsForBits) {
  EXPECT_EQ(words_for_bits(0), 0u);
  EXPECT_EQ(words_for_bits(1), 1u);
  EXPECT_EQ(words_for_bits(64), 1u);
  EXPECT_EQ(words_for_bits(65), 2u);
  EXPECT_EQ(words_for_bits(4096), 64u);
}

TEST(Bitops, LowMask) {
  EXPECT_EQ(low_mask(0), 0ULL);
  EXPECT_EQ(low_mask(1), 1ULL);
  EXPECT_EQ(low_mask(8), 0xFFULL);
  EXPECT_EQ(low_mask(63), 0x7FFFFFFFFFFFFFFFULL);
  EXPECT_EQ(low_mask(64), ~0ULL);
  EXPECT_EQ(low_mask(100), ~0ULL);  // saturates beyond a word
}

TEST(Bitops, GetSetFlipAcrossWordBoundary) {
  std::vector<std::uint64_t> words(3, 0);
  set_bit(words.data(), 63, true);
  set_bit(words.data(), 64, true);
  set_bit(words.data(), 128, true);
  EXPECT_TRUE(get_bit(words.data(), 63));
  EXPECT_TRUE(get_bit(words.data(), 64));
  EXPECT_TRUE(get_bit(words.data(), 128));
  EXPECT_FALSE(get_bit(words.data(), 62));
  EXPECT_FALSE(get_bit(words.data(), 65));
  EXPECT_EQ(words[0], 1ULL << 63);
  EXPECT_EQ(words[1], 1ULL);
  EXPECT_EQ(words[2], 1ULL);

  set_bit(words.data(), 64, false);
  EXPECT_FALSE(get_bit(words.data(), 64));
  flip_bit(words.data(), 64);
  EXPECT_TRUE(get_bit(words.data(), 64));
  flip_bit(words.data(), 64);
  EXPECT_FALSE(get_bit(words.data(), 64));
}

TEST(Bitops, Popcount64) {
  EXPECT_EQ(popcount64(0), 0);
  EXPECT_EQ(popcount64(~0ULL), 64);
  EXPECT_EQ(popcount64(0xF0F0F0F0F0F0F0F0ULL), 32);
}

}  // namespace
}  // namespace generic
