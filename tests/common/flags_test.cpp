// Strict flag parsing (bench/bench_util.h): the zero/negative-interval
// flags that used to be accepted silently (and then divided by zero or
// spun forever downstream) must exit 2 with a pointed message —
// --metrics-every=0, --rate=0, --fault-rate=nonsense and friends all die
// at parse time, before any work runs.
#include "bench/bench_util.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace generic::bench {
namespace {

/// Build a Flags over the given tokens (argv[0] supplied).
Flags make_flags(std::vector<std::string> tokens) {
  static std::vector<std::string> storage;  // keeps c_str()s alive
  storage = std::move(tokens);
  storage.insert(storage.begin(), "flags_test");
  std::vector<char*> argv;
  for (auto& t : storage) argv.push_back(t.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

using FlagsDeathTest = ::testing::Test;

TEST(FlagsDeathTest, PositiveSizeRejectsZero) {
  EXPECT_EXIT(
      {
        Flags f = make_flags({"--rate=0"});
        (void)f.positive_size("--rate", 1800);
      },
      ::testing::ExitedWithCode(2), "must be a positive integer");
}

TEST(FlagsDeathTest, PositiveSizeRejectsNonNumeric) {
  EXPECT_EXIT(
      {
        Flags f = make_flags({"--requests=many"});
        (void)f.positive_size("--requests", 100);
      },
      ::testing::ExitedWithCode(2), "needs an integer");
}

TEST(FlagsDeathTest, PositiveRealRejectsZeroInterval) {
  // The headline case: --metrics-every=0 used to silently disable (or
  // worse, busy-loop) the streamer; now it is a usage error.
  EXPECT_EXIT(
      {
        Flags f = make_flags({"--metrics-every=0"});
        (void)f.positive_real("--metrics-every", 0.0);
      },
      ::testing::ExitedWithCode(2), "must be > 0");
}

TEST(FlagsDeathTest, PositiveRealRejectsNegative) {
  EXPECT_EXIT(
      {
        Flags f = make_flags({"--metrics-every=-1.5"});
        (void)f.positive_real("--metrics-every", 0.0);
      },
      ::testing::ExitedWithCode(2), "must be > 0");
}

TEST(FlagsDeathTest, RealRejectsTrailingGarbage) {
  EXPECT_EXIT(
      {
        Flags f = make_flags({"--fault-rate=0.5x"});
        (void)f.real("--fault-rate", 0.0);
      },
      ::testing::ExitedWithCode(2), "needs a number");
}

TEST(FlagsDeathTest, UnknownFlagStillDiesAtDone) {
  EXPECT_EXIT(
      {
        Flags f = make_flags({"--no-such-flag=1"});
        f.done();
      },
      ::testing::ExitedWithCode(2), "unknown flag");
}

TEST(FlagsTest, AccessorsPassThroughValidValues) {
  Flags f = make_flags({"--rate=250", "--metrics-every=0.5",
                        "--fault-rate=-0.25", "--severity=1e-3"});
  EXPECT_EQ(f.positive_size("--rate", 1800), 250u);
  EXPECT_DOUBLE_EQ(f.positive_real("--metrics-every", 0.0), 0.5);
  // real() (unlike positive_real) admits negatives — rates that mean
  // "disabled" stay expressible.
  EXPECT_DOUBLE_EQ(f.real("--fault-rate", 0.0), -0.25);
  EXPECT_DOUBLE_EQ(f.real("--severity", 0.0), 1e-3);
  f.done();
}

TEST(FlagsTest, AbsentFlagsFallBack) {
  Flags f = make_flags({});
  EXPECT_EQ(f.positive_size("--rate", 1800), 1800u);
  EXPECT_DOUBLE_EQ(f.positive_real("--metrics-every", 0.0), 0.0);
  EXPECT_DOUBLE_EQ(f.real("--fault-rate", 0.125), 0.125);
  f.done();
}

}  // namespace
}  // namespace generic::bench
