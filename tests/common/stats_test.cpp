#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace generic {
namespace {

TEST(Stats, MeanBasics) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, StddevPopulation) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(stddev(xs), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{3.0}), 0.0);
}

TEST(Stats, GeomeanMultiplicative) {
  const std::vector<double> xs{1.0, 10.0, 100.0};
  EXPECT_NEAR(geomean(xs), 10.0, 1e-9);
  const std::vector<double> one{42.0};
  EXPECT_NEAR(geomean(one), 42.0, 1e-9);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({5, 1, 3}), 3.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs{3, -2, 8, 0};
  EXPECT_DOUBLE_EQ(min_of(xs), -2.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 8.0);
}

TEST(Stats, ArgmaxFirstTieWins) {
  const std::vector<double> xs{1, 7, 7, 3};
  EXPECT_EQ(argmax(xs), 1u);
  EXPECT_EQ(argmax(std::vector<double>{}), static_cast<std::size_t>(-1));
}

}  // namespace
}  // namespace generic
