#include "common/rng.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

namespace generic {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.01);
}

TEST(Rng, BelowIsUnbiasedAcrossSmallRange) {
  Rng rng(11);
  std::array<int, 5> counts{};
  const int n = 50000;
  for (int i = 0; i < n; ++i) counts[rng.below(5)]++;
  for (int c : counts) EXPECT_NEAR(c, n / 5, n / 50);
}

TEST(Rng, RangeInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, BernoulliRate) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 50000.0, 0.3, 0.01);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng parent(23);
  Rng c1 = parent.fork(1);
  Rng parent2(23);
  Rng c2 = parent2.fork(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (c1.next_u64() == c2.next_u64());
  EXPECT_LT(equal, 5);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(29);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto sorted = v;
  rng.shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), sorted.begin()));
}

TEST(Rng, ShuffleIsUniformOnPairs) {
  // Kolmogorov-style sanity: each element lands in each slot ~uniformly.
  const int trials = 12000;
  std::array<std::array<int, 4>, 4> slot_counts{};
  Rng rng(31);
  for (int t = 0; t < trials; ++t) {
    std::array<int, 4> v{0, 1, 2, 3};
    rng.shuffle(v);
    for (int pos = 0; pos < 4; ++pos) slot_counts[v[pos]][pos]++;
  }
  for (const auto& row : slot_counts)
    for (int c : row) EXPECT_NEAR(c, trials / 4, trials / 20);
}

TEST(Splitmix64, KnownSequenceIsStable) {
  std::uint64_t s = 0;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), a);
  EXPECT_EQ(splitmix64(s2), b);
}

}  // namespace
}  // namespace generic
