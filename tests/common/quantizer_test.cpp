#include "common/quantizer.h"

#include <gtest/gtest.h>

#include <vector>

namespace generic {
namespace {

TEST(Quantizer, ThrowsBeforeFit) {
  Quantizer q(8);
  EXPECT_THROW(q.bin(0.5f), std::logic_error);
}

TEST(Quantizer, RangeEndpointsClamp) {
  Quantizer q(64);
  q.fit_range(0.0f, 1.0f);
  EXPECT_EQ(q.bin(-5.0f), 0u);
  EXPECT_EQ(q.bin(0.0f), 0u);
  EXPECT_EQ(q.bin(1.0f), 63u);
  EXPECT_EQ(q.bin(99.0f), 63u);
}

TEST(Quantizer, BinsAreMonotone) {
  Quantizer q(16);
  q.fit_range(-1.0f, 1.0f);
  std::size_t prev = 0;
  for (float v = -1.0f; v <= 1.0f; v += 0.01f) {
    const std::size_t b = q.bin(v);
    EXPECT_GE(b, prev);
    prev = b;
  }
  EXPECT_EQ(prev, 15u);
}

TEST(Quantizer, UniformCoverage) {
  Quantizer q(4);
  q.fit_range(0.0f, 4.0f);
  EXPECT_EQ(q.bin(0.5f), 0u);
  EXPECT_EQ(q.bin(1.5f), 1u);
  EXPECT_EQ(q.bin(2.5f), 2u);
  EXPECT_EQ(q.bin(3.5f), 3u);
}

TEST(Quantizer, FitFromSamples) {
  const std::vector<std::vector<float>> samples{{-2.0f, 0.0f}, {1.0f, 6.0f}};
  Quantizer q(8);
  q.fit(samples);
  EXPECT_FLOAT_EQ(q.lo(), -2.0f);
  EXPECT_FLOAT_EQ(q.hi(), 6.0f);
  EXPECT_EQ(q.bin(-2.0f), 0u);
  EXPECT_EQ(q.bin(6.0f), 7u);
}

TEST(Quantizer, DegenerateRangeMapsToBinZero) {
  Quantizer q(8);
  q.fit_range(3.0f, 3.0f);
  EXPECT_EQ(q.bin(3.0f), 0u);
  EXPECT_EQ(q.bin(2.0f), 0u);
}

TEST(Quantizer, TransformWholeVector) {
  Quantizer q(4);
  q.fit_range(0.0f, 4.0f);
  const std::vector<float> x{0.1f, 1.1f, 2.1f, 3.9f};
  const auto bins = q.transform(x);
  EXPECT_EQ(bins, (std::vector<std::uint16_t>{0, 1, 2, 3}));
}

TEST(Quantizer, ZeroBinsRejected) {
  EXPECT_THROW(Quantizer(0), std::invalid_argument);
}

}  // namespace
}  // namespace generic
