#include "common/mitchell.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/rng.h"

namespace generic {
namespace {

TEST(MitchellLog2, ExactOnPowersOfTwo) {
  for (int k = 0; k < 63; ++k) {
    EXPECT_EQ(mitchell_log2(1ULL << k),
              static_cast<std::int64_t>(k) << kMitchellFracBits)
        << "k=" << k;
  }
}

TEST(MitchellLog2, MonotoneNondecreasing) {
  std::int64_t prev = mitchell_log2(1);
  for (std::uint64_t x = 2; x < 5000; ++x) {
    const std::int64_t cur = mitchell_log2(x);
    EXPECT_GE(cur, prev) << "x=" << x;
    prev = cur;
  }
}

TEST(MitchellLog2, WithinKnownErrorBound) {
  // Mitchell's log underestimates by at most ~0.0861 bits.
  Rng rng(5);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t x = 1 + rng.below((1ULL << 40) - 1);
    const double approx = static_cast<double>(mitchell_log2(x)) /
                          static_cast<double>(1 << kMitchellFracBits);
    const double exact = std::log2(static_cast<double>(x));
    EXPECT_LE(approx, exact + 1e-4);
    EXPECT_GE(approx, exact - 0.0862);
  }
}

TEST(MitchellLog2Corrected, TightErrorBound) {
  // The quadratic mantissa correction shrinks the worst-case error from
  // ~0.086 bits to ~0.008 bits — what lets the ASIC's score comparator
  // rank quantized-model margins reliably.
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t x = 1 + rng.below((1ULL << 44) - 1);
    const double approx = static_cast<double>(mitchell_log2_corrected(x)) /
                          static_cast<double>(1 << kMitchellFracBits);
    const double exact = std::log2(static_cast<double>(x));
    EXPECT_NEAR(approx, exact, 0.009) << x;
  }
}

TEST(MitchellLog2Corrected, ExactOnPowersOfTwo) {
  for (int k = 0; k < 50; ++k)
    EXPECT_EQ(mitchell_log2_corrected(1ULL << k),
              static_cast<std::int64_t>(k) << kMitchellFracBits);
}

TEST(MitchellLog2Corrected, MonotoneNondecreasing) {
  std::int64_t prev = mitchell_log2_corrected(1);
  for (std::uint64_t x = 2; x < 5000; ++x) {
    const std::int64_t cur = mitchell_log2_corrected(x);
    EXPECT_GE(cur, prev) << "x=" << x;
    prev = cur;
  }
}

TEST(MitchellDivide, ZeroNumerator) { EXPECT_EQ(mitchell_divide(0, 7), 0u); }

TEST(MitchellDivide, ExactWhenBothPowersOfTwo) {
  EXPECT_EQ(mitchell_divide(1024, 32), 32u);
  EXPECT_EQ(mitchell_divide(8, 8), 1u);
  EXPECT_EQ(mitchell_divide(1ULL << 40, 1ULL << 10), 1ULL << 30);
}

TEST(MitchellDivide, RelativeErrorWithinWorstCaseBound) {
  Rng rng(9);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t a = 1 + rng.below(1ULL << 32);
    const std::uint64_t b = 1 + rng.below(1ULL << 20);
    const double approx = static_cast<double>(mitchell_divide(a, b));
    const double exact = static_cast<double>(a) / static_cast<double>(b);
    // Integer rounding adds up to 0.5/exact relative error on top of the
    // Mitchell bound (~12.5% for division), so only large quotients are in
    // scope — which matches the usage: ASIC scores are large integers.
    if (exact < 64.0) continue;
    const double rel = std::abs(approx - exact) / exact;
    EXPECT_LE(rel, 0.14) << a << "/" << b;
  }
}

TEST(MitchellLogRatio, OrdersQuotientsLikeExactDivision) {
  // The ASIC compares class scores in the log domain; ranking must agree
  // with exact division whenever quotients differ by more than the Mitchell
  // error band (~11%).
  Rng rng(13);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t a1 = 1 + rng.below(1ULL << 30);
    const std::uint64_t b1 = 1 + rng.below(1ULL << 15);
    const std::uint64_t a2 = 1 + rng.below(1ULL << 30);
    const std::uint64_t b2 = 1 + rng.below(1ULL << 15);
    const double q1 = static_cast<double>(a1) / static_cast<double>(b1);
    const double q2 = static_cast<double>(a2) / static_cast<double>(b2);
    if (q1 > 1.30 * q2) {
      EXPECT_GT(mitchell_log_ratio(a1, b1), mitchell_log_ratio(a2, b2));
    } else if (q2 > 1.30 * q1) {
      EXPECT_LT(mitchell_log_ratio(a1, b1), mitchell_log_ratio(a2, b2));
    }
  }
}

TEST(MitchellLogRatio, ZeroMapsToMinusInfinity) {
  EXPECT_EQ(mitchell_log_ratio(0, 5), std::numeric_limits<std::int64_t>::min());
}

}  // namespace
}  // namespace generic
