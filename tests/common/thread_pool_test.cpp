// ThreadPool contract tests: the determinism guarantees every batched API
// builds on (chunk_grid purity, indexed parallel_map slots), plus the
// edge-case behaviour documented in thread_pool.h — serial inline path,
// nested calls degrade to inline, exceptions rethrow on the caller.
#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace generic {
namespace {

TEST(ChunkGrid, CoversRangeExactlyOnceInOrder) {
  for (std::size_t n : {0u, 1u, 2u, 7u, 64u, 100u, 1000u}) {
    for (std::size_t parts : {1u, 2u, 3u, 7u, 16u, 100u}) {
      const auto grid = ThreadPool::chunk_grid(n, parts);
      std::size_t expect_begin = 0;
      for (const auto& [begin, end] : grid) {
        EXPECT_EQ(begin, expect_begin);
        EXPECT_LT(begin, end);
        expect_begin = end;
      }
      EXPECT_EQ(expect_begin, n) << "n=" << n << " parts=" << parts;
      EXPECT_LE(grid.size(), std::min(n, parts));
    }
  }
}

TEST(ChunkGrid, NearEqualSizesFirstChunksGetExtra) {
  const auto grid = ThreadPool::chunk_grid(10, 4);  // 3,3,2,2
  ASSERT_EQ(grid.size(), 4u);
  EXPECT_EQ(grid[0].second - grid[0].first, 3u);
  EXPECT_EQ(grid[1].second - grid[1].first, 3u);
  EXPECT_EQ(grid[2].second - grid[2].first, 2u);
  EXPECT_EQ(grid[3].second - grid[3].first, 2u);
}

TEST(ChunkGrid, PureFunctionOfInputs) {
  EXPECT_EQ(ThreadPool::chunk_grid(1000, 7), ThreadPool::chunk_grid(1000, 7));
}

TEST(ThreadPool, ZeroLanesPicksHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.lanes(), 1u);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce) {
  for (std::size_t lanes : {1u, 2u, 7u, 16u}) {
    ThreadPool pool(lanes);
    const std::size_t n = 257;  // not a multiple of any lane count above
    std::vector<std::atomic<int>> visits(n);
    pool.parallel_for(n, [&](std::size_t begin, std::size_t end, std::size_t) {
      for (std::size_t i = begin; i < end; ++i) visits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(visits[i].load(), 1) << "lanes=" << lanes << " i=" << i;
  }
}

TEST(ThreadPool, ChunkIndexMatchesGridPosition) {
  ThreadPool pool(4);
  const std::size_t n = 103;
  const auto grid = ThreadPool::chunk_grid(n, pool.lanes());
  std::vector<std::pair<std::size_t, std::size_t>> seen(grid.size());
  pool.parallel_for(n, [&](std::size_t begin, std::size_t end,
                           std::size_t chunk) {
    seen[chunk] = {begin, end};  // indexed slot — no lock needed
  });
  EXPECT_EQ(seen, grid);
}

TEST(ThreadPool, ParallelMapPreservesIndexOrder) {
  for (std::size_t lanes : {1u, 2u, 7u, 16u}) {
    ThreadPool pool(lanes);
    const auto out =
        pool.parallel_map<std::size_t>(1000, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 1000u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
  }
}

TEST(ThreadPool, EmptyAndSingletonRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t, std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::size_t begin, std::size_t end, std::size_t c) {
    ++calls;
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1u);
    EXPECT_EQ(c, 0u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ExceptionRethrownOnCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t begin, std::size_t, std::size_t) {
                          if (begin == 0) throw std::runtime_error("chunk 0");
                        }),
      std::runtime_error);
  // Pool must stay usable after a failed job.
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(10, [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t i = begin; i < end; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 45u);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  pool.parallel_for(8, [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t i = begin; i < end; ++i) {
      // A nested call on the same pool must not deadlock; it degrades to
      // inline execution on the worker.
      pool.parallel_for(4, [&](std::size_t b, std::size_t e, std::size_t) {
        total.fetch_add(e - b);
      });
    }
  });
  EXPECT_EQ(total.load(), 32u);
}

TEST(ThreadPool, ManyMoreChunksRequestedThanElements) {
  ThreadPool pool(16);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(3, [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t i = begin; i < end; ++i) sum.fetch_add(i + 1);
  });
  EXPECT_EQ(sum.load(), 6u);
}

TEST(ThreadPool, BackToBackJobsReuseWorkers) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    const auto out = pool.parallel_map<int>(
        17, [round](std::size_t i) { return static_cast<int>(i) + round; });
    for (std::size_t i = 0; i < out.size(); ++i)
      ASSERT_EQ(out[i], static_cast<int>(i) + round);
  }
}

TEST(ThreadPoolStats, FreshPoolReportsZeros) {
  ThreadPool pool(3);
  const obs::PoolStats s = pool.stats();
  EXPECT_EQ(s.lanes, 3u);
  EXPECT_EQ(s.jobs, 0u);
  EXPECT_EQ(s.chunks, 0u);
  EXPECT_EQ(s.max_chunks_per_job, 0u);
  ASSERT_EQ(s.per_lane.size(), 3u);
  for (const auto& lane : s.per_lane) {
    EXPECT_EQ(lane.busy_ns, 0u);
    EXPECT_EQ(lane.chunks, 0u);
  }
}

TEST(ThreadPoolStats, ChunkAccountingMatchesChunkGrid) {
  ThreadPool pool(4);
  const std::size_t n = 103;
  const std::size_t expected = ThreadPool::chunk_grid(n, pool.lanes()).size();
  std::atomic<std::size_t> visited{0};
  pool.parallel_for(n, [&](std::size_t begin, std::size_t end, std::size_t) {
    visited.fetch_add(end - begin);
  });
  ASSERT_EQ(visited.load(), n);

  const obs::PoolStats s = pool.stats();
  EXPECT_EQ(s.jobs, 1u);
  EXPECT_EQ(s.chunks, expected);
  EXPECT_EQ(s.max_chunks_per_job, expected);
  std::uint64_t lane_sum = 0;
  for (const auto& lane : s.per_lane) lane_sum += lane.chunks;
  EXPECT_EQ(lane_sum, expected)
      << "every chunk must be attributed to exactly one lane";
}

TEST(ThreadPoolStats, SerialPathAttributesEverythingToLaneZero) {
  ThreadPool pool(1);
  pool.parallel_for(10, [](std::size_t, std::size_t, std::size_t) {});
  pool.parallel_for(20, [](std::size_t, std::size_t, std::size_t) {});
  const obs::PoolStats s = pool.stats();
  EXPECT_EQ(s.jobs, 2u);
  ASSERT_EQ(s.per_lane.size(), 1u);
  EXPECT_EQ(s.per_lane[0].chunks, s.chunks);
}

TEST(ThreadPoolStats, MaxChunksPerJobIsAHighWatermark) {
  ThreadPool pool(4);
  pool.parallel_for(100, [](std::size_t, std::size_t, std::size_t) {});
  pool.parallel_for(2, [](std::size_t, std::size_t, std::size_t) {});
  const obs::PoolStats s = pool.stats();
  const std::size_t big = ThreadPool::chunk_grid(100, 4).size();
  const std::size_t small = ThreadPool::chunk_grid(2, 4).size();
  EXPECT_EQ(s.jobs, 2u);
  EXPECT_EQ(s.chunks, big + small);
  EXPECT_EQ(s.max_chunks_per_job, big);
}

TEST(ThreadPoolStats, BusyTimeCoversChunkBodies) {
  // Each chunk body sleeps a known amount; the summed per-lane busy time
  // must cover at least that much wall time (steady_clock measured inside
  // the chunk wrapper) and stay below lanes x pool wall time.
  ThreadPool pool(2);
  constexpr auto kSleep = std::chrono::milliseconds(10);
  constexpr std::size_t kElems = 4;
  pool.parallel_for(kElems, [&](std::size_t begin, std::size_t end,
                                std::size_t) {
    for (std::size_t i = begin; i < end; ++i)
      std::this_thread::sleep_for(kSleep);
  });
  const obs::PoolStats s = pool.stats();
  std::uint64_t busy_sum = 0;
  for (const auto& lane : s.per_lane) busy_sum += lane.busy_ns;
  const std::uint64_t slept_ns =
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(kSleep)
              .count()) *
      kElems;
  EXPECT_GE(busy_sum, slept_ns * 9 / 10);
  EXPECT_LE(busy_sum, s.wall_ns * s.lanes);
  EXPECT_GT(s.wall_ns, 0u);
}

TEST(ThreadPoolStats, ConcurrentStatsReadsAreRaceFree) {
  // stats() must be safe to call from another thread while a job runs —
  // the tsan preset turns any unsynchronized access into a failure.
  ThreadPool pool(4);
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      const obs::PoolStats s = pool.stats();
      ASSERT_EQ(s.per_lane.size(), 4u);
    }
  });
  for (int round = 0; round < 20; ++round)
    pool.parallel_for(64, [](std::size_t, std::size_t, std::size_t) {});
  stop.store(true);
  reader.join();
  EXPECT_EQ(pool.stats().jobs, 20u);
}

TEST(GlobalPool, StartsSerialAndResizes) {
  // The global pool starts with 1 lane; resizing is idempotent.
  set_global_threads(1);
  EXPECT_EQ(global_pool().lanes(), 1u);
  set_global_threads(3);
  EXPECT_EQ(global_pool().lanes(), 3u);
  set_global_threads(3);
  EXPECT_EQ(global_pool().lanes(), 3u);
  set_global_threads(1);  // restore the serial default for other tests
  EXPECT_EQ(global_pool().lanes(), 1u);
}

}  // namespace
}  // namespace generic
