// ThreadPool contract tests: the determinism guarantees every batched API
// builds on (chunk_grid purity, indexed parallel_map slots), plus the
// edge-case behaviour documented in thread_pool.h — serial inline path,
// nested calls degrade to inline, exceptions rethrow on the caller.
#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace generic {
namespace {

TEST(ChunkGrid, CoversRangeExactlyOnceInOrder) {
  for (std::size_t n : {0u, 1u, 2u, 7u, 64u, 100u, 1000u}) {
    for (std::size_t parts : {1u, 2u, 3u, 7u, 16u, 100u}) {
      const auto grid = ThreadPool::chunk_grid(n, parts);
      std::size_t expect_begin = 0;
      for (const auto& [begin, end] : grid) {
        EXPECT_EQ(begin, expect_begin);
        EXPECT_LT(begin, end);
        expect_begin = end;
      }
      EXPECT_EQ(expect_begin, n) << "n=" << n << " parts=" << parts;
      EXPECT_LE(grid.size(), std::min(n, parts));
    }
  }
}

TEST(ChunkGrid, NearEqualSizesFirstChunksGetExtra) {
  const auto grid = ThreadPool::chunk_grid(10, 4);  // 3,3,2,2
  ASSERT_EQ(grid.size(), 4u);
  EXPECT_EQ(grid[0].second - grid[0].first, 3u);
  EXPECT_EQ(grid[1].second - grid[1].first, 3u);
  EXPECT_EQ(grid[2].second - grid[2].first, 2u);
  EXPECT_EQ(grid[3].second - grid[3].first, 2u);
}

TEST(ChunkGrid, PureFunctionOfInputs) {
  EXPECT_EQ(ThreadPool::chunk_grid(1000, 7), ThreadPool::chunk_grid(1000, 7));
}

TEST(ThreadPool, ZeroLanesPicksHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.lanes(), 1u);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce) {
  for (std::size_t lanes : {1u, 2u, 7u, 16u}) {
    ThreadPool pool(lanes);
    const std::size_t n = 257;  // not a multiple of any lane count above
    std::vector<std::atomic<int>> visits(n);
    pool.parallel_for(n, [&](std::size_t begin, std::size_t end, std::size_t) {
      for (std::size_t i = begin; i < end; ++i) visits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(visits[i].load(), 1) << "lanes=" << lanes << " i=" << i;
  }
}

TEST(ThreadPool, ChunkIndexMatchesGridPosition) {
  ThreadPool pool(4);
  const std::size_t n = 103;
  const auto grid = ThreadPool::chunk_grid(n, pool.lanes());
  std::vector<std::pair<std::size_t, std::size_t>> seen(grid.size());
  pool.parallel_for(n, [&](std::size_t begin, std::size_t end,
                           std::size_t chunk) {
    seen[chunk] = {begin, end};  // indexed slot — no lock needed
  });
  EXPECT_EQ(seen, grid);
}

TEST(ThreadPool, ParallelMapPreservesIndexOrder) {
  for (std::size_t lanes : {1u, 2u, 7u, 16u}) {
    ThreadPool pool(lanes);
    const auto out =
        pool.parallel_map<std::size_t>(1000, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 1000u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
  }
}

TEST(ThreadPool, EmptyAndSingletonRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t, std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::size_t begin, std::size_t end, std::size_t c) {
    ++calls;
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1u);
    EXPECT_EQ(c, 0u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ExceptionRethrownOnCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t begin, std::size_t, std::size_t) {
                          if (begin == 0) throw std::runtime_error("chunk 0");
                        }),
      std::runtime_error);
  // Pool must stay usable after a failed job.
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(10, [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t i = begin; i < end; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 45u);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  pool.parallel_for(8, [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t i = begin; i < end; ++i) {
      // A nested call on the same pool must not deadlock; it degrades to
      // inline execution on the worker.
      pool.parallel_for(4, [&](std::size_t b, std::size_t e, std::size_t) {
        total.fetch_add(e - b);
      });
    }
  });
  EXPECT_EQ(total.load(), 32u);
}

TEST(ThreadPool, ManyMoreChunksRequestedThanElements) {
  ThreadPool pool(16);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(3, [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t i = begin; i < end; ++i) sum.fetch_add(i + 1);
  });
  EXPECT_EQ(sum.load(), 6u);
}

TEST(ThreadPool, BackToBackJobsReuseWorkers) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    const auto out = pool.parallel_map<int>(
        17, [round](std::size_t i) { return static_cast<int>(i) + round; });
    for (std::size_t i = 0; i < out.size(); ++i)
      ASSERT_EQ(out[i], static_cast<int>(i) + round);
  }
}

TEST(GlobalPool, StartsSerialAndResizes) {
  // The global pool starts with 1 lane; resizing is idempotent.
  set_global_threads(1);
  EXPECT_EQ(global_pool().lanes(), 1u);
  set_global_threads(3);
  EXPECT_EQ(global_pool().lanes(), 3u);
  set_global_threads(3);
  EXPECT_EQ(global_pool().lanes(), 3u);
  set_global_threads(1);  // restore the serial default for other tests
  EXPECT_EQ(global_pool().lanes(), 1u);
}

}  // namespace
}  // namespace generic
