// Additional device cost-model properties: time monotonicity, overhead
// accounting, and the train/infer relationship the figures rely on.
#include <gtest/gtest.h>

#include "hwmodel/device.h"

namespace generic::hw {
namespace {

TEST(TimeModel, MonotoneInWorkload) {
  const auto dev = desktop_cpu();
  Workload small;
  small.macs = 1e4;
  Workload big = small;
  big.macs = 1e7;
  EXPECT_LT(time_s(dev, small), time_s(dev, big));
  EXPECT_LT(energy_j(dev, small), energy_j(dev, big));
}

TEST(TimeModel, OverheadFloorsSmallWork) {
  const auto dev = desktop_cpu();
  Workload tiny;
  tiny.macs = 1.0;
  EXPECT_GE(time_s(dev, tiny), dev.overhead_time_s);
  EXPECT_GE(energy_j(dev, tiny), dev.overhead_energy_j);
}

TEST(TimeModel, ZeroPassesChargedAsOne) {
  const auto dev = raspberry_pi();
  Workload w;
  w.macs = 100;
  w.data_passes = 0.0;  // defensive input
  EXPECT_NEAR(energy_j(dev, w),
              100 * dev.mac_energy_j + dev.overhead_energy_j, 1e-12);
}

TEST(TimeModel, TrainingCostsMoreThanInferencePerInput) {
  for (auto kind : {ml::MlKind::kMlp, ml::MlKind::kDnn, ml::MlKind::kSvm,
                    ml::MlKind::kRandomForest, ml::MlKind::kLogReg}) {
    const auto t = ml_training(kind, 64, 8, 1000);
    const auto i = ml_inference(kind, 64, 8, 1000);
    EXPECT_GT(t.macs + t.data_passes, i.macs + i.data_passes)
        << ml::to_string(kind);
  }
  EXPECT_GT(hdc_training(64, 4096, 3, 8, 20).simple_ops,
            hdc_inference(64, 4096, 3, 8).simple_ops);
}

TEST(TimeModel, ImpliedWallPowersArePhysical) {
  // Energy/time must imply believable device powers (0.1 W - 40 W) on a
  // representative heavy workload.
  Workload w = hdc_inference(120, 4096, 3, 9);
  for (const auto& dev : {raspberry_pi(), desktop_cpu(), edge_gpu()}) {
    const double watts = energy_j(dev, w) / time_s(dev, w);
    EXPECT_GT(watts, 0.1) << dev.name;
    EXPECT_LT(watts, 40.0) << dev.name;
  }
}

TEST(TimeModel, KnnTrainIsMemorizationOnly) {
  const auto w = ml_training(ml::MlKind::kKnn, 64, 8, 1000);
  EXPECT_LT(w.macs, 100.0);
}

}  // namespace
}  // namespace generic::hw
