#include "hwmodel/device.h"

#include <gtest/gtest.h>

namespace generic::hw {
namespace {

// Representative Table-1-scale application: d=120 features, D=4K, 9
// classes, 1300 train samples.
constexpr std::size_t kD = 120, kDims = 4096, kN = 3, kC = 9, kTrain = 1300;

TEST(Workload, HdcInferenceDominatedByBitOps) {
  const auto w = hdc_inference(kD, kDims, kN, kC);
  EXPECT_GT(w.simple_ops, 10.0 * w.macs);
  EXPECT_DOUBLE_EQ(w.data_passes, 1.0);
}

TEST(Workload, HdcTrainingScalesWithEpochs) {
  const auto w10 = hdc_training(kD, kDims, kN, kC, 10);
  const auto w20 = hdc_training(kD, kDims, kN, kC, 20);
  EXPECT_NEAR(w20.simple_ops, 2.0 * w10.simple_ops, 1e-6);
  EXPECT_DOUBLE_EQ(w20.data_passes, 20.0);
}

TEST(Workload, ShortInputHasNoWindows) {
  const auto w = hdc_inference(2, kDims, 3, kC);
  EXPECT_DOUBLE_EQ(w.simple_ops, 0.0);
}

TEST(Workload, RfInferenceIsTiniestMl) {
  const auto rf = ml_inference(ml::MlKind::kRandomForest, kD, kC, kTrain);
  for (auto kind : {ml::MlKind::kMlp, ml::MlKind::kDnn, ml::MlKind::kSvm,
                    ml::MlKind::kKnn}) {
    EXPECT_LT(rf.macs, ml_inference(kind, kD, kC, kTrain).macs)
        << ml::to_string(kind);
  }
}

TEST(Workload, DnnCostsMoreThanMlp) {
  EXPECT_GT(ml_training(ml::MlKind::kDnn, kD, kC, kTrain).macs,
            ml_training(ml::MlKind::kMlp, kD, kC, kTrain).macs);
  EXPECT_GT(ml_inference(ml::MlKind::kDnn, kD, kC, kTrain).macs,
            ml_inference(ml::MlKind::kMlp, kD, kC, kTrain).macs);
}

TEST(Workload, KmeansPassesIncludeRestarts) {
  const auto w = kmeans_per_input(3, 4, 30, 10);
  EXPECT_DOUBLE_EQ(w.data_passes, 300.0);
}

TEST(Device, EnergyAndTimePositive) {
  for (const auto& dev : {raspberry_pi(), desktop_cpu(), edge_gpu()}) {
    const auto w = hdc_inference(kD, kDims, kN, kC);
    EXPECT_GT(energy_j(dev, w), 0.0) << dev.name;
    EXPECT_GT(time_s(dev, w), 0.0) << dev.name;
  }
}

TEST(Device, EgpuWinsHdcByPaperMargins) {
  // §3.3: eGPU improves GENERIC inference energy 134x vs R-Pi and ~70x vs
  // CPU; time 252x / 30x. Check order-of-magnitude agreement.
  const auto w = hdc_inference(kD, kDims, kN, kC);
  const double e_rpi = energy_j(raspberry_pi(), w);
  const double e_cpu = energy_j(desktop_cpu(), w);
  const double e_gpu = energy_j(edge_gpu(), w);
  EXPECT_GT(e_rpi / e_gpu, 40.0);
  EXPECT_LT(e_rpi / e_gpu, 400.0);
  EXPECT_GT(e_cpu / e_gpu, 20.0);
  EXPECT_LT(e_cpu / e_gpu, 250.0);
  const double t_rpi = time_s(raspberry_pi(), w);
  const double t_gpu = time_s(edge_gpu(), w);
  EXPECT_GT(t_rpi / t_gpu, 80.0);
  EXPECT_LT(t_rpi / t_gpu, 800.0);
}

TEST(Device, ConventionalMlCheaperThanHdcOnAllDevices) {
  // §3.3 observation (i): ML consumes less energy than HDC on conventional
  // hardware, on every device.
  for (const auto& dev : {raspberry_pi(), desktop_cpu(), edge_gpu()}) {
    const double hdc = energy_j(dev, hdc_inference(kD, kDims, kN, kC));
    const double mlp =
        energy_j(dev, ml_inference(ml::MlKind::kMlp, kD, kC, kTrain));
    EXPECT_LT(mlp, hdc) << dev.name;
  }
}

TEST(Device, RfIsMostEfficientConventionalBaselineOnCpu) {
  const auto dev = desktop_cpu();
  const double rf =
      energy_j(dev, ml_inference(ml::MlKind::kRandomForest, kD, kC, kTrain));
  for (auto kind : {ml::MlKind::kMlp, ml::MlKind::kDnn, ml::MlKind::kSvm,
                    ml::MlKind::kKnn, ml::MlKind::kLogReg}) {
    EXPECT_LE(rf, energy_j(dev, ml_inference(kind, kD, kC, kTrain)))
        << ml::to_string(kind);
  }
}

TEST(Device, KmeansOnFcpsIsOverheadDominated) {
  // §5.3: k-means burns hundreds of microseconds and millijoules per input
  // on three features because of framework passes, not math.
  const auto w = kmeans_per_input(3, 4);
  const auto dev = desktop_cpu();
  const double overhead_only = w.data_passes * dev.overhead_energy_j;
  EXPECT_GT(overhead_only / energy_j(dev, w), 0.8);
  const double us = time_s(dev, w) * 1e6;
  EXPECT_GT(us, 50.0);
  EXPECT_LT(us, 2000.0);
}

TEST(Device, PublishedAcceleratorAnchorsOrdered) {
  // Figure 9: Datta et al. [10] costs more per input than tiny-HD [8].
  EXPECT_GT(datta_hd_processor_energy_per_input_j(),
            tiny_hd_energy_per_input_j());
  EXPECT_GT(tiny_hd_energy_per_input_j(), 0.0);
}

}  // namespace
}  // namespace generic::hw
