#include "hdc/hypervector.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace generic::hdc {
namespace {

TEST(BinaryHV, ZeroInitialized) {
  BinaryHV hv(130);
  EXPECT_EQ(hv.dims(), 130u);
  EXPECT_EQ(hv.num_words(), 3u);
  EXPECT_EQ(hv.popcount(), 0u);
}

TEST(BinaryHV, SetGetFlip) {
  BinaryHV hv(100);
  hv.set(0, true);
  hv.set(63, true);
  hv.set(64, true);
  hv.set(99, true);
  EXPECT_TRUE(hv.bit(0));
  EXPECT_TRUE(hv.bit(63));
  EXPECT_TRUE(hv.bit(64));
  EXPECT_TRUE(hv.bit(99));
  EXPECT_FALSE(hv.bit(1));
  EXPECT_EQ(hv.popcount(), 4u);
  hv.flip(0);
  EXPECT_FALSE(hv.bit(0));
  EXPECT_EQ(hv.popcount(), 3u);
}

TEST(BinaryHV, RandomIsBalanced) {
  Rng rng(3);
  const BinaryHV hv = BinaryHV::random(4096, rng);
  EXPECT_NEAR(static_cast<double>(hv.popcount()), 2048.0, 200.0);
}

TEST(BinaryHV, RandomTailMasked) {
  Rng rng(3);
  const BinaryHV hv = BinaryHV::random(70, rng);
  // Bits 70..127 must be clear so popcount counts only real dimensions.
  EXPECT_LE(hv.popcount(), 70u);
  for (std::size_t i = 70; i < 128; ++i)
    EXPECT_FALSE((hv.words()[1] >> (i - 64)) & 1ULL);
}

TEST(BinaryHV, XorIsBipolarMultiply) {
  Rng rng(5);
  const BinaryHV a = BinaryHV::random(256, rng);
  const BinaryHV b = BinaryHV::random(256, rng);
  const BinaryHV c = a ^ b;
  for (std::size_t i = 0; i < 256; ++i) {
    // In bipolar terms XOR is multiplication up to a sign convention:
    // bit = a_bit XOR b_bit  <=>  bipolar(c) = -bipolar(a)*bipolar(b).
    EXPECT_EQ(c.bipolar(i), -a.bipolar(i) * b.bipolar(i));
  }
}

TEST(BinaryHV, XorSelfInverse) {
  Rng rng(7);
  const BinaryHV a = BinaryHV::random(512, rng);
  const BinaryHV b = BinaryHV::random(512, rng);
  EXPECT_EQ((a ^ b) ^ b, a);
}

TEST(BinaryHV, XorDimMismatchThrows) {
  BinaryHV a(64), b(128);
  EXPECT_THROW(a ^= b, std::invalid_argument);
}

TEST(BinaryHV, HammingAndDot) {
  BinaryHV a(64), b(64);
  a.set(0, true);
  a.set(1, true);
  b.set(1, true);
  b.set(2, true);
  EXPECT_EQ(a.hamming(b), 2u);
  EXPECT_EQ(a.dot(b), 64 - 2 * 2);
  EXPECT_EQ(a.dot(a), 64);
}

TEST(BinaryHV, RotatedPreservesPopcount) {
  Rng rng(11);
  const BinaryHV a = BinaryHV::random(4096, rng);
  for (std::size_t k : {1u, 7u, 64u, 65u, 4095u})
    EXPECT_EQ(a.rotated(k).popcount(), a.popcount()) << "k=" << k;
}

TEST(BinaryHV, RotatedMatchesBitwiseDefinition) {
  Rng rng(13);
  for (std::size_t dims : {64u, 128u, 100u, 4096u}) {
    const BinaryHV a = BinaryHV::random(dims, rng);
    for (std::size_t k : {0u, 1u, 63u, 64u, 65u}) {
      const BinaryHV r = a.rotated(k);
      for (std::size_t i = 0; i < dims; ++i)
        ASSERT_EQ(r.bit((i + k) % dims), a.bit(i))
            << "dims=" << dims << " k=" << k << " i=" << i;
    }
  }
}

TEST(BinaryHV, RotationComposes) {
  Rng rng(17);
  const BinaryHV a = BinaryHV::random(256, rng);
  EXPECT_EQ(a.rotated(5).rotated(9), a.rotated(14));
  EXPECT_EQ(a.rotated(256), a);
}

TEST(BinaryHV, AccumulateMatchesToInt) {
  Rng rng(19);
  const BinaryHV a = BinaryHV::random(192, rng);
  IntHV acc(192, 0);
  a.accumulate_into(acc, +1);
  EXPECT_EQ(acc, a.to_int());
  a.accumulate_into(acc, -1);
  for (auto v : acc) EXPECT_EQ(v, 0);
}

TEST(IntHV, DotAndNorm) {
  const IntHV a{1, -2, 3};
  const IntHV b{4, 5, -6};
  EXPECT_EQ(dot(a, b), 4 - 10 - 18);
  EXPECT_EQ(norm2(a), 1 + 4 + 9);
}

TEST(IntHV, DotWithBinaryMatchesExpansion) {
  Rng rng(23);
  const BinaryHV b = BinaryHV::random(300, rng);
  IntHV a(300);
  for (auto& v : a) v = static_cast<std::int32_t>(rng.range(-50, 50));
  EXPECT_EQ(dot(a, b), dot(a, b.to_int()));
}

TEST(IntHV, CosineBounds) {
  const IntHV a{1, 0, 0};
  const IntHV b{0, 1, 0};
  const IntHV c{2, 0, 0};
  EXPECT_DOUBLE_EQ(cosine(a, b), 0.0);
  EXPECT_DOUBLE_EQ(cosine(a, c), 1.0);
  const IntHV zero{0, 0, 0};
  EXPECT_DOUBLE_EQ(cosine(a, zero), 0.0);
}

TEST(IntHV, AddIntoSigns) {
  IntHV acc{1, 1};
  add_into(acc, IntHV{2, 3}, +1);
  EXPECT_EQ(acc, (IntHV{3, 4}));
  add_into(acc, IntHV{1, 1}, -1);
  EXPECT_EQ(acc, (IntHV{2, 3}));
}

}  // namespace
}  // namespace generic::hdc
