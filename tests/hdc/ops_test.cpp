#include "hdc/ops.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace generic::hdc {
namespace {

TEST(Threshold, SignConvention) {
  const IntHV v{3, -2, 0, -7, 1};
  const auto b = threshold(v);
  EXPECT_TRUE(b.bit(0));
  EXPECT_FALSE(b.bit(1));
  EXPECT_TRUE(b.bit(2));  // >= 0
  EXPECT_FALSE(b.bit(3));
  EXPECT_TRUE(b.bit(4));
  const auto shifted = threshold(v, 2);
  EXPECT_TRUE(shifted.bit(0));
  EXPECT_FALSE(shifted.bit(4));
}

TEST(Majority, OddSetIsExactVote) {
  Rng rng(5);
  std::vector<BinaryHV> members;
  for (int i = 0; i < 5; ++i) members.push_back(BinaryHV::random(256, rng));
  const auto maj = majority(members);
  for (std::size_t d = 0; d < 256; ++d) {
    int votes = 0;
    for (const auto& m : members) votes += m.bit(d) ? 1 : -1;
    EXPECT_EQ(maj.bit(d), votes >= 0) << d;  // no ties with odd count
  }
}

TEST(Majority, SingleMemberIsIdentity) {
  Rng rng(7);
  const auto a = BinaryHV::random(512, rng);
  const std::vector<BinaryHV> one{a};
  EXPECT_EQ(majority(one), a);
  EXPECT_THROW(majority(std::span<const BinaryHV>{}), std::invalid_argument);
}

TEST(Majority, OutputCloserToMembersThanOutsider) {
  Rng rng(9);
  std::vector<BinaryHV> members;
  for (int i = 0; i < 7; ++i) members.push_back(BinaryHV::random(4096, rng));
  const auto maj = majority(members);
  const auto outsider = BinaryHV::random(4096, rng);
  for (const auto& m : members)
    EXPECT_GT(hamming_similarity(maj, m),
              hamming_similarity(maj, outsider) + 0.2);
}

TEST(WeightedAccumulate, MatchesRepeatedAccumulate) {
  Rng rng(11);
  const auto hv = BinaryHV::random(256, rng);
  IntHV a(256, 0), b(256, 0);
  weighted_accumulate(a, hv, 5);
  for (int i = 0; i < 5; ++i) hv.accumulate_into(b);
  EXPECT_EQ(a, b);
  weighted_accumulate(a, hv, -5);
  for (auto v : a) EXPECT_EQ(v, 0);
  weighted_accumulate(a, hv, 0);
  for (auto v : a) EXPECT_EQ(v, 0);
}

TEST(HammingSimilarity, RangeAndIdentities) {
  Rng rng(13);
  const auto a = BinaryHV::random(2048, rng);
  EXPECT_DOUBLE_EQ(hamming_similarity(a, a), 1.0);
  BinaryHV inv = a;
  for (std::size_t i = 0; i < inv.dims(); ++i) inv.flip(i);
  EXPECT_DOUBLE_EQ(hamming_similarity(a, inv), -1.0);
  const auto b = BinaryHV::random(2048, rng);
  EXPECT_NEAR(hamming_similarity(a, b), 0.0, 0.1);
  // Equals normalized bipolar dot.
  EXPECT_NEAR(hamming_similarity(a, b),
              static_cast<double>(a.dot(b)) / 2048.0, 1e-12);
}

TEST(BindSequence, MatchesManualNgram) {
  Rng rng(17);
  std::vector<BinaryHV> symbols;
  for (int i = 0; i < 3; ++i) symbols.push_back(BinaryHV::random(512, rng));
  const auto bound = bind_sequence(symbols);
  const auto manual =
      symbols[0].rotated(2) ^ symbols[1].rotated(1) ^ symbols[2];
  EXPECT_EQ(bound, manual);
}

TEST(BindSequence, OrderSensitive) {
  Rng rng(19);
  std::vector<BinaryHV> ab{BinaryHV::random(2048, rng),
                           BinaryHV::random(2048, rng)};
  std::vector<BinaryHV> ba{ab[1], ab[0]};
  EXPECT_LT(std::abs(hamming_similarity(bind_sequence(ab),
                                        bind_sequence(ba))),
            0.15);
}

// Regression: validation used to run per-ref inside the tile loop, so a
// mismatched list could do work before throwing — and an EMPTY query (zero
// words means zero tile iterations) never validated at all, silently
// returning all-zero distances for refs of any dimensionality. Validation
// is now hoisted before any work.
TEST(HammingMany, MismatchedRefThrowsBeforeAnyWork) {
  Rng rng(23);
  const auto query = BinaryHV::random(128, rng);
  const std::vector<BinaryHV> refs{BinaryHV::random(128, rng),
                                   BinaryHV::random(64, rng)};
  EXPECT_THROW(hamming_many(query, refs), std::invalid_argument);
}

TEST(HammingMany, EmptyQueryStillValidatesRefDimensions) {
  const BinaryHV empty_query;  // dims == 0, zero words
  const std::vector<BinaryHV> refs{BinaryHV(64)};
  EXPECT_THROW(hamming_many(empty_query, refs), std::invalid_argument);
  // Matching zero-dim refs are legal and trivially all-zero.
  const std::vector<BinaryHV> zero_refs{BinaryHV(), BinaryHV()};
  const auto dists = hamming_many(empty_query, zero_refs);
  EXPECT_EQ(dists, (std::vector<std::size_t>{0, 0}));
}

}  // namespace
}  // namespace generic::hdc
