// Property-based tests of the HDC algebra (paper §2, Eq. 1): randomized
// inputs across many dimensionalities — including non-multiples of 64, so
// the packed tail word is always in play — checked against the algebraic
// identities and against naive bit-by-bit references.
//
//  * bind is self-inverse: (a ^ b) ^ b == a
//  * permute composes:  rho^j(rho^k(a)) == rho^(j+k)(a)
//    and inverts:       rho^(D-k)(rho^k(a)) == a
//    and distributes over bind: rho^k(a ^ b) == rho^k(a) ^ rho^k(b)
//  * Hamming (plain and blocked/tiled kernels) equals a naive per-bit loop
//  * hamming_similarity equals cosine of the bipolar integer expansions
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "hdc/hypervector.h"
#include "hdc/ops.h"

namespace generic::hdc {
namespace {

// Tail-exercising dimensionalities: multiples of 64, off-by-one around
// word boundaries, and small awkward sizes.
const std::size_t kDims[] = {1, 3, 63, 64, 65, 100, 130, 509, 1024, 2050};

TEST(HdcAlgebraProperty, BindIsSelfInverse) {
  Rng rng(0xB1ul);
  for (std::size_t dims : kDims) {
    for (int rep = 0; rep < 8; ++rep) {
      const BinaryHV a = BinaryHV::random(dims, rng);
      const BinaryHV b = BinaryHV::random(dims, rng);
      EXPECT_EQ((a ^ b) ^ b, a) << "dims=" << dims;
      EXPECT_EQ(a ^ a, BinaryHV(dims)) << "dims=" << dims;  // identity is -1...
    }
  }
}

TEST(HdcAlgebraProperty, BindCommutesAndAssociates) {
  Rng rng(0xB2ul);
  for (std::size_t dims : kDims) {
    const BinaryHV a = BinaryHV::random(dims, rng);
    const BinaryHV b = BinaryHV::random(dims, rng);
    const BinaryHV c = BinaryHV::random(dims, rng);
    EXPECT_EQ(a ^ b, b ^ a);
    EXPECT_EQ((a ^ b) ^ c, a ^ (b ^ c));
  }
}

TEST(HdcAlgebraProperty, PermuteComposes) {
  Rng rng(0xB3ul);
  for (std::size_t dims : kDims) {
    const BinaryHV a = BinaryHV::random(dims, rng);
    for (std::size_t j : {std::size_t{0}, std::size_t{1}, dims / 3, dims - 1}) {
      for (std::size_t k : {std::size_t{1}, dims / 2}) {
        EXPECT_EQ(a.rotated(k).rotated(j), a.rotated((j + k) % dims))
            << "dims=" << dims << " j=" << j << " k=" << k;
      }
    }
  }
}

TEST(HdcAlgebraProperty, PermuteInverts) {
  Rng rng(0xB4ul);
  for (std::size_t dims : kDims) {
    const BinaryHV a = BinaryHV::random(dims, rng);
    for (std::size_t k = 0; k < dims; k += (dims < 16 ? 1 : dims / 7)) {
      EXPECT_EQ(a.rotated(k).rotated(dims - k), a)
          << "dims=" << dims << " k=" << k;
    }
  }
}

TEST(HdcAlgebraProperty, PermuteDistributesOverBind) {
  Rng rng(0xB5ul);
  for (std::size_t dims : kDims) {
    const BinaryHV a = BinaryHV::random(dims, rng);
    const BinaryHV b = BinaryHV::random(dims, rng);
    const std::size_t k = dims / 2 + 1 < dims ? dims / 2 + 1 : 0;
    EXPECT_EQ((a ^ b).rotated(k), a.rotated(k) ^ b.rotated(k))
        << "dims=" << dims;
  }
}

TEST(HdcAlgebraProperty, PermutePreservesPopcount) {
  Rng rng(0xB6ul);
  for (std::size_t dims : kDims) {
    const BinaryHV a = BinaryHV::random(dims, rng);
    EXPECT_EQ(a.rotated(dims / 3 + 1 < dims ? dims / 3 + 1 : 0).popcount(),
              a.popcount())
        << "dims=" << dims;
  }
}

/// Naive O(D) reference: compare bit by bit through the public accessor.
std::size_t naive_hamming(const BinaryHV& a, const BinaryHV& b) {
  std::size_t d = 0;
  for (std::size_t i = 0; i < a.dims(); ++i) d += a.bit(i) != b.bit(i);
  return d;
}

TEST(HdcAlgebraProperty, HammingMatchesNaiveReference) {
  Rng rng(0xB7ul);
  for (std::size_t dims : kDims) {
    for (int rep = 0; rep < 4; ++rep) {
      const BinaryHV a = BinaryHV::random(dims, rng);
      const BinaryHV b = BinaryHV::random(dims, rng);
      const std::size_t expect = naive_hamming(a, b);
      EXPECT_EQ(a.hamming(b), expect) << "dims=" << dims;
      EXPECT_EQ(hamming_blocked(a, b), expect) << "dims=" << dims;
    }
  }
}

TEST(HdcAlgebraProperty, BlockedKernelCrossesTileBoundary) {
  // More than one 4096-word tile: dims > 64 * kHammingTileWords, with a
  // ragged tail so the masked last word is exercised too.
  const std::size_t dims = 64 * kHammingTileWords + 64 * 17 + 13;
  Rng rng(0xB8ul);
  const BinaryHV a = BinaryHV::random(dims, rng);
  const BinaryHV b = BinaryHV::random(dims, rng);
  EXPECT_EQ(hamming_blocked(a, b), a.hamming(b));
}

TEST(HdcAlgebraProperty, HammingManyMatchesRowWise) {
  Rng rng(0xB9ul);
  for (std::size_t dims : {100ul, 509ul, 1024ul}) {
    const BinaryHV q = BinaryHV::random(dims, rng);
    std::vector<BinaryHV> refs;
    for (int r = 0; r < 9; ++r) refs.push_back(BinaryHV::random(dims, rng));
    const auto got = hamming_many(q, refs);
    ASSERT_EQ(got.size(), refs.size());
    for (std::size_t i = 0; i < refs.size(); ++i)
      EXPECT_EQ(got[i], q.hamming(refs[i])) << "dims=" << dims << " i=" << i;
  }
}

TEST(HdcAlgebraProperty, HammingManyRejectsMixedDims) {
  Rng rng(0xBAul);
  const BinaryHV q = BinaryHV::random(128, rng);
  std::vector<BinaryHV> refs{BinaryHV::random(128, rng),
                             BinaryHV::random(256, rng)};
  EXPECT_THROW(hamming_many(q, refs), std::invalid_argument);
}

TEST(HdcAlgebraProperty, NearestHammingTiesResolveToLowestIndex) {
  Rng rng(0xBBul);
  const BinaryHV q = BinaryHV::random(256, rng);
  // refs[1] and refs[2] are both exact copies of the query: index 1 wins.
  std::vector<BinaryHV> refs{BinaryHV::random(256, rng), q, q};
  EXPECT_EQ(nearest_hamming(q, refs), 1u);
}

TEST(HdcAlgebraProperty, HammingSimilarityEqualsBipolarCosine) {
  Rng rng(0xBCul);
  for (std::size_t dims : kDims) {
    if (dims < 2) continue;  // cosine of a 1-dim pair is degenerate +-1 too,
                             // but keep the loop on interesting sizes
    const BinaryHV a = BinaryHV::random(dims, rng);
    const BinaryHV b = BinaryHV::random(dims, rng);
    const double sim = hamming_similarity(a, b);
    const double cos = cosine(a.to_int(), b.to_int());
    EXPECT_NEAR(sim, cos, 1e-12) << "dims=" << dims;
    EXPECT_NEAR(sim, static_cast<double>(a.dot(b)) / static_cast<double>(dims),
                1e-12)
        << "dims=" << dims;
  }
}

}  // namespace
}  // namespace generic::hdc
