#include "hdc/item_memory.h"

#include <gtest/gtest.h>

namespace generic::hdc {
namespace {

TEST(ItemMemory, DeterministicAcrossInstances) {
  ItemMemory a(256, 42), b(256, 42);
  EXPECT_EQ(a.get(0), b.get(0));
  EXPECT_EQ(a.get(17), b.get(17));
}

TEST(ItemMemory, AccessOrderIndependent) {
  ItemMemory a(256, 42), b(256, 42);
  const BinaryHV a5 = a.get(5);  // forces 0..5 in a
  (void)b.get(100);              // forces 0..100 in b first
  EXPECT_EQ(b.get(5), a5);
}

TEST(ItemMemory, DistinctKeysAreQuasiOrthogonal) {
  ItemMemory im(4096, 7);
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = i + 1; j < 8; ++j)
      EXPECT_NEAR(static_cast<double>(im.get(i).hamming(im.get(j))), 2048.0,
                  220.0);
}

TEST(LevelMemory, ExtremesNearOrthogonalNeighborsClose) {
  LevelMemory lm(4096, 64, 9);
  // Adjacent levels differ by ~dims/2/(L-1) = 32.5 bits.
  const auto d01 = lm.level(0).hamming(lm.level(1));
  EXPECT_LE(d01, 40u);
  // Extremes differ by ~dims/2.
  const auto d_ends = lm.level(0).hamming(lm.level(63));
  EXPECT_NEAR(static_cast<double>(d_ends), 2048.0, 10.0);
}

TEST(LevelMemory, DistanceMonotoneInLevelGap) {
  LevelMemory lm(4096, 64, 9);
  std::size_t prev = 0;
  for (std::size_t l = 1; l < 64; ++l) {
    const std::size_t d = lm.level(0).hamming(lm.level(l));
    EXPECT_GE(d, prev) << "level " << l;
    prev = d;
  }
}

TEST(LevelMemory, SingleLevelAllowed) {
  LevelMemory lm(128, 1, 3);
  EXPECT_EQ(lm.num_levels(), 1u);
}

TEST(LevelMemory, ZeroLevelsRejected) {
  EXPECT_THROW(LevelMemory(128, 0, 3), std::invalid_argument);
}

TEST(SeededItemMemory, MatchesExplicitRotation) {
  SeededItemMemory sm(512, 77);
  EXPECT_EQ(sm.get(0), sm.seed_id());
  EXPECT_EQ(sm.get(5), sm.seed_id().rotated(5));
}

TEST(SeededItemMemory, RotatedIdsStayOrthogonal) {
  // The ASIC's id compression (§4.3.1) relies on rotation preserving
  // orthogonality between window ids.
  SeededItemMemory sm(4096, 123);
  const BinaryHV id0 = sm.get(0);
  for (std::size_t k : {1u, 2u, 10u, 100u, 1000u})
    EXPECT_NEAR(static_cast<double>(id0.hamming(sm.get(k))), 2048.0, 220.0)
        << "k=" << k;
}

}  // namespace
}  // namespace generic::hdc
