// Rematerialization equivalence: ItemStorage::kRematerialized must be a
// pure memory/compute trade — every rematerialized item/level row is
// byte-identical to the stored row for the same (seed, dims, key), encoders
// produce bit-identical encodings in either mode, the end-to-end pipeline
// produces identical accuracy and predictions, and the footprint really
// drops to (near) zero.
#include <cstdint>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "data/benchmarks.h"
#include "encoding/encoders.h"
#include "hdc/item_memory.h"
#include "model/pipeline.h"
#include "obs/export.h"

namespace generic::hdc {
namespace {

TEST(RematItemMemory, MaterializeMatchesStoredRowsAcrossSeedsAndKeys) {
  for (std::uint64_t seed : {0ull, 0xD5A22ull, 0xDEADBEEFull}) {
    for (std::size_t dims : {std::size_t{64}, std::size_t{127},
                             std::size_t{512}, std::size_t{4096}}) {
      ItemMemory stored(dims, seed);
      ItemMemory remat(dims, seed, ItemStorage::kRematerialized);
      // Touch keys out of order: stored rows must not depend on access
      // order, and remat rows must match them key by key.
      for (std::size_t key : {std::size_t{7}, std::size_t{0}, std::size_t{3},
                              std::size_t{31}}) {
        EXPECT_EQ(remat.materialize(key), stored.get(key))
            << "seed=" << seed << " dims=" << dims << " key=" << key;
        EXPECT_EQ(stored.materialize(key), stored.get(key))
            << "stored-mode materialize diverged at key " << key;
      }
    }
  }
}

TEST(RematItemMemory, XorRowIntoMatchesExplicitXorInBothModes) {
  Rng rng(0x5EED);
  const std::size_t dims = 513;  // ragged tail
  ItemMemory stored(dims, 42);
  ItemMemory remat(dims, 42, ItemStorage::kRematerialized);
  for (std::size_t key = 0; key < 5; ++key) {
    const auto acc0 = BinaryHV::random(dims, rng);
    BinaryHV want = acc0;
    want ^= stored.get(key);
    BinaryHV via_stored = acc0;
    stored.xor_row_into(key, via_stored);
    BinaryHV via_remat = acc0;
    remat.xor_row_into(key, via_remat);
    EXPECT_EQ(via_stored, want) << key;
    EXPECT_EQ(via_remat, want) << key;
  }
}

TEST(RematItemMemory, GetThrowsInRematerializedMode) {
  ItemMemory remat(256, 7, ItemStorage::kRematerialized);
  EXPECT_THROW(remat.get(0), std::logic_error);
  EXPECT_THROW(remat.mutable_get(0), std::logic_error);
  EXPECT_NO_THROW(remat.materialize(0));
}

TEST(RematItemMemory, FootprintGrowsStoredAndStaysZeroRemat) {
  const std::size_t dims = 4096;
  ItemMemory stored(dims, 9);
  ItemMemory remat(dims, 9, ItemStorage::kRematerialized);
  EXPECT_EQ(stored.footprint_bytes(), 0u) << "no rows touched yet";
  (void)stored.get(9);  // faults in rows 0..9
  EXPECT_EQ(stored.footprint_bytes(), 10 * (dims / 8));
  (void)remat.materialize(9);
  EXPECT_EQ(remat.footprint_bytes(), 0u);
}

TEST(RematLevelMemory, MaterializeMatchesStoredLevelsForAllBins) {
  for (std::uint64_t seed : {0x11EE1ull, 123ull}) {
    for (auto [dims, levels] :
         {std::pair<std::size_t, std::size_t>{256, 64},
          std::pair<std::size_t, std::size_t>{127, 16},
          std::pair<std::size_t, std::size_t>{512, 1},
          std::pair<std::size_t, std::size_t>{4095, 7}}) {
      LevelMemory stored(dims, levels, seed);
      LevelMemory remat(dims, levels, seed, ItemStorage::kRematerialized);
      ASSERT_EQ(remat.num_levels(), levels);
      for (std::size_t bin = 0; bin < levels; ++bin) {
        EXPECT_EQ(remat.materialize(bin), stored.level(bin))
            << "dims=" << dims << " levels=" << levels << " bin=" << bin;
        EXPECT_EQ(stored.materialize(bin), stored.level(bin))
            << "stored-mode materialize diverged at bin " << bin;
      }
    }
  }
}

TEST(RematLevelMemory, AccessorsThrowAppropriately) {
  LevelMemory remat(128, 8, 5, ItemStorage::kRematerialized);
  EXPECT_THROW(remat.level(0), std::logic_error);
  EXPECT_THROW(remat.mutable_level(0), std::logic_error);
  EXPECT_THROW(remat.materialize(8), std::out_of_range);
  EXPECT_EQ(remat.footprint_bytes(), 0u);
  LevelMemory stored(128, 8, 5);
  EXPECT_EQ(stored.footprint_bytes(), 8 * (128 / 8));
}

TEST(RematSeededItemMemory, FootprintIsOneSeedRow) {
  SeededItemMemory ids(4096, 3);
  EXPECT_EQ(ids.footprint_bytes(), 4096u / 8);
}

// ---- Encoder-level equivalence --------------------------------------------

std::vector<std::vector<float>> synth_samples(std::size_t n, std::size_t f) {
  Rng rng(0xE2C0DE);
  std::vector<std::vector<float>> xs(n, std::vector<float>(f));
  for (auto& x : xs)
    for (auto& v : x)
      v = static_cast<float>(rng.uniform()) * 2.0f - 1.0f;
  return xs;
}

TEST(RematEncoder, EveryKindEncodesBitIdenticallyInBothModes) {
  const auto xs = synth_samples(6, 24);
  for (enc::EncoderKind kind :
       {enc::EncoderKind::kRp, enc::EncoderKind::kLevelId,
        enc::EncoderKind::kNgram, enc::EncoderKind::kPermutation,
        enc::EncoderKind::kGeneric, enc::EncoderKind::kSymbolNgram}) {
    enc::EncoderConfig cfg;
    cfg.dims = 257;  // ragged tail through every bind/rotate path
    cfg.levels = 16;
    auto stored = enc::make_encoder(kind, cfg);
    cfg.remat = true;
    auto remat = enc::make_encoder(kind, cfg);
    stored->fit(xs);
    remat->fit(xs);
    for (const auto& x : xs)
      EXPECT_EQ(remat->encode(x), stored->encode(x))
          << "encoder " << enc::to_string(kind);
    EXPECT_LT(remat->memory_footprint_bytes(),
              stored->memory_footprint_bytes() + 1)
        << "remat footprint must never exceed stored";
  }
}

TEST(RematEncoder, FootprintDropsToSeedRowsOnly) {
  const auto xs = synth_samples(4, 32);
  enc::EncoderConfig cfg;
  cfg.dims = 1024;
  cfg.levels = 64;
  enc::GenericEncoder stored(cfg);
  cfg.remat = true;
  enc::GenericEncoder remat(cfg);
  stored.fit(xs);
  remat.fit(xs);
  (void)stored.encode(xs[0]);
  (void)remat.encode(xs[0]);
  // Stored: 64 level rows + 1 seed id row. Remat: the seed id row only.
  EXPECT_EQ(stored.memory_footprint_bytes(), (64 + 1) * (1024u / 8));
  EXPECT_EQ(remat.memory_footprint_bytes(), 1024u / 8);
}

// ---- End-to-end pipeline identity -----------------------------------------

TEST(RematPipeline, ClassificationAccuracyAndPredictionsIdentical) {
  const auto ds = data::make_benchmark("PAGE");
  enc::EncoderConfig cfg;
  cfg.dims = 512;
  ThreadPool pool(2);

  enc::GenericEncoder stored(cfg);
  const auto want = model::run_hdc_classification(stored, ds, 3, pool);

  cfg.remat = true;
  enc::GenericEncoder remat(cfg);
  const auto got = model::run_hdc_classification(remat, ds, 3, pool);

  EXPECT_EQ(got.test_accuracy, want.test_accuracy);
  EXPECT_EQ(got.epochs_run, want.epochs_run);
  EXPECT_EQ(got.predictions, want.predictions);

  // Footprint assertion in the report: the same stored-vs-remat numbers the
  // bench records as gauges must appear in a generic.metrics.v1 document.
  obs::Registry& reg = obs::Registry::instance();
  reg.gauge("remat.footprint.stored_payload_bytes")
      .set(stored.memory_footprint_bytes());
  reg.gauge("remat.footprint.remat_payload_bytes")
      .set(remat.memory_footprint_bytes());
  const std::string json = obs::metrics_to_json(obs::collect_metrics());
  EXPECT_NE(json.find("\"schema\": \"generic.metrics.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("remat.footprint.stored_payload_bytes"),
            std::string::npos);
  EXPECT_NE(json.find("remat.footprint.remat_payload_bytes"),
            std::string::npos);
  EXPECT_GT(stored.memory_footprint_bytes(),
            8 * remat.memory_footprint_bytes())
      << "remat must shrink the encoder's hypervector payload by >8x here "
         "(64 level rows collapse to recompute)";
}

}  // namespace
}  // namespace generic::hdc
