// Parameterized property tests over the HDC algebra: the statistical
// identities the paper's encoding correctness rests on (§2, §3.1, §4.3.1).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.h"
#include "hdc/hypervector.h"
#include "hdc/item_memory.h"

namespace generic::hdc {
namespace {

class HvDimsTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HvDimsTest, RandomPairsQuasiOrthogonal) {
  const std::size_t dims = GetParam();
  Rng rng(101);
  const BinaryHV a = BinaryHV::random(dims, rng);
  const BinaryHV b = BinaryHV::random(dims, rng);
  // |dot| of independent bipolar vectors concentrates around sqrt(dims).
  const double bound = 6.0 * std::sqrt(static_cast<double>(dims));
  EXPECT_LE(std::abs(static_cast<double>(a.dot(b))), bound);
}

TEST_P(HvDimsTest, BindingPreservesDistance) {
  // hamming(a^c, b^c) == hamming(a, b): binding is an isometry.
  const std::size_t dims = GetParam();
  Rng rng(103);
  const BinaryHV a = BinaryHV::random(dims, rng);
  const BinaryHV b = BinaryHV::random(dims, rng);
  const BinaryHV c = BinaryHV::random(dims, rng);
  EXPECT_EQ((a ^ c).hamming(b ^ c), a.hamming(b));
}

TEST_P(HvDimsTest, PermutationIsIsometry) {
  const std::size_t dims = GetParam();
  Rng rng(107);
  const BinaryHV a = BinaryHV::random(dims, rng);
  const BinaryHV b = BinaryHV::random(dims, rng);
  for (std::size_t k : {1u, 3u, 17u})
    EXPECT_EQ(a.rotated(k).hamming(b.rotated(k)), a.hamming(b));
}

TEST_P(HvDimsTest, PermutationDecorrelates) {
  // rho^k(a) is quasi-orthogonal to a for k != 0 — the property that lets
  // permutation encode position and the ASIC regenerate ids by rotation.
  const std::size_t dims = GetParam();
  Rng rng(109);
  const BinaryHV a = BinaryHV::random(dims, rng);
  const double bound = 6.0 * std::sqrt(static_cast<double>(dims));
  for (std::size_t k : {1u, 2u, 5u})
    EXPECT_LE(std::abs(static_cast<double>(a.dot(a.rotated(k)))), bound);
}

TEST_P(HvDimsTest, XorDistributesOverPermutation) {
  // rho(a ^ b) == rho(a) ^ rho(b) — needed for Eq. 1 to be well-defined.
  const std::size_t dims = GetParam();
  Rng rng(113);
  const BinaryHV a = BinaryHV::random(dims, rng);
  const BinaryHV b = BinaryHV::random(dims, rng);
  EXPECT_EQ((a ^ b).rotated(9), a.rotated(9) ^ b.rotated(9));
}

TEST_P(HvDimsTest, BundlePreservesSimilarityToMembers) {
  // A bundle of hypervectors stays measurably closer to each member than
  // to an unrelated vector — the basis of HDC training (§2.1).
  const std::size_t dims = GetParam();
  Rng rng(127);
  IntHV bundle(dims, 0);
  std::vector<BinaryHV> members;
  for (int i = 0; i < 5; ++i) {
    members.push_back(BinaryHV::random(dims, rng));
    members.back().accumulate_into(bundle);
  }
  const BinaryHV outsider = BinaryHV::random(dims, rng);
  for (const auto& m : members)
    EXPECT_GT(dot(bundle, m), 2 * std::abs(dot(bundle, outsider)));
}

INSTANTIATE_TEST_SUITE_P(Dims, HvDimsTest,
                         ::testing::Values(512, 1024, 2048, 4096, 8192));

class LevelSpacingTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(LevelSpacingTest, HammingProportionalToValueGap) {
  const auto [dims, levels] = GetParam();
  LevelMemory lm(dims, levels, 555);
  // d(level_0, level_l) ~= l/(L-1) * dims/2, within rounding.
  for (std::size_t l = 0; l < levels; ++l) {
    const double expected = static_cast<double>(l) /
                            static_cast<double>(levels - 1) *
                            static_cast<double>(dims) / 2.0;
    EXPECT_NEAR(static_cast<double>(lm.level(0).hamming(lm.level(l))),
                expected, 2.0)
        << "l=" << l;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, LevelSpacingTest,
    ::testing::Combine(::testing::Values(1024, 4096),
                       ::testing::Values(8, 64, 128)));

}  // namespace
}  // namespace generic::hdc
