// Differential equivalence suite for the runtime-dispatched XOR+popcount
// kernels (hdc/kernels.h): every compiled backend must be BYTE-IDENTICAL to
// the scalar reference — same raw span sums, same hamming_many orders, same
// nearest_hamming winners including ties — across ragged dimension sweeps.
// This is the contract that lets golden `generic.*.v1` fixtures stay
// byte-stable no matter which backend dispatch picks (docs/kernels.md).
#include <cstdint>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "hdc/hypervector.h"
#include "hdc/kernels.h"
#include "hdc/ops.h"

namespace generic::hdc {
namespace {

namespace k = kernels;

/// The dims the suite sweeps: word-aligned, ragged-tail (127, 4095), odd
/// multi-tile-ish sizes. 10000 = 156 words + 16-bit tail.
const std::vector<std::size_t> kDimsSweep = {64,   127,  128,  512,
                                             4095, 4096, 10000};

/// Restore the process-wide backend after a test forced it.
class BackendGuard {
 public:
  BackendGuard() : saved_(k::active_backend()) {}
  ~BackendGuard() { k::set_backend(saved_); }

 private:
  k::Backend saved_;
};

std::vector<std::uint64_t> random_words(std::size_t n, Rng& rng) {
  std::vector<std::uint64_t> w(n);
  for (auto& x : w) x = rng.next_u64();
  return w;
}

std::vector<k::Backend> simd_backends() {
  std::vector<k::Backend> out;
  for (k::Backend b : k::compiled_backends())
    if (b != k::Backend::kScalar && k::available(b)) out.push_back(b);
  return out;
}

TEST(KernelEquivalence, RawSpanSumsMatchScalarForRaggedLengths) {
  const k::Kernels& scalar = k::get(k::Backend::kScalar);
  Rng rng(0xA11CE);
  for (k::Backend b : simd_backends()) {
    const k::Kernels& simd = k::get(b);
    for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                          std::size_t{3}, std::size_t{4}, std::size_t{5},
                          std::size_t{7}, std::size_t{8}, std::size_t{15},
                          std::size_t{16}, std::size_t{27}, std::size_t{28},
                          std::size_t{29}, std::size_t{63}, std::size_t{64},
                          std::size_t{65}, std::size_t{112}, std::size_t{113},
                          std::size_t{127}, std::size_t{128},
                          std::size_t{156}, std::size_t{200}}) {
      const auto a = random_words(n, rng);
      const auto c = random_words(n, rng);
      EXPECT_EQ(simd.xor_popcount(a.data(), c.data(), n),
                scalar.xor_popcount(a.data(), c.data(), n))
          << k::to_string(b) << " diverged at n=" << n;
    }
  }
}

TEST(KernelEquivalence, RawManyAccumulatesIdenticallyToScalar) {
  const k::Kernels& scalar = k::get(k::Backend::kScalar);
  Rng rng(0xBEE5);
  for (k::Backend b : simd_backends()) {
    const k::Kernels& simd = k::get(b);
    for (std::size_t rows : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                             std::size_t{3}, std::size_t{5}, std::size_t{8}}) {
      for (std::size_t words :
           {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{8},
            std::size_t{63}, std::size_t{64}, std::size_t{65}}) {
        const auto q = random_words(words, rng);
        std::vector<std::vector<std::uint64_t>> store(rows);
        std::vector<const std::uint64_t*> refs(rows);
        for (std::size_t r = 0; r < rows; ++r) {
          store[r] = random_words(words, rng);
          refs[r] = store[r].data();
        }
        // Seed outputs non-zero: the kernel contract is `out[r] +=`, and a
        // backend that assigns instead of accumulating must fail here.
        std::vector<std::size_t> want(rows, 1000), got(rows, 1000);
        scalar.xor_popcount_many(q.data(), refs.data(), rows, words,
                                 want.data());
        simd.xor_popcount_many(q.data(), refs.data(), rows, words,
                               got.data());
        EXPECT_EQ(got, want) << k::to_string(b) << " rows=" << rows
                             << " words=" << words;
      }
    }
  }
}

TEST(KernelEquivalence, HammingBlockedMatchesNaiveOnEveryBackend) {
  BackendGuard guard;
  Rng rng(0xD1FF);
  for (std::size_t dims : kDimsSweep) {
    const auto a = BinaryHV::random(dims, rng);
    const auto b = BinaryHV::random(dims, rng);
    const std::size_t naive = a.hamming(b);  // word-at-a-time reference
    for (k::Backend backend : k::compiled_backends()) {
      if (!k::available(backend)) continue;
      k::set_backend(backend);
      EXPECT_EQ(hamming_blocked(a, b), naive)
          << k::to_string(backend) << " dims=" << dims;
    }
  }
}

TEST(KernelEquivalence, HammingManyOrdersIdenticalAcrossBackends) {
  BackendGuard guard;
  Rng rng(0x0D0E5);
  for (std::size_t dims : kDimsSweep) {
    const auto query = BinaryHV::random(dims, rng);
    std::vector<BinaryHV> refs;
    for (int r = 0; r < 13; ++r) refs.push_back(BinaryHV::random(dims, rng));

    k::set_backend(k::Backend::kScalar);
    const auto baseline = hamming_many(query, refs);
    ASSERT_EQ(baseline.size(), refs.size());
    for (std::size_t r = 0; r < refs.size(); ++r)
      ASSERT_EQ(baseline[r], query.hamming(refs[r])) << "scalar r=" << r;

    for (k::Backend backend : simd_backends()) {
      k::set_backend(backend);
      EXPECT_EQ(hamming_many(query, refs), baseline)
          << k::to_string(backend) << " dims=" << dims;
    }
  }
}

TEST(KernelEquivalence, NearestWinnerIdenticalAcrossBackends) {
  BackendGuard guard;
  Rng rng(0x9E57);
  for (std::size_t dims : kDimsSweep) {
    const auto query = BinaryHV::random(dims, rng);
    std::vector<BinaryHV> refs;
    for (int r = 0; r < 29; ++r) refs.push_back(BinaryHV::random(dims, rng));

    k::set_backend(k::Backend::kScalar);
    const std::size_t want = nearest_hamming(query, refs);
    for (k::Backend backend : simd_backends()) {
      k::set_backend(backend);
      EXPECT_EQ(nearest_hamming(query, refs), want)
          << k::to_string(backend) << " dims=" << dims;
    }
  }
}

TEST(KernelEquivalence, TiesResolveToLowestIndexOnEveryBackend) {
  BackendGuard guard;
  // Zero query; two refs at identical distance (same popcount, different
  // bits) placed behind a worse ref: every backend must pick the first of
  // the tied pair, never the later one.
  for (std::size_t dims : {std::size_t{128}, std::size_t{4095}}) {
    const BinaryHV query(dims);
    BinaryHV tied_a(dims), tied_b(dims), worse(dims);
    tied_a.set(1, true);
    tied_a.set(5, true);
    tied_b.set(2, true);
    tied_b.set(dims - 1, true);
    for (std::size_t i = 0; i < 7; ++i) worse.set(i, true);
    const std::vector<BinaryHV> refs = {worse, tied_a, tied_b};
    for (k::Backend backend : k::compiled_backends()) {
      if (!k::available(backend)) continue;
      k::set_backend(backend);
      EXPECT_EQ(nearest_hamming(query, refs), 1u)
          << k::to_string(backend) << " dims=" << dims;
    }
  }
}

// ---- Dispatch plumbing ----------------------------------------------------

TEST(KernelDispatch, NamesRoundTrip) {
  for (k::Backend b : {k::Backend::kScalar, k::Backend::kAvx2,
                       k::Backend::kAvx512, k::Backend::kNeon}) {
    const auto parsed = k::parse_backend(k::to_string(b));
    ASSERT_TRUE(parsed.has_value()) << k::to_string(b);
    EXPECT_EQ(*parsed, b);
  }
  EXPECT_FALSE(k::parse_backend("auto").has_value());
  EXPECT_FALSE(k::parse_backend("sse9").has_value());
  EXPECT_FALSE(k::parse_backend("").has_value());
}

TEST(KernelDispatch, ScalarAlwaysCompiledAndAvailable) {
  const auto compiled = k::compiled_backends();
  ASSERT_FALSE(compiled.empty());
  EXPECT_EQ(compiled.front(), k::Backend::kScalar);
  EXPECT_TRUE(k::available(k::Backend::kScalar));
  EXPECT_TRUE(k::available(k::best_available()));
}

TEST(KernelDispatch, TablesAreSelfConsistent) {
  for (k::Backend b : k::compiled_backends()) {
    if (!k::available(b)) continue;
    const k::Kernels& table = k::get(b);
    EXPECT_EQ(table.backend, b);
    EXPECT_EQ(table.name, k::to_string(b));
    EXPECT_NE(table.xor_popcount, nullptr);
    EXPECT_NE(table.xor_popcount_many, nullptr);
  }
}

TEST(KernelDispatch, SetBackendFromStringAcceptsAutoAndRejectsUnknown) {
  BackendGuard guard;
  k::set_backend_from_string("auto");
  EXPECT_EQ(k::active_backend(), k::best_available());
  k::set_backend_from_string("scalar");
  EXPECT_EQ(k::active_backend(), k::Backend::kScalar);
  EXPECT_THROW(k::set_backend_from_string("fastest"), std::invalid_argument);
  EXPECT_THROW(k::set_backend_from_string(""), std::invalid_argument);
}

TEST(KernelDispatch, UnavailableBackendThrowsInsteadOfFallingBack) {
#if defined(__aarch64__)
  const k::Backend missing = k::Backend::kAvx2;
#else
  const k::Backend missing = k::Backend::kNeon;
#endif
  ASSERT_FALSE(k::available(missing));
  EXPECT_THROW(k::get(missing), std::invalid_argument);
  EXPECT_THROW(k::set_backend(missing), std::invalid_argument);
  // The active table is untouched by the failed set.
  EXPECT_TRUE(k::available(k::active_backend()));
}

TEST(KernelDispatch, ActiveBackendDrivesOps) {
  BackendGuard guard;
  Rng rng(0xFACE);
  const auto a = BinaryHV::random(4096, rng);
  const auto b = BinaryHV::random(4096, rng);
  const std::size_t want = a.hamming(b);
  for (k::Backend backend : k::compiled_backends()) {
    if (!k::available(backend)) continue;
    k::set_backend(backend);
    EXPECT_EQ(k::active_backend(), backend);
    EXPECT_EQ(k::active().backend, backend);
    EXPECT_EQ(hamming_blocked(a, b), want);
  }
}

}  // namespace
}  // namespace generic::hdc
