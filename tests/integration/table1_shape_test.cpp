// End-to-end integration test pinning the *shape* of Table 1 — the paper's
// headline claims — at reduced scale (D = 1024, 5 retrain epochs, six
// representative benchmarks) so the full pipeline is exercised in seconds:
//   * GENERIC has the highest mean accuracy of the five encodings;
//   * GENERIC has the lowest cross-dataset standard deviation;
//   * RP collapses on the zero-mean and symbolic tasks (EEG, LANG);
//   * ngram collapses on the positional tasks (MNIST, ISOLET);
//   * only subsequence encoders reach the mid-90s on LANG.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/stats.h"
#include "data/benchmarks.h"
#include "encoding/encoders.h"
#include "model/pipeline.h"

namespace generic {
namespace {

class Table1Shape : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    results_ = new std::map<std::string, std::map<std::string, double>>();
    const std::vector<std::string> datasets{"EEG",  "EMG",    "LANG",
                                            "MNIST", "ISOLET", "PAGE"};
    const std::vector<enc::EncoderKind> kinds{
        enc::EncoderKind::kRp, enc::EncoderKind::kLevelId,
        enc::EncoderKind::kNgram, enc::EncoderKind::kPermutation,
        enc::EncoderKind::kGeneric};
    for (const auto& name : datasets) {
      const auto ds = data::make_benchmark(name);
      for (auto kind : kinds) {
        enc::EncoderConfig cfg;
        cfg.dims = 1024;
        const auto g = data::generic_config_for(name);
        cfg.window = g.window;
        if (kind == enc::EncoderKind::kGeneric) cfg.use_ids = g.use_ids;
        auto encoder = enc::make_encoder(kind, cfg);
        (*results_)[std::string(enc::to_string(kind))][name] =
            model::run_hdc_classification(*encoder, ds, 5).test_accuracy;
      }
    }
  }
  static void TearDownTestSuite() {
    delete results_;
    results_ = nullptr;
  }

  static double acc(const std::string& encoder, const std::string& dataset) {
    return results_->at(encoder).at(dataset);
  }
  static std::vector<double> column(const std::string& encoder) {
    std::vector<double> out;
    for (const auto& [name, a] : results_->at(encoder)) out.push_back(a);
    return out;
  }

  static std::map<std::string, std::map<std::string, double>>* results_;
};

std::map<std::string, std::map<std::string, double>>* Table1Shape::results_ =
    nullptr;

TEST_F(Table1Shape, GenericHasHighestMean) {
  const double generic_mean = mean(column("generic"));
  for (const char* other : {"rp", "level-id", "ngram", "permute"})
    EXPECT_GT(generic_mean, mean(column(other))) << other;
}

TEST_F(Table1Shape, GenericHasLowestSpread) {
  const double generic_sd = stddev(column("generic"));
  for (const char* other : {"rp", "level-id", "ngram"})
    EXPECT_LT(generic_sd, stddev(column(other))) << other;
}

TEST_F(Table1Shape, RpFailsWhereLinearSignalIsAbsent) {
  EXPECT_LT(acc("rp", "EEG"), 0.65);   // ~chance on the zero-mean task
  EXPECT_LT(acc("rp", "LANG"), 0.30);  // symbol codes are not linear
  EXPECT_GT(acc("generic", "EEG"), acc("rp", "EEG") + 0.10);
}

TEST_F(Table1Shape, NgramFailsOnPositionalTasks) {
  EXPECT_LT(acc("ngram", "MNIST"), 0.60);
  EXPECT_LT(acc("ngram", "ISOLET"), 0.60);
  EXPECT_GT(acc("generic", "MNIST"), acc("ngram", "MNIST") + 0.25);
}

TEST_F(Table1Shape, OnlySubsequenceEncodersSolveLang) {
  EXPECT_GT(acc("ngram", "LANG"), 0.85);
  EXPECT_GT(acc("generic", "LANG"), 0.85);
  EXPECT_LT(acc("permute", "LANG"), 0.70);
  EXPECT_LT(acc("level-id", "LANG"), 0.70);
}

TEST_F(Table1Shape, EveryEncoderBeatsChanceSomewhere) {
  // Sanity: no encoder is globally broken.
  for (const char* encoder : {"rp", "level-id", "ngram", "permute", "generic"})
    EXPECT_GT(max_of(column(encoder)), 0.8) << encoder;
}

}  // namespace
}  // namespace generic
