// Golden-file regression: a fixed-seed end-to-end pipeline (synthetic
// dataset -> GENERIC encoder -> trained + quantized classifier -> fault
// campaign) must reproduce the committed JSON fixture byte for byte.
//
// This pins three public contracts at once:
//  * the deterministic numeric pipeline (any change to RNG streams,
//    encoding, training order, or quantization shifts baseline_accuracy),
//  * the generic.fault_campaign.v1 schema and its field order,
//  * the fixed-format float rendering of campaign_to_json.
//
// To regenerate after an INTENTIONAL contract change:
//   GENERIC_UPDATE_GOLDEN=1 ./tests/test_integration
//       --gtest_filter='GoldenPipeline.*'
// then commit the updated fixture and call the change out in the PR.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "data/benchmarks.h"
#include "encoding/encoders.h"
#include "model/pipeline.h"
#include "resilience/campaign.h"

#ifndef GENERIC_GOLDEN_DIR
#error "GENERIC_GOLDEN_DIR must be defined by the build"
#endif

namespace generic {
namespace {

std::string fixture_path() {
  return std::string(GENERIC_GOLDEN_DIR) + "/fault_campaign_page.json";
}

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return {};
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

/// The pinned pipeline. Every constant here is part of the fixture's
/// identity — change one and the fixture must be regenerated.
std::string run_pinned_pipeline() {
  const auto ds = data::make_benchmark("PAGE");
  enc::EncoderConfig cfg;
  cfg.dims = 1024;
  enc::GenericEncoder encoder(cfg);
  encoder.fit(ds.train_x);
  const auto train = model::encode_all(encoder, ds.train_x);
  const auto test = model::encode_all(encoder, ds.test_x);
  model::HdcClassifier clf(1024, ds.num_classes);
  clf.fit(train, ds.train_y, 5);
  clf.quantize(8);

  resilience::CampaignConfig cc;
  cc.kinds = {resilience::FaultKind::kTransient,
              resilience::FaultKind::kDeadBlock};
  cc.rates = {0.0, 1e-3, 0.05};
  cc.trials = 3;
  cc.seed = 20220722;  // the paper's venue date — fixed forever
  const auto result = resilience::run_campaign(clf, test, ds.test_y, cc);
  return resilience::campaign_to_json(result);
}

TEST(GoldenPipeline, MatchesCommittedFixtureByteForByte) {
  const std::string got = run_pinned_pipeline();

  if (std::getenv("GENERIC_UPDATE_GOLDEN") != nullptr) {
    std::ofstream f(fixture_path(), std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(f) << "cannot write fixture " << fixture_path();
    f << got;
    GTEST_SKIP() << "fixture regenerated at " << fixture_path();
  }

  const std::string want = read_file(fixture_path());
  ASSERT_FALSE(want.empty())
      << "missing fixture " << fixture_path()
      << " — run with GENERIC_UPDATE_GOLDEN=1 to create it";
  EXPECT_EQ(got, want)
      << "pipeline output diverged from the committed fixture; if the "
         "change is intentional, regenerate with GENERIC_UPDATE_GOLDEN=1";
}

TEST(GoldenPipeline, FixtureCarriesSchemaAndSaneAccuracy) {
  // Independent of the byte comparison: the committed fixture itself must
  // declare the v1 schema and a plausible fault-free baseline, so a
  // regenerated-but-broken fixture cannot slip through silently.
  const std::string want = read_file(fixture_path());
  ASSERT_FALSE(want.empty()) << "missing fixture " << fixture_path();
  EXPECT_NE(want.find("\"schema\": \"generic.fault_campaign.v1\""),
            std::string::npos);
  EXPECT_NE(want.find("\"target\": \"class_memory\""), std::string::npos);
  const auto pos = want.find("\"baseline_accuracy\": ");
  ASSERT_NE(pos, std::string::npos);
  const double acc =
      std::strtod(want.c_str() + pos + sizeof("\"baseline_accuracy\": ") - 1,
                  nullptr);
  EXPECT_GT(acc, 0.5) << "fixture baseline accuracy implausibly low";
  EXPECT_LE(acc, 1.0);
}

}  // namespace
}  // namespace generic
