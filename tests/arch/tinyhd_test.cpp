#include "arch/tinyhd.h"

#include <gtest/gtest.h>

#include "arch/generic_asic.h"

namespace generic::arch {
namespace {

AppSpec spec_of(std::size_t dims, std::size_t d, std::size_t nc) {
  AppSpec s;
  s.dims = dims;
  s.features = d;
  s.classes = nc;
  return s;
}

TEST(TinyHd, NoNormOrDividerTraffic) {
  TinyHdModel model;
  const auto c = model.infer_counts(spec_of(4096, 64, 8));
  EXPECT_EQ(c.norm_accesses, 0u);
  EXPECT_EQ(c.divider_ops, 0u);
  CycleModel cm;
  EXPECT_LT(c.cycles, cm.infer_input(spec_of(4096, 64, 8)).cycles);
}

TEST(TinyHd, CheaperThanTrainableGenericPerInference) {
  // The architectural claim behind Figure 9: an inference-only binary
  // engine undercuts the trainable engine at nominal settings...
  TinyHdModel tiny;
  EnergyModel em;
  CycleModel cm;
  const AppSpec s = spec_of(4096, 120, 9);
  const double tiny_e = tiny.energy_per_input_j(s);
  const double generic_e = em.energy_j(s, cm.infer_input(s));
  EXPECT_LT(tiny_e, generic_e);
  EXPECT_GT(tiny_e, generic_e / 20.0);  // ...but not by free-lunch margins
}

TEST(TinyHd, StaticFloorWellBelowGeneric) {
  TinyHdModel tiny;
  EnergyModel em;
  const AppSpec s = spec_of(4096, 64, 9);
  EXPECT_LT(tiny.static_power_mw(s), em.static_power_mw(s).total());
}

TEST(TinyHd, EnergyScalesWithClasses) {
  TinyHdModel tiny;
  EXPECT_LT(tiny.energy_per_input_j(spec_of(4096, 64, 2)),
            tiny.energy_per_input_j(spec_of(4096, 64, 26)));
}

TEST(TinyHd, LatencySlightlyBelowGeneric) {
  TinyHdModel tiny;
  CycleModel cm;
  const AppSpec s = spec_of(4096, 64, 8);
  EXPECT_LT(tiny.seconds_per_input(s),
            cm.seconds(cm.infer_input(s)));
}

}  // namespace
}  // namespace generic::arch
