#include "arch/energy_model.h"

#include <gtest/gtest.h>

namespace generic::arch {
namespace {

AppSpec spec_of(std::size_t dims, std::size_t d, std::size_t nc) {
  AppSpec s;
  s.dims = dims;
  s.features = d;
  s.classes = nc;
  return s;
}

TEST(EnergyModel, AreaAnchors) {
  EnergyModel em;
  const auto area = em.area_mm2();
  EXPECT_NEAR(area.total(), 0.30, 1e-9);                    // §5.1
  EXPECT_GT(area.class_mem / area.total(), 0.6);            // dominates
  EXPECT_LT(area.level_mem / area.total(), 0.10);           // §5.1 claim
}

TEST(EnergyModel, StaticPowerAnchors) {
  EnergyModel em;
  const auto full = em.static_power_full_mw();
  EXPECT_NEAR(full.total(), 0.25, 1e-9);  // worst case, all banks on
  // Typical application (28% fill, §4.3.2) lands near the reported 0.09 mW.
  const AppSpec typical = spec_of(4096, 64, 9);  // 28% of 32 classes
  const auto gated = em.static_power_mw(typical);
  EXPECT_LT(gated.total(), 0.15);
  EXPECT_GT(gated.total(), 0.05);
}

TEST(EnergyModel, ActiveBankFractionQuantizes) {
  EnergyModel em;
  // 8 classes x 4K dims = 25% of the array -> exactly 1 of 4 banks.
  EXPECT_DOUBLE_EQ(em.active_bank_fraction(spec_of(4096, 64, 8)), 0.25);
  // 9 classes -> spills into the second bank.
  EXPECT_DOUBLE_EQ(em.active_bank_fraction(spec_of(4096, 64, 9)), 0.50);
  // Full array.
  EXPECT_DOUBLE_EQ(em.active_bank_fraction(spec_of(4096, 64, 32)), 1.0);
  // Trade-off dims/classes: 8K dims x 16 classes is also full.
  EXPECT_DOUBLE_EQ(em.active_bank_fraction(spec_of(8192, 64, 16)), 1.0);
  // Finer banking gates more precisely.
  EXPECT_DOUBLE_EQ(em.active_bank_fraction(spec_of(4096, 64, 5), 8), 0.25);
}

TEST(EnergyModel, BankingAreaOverheads) {
  EnergyModel em;
  EXPECT_DOUBLE_EQ(em.banking_area_overhead(1), 1.0);
  EXPECT_DOUBLE_EQ(em.banking_area_overhead(4), 1.20);  // §4.3.2
  EXPECT_DOUBLE_EQ(em.banking_area_overhead(8), 1.55);
  EXPECT_THROW(em.banking_area_overhead(3), std::invalid_argument);
}

TEST(EnergyModel, FourBanksMinimizeAreaPowerProduct) {
  // §4.3.2's conclusion: area x power cost is minimized at four banks for
  // a typical application mix.
  EnergyModel em;
  const AppSpec typical = spec_of(4096, 64, 9);
  auto cost = [&](std::size_t banks) {
    Breakdown st = em.static_power_full_mw();
    st.class_mem *= em.active_bank_fraction(typical, banks);
    return st.total() * em.banking_area_overhead(banks);
  };
  EXPECT_LT(cost(4), cost(1));
  EXPECT_LT(cost(4), cost(8));
}

TEST(Vos, CurveIsMonotone) {
  double prev_static = 1.0, prev_dyn = 1.0;
  for (double ber : {1e-5, 1e-4, 1e-3, 1e-2, 5e-2, 1e-1}) {
    const auto v = vos_for_error_rate(ber);
    EXPECT_GE(v.static_reduction, prev_static);
    EXPECT_GE(v.dynamic_reduction, prev_dyn);
    prev_static = v.static_reduction;
    prev_dyn = v.dynamic_reduction;
  }
}

TEST(Vos, AnchorsAndIdentity) {
  const auto none = vos_for_error_rate(0.0);
  EXPECT_DOUBLE_EQ(none.static_reduction, 1.0);
  EXPECT_DOUBLE_EQ(none.dynamic_reduction, 1.0);
  const auto deep = vos_for_error_rate(0.1);
  EXPECT_NEAR(deep.static_reduction, 7.0, 0.01);  // Fig 6 right axis
  EXPECT_NEAR(deep.dynamic_reduction, 3.0, 0.01);
  // Saturates beyond the measured range.
  EXPECT_DOUBLE_EQ(vos_for_error_rate(0.5).static_reduction, 7.0);
}

TEST(Vos, InterpolatesBetweenPoints) {
  const auto lo = vos_for_error_rate(1e-3);
  const auto mid = vos_for_error_rate(2e-3);
  const auto hi = vos_for_error_rate(3e-3);
  EXPECT_GT(mid.static_reduction, lo.static_reduction);
  EXPECT_LT(mid.static_reduction, hi.static_reduction);
}

TEST(EnergyModel, DynamicPowerNearPaperAnchor) {
  // A representative multi-class workload should land near the reported
  // ~1.8 mW average dynamic power (§5.1).
  EnergyModel em;
  CycleModel cm;
  const AppSpec s = spec_of(4096, 128, 16);
  const auto counts = cm.infer_input(s);
  const double mw = em.dynamic_power_mw(s, counts).total();
  EXPECT_GT(mw, 0.5);
  EXPECT_LT(mw, 4.0);
}

TEST(EnergyModel, ClassMemoryDominatesDynamicPower) {
  // §4.3.4: the class memories consume the lion's share of the power.
  EnergyModel em;
  CycleModel cm;
  const AppSpec s = spec_of(4096, 128, 26);
  const auto b = em.dynamic_power_mw(s, cm.infer_input(s));
  EXPECT_GT(b.class_mem / b.total(), 0.5);
  EXPECT_LT(b.level_mem / b.total(), 0.15);
}

TEST(EnergyModel, BitWidthScalesClassEnergy) {
  EnergyModel em;
  CycleModel cm;
  AppSpec s = spec_of(4096, 64, 8);
  const auto counts = cm.infer_input(s);
  const double e16 = em.dynamic_energy_j(s, counts).class_mem;
  s.bit_width = 4;
  const double e4 = em.dynamic_energy_j(s, counts).class_mem;
  EXPECT_NEAR(e4, e16 / 4.0, e16 * 0.01);
}

TEST(EnergyModel, VosReducesTotalEnergy) {
  EnergyModel em;
  CycleModel cm;
  const AppSpec s = spec_of(4096, 64, 8);
  const auto counts = cm.infer_input(s).scaled(1000);
  const double nominal = em.energy_j(s, counts);
  const double scaled = em.energy_j(s, counts, vos_for_error_rate(0.02));
  EXPECT_LT(scaled, nominal);
  EXPECT_GT(scaled, nominal / 4.0);  // only the class component shrinks
}

TEST(EnergyModel, EnergyAdditiveInCounts) {
  EnergyModel em;
  CycleModel cm;
  const AppSpec s = spec_of(2048, 32, 4);
  const auto one = cm.infer_input(s);
  EXPECT_NEAR(em.energy_j(s, one.scaled(10)), 10.0 * em.energy_j(s, one),
              1e-15);
}

}  // namespace
}  // namespace generic::arch
