// State-management semantics of the behavioural ASIC: snapshot/restore
// (the config port), knob reset, and clustering agreement with the
// software clusterer.
#include <gtest/gtest.h>

#include "arch/generic_asic.h"
#include "data/benchmarks.h"
#include "data/fcps.h"
#include "ml/metrics.h"
#include "model/hdc_cluster.h"
#include "model/pipeline.h"

namespace generic::arch {
namespace {

AppSpec page_spec(const data::Dataset& ds) {
  AppSpec spec;
  spec.dims = 1024;
  spec.features = ds.num_features();
  spec.classes = ds.num_classes;
  return spec;
}

TEST(AsicState, SnapshotBeforeTrainThrows) {
  const auto ds = data::make_benchmark("PAGE");
  GenericAsic asic(page_spec(ds));
  EXPECT_THROW((void)asic.snapshot_model(), std::logic_error);
}

TEST(AsicState, RestoreResetsEveryKnob) {
  const auto ds = data::make_benchmark("PAGE");
  GenericAsic asic(page_spec(ds));
  asic.train(ds.train_x, ds.train_y, 3);
  const auto snap = asic.snapshot_model();

  asic.set_active_dims(512, /*constant_norms=*/true);
  asic.quantize(4);
  asic.apply_voltage_scaling(0.01);
  EXPECT_EQ(asic.spec().bit_width, 4);
  EXPECT_GT(asic.vos().static_reduction, 1.0);

  asic.restore_model(snap);
  EXPECT_EQ(asic.spec().bit_width, 16);
  EXPECT_DOUBLE_EQ(asic.vos().static_reduction, 1.0);
  // Predictions return to the clean-model values.
  GenericAsic fresh(page_spec(ds));
  fresh.train(ds.train_x, ds.train_y, 3);
  for (std::size_t i = 0; i < 40; ++i)
    EXPECT_EQ(asic.infer(ds.test_x[i]), fresh.infer(ds.test_x[i])) << i;
}

TEST(AsicState, RestoreRejectsWrongGeometry) {
  const auto ds = data::make_benchmark("PAGE");
  GenericAsic asic(page_spec(ds));
  asic.train(ds.train_x, ds.train_y, 2);
  model::HdcClassifier other(2048, ds.num_classes);
  EXPECT_THROW(asic.restore_model(other), std::invalid_argument);
}

TEST(AsicState, TrainRejectsBadInput) {
  const auto ds = data::make_benchmark("PAGE");
  GenericAsic asic(page_spec(ds));
  std::vector<std::vector<float>> x(3, std::vector<float>(ds.num_features()));
  std::vector<int> y(2, 0);
  EXPECT_THROW(asic.train(x, y), std::invalid_argument);
  EXPECT_THROW(asic.train({}, {}), std::invalid_argument);
}

TEST(AsicState, QuantizeBeforeTrainThrows) {
  const auto ds = data::make_benchmark("PAGE");
  GenericAsic asic(page_spec(ds));
  EXPECT_THROW(asic.quantize(8), std::logic_error);
  EXPECT_THROW(asic.apply_voltage_scaling(0.01), std::logic_error);
}

TEST(AsicState, ClusteringAgreesWithSoftwareClusterer) {
  // Same seeding rule (first k), same copy-epoch algorithm; the only gap
  // is exact vs corrected-Mitchell assignment, so partitions should be
  // near-identical on a well-separated set.
  const auto ds = data::make_fcps("Hepta");
  AppSpec spec;
  spec.dims = 2048;
  spec.features = ds.num_features();
  spec.classes = ds.num_clusters;
  spec.window = std::min<std::size_t>(3, ds.num_features());
  GenericAsic asic(spec, /*seed=*/21);
  const auto hw_labels = asic.cluster(ds.points, 10);

  enc::EncoderConfig cfg;
  cfg.dims = spec.dims;
  cfg.window = spec.window;
  cfg.seed = 21;  // same encoder stream as the ASIC
  enc::GenericEncoder encoder(cfg);
  encoder.fit(ds.points);
  const auto encoded = model::encode_all(encoder, ds.points);
  model::HdcCluster hc(spec.dims, spec.classes);
  hc.fit(encoded, 10);
  const auto sw_labels = hc.labels(encoded);

  EXPECT_GT(ml::normalized_mutual_information(hw_labels, sw_labels), 0.85);
}

TEST(AsicState, OnlineUpdateBeforeTrainThrows) {
  const auto ds = data::make_benchmark("PAGE");
  GenericAsic asic(page_spec(ds));
  EXPECT_THROW(asic.online_update(ds.test_x[0], 0), std::logic_error);
}

}  // namespace
}  // namespace generic::arch
