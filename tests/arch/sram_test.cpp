#include "arch/sram.h"

#include <gtest/gtest.h>

namespace generic::arch {
namespace {

TEST(Sram, ConstructionValidation) {
  EXPECT_THROW(Sram("x", 0, 8), std::invalid_argument);
  EXPECT_THROW(Sram("x", 8, 0), std::invalid_argument);
  Sram ok("ok", 16, 100);
  EXPECT_EQ(ok.depth(), 16u);
  EXPECT_EQ(ok.width_bits(), 100u);
}

TEST(Sram, WordRoundTrip) {
  Sram mem("w", 8, 16);
  mem.write_word(3, 0xBEEF);
  EXPECT_EQ(mem.read_word(3), 0xBEEFu);
  EXPECT_EQ(mem.read_word(0), 0u);
}

TEST(Sram, WidthMasksExtraBits) {
  Sram mem("w", 4, 12);
  mem.write_word(0, 0xFFFF);
  EXPECT_EQ(mem.read_word(0), 0x0FFFu);
}

TEST(Sram, RowRoundTripWide) {
  Sram mem("wide", 2, 130);
  std::vector<std::uint64_t> row{0xAAAAAAAAAAAAAAAAULL,
                                 0x5555555555555555ULL, 0x3ULL};
  mem.write_row(1, row);
  EXPECT_EQ(mem.read_row(1), row);
}

TEST(Sram, ReadBitsWrapsAroundRow) {
  Sram mem("wrap", 1, 8);
  mem.write_word(0, 0b10000001);
  // Bits 6..9 wrap: positions 6,7,0,1 = 0,1,1,0.
  EXPECT_EQ(mem.read_bits(0, 6, 4), 0b0110u);
}

TEST(Sram, ReadBitsValidation) {
  Sram mem("v", 2, 64);
  EXPECT_THROW(mem.read_bits(5, 0, 4), std::out_of_range);
  EXPECT_THROW(mem.read_bits(0, 0, 0), std::invalid_argument);
  EXPECT_THROW(mem.read_bits(0, 0, 65), std::invalid_argument);
}

TEST(Sram, AccessCounters) {
  Sram mem("c", 4, 16);
  mem.write_word(0, 1);
  mem.write_word(1, 2);
  (void)mem.read_word(0);
  (void)mem.read_bits(1, 0, 8);
  EXPECT_EQ(mem.writes(), 2u);
  EXPECT_EQ(mem.reads(), 2u);
  mem.reset_counters();
  EXPECT_EQ(mem.writes(), 0u);
  EXPECT_EQ(mem.reads(), 0u);
}

TEST(Sram, ReadUpsetsAreTransient) {
  Sram mem("u", 1, 64);
  mem.write_word(0, 0);
  mem.set_read_upset_rate(0.5, 7);
  int flips = 0;
  for (int i = 0; i < 50; ++i) flips += mem.read_word(0) != 0;
  EXPECT_GT(flips, 20);  // upsets visible on the read path...
  mem.set_read_upset_rate(0.0, 7);
  EXPECT_EQ(mem.read_word(0), 0u);  // ...but the cell contents survive
}

TEST(Sram, WordAccessOutOfRangeThrows) {
  Sram mem("b", 4, 16);
  EXPECT_THROW((void)mem.read_word(4), std::out_of_range);
  EXPECT_THROW(mem.write_word(4, 1), std::out_of_range);
  EXPECT_THROW((void)mem.read_row(7), std::out_of_range);
  EXPECT_THROW(mem.write_row(7, {0}), std::out_of_range);
}

TEST(Sram, ReseedReplaysIdenticalUpsetPattern) {
  Sram mem("s", 2, 64);
  mem.write_word(0, 0);
  mem.write_word(1, 0);
  mem.set_read_upset_rate(0.1, 42);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 20; ++i) first.push_back(mem.read_word(i % 2));
  mem.reseed(42);  // rewind the fault stream, keep the rate
  EXPECT_EQ(mem.read_upset_rate(), 0.1);
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(mem.read_word(i % 2), first[static_cast<std::size_t>(i)]) << i;
  // A different seed diverges somewhere in the window.
  mem.reseed(43);
  bool diverged = false;
  for (int i = 0; i < 20 && !diverged; ++i)
    diverged = mem.read_word(i % 2) != first[static_cast<std::size_t>(i)];
  EXPECT_TRUE(diverged);
}

TEST(Sram, DeadRowsReadZeroAndDropWrites) {
  Sram mem("d", 4, 64);
  mem.write_word(2, 0xABCD);
  mem.mark_dead_row(2);
  EXPECT_TRUE(mem.row_is_dead(2));
  EXPECT_FALSE(mem.row_is_dead(1));
  EXPECT_EQ(mem.read_word(2), 0u);
  EXPECT_EQ(mem.read_bits(2, 0, 16), 0u);
  const auto writes_before = mem.writes();
  mem.write_word(2, 0x1234);  // dropped, but still counted as an access
  EXPECT_EQ(mem.writes(), writes_before + 1);
  EXPECT_EQ(mem.read_word(2), 0u);
  mem.clear_dead_rows();
  EXPECT_EQ(mem.read_word(2), 0xABCDu);  // pre-death contents reappear
  EXPECT_THROW(mem.mark_dead_row(4), std::out_of_range);
}

TEST(Sram, UpsetRateScalesWithProbability) {
  Sram mem("r", 1, 64);
  mem.write_word(0, 0);
  mem.set_read_upset_rate(0.01, 11);
  std::size_t bits = 0;
  const int reads = 2000;
  for (int i = 0; i < reads; ++i)
    bits += static_cast<std::size_t>(__builtin_popcountll(mem.read_word(0)));
  const double rate = static_cast<double>(bits) / (64.0 * reads);
  EXPECT_NEAR(rate, 0.01, 0.004);
}

}  // namespace
}  // namespace generic::arch
