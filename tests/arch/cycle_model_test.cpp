#include "arch/cycle_model.h"

#include <gtest/gtest.h>

namespace generic::arch {
namespace {

AppSpec spec_of(std::size_t dims, std::size_t d, std::size_t nc) {
  AppSpec s;
  s.dims = dims;
  s.features = d;
  s.classes = nc;
  return s;
}

TEST(AppSpec, ValidationEnvelope) {
  ArchConstants hw;
  AppSpec ok = spec_of(4096, 64, 8);
  EXPECT_NO_THROW(ok.validate(hw));

  AppSpec bad = ok;
  bad.dims = 100;  // not a chunk multiple
  EXPECT_THROW(bad.validate(hw), std::invalid_argument);
  bad = ok;
  bad.classes = 33;
  EXPECT_THROW(bad.validate(hw), std::invalid_argument);
  bad = ok;
  bad.features = 2000;
  EXPECT_THROW(bad.validate(hw), std::invalid_argument);
  bad = ok;
  bad.window = 0;
  EXPECT_THROW(bad.validate(hw), std::invalid_argument);
  bad = ok;
  bad.bit_width = 0;
  EXPECT_THROW(bad.validate(hw), std::invalid_argument);
}

TEST(AppSpec, DimsClassesTradeOff) {
  // §4.1: 4K dims for 32 classes, or 8K dims for 16 classes.
  AppSpec a = spec_of(4096, 64, 32);
  EXPECT_NO_THROW(a.validate());
  AppSpec b = spec_of(8192, 64, 16);
  EXPECT_NO_THROW(b.validate());
  AppSpec c = spec_of(8192, 64, 17);
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(CycleModel, PassesIsDimsOverM) {
  CycleModel cm;
  EXPECT_EQ(cm.passes(spec_of(4096, 64, 2)), 256u);
  EXPECT_EQ(cm.passes(spec_of(1024, 64, 2)), 64u);
  EXPECT_EQ(cm.passes(spec_of(128, 64, 2)), 8u);
}

TEST(CycleModel, InferenceCycleFormula) {
  // cycles = D/m * (d + nC) + nC + divider tail (§4.2.1 dataflow).
  CycleModel cm;
  const AppSpec s = spec_of(4096, 100, 10);
  const auto c = cm.infer_input(s);
  EXPECT_EQ(c.cycles, 256u * (100 + 10) + 10 + 4);
  EXPECT_EQ(c.feature_reads, 256u * 100);
  EXPECT_EQ(c.class_reads, 256u * 10);
  EXPECT_EQ(c.divider_ops, 10u);
  EXPECT_EQ(c.mac_ops, 256u * 10 * 16);
}

TEST(CycleModel, DimensionReductionScalesLinearly) {
  // §4.3.3: feeding a smaller D_hv cuts passes proportionally.
  CycleModel cm;
  const auto full = cm.infer_input(spec_of(4096, 64, 4));
  const auto half = cm.infer_input(spec_of(2048, 64, 4));
  EXPECT_NEAR(static_cast<double>(half.cycles),
              static_cast<double>(full.cycles) / 2.0,
              static_cast<double>(full.cycles) * 0.01);
}

TEST(CycleModel, RetrainUpdateIsThreePassesPerClass) {
  // §4.2.2: "each update takes 3 x D/m cycles" per touched class; a
  // misprediction touches two classes.
  CycleModel cm;
  const AppSpec s = spec_of(4096, 64, 4);
  EXPECT_EQ(cm.retrain_update(s).cycles, 2u * 3u * 256u);
}

TEST(CycleModel, IdReadsOnlyWithIds) {
  CycleModel cm;
  AppSpec s = spec_of(4096, 64, 2);
  s.use_ids = true;
  EXPECT_GT(cm.encode_input(s).id_reads, 0u);
  s.use_ids = false;
  EXPECT_EQ(cm.encode_input(s).id_reads, 0u);
}

TEST(CycleModel, IdMemoryCompressionReadRate) {
  // §4.3.1: the tmp register means one id-seed read per m window steps.
  CycleModel cm;
  AppSpec s = spec_of(4096, 65, 2);  // 63 windows with n=3
  const auto c = cm.encode_input(s);
  const std::uint64_t windows = 65 - 3 + 1;
  EXPECT_EQ(c.id_reads, (256u * windows + 15) / 16);
}

TEST(CycleModel, ClusterCostsExceedInference) {
  CycleModel cm;
  const AppSpec s = spec_of(4096, 16, 7);
  const auto inf = cm.infer_input(s);
  const auto clu = cm.cluster_input(s);
  EXPECT_GT(clu.cycles, inf.cycles);
  EXPECT_GT(clu.class_writes, inf.class_writes);
}

TEST(CycleModel, CountsAddAndScale) {
  CycleModel cm;
  const AppSpec s = spec_of(1024, 32, 4);
  const auto one = cm.infer_input(s);
  AccessCounts sum;
  for (int i = 0; i < 5; ++i) sum += one;
  const auto scaled = one.scaled(5);
  EXPECT_EQ(sum.cycles, scaled.cycles);
  EXPECT_EQ(sum.class_reads, scaled.class_reads);
  EXPECT_EQ(sum.mac_ops, scaled.mac_ops);
}

TEST(CycleModel, SecondsAtClock) {
  CycleModel cm;
  AccessCounts c;
  c.cycles = 500'000'000;  // one second at 500 MHz
  EXPECT_DOUBLE_EQ(cm.seconds(c), 1.0);
}

TEST(CycleModel, ClusteringLatencyMatchesPaperOrder) {
  // §5.3: GENERIC clusters FCPS-scale inputs in ~9.6 us per input.
  CycleModel cm;
  AppSpec s = spec_of(4096, 4, 7);  // FCPS-like: few features, k<=7
  const double us = cm.seconds(cm.cluster_input(s)) * 1e6;
  EXPECT_GT(us, 2.0);
  EXPECT_LT(us, 20.0);
}

}  // namespace
}  // namespace generic::arch
