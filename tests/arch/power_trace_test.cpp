#include "arch/power_trace.h"

#include <gtest/gtest.h>

#include "arch/generic_asic.h"
#include "data/benchmarks.h"

namespace generic::arch {
namespace {

AppSpec spec_of(std::size_t dims, std::size_t d, std::size_t nc) {
  AppSpec s;
  s.dims = dims;
  s.features = d;
  s.classes = nc;
  return s;
}

TEST(PowerTrace, PhaseTotalsMatchEnergyModel) {
  PowerTrace trace;
  CycleModel cm;
  EnergyModel em;
  const AppSpec s = spec_of(2048, 64, 4);
  const auto counts = cm.infer_input(s).scaled(100);
  trace.record("burst", s, counts);
  ASSERT_EQ(trace.samples().size(), 1u);
  EXPECT_NEAR(trace.total_energy_j(), em.energy_j(s, counts), 1e-15);
  EXPECT_DOUBLE_EQ(trace.total_seconds(), cm.seconds(counts));
}

TEST(PowerTrace, AveragePowerNearPaperBand) {
  PowerTrace trace;
  CycleModel cm;
  const AppSpec s = spec_of(4096, 128, 16);
  trace.record("inference", s, cm.infer_input(s).scaled(10));
  const double mw = trace.samples().front().average_power_w() * 1e3;
  EXPECT_GT(mw, 0.5);
  EXPECT_LT(mw, 5.0);  // ~static floor + ~2 mW dynamic
}

TEST(PowerTrace, VosPhaseCheaper) {
  PowerTrace trace;
  CycleModel cm;
  const AppSpec s = spec_of(4096, 64, 8);
  const auto counts = cm.infer_input(s).scaled(50);
  trace.record("nominal", s, counts);
  trace.record("scaled", s, counts, vos_for_error_rate(0.02));
  EXPECT_LT(trace.samples()[1].total_j(), trace.samples()[0].total_j());
}

TEST(PowerTrace, CsvWellFormed) {
  PowerTrace trace;
  CycleModel cm;
  const AppSpec s = spec_of(1024, 32, 2);
  trace.record("a", s, cm.infer_input(s));
  trace.record("b", s, cm.train_init_input(s));
  const std::string csv = trace.to_csv();
  // Header + 2 rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
  EXPECT_NE(csv.find("phase,seconds"), std::string::npos);
  EXPECT_NE(csv.find("a,"), std::string::npos);
  EXPECT_NE(csv.find("b,"), std::string::npos);
  // 11 columns per row.
  const auto first_row = csv.substr(csv.find("a,"));
  const auto row = first_row.substr(0, first_row.find('\n'));
  EXPECT_EQ(std::count(row.begin(), row.end(), ','), 10);
}

TEST(PowerTrace, EndToEndWithBehavioralAsic) {
  // Bracket real ASIC phases by diffing its counters.
  const auto ds = data::make_benchmark("PAGE");
  AppSpec spec = spec_of(1024, ds.num_features(), ds.num_classes);
  GenericAsic asic(spec);
  PowerTrace trace;

  asic.train(ds.train_x, ds.train_y, 3);
  trace.record("train", asic.spec(), asic.counts(), asic.vos());
  asic.reset_counts();
  for (int i = 0; i < 50; ++i) (void)asic.infer(ds.test_x[static_cast<std::size_t>(i)]);
  trace.record("infer-burst", asic.spec(), asic.counts(), asic.vos());

  ASSERT_EQ(trace.samples().size(), 2u);
  EXPECT_GT(trace.samples()[0].total_j(), trace.samples()[1].total_j());
  EXPECT_GT(trace.total_seconds(), 0.0);
  // Trace total equals the ASIC's own accounting phase by phase.
  EXPECT_NEAR(trace.samples()[1].total_j(), asic.energy_j(), 1e-12);
}

}  // namespace
}  // namespace generic::arch
