// Behavioural verification of the ASIC model against the algorithmic
// golden stack (the role Modelsim played in the paper, §5.1).
#include "arch/generic_asic.h"

#include <gtest/gtest.h>

#include "data/benchmarks.h"
#include "data/fcps.h"
#include "ml/metrics.h"
#include "model/pipeline.h"

namespace generic::arch {
namespace {

AppSpec spec_for(const data::Dataset& ds, std::size_t dims = 2048) {
  AppSpec s;
  s.dims = dims;
  s.features = ds.num_features();
  s.classes = ds.num_classes;
  const auto g = data::generic_config_for(ds.name);
  s.window = g.window;
  s.use_ids = g.use_ids;
  return s;
}

TEST(GenericAsic, UntrainedInferThrows) {
  AppSpec s;
  s.features = 4;
  GenericAsic asic(s);
  const std::vector<float> x{0.1f, 0.2f, 0.3f, 0.4f};
  EXPECT_THROW(asic.infer(x), std::logic_error);
}

TEST(GenericAsic, InvalidSpecRejectedAtConstruction) {
  AppSpec s;
  s.classes = 64;
  EXPECT_THROW(GenericAsic{s}, std::invalid_argument);
}

TEST(GenericAsic, ExactDividerMatchesGoldenModelExactly) {
  // With the exact divider, the ASIC must reproduce the software stack's
  // predictions bit-for-bit: same encoder seed, same retraining
  // trajectory, same scores.
  const auto ds = data::make_benchmark("PAGE");
  AppSpec spec = spec_for(ds);
  GenericAsic asic(spec, /*seed=*/7);
  asic.set_exact_divider(true);
  asic.train(ds.train_x, ds.train_y, 5);

  enc::EncoderConfig cfg;
  cfg.dims = spec.dims;
  cfg.window = spec.window;
  cfg.use_ids = spec.use_ids;
  cfg.seed = 7;
  enc::GenericEncoder golden_enc(cfg);
  golden_enc.fit(ds.train_x);
  const auto train_enc = model::encode_all(golden_enc, ds.train_x);
  model::HdcClassifier golden(spec.dims, ds.num_classes);
  golden.train_init(train_enc, ds.train_y);
  for (int e = 0; e < 5; ++e)
    if (golden.retrain_epoch(train_enc, ds.train_y) == 0) break;

  for (std::size_t i = 0; i < ds.test_x.size(); ++i) {
    const int hw = asic.infer(ds.test_x[i]);
    const int sw = golden.predict(golden_enc.encode(ds.test_x[i]));
    ASSERT_EQ(hw, sw) << "sample " << i;
  }
}

TEST(GenericAsic, MitchellDividerAgreesWithExactAlmostAlways) {
  const auto ds = data::make_benchmark("ISOLET");
  AppSpec spec = spec_for(ds);
  GenericAsic mitchell(spec, 7);
  mitchell.set_exact_divider(true);  // identical training trajectories
  mitchell.train(ds.train_x, ds.train_y, 5);
  mitchell.set_exact_divider(false);

  GenericAsic exact(spec, 7);
  exact.set_exact_divider(true);
  exact.train(ds.train_x, ds.train_y, 5);

  std::size_t agree = 0;
  for (const auto& x : ds.test_x)
    agree += mitchell.infer(x) == exact.infer(x);
  const double rate =
      static_cast<double>(agree) / static_cast<double>(ds.test_x.size());
  EXPECT_GT(rate, 0.95);  // Mitchell's ~11% score error rarely flips ranks
}

TEST(GenericAsic, AccuracyMatchesSoftwarePipelineOnBenchmarks) {
  for (const auto& name : {"PAGE", "EMG"}) {
    const auto ds = data::make_benchmark(name);
    GenericAsic asic(spec_for(ds), 7);
    asic.train(ds.train_x, ds.train_y, 10);
    std::size_t hits = 0;
    for (std::size_t i = 0; i < ds.test_x.size(); ++i)
      hits += asic.infer(ds.test_x[i]) == ds.test_y[i];
    const double acc =
        static_cast<double>(hits) / static_cast<double>(ds.test_size());
    EXPECT_GT(acc, 0.8) << name;
  }
}

TEST(GenericAsic, CountsAccumulateAndReset) {
  const auto ds = data::make_benchmark("PAGE");
  GenericAsic asic(spec_for(ds), 7);
  asic.train(ds.train_x, ds.train_y, 3);
  EXPECT_GT(asic.counts().cycles, 0u);
  EXPECT_GT(asic.energy_j(), 0.0);
  EXPECT_GT(asic.elapsed_seconds(), 0.0);
  asic.reset_counts();
  EXPECT_EQ(asic.counts().cycles, 0u);
  const auto before = asic.counts().cycles;
  (void)asic.infer(ds.test_x[0]);
  EXPECT_GT(asic.counts().cycles, before);
}

TEST(GenericAsic, InferenceCostMatchesCycleModel) {
  const auto ds = data::make_benchmark("PAGE");
  AppSpec spec = spec_for(ds);
  GenericAsic asic(spec, 7);
  asic.train(ds.train_x, ds.train_y, 2);
  asic.reset_counts();
  (void)asic.infer(ds.test_x[0]);
  CycleModel cm;
  EXPECT_EQ(asic.counts().cycles, cm.infer_input(spec).cycles);
}

TEST(GenericAsic, DimensionReductionCutsCyclesAndEnergy) {
  const auto ds = data::make_benchmark("EMG");
  AppSpec spec = spec_for(ds, 4096);
  GenericAsic asic(spec, 7);
  asic.train(ds.train_x, ds.train_y, 5);

  asic.reset_counts();
  (void)asic.infer(ds.test_x[0]);
  const auto full_cycles = asic.counts().cycles;
  const double full_energy = asic.energy_j();

  asic.set_active_dims(1024);
  asic.reset_counts();
  (void)asic.infer(ds.test_x[0]);
  EXPECT_LT(asic.counts().cycles, full_cycles / 3);
  EXPECT_LT(asic.energy_j(), full_energy / 3);
}

TEST(GenericAsic, DimensionReductionKeepsAccuracyReasonable) {
  const auto ds = data::make_benchmark("EMG");
  GenericAsic asic(spec_for(ds, 4096), 7);
  asic.train(ds.train_x, ds.train_y, 10);
  auto acc = [&] {
    std::size_t hits = 0;
    for (std::size_t i = 0; i < ds.test_x.size(); ++i)
      hits += asic.infer(ds.test_x[i]) == ds.test_y[i];
    return static_cast<double>(hits) / static_cast<double>(ds.test_size());
  };
  const double full = acc();
  asic.set_active_dims(2048);  // half the dimensions, Updated norms
  EXPECT_GT(acc(), full - 0.1);
  EXPECT_THROW(asic.set_active_dims(100), std::invalid_argument);
  EXPECT_THROW(asic.set_active_dims(8192), std::invalid_argument);
}

TEST(GenericAsic, ConstantNormsNoWorseDetector) {
  // Figure 5: constant (stale) norms must never beat updated sub-norms by
  // a meaningful margin at reduced dimensions.
  const auto ds = data::make_benchmark("ISOLET");
  GenericAsic asic(spec_for(ds, 4096), 7);
  asic.train(ds.train_x, ds.train_y, 5);
  auto acc = [&] {
    std::size_t hits = 0;
    for (std::size_t i = 0; i < ds.test_x.size(); ++i)
      hits += asic.infer(ds.test_x[i]) == ds.test_y[i];
    return static_cast<double>(hits) / static_cast<double>(ds.test_size());
  };
  asic.set_active_dims(512, /*constant_norms=*/false);
  const double updated = acc();
  asic.set_active_dims(512, /*constant_norms=*/true);
  const double constant = acc();
  EXPECT_GE(updated + 0.02, constant);
}

TEST(GenericAsic, QuantizeAndVoltageScalingPipeline) {
  const auto ds = data::make_benchmark("FACE");
  GenericAsic asic(spec_for(ds), 7);
  asic.train(ds.train_x, ds.train_y, 5);
  auto acc = [&] {
    std::size_t hits = 0;
    for (std::size_t i = 0; i < ds.test_x.size(); ++i)
      hits += asic.infer(ds.test_x[i]) == ds.test_y[i];
    return static_cast<double>(hits) / static_cast<double>(ds.test_size());
  };
  const double clean = acc();
  asic.quantize(4);
  EXPECT_EQ(asic.spec().bit_width, 4);
  EXPECT_GT(acc(), clean - 0.1);  // quantization is nearly free (§4.3.4)
  asic.apply_voltage_scaling(0.001);
  EXPECT_GT(asic.vos().static_reduction, 1.0);
  EXPECT_GT(acc(), clean - 0.15);  // mild VOS barely hurts
  // Energy at the scaled point is lower than nominal for the same work.
  asic.reset_counts();
  (void)asic.infer(ds.test_x[0]);
  const double scaled_energy = asic.energy_j();
  GenericAsic nominal(spec_for(ds), 7);
  nominal.train(ds.train_x, ds.train_y, 5);
  nominal.quantize(4);
  nominal.reset_counts();
  (void)nominal.infer(ds.test_x[0]);
  EXPECT_LT(scaled_energy, nominal.energy_j());
}

TEST(GenericAsic, ClusteringRecoverableOnHepta) {
  const auto ds = data::make_fcps("Hepta");
  AppSpec spec;
  spec.dims = 2048;
  spec.features = ds.num_features();
  spec.classes = ds.num_clusters;
  spec.window = 3;
  GenericAsic asic(spec, 7);
  const auto labels = asic.cluster(ds.points, 10);
  ASSERT_EQ(labels.size(), ds.points.size());
  EXPECT_GT(ml::normalized_mutual_information(ds.labels, labels), 0.6);
  EXPECT_GT(asic.counts().class_writes, 0u);
}

TEST(GenericAsic, ClusterRequiresEnoughPoints) {
  AppSpec spec;
  spec.features = 2;
  spec.classes = 8;
  spec.window = 2;
  GenericAsic asic(spec);
  std::vector<std::vector<float>> pts(3, std::vector<float>{0.0f, 1.0f});
  EXPECT_THROW(asic.cluster(pts), std::invalid_argument);
}

}  // namespace
}  // namespace generic::arch
