// Three-way verification of the cycle-level simulator: bit-exact encoding
// vs the software encoder, prediction equivalence vs the behavioural ASIC,
// and cycle/access agreement with the analytic model — plus the
// failure-injection studies the SRAM models enable.
#include "arch/microarch.h"

#include <gtest/gtest.h>

#include "arch/generic_asic.h"
#include "data/benchmarks.h"
#include "data/fcps.h"
#include "ml/metrics.h"
#include "model/pipeline.h"

namespace generic::arch {
namespace {

struct Rig {
  data::Dataset ds;
  AppSpec spec;
  std::unique_ptr<enc::GenericEncoder> encoder;
  std::unique_ptr<model::HdcClassifier> model;

  explicit Rig(const char* name, std::size_t dims = 2048,
               std::size_t epochs = 5)
      : ds(data::make_benchmark(name)) {
    spec.dims = dims;
    spec.features = ds.num_features();
    spec.classes = ds.num_classes;
    const auto g = data::generic_config_for(name);
    spec.window = g.window;
    spec.use_ids = g.use_ids;
    enc::EncoderConfig cfg;
    cfg.dims = dims;
    cfg.window = spec.window;
    cfg.use_ids = spec.use_ids;
    encoder = std::make_unique<enc::GenericEncoder>(cfg);
    encoder->fit(ds.train_x);
    const auto train = model::encode_all(*encoder, ds.train_x);
    model = std::make_unique<model::HdcClassifier>(dims, ds.num_classes);
    model->fit(train, ds.train_y, epochs);
  }
};

TEST(MicroArch, EncodingBitExactVsSoftwareEncoder) {
  for (const char* name : {"PAGE", "EMG", "LANG"}) {
    Rig rig(name);
    MicroArchSim sim(rig.spec, *rig.encoder, *rig.model);
    for (std::size_t i = 0; i < 10; ++i) {
      (void)sim.infer(rig.ds.test_x[i]);
      const auto sw = rig.encoder->encode(rig.ds.test_x[i]);
      ASSERT_EQ(sim.last_encoding().size(), sw.size()) << name;
      for (std::size_t j = 0; j < sw.size(); ++j)
        ASSERT_EQ(sim.last_encoding()[j], sw[j])
            << name << " sample " << i << " dim " << j;
    }
  }
}

TEST(MicroArch, PredictionsMatchBehavioralAsic) {
  // Same model image, same divider -> identical labels. The behavioural
  // ASIC is given the already-trained model via the config-port path.
  Rig rig("EMG");
  MicroArchSim sim(rig.spec, *rig.encoder, *rig.model);
  std::size_t disagreements = 0;
  for (std::size_t i = 0; i < rig.ds.test_x.size(); ++i) {
    const auto hw = sim.infer(rig.ds.test_x[i]);
    // Reference: exact-scored software prediction on the same model. The
    // micro-sim differs only through the corrected Mitchell compare and
    // 16-bit row saturation, so disagreements are confined to razor-thin
    // margins.
    const auto q = rig.encoder->encode(rig.ds.test_x[i]);
    disagreements += hw.label != rig.model->predict(q);
  }
  // EMG class margins are thin; the Mitchell-vs-exact band flips a few
  // percent of them. Anything above that would indicate a dataflow bug.
  EXPECT_LE(static_cast<double>(disagreements),
            0.05 * static_cast<double>(rig.ds.test_size()));
}

TEST(MicroArch, AccuracyMatchesSoftwareModel) {
  Rig rig("PAGE");
  MicroArchSim sim(rig.spec, *rig.encoder, *rig.model);
  std::size_t hw_hits = 0, sw_hits = 0;
  for (std::size_t i = 0; i < rig.ds.test_x.size(); ++i) {
    hw_hits += sim.infer(rig.ds.test_x[i]).label == rig.ds.test_y[i];
    sw_hits += rig.model->predict(rig.encoder->encode(rig.ds.test_x[i])) ==
               rig.ds.test_y[i];
  }
  EXPECT_NEAR(static_cast<double>(hw_hits), static_cast<double>(sw_hits),
              0.02 * static_cast<double>(rig.ds.test_size()));
}

TEST(MicroArch, CyclesMatchAnalyticModel) {
  Rig rig("EMG");
  MicroArchSim sim(rig.spec, *rig.encoder, *rig.model);
  CycleModel cm;
  const auto res = sim.infer(rig.ds.test_x[0]);
  EXPECT_EQ(res.cycles, cm.infer_input(rig.spec).cycles);
}

TEST(MicroArch, AccessCountsMatchAnalyticModel) {
  Rig rig("PAGE");
  MicroArchSim sim(rig.spec, *rig.encoder, *rig.model);
  for (std::size_t k = 0; k < sim.num_class_memories(); ++k)
    sim.class_memory(k).reset_counters();
  sim.level_memory().reset_counters();
  sim.feature_memory().reset_counters();
  (void)sim.infer(rig.ds.test_x[0]);
  CycleModel cm;
  const auto expect = cm.infer_input(rig.spec);
  EXPECT_EQ(sim.level_memory().reads(), expect.level_reads);
  EXPECT_EQ(sim.feature_memory().reads(), expect.feature_reads);
  // class_reads counts one row from *each* of the m distributed memories.
  std::uint64_t cm_reads = 0;
  for (std::size_t k = 0; k < sim.num_class_memories(); ++k)
    cm_reads += sim.class_memory(k).reads();
  EXPECT_EQ(cm_reads, expect.class_reads * sim.num_class_memories());
}

TEST(MicroArch, DimensionReductionCutsCycles) {
  Rig rig("EMG");
  MicroArchSim sim(rig.spec, *rig.encoder, *rig.model);
  const auto full = sim.infer(rig.ds.test_x[0]);
  sim.set_active_dims(512);
  const auto reduced = sim.infer(rig.ds.test_x[0]);
  EXPECT_LT(reduced.cycles, full.cycles / 3);
  EXPECT_THROW(sim.set_active_dims(7), std::invalid_argument);
  EXPECT_THROW(sim.set_active_dims(4096), std::invalid_argument);
}

TEST(MicroArch, ReducedPredictionsTrackSoftwareReducedModel) {
  Rig rig("EMG");
  MicroArchSim sim(rig.spec, *rig.encoder, *rig.model);
  sim.set_active_dims(1024);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < 60; ++i) {
    const auto hw = sim.infer(rig.ds.test_x[i]);
    const int sw = rig.model->predict_reduced(
        rig.encoder->encode(rig.ds.test_x[i]), 1024,
        model::NormMode::kUpdated);
    agree += hw.label == sw;
  }
  EXPECT_GE(agree, 57u);
}

TEST(MicroArch, ClassMemoryUpsetsDegradeGracefully) {
  // Transient read upsets in the class arrays at Figure-6-scale rates
  // leave accuracy close to nominal.
  Rig rig("FACE");
  MicroArchSim sim(rig.spec, *rig.encoder, *rig.model);
  auto acc = [&] {
    std::size_t hits = 0;
    for (std::size_t i = 0; i < rig.ds.test_x.size(); ++i)
      hits += sim.infer(rig.ds.test_x[i]).label == rig.ds.test_y[i];
    return static_cast<double>(hits) /
           static_cast<double>(rig.ds.test_size());
  };
  const double clean = acc();
  // Transient upsets re-roll on every read and an MSB upset perturbs the
  // running dot product by +-2^15, so the tolerable per-bit-read rate is
  // far below Figure 6's persistent-flip rates; 5e-5 corrupts ~0.08% of
  // row reads (~10% of inferences see one corrupted row per class).
  for (std::size_t k = 0; k < sim.num_class_memories(); ++k)
    sim.class_memory(k).set_read_upset_rate(0.00005, 31 + k);
  EXPECT_GT(acc(), clean - 0.10);
}

TEST(MicroArch, LevelMemoryUpsetsAlsoTolerated) {
  // Beyond the paper: the encoder's level fetches are just as redundant —
  // a flipped level bit perturbs one dimension of one window.
  Rig rig("FACE");
  MicroArchSim sim(rig.spec, *rig.encoder, *rig.model);
  auto acc = [&] {
    std::size_t hits = 0;
    for (std::size_t i = 0; i < rig.ds.test_x.size(); ++i)
      hits += sim.infer(rig.ds.test_x[i]).label == rig.ds.test_y[i];
    return static_cast<double>(hits) /
           static_cast<double>(rig.ds.test_size());
  };
  const double clean = acc();
  sim.level_memory().set_read_upset_rate(0.01, 77);
  EXPECT_GT(acc(), clean - 0.08);
}

TEST(MicroArch, FeatureMemoryUpsetsAreTheSoftSpot) {
  // A flipped feature-bin bit shifts a whole window of levels — feature
  // memory is the least protected array, a finding the energy model's
  // per-array VOS policy (class memory only) quietly depends on.
  Rig rig("FACE");
  MicroArchSim sim(rig.spec, *rig.encoder, *rig.model);
  const std::size_t n = std::min<std::size_t>(100, rig.ds.test_size());
  auto acc = [&] {
    std::size_t hits = 0;
    for (std::size_t i = 0; i < n; ++i)
      hits += sim.infer(rig.ds.test_x[i]).label == rig.ds.test_y[i];
    return static_cast<double>(hits) / static_cast<double>(n);
  };
  const double clean = acc();
  sim.feature_memory().set_read_upset_rate(0.05, 99);
  const double noisy = acc();
  EXPECT_LT(noisy, clean + 0.01);  // never better, typically worse
}

TEST(MicroArch, ConstructorValidatesConsistency) {
  Rig rig("PAGE");
  AppSpec bad = rig.spec;
  bad.classes += 1;
  EXPECT_THROW(MicroArchSim(bad, *rig.encoder, *rig.model),
               std::invalid_argument);
  enc::EncoderConfig other;
  other.dims = rig.spec.dims;
  other.window = rig.spec.window + 1;
  enc::GenericEncoder mismatched(other);
  EXPECT_THROW(MicroArchSim(rig.spec, mismatched, *rig.model),
               std::invalid_argument);
}


TEST(MicroArchTrain, TrainStepCyclesMatchAnalyticModel) {
  Rig rig("PAGE", 1024);
  MicroArchSim sim(rig.spec, *rig.encoder, *rig.model);
  CycleModel cm;
  const auto infer_c = cm.infer_input(rig.spec).cycles;
  const auto update_c = cm.retrain_update(rig.spec).cycles;
  // Correct label: inference cycles only. Wrong label: + update cycles.
  bool saw_update = false, saw_clean = false;
  for (std::size_t i = 0; i < rig.ds.test_x.size() && !(saw_update && saw_clean); ++i) {
    const int truth = rig.ds.test_y[i];
    const auto res = sim.train_step(rig.ds.test_x[i], truth);
    if (res.label == truth) {
      EXPECT_EQ(res.cycles, infer_c);
      saw_clean = true;
    } else {
      EXPECT_EQ(res.cycles, infer_c + update_c);
      saw_update = true;
    }
  }
  EXPECT_TRUE(saw_clean);
}

TEST(MicroArchTrain, UpdatesConvergeLikeSoftwareRetraining) {
  // Run one micro-architectural retraining epoch over the train set and
  // verify the updated model's accuracy tracks the software stack after
  // one more epoch on the same start state.
  Rig rig("EMG", 1024, /*epochs=*/0);  // one-shot model, no retraining yet
  MicroArchSim sim(rig.spec, *rig.encoder, *rig.model);
  std::size_t hw_updates = 0;
  for (std::size_t i = 0; i < rig.ds.train_x.size(); ++i)
    hw_updates +=
        sim.train_step(rig.ds.train_x[i], rig.ds.train_y[i]).label !=
        rig.ds.train_y[i];
  // Software epoch from the same starting model.
  const auto train_enc = model::encode_all(*rig.encoder, rig.ds.train_x);
  const std::size_t sw_updates =
      rig.model->retrain_epoch(train_enc, rig.ds.train_y);
  // Same data, same start: the corrected-Mitchell trajectory may diverge
  // slightly but the update volume must be close.
  EXPECT_NEAR(static_cast<double>(hw_updates),
              static_cast<double>(sw_updates),
              0.15 * static_cast<double>(rig.ds.train_size()) + 5.0);
  // And post-epoch accuracy must track.
  std::size_t hw_hits = 0, sw_hits = 0;
  for (std::size_t i = 0; i < rig.ds.test_x.size(); ++i) {
    hw_hits += sim.infer(rig.ds.test_x[i]).label == rig.ds.test_y[i];
    sw_hits += rig.model->predict(rig.encoder->encode(rig.ds.test_x[i])) ==
               rig.ds.test_y[i];
  }
  EXPECT_NEAR(static_cast<double>(hw_hits), static_cast<double>(sw_hits),
              0.08 * static_cast<double>(rig.ds.test_size()) + 3.0);
}

TEST(MicroArchTrain, LabelAndDimValidation) {
  Rig rig("PAGE", 1024);
  MicroArchSim sim(rig.spec, *rig.encoder, *rig.model);
  EXPECT_THROW(sim.train_step(rig.ds.test_x[0], -1), std::invalid_argument);
  EXPECT_THROW(sim.train_step(rig.ds.test_x[0], 99), std::invalid_argument);
  sim.set_active_dims(512);
  EXPECT_THROW(sim.train_step(rig.ds.test_x[0], 0), std::logic_error);
  EXPECT_THROW(sim.cluster_step(rig.ds.test_x[0]), std::logic_error);
}

TEST(MicroArchCluster, StepCyclesMatchAnalyticModel) {
  Rig rig("PAGE", 1024);
  MicroArchSim sim(rig.spec, *rig.encoder, *rig.model);
  CycleModel cm;
  const auto res = sim.cluster_step(rig.ds.test_x[0]);
  EXPECT_EQ(res.cycles, cm.cluster_input(rig.spec).cycles);
  EXPECT_GE(res.label, 0);
  EXPECT_LT(res.label, static_cast<int>(rig.spec.classes));
}

TEST(MicroArchCluster, EpochProtocolRefinesPartitions) {
  // Full clustering run at cycle granularity on Hepta: seed the centroid
  // rows with the first k encodings (via a seeded classifier), run epochs
  // of cluster_step + swap_copies, compare against ground truth.
  const auto fc = data::make_fcps("Hepta");
  AppSpec spec;
  spec.dims = 1024;
  spec.features = fc.num_features();
  spec.classes = fc.num_clusters;
  spec.window = std::min<std::size_t>(3, fc.num_features());
  enc::EncoderConfig cfg;
  cfg.dims = spec.dims;
  cfg.window = spec.window;
  enc::GenericEncoder encoder(cfg);
  encoder.fit(fc.points);
  // Seed centroids: class c := encoding of point c.
  model::HdcClassifier seeds(spec.dims, spec.classes);
  std::vector<hdc::IntHV> first_k;
  std::vector<int> seed_labels;
  for (std::size_t c = 0; c < spec.classes; ++c) {
    first_k.push_back(encoder.encode(fc.points[c]));
    seed_labels.push_back(static_cast<int>(c));
  }
  seeds.train_init(first_k, seed_labels);

  MicroArchSim sim(spec, encoder, seeds);
  std::vector<int> labels(fc.points.size(), -1);
  for (int epoch = 0; epoch < 6; ++epoch) {
    for (std::size_t i = 0; i < fc.points.size(); ++i)
      labels[i] = sim.cluster_step(fc.points[i]).label;
    sim.swap_copies();
  }
  EXPECT_GT(ml::normalized_mutual_information(fc.labels, labels), 0.6);
}

}  // namespace
}  // namespace generic::arch
