// CheckpointStore: round-trip fidelity, keep-last pruning, quarantine of
// corrupt files with fallback to the next-older version, and the
// newer-writer skip path (intact bytes are not damage).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "lifecycle/checkpoint_store.h"
#include "model/model_io.h"

namespace generic::lifecycle {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / ("gckp-" + name);
  fs::remove_all(dir);
  return dir.string();
}

/// Small deterministic trained classifier; `salt` varies the weights so
/// different versions hold distinguishable models.
model::HdcClassifier make_model(std::uint64_t salt) {
  const std::size_t dims = 256;
  const std::size_t classes = 3;
  Rng rng(0xC0FFEE ^ salt);
  std::vector<hdc::IntHV> train;
  std::vector<int> labels;
  for (int c = 0; c < static_cast<int>(classes); ++c) {
    hdc::IntHV base(dims);
    for (auto& v : base) v = static_cast<std::int32_t>(rng.below(17)) - 8;
    for (int s = 0; s < 6; ++s) {
      hdc::IntHV h = base;
      h[rng.below(dims)] += 1;
      train.push_back(std::move(h));
      labels.push_back(c);
    }
  }
  model::HdcClassifier clf(dims, classes);
  clf.fit(train, labels, 3);
  return clf;
}

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::vector<std::uint8_t>& buf) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
}

/// Recompute the outer CRC footer after editing header bytes, so the edit
/// reads as a schema difference rather than corruption.
void reseal_outer_crc(std::vector<std::uint8_t>& buf) {
  const std::size_t body = buf.size() - 4;
  const std::uint32_t crc = model::crc32(buf.data(), body);
  for (int i = 0; i < 4; ++i)
    buf[body + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(crc >> (8 * i));
}

TEST(LifecycleCheckpointStore, SaveLoadRoundTrip) {
  CheckpointStore store(fresh_dir("roundtrip"), 4);
  const auto m = make_model(1);
  const std::string path = store.save(m, 7, 123456);
  EXPECT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  EXPECT_EQ(store.saved(), 1u);

  const auto loaded = store.load_latest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->version, 7u);
  EXPECT_EQ(loaded->vt, 123456u);
  ASSERT_EQ(loaded->model.dims(), m.dims());
  ASSERT_EQ(loaded->model.num_classes(), m.num_classes());
  for (std::size_t c = 0; c < m.num_classes(); ++c)
    EXPECT_EQ(loaded->model.class_vector(c), m.class_vector(c)) << c;
}

TEST(LifecycleCheckpointStore, DuplicateVersionThrows) {
  CheckpointStore store(fresh_dir("dup"), 4);
  store.save(make_model(1), 3, 10);
  EXPECT_THROW(store.save(make_model(2), 3, 20), std::invalid_argument);
}

TEST(LifecycleCheckpointStore, KeepLastPrunesOldest) {
  CheckpointStore store(fresh_dir("prune"), 3);
  for (std::uint64_t v = 1; v <= 6; ++v) store.save(make_model(v), v, v * 100);
  EXPECT_EQ(store.saved(), 6u);
  EXPECT_EQ(store.pruned(), 3u);
  const auto all = store.list();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].version, 4u);
  EXPECT_EQ(all[1].version, 5u);
  EXPECT_EQ(all[2].version, 6u);
}

TEST(LifecycleCheckpointStore, CorruptNewestIsQuarantinedOlderLoads) {
  CheckpointStore store(fresh_dir("quarantine"), 4);
  store.save(make_model(1), 1, 100);
  const std::string p2 = store.save(make_model(2), 2, 200);

  auto buf = slurp(p2);
  buf[buf.size() / 2] ^= 0x40;  // payload damage: outer CRC now mismatches
  spit(p2, buf);

  const auto loaded = store.load_latest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->version, 1u);
  EXPECT_EQ(store.quarantined(), 1u);
  EXPECT_FALSE(fs::exists(p2));
  EXPECT_TRUE(fs::exists(p2 + ".quarantined"));
  // The quarantined file no longer shadows version 2 in the listing.
  const auto all = store.list();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].version, 1u);
}

TEST(LifecycleCheckpointStore, QuarantinedFilesAreCappedAtKeepLast) {
  // Repeated corrupt boots must not grow the evidence pile without bound:
  // .quarantined files obey the same keep-last budget as live checkpoints.
  CheckpointStore store(fresh_dir("qcap"), 2);
  for (std::uint64_t v = 1; v <= 5; ++v) {
    const std::string p = store.save(make_model(v), v, v * 100);
    auto buf = slurp(p);
    buf[buf.size() / 2] ^= 0x40;
    spit(p, buf);
    EXPECT_FALSE(store.load_latest().has_value()) << v;
  }
  EXPECT_EQ(store.quarantined(), 5u);
  const auto q = store.list_quarantined();
  ASSERT_EQ(q.size(), 2u) << "cap at keep_last";
  EXPECT_EQ(q[0].version, 4u);
  EXPECT_EQ(q[1].version, 5u);
  EXPECT_EQ(store.pruned_quarantined(), 3u);
  for (const auto& info : q) EXPECT_TRUE(fs::exists(info.path));
}

TEST(LifecycleCheckpointStore, NewerFormatIsSkippedWithoutQuarantine) {
  CheckpointStore store(fresh_dir("newer"), 4);
  store.save(make_model(1), 1, 100);
  const std::string p2 = store.save(make_model(2), 2, 200);

  // Pretend a newer writer produced version 2: bump the u32 store-format
  // field (offset 4, after the "GCKP" magic) and reseal the outer CRC so
  // the file is INTACT, just from the future.
  auto buf = slurp(p2);
  buf[4] = 99;
  reseal_outer_crc(buf);
  spit(p2, buf);

  const auto loaded = store.load_latest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->version, 1u);
  EXPECT_EQ(store.skipped_newer(), 1u);
  EXPECT_EQ(store.quarantined(), 0u);
  EXPECT_TRUE(fs::exists(p2)) << "intact newer files must be left alone";
}

TEST(LifecycleCheckpointStore, EmptyStoreLoadsNothing) {
  CheckpointStore store(fresh_dir("empty"), 4);
  EXPECT_FALSE(store.load_latest().has_value());
  EXPECT_TRUE(store.list().empty());
}

TEST(LifecycleCheckpointStore, RejectsInvalidConstruction) {
  EXPECT_THROW(CheckpointStore("", 4), std::invalid_argument);
  EXPECT_THROW(CheckpointStore(fresh_dir("zero"), 0), std::invalid_argument);
}

}  // namespace
}  // namespace generic::lifecycle
