// lifecycle::Manager end to end against a synthetic concept shift: alarm ->
// gated trigger -> background retrain -> per-rung validation -> swap (or
// rollback for a corrupted shadow), with the report byte-stable across the
// manager's own thread count.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.h"
#include "lifecycle/manager.h"

namespace generic::lifecycle {
namespace {

constexpr std::size_t kDims = 512;
constexpr std::size_t kClasses = 3;
constexpr std::size_t kShiftAt = 120;  ///< first post-shift observation
constexpr std::size_t kTotal = 360;

/// Query stream with a hard concept shift: one label space, pre-shift
/// samples near one set of class templates, post-shift samples near a
/// fresh, unrelated set. The initial model is trained on pre only.
struct Scenario {
  std::vector<hdc::IntHV> queries;
  std::vector<int> labels;
  std::shared_ptr<model::HdcClassifier> initial;
};

Scenario make_scenario() {
  Rng rng(0xD21F7);
  auto make_base = [&rng] {
    hdc::IntHV b(kDims);
    for (auto& v : b) v = static_cast<std::int32_t>(rng.below(17)) - 8;
    return b;
  };
  std::vector<hdc::IntHV> pre;
  std::vector<hdc::IntHV> post;
  for (std::size_t c = 0; c < kClasses; ++c) pre.push_back(make_base());
  for (std::size_t c = 0; c < kClasses; ++c) post.push_back(make_base());
  auto noisy = [&rng](const hdc::IntHV& base) {
    hdc::IntHV h = base;
    for (int k = 0; k < 8; ++k)
      h[rng.below(kDims)] += static_cast<std::int32_t>(rng.below(5)) - 2;
    return h;
  };

  Scenario s;
  std::vector<hdc::IntHV> train;
  std::vector<int> train_y;
  for (int i = 0; i < 60; ++i) {
    const int c = i % static_cast<int>(kClasses);
    train.push_back(noisy(pre[static_cast<std::size_t>(c)]));
    train_y.push_back(c);
  }
  s.initial = std::make_shared<model::HdcClassifier>(kDims, kClasses);
  s.initial->fit(train, train_y, 3);

  for (std::size_t i = 0; i < kTotal; ++i) {
    const int c = static_cast<int>(i % kClasses);
    const auto& tmpl =
        (i < kShiftAt ? pre : post)[static_cast<std::size_t>(c)];
    s.queries.push_back(noisy(tmpl));
    s.labels.push_back(c);
  }
  return s;
}

LifecycleConfig fast_config() {
  LifecycleConfig cfg;
  cfg.drift.warmup = 32;
  cfg.drift.canary_warmup = 8;
  cfg.replay_capacity = 128;
  cfg.holdout = 32;
  cfg.min_replay = 64;
  cfg.min_fresh = 64;
  cfg.retrain_epochs = 3;
  cfg.retrain_cost_us = 5000;
  cfg.cooldown_us = 10000;
  cfg.min_dims = 128;  // ladder {512, 256, 128}
  cfg.threads = 2;
  return cfg;
}

struct RunResult {
  std::vector<serve::ModelUpdate> updates;
  LifecycleReport report;
};

/// Drive the manager the way the engine's control thread would: one canary
/// observation per 1000 virtual us, poll after each, then keep polling past
/// the end until any in-flight retrain publishes. Margins are scripted
/// (confident pre-shift, collapsed post-shift).
RunResult run_scenario(const Scenario& s, Manager& manager) {
  RunResult out;
  std::uint64_t vt = 0;
  for (std::size_t i = 0; i < s.queries.size(); ++i) {
    vt = (i + 1) * 1000;
    serve::ServedObservation obs;
    obs.vt = vt;
    obs.query = i;
    obs.margin = i < kShiftAt ? 0.5 : 0.05;
    obs.canary = true;
    obs.correct = i < kShiftAt;
    obs.label = s.labels[i];
    manager.observe(obs);
    while (auto upd = manager.poll(vt)) out.updates.push_back(std::move(*upd));
  }
  while (manager.retrain_in_flight()) {
    vt += 1000;
    while (auto upd = manager.poll(vt)) out.updates.push_back(std::move(*upd));
  }
  out.report = manager.report();
  return out;
}

std::uint64_t event_vt(const LifecycleReport& report, EventKind kind) {
  for (const auto& e : report.events)
    if (e.kind == kind) return e.vt;
  ADD_FAILURE() << "event not found: " << event_kind_name(kind);
  return 0;
}

TEST(LifecycleManager, DriftTriggersGatedRetrainAndSwap) {
  const Scenario s = make_scenario();
  Manager manager(s.initial, s.queries, s.labels, fast_config());
  const RunResult run = run_scenario(s, manager);

  // Exactly one loop closes: the scripted margins re-baseline after the
  // detector resets, so no second alarm fires.
  ASSERT_EQ(run.updates.size(), 1u);
  const serve::ModelUpdate& upd = run.updates[0];
  EXPECT_FALSE(upd.rollback);
  ASSERT_NE(upd.model, nullptr);
  EXPECT_EQ(upd.version, 1u);
  EXPECT_EQ(upd.model->dims(), kDims);
  EXPECT_EQ(upd.model->num_classes(), kClasses);

  const LifecycleReport& rep = run.report;
  EXPECT_EQ(rep.alarms, 1u);
  EXPECT_EQ(rep.triggered, 1u);
  EXPECT_EQ(rep.swapped, 1u);
  EXPECT_EQ(rep.rolled_back, 0u);

  // min_fresh gating: the trigger waited for 64 POST-alarm canaries (one
  // per 1000 virtual us) so the replay filled with the new regime first.
  const std::uint64_t alarm_vt = event_vt(rep, EventKind::kDriftAlarm);
  const std::uint64_t trigger_vt = event_vt(rep, EventKind::kRetrainStart);
  const std::uint64_t swap_vt = event_vt(rep, EventKind::kSwap);
  EXPECT_GT(alarm_vt, kShiftAt * 1000);
  EXPECT_GE(trigger_vt, alarm_vt + fast_config().min_fresh * 1000);
  EXPECT_EQ(swap_vt, trigger_vt + fast_config().retrain_cost_us);
  EXPECT_EQ(upd.vt, swap_vt);

  // Version 1 validated at every ladder rung and beat the stranded
  // baseline outright at full dimensions.
  ASSERT_EQ(rep.versions.size(), 2u);
  EXPECT_FALSE(rep.versions[0].from_retrain);
  const VersionRecord& v1 = rep.versions[1];
  EXPECT_TRUE(v1.from_retrain);
  EXPECT_TRUE(v1.installed);
  EXPECT_GT(v1.updates, 0u);
  ASSERT_EQ(v1.rung_dims.size(), 3u);
  EXPECT_EQ(v1.rung_dims[0], 512u);
  EXPECT_EQ(v1.rung_dims[2], 128u);
  for (std::size_t r = 0; r < v1.rung_dims.size(); ++r)
    EXPECT_GE(v1.holdout_accuracy[r] + fast_config().epsilon,
              v1.baseline_accuracy[r])
        << "rung " << r;
  EXPECT_GT(v1.holdout_accuracy[0], v1.baseline_accuracy[0] + 0.15)
      << "retraining on post-shift replay should clearly beat the frozen "
         "baseline on the post-shift holdout";

  const std::string json = lifecycle_report_to_json(rep);
  EXPECT_NE(json.find("\"generic.lifecycle.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"drift_alarm\""), std::string::npos);
  EXPECT_NE(json.find("\"swap\""), std::string::npos);
}

TEST(LifecycleManager, CorruptShadowIsRejectedAsRollback) {
  const Scenario s = make_scenario();
  LifecycleConfig cfg = fast_config();
  cfg.shadow_fault_rate = 0.5;  // fault-inject the shadow before validation
  Manager manager(s.initial, s.queries, s.labels, cfg);
  const RunResult run = run_scenario(s, manager);

  ASSERT_GE(run.updates.size(), 1u);
  const serve::ModelUpdate& upd = run.updates[0];
  EXPECT_TRUE(upd.rollback);
  EXPECT_EQ(upd.model, nullptr);

  const LifecycleReport& rep = run.report;
  EXPECT_EQ(rep.swapped, 0u);
  EXPECT_GE(rep.rolled_back, 1u);
  ASSERT_GE(rep.versions.size(), 2u);
  EXPECT_FALSE(rep.versions[1].installed);
  EXPECT_EQ(event_vt(rep, EventKind::kRollback),
            event_vt(rep, EventKind::kRetrainStart) + cfg.retrain_cost_us);
}

TEST(LifecycleManager, ReportIsByteIdenticalAcrossManagerThreads) {
  const Scenario s = make_scenario();
  std::vector<std::string> jsons;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    LifecycleConfig cfg = fast_config();
    cfg.threads = threads;
    Manager manager(s.initial, s.queries, s.labels, cfg);
    jsons.push_back(lifecycle_report_to_json(run_scenario(s, manager).report));
  }
  EXPECT_EQ(jsons[0], jsons[1]);
}

TEST(LifecycleManager, ValidatedSwapIsCheckpointed) {
  const Scenario s = make_scenario();
  const std::filesystem::path dir =
      std::filesystem::path(testing::TempDir()) / "lifecycle-manager-ckpt";
  std::filesystem::remove_all(dir);
  CheckpointStore store(dir.string(), 4);
  Manager manager(s.initial, s.queries, s.labels, fast_config(), &store);
  const RunResult run = run_scenario(s, manager);

  ASSERT_EQ(run.updates.size(), 1u);
  ASSERT_NE(run.updates[0].model, nullptr);
  EXPECT_EQ(store.saved(), 1u);
  EXPECT_EQ(run.report.checkpoints_saved, 1u);

  const auto loaded = store.load_latest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->version, 1u);
  EXPECT_EQ(loaded->vt, run.updates[0].vt);
  for (std::size_t c = 0; c < kClasses; ++c)
    EXPECT_EQ(loaded->model.class_vector(c),
              run.updates[0].model->class_vector(c))
        << c;
}

TEST(LifecycleManager, ReplayClassCapBoundsFloodedClass) {
  const Scenario s = make_scenario();
  LifecycleConfig cfg = fast_config();
  cfg.replay_class_cap = 8;
  Manager manager(s.initial, s.queries, s.labels, cfg);

  // A single-class flash crowd: 90 class-0 canaries, then a trickle of
  // class 1. Labels follow i % 3, so query 3k is class 0, 3k+1 is class 1.
  std::uint64_t vt = 0;
  auto observe = [&](std::uint64_t query) {
    vt += 1000;
    serve::ServedObservation obs;
    obs.vt = vt;
    obs.query = query;
    obs.margin = 0.5;  // confident: never trip the detector here
    obs.canary = true;
    obs.correct = true;
    obs.label = s.labels[query];
    manager.observe(obs);
    manager.poll(vt);
  };
  for (std::uint64_t k = 0; k < 90; ++k) observe(3 * (k % 100));
  for (std::uint64_t k = 0; k < 5; ++k) observe(3 * k + 1);

  const auto& hist = manager.replay_class_histogram();
  ASSERT_GE(hist.size(), 2u);
  EXPECT_EQ(hist[0], cfg.replay_class_cap)
      << "the flooded class must saturate at the quota, not fill the buffer";
  EXPECT_EQ(hist[1], 5u);
  EXPECT_EQ(manager.replay_size(), cfg.replay_class_cap + 5);

  // Without the cap the same flood owns the whole buffer.
  Manager greedy(s.initial, s.queries, s.labels, fast_config());
  for (std::uint64_t k = 0; k < 90; ++k) {
    vt += 1000;
    serve::ServedObservation obs;
    obs.vt = vt;
    obs.query = 3 * (k % 100);
    obs.margin = 0.5;
    obs.canary = true;
    obs.correct = true;
    obs.label = 0;
    greedy.observe(obs);
    greedy.poll(vt);
  }
  EXPECT_EQ(greedy.replay_class_histogram()[0], 90u);
}

TEST(LifecycleManager, InitialVersionContinuesNumberingAcrossRestart) {
  // Booting from a version-5 checkpoint must not reuse version numbers:
  // the first retrain becomes 6, and the report's initial record says 5.
  const Scenario s = make_scenario();
  LifecycleConfig cfg = fast_config();
  cfg.initial_version = 5;
  Manager manager(s.initial, s.queries, s.labels, cfg);
  const RunResult run = run_scenario(s, manager);

  ASSERT_EQ(run.updates.size(), 1u);
  EXPECT_EQ(run.updates[0].version, 6u);
  ASSERT_EQ(run.report.versions.size(), 2u);
  EXPECT_EQ(run.report.versions[0].version, 5u);
  EXPECT_FALSE(run.report.versions[0].from_retrain);
  EXPECT_EQ(run.report.versions[1].version, 6u);
}

TEST(LifecycleManager, RejectsInvalidConstruction) {
  const Scenario s = make_scenario();
  const LifecycleConfig good = fast_config();
  EXPECT_THROW(Manager(nullptr, s.queries, s.labels, good),
               std::invalid_argument);
  {
    LifecycleConfig cfg = good;
    cfg.min_replay = cfg.replay_capacity + 1;
    EXPECT_THROW(Manager(s.initial, s.queries, s.labels, cfg),
                 std::invalid_argument);
  }
  {
    LifecycleConfig cfg = good;
    cfg.holdout = cfg.min_replay;  // nothing left to train on
    EXPECT_THROW(Manager(s.initial, s.queries, s.labels, cfg),
                 std::invalid_argument);
  }
  {
    LifecycleConfig cfg = good;
    cfg.retrain_epochs = 0;
    EXPECT_THROW(Manager(s.initial, s.queries, s.labels, cfg),
                 std::invalid_argument);
  }
  {
    std::vector<int> short_labels(s.labels.begin(), s.labels.end() - 1);
    EXPECT_THROW(Manager(s.initial, s.queries, short_labels, good),
                 std::invalid_argument);
  }
}

}  // namespace
}  // namespace generic::lifecycle
