// DriftDetector: Page–Hinkley on margins, canary-accuracy EWMA vs peak,
// stickiness/re-arming, and bit-stable state across identical feeds.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "lifecycle/drift_detector.h"

namespace generic::lifecycle {
namespace {

DriftConfig fast_config() {
  DriftConfig cfg;
  cfg.warmup = 32;
  cfg.canary_warmup = 8;
  return cfg;
}

// A deterministic stationary margin sequence with small bounded wiggle.
double wiggle(std::uint64_t i, double center) {
  return center + 0.02 * std::sin(static_cast<double>(i) * 0.7);
}

TEST(LifecycleDriftDetector, StationaryMarginsStayQuiet) {
  DriftDetector d(fast_config());
  for (std::uint64_t i = 0; i < 2000; ++i) d.observe_margin(wiggle(i, 0.5));
  EXPECT_FALSE(d.alarmed());
  EXPECT_LT(d.drift_score(), 1.0);
  EXPECT_EQ(d.observations(), 2000u);
  EXPECT_NEAR(d.margin_ewma(), 0.5, 0.05);
}

TEST(LifecycleDriftDetector, DownwardMarginShiftAlarms) {
  DriftDetector d(fast_config());
  for (std::uint64_t i = 0; i < 400; ++i) d.observe_margin(wiggle(i, 0.5));
  ASSERT_FALSE(d.alarmed());
  std::uint64_t at = 0;
  for (std::uint64_t i = 0; i < 400 && !d.alarmed(); ++i) {
    d.observe_margin(wiggle(i, 0.1));
    at = i;
  }
  EXPECT_TRUE(d.alarmed());
  EXPECT_GE(d.drift_score(), 1.0);
  // The shift is 0.4 deep against lambda 2.5: detection needs only a
  // handful of post-shift margins, not hundreds.
  EXPECT_LT(at, 64u);
}

TEST(LifecycleDriftDetector, UpwardMarginShiftDoesNotAlarm) {
  DriftDetector d(fast_config());
  for (std::uint64_t i = 0; i < 400; ++i) d.observe_margin(wiggle(i, 0.3));
  for (std::uint64_t i = 0; i < 400; ++i) d.observe_margin(wiggle(i, 0.8));
  EXPECT_FALSE(d.alarmed()) << "improving margins are not drift";
}

TEST(LifecycleDriftDetector, CanaryAccuracyDropAlarms) {
  DriftDetector d(fast_config());
  for (int i = 0; i < 64; ++i) d.observe_canary(true);
  ASSERT_FALSE(d.alarmed());
  EXPECT_NEAR(d.peak_accuracy(), 1.0, 1e-9);
  while (!d.alarmed() && d.canaries() < 256) d.observe_canary(false);
  EXPECT_TRUE(d.alarmed());
  EXPECT_LT(d.accuracy_ewma(), d.peak_accuracy() - 0.15);
}

TEST(LifecycleDriftDetector, AlarmIsStickyAndResetRearms) {
  DriftDetector d(fast_config());
  for (std::uint64_t i = 0; i < 200; ++i) d.observe_margin(0.5);
  for (std::uint64_t i = 0; i < 200; ++i) d.observe_margin(0.05);
  ASSERT_TRUE(d.alarmed());
  // Margins recovering does not clear a sticky alarm.
  for (std::uint64_t i = 0; i < 200; ++i) d.observe_margin(0.5);
  EXPECT_TRUE(d.alarmed());

  d.reset();
  EXPECT_FALSE(d.alarmed());
  EXPECT_EQ(d.observations(), 0u);
  EXPECT_EQ(d.canaries(), 0u);
  EXPECT_EQ(d.drift_score(), 0.0);
  // Re-armed: full warmup applies again, then the same shift re-alarms.
  for (std::uint64_t i = 0; i < 200; ++i) d.observe_margin(0.5);
  EXPECT_FALSE(d.alarmed());
  for (std::uint64_t i = 0; i < 200; ++i) d.observe_margin(0.05);
  EXPECT_TRUE(d.alarmed());
}

TEST(LifecycleDriftDetector, IdenticalFeedsProduceBitIdenticalState) {
  DriftDetector a(fast_config());
  DriftDetector b(fast_config());
  for (std::uint64_t i = 0; i < 500; ++i) {
    const double m = wiggle(i, i < 300 ? 0.5 : 0.2);
    a.observe_margin(m);
    b.observe_margin(m);
    if (i % 3 == 0) {
      a.observe_canary(i % 6 == 0);
      b.observe_canary(i % 6 == 0);
    }
  }
  EXPECT_EQ(a.alarmed(), b.alarmed());
  EXPECT_EQ(a.drift_score(), b.drift_score());    // exact, not approximate
  EXPECT_EQ(a.margin_ewma(), b.margin_ewma());
  EXPECT_EQ(a.accuracy_ewma(), b.accuracy_ewma());
}

TEST(LifecycleDriftDetector, RejectsInvalidConfig) {
  DriftConfig bad = fast_config();
  bad.margin_alpha = 0.0;
  EXPECT_THROW(DriftDetector{bad}, std::invalid_argument);
  bad = fast_config();
  bad.accuracy_alpha = 1.5;
  EXPECT_THROW(DriftDetector{bad}, std::invalid_argument);
  bad = fast_config();
  bad.ph_lambda = 0.0;
  EXPECT_THROW(DriftDetector{bad}, std::invalid_argument);
  bad = fast_config();
  bad.ph_delta = -0.1;
  EXPECT_THROW(DriftDetector{bad}, std::invalid_argument);
  bad = fast_config();
  bad.accuracy_drop = 1.0;
  EXPECT_THROW(DriftDetector{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace generic::lifecycle
