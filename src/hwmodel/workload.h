// Operation-count workload profiles for the conventional-device comparison
// (Figures 3, 8, 9, 10). A Workload abstracts one input's processing as
//   * macs        — multiply-accumulate / float ops (ML, dot products)
//   * simple_ops  — bit-level HDC ops (XOR, 1-bit accumulate, permute)
// plus an implicit per-input framework overhead charged by the device
// model. Counts are derived analytically from the algorithm configurations
// actually used in this repository (see ml/ and encoding/).
#pragma once

#include <cstddef>

#include "ml/classifier.h"

namespace generic::hw {

struct Workload {
  double macs = 0.0;
  double simple_ops = 0.0;
  /// Full passes over the data charged with the device's per-pass
  /// framework overhead (epochs, trees, k-means restarts x iterations);
  /// inference counts as one pass.
  double data_passes = 1.0;
};

/// GENERIC-encoding HDC inference of one input: window encode (d windows of
/// n XORs over D bits plus D-wide accumulation) and an nC x D dot product.
Workload hdc_inference(std::size_t d, std::size_t dims, std::size_t window,
                       std::size_t classes);

/// HDC training cost per input: encode once plus `epochs` retraining
/// passes of score + (fractionally) update. `update_rate` is the average
/// misprediction rate across epochs (~0.2 is typical after the first).
Workload hdc_training(std::size_t d, std::size_t dims, std::size_t window,
                      std::size_t classes, std::size_t epochs,
                      double update_rate = 0.2);

/// Per-input inference cost of a classical-ML comparator, matching the
/// configurations in ml/classifier.cpp.
Workload ml_inference(ml::MlKind kind, std::size_t d, std::size_t classes,
                      std::size_t train_size);

/// Per-input training cost (total over all epochs) of a comparator.
Workload ml_training(ml::MlKind kind, std::size_t d, std::size_t classes,
                     std::size_t train_size);

/// K-means clustering cost per input per fitted model: `restarts`
/// re-initializations (sklearn's n_init=10 default) of `iters` Lloyd
/// iterations, each doing k x d distance evaluations per point.
Workload kmeans_per_input(std::size_t d, std::size_t k,
                          std::size_t iters = 30, std::size_t restarts = 10);

}  // namespace generic::hw
