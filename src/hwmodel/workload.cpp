#include "hwmodel/workload.h"

#include <cmath>

namespace generic::hw {
namespace {

double dd(std::size_t v) { return static_cast<double>(v); }

/// Forward-pass MACs of the MLP/DNN configurations in ml/classifier.cpp.
double mlp_forward_macs(ml::MlKind kind, std::size_t d, std::size_t classes) {
  if (kind == ml::MlKind::kDnn) {
    // hidden {256, 128, 64}
    return dd(d) * 256 + 256.0 * 128 + 128.0 * 64 + 64.0 * dd(classes);
  }
  return dd(d) * 128 + 128.0 * dd(classes);  // hidden {128}
}

}  // namespace

Workload hdc_inference(std::size_t d, std::size_t dims, std::size_t window,
                       std::size_t classes) {
  Workload w;
  const double windows = dd(d >= window ? d - window + 1 : 0);
  // Per window: (n-1) D-bit XOR+permute plus the optional id XOR, then a
  // D-wide bipolar accumulation.
  w.simple_ops = windows * dd(dims) * (dd(window) + 1.0);
  // Search: one D-length dot per class.
  w.macs = dd(classes) * dd(dims);
  w.data_passes = 1.0;
  return w;
}

Workload hdc_training(std::size_t d, std::size_t dims, std::size_t window,
                      std::size_t classes, std::size_t epochs,
                      double update_rate) {
  const Workload inf = hdc_inference(d, dims, window, classes);
  Workload w;
  // Encode once per epoch (the data is re-streamed), score every epoch,
  // update two class vectors on a fraction of inputs.
  w.simple_ops = dd(epochs) * inf.simple_ops;
  w.macs = dd(epochs) * (inf.macs + update_rate * 2.0 * dd(dims));
  w.data_passes = dd(epochs);
  return w;
}

Workload ml_inference(ml::MlKind kind, std::size_t d, std::size_t classes,
                      std::size_t train_size) {
  Workload w;
  switch (kind) {
    case ml::MlKind::kMlp:
    case ml::MlKind::kDnn:
      w.macs = mlp_forward_macs(kind, d, classes);
      break;
    case ml::MlKind::kSvm:
      // RFF lift (384 x d) + margins (classes x 384).
      w.macs = 384.0 * dd(d) + dd(classes) * 384.0;
      break;
    case ml::MlKind::kRandomForest:
      // 30 trees x depth<=16 comparisons; comparisons are cheap but the
      // pointer chasing is charged as macs-equivalent.
      w.macs = 30.0 * 16.0;
      break;
    case ml::MlKind::kLogReg:
      w.macs = dd(classes) * dd(d);
      break;
    case ml::MlKind::kKnn:
      w.macs = dd(train_size) * dd(d);
      break;
  }
  return w;
}

Workload ml_training(ml::MlKind kind, std::size_t d, std::size_t classes,
                     std::size_t train_size) {
  Workload w;
  switch (kind) {
    case ml::MlKind::kMlp:
    case ml::MlKind::kDnn: {
      const double fwd = mlp_forward_macs(kind, d, classes);
      const double epochs = kind == ml::MlKind::kDnn ? 40.0 : 30.0;
      w.macs = 3.0 * fwd * epochs;  // fwd + backprop + weight update
      w.data_passes = epochs;
      break;
    }
    case ml::MlKind::kSvm:
      // Lift once + 40 epochs of classes x 384 hinge updates.
      w.macs = 384.0 * dd(d) + 40.0 * dd(classes) * 384.0;
      w.data_passes = 40.0;
      break;
    case ml::MlKind::kRandomForest:
      // 30 trees; each split sweep sorts/streams the node's rows over
      // sqrt(d) candidate features, ~log2(n) levels deep.
      w.macs = 30.0 * std::max(1.0, std::log2(dd(train_size))) *
               std::sqrt(dd(d)) * 16.0;
      w.data_passes = 30.0;  // one pass per tree
      break;
    case ml::MlKind::kLogReg:
      w.macs = 60.0 * dd(classes) * dd(d);
      w.data_passes = 60.0;
      break;
    case ml::MlKind::kKnn:
      w.macs = dd(d);  // memorize only
      break;
  }
  return w;
}

Workload kmeans_per_input(std::size_t d, std::size_t k, std::size_t iters,
                          std::size_t restarts) {
  Workload w;
  const double passes = dd(iters) * dd(restarts);
  w.macs = passes * dd(k) * dd(d) + dd(k) * dd(d);  // assign + update
  w.data_passes = passes;
  return w;
}

}  // namespace generic::hw
