// Calibrated cost models of the conventional devices the paper measured
// (§3.3: Raspberry Pi 3, Intel i7-8700 desktop CPU, Jetson TX2 eGPU) and
// the published-accelerator reference points of Figure 9 (Datta et al.
// [10] and tiny-HD [8], scaled to 14 nm per [21]).
//
// The paper measured wall power with a Hioki meter; here each device is an
// (energy-per-op, op-rate, per-input-overhead) triple per op family,
// calibrated so the *relative* results the paper reports are reproduced:
// the eGPU's bit-packing advantage on HDC, the CPU's fast but power-hungry
// MACs, the R-Pi's low power but very low throughput, and per-input
// framework overheads that dominate tiny inference workloads (why RF is
// the most efficient conventional baseline). See DESIGN.md §3.
#pragma once

#include <string_view>

#include "hwmodel/workload.h"

namespace generic::hw {

struct Device {
  std::string_view name;
  double mac_energy_j;       ///< effective J per MAC (incl. memory traffic)
  double simple_op_energy_j; ///< J per HDC bit-op
  double mac_rate;           ///< effective MACs per second
  double simple_op_rate;     ///< HDC bit-ops per second
  double overhead_energy_j;  ///< fixed per-input framework cost
  double overhead_time_s;    ///< fixed per-input latency
};

/// Raspberry Pi 3 (Cortex-A53, measured at the wall).
Device raspberry_pi();
/// Intel Core i7-8700 desktop CPU at 3.2 GHz.
Device desktop_cpu();
/// NVIDIA Jetson TX2 edge GPU with bit-packed HDC kernels (§3.3).
Device edge_gpu();

/// Energy (J) and wall-clock time (s) to process one Workload unit.
double energy_j(const Device& dev, const Workload& w);
double time_s(const Device& dev, const Workload& w);

/// Published per-input HDC inference energies (J), scaled to 14 nm [21]:
/// the programmable HD processor of Datta et al. [10] and the
/// inference-only tiny-HD engine [8] (geomean over the shared benchmarks).
double datta_hd_processor_energy_per_input_j();
double tiny_hd_energy_per_input_j();

}  // namespace generic::hw
