#include "hwmodel/device.h"

namespace generic::hw {

// Calibration notes (anchors from the paper, §3.3/§5.2/§5.3):
//  * HDC bit-ops: eGPU bit-packing gives ~134x energy / ~252x time over the
//    R-Pi and ~70x / ~30x over the CPU on GENERIC inference.
//  * Per-pass framework overheads dominate small workloads (RF inference,
//    k-means on FCPS), reproducing why RF is the best conventional
//    baseline and why k-means burns millijoules on three features.
//  * Implied wall powers stay physical: ~0.4-4 W R-Pi, ~2-17 W CPU burst,
//    ~1-10 W TX2.
Device raspberry_pi() {
  return Device{"R-Pi", 4.0e-9, 15.8e-9, 2.0e8, 2.5e7, 4.0e-6, 1.3e-6};
}

Device desktop_cpu() {
  return Device{"CPU", 1.3e-9, 7.9e-9, 5.0e9, 2.1e8, 14.0e-6, 0.8e-6};
}

Device edge_gpu() {
  return Device{"eGPU", 0.08e-9, 0.12e-9, 5.0e10, 6.3e9, 20.0e-6, 50.0e-6};
}

double energy_j(const Device& dev, const Workload& w) {
  const double passes = w.data_passes < 1.0 ? 1.0 : w.data_passes;
  return w.macs * dev.mac_energy_j + w.simple_ops * dev.simple_op_energy_j +
         passes * dev.overhead_energy_j;
}

double time_s(const Device& dev, const Workload& w) {
  const double passes = w.data_passes < 1.0 ? 1.0 : w.data_passes;
  return w.macs / dev.mac_rate + w.simple_ops / dev.simple_op_rate +
         passes * dev.overhead_time_s;
}

double datta_hd_processor_energy_per_input_j() { return 2.4e-7; }

double tiny_hd_energy_per_input_j() { return 6.2e-8; }

}  // namespace generic::hw
