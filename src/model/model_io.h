// Model serialization — the software counterpart of the ASIC's `config`
// port (§4.1): "load the level, id, and class hypervectors (in case of
// offline training)". A trained HdcClassifier plus the encoder
// configuration that produced its encodings round-trips through a compact
// binary image, so a model trained off-device (or in a previous run) can
// be deployed onto a GenericAsic or MicroArchSim without retraining.
//
// Format (little-endian, versioned):
//   magic "GHDC", u32 version,
//   encoder: u64 dims, u64 levels, u64 window, u8 use_ids, u64 seed,
//            u8 fitted, f32 lo, f32 hi,
//   model:   u64 dims, u64 classes, u64 chunk, i32 bit_width,
//            classes x dims i32 class elements,
//   crc32 of everything before it.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "encoding/encoder.h"
#include "model/hdc_classifier.h"

namespace generic::model {

struct SavedModel {
  enc::EncoderConfig encoder_config;
  bool quantizer_fitted = false;
  float quantizer_lo = 0.0f;
  float quantizer_hi = 1.0f;
  HdcClassifier classifier{128, 1, 128};
};

/// A structurally intact blob written by a NEWER tool than this reader: the
/// magic and CRC check out but the schema version is above what we know how
/// to parse. Distinct from plain std::invalid_argument (corruption) so
/// deployment code can say "upgrade the reader" instead of "file damaged" —
/// and so the lifecycle CheckpointStore does NOT quarantine such files.
class UnsupportedVersionError : public std::invalid_argument {
 public:
  UnsupportedVersionError(std::uint32_t found, std::uint32_t supported)
      : std::invalid_argument(
            "model blob schema version " + std::to_string(found) +
            " is newer than supported version " + std::to_string(supported)),
        found_(found),
        supported_(supported) {}

  std::uint32_t found() const { return found_; }
  std::uint32_t supported() const { return supported_; }

 private:
  std::uint32_t found_;
  std::uint32_t supported_;
};

/// Serialize a trained model + the encoder settings it was built with.
std::vector<std::uint8_t> serialize_model(const enc::Encoder& encoder,
                                          const HdcClassifier& classifier);

/// Parse a blob; throws std::invalid_argument on any corruption (bad magic,
/// truncation, CRC mismatch) and UnsupportedVersionError when the blob is
/// intact but written with a newer schema version than this reader.
SavedModel deserialize_model(const std::vector<std::uint8_t>& blob);

/// Classifier-only image ("GCLS" magic, versioned, CRC footer): geometry,
/// bit width and class elements without any encoder state. This is the
/// payload the lifecycle CheckpointStore snapshots — retraining never
/// changes the encoder, so re-serializing it per version would only bloat
/// checkpoints and forbid classifier-only rollback.
std::vector<std::uint8_t> serialize_classifier(const HdcClassifier& classifier);

/// Parse a classifier-only blob; same error contract as deserialize_model.
HdcClassifier deserialize_classifier(const std::vector<std::uint8_t>& blob);

/// File convenience wrappers.
void save_model_file(const std::string& path, const enc::Encoder& encoder,
                     const HdcClassifier& classifier);
SavedModel load_model_file(const std::string& path);

/// CRC-32 (IEEE 802.3) used by the blob footer; exposed for tests.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size);

}  // namespace generic::model
