// Model serialization — the software counterpart of the ASIC's `config`
// port (§4.1): "load the level, id, and class hypervectors (in case of
// offline training)". A trained HdcClassifier plus the encoder
// configuration that produced its encodings round-trips through a compact
// binary image, so a model trained off-device (or in a previous run) can
// be deployed onto a GenericAsic or MicroArchSim without retraining.
//
// Format (little-endian, versioned):
//   magic "GHDC", u32 version,
//   encoder: u64 dims, u64 levels, u64 window, u8 use_ids, u64 seed,
//            u8 fitted, f32 lo, f32 hi,
//   model:   u64 dims, u64 classes, u64 chunk, i32 bit_width,
//            classes x dims i32 class elements,
//   crc32 of everything before it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "encoding/encoder.h"
#include "model/hdc_classifier.h"

namespace generic::model {

struct SavedModel {
  enc::EncoderConfig encoder_config;
  bool quantizer_fitted = false;
  float quantizer_lo = 0.0f;
  float quantizer_hi = 1.0f;
  HdcClassifier classifier{128, 1, 128};
};

/// Serialize a trained model + the encoder settings it was built with.
std::vector<std::uint8_t> serialize_model(const enc::Encoder& encoder,
                                          const HdcClassifier& classifier);

/// Parse a blob; throws std::invalid_argument on any corruption
/// (bad magic, version, truncation, CRC mismatch).
SavedModel deserialize_model(const std::vector<std::uint8_t>& blob);

/// File convenience wrappers.
void save_model_file(const std::string& path, const enc::Encoder& encoder,
                     const HdcClassifier& classifier);
SavedModel load_model_file(const std::string& path);

/// CRC-32 (IEEE 802.3) used by the blob footer; exposed for tests.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size);

}  // namespace generic::model
