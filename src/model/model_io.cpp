#include "model/model_io.h"

#include <array>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace generic::model {
namespace {

constexpr std::array<std::uint8_t, 4> kMagic{'G', 'H', 'D', 'C'};
constexpr std::uint32_t kVersion = 1;

constexpr std::array<std::uint8_t, 4> kClassifierMagic{'G', 'C', 'L', 'S'};
constexpr std::uint32_t kClassifierVersion = 1;

class Writer {
 public:
  template <typename T>
  void put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
    for (std::size_t i = 0; i < sizeof(T); ++i) buf_.push_back(p[i]);
  }
  std::vector<std::uint8_t>& buffer() { return buf_; }

 private:
  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& buf) : buf_(buf) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ + sizeof(T) > buf_.size())
      throw std::invalid_argument("model blob truncated");
    T value;
    std::memcpy(&value, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }
  std::size_t position() const { return pos_; }

 private:
  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
};

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc ^= data[i];
    for (int b = 0; b < 8; ++b)
      crc = (crc >> 1) ^ (0xEDB88320u & (~(crc & 1u) + 1u));
  }
  return ~crc;
}

std::vector<std::uint8_t> serialize_model(const enc::Encoder& encoder,
                                          const HdcClassifier& classifier) {
  Writer w;
  for (auto b : kMagic) w.put(b);
  w.put(kVersion);

  const auto& cfg = encoder.config();
  w.put(static_cast<std::uint64_t>(cfg.dims));
  w.put(static_cast<std::uint64_t>(cfg.levels));
  w.put(static_cast<std::uint64_t>(cfg.window));
  w.put(static_cast<std::uint8_t>(cfg.use_ids ? 1 : 0));
  w.put(static_cast<std::uint64_t>(cfg.seed));
  const auto& q = encoder.quantizer();
  w.put(static_cast<std::uint8_t>(q.fitted() ? 1 : 0));
  w.put(q.fitted() ? q.lo() : 0.0f);
  w.put(q.fitted() ? q.hi() : 1.0f);

  w.put(static_cast<std::uint64_t>(classifier.dims()));
  w.put(static_cast<std::uint64_t>(classifier.num_classes()));
  w.put(static_cast<std::uint64_t>(classifier.dims() /
                                   classifier.num_chunks()));
  w.put(static_cast<std::int32_t>(classifier.bit_width()));
  for (std::size_t c = 0; c < classifier.num_classes(); ++c)
    for (std::int32_t v : classifier.class_vector(c)) w.put(v);

  const std::uint32_t crc = crc32(w.buffer().data(), w.buffer().size());
  w.put(crc);
  return std::move(w.buffer());
}

SavedModel deserialize_model(const std::vector<std::uint8_t>& blob) {
  if (blob.size() < kMagic.size() + sizeof(std::uint32_t) * 2)
    throw std::invalid_argument("model blob too small");
  // Verify the CRC footer first.
  const std::size_t body = blob.size() - sizeof(std::uint32_t);
  std::uint32_t stored;
  std::memcpy(&stored, blob.data() + body, sizeof(stored));
  if (crc32(blob.data(), body) != stored)
    throw std::invalid_argument("model blob CRC mismatch");

  Reader r(blob);
  for (auto expected : kMagic)
    if (r.get<std::uint8_t>() != expected)
      throw std::invalid_argument("model blob bad magic");
  const std::uint32_t version = r.get<std::uint32_t>();
  // The CRC already passed, so a too-high version means an intact file from
  // a newer writer, not corruption — report it as such.
  if (version > kVersion) throw UnsupportedVersionError(version, kVersion);
  if (version != kVersion)
    throw std::invalid_argument("model blob unsupported version");

  SavedModel out;
  out.encoder_config.dims = r.get<std::uint64_t>();
  out.encoder_config.levels = r.get<std::uint64_t>();
  out.encoder_config.window = r.get<std::uint64_t>();
  out.encoder_config.use_ids = r.get<std::uint8_t>() != 0;
  out.encoder_config.seed = r.get<std::uint64_t>();
  out.quantizer_fitted = r.get<std::uint8_t>() != 0;
  out.quantizer_lo = r.get<float>();
  out.quantizer_hi = r.get<float>();

  const auto dims = static_cast<std::size_t>(r.get<std::uint64_t>());
  const auto classes = static_cast<std::size_t>(r.get<std::uint64_t>());
  const auto chunk = static_cast<std::size_t>(r.get<std::uint64_t>());
  const auto bit_width = r.get<std::int32_t>();
  if (dims == 0 || classes == 0 || chunk == 0 || dims % chunk != 0)
    throw std::invalid_argument("model blob inconsistent geometry");
  if (bit_width < 1 || bit_width > 16)
    throw std::invalid_argument("model blob bad bit width");
  // Size the payload before allocating: a corrupt (or crafted) header must
  // not be able to demand an arbitrary allocation.
  if (dims > (1ULL << 26) || classes > (1ULL << 20))
    throw std::invalid_argument("model blob implausible geometry");
  const std::uint64_t want =
      static_cast<std::uint64_t>(dims) * classes * sizeof(std::int32_t);
  if (want != body - r.position())
    throw std::invalid_argument("model blob payload size mismatch");

  out.classifier = HdcClassifier(dims, classes, chunk);
  for (std::size_t c = 0; c < classes; ++c) {
    auto& vec = out.classifier.mutable_class_vector(c);
    for (std::size_t j = 0; j < dims; ++j) vec[j] = r.get<std::int32_t>();
  }
  out.classifier.set_bit_width(static_cast<int>(bit_width));
  out.classifier.recompute_norms();
  if (r.position() != body)
    throw std::invalid_argument("model blob trailing bytes");
  return out;
}

std::vector<std::uint8_t> serialize_classifier(
    const HdcClassifier& classifier) {
  Writer w;
  for (auto b : kClassifierMagic) w.put(b);
  w.put(kClassifierVersion);
  w.put(static_cast<std::uint64_t>(classifier.dims()));
  w.put(static_cast<std::uint64_t>(classifier.num_classes()));
  w.put(static_cast<std::uint64_t>(classifier.dims() /
                                   classifier.num_chunks()));
  w.put(static_cast<std::int32_t>(classifier.bit_width()));
  for (std::size_t c = 0; c < classifier.num_classes(); ++c)
    for (std::int32_t v : classifier.class_vector(c)) w.put(v);
  const std::uint32_t crc = crc32(w.buffer().data(), w.buffer().size());
  w.put(crc);
  return std::move(w.buffer());
}

HdcClassifier deserialize_classifier(const std::vector<std::uint8_t>& blob) {
  if (blob.size() < kClassifierMagic.size() + sizeof(std::uint32_t) * 2)
    throw std::invalid_argument("classifier blob too small");
  const std::size_t body = blob.size() - sizeof(std::uint32_t);
  std::uint32_t stored;
  std::memcpy(&stored, blob.data() + body, sizeof(stored));
  if (crc32(blob.data(), body) != stored)
    throw std::invalid_argument("classifier blob CRC mismatch");

  Reader r(blob);
  for (auto expected : kClassifierMagic)
    if (r.get<std::uint8_t>() != expected)
      throw std::invalid_argument("classifier blob bad magic");
  const std::uint32_t version = r.get<std::uint32_t>();
  if (version > kClassifierVersion)
    throw UnsupportedVersionError(version, kClassifierVersion);
  if (version != kClassifierVersion)
    throw std::invalid_argument("classifier blob unsupported version");

  const auto dims = static_cast<std::size_t>(r.get<std::uint64_t>());
  const auto classes = static_cast<std::size_t>(r.get<std::uint64_t>());
  const auto chunk = static_cast<std::size_t>(r.get<std::uint64_t>());
  const auto bit_width = r.get<std::int32_t>();
  if (dims == 0 || classes == 0 || chunk == 0 || dims % chunk != 0)
    throw std::invalid_argument("classifier blob inconsistent geometry");
  if (bit_width < 1 || bit_width > 16)
    throw std::invalid_argument("classifier blob bad bit width");
  if (dims > (1ULL << 26) || classes > (1ULL << 20))
    throw std::invalid_argument("classifier blob implausible geometry");
  const std::uint64_t want =
      static_cast<std::uint64_t>(dims) * classes * sizeof(std::int32_t);
  if (want != body - r.position())
    throw std::invalid_argument("classifier blob payload size mismatch");

  HdcClassifier out(dims, classes, chunk);
  for (std::size_t c = 0; c < classes; ++c) {
    auto& vec = out.mutable_class_vector(c);
    for (std::size_t j = 0; j < dims; ++j) vec[j] = r.get<std::int32_t>();
  }
  out.set_bit_width(static_cast<int>(bit_width));
  out.recompute_norms();
  if (r.position() != body)
    throw std::invalid_argument("classifier blob trailing bytes");
  return out;
}

void save_model_file(const std::string& path, const enc::Encoder& encoder,
                     const HdcClassifier& classifier) {
  const auto blob = serialize_model(encoder, classifier);
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("cannot open for writing: " + path);
  f.write(reinterpret_cast<const char*>(blob.data()),
          static_cast<std::streamsize>(blob.size()));
  if (!f) throw std::runtime_error("write failed: " + path);
}

SavedModel load_model_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open for reading: " + path);
  std::vector<std::uint8_t> blob((std::istreambuf_iterator<char>(f)),
                                 std::istreambuf_iterator<char>());
  return deserialize_model(blob);
}

}  // namespace generic::model
