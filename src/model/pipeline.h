// End-to-end helpers tying encoder + model together: encode a whole dataset
// once (encodings are reused across retrain epochs, as the ASIC stores them
// in temporary class-memory rows, §4.2.2) and run the full train/evaluate
// loop the Table 1 harness and tests share.
#pragma once

#include <cstddef>
#include <vector>

#include "common/thread_pool.h"
#include "data/dataset.h"
#include "encoding/encoder.h"
#include "model/hdc_classifier.h"

namespace generic::model {

/// Encode every sample of `xs` with `enc` (already fitted).
std::vector<hdc::IntHV> encode_all(
    const enc::Encoder& enc, const std::vector<std::vector<float>>& xs);

/// Pooled variant: fan samples across `pool`; bit-identical output.
std::vector<hdc::IntHV> encode_all(const enc::Encoder& enc,
                                   const std::vector<std::vector<float>>& xs,
                                   ThreadPool& pool);

struct HdcRunResult {
  double test_accuracy = 0.0;
  std::size_t epochs_run = 0;
  std::vector<int> predictions;
};

/// Fit encoder on train data, encode both splits, train with retraining,
/// and score on the test split. `epochs` matches the paper's constant 20.
HdcRunResult run_hdc_classification(enc::Encoder& enc,
                                    const data::Dataset& ds,
                                    std::size_t epochs = 20);

/// Pooled end-to-end run: encode_batch + train_batch/retrain_epoch_parallel
/// + predict_batch. Produces byte-identical HdcRunResult (accuracy, epoch
/// count and every prediction) to the serial overload for any lane count.
HdcRunResult run_hdc_classification(enc::Encoder& enc, const data::Dataset& ds,
                                    std::size_t epochs, ThreadPool& pool);

}  // namespace generic::model
