// HDC classification model (paper §2.1, §4.2.2, §4.3.3, §4.3.4).
//
// Lifecycle:
//   train_init()     bundle encoded train vectors into class accumulators
//   retrain_epoch()  perceptron-style update: on a misprediction subtract
//                    the encoding from the wrong class, add to the right one
//   predict()        signed squared-cosine score argmax
//
// The model mirrors three ASIC features:
//  * sub-norms — the norm2 memory stores the squared L2 norm of every
//    128-dimension chunk of every class so inference with a reduced number
//    of dimensions can use the exact ("Updated") norm instead of the stale
//    full-model ("Constant") norm — the Figure 5 comparison.
//  * bit-width quantization — class elements can be quantized to
//    {1,2,4,8,16} bits (the `bw` spec input, §4.3.4 / Figure 6).
//  * fault injection — bit flips at a given rate in the quantized class
//    words model SRAM voltage over-scaling. Norms are intentionally NOT
//    refreshed by injection: the hardware keeps them in the separate
//    (unscaled) norm2 memory.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "hdc/hypervector.h"

namespace generic::model {

/// Norm source for reduced-dimension inference (Figure 5).
enum class NormMode {
  kConstant,  ///< stale full-model norm
  kUpdated,   ///< exact sub-norm of the dimensions actually used
};

/// Prediction with its confidence margin: (top1 - top2) / (|top1| + |top2|)
/// over the same argmax scan — normalized so it lands in [0, 1] regardless
/// of dims, bit width or norm magnitudes. A small margin means the winning
/// class barely beat the runner-up — the signal the lifecycle drift
/// detector watches (src/lifecycle/drift_detector.h). With a single class
/// the margin is 0 by definition.
struct Prediction {
  int cls = 0;
  double margin = 0.0;
};

class HdcClassifier {
 public:
  /// `chunk` is the sub-norm granularity; the ASIC uses 128 (§4.3.3).
  HdcClassifier(std::size_t dims, std::size_t num_classes,
                std::size_t chunk = 128);

  std::size_t dims() const { return dims_; }
  std::size_t num_classes() const { return num_classes_; }
  int bit_width() const { return bit_width_; }

  /// One-shot training: bundle each encoding into its class accumulator.
  void train_init(std::span<const hdc::IntHV> encoded,
                  std::span<const int> labels);

  /// One retraining epoch over the encoded training set; returns the number
  /// of model updates (mispredictions).
  std::size_t retrain_epoch(std::span<const hdc::IntHV> encoded,
                            std::span<const int> labels);

  /// Convenience: train_init + at most `epochs` retraining epochs, stopping
  /// early when an epoch makes no update.
  void fit(std::span<const hdc::IntHV> encoded, std::span<const int> labels,
           std::size_t epochs);

  // ---- Batched / parallel engine (docs/parallelism.md) ----
  //
  // Every method below is bit-identical to its serial counterpart for any
  // pool lane count: sample fan-out writes indexed slots, and integer
  // accumulator merges happen on the caller in fixed chunk order. The
  // determinism contract is asserted by tests/model/test_parallel_determinism.

  /// Parallel train_init: samples fan out in chunks, each chunk bundles
  /// into its own per-class partial accumulators, and the partials are
  /// merged in chunk-index order (integer adds — exact for any split).
  void train_batch(std::span<const hdc::IntHV> encoded,
                   std::span<const int> labels, ThreadPool& pool);

  /// One retraining epoch equal to retrain_epoch(): samples stay strictly
  /// sequential (each update feeds the next prediction), but the per-class
  /// scoring of every sample fans out across the pool with a fixed-order
  /// argmax on the caller.
  std::size_t retrain_epoch_parallel(std::span<const hdc::IntHV> encoded,
                                     std::span<const int> labels,
                                     ThreadPool& pool);

  /// Parallel fit(): train_batch + retrain_epoch_parallel epochs.
  void fit_parallel(std::span<const hdc::IntHV> encoded,
                    std::span<const int> labels, std::size_t epochs,
                    ThreadPool& pool);

  /// Batched inference: out[i] == predict(queries[i]); queries fan out
  /// across the pool against the shared read-only model.
  std::vector<int> predict_batch(std::span<const hdc::IntHV> queries,
                                 ThreadPool& pool) const;

  /// Batched reduced-dimension inference:
  /// out[i] == predict_reduced(queries[i], dims_used, mode). The serving
  /// engine's degradation rungs flush through this so degraded batches keep
  /// the predict_batch determinism contract.
  std::vector<int> predict_reduced_batch(std::span<const hdc::IntHV> queries,
                                         std::size_t dims_used, NormMode mode,
                                         ThreadPool& pool) const;

  /// Batched masked inference: out[i] == predict_masked(queries[i], chunk_ok).
  std::vector<int> predict_masked_batch(std::span<const hdc::IntHV> queries,
                                        const std::vector<bool>& chunk_ok,
                                        ThreadPool& pool) const;

  /// Batched reduced-dimension inference with confidence margins:
  /// out[i].cls == predict_reduced(queries[i], dims_used, mode) and
  /// out[i].margin is the normalized top1-vs-top2 margin of that same scan.
  /// Queries fan out across the pool into indexed slots, so the result is
  /// bit-identical for any lane count (same contract as predict_batch).
  std::vector<Prediction> predict_reduced_margin_batch(
      std::span<const hdc::IntHV> queries, std::size_t dims_used,
      NormMode mode, ThreadPool& pool) const;

  /// Masked counterpart: out[i].cls == predict_masked(queries[i], chunk_ok).
  std::vector<Prediction> predict_masked_margin_batch(
      std::span<const hdc::IntHV> queries, const std::vector<bool>& chunk_ok,
      ThreadPool& pool) const;

  /// Online adaptation: score one labelled encoding and, on a
  /// misprediction, apply the same subtract/add update as retraining.
  /// Returns true when the model changed. This is the continuous-learning
  /// mode an always-on edge node runs between full retraining rounds.
  bool online_update(const hdc::IntHV& encoded, int label);

  /// Similarity-weighted online update (extension, OnlineHD-style): on a
  /// misprediction the encoding is added/subtracted scaled by how wrong
  /// the model was — (1 - cos(H, C_label)) into the right class and
  /// (1 + cos(H, C_wrong))/2 out of the wrong one — which converges faster
  /// and overshoots less than unit updates on streaming data. Values are
  /// rounded back into the integer class domain.
  bool online_update_adaptive(const hdc::IntHV& encoded, int label);

  /// Predicted class using all dimensions.
  int predict(const hdc::IntHV& query) const;

  /// Predicted class using only the first `dims_used` dimensions (must be a
  /// multiple of the chunk size, or == dims()).
  int predict_reduced(const hdc::IntHV& query, std::size_t dims_used,
                      NormMode mode) const;

  /// Signed squared-cosine-numerator score of one class:
  /// sign(H.C) * (H.C)^2 / ||C||^2 over the first dims_used dimensions.
  double score(const hdc::IntHV& query, std::size_t cls,
               std::size_t dims_used, NormMode mode) const;

  /// Predicted class using only the chunks whose `chunk_ok` entry is true
  /// (size num_chunks()). The generalization of predict_reduced() to an
  /// arbitrary block subset: the degradation path for models with faulty
  /// 128-dim blocks (see resilience::BlockGuard) skips the damaged blocks
  /// in both the dot product and the norm, exactly like §4.3.3 on-demand
  /// dimension reduction with Updated norms. At least one chunk must be
  /// enabled.
  int predict_masked(const hdc::IntHV& query,
                     const std::vector<bool>& chunk_ok) const;

  /// Masked-score of one class over the enabled chunks only.
  double score_masked(const hdc::IntHV& query, std::size_t cls,
                      const std::vector<bool>& chunk_ok) const;

  /// Quantize class elements to `bit_width` bits (two's complement),
  /// rescaling by the model's max magnitude; recomputes norms.
  void quantize(int bit_width);

  /// Flip each stored class-memory bit independently with probability
  /// `rate`. Operates on the current bit-width representation. Norms stay
  /// untouched (see header comment).
  void inject_bit_flips(double rate, Rng& rng);

  const hdc::IntHV& class_vector(std::size_t c) const { return classes_.at(c); }
  hdc::IntHV& mutable_class_vector(std::size_t c) { return classes_.at(c); }

  /// Record the bit-width of externally provided (already quantized) class
  /// values — used by model deserialization; quantize() is the normal path.
  void set_bit_width(int bit_width) {
    if (bit_width < 1 || bit_width > 16)
      throw std::invalid_argument("set_bit_width: out of range");
    bit_width_ = bit_width;
  }

  /// Squared L2 norm of chunk `k` of class `c` (as stored in norm2 memory).
  std::int64_t chunk_norm(std::size_t c, std::size_t k) const {
    return chunk_norms_.at(c).at(k);
  }
  std::size_t num_chunks() const { return num_chunks_; }

  /// Recompute all chunk norms from the current class vectors (the ASIC
  /// does this as part of training, §4.2.2).
  void recompute_norms();

  /// Recompute the chunk norms of a single class (used after an in-place
  /// update of that class's accumulator).
  void recompute_norms(std::size_t cls);

 private:
  std::int64_t reduced_norm(std::size_t c, std::size_t dims_used,
                            NormMode mode) const;

  std::size_t dims_;
  std::size_t num_classes_;
  std::size_t chunk_;
  std::size_t num_chunks_;
  int bit_width_ = 16;
  std::vector<hdc::IntHV> classes_;
  std::vector<std::vector<std::int64_t>> chunk_norms_;
};

}  // namespace generic::model
