// Bit-packed deployment path for 1-bit HDC models.
//
// Figure 6 shows that many applications survive quantization of the class
// memory all the way to sign bits. A sign model makes the similarity
// search pure binary arithmetic: with a binarized query, the dot product
// of bipolar vectors is D - 2*hamming, computed with XOR + popcount over
// packed 64-bit words — the same trick the paper's bit-packed eGPU kernels
// use (§3.3) and what a CPU/MCU deployment of a GENERIC model would ship.
//
// BinaryModel converts a trained HdcClassifier into packed sign vectors
// and serves predictions ~an order of magnitude faster than the int32
// path (see bench/micro_hdc). Norms are constant across classes (every
// sign vector has ||C||^2 = D), so the cosine argmax reduces to a plain
// max-dot — no divider at all.
#pragma once

#include <cstddef>
#include <vector>

#include "hdc/hypervector.h"
#include "model/hdc_classifier.h"

namespace generic::model {

class BinaryModel {
 public:
  /// Binarize a trained classifier: class elements become sign bits.
  explicit BinaryModel(const HdcClassifier& classifier);

  std::size_t dims() const { return dims_; }
  std::size_t num_classes() const { return classes_.size(); }

  /// Fully binary: predict from a packed binarized query (XOR+popcount
  /// only — the tiny-HD-style operating point; costs a few accuracy
  /// points on top of model binarization because query magnitudes vanish).
  int predict_packed(const hdc::BinaryHV& query) const;

  /// Fully binary from a bundled integer query (binarized internally).
  int predict(const hdc::IntHV& query) const;

  /// Mixed precision: integer query against the sign model — still
  /// multiplier-free (adds/subtracts selected by class bits) and
  /// equivalent to HdcClassifier::quantize(1) with a full-precision query.
  int predict_mixed(const hdc::IntHV& query) const;

  /// Sign-binarize a bundled hypervector (>= 0 -> bit 1).
  static hdc::BinaryHV binarize(const hdc::IntHV& v);

  const hdc::BinaryHV& class_vector(std::size_t c) const {
    return classes_.at(c);
  }

 private:
  std::size_t dims_;
  std::vector<hdc::BinaryHV> classes_;
};

}  // namespace generic::model
