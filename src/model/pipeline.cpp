#include "model/pipeline.h"

#include "obs/obs.h"

namespace generic::model {

std::vector<hdc::IntHV> encode_all(
    const enc::Encoder& enc, const std::vector<std::vector<float>>& xs) {
  std::vector<hdc::IntHV> out;
  out.reserve(xs.size());
  for (const auto& x : xs) out.push_back(enc.encode(x));
  return out;
}

std::vector<hdc::IntHV> encode_all(const enc::Encoder& enc,
                                   const std::vector<std::vector<float>>& xs,
                                   ThreadPool& pool) {
  return enc.encode_batch(xs, pool);
}

HdcRunResult run_hdc_classification(enc::Encoder& enc,
                                    const data::Dataset& ds,
                                    std::size_t epochs) {
  GENERIC_SPAN("pipeline.run");
  {
    GENERIC_SPAN("pipeline.fit_quantizer");
    enc.fit(ds.train_x);
  }
  std::vector<hdc::IntHV> train_enc, test_enc;
  {
    GENERIC_SPAN("pipeline.encode");
    train_enc = encode_all(enc, ds.train_x);
    test_enc = encode_all(enc, ds.test_x);
  }

  HdcClassifier model(enc.dims(), ds.num_classes);
  std::size_t epoch = 0;
  {
    GENERIC_SPAN("pipeline.train");
    model.train_init(train_enc, ds.train_y);
    for (; epoch < epochs; ++epoch)
      if (model.retrain_epoch(train_enc, ds.train_y) == 0) break;
  }

  GENERIC_SPAN("pipeline.predict");
  HdcRunResult res;
  res.epochs_run = epoch;
  res.predictions.reserve(test_enc.size());
  std::size_t hits = 0;
  for (std::size_t i = 0; i < test_enc.size(); ++i) {
    const int p = model.predict(test_enc[i]);
    res.predictions.push_back(p);
    hits += p == ds.test_y[i];
  }
  res.test_accuracy =
      static_cast<double>(hits) / static_cast<double>(test_enc.size());
  return res;
}

HdcRunResult run_hdc_classification(enc::Encoder& enc, const data::Dataset& ds,
                                    std::size_t epochs, ThreadPool& pool) {
  GENERIC_SPAN("pipeline.run");
  {
    GENERIC_SPAN("pipeline.fit_quantizer");
    enc.fit(ds.train_x);
  }
  std::vector<hdc::IntHV> train_enc, test_enc;
  {
    GENERIC_SPAN("pipeline.encode");
    train_enc = enc.encode_batch(ds.train_x, pool);
    test_enc = enc.encode_batch(ds.test_x, pool);
  }

  HdcClassifier model(enc.dims(), ds.num_classes);
  std::size_t epoch = 0;
  {
    GENERIC_SPAN("pipeline.train");
    model.train_batch(train_enc, ds.train_y, pool);
    for (; epoch < epochs; ++epoch)
      if (model.retrain_epoch_parallel(train_enc, ds.train_y, pool) == 0) break;
  }

  GENERIC_SPAN("pipeline.predict");
  HdcRunResult res;
  res.epochs_run = epoch;
  res.predictions = model.predict_batch(test_enc, pool);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < res.predictions.size(); ++i)
    hits += res.predictions[i] == ds.test_y[i];
  res.test_accuracy =
      static_cast<double>(hits) / static_cast<double>(test_enc.size());
  return res;
}

}  // namespace generic::model
