#include "model/binary_model.h"

#include "hdc/ops.h"

#include <limits>
#include <stdexcept>

namespace generic::model {

BinaryModel::BinaryModel(const HdcClassifier& classifier)
    : dims_(classifier.dims()) {
  classes_.reserve(classifier.num_classes());
  for (std::size_t c = 0; c < classifier.num_classes(); ++c)
    classes_.push_back(binarize(classifier.class_vector(c)));
}

hdc::BinaryHV BinaryModel::binarize(const hdc::IntHV& v) {
  return hdc::threshold(v, 0);
}

int BinaryModel::predict_packed(const hdc::BinaryHV& query) const {
  if (query.dims() != dims_)
    throw std::invalid_argument("BinaryModel: query dimension mismatch");
  // max dot == min hamming for bipolar vectors of equal norm; ties resolve
  // to the lowest class index in both formulations.
  return static_cast<int>(hdc::nearest_hamming(query, classes_));
}

int BinaryModel::predict(const hdc::IntHV& query) const {
  return predict_packed(binarize(query));
}

int BinaryModel::predict_mixed(const hdc::IntHV& query) const {
  if (query.size() != dims_)
    throw std::invalid_argument("BinaryModel: query dimension mismatch");
  int best = 0;
  std::int64_t best_dot = std::numeric_limits<std::int64_t>::min();
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    // All sign vectors share ||C||^2 == D, so max-dot == max-cosine.
    const std::int64_t d = hdc::dot(query, classes_[c]);
    if (d > best_dot) {
      best_dot = d;
      best = static_cast<int>(c);
    }
  }
  return best;
}

}  // namespace generic::model
