#include "model/hdc_cluster.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace generic::model {

HdcCluster::HdcCluster(std::size_t dims, std::size_t k) : dims_(dims), k_(k) {
  if (dims == 0 || k == 0)
    throw std::invalid_argument("HdcCluster: zero-sized parameter");
}

void HdcCluster::refresh_norms() {
  centroid_norms_.resize(centroids_.size());
  for (std::size_t c = 0; c < centroids_.size(); ++c)
    centroid_norms_[c] = static_cast<double>(hdc::norm2(centroids_[c]));
}

int HdcCluster::assign(const hdc::IntHV& query) const {
  if (query.size() != dims_)
    throw std::invalid_argument("HdcCluster::assign: dimension mismatch");
  int best = 0;
  double best_score = -std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < centroids_.size(); ++c) {
    const double n2 = centroid_norms_[c];
    double s;
    if (n2 == 0.0) {
      s = -std::numeric_limits<double>::infinity();
    } else {
      const auto d = static_cast<double>(hdc::dot(query, centroids_[c]));
      s = d * std::abs(d) / n2;  // signed squared cosine numerator
    }
    if (s > best_score) {
      best_score = s;
      best = static_cast<int>(c);
    }
  }
  return best;
}

std::size_t HdcCluster::fit(std::span<const hdc::IntHV> encoded,
                            std::size_t max_epochs) {
  if (encoded.size() < k_)
    throw std::invalid_argument("HdcCluster::fit: fewer points than clusters");
  // Seed: the first k encoded inputs (paper §4.2.3).
  centroids_.assign(encoded.begin(), encoded.begin() + static_cast<std::ptrdiff_t>(k_));
  refresh_norms();

  std::vector<int> prev(encoded.size(), -1);
  std::size_t epoch = 0;
  for (; epoch < max_epochs; ++epoch) {
    std::vector<hdc::IntHV> copy(k_, hdc::IntHV(dims_, 0));
    std::vector<std::size_t> members(k_, 0);
    bool changed = false;
    for (std::size_t i = 0; i < encoded.size(); ++i) {
      const int c = assign(encoded[i]);
      if (c != prev[i]) changed = true;
      prev[i] = c;
      hdc::add_into(copy[static_cast<std::size_t>(c)], encoded[i]);
      members[static_cast<std::size_t>(c)]++;
    }
    if (!changed) break;
    // The copy replaces the model; empty clusters keep their old centroid
    // so k never silently collapses.
    for (std::size_t c = 0; c < k_; ++c)
      if (members[c] != 0) centroids_[c] = std::move(copy[c]);
    refresh_norms();
  }
  return epoch;
}

std::vector<int> HdcCluster::labels(
    std::span<const hdc::IntHV> encoded) const {
  std::vector<int> out(encoded.size());
  for (std::size_t i = 0; i < encoded.size(); ++i) out[i] = assign(encoded[i]);
  return out;
}

}  // namespace generic::model
