#include "model/hdc_classifier.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/obs.h"

namespace generic::model {

HdcClassifier::HdcClassifier(std::size_t dims, std::size_t num_classes,
                             std::size_t chunk)
    : dims_(dims), num_classes_(num_classes), chunk_(chunk) {
  if (dims == 0 || num_classes == 0 || chunk == 0)
    throw std::invalid_argument("HdcClassifier: zero-sized parameter");
  if (dims % chunk != 0)
    throw std::invalid_argument("HdcClassifier: dims must be a chunk multiple");
  num_chunks_ = dims / chunk;
  classes_.assign(num_classes, hdc::IntHV(dims, 0));
  chunk_norms_.assign(num_classes, std::vector<std::int64_t>(num_chunks_, 0));
}

void HdcClassifier::train_init(std::span<const hdc::IntHV> encoded,
                               std::span<const int> labels) {
  GENERIC_SPAN("train.init");
  if (encoded.size() != labels.size())
    throw std::invalid_argument("train_init: size mismatch");
  for (auto& c : classes_) std::fill(c.begin(), c.end(), 0);
  for (std::size_t i = 0; i < encoded.size(); ++i)
    hdc::add_into(classes_.at(static_cast<std::size_t>(labels[i])), encoded[i]);
  recompute_norms();
}

std::size_t HdcClassifier::retrain_epoch(std::span<const hdc::IntHV> encoded,
                                         std::span<const int> labels) {
  GENERIC_SPAN("train.epoch");
  if (encoded.size() != labels.size())
    throw std::invalid_argument("retrain_epoch: size mismatch");
  std::size_t updates = 0;
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    const int pred = predict(encoded[i]);
    const int truth = labels[i];
    if (pred == truth) continue;
    ++updates;
    auto& wrong = classes_.at(static_cast<std::size_t>(pred));
    auto& right = classes_.at(static_cast<std::size_t>(truth));
    hdc::add_into(wrong, encoded[i], -1);
    hdc::add_into(right, encoded[i], +1);
    // Only the two touched classes need their norms refreshed.
    for (std::size_t k = 0; k < num_chunks_; ++k) {
      std::int64_t nw = 0, nr = 0;
      for (std::size_t j = k * chunk_; j < (k + 1) * chunk_; ++j) {
        nw += static_cast<std::int64_t>(wrong[j]) * wrong[j];
        nr += static_cast<std::int64_t>(right[j]) * right[j];
      }
      chunk_norms_[static_cast<std::size_t>(pred)][k] = nw;
      chunk_norms_[static_cast<std::size_t>(truth)][k] = nr;
    }
  }
  GENERIC_COUNTER_ADD("train.updates", updates);
  return updates;
}

bool HdcClassifier::online_update(const hdc::IntHV& encoded, int label) {
  if (label < 0 || static_cast<std::size_t>(label) >= num_classes_)
    throw std::invalid_argument("online_update: label out of range");
  const int pred = predict(encoded);
  if (pred == label) return false;
  hdc::add_into(classes_[static_cast<std::size_t>(pred)], encoded, -1);
  hdc::add_into(classes_[static_cast<std::size_t>(label)], encoded, +1);
  recompute_norms(static_cast<std::size_t>(pred));
  recompute_norms(static_cast<std::size_t>(label));
  return true;
}

bool HdcClassifier::online_update_adaptive(const hdc::IntHV& encoded,
                                           int label) {
  if (label < 0 || static_cast<std::size_t>(label) >= num_classes_)
    throw std::invalid_argument("online_update_adaptive: label out of range");
  const int pred = predict(encoded);
  if (pred == label) return false;
  auto cos_to = [&](std::size_t c) {
    const auto& cls = classes_[c];
    const std::int64_t n2 = hdc::norm2(cls);
    if (n2 == 0) return 0.0;
    return static_cast<double>(hdc::dot(encoded, cls)) /
           (std::sqrt(static_cast<double>(hdc::norm2(encoded))) *
            std::sqrt(static_cast<double>(n2)));
  };
  const double w_in = std::clamp(1.0 - cos_to(static_cast<std::size_t>(label)),
                                 0.0, 2.0);
  const double w_out = std::clamp(
      0.5 * (1.0 + cos_to(static_cast<std::size_t>(pred))), 0.0, 1.0);
  auto& right = classes_[static_cast<std::size_t>(label)];
  auto& wrong = classes_[static_cast<std::size_t>(pred)];
  for (std::size_t j = 0; j < dims_; ++j) {
    right[j] += static_cast<std::int32_t>(std::lround(w_in * encoded[j]));
    wrong[j] -= static_cast<std::int32_t>(std::lround(w_out * encoded[j]));
  }
  recompute_norms(static_cast<std::size_t>(label));
  recompute_norms(static_cast<std::size_t>(pred));
  return true;
}

void HdcClassifier::fit(std::span<const hdc::IntHV> encoded,
                        std::span<const int> labels, std::size_t epochs) {
  GENERIC_SPAN("train.fit");
  train_init(encoded, labels);
  for (std::size_t e = 0; e < epochs; ++e)
    if (retrain_epoch(encoded, labels) == 0) break;
}

void HdcClassifier::train_batch(std::span<const hdc::IntHV> encoded,
                                std::span<const int> labels,
                                ThreadPool& pool) {
  GENERIC_SPAN("train.batch");
  if (encoded.size() != labels.size())
    throw std::invalid_argument("train_batch: size mismatch");
  GENERIC_COUNTER_ADD("train.samples", encoded.size());
  const auto grid = ThreadPool::chunk_grid(encoded.size(), pool.lanes());
  // One private set of class accumulators per chunk; parallel_for hands
  // chunk c exactly grid[c], so partials[c] is written by a single lane.
  std::vector<std::vector<hdc::IntHV>> partials(
      grid.size(), std::vector<hdc::IntHV>(num_classes_, hdc::IntHV(dims_, 0)));
  pool.parallel_for(encoded.size(),
                    [&](std::size_t begin, std::size_t end, std::size_t c) {
                      GENERIC_SPAN("train.batch.chunk");
                      auto& local = partials[c];
                      for (std::size_t i = begin; i < end; ++i)
                        hdc::add_into(
                            local.at(static_cast<std::size_t>(labels[i])),
                            encoded[i]);
                    });
  for (auto& cls : classes_) std::fill(cls.begin(), cls.end(), 0);
  // Fixed chunk-index merge order; integer addition makes the result
  // independent of the split anyway — byte-identical to train_init().
  for (const auto& local : partials)
    for (std::size_t c = 0; c < num_classes_; ++c)
      hdc::add_into(classes_[c], local[c]);
  recompute_norms();
}

std::size_t HdcClassifier::retrain_epoch_parallel(
    std::span<const hdc::IntHV> encoded, std::span<const int> labels,
    ThreadPool& pool) {
  GENERIC_SPAN("train.epoch");
  if (encoded.size() != labels.size())
    throw std::invalid_argument("retrain_epoch_parallel: size mismatch");
  std::vector<double> scores(num_classes_, 0.0);
  std::size_t updates = 0;
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    // Fan the per-class scoring out; each class's score is computed by the
    // exact expression predict() uses, so the fixed-order argmax below
    // reproduces predict(encoded[i]) bit-for-bit.
    pool.parallel_for(num_classes_,
                      [&](std::size_t begin, std::size_t end, std::size_t) {
                        for (std::size_t c = begin; c < end; ++c)
                          scores[c] =
                              score(encoded[i], c, dims_, NormMode::kUpdated);
                      });
    int pred = 0;
    double best = -std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < num_classes_; ++c) {
      if (scores[c] > best) {
        best = scores[c];
        pred = static_cast<int>(c);
      }
    }
    const int truth = labels[i];
    if (pred == truth) continue;
    ++updates;
    hdc::add_into(classes_.at(static_cast<std::size_t>(pred)), encoded[i], -1);
    hdc::add_into(classes_.at(static_cast<std::size_t>(truth)), encoded[i], +1);
    recompute_norms(static_cast<std::size_t>(pred));
    recompute_norms(static_cast<std::size_t>(truth));
  }
  GENERIC_COUNTER_ADD("train.updates", updates);
  return updates;
}

void HdcClassifier::fit_parallel(std::span<const hdc::IntHV> encoded,
                                 std::span<const int> labels,
                                 std::size_t epochs, ThreadPool& pool) {
  GENERIC_SPAN("train.fit");
  train_batch(encoded, labels, pool);
  for (std::size_t e = 0; e < epochs; ++e)
    if (retrain_epoch_parallel(encoded, labels, pool) == 0) break;
}

std::vector<int> HdcClassifier::predict_batch(
    std::span<const hdc::IntHV> queries, ThreadPool& pool) const {
  GENERIC_SPAN("predict.batch");
  std::vector<int> out(queries.size(), 0);
  pool.parallel_for(queries.size(),
                    [&](std::size_t begin, std::size_t end, std::size_t) {
                      GENERIC_SPAN("predict.chunk");
                      for (std::size_t i = begin; i < end; ++i)
                        out[i] = predict(queries[i]);
                    });
  return out;
}

std::vector<int> HdcClassifier::predict_reduced_batch(
    std::span<const hdc::IntHV> queries, std::size_t dims_used, NormMode mode,
    ThreadPool& pool) const {
  GENERIC_SPAN("predict.batch");
  std::vector<int> out(queries.size(), 0);
  pool.parallel_for(queries.size(),
                    [&](std::size_t begin, std::size_t end, std::size_t) {
                      GENERIC_SPAN("predict.chunk");
                      for (std::size_t i = begin; i < end; ++i) {
                        GENERIC_COUNTER_ADD("predict.queries", 1);
                        out[i] = predict_reduced(queries[i], dims_used, mode);
                      }
                    });
  return out;
}

std::vector<int> HdcClassifier::predict_masked_batch(
    std::span<const hdc::IntHV> queries, const std::vector<bool>& chunk_ok,
    ThreadPool& pool) const {
  GENERIC_SPAN("predict.batch");
  std::vector<int> out(queries.size(), 0);
  pool.parallel_for(queries.size(),
                    [&](std::size_t begin, std::size_t end, std::size_t) {
                      GENERIC_SPAN("predict.chunk");
                      for (std::size_t i = begin; i < end; ++i) {
                        GENERIC_COUNTER_ADD("predict.queries", 1);
                        out[i] = predict_masked(queries[i], chunk_ok);
                      }
                    });
  return out;
}

namespace {

/// Fixed-order argmax with runner-up tracking. `scorer(c)` must be the
/// exact score expression the plain predict path uses so cls matches it
/// bit-for-bit. The margin is NORMALIZED: (best - second) / (|best| +
/// |second|), which lands in [0, 1] regardless of dims, bit width or norm
/// magnitudes — so downstream consumers (the lifecycle drift detector) can
/// use scale-free thresholds. 0 with fewer than two classes or two zero
/// scores.
template <typename Scorer>
Prediction argmax_with_margin(std::size_t num_classes, Scorer&& scorer) {
  Prediction p;
  double best = -std::numeric_limits<double>::infinity();
  double second = -std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < num_classes; ++c) {
    const double s = scorer(c);
    if (s > best) {
      second = best;
      best = s;
      p.cls = static_cast<int>(c);
    } else if (s > second) {
      second = s;
    }
  }
  if (num_classes >= 2) {
    const double denom = std::abs(best) + std::abs(second);
    p.margin = denom > 0.0 ? (best - second) / denom : 0.0;
  }
  return p;
}

}  // namespace

std::vector<Prediction> HdcClassifier::predict_reduced_margin_batch(
    std::span<const hdc::IntHV> queries, std::size_t dims_used, NormMode mode,
    ThreadPool& pool) const {
  GENERIC_SPAN("predict.batch");
  std::vector<Prediction> out(queries.size());
  pool.parallel_for(queries.size(),
                    [&](std::size_t begin, std::size_t end, std::size_t) {
                      GENERIC_SPAN("predict.chunk");
                      for (std::size_t i = begin; i < end; ++i) {
                        GENERIC_COUNTER_ADD("predict.queries", 1);
                        out[i] = argmax_with_margin(
                            num_classes_, [&](std::size_t c) {
                              return score(queries[i], c, dims_used, mode);
                            });
                      }
                    });
  return out;
}

std::vector<Prediction> HdcClassifier::predict_masked_margin_batch(
    std::span<const hdc::IntHV> queries, const std::vector<bool>& chunk_ok,
    ThreadPool& pool) const {
  GENERIC_SPAN("predict.batch");
  if (std::find(chunk_ok.begin(), chunk_ok.end(), true) == chunk_ok.end())
    throw std::invalid_argument("predict_masked_margin_batch: all masked");
  std::vector<Prediction> out(queries.size());
  pool.parallel_for(queries.size(),
                    [&](std::size_t begin, std::size_t end, std::size_t) {
                      GENERIC_SPAN("predict.chunk");
                      for (std::size_t i = begin; i < end; ++i) {
                        GENERIC_COUNTER_ADD("predict.queries", 1);
                        out[i] = argmax_with_margin(
                            num_classes_, [&](std::size_t c) {
                              return score_masked(queries[i], c, chunk_ok);
                            });
                      }
                    });
  return out;
}

void HdcClassifier::recompute_norms() {
  for (std::size_t c = 0; c < num_classes_; ++c) recompute_norms(c);
}

void HdcClassifier::recompute_norms(std::size_t cls) {
  const auto& c = classes_.at(cls);
  for (std::size_t k = 0; k < num_chunks_; ++k) {
    std::int64_t acc = 0;
    for (std::size_t j = k * chunk_; j < (k + 1) * chunk_; ++j)
      acc += static_cast<std::int64_t>(c[j]) * c[j];
    chunk_norms_[cls][k] = acc;
  }
}

std::int64_t HdcClassifier::reduced_norm(std::size_t c, std::size_t dims_used,
                                         NormMode mode) const {
  const std::size_t chunks =
      mode == NormMode::kConstant ? num_chunks_ : dims_used / chunk_;
  std::int64_t acc = 0;
  for (std::size_t k = 0; k < chunks; ++k) acc += chunk_norms_[c][k];
  return acc;
}

double HdcClassifier::score(const hdc::IntHV& query, std::size_t cls,
                            std::size_t dims_used, NormMode mode) const {
  if (query.size() != dims_)
    throw std::invalid_argument("score: query dimension mismatch");
  if (dims_used == 0 || dims_used > dims_ || dims_used % chunk_ != 0)
    throw std::invalid_argument("score: dims_used must be a chunk multiple");
  const auto& c = classes_.at(cls);
  std::int64_t dot = 0;
  for (std::size_t j = 0; j < dims_used; ++j)
    dot += static_cast<std::int64_t>(query[j]) * c[j];
  const std::int64_t n2 = reduced_norm(cls, dims_used, mode);
  if (n2 == 0) return 0.0;
  const double num = static_cast<double>(dot) * static_cast<double>(std::abs(dot));
  return num / static_cast<double>(n2);
}

double HdcClassifier::score_masked(const hdc::IntHV& query, std::size_t cls,
                                   const std::vector<bool>& chunk_ok) const {
  if (query.size() != dims_)
    throw std::invalid_argument("score_masked: query dimension mismatch");
  if (chunk_ok.size() != num_chunks_)
    throw std::invalid_argument("score_masked: mask size mismatch");
  const auto& c = classes_.at(cls);
  std::int64_t dot = 0;
  std::int64_t n2 = 0;
  for (std::size_t k = 0; k < num_chunks_; ++k) {
    if (!chunk_ok[k]) continue;
    for (std::size_t j = k * chunk_; j < (k + 1) * chunk_; ++j)
      dot += static_cast<std::int64_t>(query[j]) * c[j];
    n2 += chunk_norms_[cls][k];
  }
  if (n2 == 0) return 0.0;
  const double num =
      static_cast<double>(dot) * static_cast<double>(std::abs(dot));
  return num / static_cast<double>(n2);
}

int HdcClassifier::predict_masked(const hdc::IntHV& query,
                                  const std::vector<bool>& chunk_ok) const {
  if (std::find(chunk_ok.begin(), chunk_ok.end(), true) == chunk_ok.end())
    throw std::invalid_argument("predict_masked: all chunks masked");
  int best = 0;
  double best_score = -std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < num_classes_; ++c) {
    const double s = score_masked(query, c, chunk_ok);
    if (s > best_score) {
      best_score = s;
      best = static_cast<int>(c);
    }
  }
  return best;
}

int HdcClassifier::predict(const hdc::IntHV& query) const {
  GENERIC_COUNTER_ADD("predict.queries", 1);
  return predict_reduced(query, dims_, NormMode::kUpdated);
}

int HdcClassifier::predict_reduced(const hdc::IntHV& query,
                                   std::size_t dims_used,
                                   NormMode mode) const {
  int best = 0;
  double best_score = -std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < num_classes_; ++c) {
    const double s = score(query, c, dims_used, mode);
    if (s > best_score) {
      best_score = s;
      best = static_cast<int>(c);
    }
  }
  return best;
}

void HdcClassifier::quantize(int bit_width) {
  if (bit_width < 1 || bit_width > 16)
    throw std::invalid_argument("quantize: bit_width must be in [1, 16]");
  std::int64_t max_abs = 1;
  for (const auto& c : classes_)
    for (auto v : c) max_abs = std::max<std::int64_t>(max_abs, std::abs(v));
  if (bit_width == 1) {
    // Sign model: {-1, +1}.
    for (auto& c : classes_)
      for (auto& v : c) v = v >= 0 ? 1 : -1;
  } else {
    const auto qmax =
        static_cast<double>((1 << (bit_width - 1)) - 1);  // e.g. 127 for 8b
    // Clip at min(max_abs, qmax * sigma): for wide words this is max_abs
    // (nothing clips); for 2-bit models it keeps the ternary {-1,0,+1}
    // levels populated instead of rounding the Gaussian bulk to zero.
    double sq_sum = 0.0;
    std::size_t count = 0;
    for (const auto& c : classes_)
      for (auto v : c) {
        sq_sum += static_cast<double>(v) * v;
        ++count;
      }
    const double sigma = std::sqrt(sq_sum / static_cast<double>(count));
    const double clip =
        std::min(static_cast<double>(max_abs), std::max(1.0, qmax * sigma));
    const double scale = qmax / clip;
    for (auto& c : classes_)
      for (auto& v : c)
        v = static_cast<std::int32_t>(std::clamp<long>(
            std::lround(v * scale), static_cast<long>(-qmax - 1),
            static_cast<long>(qmax)));
  }
  bit_width_ = bit_width;
  recompute_norms();
}

void HdcClassifier::inject_bit_flips(double rate, Rng& rng) {
  if (rate <= 0.0) return;
  const int bw = bit_width_;
  const std::int32_t mask =
      bw >= 32 ? -1 : static_cast<std::int32_t>((1u << bw) - 1u);
  for (auto& c : classes_) {
    for (auto& v : c) {
      if (bw == 1) {
        // Bipolar 1-bit storage: bit 1 == +1, bit 0 == -1 (NOT two's
        // complement, where -1 would alias +1 in the low bit).
        std::uint32_t word = v > 0 ? 1u : 0u;
        if (rng.bernoulli(rate)) word ^= 1u;
        v = word ? 1 : -1;
        continue;
      }
      // Interpret the element as a bw-bit two's-complement word, as the
      // class SRAM stores it.
      auto word = static_cast<std::uint32_t>(v) & static_cast<std::uint32_t>(mask);
      for (int b = 0; b < bw; ++b)
        if (rng.bernoulli(rate)) word ^= (1u << b);
      // Sign-extend back.
      std::int32_t out = static_cast<std::int32_t>(word);
      if (bw < 32 && (word & (1u << (bw - 1)))) out -= (1 << bw);
      v = out;
    }
  }
}

}  // namespace generic::model
