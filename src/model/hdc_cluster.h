// HDC clustering (paper §2.1, §4.2.3), the HDCluster-style algorithm the
// GENERIC ASIC runs for unsupervised learning on edge:
//   * the first k encoded inputs seed the centroid hypervectors;
//   * each epoch assigns every encoding to its most-similar centroid
//     (cosine) while accumulating a *copy* model from the assignments;
//   * the copy replaces the centroids for the next epoch (the live model
//     stays fixed within an epoch, unlike classification retraining).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "hdc/hypervector.h"

namespace generic::model {

class HdcCluster {
 public:
  HdcCluster(std::size_t dims, std::size_t k);

  std::size_t dims() const { return dims_; }
  std::size_t k() const { return k_; }

  /// Run the full algorithm; returns the number of epochs executed (stops
  /// early once assignments stop changing).
  std::size_t fit(std::span<const hdc::IntHV> encoded,
                  std::size_t max_epochs = 20);

  /// Index of the most similar centroid.
  int assign(const hdc::IntHV& query) const;

  /// Assignments for a whole set.
  std::vector<int> labels(std::span<const hdc::IntHV> encoded) const;

  const std::vector<hdc::IntHV>& centroids() const { return centroids_; }

 private:
  std::size_t dims_;
  std::size_t k_;
  std::vector<hdc::IntHV> centroids_;
  std::vector<double> centroid_norms_;  // cached ||C||^2 per epoch

  void refresh_norms();
};

}  // namespace generic::model
