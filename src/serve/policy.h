// Deterministic serving policies: the dimension ladder, retry backoff and
// the SLO-driven degradation controller (docs/serving.md).
//
// Every policy here is a pure function of its inputs plus an explicit Rng
// stream — no wall clock, no global state — so the engine's decisions
// replay identically for a fixed (trace, config, seed) regardless of how
// the surrounding computation is scheduled.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "serve/types.h"

namespace generic::serve {

/// The degradation ladder: full dimensions first, then repeated halving,
/// every rung a positive multiple of `chunk`, floored at
/// max(min_dims rounded up to a chunk, chunk). For dims=4096, chunk=128,
/// min_dims=512 this is the paper's Fig. 5 ladder {4096, 2048, 1024, 512}.
std::vector<std::size_t> dims_ladder(std::size_t dims, std::size_t chunk,
                                     std::size_t min_dims);

/// Exponential backoff with deterministic jitter:
///   delay(attempt) = base * 2^(attempt-1) * (1 + jitter * (2u - 1))
/// where u is drawn from the caller's per-request rng stream. attempt is
/// 1-based (the attempt that just failed).
class BackoffPolicy {
 public:
  BackoffPolicy(std::uint64_t base_us, double jitter)
      : base_us_(base_us), jitter_(jitter) {}

  std::uint64_t delay_us(std::uint32_t attempt, Rng& rng) const;

 private:
  std::uint64_t base_us_;
  double jitter_;
};

/// SLO-driven ladder controller. Tracks an EWMA of served latencies; when
/// the EWMA crosses the SLO target it steps one rung down (fewer
/// dimensions => proportionally cheaper service); when the EWMA falls
/// below step_up_frac * slo AND the queue depth observed at the decision
/// point is at or below low_water, it steps back up. A cooldown of
/// `cooldown` completions between moves keeps the ladder from thrashing.
///
/// All state is updated at completion events in virtual-time order, so the
/// rung sequence is deterministic.
class DegradeController {
 public:
  DegradeController(std::vector<std::size_t> ladder, const ServeConfig& cfg);

  /// Dimensions the next service attempt should use.
  std::size_t dims() const { return ladder_[rung_]; }
  std::size_t rung() const { return rung_; }
  const std::vector<std::size_t>& ladder() const { return ladder_; }

  /// Feed one served-request latency plus the pending-queue depth at the
  /// moment of the decision; may move the rung.
  void on_completion(std::uint64_t latency_us, std::size_t queue_depth);

  /// Step one rung down regardless of EWMA or cooldown — the graceful
  /// degradation override for events latency cannot see (an encoder that
  /// must serve masked encodings with no seed to scrub from). Resets the
  /// cooldown so the latency path does not immediately re-step. Returns
  /// false when already at the bottom rung.
  bool force_step_down();

  std::uint64_t steps_down() const { return steps_down_; }
  std::uint64_t steps_up() const { return steps_up_; }
  double ewma_us() const { return ewma_us_; }

 private:
  std::vector<std::size_t> ladder_;
  std::size_t rung_ = 0;
  double ewma_us_ = 0.0;
  bool seeded_ = false;
  double alpha_;
  double slo_us_;
  double step_up_frac_;
  std::size_t low_water_;
  std::uint32_t cooldown_;
  std::uint32_t since_change_;
  std::uint64_t steps_down_ = 0;
  std::uint64_t steps_up_ = 0;
};

}  // namespace generic::serve
