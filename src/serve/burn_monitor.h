// Deterministic SLO burn-rate monitor (docs/observability.md).
//
// Error-budget framing: with an availability target slo_target (fraction of
// requests that must finish within the latency SLO), the error budget is
// 1 - slo_target. The burn rate over a window is
//
//   burn = bad_fraction(window) / (1 - slo_target)
//
// so burn == 1 means "spending budget exactly as provisioned" and burn == 14
// over a short window means a fast outage. Following the classic
// multi-window multi-burn-rate alerting recipe, an alert FIRES when both a
// fast (short) and a slow (long) rolling window exceed their thresholds —
// the fast window gives reaction time, the slow window suppresses blips —
// and CLEARS with hysteresis once both fall under half their thresholds.
//
// Windows roll over VIRTUAL time and observations arrive in the engine's
// deterministic completion order, so the alert edges land on exact virtual
// timestamps: they are part of the byte-stable generic.serve.v1 /
// generic.chaos.v1 reports and of the rtrace stream (kSloAlert).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "serve/types.h"

namespace generic::serve {

/// One alert edge on the virtual timeline.
struct BurnAlert {
  std::uint64_t vt = 0;      ///< virtual time of the edge
  bool fired = true;         ///< true: alert fired; false: alert cleared
  double fast_burn = 0.0;    ///< fast-window burn rate at the edge
  double slow_burn = 0.0;    ///< slow-window burn rate at the edge
};

class BurnMonitor {
 public:
  explicit BurnMonitor(const ServeConfig& cfg);

  /// Feed one terminal request outcome at virtual time `vt` (the engine's
  /// resolution order). `good` == finished within the SLO; sheds, timeouts
  /// and failures are bad by definition. Returns an alert edge when this
  /// observation flips the alert state.
  std::optional<BurnAlert> observe(std::uint64_t vt, bool good);

  bool active() const { return active_; }
  double fast_burn() const;
  double slow_burn() const;

 private:
  struct Window {
    std::uint64_t span_us;
    std::deque<std::pair<std::uint64_t, bool>> events;  ///< (vt, good)
    std::uint64_t bad = 0;

    void add(std::uint64_t vt, bool good);
    void prune(std::uint64_t now);
    double burn(double budget) const;
    std::size_t total() const { return events.size(); }
  };

  double budget_;  ///< 1 - slo_target, clamped away from zero
  double fast_threshold_;
  double slow_threshold_;
  std::size_t min_events_;
  Window fast_;
  Window slow_;
  bool active_ = false;
};

}  // namespace generic::serve
