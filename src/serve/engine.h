// Resilient in-process serving engine (docs/serving.md).
//
// Architecture: producers push requests (in arrival order) through a
// BoundedQueue into a single control thread. The control thread owns every
// serving decision — admission / shedding, deadline expiry, transient-fault
// retry with backoff, and the SLO-driven degradation ladder — and makes
// them all on the VIRTUAL clock carried by the requests plus the
// deterministic service-cost model, never the wall clock. Heavy compute
// (the actual predictions) is deferred into fixed-size per-rung batches
// flushed through HdcClassifier::predict_reduced_batch /
// predict_masked_batch, whose results are bit-identical at any pool lane
// count. Consequence: the generic.serve.v1 report is byte-identical for a
// fixed (trace, config, seed) regardless of --threads.
//
// Virtual-time model:
//  * cfg.servers service lanes; a request in service occupies one lane for
//    service_base_us * (active_chunks / num_chunks) * (1 +- jitter) virtual
//    microseconds — dimension reduction buys proportionally cheaper service,
//    which is the §4.3.3 mechanism the ladder exploits.
//  * Each service attempt suffers a transient upset with probability
//    cfg.fault_rate (per-request rng stream). An upset injects real bit
//    flips (resilience::FaultSpec kTransient at fault_bit_rate) into a copy
//    of the query; corruption is detected by a modeled parity check
//    (compare against the original) and retried after exponential backoff,
//    up to max_attempts, then kFailed.
//  * Arrivals at pending depth >= high_water are shed immediately; queued
//    requests whose deadline passed fail fast at dequeue; completions past
//    the deadline resolve kTimeout.
//  * A DegradeController walks the dims ladder on the served-latency EWMA.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "hdc/hypervector.h"
#include "model/hdc_classifier.h"
#include "obs/obs.h"
#include "serve/bounded_queue.h"
#include "serve/burn_monitor.h"
#include "serve/encoder_hook.h"
#include "serve/lifecycle_hook.h"
#include "serve/policy.h"
#include "serve/types.h"

namespace generic::serve {

/// Per-ladder-rung serving tally (accuracy-at-degradation, Figure 5 view).
struct RungStats {
  std::size_t dims = 0;           ///< prefix dimensions of this rung
  std::size_t active_chunks = 0;  ///< ok chunks actually scored in the rung
  std::uint64_t served = 0;
  std::uint64_t correct = 0;
  obs::HistogramSnapshot latency;  ///< served latencies of this rung, virtual us
};

/// One hot-swap (or rejected-shadow rollback) on the virtual timeline.
struct SwapEvent {
  std::uint64_t vt = 0;       ///< virtual install / rejection time
  std::uint64_t version = 0;  ///< lifecycle model version
  bool rollback = false;      ///< true: shadow failed validation, not installed
};

/// Serving tally attributed to one installed model version.
struct VersionStats {
  std::uint64_t version = 0;
  std::uint64_t served = 0;
  std::uint64_t correct = 0;
};

/// One encoder-memory incident phase on the virtual timeline, as applied
/// by the control thread (the report-side mirror of EncoderUpdate).
struct EncoderFaultEvent {
  std::uint64_t vt = 0;
  EncoderUpdate::Phase phase = EncoderUpdate::Phase::kDetect;
  std::size_t faulty_rows = 0;    ///< rows flagged faulty (incl. id seed)
  bool id_seed_faulty = false;
  std::size_t scrubbed_rows = 0;  ///< rows rematerialized (scrub phases)
  bool scrub_verified = false;    ///< scrubbed rows passed CRC verification
  bool stepped_ladder = false;    ///< forced one rung down on apply
};

/// Everything generic.serve.v1 reports. Deliberately free of wall-clock and
/// thread-count fields: equal inputs render to equal bytes.
struct ServeReport {
  ServeConfig config;
  std::uint64_t requests = 0;
  std::uint64_t makespan_us = 0;   ///< last virtual finish time
  double throughput_rps = 0.0;     ///< served per virtual second
  std::array<std::uint64_t, kNumOutcomes> outcomes{};
  std::uint64_t served = 0;        ///< ok + retried + degraded
  std::uint64_t attempts = 0;      ///< service attempts consumed
  std::uint64_t retries = 0;       ///< attempts beyond each request's first
  obs::HistogramSnapshot latency;  ///< served latencies, virtual us
  std::uint64_t correct = 0;       ///< served with predicted == label
  std::uint64_t steps_down = 0;
  std::uint64_t steps_up = 0;
  std::size_t final_rung = 0;
  std::vector<RungStats> rungs;
  std::vector<SwapEvent> swaps;        ///< hot-swaps/rollbacks, virtual order
  std::vector<VersionStats> versions;  ///< per-model-version tallies
  std::vector<BurnAlert> slo_alerts;   ///< burn-rate alert edges, virtual order
  std::vector<EncoderFaultEvent> encoder_faults;  ///< encoder incidents,
                                                  ///< virtual order
  std::uint64_t scrubbed_rows = 0;     ///< encoder rows rematerialized, total
};

/// Render as schema `generic.serve.v1`: fixed field order, "%.9g" doubles.
std::string serve_report_to_json(const ServeReport& report);
void write_serve_json(const std::string& path, const ServeReport& report);

class ServeEngine {
 public:
  /// The engine serves `queries` by index; `labels` are the ground truth
  /// used only for the accuracy tallies in the report. `chunk_ok` (size
  /// model.num_chunks(), empty == all ok) marks faulty dimension blocks:
  /// serving then scores only ok chunks inside the active rung prefix
  /// (predict_masked), the graceful-degradation path of
  /// resilience::BlockGuard. Throws if any ladder rung would have no ok
  /// chunk to score.
  ///
  /// `lifecycle` (optional, not owned, must outlive the engine) receives a
  /// ServedObservation per served request and is polled for validated model
  /// updates at deterministic virtual-time points; see lifecycle_hook.h.
  /// Installed models must match the initial model's geometry exactly.
  ///
  /// `encoder` (optional, not owned, must outlive the engine) is polled at
  /// the same virtual-time points for encoder-memory incidents; a delivered
  /// update may swap the serving query table (corrupt / masked / scrubbed
  /// re-encodings of the same query set; see encoder_hook.h).
  ServeEngine(const model::HdcClassifier& model,
              std::span<const hdc::IntHV> queries, std::span<const int> labels,
              const ServeConfig& cfg, ThreadPool& pool,
              std::vector<bool> chunk_ok = {},
              ModelLifecycle* lifecycle = nullptr,
              EncoderMemory* encoder = nullptr);
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Enqueue one request; blocks while the admission queue is at capacity
  /// (backpressure). Requests must be submitted in non-decreasing
  /// arrival_us order with distinct ids. The future resolves when the
  /// request reaches a terminal outcome.
  ResponseFuture submit(const Request& req);

  /// Close admission, drain everything in flight, join the control thread
  /// and return the final report. Call exactly once, after the last
  /// submit(); every future is resolved when this returns.
  ServeReport finish();

  /// Synchronously advance the engine's virtual clock to `vt`: every
  /// completion/retry scheduled at or before `vt` is processed, the
  /// lifecycle/encoder hooks are polled, and every deferred prediction
  /// batch is flushed (so futures of requests finishing <= vt resolve
  /// before this returns). Returns the virtual time of the next scheduled
  /// internal event, or kNoEvent when the engine is idle — the handle a
  /// discrete-event coordinator (fleet::run_closed_loop) needs to
  /// interleave several engines deterministically. Requests submitted
  /// after a tick keep the non-decreasing-arrival contract relative to
  /// other REQUESTS only; the tick itself imposes no ordering.
  std::uint64_t tick(std::uint64_t vt);

  /// tick() return value when no internal event is scheduled.
  static constexpr std::uint64_t kNoEvent = ~0ull;

  const std::vector<std::size_t>& ladder() const { return ladder_; }

 private:
  struct InFlight {
    Request req;
    ResponseFuture future;
    Rng rng;
    std::uint32_t attempts = 0;
    std::size_t rung = 0;    ///< ladder rung of the (last) service attempt
    bool upset = false;      ///< current attempt drew a transient upset
    Outcome outcome = Outcome::kFailed;  ///< set when terminal
    std::uint64_t finish_us = 0;
    std::uint64_t epoch = 0;  ///< model epoch at deferral (swap invariant)
  };
  struct Event {
    std::uint64_t vt = 0;
    std::uint64_t seq = 0;  ///< schedule order: deterministic tie-break
    enum Kind { kCompletion, kRetry } kind = kCompletion;
    InFlight* f = nullptr;
  };
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.vt != b.vt) return a.vt > b.vt;
      return a.seq > b.seq;  // min-heap on (vt, seq)
    }
  };
  /// One ingress item: a request, or a synchronous tick barrier whose
  /// future the control thread resolves with the next-event time
  /// (smuggled in Response::finish_us).
  struct Item {
    Request req;
    ResponseFuture future;
    bool tick = false;
  };

  void control_loop();
  void on_tick(std::uint64_t vt, ResponseFuture& future);
  void advance_to(std::uint64_t vt_limit);
  void on_arrival(Item&& item);
  void start_service(InFlight* f, std::uint64_t now);
  void on_completion(InFlight* f, std::uint64_t now);
  void on_retry_timer(InFlight* f, std::uint64_t now);
  void pull_pending(std::uint64_t now);
  void resolve_unserved(InFlight* f, Outcome o, std::uint64_t now);
  void defer_served(InFlight* f, std::uint64_t now);
  void flush_rung(std::size_t rung);
  void feed_controller(std::uint64_t now, std::uint64_t latency_us);
  void feed_burn(std::uint64_t vt, bool good);
  void poll_lifecycle(std::uint64_t now);
  void poll_encoder(std::uint64_t now);

  /// Current serving model. Starts at the constructor-provided reference;
  /// after a hot-swap it points into owned_model_ (the engine co-owns every
  /// installed version so in-flight readers can never dangle).
  const model::HdcClassifier* model_;
  std::shared_ptr<const model::HdcClassifier> owned_model_;
  std::span<const hdc::IntHV> queries_;
  std::span<const int> labels_;
  ServeConfig cfg_;
  ThreadPool& pool_;
  ModelLifecycle* lifecycle_ = nullptr;
  EncoderMemory* encoder_ = nullptr;

  std::vector<std::size_t> ladder_;
  /// Per rung: combined chunk mask (ok AND inside the rung prefix) plus the
  /// count of active chunks; masks_[r] is empty when the whole prefix is ok
  /// (the cheaper predict_reduced path applies).
  std::vector<std::vector<bool>> rung_mask_;
  std::vector<std::size_t> rung_active_;
  bool any_faulty_ = false;

  BoundedQueue<Item> ingress_;
  std::thread control_;

  // ---- Control-thread state (touched only by control_loop) ----
  std::vector<std::unique_ptr<InFlight>> inflight_;
  std::vector<Event> events_;  // heap ordered by EventAfter
  std::uint64_t next_seq_ = 0;
  std::deque<InFlight*> pending_;
  std::size_t free_servers_ = 0;
  std::uint64_t clock_us_ = 0;
  BackoffPolicy backoff_;
  DegradeController controller_;
  BurnMonitor burn_;
  std::vector<std::vector<InFlight*>> batch_;  // deferred predicts per rung
  obs::Histogram latency_;                     // served latency, virtual us
  std::vector<obs::Histogram> rung_latency_;   // per-rung served latency
  std::uint64_t model_epoch_ = 0;   // bumped at every install
  std::uint64_t model_version_ = 0; // lifecycle version currently serving
  ServeReport report_;
  bool finished_ = false;

  /// Registry metrics resolved once at construction, namespaced by
  /// cfg.model_id ("serve.requests{model=<id>}"; empty id keeps the legacy
  /// process-global "serve.requests") so several engines in one process
  /// tally independently. All null when instrumentation is compiled out.
  struct Metrics {
    obs::Counter* requests = nullptr;
    obs::Counter* upsets = nullptr;
    obs::Counter* swaps = nullptr;
    obs::Counter* rollbacks = nullptr;
    obs::Counter* slo_alerts = nullptr;
    obs::Counter* encoder_faults = nullptr;
    obs::Counter* encoder_scrubs = nullptr;
    obs::Histogram* latency_us = nullptr;
  };
  Metrics metrics_;
};

}  // namespace generic::serve
