// The engine side of encoder-memory resilience (docs/resilience.md).
//
// ServeEngine serves pre-encoded queries by index and does not know how
// they were encoded; when the encoder's item/level SRAM takes a fault, the
// thing that actually changes from the engine's point of view is the query
// table itself — every request encoded through a damaged level row scores
// differently. This seam mirrors lifecycle_hook.h for that axis: an
// EncoderMemory is polled by the control thread at the same deterministic
// virtual-time points as the model lifecycle and hands back timeline
// entries that swap in a re-encoded query table (corrupt, masked, or
// scrubbed-clean) plus the bookkeeping the report and rtrace need.
//
// On a table swap the engine flushes every deferred prediction batch
// against the outgoing table FIRST and bumps its model epoch — no batch
// ever spans an encoder swap, the same invariant hot model swaps keep.
//
// The concrete producer lives in src/chaos (encoder_chaos.h), which owns a
// real GenericEncoder + resilience::EncoderGuard and precomputes the whole
// fault → detect → mask → scrub timeline before the engine starts; this
// header keeps serve free of a dependency on the encoding layer.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "hdc/hypervector.h"

namespace generic::serve {

/// One encoder-memory incident phase, delivered at virtual time `vt`.
struct EncoderUpdate {
  enum class Phase {
    kCorrupt,  ///< fault burst landed; table is encoded through damage
    kDetect,   ///< guard scan counted the damage; serving unchanged
    kMask,     ///< table re-encoded around corrupted rows (encode_masked)
    kScrub,    ///< rows rematerialized from seed; table is clean again
  };
  Phase phase = Phase::kDetect;
  std::uint64_t vt = 0;
  /// Replacement query table; empty == keep serving the current one
  /// (kDetect reports without changing what is served). Must match the
  /// engine's query-set size and outlive the engine.
  std::span<const hdc::IntHV> queries;
  std::size_t faulty_rows = 0;   ///< rows the scan flagged (incl. id seed)
  bool id_seed_faulty = false;   ///< the rotating id seed row is among them
  std::size_t scrubbed_rows = 0; ///< rows rewritten (kScrub only)
  bool scrub_verified = false;   ///< every scrubbed row passed its CRC
  /// Graceful degradation: no seed to scrub from, so serving continues on
  /// masked encodings — force the dims ladder one rung down to buy margin.
  bool step_ladder = false;
};

std::string_view encoder_phase_name(EncoderUpdate::Phase phase);

class EncoderMemory {
 public:
  virtual ~EncoderMemory() = default;

  /// `now` is the engine's current virtual time. Return due updates one at
  /// a time, oldest first; the engine applies each and keeps polling.
  virtual std::optional<EncoderUpdate> poll(std::uint64_t now) = 0;
};

/// A precomputed encoder-incident timeline: entries fire in virtual-time
/// order once their vt has passed. The hook owns every replacement table,
/// so spans handed to the engine stay valid for the hook's lifetime —
/// construct it before the engine and keep it alive past finish().
class ScriptedEncoderFaults final : public EncoderMemory {
 public:
  struct Entry {
    EncoderUpdate meta;  ///< meta.queries is ignored; `table` wins
    std::vector<hdc::IntHV> table;  ///< empty == keep the current table
  };

  explicit ScriptedEncoderFaults(std::vector<Entry> entries)
      : entries_(std::move(entries)) {
    std::stable_sort(entries_.begin(), entries_.end(),
                     [](const Entry& a, const Entry& b) {
                       return a.meta.vt < b.meta.vt;
                     });
  }

  std::optional<EncoderUpdate> poll(std::uint64_t now) override {
    if (next_ >= entries_.size() || entries_[next_].meta.vt > now)
      return std::nullopt;
    Entry& e = entries_[next_++];
    EncoderUpdate upd = e.meta;
    upd.queries = e.table;
    return upd;
  }

 private:
  std::vector<Entry> entries_;
  std::size_t next_ = 0;
};

inline std::string_view encoder_phase_name(EncoderUpdate::Phase phase) {
  switch (phase) {
    case EncoderUpdate::Phase::kCorrupt:
      return "corrupt";
    case EncoderUpdate::Phase::kDetect:
      return "detect";
    case EncoderUpdate::Phase::kMask:
      return "mask";
    case EncoderUpdate::Phase::kScrub:
      return "scrub";
  }
  return "unknown";
}

}  // namespace generic::serve
