// Bounded multi-producer / multi-consumer queue — the admission buffer of
// the serving engine (docs/serving.md).
//
// Semantics, chosen for a serving path rather than a generic channel:
//  * bounded — push() blocks when the queue is at capacity (backpressure
//    into the producer), try_push() refuses instead (the caller sheds);
//  * closable — close() wakes every waiter; pushes after close fail, pops
//    drain whatever is left and then return nullopt, so a consumer loop
//    `while (auto item = q.pop())` terminates exactly when the producers
//    are done AND the queue is empty;
//  * FIFO — pop order equals push order (a single mutex serializes both
//    ends; per-producer order is therefore globally consistent, which is
//    what makes the engine's arrival processing deterministic when the
//    producer emits a monotone virtual-time trace).
//
// This is deliberately a mutex+condvar queue, not a lock-free ring: the
// serving engine's unit of work is an entire inference (~10^5 ops), so
// queue overhead is noise, and the simple model is trivially correct
// under TSan (tests/serve/bounded_queue_test.cpp runs an MPMC stress).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace generic::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  std::size_t capacity() const { return capacity_; }

  /// Current depth. Racy by nature (another thread may push/pop right
  /// after); use only for monitoring, never for admission decisions.
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  /// Block until there is room, then enqueue. Returns false (without
  /// enqueuing) when the queue was closed first.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Enqueue only if there is room right now; false when full or closed.
  bool try_push(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Block until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Dequeue only if an item is available right now.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// No more pushes will be accepted; blocked producers and consumers wake.
  /// Items already queued remain poppable.
  void close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace generic::serve
