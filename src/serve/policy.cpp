#include "serve/policy.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace generic::serve {

std::string_view outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kOk: return "ok";
    case Outcome::kRetried: return "retried";
    case Outcome::kDegraded: return "degraded";
    case Outcome::kShed: return "shed";
    case Outcome::kTimeout: return "timeout";
    case Outcome::kFailed: return "failed";
  }
  return "unknown";
}

std::vector<std::size_t> dims_ladder(std::size_t dims, std::size_t chunk,
                                     std::size_t min_dims) {
  if (dims == 0 || chunk == 0 || dims % chunk != 0)
    throw std::invalid_argument("dims_ladder: dims must be a chunk multiple");
  // Floor rounded up to a whole chunk, never above dims, never below one
  // chunk (predict with zero chunks is meaningless).
  std::size_t floor_dims = std::max(min_dims, chunk);
  floor_dims = ((floor_dims + chunk - 1) / chunk) * chunk;
  floor_dims = std::min(floor_dims, dims);

  std::vector<std::size_t> ladder;
  for (std::size_t d = dims; d > floor_dims; d /= 2) {
    // Halving can leave a non-chunk multiple (e.g. 384/2); round down to
    // the chunk grid so every rung is predict_reduced-legal.
    const std::size_t rung = (d / chunk) * chunk;
    if (ladder.empty() || ladder.back() != rung) ladder.push_back(rung);
  }
  if (ladder.empty() || ladder.back() != floor_dims)
    ladder.push_back(floor_dims);
  return ladder;
}

std::uint64_t BackoffPolicy::delay_us(std::uint32_t attempt, Rng& rng) const {
  if (attempt == 0) throw std::invalid_argument("backoff: attempt is 1-based");
  const double exp = static_cast<double>(base_us_) *
                     std::pow(2.0, static_cast<double>(attempt - 1));
  const double u = rng.uniform();
  const double scaled = exp * (1.0 + jitter_ * (2.0 * u - 1.0));
  return static_cast<std::uint64_t>(std::llround(std::max(scaled, 1.0)));
}

DegradeController::DegradeController(std::vector<std::size_t> ladder,
                                     const ServeConfig& cfg)
    : ladder_(std::move(ladder)),
      alpha_(cfg.ewma_alpha),
      slo_us_(static_cast<double>(cfg.slo_us)),
      step_up_frac_(cfg.step_up_frac),
      low_water_(cfg.low_water),
      cooldown_(cfg.cooldown),
      since_change_(cfg.cooldown) {  // first move allowed immediately
  if (ladder_.empty())
    throw std::invalid_argument("DegradeController: empty ladder");
}

void DegradeController::on_completion(std::uint64_t latency_us,
                                      std::size_t queue_depth) {
  const double lat = static_cast<double>(latency_us);
  ewma_us_ = seeded_ ? alpha_ * lat + (1.0 - alpha_) * ewma_us_ : lat;
  seeded_ = true;
  if (since_change_ < cooldown_) {
    ++since_change_;
    return;
  }
  if (ewma_us_ > slo_us_ && rung_ + 1 < ladder_.size()) {
    ++rung_;
    ++steps_down_;
    since_change_ = 0;
  } else if (ewma_us_ < step_up_frac_ * slo_us_ && rung_ > 0 &&
             queue_depth <= low_water_) {
    --rung_;
    ++steps_up_;
    since_change_ = 0;
  }
}

bool DegradeController::force_step_down() {
  if (rung_ + 1 >= ladder_.size()) return false;
  ++rung_;
  ++steps_down_;
  since_change_ = 0;
  return true;
}

}  // namespace generic::serve
