#include "serve/engine.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "obs/rtrace.h"
#include "resilience/fault_model.h"

namespace generic::serve {

namespace rtrace = obs::rtrace;

namespace {

/// Independent per-request rng stream: id-salted golden-ratio mix of the
/// config seed, expanded by the Rng's own splitmix seeding. Stream identity
/// depends only on (seed, id), never on processing order.
Rng request_rng(std::uint64_t seed, std::uint64_t id) {
  return Rng(seed ^ (0x9E3779B97F4A7C15ULL * (id + 1)));
}

/// "serve.<stem>" for the process-global engine, or
/// "serve.<stem>{model=<id>}" when the config names this instance — the
/// label that keeps several engines in one process from pooling their
/// tallies in the shared registry.
std::string metric_name(const std::string& model_id, const char* stem) {
  std::string name = "serve.";
  name += stem;
  if (!model_id.empty()) {
    name += "{model=";
    name += model_id;
    name += '}';
  }
  return name;
}

void count(obs::Counter* c, std::uint64_t delta = 1) {
  if (c != nullptr) c->add(delta);
}

}  // namespace

ServeEngine::ServeEngine(const model::HdcClassifier& model,
                         std::span<const hdc::IntHV> queries,
                         std::span<const int> labels, const ServeConfig& cfg,
                         ThreadPool& pool, std::vector<bool> chunk_ok,
                         ModelLifecycle* lifecycle, EncoderMemory* encoder)
    : model_(&model),
      queries_(queries),
      labels_(labels),
      cfg_(cfg),
      pool_(pool),
      lifecycle_(lifecycle),
      encoder_(encoder),
      ingress_(cfg.queue_capacity),
      free_servers_(cfg.servers),
      backoff_(cfg.backoff_base_us, cfg.backoff_jitter),
      controller_({1}, cfg),  // placeholder; rebuilt below with the ladder
      burn_(cfg) {
  if (queries_.size() != labels_.size())
    throw std::invalid_argument("ServeEngine: queries/labels size mismatch");
  if (queries_.empty())
    throw std::invalid_argument("ServeEngine: empty query set");
  if (cfg_.servers == 0)
    throw std::invalid_argument("ServeEngine: need at least one server");

  const std::size_t chunk = model_->dims() / model_->num_chunks();
  ladder_ = dims_ladder(model_->dims(), chunk, cfg_.min_dims);
  controller_ = DegradeController(ladder_, cfg_);

  if (!chunk_ok.empty() && chunk_ok.size() != model_->num_chunks())
    throw std::invalid_argument("ServeEngine: chunk_ok size mismatch");
  any_faulty_ =
      std::find(chunk_ok.begin(), chunk_ok.end(), false) != chunk_ok.end();
  rung_mask_.resize(ladder_.size());
  rung_active_.resize(ladder_.size());
  report_.rungs.resize(ladder_.size());
  batch_.resize(ladder_.size());
  rung_latency_ = std::vector<obs::Histogram>(ladder_.size());
  report_.versions.push_back(VersionStats{0, 0, 0});
  for (std::size_t r = 0; r < ladder_.size(); ++r) {
    const std::size_t prefix = ladder_[r] / chunk;
    if (any_faulty_) {
      std::vector<bool> mask(model_->num_chunks(), false);
      std::size_t active = 0;
      for (std::size_t k = 0; k < prefix; ++k) {
        mask[k] = chunk_ok[k];
        if (mask[k]) ++active;
      }
      if (active == 0)
        throw std::invalid_argument(
            "ServeEngine: ladder rung has no healthy chunk");
      rung_mask_[r] = std::move(mask);
      rung_active_[r] = active;
    } else {
      rung_active_[r] = prefix;
    }
    report_.rungs[r].dims = ladder_[r];
    report_.rungs[r].active_chunks = rung_active_[r];
  }

#if GENERIC_OBS_ENABLED
  {
    obs::Registry& reg = obs::Registry::instance();
    metrics_.requests = &reg.counter(metric_name(cfg_.model_id, "requests"));
    metrics_.upsets = &reg.counter(metric_name(cfg_.model_id, "upsets"));
    metrics_.swaps = &reg.counter(metric_name(cfg_.model_id, "swaps"));
    metrics_.rollbacks = &reg.counter(metric_name(cfg_.model_id, "rollbacks"));
    metrics_.slo_alerts =
        &reg.counter(metric_name(cfg_.model_id, "slo_alerts"));
    metrics_.encoder_faults =
        &reg.counter(metric_name(cfg_.model_id, "encoder_faults"));
    metrics_.encoder_scrubs =
        &reg.counter(metric_name(cfg_.model_id, "encoder_scrubs"));
    metrics_.latency_us =
        &reg.histogram(metric_name(cfg_.model_id, "latency_us"));
  }
#endif

  control_ = std::thread([this] {
    obs::set_current_thread_name("serve-control");
    control_loop();
  });
}

ServeEngine::~ServeEngine() {
  if (!finished_) {
    ingress_.close();
    if (control_.joinable()) control_.join();
  }
}

ResponseFuture ServeEngine::submit(const Request& req) {
  ResponseFuture future;
  if (!ingress_.push(Item{req, future, false})) {
    // Closed engine: resolve as shed so no caller ever blocks forever.
    Response r;
    r.outcome = Outcome::kShed;
    r.finish_us = req.arrival_us;
    future.resolve(r);
  }
  return future;
}

std::uint64_t ServeEngine::tick(std::uint64_t vt) {
  ResponseFuture future;
  Request req;
  req.arrival_us = vt;
  if (!ingress_.push(Item{req, future, true})) return kNoEvent;
  // The control thread smuggles the next scheduled event's virtual time in
  // finish_us (kNoEvent when its event heap is empty).
  return future.get().finish_us;
}

ServeReport ServeEngine::finish() {
  if (finished_) throw std::logic_error("ServeEngine::finish called twice");
  ingress_.close();
  control_.join();
  finished_ = true;

  report_.config = cfg_;
  report_.latency = latency_.snapshot();
  for (std::size_t r = 0; r < report_.rungs.size(); ++r)
    report_.rungs[r].latency = rung_latency_[r].snapshot();
  report_.steps_down = controller_.steps_down();
  report_.steps_up = controller_.steps_up();
  report_.final_rung = controller_.rung();
  report_.throughput_rps =
      report_.makespan_us == 0
          ? 0.0
          : static_cast<double>(report_.served) * 1e6 /
                static_cast<double>(report_.makespan_us);
  return report_;
}

// ---- Control thread -------------------------------------------------------

void ServeEngine::control_loop() {
  GENERIC_SPAN("serve.control_loop");
  while (auto item = ingress_.pop()) {
    if (item->tick) {
      on_tick(item->req.arrival_us, item->future);
      continue;
    }
    // Deterministic interleave: everything already scheduled up to and
    // including the arrival instant happens before the arrival itself.
    advance_to(item->req.arrival_us);
    // Lifecycle installs happen at arrival boundaries: a deterministic
    // trace point with a deterministic virtual clock, so the swap position
    // in the served stream is identical for any --threads. Encoder-memory
    // incidents land at the same points for the same reason.
    poll_lifecycle(std::max(clock_us_, item->req.arrival_us));
    poll_encoder(std::max(clock_us_, item->req.arrival_us));
    on_arrival(std::move(*item));
  }
  advance_to(~0ull);  // drain every scheduled completion and retry
  poll_lifecycle(clock_us_);
  poll_encoder(clock_us_);
  for (std::size_t r = 0; r < batch_.size(); ++r) flush_rung(r);
}

void ServeEngine::on_tick(std::uint64_t vt, ResponseFuture& future) {
  // Same deterministic ordering as an arrival at `vt`, minus the arrival:
  // run every event scheduled <= vt, poll the hooks there, then flush every
  // deferred batch so any future finishing <= vt resolves before the
  // coordinator regains control.
  advance_to(vt);
  clock_us_ = std::max(clock_us_, vt);
  poll_lifecycle(clock_us_);
  poll_encoder(clock_us_);
  for (std::size_t r = 0; r < batch_.size(); ++r) flush_rung(r);
  Response r;
  r.outcome = Outcome::kOk;
  // events_ is a min-heap on (vt, seq): front() is the next scheduled event.
  r.finish_us = events_.empty() ? kNoEvent : events_.front().vt;
  future.resolve(r);
}

void ServeEngine::poll_encoder(std::uint64_t now) {
  if (encoder_ == nullptr) return;
  while (auto upd = encoder_->poll(now)) {
    const std::uint64_t vt = std::max(now, upd->vt);
    if (!upd->queries.empty()) {
      if (upd->queries.size() != queries_.size())
        throw std::invalid_argument(
            "ServeEngine: swapped-in encoder table size mismatch");
      // Same invariant as a model swap: flush every deferred batch against
      // the outgoing query table first, then bump the epoch so flush_rung
      // can assert no batch straddled the swap.
      std::size_t deferred = 0;
      for (const auto& b : batch_) deferred += b.size();
      rtrace::record(rtrace::EventKind::kSwapFlush, vt, rtrace::kNoRequest,
                     model_version_,
                     static_cast<std::uint32_t>(controller_.rung()),
                     static_cast<std::int64_t>(deferred));
      for (std::size_t r = 0; r < batch_.size(); ++r) flush_rung(r);
      queries_ = upd->queries;
      ++model_epoch_;
    }
    const auto faulty = static_cast<std::int64_t>(upd->faulty_rows);
    switch (upd->phase) {
      case EncoderUpdate::Phase::kCorrupt:
        count(metrics_.encoder_faults);
        rtrace::record(rtrace::EventKind::kEncoderFault, vt,
                       rtrace::kNoRequest, model_version_,
                       static_cast<std::uint32_t>(controller_.rung()), faulty);
        break;
      case EncoderUpdate::Phase::kDetect:
        rtrace::record(rtrace::EventKind::kEncoderDetect, vt,
                       rtrace::kNoRequest, model_version_,
                       static_cast<std::uint32_t>(controller_.rung()), faulty);
        break;
      case EncoderUpdate::Phase::kMask:
        rtrace::record(rtrace::EventKind::kEncoderDetect, vt,
                       rtrace::kNoRequest, model_version_,
                       static_cast<std::uint32_t>(controller_.rung()), faulty);
        rtrace::record(rtrace::EventKind::kEncoderMask, vt,
                       rtrace::kNoRequest, model_version_,
                       static_cast<std::uint32_t>(controller_.rung()), faulty);
        break;
      case EncoderUpdate::Phase::kScrub:
        count(metrics_.encoder_scrubs);
        rtrace::record(rtrace::EventKind::kEncoderScrub, vt,
                       rtrace::kNoRequest, model_version_,
                       upd->scrub_verified ? 1u : 0u,
                       static_cast<std::int64_t>(upd->scrubbed_rows));
        report_.scrubbed_rows += upd->scrubbed_rows;
        break;
    }
    EncoderFaultEvent ev;
    ev.vt = vt;
    ev.phase = upd->phase;
    ev.faulty_rows = upd->faulty_rows;
    ev.id_seed_faulty = upd->id_seed_faulty;
    ev.scrubbed_rows = upd->scrubbed_rows;
    ev.scrub_verified = upd->scrub_verified;
    if (upd->step_ladder && controller_.force_step_down()) {
      ev.stepped_ladder = true;
      rtrace::record(rtrace::EventKind::kDegradeStep, vt, rtrace::kNoRequest,
                     model_version_,
                     static_cast<std::uint32_t>(controller_.rung()), 1);
    }
    report_.encoder_faults.push_back(ev);
  }
}

void ServeEngine::poll_lifecycle(std::uint64_t now) {
  if (lifecycle_ == nullptr) return;
  while (auto upd = lifecycle_->poll(now)) {
    const std::uint64_t vt = std::max(now, upd->vt);
    if (upd->rollback) {
      count(metrics_.rollbacks);
      rtrace::record(rtrace::EventKind::kRollback, vt, rtrace::kNoRequest,
                     upd->version);
      report_.swaps.push_back(SwapEvent{vt, upd->version, true});
      continue;
    }
    if (upd->model == nullptr)
      throw std::logic_error("ServeEngine: lifecycle update without a model");
    if (upd->model->dims() != model_->dims() ||
        upd->model->num_classes() != model_->num_classes() ||
        upd->model->num_chunks() != model_->num_chunks())
      throw std::invalid_argument(
          "ServeEngine: swapped-in model geometry mismatch");
    {
      GENERIC_SPAN_ARGS("serve.swap",
                        {"version", static_cast<std::int64_t>(upd->version)},
                        {"vt_us", static_cast<std::int64_t>(vt)});
      // Flush every deferred batch against the outgoing model FIRST: a
      // prediction batch must never span two models (flush_rung asserts
      // the matching epoch on every entry).
      std::size_t deferred = 0;
      for (const auto& b : batch_) deferred += b.size();
      rtrace::record(rtrace::EventKind::kSwapFlush, vt, rtrace::kNoRequest,
                     model_version_,
                     static_cast<std::uint32_t>(controller_.rung()),
                     static_cast<std::int64_t>(deferred));
      for (std::size_t r = 0; r < batch_.size(); ++r) flush_rung(r);
      owned_model_ = std::move(upd->model);
      model_ = owned_model_.get();
      ++model_epoch_;
      model_version_ = upd->version;
      rtrace::record(rtrace::EventKind::kSwapInstall, vt, rtrace::kNoRequest,
                     model_version_,
                     static_cast<std::uint32_t>(controller_.rung()));
    }
    count(metrics_.swaps);
    report_.swaps.push_back(SwapEvent{vt, upd->version, false});
    report_.versions.push_back(VersionStats{upd->version, 0, 0});
  }
}

void ServeEngine::advance_to(std::uint64_t vt_limit) {
  while (!events_.empty() && events_.front().vt <= vt_limit) {
    std::pop_heap(events_.begin(), events_.end(), EventAfter{});
    const Event ev = events_.back();
    events_.pop_back();
    clock_us_ = std::max(clock_us_, ev.vt);
    if (ev.kind == Event::kCompletion) {
      on_completion(ev.f, ev.vt);
    } else {
      on_retry_timer(ev.f, ev.vt);
    }
  }
}

void ServeEngine::on_arrival(Item&& item) {
  count(metrics_.requests);
  clock_us_ = std::max(clock_us_, item.req.arrival_us);
  ++report_.requests;
  auto owned = std::make_unique<InFlight>();
  owned->req = item.req;
  owned->future = std::move(item.future);
  owned->rng = request_rng(cfg_.seed, item.req.id);
  InFlight* f = owned.get();
  inflight_.push_back(std::move(owned));

  rtrace::record(rtrace::EventKind::kAdmit, f->req.arrival_us, f->req.id,
                 model_version_,
                 static_cast<std::uint32_t>(controller_.rung()),
                 static_cast<std::int64_t>(pending_.size()));
  if (pending_.size() >= cfg_.high_water) {
    resolve_unserved(f, Outcome::kShed, f->req.arrival_us);
    return;
  }
  if (free_servers_ > 0) {
    start_service(f, f->req.arrival_us);
  } else {
    pending_.push_back(f);
    rtrace::record(rtrace::EventKind::kEnqueue, f->req.arrival_us, f->req.id,
                   model_version_,
                   static_cast<std::uint32_t>(controller_.rung()),
                   static_cast<std::int64_t>(pending_.size()));
  }
}

void ServeEngine::start_service(InFlight* f, std::uint64_t now) {
  --free_servers_;
  ++f->attempts;
  f->rung = controller_.rung();
  if (f->attempts > 1)
    rtrace::record(rtrace::EventKind::kRetryAttempt, now, f->req.id,
                   model_version_, static_cast<std::uint32_t>(f->rung),
                   static_cast<std::int64_t>(f->attempts));
  rtrace::record(rtrace::EventKind::kEncode, now, f->req.id, model_version_,
                 static_cast<std::uint32_t>(f->rung),
                 static_cast<std::int64_t>(ladder_[f->rung]));
  // Draw order per attempt is fixed (upset, then jitter) so the stream is
  // identical however the attempt came to be scheduled.
  f->upset = f->rng.bernoulli(cfg_.fault_rate);
  const double u = f->rng.uniform();
  const double frac = static_cast<double>(rung_active_[f->rung]) /
                      static_cast<double>(model_->num_chunks());
  const double cost = static_cast<double>(cfg_.service_base_us) * frac *
                      (1.0 - cfg_.service_jitter +
                       2.0 * cfg_.service_jitter * u);
  const auto dur =
      static_cast<std::uint64_t>(std::max<long long>(std::llround(cost), 1));
  events_.push_back(Event{now + dur, next_seq_++, Event::kCompletion, f});
  std::push_heap(events_.begin(), events_.end(), EventAfter{});
}

void ServeEngine::on_completion(InFlight* f, std::uint64_t now) {
  ++free_servers_;
  bool corrupted = false;
  if (f->upset) {
    // Honest transient-fault model: flip real bits in a copy of the query
    // at the configured per-bit rate, then detect by parity (mismatch
    // against the original). A draw that flips nothing is a harmless upset.
    hdc::IntHV copy(queries_[f->req.query]);
    resilience::inject(copy,
                       resilience::FaultSpec{resilience::FaultKind::kTransient,
                                             cfg_.fault_bit_rate},
                       f->rng, /*bit_width=*/16);
    corrupted = copy != queries_[f->req.query];
  }
  if (corrupted) {
    count(metrics_.upsets);
    rtrace::record(rtrace::EventKind::kUpset, now, f->req.id, model_version_,
                   static_cast<std::uint32_t>(f->rung),
                   static_cast<std::int64_t>(f->attempts));
    if (f->attempts >= cfg_.max_attempts) {
      resolve_unserved(f, Outcome::kFailed, now);
    } else {
      const std::uint64_t delay = backoff_.delay_us(f->attempts, f->rng);
      events_.push_back(Event{now + delay, next_seq_++, Event::kRetry, f});
      std::push_heap(events_.begin(), events_.end(), EventAfter{});
    }
  } else if (now > f->req.deadline_us) {
    resolve_unserved(f, Outcome::kTimeout, now);
    feed_controller(now, now - f->req.arrival_us);
  } else {
    defer_served(f, now);
    feed_controller(now, now - f->req.arrival_us);
  }
  pull_pending(now);
}

void ServeEngine::on_retry_timer(InFlight* f, std::uint64_t now) {
  if (now > f->req.deadline_us) {
    resolve_unserved(f, Outcome::kTimeout, now);
    return;
  }
  if (free_servers_ > 0) {
    start_service(f, now);
  } else {
    pending_.push_front(f);  // a retry has already waited once
  }
}

void ServeEngine::pull_pending(std::uint64_t now) {
  while (free_servers_ > 0 && !pending_.empty()) {
    InFlight* g = pending_.front();
    pending_.pop_front();
    rtrace::record(rtrace::EventKind::kDequeue, now, g->req.id,
                   model_version_,
                   static_cast<std::uint32_t>(controller_.rung()),
                   static_cast<std::int64_t>(pending_.size()));
    if (now > g->req.deadline_us) {
      // Fail fast at dequeue: no point burning a server on a request whose
      // budget is already gone.
      resolve_unserved(g, Outcome::kTimeout, now);
      continue;
    }
    start_service(g, now);
  }
}

void ServeEngine::feed_controller(std::uint64_t now, std::uint64_t latency_us) {
  const std::size_t before = controller_.rung();
  controller_.on_completion(latency_us, pending_.size());
  const std::size_t after = controller_.rung();
  if (after != before)
    rtrace::record(rtrace::EventKind::kDegradeStep, now, rtrace::kNoRequest,
                   model_version_, static_cast<std::uint32_t>(after),
                   static_cast<std::int64_t>(after) -
                       static_cast<std::int64_t>(before));
}

void ServeEngine::feed_burn(std::uint64_t vt, bool good) {
  if (auto edge = burn_.observe(vt, good)) {
    count(metrics_.slo_alerts);
    rtrace::record(rtrace::EventKind::kSloAlert, vt, rtrace::kNoRequest,
                   model_version_, edge->fired ? 1u : 0u,
                   std::llround(edge->fast_burn * 1000.0));
    report_.slo_alerts.push_back(*edge);
  }
}

void ServeEngine::resolve_unserved(InFlight* f, Outcome o, std::uint64_t now) {
  const rtrace::EventKind kind = o == Outcome::kShed
                                     ? rtrace::EventKind::kShed
                                 : o == Outcome::kTimeout
                                     ? rtrace::EventKind::kTimeout
                                     : rtrace::EventKind::kFailed;
  rtrace::record(kind, now, f->req.id, model_version_,
                 static_cast<std::uint32_t>(controller_.rung()),
                 static_cast<std::int64_t>(f->attempts));
  feed_burn(now, false);
  f->outcome = o;
  f->finish_us = now;
  ++report_.outcomes[static_cast<std::size_t>(o)];
  report_.attempts += f->attempts;
  if (f->attempts > 1) report_.retries += f->attempts - 1;
  report_.makespan_us = std::max(report_.makespan_us, now);
  Response r;
  r.outcome = o;
  r.attempts = f->attempts;
  r.finish_us = now;
  r.latency_us = now - f->req.arrival_us;
  f->future.resolve(r);
}

void ServeEngine::defer_served(InFlight* f, std::uint64_t now) {
  f->finish_us = now;
  f->epoch = model_epoch_;
  const bool reduced =
      ladder_[f->rung] < model_->dims() || !rung_mask_[f->rung].empty();
  f->outcome = reduced ? Outcome::kDegraded
               : f->attempts > 1 ? Outcome::kRetried
                                 : Outcome::kOk;
  const std::uint64_t lat = now - f->req.arrival_us;
  feed_burn(now, lat <= cfg_.slo_us);
  latency_.record(lat);
  rung_latency_[f->rung].record(lat);
  if (metrics_.latency_us != nullptr) metrics_.latency_us->record(lat);
  batch_[f->rung].push_back(f);
  if (batch_[f->rung].size() >= cfg_.compute_batch) flush_rung(f->rung);
}

void ServeEngine::flush_rung(std::size_t rung) {
  auto& b = batch_[rung];
  if (b.empty()) return;
  GENERIC_SPAN_ARGS("serve.flush",
                    {"rung", static_cast<std::int64_t>(rung)},
                    {"batch", static_cast<std::int64_t>(b.size())},
                    {"version", static_cast<std::int64_t>(model_version_)});
  std::vector<hdc::IntHV> qs;
  qs.reserve(b.size());
  for (const InFlight* f : b) {
    // Swap invariant: every deferred request in this batch was admitted to
    // it under the model that is about to score it. poll_lifecycle flushes
    // all batches before installing, so a violation here is an engine bug,
    // not an input condition.
    if (f->epoch != model_epoch_)
      throw std::logic_error("ServeEngine: prediction batch spans a swap");
    qs.push_back(queries_[f->req.query]);
  }
  const std::vector<model::Prediction> preds =
      rung_mask_[rung].empty()
          ? model_->predict_reduced_margin_batch(
                qs, ladder_[rung], model::NormMode::kUpdated, pool_)
          : model_->predict_masked_margin_batch(qs, rung_mask_[rung], pool_);
  VersionStats& vstats = report_.versions.back();
  for (std::size_t i = 0; i < b.size(); ++i) {
    InFlight* f = b[i];
    ++report_.outcomes[static_cast<std::size_t>(f->outcome)];
    ++report_.served;
    report_.attempts += f->attempts;
    if (f->attempts > 1) report_.retries += f->attempts - 1;
    report_.makespan_us = std::max(report_.makespan_us, f->finish_us);
    const bool ok = preds[i].cls == labels_[f->req.query];
    if (ok) {
      ++report_.correct;
      ++report_.rungs[rung].correct;
      ++vstats.correct;
    }
    ++report_.rungs[rung].served;
    ++vstats.served;
    rtrace::record(rtrace::EventKind::kPredict, f->finish_us, f->req.id,
                   model_version_, static_cast<std::uint32_t>(rung),
                   static_cast<std::int64_t>(preds[i].cls));
    if (lifecycle_ != nullptr) {
      ServedObservation obs;
      obs.vt = f->finish_us;
      obs.query = f->req.query;
      obs.rung = rung;
      obs.margin = preds[i].margin;
      obs.canary = f->req.canary;
      obs.correct = ok;
      obs.label = labels_[f->req.query];
      lifecycle_->observe(obs);
    }
    Response r;
    r.outcome = f->outcome;
    r.predicted = preds[i].cls;
    r.dims_used = ladder_[rung];
    r.attempts = f->attempts;
    r.finish_us = f->finish_us;
    r.latency_us = f->finish_us - f->req.arrival_us;
    r.rung = static_cast<std::uint32_t>(rung);
    r.version = model_version_;
    r.margin = preds[i].margin;
    f->future.resolve(r);
  }
  b.clear();
}

// ---- generic.serve.v1 -----------------------------------------------------

namespace {

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

}  // namespace

std::string serve_report_to_json(const ServeReport& rep) {
  const ServeConfig& c = rep.config;
  std::string out;
  out.reserve(4096);
  out += "{\n";
  out += "  \"schema\": \"generic.serve.v1\",\n";
  out += "  \"config\": {\n";
  out += "    \"servers\": " + std::to_string(c.servers) + ",\n";
  out += "    \"queue_capacity\": " + std::to_string(c.queue_capacity) + ",\n";
  out += "    \"high_water\": " + std::to_string(c.high_water) + ",\n";
  out += "    \"low_water\": " + std::to_string(c.low_water) + ",\n";
  out += "    \"deadline_us\": " + std::to_string(c.deadline_us) + ",\n";
  out += "    \"slo_us\": " + std::to_string(c.slo_us) + ",\n";
  out += "    \"max_attempts\": " + std::to_string(c.max_attempts) + ",\n";
  out += "    \"backoff_base_us\": " + std::to_string(c.backoff_base_us) +
         ",\n";
  out += "    \"backoff_jitter\": ";
  append_double(out, c.backoff_jitter);
  out += ",\n    \"min_dims\": " + std::to_string(c.min_dims) + ",\n";
  out += "    \"service_base_us\": " + std::to_string(c.service_base_us) +
         ",\n";
  out += "    \"service_jitter\": ";
  append_double(out, c.service_jitter);
  out += ",\n    \"fault_rate\": ";
  append_double(out, c.fault_rate);
  out += ",\n    \"fault_bit_rate\": ";
  append_double(out, c.fault_bit_rate);
  out += ",\n    \"seed\": " + std::to_string(c.seed) + ",\n";
  out += "    \"compute_batch\": " + std::to_string(c.compute_batch) + ",\n";
  out += "    \"ewma_alpha\": ";
  append_double(out, c.ewma_alpha);
  out += ",\n    \"cooldown\": " + std::to_string(c.cooldown) + ",\n";
  out += "    \"step_up_frac\": ";
  append_double(out, c.step_up_frac);
  out += ",\n    \"slo_target\": ";
  append_double(out, c.slo_target);
  out += ",\n    \"burn_fast_window_us\": " +
         std::to_string(c.burn_fast_window_us) + ",\n";
  out += "    \"burn_slow_window_us\": " +
         std::to_string(c.burn_slow_window_us) + ",\n";
  out += "    \"burn_fast_threshold\": ";
  append_double(out, c.burn_fast_threshold);
  out += ",\n    \"burn_slow_threshold\": ";
  append_double(out, c.burn_slow_threshold);
  out += ",\n    \"burn_min_events\": " + std::to_string(c.burn_min_events);
  out += "\n  },\n";
  out += "  \"requests\": " + std::to_string(rep.requests) + ",\n";
  out += "  \"makespan_us\": " + std::to_string(rep.makespan_us) + ",\n";
  out += "  \"throughput_rps\": ";
  append_double(out, rep.throughput_rps);
  out += ",\n  \"outcomes\": {";
  for (std::size_t i = 0; i < kNumOutcomes; ++i) {
    out += i == 0 ? "" : ", ";
    out += "\"";
    out += outcome_name(static_cast<Outcome>(i));
    out += "\": " + std::to_string(rep.outcomes[i]);
  }
  out += "},\n";
  out += "  \"served\": " + std::to_string(rep.served) + ",\n";
  out += "  \"attempts\": " + std::to_string(rep.attempts) + ",\n";
  out += "  \"retries\": " + std::to_string(rep.retries) + ",\n";

  const obs::HistogramSnapshot& h = rep.latency;
  out += "  \"latency_us\": {\"count\": " + std::to_string(h.count);
  out += ", \"sum\": " + std::to_string(h.sum);
  out += ", \"p50\": " + std::to_string(h.percentile(0.50));
  out += ", \"p95\": " + std::to_string(h.percentile(0.95));
  out += ", \"p99\": " + std::to_string(h.percentile(0.99));
  out += ", \"buckets\": {";
  bool first_b = true;
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    if (h.buckets[i] == 0) continue;
    out += first_b ? "" : ", ";
    first_b = false;
    out += '"';
    out += std::to_string(i);
    out += "\": ";
    out += std::to_string(h.buckets[i]);
  }
  out += "}},\n";

  out += "  \"accuracy\": {\"served\": " + std::to_string(rep.served);
  out += ", \"correct\": " + std::to_string(rep.correct);
  out += ", \"value\": ";
  append_double(out, rep.served == 0 ? 0.0
                                     : static_cast<double>(rep.correct) /
                                           static_cast<double>(rep.served));
  out += "},\n";

  out += "  \"degradation\": {\n";
  out += "    \"steps_down\": " + std::to_string(rep.steps_down) + ",\n";
  out += "    \"steps_up\": " + std::to_string(rep.steps_up) + ",\n";
  out += "    \"final_rung\": " + std::to_string(rep.final_rung) + ",\n";
  out += "    \"rungs\": [";
  for (std::size_t r = 0; r < rep.rungs.size(); ++r) {
    const RungStats& s = rep.rungs[r];
    out += r == 0 ? "\n" : ",\n";
    out += "      {\"dims\": " + std::to_string(s.dims);
    out += ", \"active_chunks\": " + std::to_string(s.active_chunks);
    out += ", \"served\": " + std::to_string(s.served);
    out += ", \"correct\": " + std::to_string(s.correct);
    out += ", \"accuracy\": ";
    append_double(out, s.served == 0 ? 0.0
                                     : static_cast<double>(s.correct) /
                                           static_cast<double>(s.served));
    out += ", \"latency_us\": {\"count\": " + std::to_string(s.latency.count);
    out += ", \"p50\": " + std::to_string(s.latency.percentile(0.50));
    out += ", \"p95\": " + std::to_string(s.latency.percentile(0.95));
    out += ", \"p99\": " + std::to_string(s.latency.percentile(0.99));
    out += "}}";
  }
  out += rep.rungs.empty() ? "]" : "\n    ]";
  out += "\n  },\n";

  out += "  \"slo_alerts\": [";
  for (std::size_t i = 0; i < rep.slo_alerts.size(); ++i) {
    const BurnAlert& a = rep.slo_alerts[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"vt_us\": " + std::to_string(a.vt);
    out += ", \"kind\": \"";
    out += a.fired ? "fire" : "clear";
    out += "\", \"fast_burn\": ";
    append_double(out, a.fast_burn);
    out += ", \"slow_burn\": ";
    append_double(out, a.slow_burn);
    out += "}";
  }
  out += rep.slo_alerts.empty() ? "],\n" : "\n  ],\n";

  out += "  \"lifecycle\": {\n";
  out += "    \"swaps\": [";
  for (std::size_t i = 0; i < rep.swaps.size(); ++i) {
    const SwapEvent& e = rep.swaps[i];
    out += i == 0 ? "\n" : ",\n";
    out += "      {\"vt_us\": " + std::to_string(e.vt);
    out += ", \"version\": " + std::to_string(e.version);
    out += ", \"kind\": \"";
    out += e.rollback ? "rollback" : "swap";
    out += "\"}";
  }
  out += rep.swaps.empty() ? "]" : "\n    ]";
  out += ",\n    \"versions\": [";
  for (std::size_t i = 0; i < rep.versions.size(); ++i) {
    const VersionStats& v = rep.versions[i];
    out += i == 0 ? "\n" : ",\n";
    out += "      {\"version\": " + std::to_string(v.version);
    out += ", \"served\": " + std::to_string(v.served);
    out += ", \"correct\": " + std::to_string(v.correct);
    out += ", \"accuracy\": ";
    append_double(out, v.served == 0 ? 0.0
                                     : static_cast<double>(v.correct) /
                                           static_cast<double>(v.served));
    out += "}";
  }
  out += rep.versions.empty() ? "]" : "\n    ]";
  out += "\n  },\n";

  out += "  \"encoder_faults\": [";
  for (std::size_t i = 0; i < rep.encoder_faults.size(); ++i) {
    const EncoderFaultEvent& e = rep.encoder_faults[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"vt_us\": " + std::to_string(e.vt);
    out += ", \"phase\": \"";
    out += encoder_phase_name(e.phase);
    out += "\", \"faulty_rows\": " + std::to_string(e.faulty_rows);
    out += ", \"id_seed_faulty\": ";
    out += e.id_seed_faulty ? "true" : "false";
    out += ", \"scrubbed_rows\": " + std::to_string(e.scrubbed_rows);
    out += ", \"scrub_verified\": ";
    out += e.scrub_verified ? "true" : "false";
    out += ", \"stepped_ladder\": ";
    out += e.stepped_ladder ? "true" : "false";
    out += "}";
  }
  out += rep.encoder_faults.empty() ? "],\n" : "\n  ],\n";
  out += "  \"scrubbed_rows\": " + std::to_string(rep.scrubbed_rows) + "\n";
  out += "}\n";
  return out;
}

void write_serve_json(const std::string& path, const ServeReport& report) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw std::runtime_error("cannot open for writing: " + path);
  f << serve_report_to_json(report);
  if (!f) throw std::runtime_error("write failed: " + path);
}

}  // namespace generic::serve
