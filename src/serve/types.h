// Request/response vocabulary of the serving engine (docs/serving.md).
//
// Time in the serving layer is VIRTUAL: every timestamp below is
// microseconds on the load trace's clock, derived from the seeded arrival
// process and the deterministic service-cost model — never from the wall
// clock. That is what makes every admission, shed, retry, timeout and
// degradation decision a pure function of (trace, config, seed), and the
// generic.serve.v1 report byte-identical for any --threads value.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

namespace generic::serve {

/// Terminal state of one request. Exactly one outcome per request; the
/// precedence for served requests is degraded > retried > ok (a request
/// that was both retried and served at reduced dimensions reports
/// kDegraded — the dims_used and attempts fields keep the full story).
enum class Outcome {
  kOk,        ///< served at full dimensions, first attempt, in budget
  kRetried,   ///< served at full dimensions after >= 1 transient-fault retry
  kDegraded,  ///< served at reduced dimensions (any ladder rung below full)
  kShed,      ///< refused at admission: queue depth at the high-water mark
  kTimeout,   ///< deadline expired (in queue, or completion landed too late)
  kFailed,    ///< transient faults persisted through every retry attempt
};

inline constexpr std::size_t kNumOutcomes = 6;

/// Stable short name used in generic.serve.v1 ("ok", "retried", ...).
std::string_view outcome_name(Outcome o);

/// One inference request on the virtual timeline. The query itself is an
/// index into the query set the engine was constructed over, so requests
/// stay cheap to copy through the admission queue.
struct Request {
  std::uint64_t id = 0;           ///< trace-order id (also the rng stream)
  std::uint64_t arrival_us = 0;   ///< virtual arrival time
  std::uint64_t deadline_us = 0;  ///< absolute virtual deadline
  std::size_t query = 0;          ///< index into the engine's query set
  /// Labeled canary: the caller vouches for this request's ground-truth
  /// label, so the lifecycle may use it for drift accounting and replay
  /// (docs/lifecycle.md). Serving itself treats canaries like any request.
  bool canary = false;
};

/// Everything the engine reports back for one request.
struct Response {
  Outcome outcome = Outcome::kFailed;
  int predicted = -1;          ///< class label; -1 for shed/timeout/failed
  std::size_t dims_used = 0;   ///< dimensions of the serving rung (0 if unserved)
  std::uint32_t attempts = 0;  ///< service attempts consumed (0 if never started)
  std::uint64_t finish_us = 0; ///< virtual completion / rejection time
  std::uint64_t latency_us = 0;///< finish_us - arrival_us
  std::uint32_t rung = 0;      ///< ladder rung that served (0 if unserved)
  std::uint64_t version = 0;   ///< model version that served
  double margin = 0.0;         ///< winning-class margin (confidence signal)
};

/// Write-once future the engine resolves when a request reaches a terminal
/// outcome. get() blocks; try_get() polls. Shared-state futures (not
/// std::future) so the engine can hold the producer side in its own
/// bookkeeping without a promise object per request.
class ResponseFuture {
 public:
  ResponseFuture() : state_(std::make_shared<State>()) {}

  /// Block until the engine resolves this request.
  Response get() const {
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [&] { return state_->value.has_value(); });
    return *state_->value;
  }

  std::optional<Response> try_get() const {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->value;
  }

  /// Producer side; the engine calls this exactly once per request.
  void resolve(const Response& r) {
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      state_->value = r;
    }
    state_->cv.notify_all();
  }

 private:
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    std::optional<Response> value;
  };
  std::shared_ptr<State> state_;
};

/// Engine configuration. Defaults describe a small edge node: two virtual
/// service lanes, a queue that sheds at 48 pending requests, a 4 ms
/// deadline with a 2 ms SLO target the degradation ladder defends.
struct ServeConfig {
  /// Registry label for this engine's counters/gauges/histograms. Empty
  /// keeps the legacy process-global names ("serve.requests"); non-empty
  /// namespaces them as "serve.requests{model=<id>}" so several engines in
  /// one process (the fleet layer) never collide in the global registry.
  /// A pure observability label: never read by a serving decision and never
  /// rendered into generic.serve.v1.
  std::string model_id;
  std::size_t servers = 2;          ///< virtual service lanes
  std::size_t queue_capacity = 64;  ///< admission queue bound
  std::size_t high_water = 48;      ///< shed arrivals at depth >= high_water
  std::size_t low_water = 8;        ///< rung step-up needs depth <= low_water
  std::uint64_t deadline_us = 4000; ///< per-request budget after arrival
  std::uint64_t slo_us = 2000;      ///< latency target the ladder defends
  std::uint32_t max_attempts = 3;   ///< service tries before kFailed
  std::uint64_t backoff_base_us = 100;  ///< retry backoff: base * 2^(attempt-1)
  double backoff_jitter = 0.25;     ///< +- fraction of deterministic jitter
  std::size_t min_dims = 512;       ///< floor of the degradation ladder
  std::uint64_t service_base_us = 900;  ///< mean full-dims service time
  double service_jitter = 0.2;      ///< +- fraction per-request jitter
  double fault_rate = 0.0;          ///< per-attempt transient-upset probability
  double fault_bit_rate = 1e-3;     ///< per-bit flip rate when an upset hits
  std::uint64_t seed = 0x5EB7E;     ///< service/fault rng root
  std::size_t compute_batch = 32;   ///< deferred predict flush size
  double ewma_alpha = 0.2;          ///< latency EWMA weight (controller)
  std::uint32_t cooldown = 16;      ///< completions between rung moves
  double step_up_frac = 0.5;        ///< step up when ewma < frac * slo

  // SLO burn-rate alerting (serve/burn_monitor.h). An alert fires when BOTH
  // rolling virtual-time windows burn the error budget (1 - slo_target)
  // faster than their thresholds, and clears at half the thresholds.
  double slo_target = 0.99;         ///< fraction of requests in-SLO
  std::uint64_t burn_fast_window_us = 100000;  ///< fast window span
  std::uint64_t burn_slow_window_us = 500000;  ///< slow window span
  double burn_fast_threshold = 14.0;  ///< fast-window burn to fire
  double burn_slow_threshold = 6.0;   ///< slow-window burn to fire
  std::size_t burn_min_events = 32;   ///< per-window floor before firing
};

}  // namespace generic::serve
