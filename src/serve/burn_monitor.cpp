#include "serve/burn_monitor.h"

#include <algorithm>

namespace generic::serve {

void BurnMonitor::Window::add(std::uint64_t vt, bool good) {
  events.emplace_back(vt, good);
  if (!good) ++bad;
}

void BurnMonitor::Window::prune(std::uint64_t now) {
  const std::uint64_t cutoff = now > span_us ? now - span_us : 0;
  while (!events.empty() && events.front().first < cutoff) {
    if (!events.front().second) --bad;
    events.pop_front();
  }
}

double BurnMonitor::Window::burn(double budget) const {
  if (events.empty()) return 0.0;
  const double bad_fraction =
      static_cast<double>(bad) / static_cast<double>(events.size());
  return bad_fraction / budget;
}

BurnMonitor::BurnMonitor(const ServeConfig& cfg)
    : budget_(std::max(1.0 - cfg.slo_target, 1e-9)),
      fast_threshold_(cfg.burn_fast_threshold),
      slow_threshold_(cfg.burn_slow_threshold),
      min_events_(cfg.burn_min_events),
      fast_{cfg.burn_fast_window_us},
      slow_{cfg.burn_slow_window_us} {}

double BurnMonitor::fast_burn() const { return fast_.burn(budget_); }
double BurnMonitor::slow_burn() const { return slow_.burn(budget_); }

std::optional<BurnAlert> BurnMonitor::observe(std::uint64_t vt, bool good) {
  fast_.add(vt, good);
  slow_.add(vt, good);
  fast_.prune(vt);
  slow_.prune(vt);

  const double fb = fast_.burn(budget_);
  const double sb = slow_.burn(budget_);
  if (!active_) {
    // Both windows hot AND both statistically meaningful: a burst of two
    // failures at boot must not page.
    if (fast_.total() >= min_events_ && slow_.total() >= min_events_ &&
        fb >= fast_threshold_ && sb >= slow_threshold_) {
      active_ = true;
      return BurnAlert{vt, true, fb, sb};
    }
  } else {
    // Hysteresis: clear only once both windows cool to half the firing
    // thresholds, so the alert doesn't flap across the boundary.
    if (fb < 0.5 * fast_threshold_ && sb < 0.5 * slow_threshold_) {
      active_ = false;
      return BurnAlert{vt, false, fb, sb};
    }
  }
  return std::nullopt;
}

}  // namespace generic::serve
