// The engine side of the online model lifecycle (docs/lifecycle.md).
//
// ServeEngine does not know how drift is detected or models are retrained;
// it only exposes the two deterministic touch points a lifecycle needs:
//
//   observe() — called by the control thread for every SERVED request, in
//     batch-flush order, with the request's virtual completion time, its
//     normalized prediction margin and — for labeled canary
//     requests — whether the prediction was correct. Flush order is a pure
//     function of (trace, config, seed), so the observation stream is
//     byte-identical across --threads.
//
//   poll() — called by the control thread at deterministic virtual-time
//     points (each arrival, and once at final drain) to ask whether a new
//     model is ready to install. An implementation must answer from
//     VIRTUAL time alone: a retrain that triggers at virtual time T with a
//     modeled cost of C microseconds becomes installable at T + C, however
//     long the background compute took on the wall clock.
//
// On a swap the engine flushes every deferred prediction batch against the
// outgoing model FIRST, then installs the new pointer and bumps its model
// epoch — no batch ever spans two models (asserted in flush_rung).
//
// The concrete implementation lives in src/lifecycle (lifecycle::Manager);
// this header keeps serve free of a dependency on that layer.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "model/hdc_classifier.h"

namespace generic::serve {

/// One served request, as the lifecycle sees it.
struct ServedObservation {
  std::uint64_t vt = 0;       ///< virtual completion time
  std::uint64_t query = 0;    ///< index into the engine's query set
  std::size_t rung = 0;       ///< ladder rung the request was served at
  double margin = 0.0;        ///< normalized top1-vs-top2 prediction margin
  bool canary = false;        ///< labeled canary request
  bool correct = false;       ///< prediction matched the label (canaries)
  int label = -1;             ///< ground truth (meaningful for canaries)
};

/// Answer from poll(): either a validated model to hot-swap in, or a
/// rollback notice (a retrain finished but failed validation and was
/// discarded). `version` is the lifecycle's monotonically increasing model
/// version; `vt` is the virtual time the decision became effective.
struct ModelUpdate {
  std::shared_ptr<const model::HdcClassifier> model;  ///< null on rollback
  std::uint64_t version = 0;
  std::uint64_t vt = 0;
  bool rollback = false;
};

class ModelLifecycle {
 public:
  virtual ~ModelLifecycle() = default;

  virtual void observe(const ServedObservation& obs) = 0;

  /// `now` is the engine's current virtual time. Return an update at most
  /// once per completed retrain; the engine installs (or just records, for
  /// rollbacks) and keeps polling.
  virtual std::optional<ModelUpdate> poll(std::uint64_t now) = 0;
};

}  // namespace generic::serve
