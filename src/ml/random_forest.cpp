#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace generic::ml {
namespace {

/// Gini impurity of a class histogram with `total` samples.
double gini(const std::vector<std::size_t>& counts, std::size_t total) {
  double g = 1.0;
  const double n = static_cast<double>(total);
  for (std::size_t c : counts) {
    const double p = static_cast<double>(c) / n;
    g -= p * p;
  }
  return g;
}

int majority(const std::vector<std::size_t>& counts) {
  return static_cast<int>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
}

}  // namespace

DecisionTree::DecisionTree(const TreeConfig& cfg) : cfg_(cfg) {}

void DecisionTree::train(const Matrix& x, const std::vector<int>& y,
                         std::size_t num_classes) {
  if (x.size() != y.size() || x.empty())
    throw std::invalid_argument("DecisionTree::train: bad input sizes");
  std::vector<std::size_t> rows(x.size());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  train_on_indices(x, y, num_classes, rows);
}

void DecisionTree::train_on_indices(const Matrix& x, const std::vector<int>& y,
                                    std::size_t num_classes,
                                    const std::vector<std::size_t>& rows) {
  num_classes_ = num_classes;
  nodes_.clear();
  std::vector<std::size_t> work = rows;
  Rng rng(cfg_.seed);
  build(x, y, work, 0, work.size(), 0, rng);
}

std::int32_t DecisionTree::build(const Matrix& x, const std::vector<int>& y,
                                 std::vector<std::size_t>& rows,
                                 std::size_t lo, std::size_t hi,
                                 std::size_t depth, Rng& rng) {
  const std::size_t n = hi - lo;
  std::vector<std::size_t> counts(num_classes_, 0);
  for (std::size_t i = lo; i < hi; ++i)
    counts[static_cast<std::size_t>(y[rows[i]])]++;
  const int leaf_label = majority(counts);

  const bool pure = counts[static_cast<std::size_t>(leaf_label)] == n;
  if (pure || depth >= cfg_.max_depth || n < cfg_.min_samples_split) {
    Node node;
    node.label = leaf_label;
    nodes_.push_back(node);
    return static_cast<std::int32_t>(nodes_.size() - 1);
  }

  const std::size_t d = x.front().size();
  std::size_t try_feats = cfg_.features_per_split != 0
                              ? cfg_.features_per_split
                              : static_cast<std::size_t>(
                                    std::ceil(std::sqrt(static_cast<double>(d))));
  try_feats = std::min(try_feats, d);

  // Pick candidate features without replacement.
  std::vector<std::size_t> feats(d);
  for (std::size_t j = 0; j < d; ++j) feats[j] = j;
  for (std::size_t j = 0; j < try_feats; ++j) {
    const std::size_t pick = j + rng.below(d - j);
    std::swap(feats[j], feats[pick]);
  }

  double best_impurity = gini(counts, n);
  std::size_t best_feat = static_cast<std::size_t>(-1);
  float best_thresh = 0.0f;

  std::vector<std::pair<float, int>> column(n);
  for (std::size_t f = 0; f < try_feats; ++f) {
    const std::size_t feat = feats[f];
    for (std::size_t i = 0; i < n; ++i)
      column[i] = {x[rows[lo + i]][feat], y[rows[lo + i]]};
    std::sort(column.begin(), column.end());
    // Sweep split points between distinct values.
    std::vector<std::size_t> left_counts(num_classes_, 0);
    auto right_counts = counts;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const auto cls = static_cast<std::size_t>(column[i].second);
      left_counts[cls]++;
      right_counts[cls]--;
      if (column[i].first == column[i + 1].first) continue;
      const std::size_t nl = i + 1, nr = n - nl;
      const double impurity =
          (static_cast<double>(nl) * gini(left_counts, nl) +
           static_cast<double>(nr) * gini(right_counts, nr)) /
          static_cast<double>(n);
      if (impurity + 1e-12 < best_impurity) {
        best_impurity = impurity;
        best_feat = feat;
        best_thresh = 0.5f * (column[i].first + column[i + 1].first);
      }
    }
  }

  if (best_feat == static_cast<std::size_t>(-1)) {
    Node node;
    node.label = leaf_label;
    nodes_.push_back(node);
    return static_cast<std::int32_t>(nodes_.size() - 1);
  }

  // Partition rows[lo, hi) by the chosen split.
  const auto mid_it = std::partition(
      rows.begin() + static_cast<std::ptrdiff_t>(lo),
      rows.begin() + static_cast<std::ptrdiff_t>(hi),
      [&](std::size_t r) { return x[r][best_feat] <= best_thresh; });
  const auto mid = static_cast<std::size_t>(mid_it - rows.begin());
  if (mid == lo || mid == hi) {  // numerical tie: give up, make a leaf
    Node node;
    node.label = leaf_label;
    nodes_.push_back(node);
    return static_cast<std::int32_t>(nodes_.size() - 1);
  }

  const auto index = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<std::size_t>(index)].feature = best_feat;
  nodes_[static_cast<std::size_t>(index)].threshold = best_thresh;
  nodes_[static_cast<std::size_t>(index)].label = leaf_label;
  const std::int32_t left = build(x, y, rows, lo, mid, depth + 1, rng);
  const std::int32_t right = build(x, y, rows, mid, hi, depth + 1, rng);
  nodes_[static_cast<std::size_t>(index)].left = left;
  nodes_[static_cast<std::size_t>(index)].right = right;
  return index;
}

int DecisionTree::predict(std::span<const float> sample) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree used before train");
  std::size_t node = 0;
  while (nodes_[node].feature != static_cast<std::size_t>(-1)) {
    node = static_cast<std::size_t>(sample[nodes_[node].feature] <=
                                            nodes_[node].threshold
                                        ? nodes_[node].left
                                        : nodes_[node].right);
  }
  return nodes_[node].label;
}

std::size_t DecisionTree::depth() const {
  // Iterative depth computation over the implicit tree.
  if (nodes_.empty()) return 0;
  std::vector<std::pair<std::size_t, std::size_t>> stack{{0, 1}};
  std::size_t best = 0;
  while (!stack.empty()) {
    const auto [idx, depth] = stack.back();
    stack.pop_back();
    best = std::max(best, depth);
    const Node& node = nodes_[idx];
    if (node.feature != static_cast<std::size_t>(-1)) {
      stack.push_back({static_cast<std::size_t>(node.left), depth + 1});
      stack.push_back({static_cast<std::size_t>(node.right), depth + 1});
    }
  }
  return best;
}

RandomForest::RandomForest(const ForestConfig& cfg) : cfg_(cfg) {}

void RandomForest::train(const Matrix& x, const std::vector<int>& y,
                         std::size_t num_classes) {
  if (x.size() != y.size() || x.empty())
    throw std::invalid_argument("RandomForest::train: bad input sizes");
  num_classes_ = num_classes;
  trees_.clear();
  Rng rng(cfg_.seed);
  for (std::size_t t = 0; t < cfg_.trees; ++t) {
    TreeConfig tc = cfg_.tree;
    tc.seed = rng.next_u64();
    // Bootstrap sample with replacement.
    std::vector<std::size_t> rows(x.size());
    for (auto& r : rows) r = rng.below(x.size());
    DecisionTree tree(tc);
    tree.train_on_indices(x, y, num_classes, rows);
    trees_.push_back(std::move(tree));
  }
}

int RandomForest::predict(std::span<const float> sample) const {
  if (trees_.empty()) throw std::logic_error("RandomForest used before train");
  std::vector<int> votes(num_classes_, 0);
  for (const auto& tree : trees_)
    votes[static_cast<std::size_t>(tree.predict(sample))]++;
  return static_cast<int>(
      std::max_element(votes.begin(), votes.end()) - votes.begin());
}

}  // namespace generic::ml
