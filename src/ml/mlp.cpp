#include "ml/mlp.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.h"
#include "common/stats.h"

namespace generic::ml {
namespace {

void softmax_inplace(std::vector<float>& z) {
  float mx = z[0];
  for (float v : z) mx = std::max(mx, v);
  float sum = 0.0f;
  for (float& v : z) {
    v = std::exp(v - mx);
    sum += v;
  }
  for (float& v : z) v /= sum;
}

}  // namespace

Mlp::Mlp(const MlpConfig& cfg, std::string_view name)
    : cfg_(cfg), name_(name) {}

void Mlp::train(const Matrix& x_raw, const std::vector<int>& y,
                std::size_t num_classes) {
  if (x_raw.size() != y.size() || x_raw.empty())
    throw std::invalid_argument("Mlp::train: bad input sizes");
  num_classes_ = num_classes;
  scaler_.fit(x_raw);
  const Matrix x = scaler_.transform_all(x_raw);
  const std::size_t d = x.front().size();

  // Build layers: d -> hidden... -> classes, He-initialised.
  Rng rng(cfg_.seed);
  layers_.clear();
  std::vector<std::size_t> sizes{d};
  sizes.insert(sizes.end(), cfg_.hidden.begin(), cfg_.hidden.end());
  sizes.push_back(num_classes);
  for (std::size_t l = 0; l + 1 < sizes.size(); ++l) {
    Layer layer;
    layer.in = sizes[l];
    layer.out = sizes[l + 1];
    layer.w.resize(layer.in * layer.out);
    layer.b.assign(layer.out, 0.0f);
    layer.vw.assign(layer.w.size(), 0.0f);
    layer.vb.assign(layer.out, 0.0f);
    const double scale = std::sqrt(2.0 / static_cast<double>(layer.in));
    for (auto& w : layer.w) w = static_cast<float>(scale * rng.normal());
    layers_.push_back(std::move(layer));
  }

  std::vector<std::size_t> order(x.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  double lr = cfg_.learning_rate;
  // Per-layer gradient accumulators reused across batches.
  std::vector<std::vector<float>> gw(layers_.size()), gb(layers_.size());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    gw[l].assign(layers_[l].w.size(), 0.0f);
    gb[l].assign(layers_[l].b.size(), 0.0f);
  }

  for (std::size_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t start = 0; start < order.size(); start += cfg_.batch) {
      const std::size_t end = std::min(order.size(), start + cfg_.batch);
      for (auto& g : gw) std::fill(g.begin(), g.end(), 0.0f);
      for (auto& g : gb) std::fill(g.begin(), g.end(), 0.0f);

      for (std::size_t idx = start; idx < end; ++idx) {
        const auto& xi = x[order[idx]];
        const int yi = y[order[idx]];
        auto acts = forward(xi);
        // Output delta: softmax + cross-entropy.
        std::vector<float> delta = acts.back();
        softmax_inplace(delta);
        delta[static_cast<std::size_t>(yi)] -= 1.0f;
        // Backpropagate.
        for (std::size_t l = layers_.size(); l-- > 0;) {
          const auto& a_in = acts[l];
          Layer& layer = layers_[l];
          for (std::size_t o = 0; o < layer.out; ++o) {
            const float dlt = delta[o];
            gb[l][o] += dlt;
            float* grow = &gw[l][o * layer.in];
            const float* in = a_in.data();
            for (std::size_t i = 0; i < layer.in; ++i) grow[i] += dlt * in[i];
          }
          if (l == 0) break;
          std::vector<float> prev_delta(layer.in, 0.0f);
          for (std::size_t o = 0; o < layer.out; ++o) {
            const float dlt = delta[o];
            const float* wrow = &layer.w[o * layer.in];
            for (std::size_t i = 0; i < layer.in; ++i)
              prev_delta[i] += dlt * wrow[i];
          }
          // ReLU derivative on the hidden activation.
          for (std::size_t i = 0; i < layer.in; ++i)
            if (acts[l][i] <= 0.0f) prev_delta[i] = 0.0f;
          delta = std::move(prev_delta);
        }
      }

      const float inv_batch = 1.0f / static_cast<float>(end - start);
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        Layer& layer = layers_[l];
        for (std::size_t k = 0; k < layer.w.size(); ++k) {
          const float grad = gw[l][k] * inv_batch +
                             static_cast<float>(cfg_.weight_decay) * layer.w[k];
          layer.vw[k] = static_cast<float>(cfg_.momentum) * layer.vw[k] -
                        static_cast<float>(lr) * grad;
          layer.w[k] += layer.vw[k];
        }
        for (std::size_t k = 0; k < layer.b.size(); ++k) {
          layer.vb[k] = static_cast<float>(cfg_.momentum) * layer.vb[k] -
                        static_cast<float>(lr) * gb[l][k] * inv_batch;
          layer.b[k] += layer.vb[k];
        }
      }
    }
    lr *= cfg_.lr_decay;
  }
}

std::vector<std::vector<float>> Mlp::forward(std::span<const float> x) const {
  std::vector<std::vector<float>> acts;
  acts.emplace_back(x.begin(), x.end());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    std::vector<float> z(layer.out);
    for (std::size_t o = 0; o < layer.out; ++o) {
      float acc = layer.b[o];
      const float* wrow = &layer.w[o * layer.in];
      const float* in = acts.back().data();
      for (std::size_t i = 0; i < layer.in; ++i) acc += wrow[i] * in[i];
      z[o] = acc;
    }
    const bool last = (l + 1 == layers_.size());
    if (!last)
      for (float& v : z) v = std::max(0.0f, v);  // ReLU
    acts.push_back(std::move(z));
  }
  return acts;
}

std::vector<float> Mlp::predict_proba(std::span<const float> sample) const {
  if (layers_.empty()) throw std::logic_error("Mlp used before train");
  const auto scaled = scaler_.transform(sample);
  auto acts = forward(scaled);
  auto out = acts.back();
  softmax_inplace(out);
  return out;
}

int Mlp::predict(std::span<const float> sample) const {
  const auto probs = predict_proba(sample);
  return static_cast<int>(
      std::max_element(probs.begin(), probs.end()) - probs.begin());
}

}  // namespace generic::ml
