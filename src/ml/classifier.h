// Common interface for the classical-ML comparators of Table 1 (§3.2).
// The paper used scikit-learn (MLP, SVM, RF, LR, kNN) and AutoKeras (DNN);
// here each algorithm is implemented from scratch in C++ behind this
// interface so the Table 1 harness can sweep them uniformly.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

namespace generic::ml {

using Matrix = std::vector<std::vector<float>>;

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Train on X (n x d) with integer labels in [0, num_classes).
  virtual void train(const Matrix& x, const std::vector<int>& y,
                     std::size_t num_classes) = 0;

  /// Predict the class of one sample.
  virtual int predict(std::span<const float> sample) const = 0;

  virtual std::string_view name() const = 0;

  /// Fraction of correct predictions on a labelled set.
  double accuracy(const Matrix& x, const std::vector<int>& y) const;
};

/// The comparator set of Table 1 (plus the two the paper discarded for low
/// accuracy, kept for Figure 3's device sweeps).
enum class MlKind { kMlp, kDnn, kSvm, kRandomForest, kLogReg, kKnn };

std::string_view to_string(MlKind kind);
std::unique_ptr<Classifier> make_classifier(MlKind kind,
                                            std::uint64_t seed = 7);

}  // namespace generic::ml
