#include "ml/kmeans.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/rng.h"

namespace generic::ml {
namespace {

float sq_dist(std::span<const float> a, std::span<const float> b) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float diff = a[i] - b[i];
    acc += diff * diff;
  }
  return acc;
}

}  // namespace

int kmeans_assign(const std::vector<std::vector<float>>& centroids,
                  std::span<const float> point) {
  int best = 0;
  float best_d = std::numeric_limits<float>::infinity();
  for (std::size_t c = 0; c < centroids.size(); ++c) {
    const float d = sq_dist(centroids[c], point);
    if (d < best_d) {
      best_d = d;
      best = static_cast<int>(c);
    }
  }
  return best;
}

KMeansResult kmeans(const Matrix& points, const KMeansConfig& cfg) {
  if (points.empty()) throw std::invalid_argument("kmeans: empty input");
  if (cfg.k == 0 || cfg.k > points.size())
    throw std::invalid_argument("kmeans: bad k");
  const std::size_t n = points.size();
  const std::size_t d = points.front().size();
  Rng rng(cfg.seed);

  KMeansResult res;
  // k-means++ seeding.
  res.centroids.push_back(points[rng.below(n)]);
  std::vector<float> min_d(n, std::numeric_limits<float>::infinity());
  while (res.centroids.size() < cfg.k) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      min_d[i] = std::min(min_d[i], sq_dist(points[i], res.centroids.back()));
      total += min_d[i];
    }
    double pick = rng.uniform() * total;
    std::size_t chosen = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      pick -= min_d[i];
      if (pick <= 0.0) {
        chosen = i;
        break;
      }
    }
    res.centroids.push_back(points[chosen]);
  }

  res.labels.assign(n, -1);
  std::vector<std::vector<double>> sums(cfg.k, std::vector<double>(d, 0.0));
  std::vector<std::size_t> counts(cfg.k, 0);
  for (std::size_t iter = 0; iter < cfg.max_iters; ++iter) {
    res.iterations = iter + 1;
    for (auto& s : sums) std::fill(s.begin(), s.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0u);
    for (std::size_t i = 0; i < n; ++i) {
      const int c = kmeans_assign(res.centroids, points[i]);
      res.labels[i] = c;
      counts[static_cast<std::size_t>(c)]++;
      for (std::size_t j = 0; j < d; ++j)
        sums[static_cast<std::size_t>(c)][j] += points[i][j];
    }
    double moved = 0.0;
    for (std::size_t c = 0; c < cfg.k; ++c) {
      if (counts[c] == 0) continue;  // keep the old centroid alive
      for (std::size_t j = 0; j < d; ++j) {
        const auto nv = static_cast<float>(sums[c][j] /
                                           static_cast<double>(counts[c]));
        const float diff = nv - res.centroids[c][j];
        moved += static_cast<double>(diff) * diff;
        res.centroids[c][j] = nv;
      }
    }
    if (moved < cfg.tol) break;
  }

  res.inertia = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    res.inertia += sq_dist(
        points[i], res.centroids[static_cast<std::size_t>(res.labels[i])]);
  return res;
}

}  // namespace generic::ml
