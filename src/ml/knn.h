// k-nearest-neighbours (Euclidean, majority vote) — the second comparator
// the paper discarded for low accuracy (§3.2); kept for Figure 3.
#pragma once

#include <vector>

#include "ml/classifier.h"
#include "ml/scaler.h"

namespace generic::ml {

class Knn final : public Classifier {
 public:
  explicit Knn(std::size_t k = 5) : k_(k) {}

  void train(const Matrix& x, const std::vector<int>& y,
             std::size_t num_classes) override;
  int predict(std::span<const float> sample) const override;
  std::string_view name() const override { return "KNN"; }

 private:
  std::size_t k_;
  StandardScaler scaler_;
  Matrix x_;
  std::vector<int> y_;
  std::size_t num_classes_ = 0;
};

}  // namespace generic::ml
