// Evaluation metrics: classification accuracy and the normalized mutual
// information score used by Table 2 to compare clusterings against ground
// truth (identical to sklearn.metrics.normalized_mutual_info_score with
// arithmetic-mean normalization).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace generic::ml {

double accuracy_score(std::span<const int> truth, std::span<const int> pred);

/// Mutual information (nats) between two labelings.
double mutual_information(std::span<const int> a, std::span<const int> b);

/// Shannon entropy (nats) of a labeling.
double entropy(std::span<const int> labels);

/// NMI = MI / mean(H(a), H(b)); 0 when either side has zero entropy unless
/// both labelings are single-cluster and identical (then 1 by convention).
double normalized_mutual_information(std::span<const int> truth,
                                     std::span<const int> pred);

/// Confusion matrix with truth on rows.
std::vector<std::vector<std::size_t>> confusion_matrix(
    std::span<const int> truth, std::span<const int> pred,
    std::size_t num_classes);

}  // namespace generic::ml
