// Support vector machine comparator. The paper's scikit-learn SVC defaults
// to an RBF kernel; an exact kernel SVM is replaced here by the standard
// random-Fourier-feature approximation (Rahimi & Recht 2007): features are
// lifted through z(x) = sqrt(2/D) cos(Wx + b) with W ~ N(0, gamma) rows,
// then a linear one-vs-rest hinge classifier is trained by SGD (Pegasos
// style). With enough features this converges to the RBF decision surface;
// set `fourier_dims = 0` for a plain linear SVM.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/classifier.h"
#include "ml/scaler.h"

namespace generic::ml {

struct SvmConfig {
  std::size_t fourier_dims = 384;  ///< 0 => linear kernel
  double gamma = 0.0;              ///< 0 => auto: 1/d like sklearn "scale"
  std::size_t epochs = 40;
  double learning_rate = 0.05;
  double reg = 1e-4;  ///< L2 regularisation
  std::uint64_t seed = 11;
};

class Svm final : public Classifier {
 public:
  explicit Svm(const SvmConfig& cfg);

  void train(const Matrix& x, const std::vector<int>& y,
             std::size_t num_classes) override;
  int predict(std::span<const float> sample) const override;
  std::string_view name() const override { return "SVM"; }

  /// Per-class margins for one raw sample.
  std::vector<float> decision_function(std::span<const float> sample) const;

 private:
  std::vector<float> lift(std::span<const float> scaled) const;

  SvmConfig cfg_;
  StandardScaler scaler_;
  std::vector<float> proj_w_;  // fourier_dims x d
  std::vector<float> proj_b_;  // fourier_dims
  std::size_t input_dim_ = 0;
  std::size_t feat_dim_ = 0;
  std::vector<float> w_;  // classes x feat_dim
  std::vector<float> b_;  // classes
  std::size_t num_classes_ = 0;
};

}  // namespace generic::ml
