// CART decision trees and a bagged random forest — the paper's most
// energy-efficient conventional baseline (RF, §3.2/§5.2). Gini impurity,
// bootstrap resampling, sqrt(d) feature subsampling per split.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "ml/classifier.h"

namespace generic::ml {

struct TreeConfig {
  std::size_t max_depth = 16;
  std::size_t min_samples_split = 4;
  std::size_t features_per_split = 0;  ///< 0 => sqrt(d)
  std::uint64_t seed = 17;
};

class DecisionTree final : public Classifier {
 public:
  explicit DecisionTree(const TreeConfig& cfg);

  void train(const Matrix& x, const std::vector<int>& y,
             std::size_t num_classes) override;
  int predict(std::span<const float> sample) const override;
  std::string_view name() const override { return "Tree"; }

  /// Train on a subset of row indices (bootstrap support for the forest).
  void train_on_indices(const Matrix& x, const std::vector<int>& y,
                        std::size_t num_classes,
                        const std::vector<std::size_t>& rows);

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t depth() const;

 private:
  struct Node {
    // Leaf when feature == npos; then `label` holds the prediction.
    std::size_t feature = static_cast<std::size_t>(-1);
    float threshold = 0.0f;
    std::int32_t left = -1;
    std::int32_t right = -1;
    int label = 0;
  };

  std::int32_t build(const Matrix& x, const std::vector<int>& y,
                     std::vector<std::size_t>& rows, std::size_t lo,
                     std::size_t hi, std::size_t depth, Rng& rng);

  TreeConfig cfg_;
  std::vector<Node> nodes_;
  std::size_t num_classes_ = 0;
};

struct ForestConfig {
  std::size_t trees = 30;
  TreeConfig tree;
  std::uint64_t seed = 19;
};

class RandomForest final : public Classifier {
 public:
  explicit RandomForest(const ForestConfig& cfg);

  void train(const Matrix& x, const std::vector<int>& y,
             std::size_t num_classes) override;
  int predict(std::span<const float> sample) const override;
  std::string_view name() const override { return "RF"; }

  std::size_t num_trees() const { return trees_.size(); }

 private:
  ForestConfig cfg_;
  std::vector<DecisionTree> trees_;
  std::size_t num_classes_ = 0;
};

}  // namespace generic::ml
