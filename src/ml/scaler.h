// Per-feature standardization (zero mean, unit variance), applied before
// the gradient-based comparators exactly as the paper's scikit-learn
// pipelines would.
#pragma once

#include <span>
#include <vector>

namespace generic::ml {

class StandardScaler {
 public:
  void fit(const std::vector<std::vector<float>>& x);
  std::vector<float> transform(std::span<const float> sample) const;
  std::vector<std::vector<float>> transform_all(
      const std::vector<std::vector<float>>& x) const;
  bool fitted() const { return !mean_.empty(); }

 private:
  std::vector<float> mean_;
  std::vector<float> inv_std_;
};

}  // namespace generic::ml
