#include "ml/classifier.h"

#include <stdexcept>

#include "ml/knn.h"
#include "ml/logreg.h"
#include "ml/mlp.h"
#include "ml/random_forest.h"
#include "ml/svm.h"

namespace generic::ml {

double Classifier::accuracy(const Matrix& x, const std::vector<int>& y) const {
  if (x.size() != y.size() || x.empty())
    throw std::invalid_argument("Classifier::accuracy: bad input sizes");
  std::size_t hits = 0;
  for (std::size_t i = 0; i < x.size(); ++i) hits += predict(x[i]) == y[i];
  return static_cast<double>(hits) / static_cast<double>(x.size());
}

std::string_view to_string(MlKind kind) {
  switch (kind) {
    case MlKind::kMlp: return "MLP";
    case MlKind::kDnn: return "DNN";
    case MlKind::kSvm: return "SVM";
    case MlKind::kRandomForest: return "RF";
    case MlKind::kLogReg: return "LR";
    case MlKind::kKnn: return "KNN";
  }
  return "?";
}

std::unique_ptr<Classifier> make_classifier(MlKind kind, std::uint64_t seed) {
  switch (kind) {
    case MlKind::kMlp: {
      MlpConfig cfg;
      cfg.hidden = {128};
      cfg.seed = seed;
      return std::make_unique<Mlp>(cfg, "MLP");
    }
    case MlKind::kDnn: {
      // AutoKeras stand-in: a deeper funnel network (DESIGN.md §3).
      MlpConfig cfg;
      cfg.hidden = {256, 128, 64};
      cfg.epochs = 40;
      cfg.seed = seed;
      return std::make_unique<Mlp>(cfg, "DNN");
    }
    case MlKind::kSvm: {
      SvmConfig cfg;
      cfg.seed = seed;
      return std::make_unique<Svm>(cfg);
    }
    case MlKind::kRandomForest: {
      ForestConfig cfg;
      cfg.seed = seed;
      return std::make_unique<RandomForest>(cfg);
    }
    case MlKind::kLogReg: {
      LogRegConfig cfg;
      cfg.seed = seed;
      return std::make_unique<LogReg>(cfg);
    }
    case MlKind::kKnn: return std::make_unique<Knn>(5);
  }
  throw std::invalid_argument("unknown classifier kind");
}

}  // namespace generic::ml
