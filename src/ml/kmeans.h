// Lloyd's k-means with k-means++ initialisation — the clustering baseline
// of Table 2 and Figure 10.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/classifier.h"

namespace generic::ml {

struct KMeansConfig {
  std::size_t k = 2;
  std::size_t max_iters = 100;
  double tol = 1e-5;  ///< stop when centroid movement (L2^2) drops below
  std::uint64_t seed = 23;
};

struct KMeansResult {
  std::vector<std::vector<float>> centroids;
  std::vector<int> labels;
  std::size_t iterations = 0;
  double inertia = 0.0;  ///< sum of squared distances to assigned centroid
};

KMeansResult kmeans(const Matrix& points, const KMeansConfig& cfg);

/// Assign one point to the nearest centroid.
int kmeans_assign(const std::vector<std::vector<float>>& centroids,
                  std::span<const float> point);

}  // namespace generic::ml
