#include "ml/svm.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.h"

namespace generic::ml {

Svm::Svm(const SvmConfig& cfg) : cfg_(cfg) {}

std::vector<float> Svm::lift(std::span<const float> scaled) const {
  if (feat_dim_ == scaled.size()) return {scaled.begin(), scaled.end()};
  std::vector<float> z(feat_dim_);
  const float norm = std::sqrt(2.0f / static_cast<float>(feat_dim_));
  for (std::size_t k = 0; k < feat_dim_; ++k) {
    float acc = proj_b_[k];
    const float* wrow = &proj_w_[k * input_dim_];
    for (std::size_t j = 0; j < input_dim_; ++j) acc += wrow[j] * scaled[j];
    z[k] = norm * std::cos(acc);
  }
  return z;
}

void Svm::train(const Matrix& x_raw, const std::vector<int>& y,
                std::size_t num_classes) {
  if (x_raw.size() != y.size() || x_raw.empty())
    throw std::invalid_argument("Svm::train: bad input sizes");
  num_classes_ = num_classes;
  scaler_.fit(x_raw);
  input_dim_ = x_raw.front().size();
  feat_dim_ = cfg_.fourier_dims == 0 ? input_dim_ : cfg_.fourier_dims;

  Rng rng(cfg_.seed);
  if (cfg_.fourier_dims != 0) {
    const double gamma =
        cfg_.gamma > 0.0 ? cfg_.gamma : 1.0 / static_cast<double>(input_dim_);
    const double w_scale = std::sqrt(2.0 * gamma);
    proj_w_.resize(feat_dim_ * input_dim_);
    proj_b_.resize(feat_dim_);
    for (auto& w : proj_w_) w = static_cast<float>(w_scale * rng.normal());
    for (auto& b : proj_b_)
      b = static_cast<float>(rng.uniform(0.0, 6.283185307179586));
  }

  // Precompute lifted features once; SGD then only touches flat arrays.
  std::vector<std::vector<float>> z;
  z.reserve(x_raw.size());
  for (const auto& row : x_raw) z.push_back(lift(scaler_.transform(row)));

  w_.assign(num_classes * feat_dim_, 0.0f);
  b_.assign(num_classes, 0.0f);

  std::vector<std::size_t> order(z.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  double lr = cfg_.learning_rate;
  for (std::size_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t idx : order) {
      const auto& zi = z[idx];
      const auto yi = static_cast<std::size_t>(y[idx]);
      // One-vs-rest hinge: for each class c, target t = +1 if c==y else -1;
      // update when t * margin < 1.
      for (std::size_t c = 0; c < num_classes; ++c) {
        float* wc = &w_[c * feat_dim_];
        float margin = b_[c];
        for (std::size_t k = 0; k < feat_dim_; ++k) margin += wc[k] * zi[k];
        const float t = (c == yi) ? 1.0f : -1.0f;
        const float shrink = 1.0f - static_cast<float>(lr * cfg_.reg);
        if (t * margin < 1.0f) {
          for (std::size_t k = 0; k < feat_dim_; ++k)
            wc[k] = shrink * wc[k] + static_cast<float>(lr) * t * zi[k];
          b_[c] += static_cast<float>(lr) * t;
        } else {
          for (std::size_t k = 0; k < feat_dim_; ++k) wc[k] = shrink * wc[k];
        }
      }
    }
    lr *= 0.95;
  }
}

std::vector<float> Svm::decision_function(
    std::span<const float> sample) const {
  if (w_.empty()) throw std::logic_error("Svm used before train");
  const auto z = lift(scaler_.transform(sample));
  std::vector<float> margins(num_classes_);
  for (std::size_t c = 0; c < num_classes_; ++c) {
    float acc = b_[c];
    const float* wc = &w_[c * feat_dim_];
    for (std::size_t k = 0; k < feat_dim_; ++k) acc += wc[k] * z[k];
    margins[c] = acc;
  }
  return margins;
}

int Svm::predict(std::span<const float> sample) const {
  const auto margins = decision_function(sample);
  return static_cast<int>(
      std::max_element(margins.begin(), margins.end()) - margins.begin());
}

}  // namespace generic::ml
