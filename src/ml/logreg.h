// Multinomial logistic regression (softmax regression) trained by SGD.
// One of the two comparators the paper evaluated and then discarded for
// low accuracy (§3.2); kept here for completeness and Figure 3's device
// energy sweep.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/classifier.h"
#include "ml/scaler.h"

namespace generic::ml {

struct LogRegConfig {
  std::size_t epochs = 60;
  double learning_rate = 0.1;
  double reg = 1e-4;
  std::uint64_t seed = 13;
};

class LogReg final : public Classifier {
 public:
  explicit LogReg(const LogRegConfig& cfg);

  void train(const Matrix& x, const std::vector<int>& y,
             std::size_t num_classes) override;
  int predict(std::span<const float> sample) const override;
  std::string_view name() const override { return "LR"; }

 private:
  LogRegConfig cfg_;
  StandardScaler scaler_;
  std::vector<float> w_;  // classes x d
  std::vector<float> b_;
  std::size_t d_ = 0;
  std::size_t num_classes_ = 0;
};

}  // namespace generic::ml
