#include "ml/logreg.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.h"

namespace generic::ml {

LogReg::LogReg(const LogRegConfig& cfg) : cfg_(cfg) {}

void LogReg::train(const Matrix& x_raw, const std::vector<int>& y,
                   std::size_t num_classes) {
  if (x_raw.size() != y.size() || x_raw.empty())
    throw std::invalid_argument("LogReg::train: bad input sizes");
  num_classes_ = num_classes;
  scaler_.fit(x_raw);
  const Matrix x = scaler_.transform_all(x_raw);
  d_ = x.front().size();
  w_.assign(num_classes * d_, 0.0f);
  b_.assign(num_classes, 0.0f);

  Rng rng(cfg_.seed);
  std::vector<std::size_t> order(x.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  std::vector<float> logits(num_classes);
  double lr = cfg_.learning_rate;
  for (std::size_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t idx : order) {
      const auto& xi = x[idx];
      for (std::size_t c = 0; c < num_classes; ++c) {
        float acc = b_[c];
        const float* wc = &w_[c * d_];
        for (std::size_t j = 0; j < d_; ++j) acc += wc[j] * xi[j];
        logits[c] = acc;
      }
      const float mx = *std::max_element(logits.begin(), logits.end());
      float sum = 0.0f;
      for (float& v : logits) {
        v = std::exp(v - mx);
        sum += v;
      }
      for (std::size_t c = 0; c < num_classes; ++c) {
        const float p = logits[c] / sum;
        const float grad = p - (static_cast<std::size_t>(y[idx]) == c ? 1.0f : 0.0f);
        float* wc = &w_[c * d_];
        for (std::size_t j = 0; j < d_; ++j)
          wc[j] -= static_cast<float>(lr) *
                   (grad * xi[j] + static_cast<float>(cfg_.reg) * wc[j]);
        b_[c] -= static_cast<float>(lr) * grad;
      }
    }
    lr *= 0.97;
  }
}

int LogReg::predict(std::span<const float> sample) const {
  if (w_.empty()) throw std::logic_error("LogReg used before train");
  const auto xi = scaler_.transform(sample);
  int best = 0;
  float best_v = -std::numeric_limits<float>::infinity();
  for (std::size_t c = 0; c < num_classes_; ++c) {
    float acc = b_[c];
    const float* wc = &w_[c * d_];
    for (std::size_t j = 0; j < d_; ++j) acc += wc[j] * xi[j];
    if (acc > best_v) {
      best_v = acc;
      best = static_cast<int>(c);
    }
  }
  return best;
}

}  // namespace generic::ml
