// Multi-layer perceptron with ReLU hidden layers and a softmax output,
// trained by mini-batch SGD with momentum. Covers two Table 1 comparators:
//   MLP — one hidden layer (scikit-learn MLPClassifier stand-in)
//   DNN — three hidden layers (stand-in for the AutoKeras-searched network;
//         see DESIGN.md §3 for the substitution note)
#pragma once

#include <cstdint>
#include <vector>

#include "ml/classifier.h"
#include "ml/scaler.h"

namespace generic::ml {

struct MlpConfig {
  std::vector<std::size_t> hidden{128};
  std::size_t epochs = 30;
  std::size_t batch = 32;
  double learning_rate = 0.01;
  double momentum = 0.9;
  double weight_decay = 1e-4;
  double lr_decay = 0.97;  ///< multiplicative per-epoch decay
  std::uint64_t seed = 7;
};

class Mlp final : public Classifier {
 public:
  explicit Mlp(const MlpConfig& cfg, std::string_view name = "MLP");

  void train(const Matrix& x, const std::vector<int>& y,
             std::size_t num_classes) override;
  int predict(std::span<const float> sample) const override;
  std::string_view name() const override { return name_; }

  /// Class probabilities for one (already raw, unscaled) sample.
  std::vector<float> predict_proba(std::span<const float> sample) const;

 private:
  struct Layer {
    std::size_t in = 0, out = 0;
    std::vector<float> w;   // out x in, row-major
    std::vector<float> b;   // out
    std::vector<float> vw;  // momentum buffers
    std::vector<float> vb;
  };

  /// Forward pass; returns activations per layer (including input).
  std::vector<std::vector<float>> forward(std::span<const float> x) const;

  MlpConfig cfg_;
  std::string name_;
  StandardScaler scaler_;
  std::vector<Layer> layers_;
  std::size_t num_classes_ = 0;
};

}  // namespace generic::ml
