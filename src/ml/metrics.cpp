#include "ml/metrics.h"

#include <cmath>
#include <map>
#include <stdexcept>

namespace generic::ml {

double accuracy_score(std::span<const int> truth, std::span<const int> pred) {
  if (truth.size() != pred.size() || truth.empty())
    throw std::invalid_argument("accuracy_score: bad sizes");
  std::size_t hits = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) hits += truth[i] == pred[i];
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

double entropy(std::span<const int> labels) {
  std::map<int, std::size_t> counts;
  for (int l : labels) counts[l]++;
  const double n = static_cast<double>(labels.size());
  double h = 0.0;
  for (const auto& [label, c] : counts) {
    const double p = static_cast<double>(c) / n;
    h -= p * std::log(p);
  }
  return h;
}

double mutual_information(std::span<const int> a, std::span<const int> b) {
  if (a.size() != b.size() || a.empty())
    throw std::invalid_argument("mutual_information: bad sizes");
  std::map<int, std::size_t> ca, cb;
  std::map<std::pair<int, int>, std::size_t> cab;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ca[a[i]]++;
    cb[b[i]]++;
    cab[{a[i], b[i]}]++;
  }
  const double n = static_cast<double>(a.size());
  double mi = 0.0;
  for (const auto& [key, c] : cab) {
    const double p_ab = static_cast<double>(c) / n;
    const double p_a = static_cast<double>(ca[key.first]) / n;
    const double p_b = static_cast<double>(cb[key.second]) / n;
    mi += p_ab * std::log(p_ab / (p_a * p_b));
  }
  return std::max(0.0, mi);
}

double normalized_mutual_information(std::span<const int> truth,
                                     std::span<const int> pred) {
  const double ht = entropy(truth);
  const double hp = entropy(pred);
  if (ht == 0.0 && hp == 0.0) return 1.0;  // both trivially one cluster
  const double denom = 0.5 * (ht + hp);
  if (denom == 0.0) return 0.0;
  return mutual_information(truth, pred) / denom;
}

std::vector<std::vector<std::size_t>> confusion_matrix(
    std::span<const int> truth, std::span<const int> pred,
    std::size_t num_classes) {
  if (truth.size() != pred.size())
    throw std::invalid_argument("confusion_matrix: size mismatch");
  std::vector<std::vector<std::size_t>> m(num_classes,
                                          std::vector<std::size_t>(num_classes, 0));
  for (std::size_t i = 0; i < truth.size(); ++i)
    m.at(static_cast<std::size_t>(truth[i]))
        .at(static_cast<std::size_t>(pred[i]))++;
  return m;
}

}  // namespace generic::ml
