#include "ml/scaler.h"

#include <cmath>
#include <stdexcept>

namespace generic::ml {

void StandardScaler::fit(const std::vector<std::vector<float>>& x) {
  if (x.empty()) throw std::invalid_argument("StandardScaler: empty input");
  const std::size_t d = x.front().size();
  mean_.assign(d, 0.0f);
  inv_std_.assign(d, 0.0f);
  for (const auto& row : x)
    for (std::size_t j = 0; j < d; ++j) mean_[j] += row[j];
  for (auto& m : mean_) m /= static_cast<float>(x.size());
  std::vector<double> var(d, 0.0);
  for (const auto& row : x)
    for (std::size_t j = 0; j < d; ++j) {
      const double diff = row[j] - mean_[j];
      var[j] += diff * diff;
    }
  for (std::size_t j = 0; j < d; ++j) {
    const double sd = std::sqrt(var[j] / static_cast<double>(x.size()));
    inv_std_[j] = sd > 1e-9 ? static_cast<float>(1.0 / sd) : 1.0f;
  }
}

std::vector<float> StandardScaler::transform(
    std::span<const float> sample) const {
  if (sample.size() != mean_.size())
    throw std::invalid_argument("StandardScaler: dimension mismatch");
  std::vector<float> out(sample.size());
  for (std::size_t j = 0; j < sample.size(); ++j)
    out[j] = (sample[j] - mean_[j]) * inv_std_[j];
  return out;
}

std::vector<std::vector<float>> StandardScaler::transform_all(
    const std::vector<std::vector<float>>& x) const {
  std::vector<std::vector<float>> out;
  out.reserve(x.size());
  for (const auto& row : x) out.push_back(transform(row));
  return out;
}

}  // namespace generic::ml
