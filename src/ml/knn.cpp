#include "ml/knn.h"

#include <algorithm>
#include <stdexcept>

namespace generic::ml {

void Knn::train(const Matrix& x, const std::vector<int>& y,
                std::size_t num_classes) {
  if (x.size() != y.size() || x.empty())
    throw std::invalid_argument("Knn::train: bad input sizes");
  scaler_.fit(x);
  x_ = scaler_.transform_all(x);
  y_ = y;
  num_classes_ = num_classes;
}

int Knn::predict(std::span<const float> sample) const {
  if (x_.empty()) throw std::logic_error("Knn used before train");
  const auto q = scaler_.transform(sample);
  // Partial sort of (distance, label) pairs over the k nearest.
  std::vector<std::pair<float, int>> dists;
  dists.reserve(x_.size());
  for (std::size_t i = 0; i < x_.size(); ++i) {
    float acc = 0.0f;
    const auto& xi = x_[i];
    for (std::size_t j = 0; j < q.size(); ++j) {
      const float diff = xi[j] - q[j];
      acc += diff * diff;
    }
    dists.emplace_back(acc, y_[i]);
  }
  const std::size_t k = std::min(k_, dists.size());
  std::partial_sort(dists.begin(), dists.begin() + static_cast<std::ptrdiff_t>(k),
                    dists.end());
  std::vector<int> votes(num_classes_, 0);
  for (std::size_t i = 0; i < k; ++i)
    votes[static_cast<std::size_t>(dists[i].second)]++;
  return static_cast<int>(
      std::max_element(votes.begin(), votes.end()) - votes.begin());
}

}  // namespace generic::ml
