// Feature quantizer: maps raw scalar features onto the level-hypervector
// bins of the HDC encoders (paper §2.2: "inputs are quantized into bins to
// limit the number of levels"). The ASIC uses 64 bins (level memory is
// 64 x 4K bits, §5.1); the bin boundaries are fit on the training set.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace generic {

class Quantizer {
 public:
  /// Construct an unfit quantizer with `bins` levels (default 64, matching
  /// the ASIC level memory depth).
  explicit Quantizer(std::size_t bins = 64);

  /// Fit per-dataset global min/max over all features of all samples, the
  /// scheme the reference HDC implementations use.
  void fit(std::span<const std::vector<float>> samples);

  /// Fit directly from a known range.
  void fit_range(float lo, float hi);

  /// Quantize one value to its bin index in [0, bins).
  std::size_t bin(float value) const;

  /// Quantize a whole feature vector.
  std::vector<std::uint16_t> transform(std::span<const float> sample) const;

  std::size_t bins() const { return bins_; }
  float lo() const { return lo_; }
  float hi() const { return hi_; }
  bool fitted() const { return fitted_; }

 private:
  std::size_t bins_;
  float lo_ = 0.0f;
  float hi_ = 1.0f;
  bool fitted_ = false;
};

}  // namespace generic
