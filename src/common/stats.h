// Descriptive statistics shared by the evaluation harness (Table 1 mean and
// standard deviation rows, geometric means of Figures 3/8/9/10).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace generic {

double mean(std::span<const double> xs);
/// Population standard deviation (the paper's STDV row aggregates a full,
/// fixed set of benchmarks, not a sample).
double stddev(std::span<const double> xs);
/// Geometric mean; all inputs must be > 0.
double geomean(std::span<const double> xs);
double median(std::vector<double> xs);
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// Index of the maximum element; first index wins ties. Empty => npos.
std::size_t argmax(std::span<const double> xs);

}  // namespace generic
