#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace generic {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  const double lo =
      *std::max_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double min_of(std::span<const double> xs) {
  double best = std::numeric_limits<double>::infinity();
  for (double x : xs) best = std::min(best, x);
  return best;
}

double max_of(std::span<const double> xs) {
  double best = -std::numeric_limits<double>::infinity();
  for (double x : xs) best = std::max(best, x);
  return best;
}

std::size_t argmax(std::span<const double> xs) {
  if (xs.empty()) return static_cast<std::size_t>(-1);
  std::size_t best = 0;
  for (std::size_t i = 1; i < xs.size(); ++i)
    if (xs[i] > xs[best]) best = i;
  return best;
}

}  // namespace generic
