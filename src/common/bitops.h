// Small helpers for packed-bit manipulation used by the hypervector layer.
#pragma once

#include <bit>
#include <cstdint>
#include <cstddef>

namespace generic {

inline constexpr std::size_t kWordBits = 64;

/// Number of 64-bit words needed to hold `bits` bits.
constexpr std::size_t words_for_bits(std::size_t bits) {
  return (bits + kWordBits - 1) / kWordBits;
}

/// Population count of one word.
inline int popcount64(std::uint64_t w) { return std::popcount(w); }

/// Mask keeping the low `n` bits of a word (n in [0, 64]).
constexpr std::uint64_t low_mask(std::size_t n) {
  return n >= 64 ? ~0ULL : ((1ULL << n) - 1ULL);
}

/// Extract bit `i` from a packed word array.
inline bool get_bit(const std::uint64_t* words, std::size_t i) {
  return (words[i / kWordBits] >> (i % kWordBits)) & 1ULL;
}

/// Set bit `i` in a packed word array to `value`.
inline void set_bit(std::uint64_t* words, std::size_t i, bool value) {
  const std::uint64_t mask = 1ULL << (i % kWordBits);
  if (value)
    words[i / kWordBits] |= mask;
  else
    words[i / kWordBits] &= ~mask;
}

/// Flip bit `i` in a packed word array.
inline void flip_bit(std::uint64_t* words, std::size_t i) {
  words[i / kWordBits] ^= 1ULL << (i % kWordBits);
}

}  // namespace generic
