// rng.h is header-only; this TU exists so the library has a stable archive
// member for the component and to catch ODR issues early.
#include "common/rng.h"

namespace generic {
static_assert(sizeof(Rng) > 0, "Rng must be a complete type");
}  // namespace generic
