// Fixed-size worker pool with a chunked, deterministic parallel_for.
//
// Design goals, in priority order (docs/parallelism.md):
//  1. Determinism — chunk boundaries are a pure function of (n, lanes);
//     every chunk knows its index, so callers write results into indexed
//     slots or merge per-chunk partials in fixed chunk order. Which OS
//     thread executes a chunk is scheduling noise that never reaches the
//     results. There is deliberately no work stealing: stealing changes
//     nothing observable here (chunks are claimed from one atomic cursor)
//     and keeping the model trivial keeps the determinism argument trivial.
//  2. Zero surprises at the edges — a pool of 1 lane (or n == 0/1) runs
//     inline on the caller with no synchronization at all, so the serial
//     path *is* the parallel path with lanes = 1; nested parallel_for from
//     inside a worker also degrades to inline execution instead of
//     deadlocking.
//  3. Exceptions propagate — the first exception thrown by any chunk is
//     captured and rethrown on the calling thread after the job drains.
//
// The caller participates in the job, so a pool constructed with N lanes
// runs chunks on up to N threads total (N-1 workers + the caller).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "obs/obs.h"

namespace generic {

class ThreadPool {
 public:
  /// A pool with `lanes` execution lanes (caller + lanes-1 workers).
  /// lanes == 0 picks std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t lanes = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t lanes() const { return lanes_; }

  /// Deterministic chunk grid: split [0, n) into at most `parts` contiguous
  /// chunks of near-equal size (the first n % parts chunks get one extra
  /// element). Pure function of (n, parts) — the contract every batched API
  /// builds its "fixed chunk order" reduction on.
  static std::vector<std::pair<std::size_t, std::size_t>> chunk_grid(
      std::size_t n, std::size_t parts);

  /// Run fn(begin, end, chunk_index) over the chunk_grid(n, lanes()).
  /// Chunks are claimed from a single atomic cursor; all lanes (including
  /// the caller) execute chunks until the grid drains. Blocks until every
  /// chunk finished; rethrows the first chunk exception.
  void parallel_for(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

  /// Map i -> fn(i) for i in [0, n), results in index order. fn must be
  /// const-callable from multiple threads; each slot is written exactly
  /// once, so no synchronization is needed beyond the pool's own barrier.
  template <typename T, typename Fn>
  std::vector<T> parallel_map(std::size_t n, Fn&& fn) {
    std::vector<T> out(n);
    parallel_for(n, [&](std::size_t begin, std::size_t end, std::size_t) {
      for (std::size_t i = begin; i < end; ++i) out[i] = fn(i);
    });
    return out;
  }

  /// Cumulative execution statistics since construction (obs layer): jobs
  /// and chunks run, the largest chunk grid posted, and per-lane busy time
  /// plus chunk counts. Lane 0 is the calling thread; lanes 1..N-1 are the
  /// workers. All counters are relaxed atomics maintained on the execution
  /// path — reading them from any thread is race-free, and none of them
  /// feed back into scheduling, so the determinism contract is untouched.
  /// Caveat: chunks of a *nested* parallel_for execute inline inside an
  /// outer chunk, so their time is attributed to the lane running the outer
  /// chunk (busy time is wall time inside chunk bodies, not CPU time).
  obs::PoolStats stats() const;

 private:
  struct Job {
    const std::function<void(std::size_t, std::size_t, std::size_t)>* fn;
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::exception_ptr error;
    std::mutex error_mu;
  };

  /// Per-lane execution counters. Written by the executing lane with
  /// relaxed atomics (chunks race-free under TSan); read by stats().
  struct LaneCounters {
    std::atomic<std::uint64_t> busy_ns{0};
    std::atomic<std::uint64_t> chunks{0};
  };

  void worker_loop(std::size_t lane_index);
  static void run_chunks(Job& job, LaneCounters& lane);

  std::size_t lanes_ = 1;
  std::vector<std::thread> workers_;

  std::chrono::steady_clock::time_point created_ =
      std::chrono::steady_clock::now();
  std::vector<LaneCounters> lane_stats_;
  std::atomic<std::uint64_t> jobs_{0};
  std::atomic<std::uint64_t> chunks_total_{0};
  std::atomic<std::uint64_t> max_chunks_{0};

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a job
  std::condition_variable done_cv_;   // caller waits for the job to drain
  Job* job_ = nullptr;
  std::uint64_t job_generation_ = 0;  // wakes workers exactly once per job
  std::size_t attached_ = 0;  // workers currently holding a Job pointer
  bool stop_ = false;
};

/// Process-wide default pool used by the `--threads N` plumbing. Starts
/// with 1 lane (fully serial); set_global_threads() resizes it. Not
/// thread-safe against concurrent resizing — resize once at startup.
ThreadPool& global_pool();
void set_global_threads(std::size_t lanes);

}  // namespace generic
