// Deterministic pseudo-random number generation for the whole library.
//
// Every stochastic component of this reproduction (item memories, synthetic
// dataset generators, ML initialisation, bit-flip fault injection) draws
// from a seeded Rng so that runs, tests and benchmark tables are exactly
// reproducible. The generator is xoshiro256** seeded via splitmix64, which
// is fast, has a 2^256-1 period and passes BigCrush — more than adequate for
// hypervector generation where we mainly need unbiased independent bits.
#pragma once

#include <cstdint>
#include <cstddef>
#include <cmath>

namespace generic {

/// Single-step splitmix64; used to expand a 64-bit seed into generator state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** deterministic PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E2Fu) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Uniform 64 random bits.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's multiply-shift rejection method: unbiased and branch-light.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = -n % n;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli(p) — true with probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Standard normal via Box-Muller (cached second variate).
  double normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    do {
      u1 = uniform();
    } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 6.283185307179586476925286766559 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Derive an independent child generator; `stream` tags the purpose so
  /// two different consumers of the same parent seed never collide.
  Rng fork(std::uint64_t stream) {
    std::uint64_t sm = next_u64() ^ (0xA5A5A5A5DEADBEEFULL + stream * 0x9E3779B97F4A7C15ULL);
    return Rng(splitmix64(sm));
  }

  /// Fisher-Yates shuffle of indices [0, n).
  template <typename Container>
  void shuffle(Container& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      auto tmp = v[i - 1];
      v[i - 1] = v[j];
      v[j] = tmp;
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace generic
