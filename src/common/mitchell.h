// Mitchell's logarithm-based approximate arithmetic (IRE Trans. 1962),
// used by the GENERIC ASIC's score divider (paper §4.2.1, ref [18]).
//
// The similarity metric delta_i = (H·C_i)^2 / ||C_i||^2 needs one division
// per class. A full divider is large; the ASIC instead computes
// log2(a) - log2(b) with Mitchell's piecewise-linear log approximation and
// compares classes in the log domain. The worst-case relative error of a
// Mitchell division is ~11.1%, which HDC's wide score margins absorb.
#pragma once

#include <cstdint>

namespace generic {

/// Fixed-point format of the Mitchell log: 6 integer bits (enough for
/// 64-bit operands) and 16 fractional bits.
inline constexpr int kMitchellFracBits = 16;

/// Mitchell piecewise-linear log2 of a positive integer, returned in fixed
/// point with kMitchellFracBits fractional bits. log2(x) ~= k + m where
/// x = 2^k (1 + m), m in [0,1) read directly from the mantissa bits.
/// Worst-case error ~0.086 bits (underestimate).
std::int64_t mitchell_log2(std::uint64_t x);

/// Mitchell log2 with the standard quadratic mantissa correction
///   log2(1+m) ~= m + c*m*(1-m),  c = 0.343
/// — one extra narrow multiply in hardware, worst-case error ~0.008 bits.
/// The GENERIC score comparator uses this variant: class-score margins on
/// quantized models are tighter than raw Mitchell's error band, and the
/// retraining loop would otherwise chase phantom mispredictions.
std::int64_t mitchell_log2_corrected(std::uint64_t x);

/// Approximate a/b (b > 0) via 2^(log2 a - log2 b), Mitchell in both
/// directions. Returns 0 when a == 0.
std::uint64_t mitchell_divide(std::uint64_t a, std::uint64_t b);

/// Score comparison in the log domain as the ASIC does it: returns the
/// fixed-point value log2(a) - log2(b), usable to rank a/b across classes
/// without ever leaving the log domain. Returns INT64_MIN for a == 0.
std::int64_t mitchell_log_ratio(std::uint64_t a, std::uint64_t b);

}  // namespace generic
