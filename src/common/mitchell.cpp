#include "common/mitchell.h"

#include <bit>
#include <limits>

namespace generic {

std::int64_t mitchell_log2(std::uint64_t x) {
  if (x == 0) return std::numeric_limits<std::int64_t>::min();
  const int k = 63 - std::countl_zero(x);  // floor(log2 x)
  // Mantissa m = (x - 2^k) / 2^k in [0,1), kept to kMitchellFracBits bits.
  std::uint64_t mantissa = x - (1ULL << k);
  std::int64_t frac;
  if (k >= kMitchellFracBits)
    frac = static_cast<std::int64_t>(mantissa >> (k - kMitchellFracBits));
  else
    frac = static_cast<std::int64_t>(mantissa << (kMitchellFracBits - k));
  return (static_cast<std::int64_t>(k) << kMitchellFracBits) + frac;
}

std::int64_t mitchell_log2_corrected(std::uint64_t x) {
  if (x == 0) return std::numeric_limits<std::int64_t>::min();
  const std::int64_t raw = mitchell_log2(x);
  // raw = (k << F) + m_fixed with m in [0, 1); add c*m*(1-m), c = 0.343
  // in the same fixed point (c ~= 22479 / 2^16).
  const std::int64_t m = raw & ((1LL << kMitchellFracBits) - 1);
  const std::int64_t one = 1LL << kMitchellFracBits;
  const std::int64_t c = 22479;  // round(0.343 * 2^16)
  const std::int64_t correction =
      (((c * m) >> kMitchellFracBits) * (one - m)) >> kMitchellFracBits;
  return raw + correction;
}

std::uint64_t mitchell_divide(std::uint64_t a, std::uint64_t b) {
  if (a == 0) return 0;
  const std::int64_t diff = mitchell_log2(a) - mitchell_log2(b);
  // 2^diff with Mitchell's inverse approximation: 2^(k + f) ~= 2^k (1 + f).
  const std::int64_t k = diff >> kMitchellFracBits;  // arithmetic shift: floor
  const std::int64_t f = diff - (k << kMitchellFracBits);
  if (k <= -kMitchellFracBits) return 0;
  // value = (1 + f/2^F) * 2^k  computed in fixed point.
  const std::uint64_t one_plus_f =
      (1ULL << kMitchellFracBits) + static_cast<std::uint64_t>(f);
  const std::uint64_t half = 1ULL << (kMitchellFracBits - 1);
  if (k >= 0) {
    const std::uint64_t scaled = one_plus_f << k;
    return (scaled + half) >> kMitchellFracBits;  // round to nearest
  }
  return ((one_plus_f >> static_cast<int>(-k)) + half) >> kMitchellFracBits;
}

std::int64_t mitchell_log_ratio(std::uint64_t a, std::uint64_t b) {
  if (a == 0) return std::numeric_limits<std::int64_t>::min();
  return mitchell_log2(a) - mitchell_log2(b);
}

}  // namespace generic
