#include "common/quantizer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace generic {

Quantizer::Quantizer(std::size_t bins) : bins_(bins) {
  if (bins_ == 0) throw std::invalid_argument("Quantizer needs >= 1 bin");
}

void Quantizer::fit(std::span<const std::vector<float>> samples) {
  float lo = std::numeric_limits<float>::infinity();
  float hi = -std::numeric_limits<float>::infinity();
  for (const auto& s : samples)
    for (float v : s) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  if (!(lo <= hi)) throw std::invalid_argument("Quantizer::fit: empty input");
  fit_range(lo, hi);
}

void Quantizer::fit_range(float lo, float hi) {
  if (!(lo <= hi)) throw std::invalid_argument("Quantizer: lo must be <= hi");
  lo_ = lo;
  hi_ = hi;
  fitted_ = true;
}

std::size_t Quantizer::bin(float value) const {
  if (!fitted_) throw std::logic_error("Quantizer used before fit");
  if (hi_ == lo_) return 0;
  const float t = (value - lo_) / (hi_ - lo_);
  const auto idx = static_cast<std::ptrdiff_t>(
      std::floor(static_cast<double>(t) * static_cast<double>(bins_)));
  return static_cast<std::size_t>(
      std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(bins_) - 1));
}

std::vector<std::uint16_t> Quantizer::transform(
    std::span<const float> sample) const {
  std::vector<std::uint16_t> out(sample.size());
  for (std::size_t i = 0; i < sample.size(); ++i)
    out[i] = static_cast<std::uint16_t>(bin(sample[i]));
  return out;
}

}  // namespace generic
