#include "common/thread_pool.h"

#include <memory>

namespace generic {
namespace {

/// Set while this thread is executing chunks of some job; a nested
/// parallel_for from such a thread runs inline instead of re-entering the
/// pool (which would deadlock waiting for the lane it occupies).
thread_local bool t_inside_job = false;

}  // namespace

ThreadPool::ThreadPool(std::size_t lanes) {
  if (lanes == 0) lanes = std::thread::hardware_concurrency();
  lanes_ = lanes == 0 ? 1 : lanes;
  lane_stats_ = std::vector<LaneCounters>(lanes_);
  workers_.reserve(lanes_ - 1);
  for (std::size_t i = 0; i + 1 < lanes_; ++i)
    workers_.emplace_back([this, i] { worker_loop(i + 1); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::vector<std::pair<std::size_t, std::size_t>> ThreadPool::chunk_grid(
    std::size_t n, std::size_t parts) {
  std::vector<std::pair<std::size_t, std::size_t>> grid;
  if (n == 0) return grid;
  if (parts == 0) parts = 1;
  parts = std::min(parts, n);
  grid.reserve(parts);
  const std::size_t base = n / parts;
  const std::size_t extra = n % parts;  // first `extra` chunks get +1
  std::size_t begin = 0;
  for (std::size_t c = 0; c < parts; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    grid.emplace_back(begin, begin + len);
    begin += len;
  }
  return grid;
}

void ThreadPool::run_chunks(Job& job, LaneCounters& lane) {
  const bool was_inside = t_inside_job;
  t_inside_job = true;
  const std::size_t total = job.chunks.size();
  for (;;) {
    const std::size_t c = job.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= total) break;
    const auto t0 = std::chrono::steady_clock::now();
    try {
      const auto [begin, end] = job.chunks[c];
      (*job.fn)(begin, end, c);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.error_mu);
      if (!job.error) job.error = std::current_exception();
    }
    lane.busy_ns.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()),
        std::memory_order_relaxed);
    lane.chunks.fetch_add(1, std::memory_order_relaxed);
    job.done.fetch_add(1, std::memory_order_acq_rel);
  }
  t_inside_job = was_inside;
}

void ThreadPool::parallel_for(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  GENERIC_SPAN("pool.job");
  Job job;
  job.fn = &fn;
  job.chunks = chunk_grid(n, lanes_);

  jobs_.fetch_add(1, std::memory_order_relaxed);
  chunks_total_.fetch_add(job.chunks.size(), std::memory_order_relaxed);
  std::uint64_t prev_max = max_chunks_.load(std::memory_order_relaxed);
  while (prev_max < job.chunks.size() &&
         !max_chunks_.compare_exchange_weak(prev_max, job.chunks.size(),
                                            std::memory_order_relaxed)) {
  }
  GENERIC_COUNTER_ADD("pool.jobs", 1);
  GENERIC_COUNTER_ADD("pool.chunks", job.chunks.size());
  GENERIC_GAUGE_MAX("pool.max_chunks_per_job", job.chunks.size());

  // Serial fast path: one lane, a one-chunk grid, or a nested call from a
  // worker lane. Same chunk grid, same chunk order, no synchronization.
  // Chunk time lands on lane 0 even when the call is nested (the executing
  // worker's own lane already times the enclosing outer chunk).
  if (lanes_ == 1 || job.chunks.size() == 1 || t_inside_job) {
    run_chunks(job, lane_stats_[0]);
    if (job.error) std::rethrow_exception(job.error);
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &job;
    ++job_generation_;
  }
  work_cv_.notify_all();

  run_chunks(job, lane_stats_[0]);  // the caller is a lane too

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] {
    return job.done.load(std::memory_order_acquire) == job.chunks.size() &&
           attached_ == 0;
  });
  job_ = nullptr;
  lock.unlock();

  if (job.error) std::rethrow_exception(job.error);
}

void ThreadPool::worker_loop(std::size_t lane_index) {
#if GENERIC_OBS_ENABLED
  obs::set_current_thread_name("pool-worker-" + std::to_string(lane_index));
#endif
  std::uint64_t seen_generation = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || (job_ != nullptr && job_generation_ != seen_generation);
      });
      if (stop_) return;
      seen_generation = job_generation_;
      job = job_;
      ++attached_;
    }
    run_chunks(*job, lane_stats_[lane_index]);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --attached_;
    }
    done_cv_.notify_one();
  }
}

obs::PoolStats ThreadPool::stats() const {
  obs::PoolStats out;
  out.lanes = lanes_;
  out.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - created_)
          .count());
  out.jobs = jobs_.load(std::memory_order_relaxed);
  out.chunks = chunks_total_.load(std::memory_order_relaxed);
  out.max_chunks_per_job = max_chunks_.load(std::memory_order_relaxed);
  out.per_lane.resize(lanes_);
  for (std::size_t i = 0; i < lanes_; ++i) {
    out.per_lane[i].busy_ns = lane_stats_[i].busy_ns.load(std::memory_order_relaxed);
    out.per_lane[i].chunks = lane_stats_[i].chunks.load(std::memory_order_relaxed);
  }
  return out;
}

namespace {
std::unique_ptr<ThreadPool>& global_pool_storage() {
  static std::unique_ptr<ThreadPool> pool = std::make_unique<ThreadPool>(1);
  return pool;
}
}  // namespace

ThreadPool& global_pool() { return *global_pool_storage(); }

void set_global_threads(std::size_t lanes) {
  auto& slot = global_pool_storage();
  const std::size_t want = lanes == 0 ? 1 : lanes;
  if (slot->lanes() != want) slot = std::make_unique<ThreadPool>(want);
}

}  // namespace generic
