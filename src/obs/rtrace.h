// Request-level causal tracing (docs/observability.md): typed lifecycle
// events stamped with virtual time, request id, model version and ladder
// rung, recorded by the serving stack at every decision point ON THE
// CONTROL THREAD. Because every emission site sits on the deterministic
// virtual-time path (serve::ServeEngine's control loop, lifecycle::Manager
// observe/poll, chaos::ChaosHook poll), the event stream — seq numbers
// included — is byte-identical across --threads and kernel backends, which
// is what makes generic.rtrace.v1 documents golden-testable artifacts.
//
// Two sinks hang off one record() call:
//  * the TRACE LOG — everything since the last reset(), up to
//    kMaxTraceEvents (overflow counts as dropped, never grows unbounded);
//    exported as generic.rtrace.v1 (--rtrace) or as a Chrome trace with
//    per-kind tracks and flow arrows linking each request across
//    queue -> encode -> predict -> retry -> swap (--rtrace-chrome).
//  * the FLIGHT RECORDER — a fixed-capacity ring keeping the LAST
//    flight_capacity() events with wrap/dropped accounting; dumped on
//    demand (--flight-dump) and automatically by the chaos orchestrator
//    when an invariant fails, exported as generic.flight.v1.
//
// Cost model (bench/obs_overhead): with both sinks off, record() is one
// relaxed atomic load and a branch. With a sink on it is a mutex-guarded
// append (the recording path is single-threaded by design, so the mutex is
// uncontended; it exists so misuse is safe, not slow-path-correct-only).
// Under -DGENERIC_OBS=OFF record() compiles to nothing and every exporter
// still emits an empty-but-valid document with "obs_enabled": false.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#ifndef GENERIC_OBS_ENABLED
#define GENERIC_OBS_ENABLED 1
#endif

namespace generic::obs::rtrace {

/// Typed lifecycle events. Order is part of the generic.rtrace.v1 schema
/// (the Chrome exporter uses the enum value as the track id); append new
/// kinds at the end.
enum class EventKind : std::uint8_t {
  kAdmit,          ///< request entered the engine (detail: pending depth)
  kEnqueue,        ///< parked in the pending queue (detail: queue depth)
  kDequeue,        ///< pulled from the pending queue (detail: queue depth)
  kShed,           ///< refused at admission (high-water)
  kEncode,         ///< service attempt began: modeled encode stage
                   ///< (detail: rung dims)
  kRetryAttempt,   ///< service attempt beyond the first (detail: attempt #)
  kUpset,          ///< transient fault corrupted the attempt (detail: attempt #)
  kTimeout,        ///< deadline expired (detail: attempt count)
  kFailed,         ///< faults persisted through every retry
  kPredict,        ///< scored in a flushed batch (detail: predicted class)
  kDegradeStep,    ///< ladder moved (detail: signed rung delta)
  kSwapFlush,      ///< pre-install flush of all deferred batches
                   ///< (detail: requests flushed)
  kSwapInstall,    ///< new model version installed
  kRollback,       ///< rejected shadow recorded, nothing installed
  kDriftAlarm,     ///< drift detector alarm edge (detail: milli drift score)
  kRetrainStart,   ///< background retrain triggered (detail: milli score)
  kCheckpointSave, ///< validated version checkpointed
  kFaultInject,    ///< chaos burst corrupted the serving model
                   ///< (detail: burst index)
  kSloAlert,       ///< burn-rate alert edge (detail: milli fast burn;
                   ///< rung field carries fired=1 / cleared=0)
  kEncoderFault,   ///< burst corrupted encoder item/level memory
                   ///< (detail: faulty rows incl. id seed)
  kEncoderDetect,  ///< guard scan flagged corrupted encoder rows
                   ///< (detail: faulty rows incl. id seed)
  kEncoderMask,    ///< serving switched to masked encodings
                   ///< (detail: faulty rows masked around)
  kEncoderScrub,   ///< corrupted rows rematerialized from seed
                   ///< (detail: rows scrubbed; rung carries verified=1/0)
  kNetAccept,      ///< ingress connection accepted (request: conn id)
  kNetClose,       ///< ingress connection closed (request: conn id;
                   ///< detail: frames parsed on the connection)
  kNetError,       ///< framed-protocol violation closed the connection
                   ///< (request: conn id; detail: ProtoError code)
  kFleetRoute,     ///< fleet admitted a request to a model engine
                   ///< (rung: priority class; detail: model index)
  kFleetQuota,     ///< fleet refused a request: tenant quota exhausted
                   ///< (rung: priority class; detail: tenant id)
  kFleetShed,      ///< fleet shed a request: weighted priority shedding
                   ///< (rung: priority class; detail: model index)
};

inline constexpr std::size_t kNumEventKinds = 29;

/// Stable short name used in generic.rtrace.v1 ("admit", "enqueue", ...).
std::string_view event_kind_name(EventKind kind);

/// Sentinel request id for engine-scoped events (swaps, alarms, alerts).
inline constexpr std::uint64_t kNoRequest = ~0ull;

/// One recorded event. `seq` is assigned at record time and counts every
/// record() call since reset() — a flight-ring entry's seq is therefore its
/// position in the full stream, even after wrap.
struct Event {
  std::uint64_t seq = 0;
  std::uint64_t vt_us = 0;           ///< virtual time of the decision
  EventKind kind = EventKind::kAdmit;
  std::uint64_t request = kNoRequest;  ///< request id, or kNoRequest
  std::uint64_t version = 0;         ///< serving model version at the event
  std::uint32_t rung = 0;            ///< ladder rung at the event
  std::int64_t detail = 0;           ///< kind-specific payload, see EventKind

  bool operator==(const Event&) const = default;
};

// ---- Runtime switches -----------------------------------------------------

/// Full-log collection for --rtrace / --rtrace-chrome.
bool trace_enabled();
void set_trace(bool on);

/// Flight-recorder ring collection for --flight-dump and chaos auto-dumps.
bool flight_enabled();
void set_flight(bool on);

/// Resize the flight ring (drops its current contents). Capacity is
/// clamped to >= 1; the default is kDefaultFlightCapacity.
void set_flight_capacity(std::size_t capacity);
std::size_t flight_capacity();

inline constexpr std::size_t kDefaultFlightCapacity = 4096;

/// Hard cap on the full trace log; overflow counts as dropped.
inline constexpr std::size_t kMaxTraceEvents = 1u << 20;

/// Drop all recorded events and zero seq/dropped counters. Switches and
/// the flight capacity are left as set.
void reset();

// ---- Recording ------------------------------------------------------------

#if GENERIC_OBS_ENABLED

namespace detail {
/// Bit 0: trace log on; bit 1: flight ring on.
extern std::atomic<std::uint32_t> g_sink_mask;
void record_slow(EventKind kind, std::uint64_t vt_us, std::uint64_t request,
                 std::uint64_t version, std::uint32_t rung,
                 std::int64_t detail);
}  // namespace detail

/// Record one event into every enabled sink. With both sinks off this is
/// one relaxed load and a branch.
inline void record(EventKind kind, std::uint64_t vt_us,
                   std::uint64_t request = kNoRequest,
                   std::uint64_t version = 0, std::uint32_t rung = 0,
                   std::int64_t detail = 0) {
  if (detail::g_sink_mask.load(std::memory_order_relaxed) == 0) return;
  detail::record_slow(kind, vt_us, request, version, rung, detail);
}

#else  // GENERIC_OBS_ENABLED == 0

inline void record(EventKind, std::uint64_t, std::uint64_t = kNoRequest,
                   std::uint64_t = 0, std::uint32_t = 0, std::int64_t = 0) {}

#endif  // GENERIC_OBS_ENABLED

// ---- Snapshots ------------------------------------------------------------

/// Point-in-time copy of the trace log.
struct TraceLog {
  std::vector<Event> events;
  std::uint64_t dropped = 0;  ///< record() calls past kMaxTraceEvents
};

/// Point-in-time copy of the flight ring, oldest event first.
struct FlightLog {
  std::vector<Event> events;   ///< at most `capacity`, oldest first
  std::size_t capacity = 0;
  std::uint64_t recorded = 0;  ///< events ever offered to the ring
  std::uint64_t dropped = 0;   ///< overwritten by wrap (recorded - kept)
};

TraceLog trace_log();
FlightLog flight_log();

// ---- Exporters ------------------------------------------------------------
//
// All exporters are pure functions of their snapshot: fixed field order,
// virtual-time timestamps only — equal logs render to equal bytes. The
// no-argument forms snapshot the live recorder.

/// Schema `generic.rtrace.v1`.
std::string rtrace_to_json(const TraceLog& log);
std::string rtrace_to_json();

/// Chrome trace-event JSON: one "X" slice per event on a per-kind track,
/// async "b"/"e" spans bracketing each request's lifetime, and "s"/"t"/"f"
/// flow arrows linking a request's events across tracks. Loadable in
/// Perfetto; otherData carries schema generic.rtrace.chrome.v1.
std::string rtrace_to_chrome_json(const TraceLog& log);
std::string rtrace_to_chrome_json();

/// Schema `generic.flight.v1`, events oldest first.
std::string flight_to_json(const FlightLog& log);
std::string flight_to_json();

void write_rtrace_json(const std::string& path, const TraceLog& log);
void write_rtrace_chrome_json(const std::string& path, const TraceLog& log);
void write_flight_json(const std::string& path, const FlightLog& log);

}  // namespace generic::obs::rtrace
