#include "obs/export.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace generic::obs {
namespace {

/// Same fixed-format doubles as the campaign JSON: round-trippable,
/// locale-independent.
void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

double ns_to_s(std::uint64_t ns) { return static_cast<double>(ns) * 1e-9; }

std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes
#else
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // KiB
#endif
#else
  return 0;
#endif
}

/// `"key": value` map body from sorted (name, value) pairs.
void append_u64_map(
    std::string& out,
    const std::vector<std::pair<std::string, std::uint64_t>>& values) {
  out += "{";
  bool first = true;
  for (const auto& [name, v] : values) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_json_string(out, name);
    out += ": " + std::to_string(v);
  }
  if (!first) out += "\n  ";
  out += "}";
}

const StageStats* find_stage(const MetricsSnapshot& snap,
                             std::string_view name) {
  for (const auto& [n, s] : snap.stages)
    if (n == name) return &s;
  return nullptr;
}

std::uint64_t find_counter(const MetricsSnapshot& snap,
                           std::string_view name) {
  for (const auto& [n, v] : snap.counters)
    if (n == name) return v;
  return 0;
}

}  // namespace

MetricsSnapshot collect_metrics() {
  Registry& reg = Registry::instance();
  MetricsSnapshot snap;
  snap.wall_time_s = ns_to_s(reg.now_ns());
  snap.peak_rss_bytes = peak_rss_bytes();
  snap.dropped_spans = reg.dropped_spans();
  snap.counters = reg.counter_values();
  snap.gauges = reg.gauge_values();
  snap.stages = reg.stage_stats();
  return snap;
}

std::string metrics_to_json(const MetricsSnapshot& snap) {
  std::string out;
  out.reserve(2048);
  out += "{\n";
  out += "  \"schema\": \"generic.metrics.v1\",\n";
  out += std::string("  \"obs_enabled\": ") +
         (snap.enabled ? "true" : "false") + ",\n";
  out += "  \"wall_time_s\": ";
  append_double(out, snap.wall_time_s);
  out += ",\n  \"peak_rss_bytes\": " + std::to_string(snap.peak_rss_bytes);
  out += ",\n  \"dropped_spans\": " + std::to_string(snap.dropped_spans);

  out += ",\n  \"counters\": ";
  append_u64_map(out, snap.counters);
  out += ",\n  \"gauges\": ";
  append_u64_map(out, snap.gauges);

  out += ",\n  \"stages\": [";
  for (std::size_t i = 0; i < snap.stages.size(); ++i) {
    const auto& [name, s] = snap.stages[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    append_json_string(out, name);
    out += ", \"calls\": " + std::to_string(s.calls);
    out += ", \"total_s\": ";
    append_double(out, ns_to_s(s.total_ns));
    out += ", \"mean_s\": ";
    append_double(out, s.calls == 0 ? 0.0
                                    : ns_to_s(s.total_ns) /
                                          static_cast<double>(s.calls));
    out += ", \"min_s\": ";
    append_double(out, ns_to_s(s.min_ns));
    out += ", \"max_s\": ";
    append_double(out, ns_to_s(s.max_ns));
    out += "}";
  }
  out += snap.stages.empty() ? "]" : "\n  ]";

  // Derived throughput: emitted only when both the counter and the stage
  // that times it are present, so consumers can rely on presence == valid.
  struct Derived {
    const char* key;
    const char* counter;
    const char* stage;
  };
  static constexpr Derived kDerived[] = {
      {"encode.samples_per_s", "encode.samples", "encode.batch"},
      {"predict.queries_per_s", "predict.queries", "predict.batch"},
      {"train.samples_per_s", "train.samples", "train.batch"},
      {"campaign.trials_per_s", "campaign.trials", "campaign.trial"},
  };
  out += ",\n  \"derived\": {";
  bool first = true;
  for (const auto& d : kDerived) {
    const StageStats* s = find_stage(snap, d.stage);
    const std::uint64_t c = find_counter(snap, d.counter);
    if (s == nullptr || s->total_ns == 0 || c == 0) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_json_string(out, d.key);
    out += ": ";
    append_double(out, static_cast<double>(c) / ns_to_s(s->total_ns));
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"thread_pool\": ";
  if (!snap.pool.has_value()) {
    out += "null";
  } else {
    const PoolStats& p = *snap.pool;
    out += "{\n";
    out += "    \"lanes\": " + std::to_string(p.lanes) + ",\n";
    out += "    \"wall_s\": ";
    append_double(out, ns_to_s(p.wall_ns));
    out += ",\n    \"jobs\": " + std::to_string(p.jobs) + ",\n";
    out += "    \"chunks_executed\": " + std::to_string(p.chunks) + ",\n";
    out += "    \"max_chunks_per_job\": " +
           std::to_string(p.max_chunks_per_job) + ",\n";
    out += "    \"workers\": [";
    for (std::size_t i = 0; i < p.per_lane.size(); ++i) {
      const auto& lane = p.per_lane[i];
      out += i == 0 ? "\n" : ",\n";
      out += "      {\"lane\": " + std::to_string(i);
      out += ", \"busy_s\": ";
      append_double(out, ns_to_s(lane.busy_ns));
      out += ", \"idle_s\": ";
      append_double(out, ns_to_s(p.wall_ns > lane.busy_ns
                                     ? p.wall_ns - lane.busy_ns
                                     : 0));
      out += ", \"chunks\": " + std::to_string(lane.chunks);
      out += "}";
    }
    out += p.per_lane.empty() ? "]" : "\n    ]";
    out += "\n  }";
  }
  out += "\n}\n";
  return out;
}

std::string trace_to_json() {
  Registry& reg = Registry::instance();
  const auto events = reg.trace_events();
  const auto tracks = reg.track_names();
  std::string out;
  out.reserve(256 + events.size() * 96);
  out += "{\n\"traceEvents\": [\n";
  bool first = true;
  for (const auto& [track, name] : tracks) {
    out += first ? "" : ",\n";
    first = false;
    out += "{\"ph\": \"M\", \"pid\": 1, \"tid\": " + std::to_string(track) +
           ", \"name\": \"thread_name\", \"args\": {\"name\": ";
    append_json_string(out, name);
    out += "}}";
  }
  char buf[64];
  for (const auto& e : events) {
    out += first ? "" : ",\n";
    first = false;
    out += "{\"ph\": \"X\", \"pid\": 1, \"tid\": " + std::to_string(e.track) +
           ", \"name\": ";
    append_json_string(out, e.name);
    out += ", \"cat\": \"generic\", \"ts\": ";
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(e.start_ns) * 1e-3);
    out += buf;
    out += ", \"dur\": ";
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(e.end_ns - e.start_ns) * 1e-3);
    out += buf;
    out += "}";
  }
  out += "\n],\n\"displayTimeUnit\": \"ms\",\n";
  out += "\"otherData\": {\"schema\": \"generic.trace.v1\", \"dropped_spans\": " +
         std::to_string(reg.dropped_spans()) + "}\n}\n";
  return out;
}

namespace {

void write_file(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw std::runtime_error("cannot open for writing: " + path);
  f << content;
  if (!f) throw std::runtime_error("write failed: " + path);
}

}  // namespace

void write_metrics_json(const std::string& path,
                        const MetricsSnapshot& snapshot) {
  write_file(path, metrics_to_json(snapshot));
}

void write_trace_json(const std::string& path) {
  write_file(path, trace_to_json());
}

Session::Session(std::string trace_path, std::string metrics_path)
    : trace_path_(std::move(trace_path)),
      metrics_path_(std::move(metrics_path)) {
  if (!trace_path_.empty() || !metrics_path_.empty())
    set_current_thread_name("main");
  if (!trace_path_.empty()) set_tracing(true);
  if (!metrics_path_.empty()) set_metrics(true);
}

Session::~Session() {
  try {
    if (!trace_path_.empty()) {
      write_trace_json(trace_path_);
      std::fprintf(stderr, "trace written to %s\n", trace_path_.c_str());
    }
    if (!metrics_path_.empty()) {
      MetricsSnapshot snap = collect_metrics();
      snap.pool = std::move(pool_);
      write_metrics_json(metrics_path_, snap);
      std::fprintf(stderr, "metrics written to %s\n", metrics_path_.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "obs: export failed: %s\n", e.what());
  }
  set_tracing(false);
  set_metrics(false);
}

}  // namespace generic::obs
