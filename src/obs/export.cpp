#include "obs/export.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace generic::obs {
namespace {

/// Same fixed-format doubles as the campaign JSON: round-trippable,
/// locale-independent.
void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  append_json_escaped(out, s);
  out += '"';
}

double ns_to_s(std::uint64_t ns) { return static_cast<double>(ns) * 1e-9; }

std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes
#else
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // KiB
#endif
#else
  return 0;
#endif
}

/// `"key": value` map body from sorted (name, value) pairs.
void append_u64_map(
    std::string& out,
    const std::vector<std::pair<std::string, std::uint64_t>>& values) {
  out += "{";
  bool first = true;
  for (const auto& [name, v] : values) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_json_string(out, name);
    out += ": " + std::to_string(v);
  }
  if (!first) out += "\n  ";
  out += "}";
}

const StageStats* find_stage(const MetricsSnapshot& snap,
                             std::string_view name) {
  for (const auto& [n, s] : snap.stages)
    if (n == name) return &s;
  return nullptr;
}

std::uint64_t find_counter(const MetricsSnapshot& snap,
                           std::string_view name) {
  for (const auto& [n, v] : snap.counters)
    if (n == name) return v;
  return 0;
}

}  // namespace

void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          // The cast matters: a plain (possibly signed) char sign-extends
          // through %x and renders 8-digit garbage instead of \u00XX.
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  append_json_escaped(out, s);
  out += '"';
  return out;
}

MetricsSnapshot collect_metrics() {
  Registry& reg = Registry::instance();
  MetricsSnapshot snap;
  snap.wall_time_s = ns_to_s(reg.now_ns());
  snap.peak_rss_bytes = peak_rss_bytes();
  snap.dropped_spans = reg.dropped_spans();
  snap.counters = reg.counter_values();
  snap.gauges = reg.gauge_values();
  snap.histograms = reg.histogram_values();
  snap.stages = reg.stage_stats();
  return snap;
}

std::string metrics_to_json(const MetricsSnapshot& snap) {
  std::string out;
  out.reserve(2048);
  out += "{\n";
  out += "  \"schema\": \"generic.metrics.v1\",\n";
  out += std::string("  \"obs_enabled\": ") +
         (snap.enabled ? "true" : "false") + ",\n";
  out += "  \"wall_time_s\": ";
  append_double(out, snap.wall_time_s);
  out += ",\n  \"peak_rss_bytes\": " + std::to_string(snap.peak_rss_bytes);
  out += ",\n  \"dropped_spans\": " + std::to_string(snap.dropped_spans);

  out += ",\n  \"counters\": ";
  append_u64_map(out, snap.counters);
  out += ",\n  \"gauges\": ";
  append_u64_map(out, snap.gauges);

  // Histograms render their summary first (count/sum/percentiles) and then
  // only the occupied buckets as {"bit_width": count}, so sparse
  // distributions stay compact while the full shape remains recoverable.
  out += ",\n  \"histograms\": {";
  {
    bool first_h = true;
    for (const auto& [name, h] : snap.histograms) {
      out += first_h ? "\n" : ",\n";
      first_h = false;
      out += "    ";
      append_json_string(out, name);
      out += ": {\"count\": " + std::to_string(h.count);
      out += ", \"sum\": " + std::to_string(h.sum);
      out += ", \"p50\": " + std::to_string(h.percentile(0.50));
      out += ", \"p95\": " + std::to_string(h.percentile(0.95));
      out += ", \"p99\": " + std::to_string(h.percentile(0.99));
      out += ", \"buckets\": {";
      bool first_b = true;
      for (std::size_t i = 0; i < h.buckets.size(); ++i) {
        if (h.buckets[i] == 0) continue;
        out += first_b ? "" : ", ";
        first_b = false;
        out += '"';
        out += std::to_string(i);
        out += "\": ";
        out += std::to_string(h.buckets[i]);
      }
      out += "}}";
    }
    if (!first_h) out += "\n  ";
  }
  out += "}";

  out += ",\n  \"stages\": [";
  for (std::size_t i = 0; i < snap.stages.size(); ++i) {
    const auto& [name, s] = snap.stages[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    append_json_string(out, name);
    out += ", \"calls\": " + std::to_string(s.calls);
    out += ", \"total_s\": ";
    append_double(out, ns_to_s(s.total_ns));
    out += ", \"mean_s\": ";
    append_double(out, s.calls == 0 ? 0.0
                                    : ns_to_s(s.total_ns) /
                                          static_cast<double>(s.calls));
    out += ", \"min_s\": ";
    append_double(out, ns_to_s(s.min_ns));
    out += ", \"max_s\": ";
    append_double(out, ns_to_s(s.max_ns));
    out += "}";
  }
  out += snap.stages.empty() ? "]" : "\n  ]";

  // Derived throughput: emitted only when both the counter and the stage
  // that times it are present, so consumers can rely on presence == valid.
  struct Derived {
    const char* key;
    const char* counter;
    const char* stage;
  };
  static constexpr Derived kDerived[] = {
      {"encode.samples_per_s", "encode.samples", "encode.batch"},
      {"predict.queries_per_s", "predict.queries", "predict.batch"},
      {"train.samples_per_s", "train.samples", "train.batch"},
      {"campaign.trials_per_s", "campaign.trials", "campaign.trial"},
  };
  out += ",\n  \"derived\": {";
  bool first = true;
  for (const auto& d : kDerived) {
    const StageStats* s = find_stage(snap, d.stage);
    const std::uint64_t c = find_counter(snap, d.counter);
    if (s == nullptr || s->total_ns == 0 || c == 0) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_json_string(out, d.key);
    out += ": ";
    append_double(out, static_cast<double>(c) / ns_to_s(s->total_ns));
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"thread_pool\": ";
  if (!snap.pool.has_value()) {
    out += "null";
  } else {
    const PoolStats& p = *snap.pool;
    out += "{\n";
    out += "    \"lanes\": " + std::to_string(p.lanes) + ",\n";
    out += "    \"wall_s\": ";
    append_double(out, ns_to_s(p.wall_ns));
    out += ",\n    \"jobs\": " + std::to_string(p.jobs) + ",\n";
    out += "    \"chunks_executed\": " + std::to_string(p.chunks) + ",\n";
    out += "    \"max_chunks_per_job\": " +
           std::to_string(p.max_chunks_per_job) + ",\n";
    out += "    \"workers\": [";
    for (std::size_t i = 0; i < p.per_lane.size(); ++i) {
      const auto& lane = p.per_lane[i];
      out += i == 0 ? "\n" : ",\n";
      out += "      {\"lane\": " + std::to_string(i);
      out += ", \"busy_s\": ";
      append_double(out, ns_to_s(lane.busy_ns));
      out += ", \"idle_s\": ";
      append_double(out, ns_to_s(p.wall_ns > lane.busy_ns
                                     ? p.wall_ns - lane.busy_ns
                                     : 0));
      out += ", \"chunks\": " + std::to_string(lane.chunks);
      out += "}";
    }
    out += p.per_lane.empty() ? "]" : "\n    ]";
    out += "\n  }";
  }

  out += ",\n  \"hardware\": ";
  if (!snap.hardware.has_value()) {
    out += "null";
  } else {
    const HardwareStats& hw = *snap.hardware;
    out += "{\"energy_j\": ";
    append_double(out, hw.energy_j);
    out += ", \"elapsed_s\": ";
    append_double(out, hw.elapsed_s);
    out += ", \"cycles\": " + std::to_string(hw.cycles);
    out += "}";
  }
  out += "\n}\n";
  return out;
}

std::string metrics_to_json_line(const MetricsSnapshot& snapshot) {
  // The pretty renderer escapes newlines inside strings, so every literal
  // '\n' in its output is structural whitespace: dropping it together with
  // the indentation that follows compacts without a JSON parser.
  const std::string pretty = metrics_to_json(snapshot);
  std::string out;
  out.reserve(pretty.size());
  std::size_t i = 0;
  while (i < pretty.size()) {
    const char c = pretty[i];
    if (c == '\n') {
      ++i;
      while (i < pretty.size() && pretty[i] == ' ') ++i;
      continue;
    }
    out += c;
    ++i;
  }
  out += '\n';
  return out;
}

std::string trace_to_json() {
  Registry& reg = Registry::instance();
  const auto events = reg.trace_events();
  const auto tracks = reg.track_names();
  std::string out;
  out.reserve(256 + events.size() * 96);
  out += "{\n\"traceEvents\": [\n";
  bool first = true;
  for (const auto& [track, name] : tracks) {
    out += first ? "" : ",\n";
    first = false;
    out += "{\"ph\": \"M\", \"pid\": 1, \"tid\": " + std::to_string(track) +
           ", \"name\": \"thread_name\", \"args\": {\"name\": ";
    append_json_string(out, name);
    out += "}}";
  }
  char buf[64];
  for (const auto& e : events) {
    out += first ? "" : ",\n";
    first = false;
    out += "{\"ph\": \"X\", \"pid\": 1, \"tid\": " + std::to_string(e.track) +
           ", \"name\": ";
    append_json_string(out, e.name);
    out += ", \"cat\": \"generic\", \"ts\": ";
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(e.start_ns) * 1e-3);
    out += buf;
    out += ", \"dur\": ";
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(e.end_ns - e.start_ns) * 1e-3);
    out += buf;
    if (e.num_args > 0) {
      out += ", \"args\": {";
      for (std::uint32_t i = 0; i < e.num_args; ++i) {
        if (i != 0) out += ", ";
        append_json_string(out, e.args[i].key);
        out += ": " + std::to_string(e.args[i].value);
      }
      out += "}";
    }
    out += "}";
  }
  out += "\n],\n\"displayTimeUnit\": \"ms\",\n";
  out += "\"otherData\": {\"schema\": \"generic.trace.v1\", \"dropped_spans\": " +
         std::to_string(reg.dropped_spans()) + "}\n}\n";
  return out;
}

namespace {

void write_file(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw std::runtime_error("cannot open for writing: " + path);
  f << content;
  if (!f) throw std::runtime_error("write failed: " + path);
}

}  // namespace

void write_metrics_json(const std::string& path,
                        const MetricsSnapshot& snapshot) {
  write_file(path, metrics_to_json(snapshot));
}

void write_trace_json(const std::string& path) {
  write_file(path, trace_to_json());
}

Session::Session(std::string trace_path, std::string metrics_path)
    : trace_path_(std::move(trace_path)),
      metrics_path_(std::move(metrics_path)) {
  if (!trace_path_.empty() || !metrics_path_.empty())
    set_current_thread_name("main");
  if (!trace_path_.empty()) set_tracing(true);
  if (!metrics_path_.empty()) set_metrics(true);
}

void Session::stream_metrics_every(double period_s) {
  if (metrics_path_.empty() || period_s <= 0.0 || streaming_) return;
  // Truncate once so the stream starts clean; the periodic thread and the
  // final write both append.
  try {
    write_file(metrics_path_, "");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "obs: cannot open metrics stream: %s\n", e.what());
    return;
  }
  streaming_ = true;
  streamer_ = std::thread([this, period_s] {
    set_current_thread_name("obs-metrics-stream");
    periodic_loop(period_s);
  });
}

void Session::periodic_loop(double period_s) {
  const auto period = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double>(period_s));
  std::unique_lock<std::mutex> lock(stream_mu_);
  while (!stream_stop_) {
    if (stream_cv_.wait_for(lock, period, [this] { return stream_stop_; }))
      break;
    lock.unlock();
    try {
      std::ofstream f(metrics_path_, std::ios::app);
      if (f) f << metrics_to_json_line(collect_metrics());
    } catch (const std::exception&) {
      // Keep streaming; the final snapshot still reports at destruction.
    }
    lock.lock();
  }
}

Session::~Session() {
  if (streamer_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(stream_mu_);
      stream_stop_ = true;
    }
    stream_cv_.notify_all();
    streamer_.join();
  }
  try {
    if (!trace_path_.empty()) {
      write_trace_json(trace_path_);
      std::fprintf(stderr, "trace written to %s\n", trace_path_.c_str());
    }
    if (!metrics_path_.empty()) {
      MetricsSnapshot snap = collect_metrics();
      snap.pool = std::move(pool_);
      snap.hardware = hardware_;
      if (streaming_) {
        // In streaming mode the file is a JSONL stream: append the final
        // snapshot as one more line instead of replacing it with the
        // pretty single-object document.
        std::ofstream f(metrics_path_, std::ios::app);
        if (!f) throw std::runtime_error("cannot append: " + metrics_path_);
        f << metrics_to_json_line(snap);
        if (!f) throw std::runtime_error("write failed: " + metrics_path_);
      } else {
        write_metrics_json(metrics_path_, snap);
      }
      std::fprintf(stderr, "metrics written to %s\n", metrics_path_.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "obs: export failed: %s\n", e.what());
  }
  set_tracing(false);
  set_metrics(false);
}

}  // namespace generic::obs
