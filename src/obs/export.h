// Exporters over the obs Registry: Chrome trace-event JSON (--trace,
// loadable in Perfetto / chrome://tracing) and the stable
// generic.metrics.v1 snapshot (--metrics). See docs/observability.md for
// the schema reference and span taxonomy.
#pragma once

#include <optional>
#include <string>

#include "obs/obs.h"

namespace generic::obs {

/// Everything the metrics exporter reports, gathered at one instant.
struct MetricsSnapshot {
  double wall_time_s = 0.0;        ///< process wall time (registry epoch)
  std::uint64_t peak_rss_bytes = 0;  ///< getrusage high-water mark
  bool enabled = GENERIC_OBS_ENABLED != 0;
  std::uint64_t dropped_spans = 0;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::uint64_t>> gauges;
  std::vector<std::pair<std::string, StageStats>> stages;
  /// Detailed per-lane stats of one pool (ThreadPool::stats()), when the
  /// harness injected them; the aggregate pool.* counters are always there.
  std::optional<PoolStats> pool;
};

/// Collect a snapshot from the process-wide registry.
MetricsSnapshot collect_metrics();

/// Render the snapshot as schema `generic.metrics.v1` JSON. Field order is
/// fixed and numeric formatting locale-independent: the same snapshot
/// always renders to the same bytes.
std::string metrics_to_json(const MetricsSnapshot& snapshot);

/// Render every recorded span as a Chrome trace-event JSON document with
/// one track per recording thread.
std::string trace_to_json();

void write_metrics_json(const std::string& path,
                        const MetricsSnapshot& snapshot);
void write_trace_json(const std::string& path);

/// RAII harness hook: construction turns collection on for the outputs that
/// were requested (empty path == not requested); destruction writes the
/// files. Usage:
///
///   obs::Session session(flags.value("--trace", ""),
///                        flags.value("--metrics", ""));
///   ...
///   session.set_pool_stats(pool.stats());   // optional detail
///
/// Write errors are reported on stderr, never thrown (the measurement must
/// not take the run down with it).
class Session {
 public:
  Session(std::string trace_path, std::string metrics_path);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  void set_pool_stats(PoolStats stats) { pool_ = std::move(stats); }

 private:
  std::string trace_path_;
  std::string metrics_path_;
  std::optional<PoolStats> pool_;
};

}  // namespace generic::obs
