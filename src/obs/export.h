// Exporters over the obs Registry: Chrome trace-event JSON (--trace,
// loadable in Perfetto / chrome://tracing) and the stable
// generic.metrics.v1 snapshot (--metrics). See docs/observability.md for
// the schema reference and span taxonomy.
#pragma once

#include <condition_variable>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "obs/obs.h"

namespace generic::obs {

/// Hardware-model accounting (arch::GenericAsic) attached by harnesses that
/// drive the ASIC model, so hardware and software runs share one metrics
/// schema / dashboard.
struct HardwareStats {
  double energy_j = 0.0;   ///< GenericAsic::energy_j() total
  double elapsed_s = 0.0;  ///< modeled wall time at the ASIC clock
  std::uint64_t cycles = 0;  ///< AccessCounts.cycles total
};

/// Everything the metrics exporter reports, gathered at one instant.
struct MetricsSnapshot {
  double wall_time_s = 0.0;        ///< process wall time (registry epoch)
  std::uint64_t peak_rss_bytes = 0;  ///< getrusage high-water mark
  bool enabled = GENERIC_OBS_ENABLED != 0;
  std::uint64_t dropped_spans = 0;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::uint64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
  std::vector<std::pair<std::string, StageStats>> stages;
  /// Detailed per-lane stats of one pool (ThreadPool::stats()), when the
  /// harness injected them; the aggregate pool.* counters are always there.
  std::optional<PoolStats> pool;
  /// ASIC-model accounting, when the harness injected it.
  std::optional<HardwareStats> hardware;
};

/// Append `s` escaped for use inside a JSON string literal (no surrounding
/// quotes): quotes, backslashes and all control characters < 0x20 are
/// encoded; other bytes pass through so UTF-8 survives.
void append_json_escaped(std::string& out, std::string_view s);

/// `s` as a complete JSON string literal, quotes included.
std::string json_escape(std::string_view s);

/// Collect a snapshot from the process-wide registry.
MetricsSnapshot collect_metrics();

/// Render the snapshot as schema `generic.metrics.v1` JSON. Field order is
/// fixed and numeric formatting locale-independent: the same snapshot
/// always renders to the same bytes.
std::string metrics_to_json(const MetricsSnapshot& snapshot);

/// Same document compacted onto a single line (newlines and indentation
/// stripped; string values are escape-encoded so this is structural, not
/// lexical). One snapshot per line is the --metrics-every stream format.
std::string metrics_to_json_line(const MetricsSnapshot& snapshot);

/// Render every recorded span as a Chrome trace-event JSON document with
/// one track per recording thread.
std::string trace_to_json();

void write_metrics_json(const std::string& path,
                        const MetricsSnapshot& snapshot);
void write_trace_json(const std::string& path);

/// RAII harness hook: construction turns collection on for the outputs that
/// were requested (empty path == not requested); destruction writes the
/// files. Usage:
///
///   obs::Session session(flags.value("--trace", ""),
///                        flags.value("--metrics", ""));
///   ...
///   session.set_pool_stats(pool.stats());   // optional detail
///
/// Write errors are reported on stderr, never thrown (the measurement must
/// not take the run down with it).
/// A long-running serving process additionally streams one complete
/// generic.metrics.v1 object per line with stream_metrics_every():
///
///   obs::Session session("", "serve_metrics.jsonl");
///   session.stream_metrics_every(2.0);   // --metrics-every=2
///
/// which turns the metrics file into a JSONL stream: a snapshot line every
/// period, plus the final snapshot as the last line at destruction (the
/// pretty single-object write is skipped in streaming mode).
class Session {
 public:
  Session(std::string trace_path, std::string metrics_path);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  void set_pool_stats(PoolStats stats) { pool_ = std::move(stats); }
  void set_hardware(HardwareStats hw) { hardware_ = hw; }

  /// Start periodic snapshot streaming to the metrics path (requires a
  /// non-empty metrics path; ignored otherwise). period_s <= 0 is ignored.
  /// Call at most once, before the work being measured.
  void stream_metrics_every(double period_s);

 private:
  void periodic_loop(double period_s);

  std::string trace_path_;
  std::string metrics_path_;
  std::optional<PoolStats> pool_;
  std::optional<HardwareStats> hardware_;

  std::thread streamer_;
  std::mutex stream_mu_;
  std::condition_variable stream_cv_;
  bool stream_stop_ = false;
  bool streaming_ = false;
};

}  // namespace generic::obs
