// Observability core: scoped spans, named counters/gauges, and a
// process-wide Registry the exporters (obs/export.h) read.
//
// Design (docs/observability.md):
//  * Zero feedback into computation — spans and counters record what the
//    engine did; they never influence what it does. An instrumented run is
//    bit-identical to an uninstrumented one, which is what lets --trace /
//    --metrics coexist with the parallel-engine determinism contract
//    (docs/parallelism.md). Asserted by tests/model/test_parallel_determinism.
//  * Low overhead — collection is off by default; a disabled ScopedSpan is
//    one relaxed atomic load. Span records go to thread-local buffers
//    (per-buffer mutex, uncontended on the hot path) flushed into the
//    Registry at snapshot time or thread exit, so there is no global lock
//    on the recording path. Counters are single relaxed fetch_adds on
//    registry-owned atomics, cached per call site by the macros below.
//  * Compile-out — configuring with -DGENERIC_OBS=OFF defines
//    GENERIC_OBS_ENABLED=0 and every macro becomes a no-op expression; the
//    Registry and exporters still compile (they just see nothing) so
//    --trace/--metrics flags keep working and emit empty-but-valid files.
//
// Span names and counter names must be string literals (or otherwise have
// static storage duration): the registry stores the pointers, not copies.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#ifndef GENERIC_OBS_ENABLED
#define GENERIC_OBS_ENABLED 1
#endif

namespace generic::obs {

// ---- Runtime switches -----------------------------------------------------

/// Individual span events are recorded for the Chrome-trace exporter.
bool tracing_enabled();
void set_tracing(bool on);

/// Per-name stage aggregates (calls / total / min / max) are maintained for
/// the generic.metrics.v1 exporter.
bool metrics_enabled();
void set_metrics(bool on);

// ---- Wall-clock helpers ---------------------------------------------------

/// Monotonic wall-clock stopwatch — the one timer every bench binary
/// shares (replaces the per-binary hand-rolled Timer).
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  void restart() { start_ = std::chrono::steady_clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// ---- Counters and gauges --------------------------------------------------

/// Monotonic event counter. add() is a relaxed fetch_add — safe from any
/// thread, never ordered against the data it counts.
class Counter {
 public:
  void add(std::uint64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset_value() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-value / high-watermark gauge.
class Gauge {
 public:
  void set(std::uint64_t v) { v_.store(v, std::memory_order_relaxed); }
  /// Raise the gauge to `v` if it is below it (CAS max).
  void max_of(std::uint64_t v) {
    std::uint64_t cur = v_.load(std::memory_order_relaxed);
    while (cur < v &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset_value() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

// ---- Histograms -----------------------------------------------------------

/// Point-in-time copy of a Histogram, with deterministic percentile
/// estimation. Returned by Histogram::snapshot() and the registry's
/// histogram_values(); also the latency representation inside the
/// generic.serve.v1 report (src/serve), which is why it lives here and not
/// in export.h.
struct HistogramSnapshot {
  std::array<std::uint64_t, 64> buckets{};  ///< log-2 layout, see Histogram
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  /// Upper bound (inclusive) of the values bucket `i` can hold.
  static std::uint64_t bucket_upper(std::size_t i) {
    if (i == 0) return 0;
    if (i >= 63) return ~0ull;
    return (1ull << i) - 1;
  }

  /// p in [0, 1]: the bucket upper bound at the given rank — a
  /// deterministic upper estimate with <= 2x relative error, which is what
  /// a log-2 layout buys. Returns 0 for an empty histogram.
  std::uint64_t percentile(double p) const;
};

/// Fixed-layout log-2 histogram metric: bucket 0 counts the value 0,
/// bucket i (i >= 1) counts values v with bit_width(v) == i, i.e.
/// v in [2^(i-1), 2^i - 1]; bucket 63 absorbs everything above. The layout
/// is a compile-time constant — no configuration, so any two histograms
/// (and any two runs) are directly comparable, and snapshots render
/// byte-identically for identical recorded sets.
///
/// record() is a few relaxed fetch_adds — safe from any thread, never
/// ordered against the data it measures (same contract as Counter).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  static std::size_t bucket_index(std::uint64_t v) {
    if (v == 0) return 0;
    const int w = std::bit_width(v);  // 1..64
    return w > 63 ? 63 : static_cast<std::size_t>(w);
  }

  void record(std::uint64_t v) {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  HistogramSnapshot snapshot() const {
    HistogramSnapshot s;
    for (std::size_t i = 0; i < kBuckets; ++i)
      s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    return s;
  }

  void reset_value() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

// ---- Records the registry aggregates --------------------------------------

/// One key/value metadata pair attached to a span (model version, chunk
/// index, batch size...). Keys must be string literals — the registry stores
/// the pointer, same contract as span names. Values are integers: span
/// metadata here is identifiers and counts, not free-form text.
struct SpanArg {
  const char* key = nullptr;
  std::int64_t value = 0;
};

/// One completed span, as the trace exporter sees it.
struct SpanEvent {
  /// Spans carry at most this many args; extras are dropped at record time.
  static constexpr std::size_t kMaxArgs = 4;

  const char* name = nullptr;
  std::uint64_t start_ns = 0;  ///< since Registry epoch
  std::uint64_t end_ns = 0;
  std::uint32_t track = 0;  ///< per-thread track id (trace "tid")
  std::uint32_t num_args = 0;
  std::array<SpanArg, kMaxArgs> args{};
};

/// Per-name aggregate of every finished span with that name.
struct StageStats {
  std::uint64_t calls = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
};

/// Thread-pool execution statistics (filled by ThreadPool::stats()). Lane 0
/// is the calling thread; lanes 1..N-1 are the pool's worker threads. Kept
/// here (not in thread_pool.h) so the exporters need no dependency on the
/// pool itself.
struct PoolStats {
  std::size_t lanes = 0;
  std::uint64_t wall_ns = 0;  ///< since pool construction
  std::uint64_t jobs = 0;
  std::uint64_t chunks = 0;
  std::uint64_t max_chunks_per_job = 0;
  struct Lane {
    std::uint64_t busy_ns = 0;  ///< time spent executing chunks
    std::uint64_t chunks = 0;
  };
  std::vector<Lane> per_lane;
};

// ---- Registry -------------------------------------------------------------

class Registry {
 public:
  /// Process-wide instance. Intentionally leaked: thread-local span buffers
  /// flush into it from thread destructors, which may run during static
  /// teardown in another translation unit.
  static Registry& instance();

  /// Named counter / gauge / histogram, created on first use. The returned
  /// reference is stable for the process lifetime — cache it (the macros do).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Nanoseconds since the registry was created (the trace epoch).
  std::uint64_t now_ns() const;

  /// Record a finished span on the calling thread's buffer. No-op unless
  /// tracing or metrics collection is on (ScopedSpan already checks).
  void record_span(const char* name, std::uint64_t start_ns,
                   std::uint64_t end_ns);

  /// As above, with key/value metadata rendered as the trace event's
  /// "args" object. At most SpanEvent::kMaxArgs pairs are kept.
  void record_span(const char* name, std::uint64_t start_ns,
                   std::uint64_t end_ns, std::initializer_list<SpanArg> args);
  void record_span(const char* name, std::uint64_t start_ns,
                   std::uint64_t end_ns, const SpanArg* args,
                   std::size_t num_args);

  /// Name the calling thread's trace track ("main", "pool-worker-3", ...).
  void set_current_thread_name(std::string name);

  /// Every finished span so far, in deterministic order (track, then start
  /// time, then end/name). Flushes live thread buffers.
  std::vector<SpanEvent> trace_events() const;

  /// Track id -> name for every thread that recorded anything.
  std::vector<std::pair<std::uint32_t, std::string>> track_names() const;

  /// Per-name aggregates over all threads (merged at call time).
  std::vector<std::pair<std::string, StageStats>> stage_stats() const;

  /// Snapshot of all counters / gauges / histograms, sorted by name.
  std::vector<std::pair<std::string, std::uint64_t>> counter_values() const;
  std::vector<std::pair<std::string, std::uint64_t>> gauge_values() const;
  std::vector<std::pair<std::string, HistogramSnapshot>> histogram_values()
      const;

  /// Spans dropped because a thread buffer hit its cap (kMaxSpansPerThread).
  std::uint64_t dropped_spans() const;

  /// Test support: zero every counter/gauge and drop all recorded spans and
  /// aggregates (live thread buffers included). Not meant for production
  /// paths — concurrent recorders may interleave.
  void reset();

  /// Hard cap on buffered span events per thread; beyond it spans are
  /// counted as dropped instead of recorded (keeps a pathological trace
  /// from exhausting memory).
  static constexpr std::size_t kMaxSpansPerThread = 1u << 20;

  /// Implementation state; defined in obs.cpp. Public so the file-local
  /// thread-buffer machinery there can name it — not part of the API.
  struct Impl;

 private:
  Registry();
  Impl* impl_;  // leaked with the registry
};

/// Convenience: Registry::instance().set_current_thread_name(name).
void set_current_thread_name(std::string name);

// ---- RAII span ------------------------------------------------------------

/// Scoped wall-clock span. When neither tracing nor metrics collection is
/// enabled at construction, both constructor and destructor are a single
/// relaxed load + branch.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  /// Span with key/value metadata: ScopedSpan("serve.swap", {{"version", 3}}).
  /// Args are evaluated eagerly by the caller, so keep the expressions cheap;
  /// they are only *recorded* when collection is on.
  ScopedSpan(const char* name, std::initializer_list<SpanArg> args);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;  ///< nullptr when collection was off at construction
  std::uint64_t start_ns_ = 0;
  std::uint32_t num_args_ = 0;
  std::array<SpanArg, SpanEvent::kMaxArgs> args_{};
};

}  // namespace generic::obs

// ---- Instrumentation macros ----------------------------------------------
//
// The only interface the instrumented code uses; compiled out entirely by
// -DGENERIC_OBS=OFF. Names must be string literals.

#if GENERIC_OBS_ENABLED

#define GENERIC_OBS_CONCAT_INNER(a, b) a##b
#define GENERIC_OBS_CONCAT(a, b) GENERIC_OBS_CONCAT_INNER(a, b)

/// RAII span covering the rest of the enclosing scope.
#define GENERIC_SPAN(name)                 \
  ::generic::obs::ScopedSpan GENERIC_OBS_CONCAT(generic_obs_span_, \
                                                __LINE__) { name }

/// RAII span carrying key/value metadata, rendered as the trace event's
/// "args" object: GENERIC_SPAN_ARGS("serve.swap", {"version", v}, {"rung", r});
/// Each pair is {string-literal key, integer value}; at most
/// SpanEvent::kMaxArgs pairs are recorded.
#define GENERIC_SPAN_ARGS(name, ...)                               \
  ::generic::obs::ScopedSpan GENERIC_OBS_CONCAT(generic_obs_span_, \
                                                __LINE__) {        \
    name, { __VA_ARGS__ }                                          \
  }

/// counter(name) += delta, with the Counter handle cached per call site.
#define GENERIC_COUNTER_ADD(name, delta)                                 \
  do {                                                                   \
    static ::generic::obs::Counter& generic_obs_counter_ =              \
        ::generic::obs::Registry::instance().counter(name);             \
    generic_obs_counter_.add(static_cast<std::uint64_t>(delta));        \
  } while (0)

/// gauge(name) = max(gauge(name), value).
#define GENERIC_GAUGE_MAX(name, value)                                   \
  do {                                                                   \
    static ::generic::obs::Gauge& generic_obs_gauge_ =                  \
        ::generic::obs::Registry::instance().gauge(name);               \
    generic_obs_gauge_.max_of(static_cast<std::uint64_t>(value));       \
  } while (0)

/// histogram(name).record(value), with the handle cached per call site.
#define GENERIC_HISTO_RECORD(name, value)                                \
  do {                                                                   \
    static ::generic::obs::Histogram& generic_obs_histo_ =              \
        ::generic::obs::Registry::instance().histogram(name);           \
    generic_obs_histo_.record(static_cast<std::uint64_t>(value));       \
  } while (0)

#else  // GENERIC_OBS_ENABLED == 0

#define GENERIC_SPAN(name) ((void)0)
#define GENERIC_SPAN_ARGS(name, ...) ((void)0)
#define GENERIC_COUNTER_ADD(name, delta) ((void)(delta))
#define GENERIC_GAUGE_MAX(name, value) ((void)(value))
#define GENERIC_HISTO_RECORD(name, value) ((void)(value))

#endif  // GENERIC_OBS_ENABLED
