#include "obs/obs.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>

namespace generic::obs {
namespace {

std::atomic<bool> g_tracing{false};
std::atomic<bool> g_metrics{false};

/// True when any collection is on — the one load a disabled span pays.
bool collection_enabled() {
  return g_tracing.load(std::memory_order_relaxed) ||
         g_metrics.load(std::memory_order_relaxed);
}

}  // namespace

bool tracing_enabled() { return g_tracing.load(std::memory_order_relaxed); }
void set_tracing(bool on) { g_tracing.store(on, std::memory_order_relaxed); }
bool metrics_enabled() { return g_metrics.load(std::memory_order_relaxed); }
void set_metrics(bool on) { g_metrics.store(on, std::memory_order_relaxed); }

// ---- Thread buffer --------------------------------------------------------

namespace {

/// Per-thread recording buffer. The owning thread appends under buf_mu
/// (uncontended except while the registry snapshots); the registry drains
/// it at snapshot time and absorbs it at thread exit.
struct ThreadBuffer {
  std::mutex mu;
  std::uint32_t track = 0;
  std::string name;
  std::vector<SpanEvent> spans;
  // Stage aggregates keyed by the literal's address; distinct literals with
  // equal text merge later, at snapshot time, by string value.
  std::map<const char*, StageStats> stages;
  std::uint64_t dropped = 0;
};

}  // namespace

struct Registry::Impl {
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();

  std::mutex mu;  // guards everything below
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
  std::vector<ThreadBuffer*> live;  // registered thread buffers
  std::uint32_t next_track = 0;
  // Data absorbed from exited threads.
  std::vector<SpanEvent> retired_spans;
  std::map<std::string, StageStats> retired_stages;
  std::vector<std::pair<std::uint32_t, std::string>> retired_names;
  std::uint64_t retired_dropped = 0;

  void register_buffer(ThreadBuffer* b) {
    std::lock_guard<std::mutex> lock(mu);
    b->track = next_track++;
    b->name = "thread-" + std::to_string(b->track);
    live.push_back(b);
  }

  void retire_buffer(ThreadBuffer* b) {
    std::lock_guard<std::mutex> lock(mu);
    std::lock_guard<std::mutex> block(b->mu);
    retired_spans.insert(retired_spans.end(), b->spans.begin(), b->spans.end());
    for (const auto& [name, agg] : b->stages) merge_stage(retired_stages, name, agg);
    if (!b->spans.empty() || !b->stages.empty())
      retired_names.emplace_back(b->track, b->name);
    retired_dropped += b->dropped;
    live.erase(std::remove(live.begin(), live.end(), b), live.end());
  }

  static void merge_stage(std::map<std::string, StageStats>& into,
                          std::string_view name, const StageStats& s) {
    auto [it, fresh] = into.try_emplace(std::string(name), s);
    if (fresh) return;
    StageStats& t = it->second;
    t.min_ns = std::min(t.min_ns, s.min_ns);
    t.max_ns = std::max(t.max_ns, s.max_ns);
    t.calls += s.calls;
    t.total_ns += s.total_ns;
  }
};

namespace {

/// Owns the calling thread's buffer; flushes into the registry on thread
/// exit. Defined after Registry::Impl so it can reach retire_buffer().
struct ThreadBufferOwner {
  ThreadBuffer buf;
  Registry::Impl* impl;
  explicit ThreadBufferOwner(Registry::Impl* i) : impl(i) {
    impl->register_buffer(&buf);
  }
  ~ThreadBufferOwner() { impl->retire_buffer(&buf); }
};

}  // namespace

Registry::Registry() : impl_(new Impl) {}

Registry& Registry::instance() {
  // Leaked on purpose (see header): thread_local buffer destructors may run
  // after any static destructor in another TU.
  static Registry* r = new Registry();
  return *r;
}

namespace {

ThreadBuffer& local_buffer(Registry::Impl* impl) {
  thread_local ThreadBufferOwner owner(impl);
  return owner.buf;
}

}  // namespace

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->counters.find(name);
  if (it == impl_->counters.end())
    it = impl_->counters.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->gauges.find(name);
  if (it == impl_->gauges.end())
    it = impl_->gauges.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->histograms.find(name);
  if (it == impl_->histograms.end())
    it = impl_->histograms
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  return *it->second;
}

std::uint64_t Registry::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - impl_->epoch)
          .count());
}

void Registry::record_span(const char* name, std::uint64_t start_ns,
                           std::uint64_t end_ns) {
  record_span(name, start_ns, end_ns, nullptr, 0);
}

void Registry::record_span(const char* name, std::uint64_t start_ns,
                           std::uint64_t end_ns,
                           std::initializer_list<SpanArg> args) {
  record_span(name, start_ns, end_ns, args.begin(), args.size());
}

void Registry::record_span(const char* name, std::uint64_t start_ns,
                           std::uint64_t end_ns, const SpanArg* args,
                           std::size_t num_args) {
  ThreadBuffer& buf = local_buffer(impl_);
  std::lock_guard<std::mutex> lock(buf.mu);
  if (tracing_enabled()) {
    if (buf.spans.size() < kMaxSpansPerThread) {
      SpanEvent ev{};
      ev.name = name;
      ev.start_ns = start_ns;
      ev.end_ns = end_ns;
      ev.track = buf.track;
      for (std::size_t i = 0; i < num_args && i < SpanEvent::kMaxArgs; ++i)
        ev.args[ev.num_args++] = args[i];
      buf.spans.push_back(ev);
    } else {
      ++buf.dropped;
    }
  }
  if (metrics_enabled()) {
    const std::uint64_t dur = end_ns - start_ns;
    auto [it, fresh] = buf.stages.try_emplace(
        name, StageStats{1, dur, dur, dur});
    if (!fresh) {
      StageStats& s = it->second;
      ++s.calls;
      s.total_ns += dur;
      s.min_ns = std::min(s.min_ns, dur);
      s.max_ns = std::max(s.max_ns, dur);
    }
  }
}

void Registry::set_current_thread_name(std::string name) {
  ThreadBuffer& buf = local_buffer(impl_);
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.name = std::move(name);
}

std::vector<SpanEvent> Registry::trace_events() const {
  std::vector<SpanEvent> out;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    out = impl_->retired_spans;
    for (ThreadBuffer* b : impl_->live) {
      std::lock_guard<std::mutex> block(b->mu);
      out.insert(out.end(), b->spans.begin(), b->spans.end());
    }
  }
  std::sort(out.begin(), out.end(), [](const SpanEvent& a, const SpanEvent& b) {
    if (a.track != b.track) return a.track < b.track;
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    if (a.end_ns != b.end_ns) return a.end_ns > b.end_ns;  // parents first
    return std::string_view(a.name) < std::string_view(b.name);
  });
  return out;
}

std::vector<std::pair<std::uint32_t, std::string>> Registry::track_names()
    const {
  std::vector<std::pair<std::uint32_t, std::string>> out;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    out = impl_->retired_names;
    for (ThreadBuffer* b : impl_->live) {
      std::lock_guard<std::mutex> block(b->mu);
      out.emplace_back(b->track, b->name);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<std::string, StageStats>> Registry::stage_stats() const {
  std::map<std::string, StageStats> merged;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    merged = impl_->retired_stages;
    for (ThreadBuffer* b : impl_->live) {
      std::lock_guard<std::mutex> block(b->mu);
      for (const auto& [name, agg] : b->stages)
        Impl::merge_stage(merged, name, agg);
    }
  }
  return {merged.begin(), merged.end()};
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counter_values()
    const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  std::lock_guard<std::mutex> lock(impl_->mu);
  out.reserve(impl_->counters.size());
  for (const auto& [name, c] : impl_->counters)
    out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::gauge_values()
    const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  std::lock_guard<std::mutex> lock(impl_->mu);
  out.reserve(impl_->gauges.size());
  for (const auto& [name, g] : impl_->gauges)
    out.emplace_back(name, g->value());
  return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>>
Registry::histogram_values() const {
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  std::lock_guard<std::mutex> lock(impl_->mu);
  out.reserve(impl_->histograms.size());
  for (const auto& [name, h] : impl_->histograms)
    out.emplace_back(name, h->snapshot());
  return out;
}

std::uint64_t Registry::dropped_spans() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::uint64_t total = impl_->retired_dropped;
  for (ThreadBuffer* b : impl_->live) {
    std::lock_guard<std::mutex> block(b->mu);
    total += b->dropped;
  }
  return total;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [name, c] : impl_->counters) c->reset_value();
  for (auto& [name, g] : impl_->gauges) g->reset_value();
  for (auto& [name, h] : impl_->histograms) h->reset_value();
  impl_->retired_spans.clear();
  impl_->retired_stages.clear();
  impl_->retired_names.clear();
  impl_->retired_dropped = 0;
  for (ThreadBuffer* b : impl_->live) {
    std::lock_guard<std::mutex> block(b->mu);
    b->spans.clear();
    b->stages.clear();
    b->dropped = 0;
  }
}

void set_current_thread_name(std::string name) {
  Registry::instance().set_current_thread_name(std::move(name));
}

std::uint64_t HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Rank of the percentile observation, 1-based, ceil form: the smallest
  // rank whose cumulative share is >= p.
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(p * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) return bucket_upper(i);
  }
  return bucket_upper(buckets.size() - 1);
}

// ---- ScopedSpan -----------------------------------------------------------

ScopedSpan::ScopedSpan(const char* name)
    : name_(collection_enabled() ? name : nullptr) {
  if (name_ != nullptr) start_ns_ = Registry::instance().now_ns();
}

ScopedSpan::ScopedSpan(const char* name, std::initializer_list<SpanArg> args)
    : name_(collection_enabled() ? name : nullptr) {
  if (name_ == nullptr) return;
  start_ns_ = Registry::instance().now_ns();
  for (const SpanArg& a : args) {
    if (num_args_ >= SpanEvent::kMaxArgs) break;
    args_[num_args_++] = a;
  }
}

ScopedSpan::~ScopedSpan() {
  if (name_ == nullptr) return;
  Registry& reg = Registry::instance();
  reg.record_span(name_, start_ns_, reg.now_ns(), args_.data(), num_args_);
}

}  // namespace generic::obs
