#include "obs/rtrace.h"

#include <algorithm>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace generic::obs::rtrace {

std::string_view event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kAdmit: return "admit";
    case EventKind::kEnqueue: return "enqueue";
    case EventKind::kDequeue: return "dequeue";
    case EventKind::kShed: return "shed";
    case EventKind::kEncode: return "encode";
    case EventKind::kRetryAttempt: return "retry_attempt";
    case EventKind::kUpset: return "upset";
    case EventKind::kTimeout: return "timeout";
    case EventKind::kFailed: return "failed";
    case EventKind::kPredict: return "predict";
    case EventKind::kDegradeStep: return "degrade_step";
    case EventKind::kSwapFlush: return "swap_flush";
    case EventKind::kSwapInstall: return "swap_install";
    case EventKind::kRollback: return "rollback";
    case EventKind::kDriftAlarm: return "drift_alarm";
    case EventKind::kRetrainStart: return "retrain_start";
    case EventKind::kCheckpointSave: return "checkpoint_save";
    case EventKind::kFaultInject: return "fault_inject";
    case EventKind::kSloAlert: return "slo_alert";
    case EventKind::kEncoderFault: return "encoder_fault";
    case EventKind::kEncoderDetect: return "encoder_detect";
    case EventKind::kEncoderMask: return "encoder_mask";
    case EventKind::kEncoderScrub: return "encoder_scrub";
    case EventKind::kNetAccept: return "net_accept";
    case EventKind::kNetClose: return "net_close";
    case EventKind::kNetError: return "net_error";
    case EventKind::kFleetRoute: return "fleet_route";
    case EventKind::kFleetQuota: return "fleet_quota";
    case EventKind::kFleetShed: return "fleet_shed";
  }
  return "unknown";
}

namespace {

constexpr std::uint32_t kTraceBit = 1u;
constexpr std::uint32_t kFlightBit = 2u;

/// Everything behind the fast-path mask. One process-wide instance,
/// intentionally leaked like the obs Registry (tool teardown order is not
/// worth reasoning about for a diagnostics buffer).
struct State {
  std::mutex mu;
  std::uint64_t next_seq = 0;
  // Trace log.
  std::vector<Event> log;
  std::uint64_t log_dropped = 0;
  // Flight ring: `ring` is a circular buffer once full; the write cursor is
  // ring_recorded % capacity.
  std::vector<Event> ring;
  std::size_t capacity = kDefaultFlightCapacity;
  std::uint64_t ring_recorded = 0;
};

State& state() {
  static State* s = new State();
  return *s;
}

#if GENERIC_OBS_ENABLED
void set_bit(std::uint32_t bit, bool on) {
  if (on)
    detail::g_sink_mask.fetch_or(bit, std::memory_order_relaxed);
  else
    detail::g_sink_mask.fetch_and(~bit, std::memory_order_relaxed);
}
std::uint32_t mask() {
  return detail::g_sink_mask.load(std::memory_order_relaxed);
}
#else
std::uint32_t g_mask_off = 0;  // switches still "work" so flags stay valid
void set_bit(std::uint32_t bit, bool on) {
  if (on)
    g_mask_off |= bit;
  else
    g_mask_off &= ~bit;
}
std::uint32_t mask() { return g_mask_off; }
#endif

}  // namespace

#if GENERIC_OBS_ENABLED
namespace detail {

std::atomic<std::uint32_t> g_sink_mask{0};

void record_slow(EventKind kind, std::uint64_t vt_us, std::uint64_t request,
                 std::uint64_t version, std::uint32_t rung,
                 std::int64_t detail) {
  State& s = state();
  const std::uint32_t m = g_sink_mask.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(s.mu);
  Event e{s.next_seq++, vt_us, kind, request, version, rung, detail};
  if (m & kTraceBit) {
    if (s.log.size() < kMaxTraceEvents)
      s.log.push_back(e);
    else
      ++s.log_dropped;
  }
  if (m & kFlightBit) {
    if (s.ring.size() < s.capacity)
      s.ring.push_back(e);
    else
      s.ring[s.ring_recorded % s.capacity] = e;
    ++s.ring_recorded;
  }
}

}  // namespace detail
#endif  // GENERIC_OBS_ENABLED

bool trace_enabled() { return (mask() & kTraceBit) != 0; }
void set_trace(bool on) { set_bit(kTraceBit, on); }
bool flight_enabled() { return (mask() & kFlightBit) != 0; }
void set_flight(bool on) { set_bit(kFlightBit, on); }

void set_flight_capacity(std::size_t capacity) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.capacity = capacity == 0 ? 1 : capacity;
  s.ring.clear();
  s.ring.shrink_to_fit();
  s.ring_recorded = 0;
}

std::size_t flight_capacity() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.capacity;
}

void reset() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.next_seq = 0;
  s.log.clear();
  s.log_dropped = 0;
  s.ring.clear();
  s.ring_recorded = 0;
}

TraceLog trace_log() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return TraceLog{s.log, s.log_dropped};
}

FlightLog flight_log() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  FlightLog out;
  out.capacity = s.capacity;
  out.recorded = s.ring_recorded;
  out.dropped = s.ring_recorded > s.ring.size()
                    ? s.ring_recorded - s.ring.size()
                    : 0;
  out.events.reserve(s.ring.size());
  if (s.ring.size() < s.capacity) {
    out.events = s.ring;
  } else {
    // Full ring: the oldest surviving event sits at the write cursor.
    const std::size_t head =
        static_cast<std::size_t>(s.ring_recorded % s.capacity);
    for (std::size_t i = 0; i < s.ring.size(); ++i)
      out.events.push_back(s.ring[(head + i) % s.ring.size()]);
  }
  return out;
}

// ---- Exporters ------------------------------------------------------------

namespace {

constexpr bool kObsEnabled = GENERIC_OBS_ENABLED != 0;

void append_event(std::string& out, const Event& e) {
  out += "    {\"seq\": " + std::to_string(e.seq);
  out += ", \"vt_us\": " + std::to_string(e.vt_us);
  out += ", \"kind\": \"";
  out += event_kind_name(e.kind);
  out += "\", \"request\": ";
  out += e.request == kNoRequest ? "null" : std::to_string(e.request);
  out += ", \"version\": " + std::to_string(e.version);
  out += ", \"rung\": " + std::to_string(e.rung);
  out += ", \"detail\": " + std::to_string(e.detail);
  out += "}";
}

void append_event_array(std::string& out, const std::vector<Event>& events) {
  out += "  \"events\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    append_event(out, events[i]);
  }
  out += events.empty() ? "]\n" : "\n  ]\n";
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw std::runtime_error("cannot open for writing: " + path);
  f << content;
  if (!f) throw std::runtime_error("write failed: " + path);
}

}  // namespace

std::string rtrace_to_json(const TraceLog& log) {
  std::string out;
  out.reserve(128 + log.events.size() * 112);
  out += "{\n";
  out += "  \"schema\": \"generic.rtrace.v1\",\n";
  out += std::string("  \"obs_enabled\": ") +
         (kObsEnabled ? "true" : "false") + ",\n";
  out += "  \"recorded\": " + std::to_string(log.events.size()) + ",\n";
  out += "  \"dropped\": " + std::to_string(log.dropped) + ",\n";
  append_event_array(out, log.events);
  out += "}\n";
  return out;
}

std::string rtrace_to_json() { return rtrace_to_json(trace_log()); }

std::string flight_to_json(const FlightLog& log) {
  std::string out;
  out.reserve(160 + log.events.size() * 112);
  out += "{\n";
  out += "  \"schema\": \"generic.flight.v1\",\n";
  out += std::string("  \"obs_enabled\": ") +
         (kObsEnabled ? "true" : "false") + ",\n";
  out += "  \"capacity\": " + std::to_string(log.capacity) + ",\n";
  out += "  \"recorded\": " + std::to_string(log.recorded) + ",\n";
  out += "  \"dropped\": " + std::to_string(log.dropped) + ",\n";
  append_event_array(out, log.events);
  out += "}\n";
  return out;
}

std::string flight_to_json() { return flight_to_json(flight_log()); }

std::string rtrace_to_chrome_json(const TraceLog& log) {
  // Track layout: one named track per event kind (tid == enum value), so a
  // request's life reads as a staircase across queue/encode/predict/swap
  // tracks; the flow arrows stitch the staircase together. Timestamps are
  // VIRTUAL microseconds — the document is deterministic by construction.
  std::string out;
  out.reserve(512 + log.events.size() * 224);
  out += "{\n\"traceEvents\": [\n";
  bool first = true;
  for (std::size_t k = 0; k < kNumEventKinds; ++k) {
    out += first ? "" : ",\n";
    first = false;
    out += "{\"ph\": \"M\", \"pid\": 1, \"tid\": " + std::to_string(k) +
           ", \"name\": \"thread_name\", \"args\": {\"name\": \"rtrace.";
    out += event_kind_name(static_cast<EventKind>(k));
    out += "\"}}";
  }

  // First/last seq per request: the async request span and the flow arrow
  // phases (s = first, t = middle, f = last) hang off them.
  std::unordered_map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>>
      bounds;
  for (const Event& e : log.events) {
    if (e.request == kNoRequest) continue;
    auto [it, inserted] = bounds.try_emplace(e.request, e.seq, e.seq);
    if (!inserted) {
      it->second.first = std::min(it->second.first, e.seq);
      it->second.second = std::max(it->second.second, e.seq);
    }
  }

  for (const Event& e : log.events) {
    const std::string tid = std::to_string(static_cast<std::size_t>(e.kind));
    const std::string ts = std::to_string(e.vt_us);
    out += first ? "" : ",\n";
    first = false;
    out += "{\"ph\": \"X\", \"pid\": 1, \"tid\": " + tid + ", \"name\": \"";
    out += event_kind_name(e.kind);
    out += "\", \"cat\": \"rtrace\", \"ts\": " + ts + ", \"dur\": 1";
    out += ", \"args\": {\"seq\": " + std::to_string(e.seq);
    if (e.request != kNoRequest)
      out += ", \"request\": " + std::to_string(e.request);
    out += ", \"version\": " + std::to_string(e.version);
    out += ", \"rung\": " + std::to_string(e.rung);
    out += ", \"detail\": " + std::to_string(e.detail) + "}}";

    if (e.request == kNoRequest) continue;
    const auto& [first_seq, last_seq] = bounds.at(e.request);
    const std::string id = std::to_string(e.request);
    if (e.seq == first_seq && first_seq != last_seq) {
      out += ",\n{\"ph\": \"b\", \"pid\": 1, \"tid\": " + tid +
             ", \"name\": \"request\", \"cat\": \"rtrace.request\", \"id\": " +
             id + ", \"ts\": " + ts + "}";
    }
    if (first_seq != last_seq) {
      const char* ph = e.seq == first_seq ? "s"
                       : e.seq == last_seq ? "f"
                                           : "t";
      out += ",\n{\"ph\": \"";
      out += ph;
      out += "\", \"pid\": 1, \"tid\": " + tid +
             ", \"name\": \"request\", \"cat\": \"rtrace.flow\", \"id\": " +
             id + ", \"ts\": " + ts;
      if (*ph == 'f') out += ", \"bp\": \"e\"";
      out += "}";
    }
    if (e.seq == last_seq && first_seq != last_seq) {
      out += ",\n{\"ph\": \"e\", \"pid\": 1, \"tid\": " + tid +
             ", \"name\": \"request\", \"cat\": \"rtrace.request\", \"id\": " +
             id + ", \"ts\": " + ts + "}";
    }
  }
  out += "\n],\n\"displayTimeUnit\": \"ms\",\n";
  out += "\"otherData\": {\"schema\": \"generic.rtrace.chrome.v1\", ";
  out += "\"obs_enabled\": ";
  out += kObsEnabled ? "true" : "false";
  out += ", \"dropped\": " + std::to_string(log.dropped) + "}\n}\n";
  return out;
}

std::string rtrace_to_chrome_json() {
  return rtrace_to_chrome_json(trace_log());
}

void write_rtrace_json(const std::string& path, const TraceLog& log) {
  write_file(path, rtrace_to_json(log));
}

void write_rtrace_chrome_json(const std::string& path, const TraceLog& log) {
  write_file(path, rtrace_to_chrome_json(log));
}

void write_flight_json(const std::string& path, const FlightLog& log) {
  write_file(path, flight_to_json(log));
}

}  // namespace generic::obs::rtrace
