#include "data/csv.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace generic::data {
namespace {

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> out;
  std::string field;
  std::stringstream ss(line);
  while (std::getline(ss, field, ',')) {
    // Trim surrounding whitespace.
    const auto first = field.find_first_not_of(" \t\r");
    const auto last = field.find_last_not_of(" \t\r");
    out.push_back(first == std::string::npos
                      ? std::string()
                      : field.substr(first, last - first + 1));
  }
  return out;
}

bool parse_float(const std::string& s, float& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  out = static_cast<float>(v);
  return true;
}

/// A data row plus its 1-based line number in the file (for error
/// messages that point at the offending line, header included).
struct CsvRow {
  std::vector<std::string> fields;
  std::size_t line = 0;
};

std::vector<CsvRow> read_rows(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open CSV: " + path);
  std::vector<CsvRow> rows;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(f, line)) {
    ++line_no;
    if (line.empty()) continue;
    rows.push_back({split_fields(line), line_no});
  }
  if (rows.empty()) throw std::invalid_argument("empty CSV: " + path);
  // Header detection: skip the first row when its first cell is not
  // numeric. The header (or, absent one, the first data row) fixes the
  // expected field count for the whole file.
  const std::size_t cols = rows.front().fields.size();
  float probe;
  if (!parse_float(rows.front().fields.front(), probe))
    rows.erase(rows.begin());
  if (rows.empty())
    throw std::invalid_argument("CSV has only a header: " + path);
  for (const auto& r : rows)
    if (r.fields.size() != cols)
      throw std::invalid_argument(
          "CSV line " + std::to_string(r.line) + " has " +
          std::to_string(r.fields.size()) + " fields, expected " +
          std::to_string(cols) + ": " + path);
  return rows;
}

/// Parse one cell, rejecting unparseable and non-finite (NaN/Inf) values
/// with the file position in the message.
float parse_cell(const std::string& s, std::size_t line, std::size_t col,
                 const std::string& path) {
  float v;
  if (!parse_float(s, v))
    throw std::invalid_argument("non-numeric cell at line " +
                                std::to_string(line) + ", column " +
                                std::to_string(col + 1) + ": " + path);
  if (!std::isfinite(v))
    throw std::invalid_argument("non-finite value (NaN/Inf) at line " +
                                std::to_string(line) + ", column " +
                                std::to_string(col + 1) + ": " + path);
  return v;
}

}  // namespace

LabeledSamples load_labeled_csv(const std::string& path, int label_column) {
  const auto rows = read_rows(path);
  const std::size_t cols = rows.front().fields.size();
  if (cols < 2)
    throw std::invalid_argument("labelled CSV needs >= 2 columns: " + path);
  const std::size_t label_idx =
      label_column < 0 ? cols - 1 : static_cast<std::size_t>(label_column);
  if (label_idx >= cols)
    throw std::invalid_argument("label column out of range: " + path);

  LabeledSamples out;
  int max_label = -1;
  for (const auto& row : rows) {
    std::vector<float> x;
    x.reserve(cols - 1);
    int label = -1;
    for (std::size_t c = 0; c < cols; ++c) {
      const float v = parse_cell(row.fields[c], row.line, c, path);
      if (c == label_idx) {
        label = static_cast<int>(v);
        if (label < 0 || static_cast<float>(label) != v)
          throw std::invalid_argument(
              "labels must be non-negative integers (line " +
              std::to_string(row.line) + "): " + path);
      } else {
        x.push_back(v);
      }
    }
    out.x.push_back(std::move(x));
    out.y.push_back(label);
    max_label = std::max(max_label, label);
  }
  out.num_classes = static_cast<std::size_t>(max_label + 1);
  return out;
}

std::vector<std::vector<float>> load_unlabeled_csv(const std::string& path) {
  const auto rows = read_rows(path);
  const std::size_t cols = rows.front().fields.size();
  std::vector<std::vector<float>> out;
  for (const auto& row : rows) {
    std::vector<float> x(cols);
    for (std::size_t c = 0; c < cols; ++c)
      x[c] = parse_cell(row.fields[c], row.line, c, path);
    out.push_back(std::move(x));
  }
  return out;
}

void save_labeled_csv(const std::string& path,
                      const std::vector<std::vector<float>>& x,
                      const std::vector<int>& y) {
  if (x.size() != y.size())
    throw std::invalid_argument("save_labeled_csv: size mismatch");
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw std::runtime_error("cannot open for writing: " + path);
  for (std::size_t i = 0; i < x.size(); ++i) {
    for (float v : x[i]) f << v << ',';
    f << y[i] << '\n';
  }
  if (!f) throw std::runtime_error("write failed: " + path);
}

Dataset to_dataset(std::string name, LabeledSamples samples, double frac_train,
                   std::uint64_t seed) {
  Rng rng(seed);
  return split_train_test(std::move(name), samples.num_classes,
                          std::move(samples.x), std::move(samples.y),
                          frac_train, rng);
}

}  // namespace generic::data
