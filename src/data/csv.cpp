#include "data/csv.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace generic::data {
namespace {

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> out;
  std::string field;
  std::stringstream ss(line);
  while (std::getline(ss, field, ',')) {
    // Trim surrounding whitespace.
    const auto first = field.find_first_not_of(" \t\r");
    const auto last = field.find_last_not_of(" \t\r");
    out.push_back(first == std::string::npos
                      ? std::string()
                      : field.substr(first, last - first + 1));
  }
  return out;
}

bool parse_float(const std::string& s, float& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  out = static_cast<float>(v);
  return true;
}

std::vector<std::vector<std::string>> read_rows(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open CSV: " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    rows.push_back(split_fields(line));
  }
  if (rows.empty()) throw std::invalid_argument("empty CSV: " + path);
  // Header detection: skip the first row when its first cell is not
  // numeric.
  float probe;
  if (!parse_float(rows.front().front(), probe))
    rows.erase(rows.begin());
  if (rows.empty()) throw std::invalid_argument("CSV has only a header: " + path);
  return rows;
}

}  // namespace

LabeledSamples load_labeled_csv(const std::string& path, int label_column) {
  const auto rows = read_rows(path);
  const std::size_t cols = rows.front().size();
  if (cols < 2)
    throw std::invalid_argument("labelled CSV needs >= 2 columns: " + path);
  const std::size_t label_idx =
      label_column < 0 ? cols - 1 : static_cast<std::size_t>(label_column);
  if (label_idx >= cols)
    throw std::invalid_argument("label column out of range: " + path);

  LabeledSamples out;
  int max_label = -1;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != cols)
      throw std::invalid_argument("ragged CSV row " + std::to_string(r));
    std::vector<float> x;
    x.reserve(cols - 1);
    int label = -1;
    for (std::size_t c = 0; c < cols; ++c) {
      float v;
      if (!parse_float(rows[r][c], v))
        throw std::invalid_argument("non-numeric cell at row " +
                                    std::to_string(r));
      if (c == label_idx) {
        label = static_cast<int>(v);
        if (label < 0 || static_cast<float>(label) != v)
          throw std::invalid_argument("labels must be non-negative integers");
      } else {
        x.push_back(v);
      }
    }
    out.x.push_back(std::move(x));
    out.y.push_back(label);
    max_label = std::max(max_label, label);
  }
  out.num_classes = static_cast<std::size_t>(max_label + 1);
  return out;
}

std::vector<std::vector<float>> load_unlabeled_csv(const std::string& path) {
  const auto rows = read_rows(path);
  const std::size_t cols = rows.front().size();
  std::vector<std::vector<float>> out;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != cols)
      throw std::invalid_argument("ragged CSV row " + std::to_string(r));
    std::vector<float> x(cols);
    for (std::size_t c = 0; c < cols; ++c)
      if (!parse_float(rows[r][c], x[c]))
        throw std::invalid_argument("non-numeric cell at row " +
                                    std::to_string(r));
    out.push_back(std::move(x));
  }
  return out;
}

void save_labeled_csv(const std::string& path,
                      const std::vector<std::vector<float>>& x,
                      const std::vector<int>& y) {
  if (x.size() != y.size())
    throw std::invalid_argument("save_labeled_csv: size mismatch");
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw std::runtime_error("cannot open for writing: " + path);
  for (std::size_t i = 0; i < x.size(); ++i) {
    for (float v : x[i]) f << v << ',';
    f << y[i] << '\n';
  }
  if (!f) throw std::runtime_error("write failed: " + path);
}

Dataset to_dataset(std::string name, LabeledSamples samples, double frac_train,
                   std::uint64_t seed) {
  Rng rng(seed);
  return split_train_test(std::move(name), samples.num_classes,
                          std::move(samples.x), std::move(samples.y),
                          frac_train, rng);
}

}  // namespace generic::data
