#include "data/dataset.h"

#include <stdexcept>
#include <utility>

namespace generic::data {

void shuffle_xy(std::vector<std::vector<float>>& xs, std::vector<int>& ys,
                Rng& rng) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("shuffle_xy: size mismatch");
  for (std::size_t i = xs.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.below(i));
    std::swap(xs[i - 1], xs[j]);
    std::swap(ys[i - 1], ys[j]);
  }
}

Dataset split_train_test(std::string name, std::size_t num_classes,
                         std::vector<std::vector<float>> xs,
                         std::vector<int> ys, double frac_train, Rng& rng) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("split_train_test: size mismatch");
  shuffle_xy(xs, ys, rng);
  Dataset ds;
  ds.name = std::move(name);
  ds.num_classes = num_classes;
  // Per-class counters keep the split stratified.
  std::vector<std::size_t> total(num_classes, 0), taken(num_classes, 0);
  for (int y : ys) total.at(static_cast<std::size_t>(y))++;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const auto c = static_cast<std::size_t>(ys[i]);
    const auto want = static_cast<std::size_t>(
        frac_train * static_cast<double>(total[c]) + 0.5);
    if (taken[c] < want) {
      ds.train_x.push_back(std::move(xs[i]));
      ds.train_y.push_back(ys[i]);
      taken[c]++;
    } else {
      ds.test_x.push_back(std::move(xs[i]));
      ds.test_y.push_back(ys[i]);
    }
  }
  return ds;
}

}  // namespace generic::data
