#include "data/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace generic::data {

std::vector<float> smooth_curve(std::size_t d, double smoothness, Rng& rng) {
  std::vector<float> out(d);
  double x = rng.normal();
  double max_abs = 1e-9;
  const double innov = std::sqrt(std::max(1e-9, 1.0 - smoothness * smoothness));
  for (std::size_t i = 0; i < d; ++i) {
    out[i] = static_cast<float>(x);
    x = smoothness * x + innov * rng.normal();
  }
  double mean = 0.0;
  for (float v : out) mean += v;
  mean /= static_cast<double>(d);
  for (float& v : out) {
    v -= static_cast<float>(mean);
    max_abs = std::max(max_abs, static_cast<double>(std::abs(v)));
  }
  for (float& v : out) v /= static_cast<float>(max_abs);
  return out;
}

std::vector<std::vector<float>> make_templates(const TemplateSpec& spec,
                                               Rng& rng) {
  std::vector<std::vector<float>> tmpls(spec.classes);
  for (auto& t : tmpls) {
    t = smooth_curve(spec.features, spec.smoothness, rng);
    for (float& v : t) v *= static_cast<float>(spec.amplitude);
  }
  return tmpls;
}

std::vector<float> sample_template(const std::vector<float>& tmpl,
                                   double noise, Rng& rng) {
  std::vector<float> out(tmpl.size());
  for (std::size_t i = 0; i < tmpl.size(); ++i)
    out[i] = tmpl[i] + static_cast<float>(noise * rng.normal());
  return out;
}

std::vector<std::vector<float>> make_envelopes(const VarianceSpec& spec,
                                               Rng& rng) {
  std::vector<std::vector<float>> envs(spec.classes);
  for (auto& env : envs) {
    env = smooth_curve(spec.features, spec.smoothness, rng);
    // Map [-1, 1] onto [min_sigma, max_sigma].
    for (float& v : env)
      v = static_cast<float>(spec.min_sigma +
                             (spec.max_sigma - spec.min_sigma) *
                                 (0.5 * (static_cast<double>(v) + 1.0)));
  }
  return envs;
}

std::vector<float> sample_envelope(const std::vector<float>& env, Rng& rng) {
  std::vector<float> out(env.size());
  for (std::size_t i = 0; i < env.size(); ++i)
    out[i] = static_cast<float>(env[i] * rng.normal());
  return out;
}

MotifBank make_motif_bank(const MotifSpec& spec, Rng& rng) {
  if (spec.motif_len >= spec.features)
    throw std::invalid_argument("motif longer than feature vector");
  MotifBank bank;
  bank.motifs.resize(spec.classes);
  for (std::size_t c = 0; c < spec.classes; ++c) {
    bank.motifs[c].resize(spec.motifs_per_class);
    for (auto& m : bank.motifs[c]) {
      m.resize(spec.motif_len);
      for (float& v : m)
        v = static_cast<float>(spec.motif_amplitude * rng.normal());
    }
  }
  bank.home_lo.assign(spec.classes, 0);
  bank.home_hi.assign(spec.classes, spec.features - spec.motif_len);
  if (spec.positional) {
    // Slice the index range into per-class overlapping home regions so that
    // *where* a motif occurs also carries class information.
    const std::size_t span = spec.features - spec.motif_len;
    for (std::size_t c = 0; c < spec.classes; ++c) {
      const std::size_t lo = span * c / spec.classes;
      const std::size_t hi =
          std::min(span, span * (c + 2) / spec.classes);  // overlap one slot
      bank.home_lo[c] = lo;
      bank.home_hi[c] = std::max(hi, lo + 1);
    }
  }
  return bank;
}

std::vector<float> sample_motifs(const MotifSpec& spec, const MotifBank& bank,
                                 std::size_t cls, Rng& rng) {
  std::vector<float> out(spec.features);
  for (float& v : out)
    v = static_cast<float>(spec.background_noise * rng.normal());
  const auto& motifs = bank.motifs.at(cls);
  for (std::size_t k = 0; k < spec.insertions; ++k) {
    const auto& m = motifs[rng.below(motifs.size())];
    const std::size_t lo = bank.home_lo[cls];
    const std::size_t hi = bank.home_hi[cls];
    const std::size_t pos = lo + rng.below(hi - lo + 1);
    for (std::size_t i = 0; i < m.size(); ++i) out[pos + i] += m[i];
  }
  return out;
}

MarkovBank make_markov_bank(const MarkovSpec& spec, Rng& rng) {
  MarkovBank bank;
  bank.alphabet = spec.alphabet;
  bank.transition_cdf.resize(spec.classes);
  // Stride for rotating the Zipf ranking per class: coprime with the
  // alphabet so every class gets a provably distinct unigram profile
  // (random permutations can collide for small alphabets).
  std::size_t stride = std::max<std::size_t>(
      1, static_cast<std::size_t>(0.38 * static_cast<double>(spec.alphabet)));
  while (std::gcd(stride, spec.alphabet) != 1) ++stride;
  for (std::size_t c = 0; c < spec.classes; ++c) {
    // Class-specific unigram skew: a Zipf-like ranking rotated by the
    // class index.
    std::vector<double> unigram(spec.alphabet);
    for (std::size_t r = 0; r < spec.alphabet; ++r)
      unigram[(r + c * stride) % spec.alphabet] =
          1.0 / static_cast<double>(r + 1);
    double uni_sum = 0.0;
    for (double u : unigram) uni_sum += u;
    for (double& u : unigram) u /= uni_sum;

    bank.transition_cdf[c].resize(spec.alphabet);
    for (std::size_t s = 0; s < spec.alphabet; ++s) {
      std::vector<double> p(spec.alphabet);
      // Class-specific preferred successors: a sparse random profile.
      double total = 0.0;
      for (std::size_t t = 0; t < spec.alphabet; ++t) {
        const double base = 1.0 / static_cast<double>(spec.alphabet);
        const double pref = rng.uniform() < 3.0 / static_cast<double>(spec.alphabet)
                                ? rng.uniform(0.5, 1.0)
                                : 0.0;
        p[t] = (1.0 - spec.concentration - spec.unigram_bias) * base +
               spec.concentration * pref +
               spec.unigram_bias * unigram[t];
        total += p[t];
      }
      auto& cdf = bank.transition_cdf[c][s];
      cdf.resize(spec.alphabet);
      double acc = 0.0;
      for (std::size_t t = 0; t < spec.alphabet; ++t) {
        acc += p[t] / total;
        cdf[t] = acc;
      }
      cdf.back() = 1.0;  // guard against rounding
    }
  }
  return bank;
}

std::vector<float> sample_markov(const MarkovSpec& spec,
                                 const MarkovBank& bank, std::size_t cls,
                                 Rng& rng) {
  std::vector<float> out(spec.features);
  std::size_t state = rng.below(spec.alphabet);
  for (std::size_t i = 0; i < spec.features; ++i) {
    out[i] = static_cast<float>(state) + 0.5f;
    const auto& cdf = bank.transition_cdf.at(cls)[state];
    const double u = rng.uniform();
    state = static_cast<std::size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    if (state >= spec.alphabet) state = spec.alphabet - 1;
  }
  return out;
}

void mix_into(std::vector<float>& a, const std::vector<float>& b, float w) {
  if (a.size() != b.size()) throw std::invalid_argument("mix_into: size");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += w * b[i];
}

}  // namespace generic::data
