#include "data/benchmarks.h"

#include <functional>
#include <map>
#include <stdexcept>

#include "data/generators.h"

namespace generic::data {
namespace {

// Sample-count policy: roughly 120 train / 40 test per class, matching the
// order of magnitude the evaluation needs while keeping single-core
// benchmark runtimes tractable.
struct Counts {
  std::size_t train_per_class = 120;
  std::size_t test_per_class = 40;
};

using SampleFn = std::function<std::vector<float>(std::size_t cls, Rng&)>;

Dataset assemble(std::string name, std::size_t classes, const Counts& counts,
                 const SampleFn& sample, Rng& rng) {
  Dataset ds;
  ds.name = std::move(name);
  ds.num_classes = classes;
  for (std::size_t c = 0; c < classes; ++c) {
    for (std::size_t i = 0; i < counts.train_per_class; ++i) {
      ds.train_x.push_back(sample(c, rng));
      ds.train_y.push_back(static_cast<int>(c));
    }
    for (std::size_t i = 0; i < counts.test_per_class; ++i) {
      ds.test_x.push_back(sample(c, rng));
      ds.test_y.push_back(static_cast<int>(c));
    }
  }
  shuffle_xy(ds.train_x, ds.train_y, rng);
  shuffle_xy(ds.test_x, ds.test_y, rng);
  return ds;
}

Dataset make_cardio(Rng& rng) {
  TemplateSpec spec;
  spec.classes = 10;
  spec.features = 21;
  spec.smoothness = 0.3;  // tabular with mild feature correlation
  spec.amplitude = 1.0;
  spec.noise = 0.50;
  const auto tmpls = make_templates(spec, rng);
  return assemble("CARDIO", spec.classes, {}, [&](std::size_t c, Rng& r) {
    return sample_template(tmpls[c], spec.noise, r);
  }, rng);
}

Dataset make_page(Rng& rng) {
  TemplateSpec spec;
  spec.classes = 5;
  spec.features = 10;
  spec.smoothness = 0.3;
  spec.amplitude = 1.0;
  spec.noise = 0.50;
  const auto tmpls = make_templates(spec, rng);
  return assemble("PAGE", spec.classes, {}, [&](std::size_t c, Rng& r) {
    return sample_template(tmpls[c], spec.noise, r);
  }, rng);
}

Dataset make_dna(Rng& rng) {
  // Splice junctions: class-specific base composition everywhere plus a
  // conserved consensus block around the junction (the centre), the way
  // real splice sites carry a positional consensus. The block is what lets
  // even a linear projection reach the high 90s, as in the paper.
  MarkovSpec spec;
  spec.classes = 3;
  spec.features = 180;
  spec.alphabet = 4;
  spec.concentration = 0.15;
  spec.unigram_bias = 0.80;
  const auto bank = make_markov_bank(spec, rng);
  const std::size_t block_lo = spec.features / 2 - 10;
  const std::size_t block_hi = spec.features / 2 + 10;
  std::vector<std::vector<float>> consensus(spec.classes);
  for (auto& row : consensus) {
    row.resize(block_hi - block_lo);
    for (auto& v : row)
      v = static_cast<float>(rng.below(spec.alphabet)) + 0.5f;
  }
  return assemble("DNA", spec.classes, {}, [&](std::size_t c, Rng& r) {
    auto x = sample_markov(spec, bank, c, r);
    for (std::size_t i = block_lo; i < block_hi; ++i)
      if (r.bernoulli(0.8)) x[i] = consensus[c][i - block_lo];
    return x;
  }, rng);
}

Dataset make_lang(Rng& rng) {
  MarkovSpec spec;
  spec.classes = 21;
  spec.features = 128;
  spec.alphabet = 26;
  spec.concentration = 0.22;
  spec.unigram_bias = 0.75;  // unigram skew: level-id gets partial credit
  const auto bank = make_markov_bank(spec, rng);
  Counts counts;
  counts.train_per_class = 60;
  counts.test_per_class = 25;
  return assemble("LANG", spec.classes, counts, [&](std::size_t c, Rng& r) {
    return sample_markov(spec, bank, c, r);
  }, rng);
}

Dataset make_eeg(Rng& rng) {
  // Zero-mean signals; class identity lives in short waveform shapes plus a
  // weak variance envelope — linear projections see nothing.
  MotifSpec motif;
  motif.classes = 2;
  motif.features = 64;
  motif.motif_len = 6;
  motif.motifs_per_class = 2;
  motif.insertions = 2;
  motif.motif_amplitude = 1.1;
  motif.background_noise = 0.6;
  const auto bank = make_motif_bank(motif, rng);
  VarianceSpec var;
  var.classes = 2;
  var.features = 64;
  var.min_sigma = 0.25;
  var.max_sigma = 0.55;
  const auto envs = make_envelopes(var, rng);
  return assemble("EEG", motif.classes, {}, [&](std::size_t c, Rng& r) {
    auto x = sample_motifs(motif, bank, c, r);
    mix_into(x, sample_envelope(envs[c], r), 1.0f);
    return x;
  }, rng);
}

Dataset make_emg(Rng& rng) {
  // Gesture EMG: class-specific muscle-burst waveforms at arbitrary offsets
  // plus a moderate mean activation profile. Every non-linear method works;
  // the linear projection (RP) only sees the weak mean profile.
  MotifSpec motif;
  motif.classes = 5;
  motif.features = 64;
  motif.motif_len = 6;
  motif.motifs_per_class = 2;
  motif.insertions = 3;
  motif.motif_amplitude = 1.0;
  motif.background_noise = 0.40;
  const auto bank = make_motif_bank(motif, rng);
  TemplateSpec weak;
  weak.classes = 5;
  weak.features = 64;
  weak.smoothness = 0.9;
  weak.amplitude = 0.55;  // mean signal: RP and classical ML stay useful
  weak.noise = 0.0;
  const auto tmpls = make_templates(weak, rng);
  return assemble("EMG", motif.classes, {}, [&](std::size_t c, Rng& r) {
    auto x = sample_motifs(motif, bank, c, r);
    mix_into(x, tmpls[c], 1.0f);
    return x;
  }, rng);
}

Dataset make_face(Rng& rng) {
  TemplateSpec spec;
  spec.classes = 2;
  spec.features = 128;
  spec.smoothness = 0.96;  // very smooth: local windows shared across classes
  spec.amplitude = 1.0;
  spec.noise = 1.00;
  const auto tmpls = make_templates(spec, rng);
  return assemble("FACE", spec.classes, {}, [&](std::size_t c, Rng& r) {
    return sample_template(tmpls[c], spec.noise, r);
  }, rng);
}

Dataset make_isolet(Rng& rng) {
  TemplateSpec spec;
  spec.classes = 26;
  spec.features = 128;
  spec.smoothness = 0.93;
  spec.amplitude = 1.0;
  spec.noise = 0.70;
  const auto tmpls = make_templates(spec, rng);
  Counts counts;
  counts.train_per_class = 80;
  counts.test_per_class = 30;
  return assemble("ISOLET", spec.classes, counts, [&](std::size_t c, Rng& r) {
    return sample_template(tmpls[c], spec.noise, r);
  }, rng);
}

Dataset make_mnist(Rng& rng) {
  TemplateSpec spec;
  spec.classes = 10;
  spec.features = 196;  // 14x14 flattened
  spec.smoothness = 0.85;
  spec.amplitude = 1.0;
  spec.noise = 1.10;
  const auto tmpls = make_templates(spec, rng);
  return assemble("MNIST", spec.classes, {}, [&](std::size_t c, Rng& r) {
    return sample_template(tmpls[c], spec.noise, r);
  }, rng);
}

Dataset make_pamap2(Rng& rng) {
  // IMU activity windows: class-specific motion bursts whose *location*
  // along the body-sensor layout matters, plus a weak mean posture signal.
  MotifSpec motif;
  motif.classes = 12;
  motif.features = 96;
  motif.motif_len = 8;
  motif.motifs_per_class = 2;
  motif.insertions = 2;
  motif.motif_amplitude = 1.2;
  motif.background_noise = 0.50;
  motif.positional = true;
  const auto bank = make_motif_bank(motif, rng);
  TemplateSpec weak;
  weak.classes = 12;
  weak.features = 96;
  weak.smoothness = 0.9;
  weak.amplitude = 0.60;
  weak.noise = 0.0;
  const auto tmpls = make_templates(weak, rng);
  Counts counts;
  counts.train_per_class = 100;
  counts.test_per_class = 35;
  return assemble("PAMAP2", motif.classes, counts, [&](std::size_t c, Rng& r) {
    auto x = sample_motifs(motif, bank, c, r);
    mix_into(x, tmpls[c], 1.0f);
    return x;
  }, rng);
}

Dataset make_ucihar(Rng& rng) {
  TemplateSpec spec;
  spec.classes = 6;
  spec.features = 128;
  spec.smoothness = 0.9;
  spec.amplitude = 1.0;
  spec.noise = 0.85;
  const auto tmpls = make_templates(spec, rng);
  MotifSpec motif;
  motif.classes = 6;
  motif.features = 128;
  motif.motif_len = 8;
  motif.motifs_per_class = 2;
  motif.insertions = 2;
  motif.motif_amplitude = 0.7;
  motif.background_noise = 0.0;
  motif.positional = true;
  const auto bank = make_motif_bank(motif, rng);
  return assemble("UCIHAR", spec.classes, {}, [&](std::size_t c, Rng& r) {
    auto x = sample_template(tmpls[c], spec.noise, r);
    mix_into(x, sample_motifs(motif, bank, c, r), 1.0f);
    return x;
  }, rng);
}

}  // namespace

const std::vector<std::string>& benchmark_names() {
  static const std::vector<std::string> names{
      "CARDIO", "DNA",  "EEG",  "EMG",    "FACE",  "ISOLET",
      "LANG",   "MNIST", "PAGE", "PAMAP2", "UCIHAR"};
  return names;
}

Dataset make_benchmark(std::string_view name, std::uint64_t seed) {
  // Each benchmark gets an independent RNG stream derived from (seed, name
  // index) so regenerating one does not shift another.
  const auto& names = benchmark_names();
  std::size_t index = names.size();
  for (std::size_t i = 0; i < names.size(); ++i)
    if (names[i] == name) index = i;
  if (index == names.size())
    throw std::invalid_argument("unknown benchmark: " + std::string(name));
  Rng rng(seed ^ (0xBEAC0ULL + index * 0x9E3779B97F4A7C15ULL));
  switch (index) {
    case 0: return make_cardio(rng);
    case 1: return make_dna(rng);
    case 2: return make_eeg(rng);
    case 3: return make_emg(rng);
    case 4: return make_face(rng);
    case 5: return make_isolet(rng);
    case 6: return make_lang(rng);
    case 7: return make_mnist(rng);
    case 8: return make_page(rng);
    case 9: return make_pamap2(rng);
    default: return make_ucihar(rng);
  }
}

GenericDatasetConfig generic_config_for(std::string_view name) {
  GenericDatasetConfig cfg;
  // Order-free tasks (symbol statistics, bursts at arbitrary offsets):
  // skip global id binding (ids = {0}, §3.1).
  if (name == "LANG" || name == "DNA" || name == "EEG") cfg.use_ids = false;
  return cfg;
}

}  // namespace generic::data
