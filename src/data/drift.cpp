#include "data/drift.h"

#include <stdexcept>

#include "data/generators.h"

namespace generic::data {

namespace {

// Distinct sub-stream tags for the stream's derived generators.
constexpr std::uint64_t kTemplateStream = 0x7E3A11;
constexpr std::uint64_t kShiftStream = 0x5111F7;
// Dataset indices start far above any realistic trace position so the
// evaluation splits never reuse a served request's sample.
constexpr std::uint64_t kDatasetBase = 1ULL << 40;

}  // namespace

DriftStream::DriftStream(const DriftStreamSpec& spec) : spec_(spec) {
  if (spec.classes == 0 || spec.features == 0)
    throw std::invalid_argument("DriftStream: zero-sized parameter");
  if (spec.severity < 0.0 || spec.severity > 1.0)
    throw std::invalid_argument("DriftStream: severity must be in [0, 1]");

  TemplateSpec tspec;
  tspec.classes = spec.classes;
  tspec.features = spec.features;
  tspec.smoothness = spec.smoothness;
  tspec.amplitude = spec.amplitude;
  tspec.noise = spec.noise;

  Rng pre_rng(spec.seed ^ kTemplateStream);
  pre_ = make_templates(tspec, pre_rng);
  Rng shift_rng(spec.seed ^ kShiftStream);
  const auto fresh = make_templates(tspec, shift_rng);

  // post[c] = (1 - severity) * pre[c] + severity * fresh[c]: the class
  // means move toward unrelated curves, so a model frozen on `pre_` keeps
  // losing margin as severity grows while the post-shift classes stay
  // mutually separable (fresh templates are as distinct as the originals).
  post_.resize(spec.classes);
  for (std::size_t c = 0; c < spec.classes; ++c) {
    post_[c] = pre_[c];
    for (float& v : post_[c]) v *= static_cast<float>(1.0 - spec.severity);
    mix_into(post_[c], fresh[c], static_cast<float>(spec.severity));
  }
}

Rng DriftStream::index_rng(std::uint64_t index) const {
  // Same per-id stream derivation as the serve trace generator: one
  // independent deterministic stream per index, no shared state.
  return Rng(spec_.seed ^ (0x9E3779B97F4A7C15ULL * (index + 1)));
}

int DriftStream::label_at(std::uint64_t index) const {
  Rng rng = index_rng(index);
  return static_cast<int>(rng.below(spec_.classes));
}

DriftStream::Sample DriftStream::sample(std::uint64_t index,
                                        bool post_shift) const {
  Rng rng = index_rng(index);
  Sample s;
  s.label = static_cast<int>(rng.below(spec_.classes));
  const auto& tmpl =
      (post_shift ? post_ : pre_)[static_cast<std::size_t>(s.label)];
  s.x = sample_template(tmpl, spec_.noise, rng);
  return s;
}

void DriftStream::fill(std::uint64_t begin, std::size_t count, bool post_shift,
                       std::vector<std::vector<float>>& xs,
                       std::vector<int>& ys) const {
  xs.reserve(xs.size() + count);
  ys.reserve(ys.size() + count);
  for (std::size_t i = 0; i < count; ++i) {
    Sample s = sample(begin + i, post_shift);
    xs.push_back(std::move(s.x));
    ys.push_back(s.label);
  }
}

Dataset DriftStream::make_dataset(std::size_t train, std::size_t test,
                                  bool post_shift) const {
  Dataset ds;
  ds.name = post_shift ? "drift-post" : "drift-pre";
  ds.num_classes = spec_.classes;
  fill(kDatasetBase, train, post_shift, ds.train_x, ds.train_y);
  fill(kDatasetBase + train, test, post_shift, ds.test_x, ds.test_y);
  return ds;
}

}  // namespace generic::data
