// Clustering benchmarks of Table 2: synthetic reconstructions of four FCPS
// suite datasets (Ultsch, "Fundamental Clustering Problem Suite") plus a
// Gaussian approximation of Fisher's Iris. Geometry follows the published
// descriptions: Hepta (7 well-separated 3-D blobs), Tetra (4 almost-touching
// blobs on a tetrahedron), TwoDiamonds (two touching 2-D diamonds), WingNut
// (two density-graded plates), Iris (one separated + two overlapping
// species).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "data/dataset.h"

namespace generic::data {

/// Names in Table 2 order: Hepta, Tetra, TwoDiamonds, WingNut, Iris.
const std::vector<std::string>& fcps_names();

/// Table 2's five plus three more FCPS reconstructions (Lsun: three
/// differently-shaped 2-D clusters; Chainlink: two interlocked 3-D rings,
/// not linearly separable; Atom: a dense core inside a hollow shell) for
/// wider clustering coverage beyond the paper's table.
const std::vector<std::string>& fcps_extended_names();

/// Build a clustering dataset by name; deterministic in (name, seed).
ClusterDataset make_fcps(std::string_view name, std::uint64_t seed = 2022);

}  // namespace generic::data
