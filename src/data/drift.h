// Concept-shift stream for the online-lifecycle scenario (docs/lifecycle.md).
//
// A DriftStream is an infinite, seeded, labeled sample stream with two
// regimes over the same label space: before the shift, samples come from
// one set of per-class templates; after it, each class's template is
// blended toward a fresh curve (`severity` controls how far). That is
// concept drift in the p(x | y) sense: the label marginal is unchanged,
// but a model frozen on the pre-shift regime measurably loses accuracy on
// the post-shift one — and can win it back by retraining on post-shift
// samples, which is exactly the loop src/lifecycle closes.
//
// Determinism contract: sample(i, regime) is a pure function of
// (spec, i, regime). Every index derives its own Rng stream, so samples can
// be drawn in any order, from any thread, with no shared generator state —
// the label sequence in particular is byte-stable across runs and thread
// counts (tests/data/drift_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace generic::data {

struct DriftStreamSpec {
  std::size_t classes = 6;
  std::size_t features = 64;
  double smoothness = 0.9;   ///< AR(1) coefficient of the class templates
  double amplitude = 1.0;    ///< template scale
  double noise = 0.3;        ///< iid Gaussian noise per feature
  /// Blend weight of the post-shift templates: 0 = no drift, 1 = every
  /// class replaced by an unrelated fresh curve.
  double severity = 0.75;
  std::uint64_t seed = 0xD21F7;
};

class DriftStream {
 public:
  struct Sample {
    std::vector<float> x;
    int label = 0;
  };

  explicit DriftStream(const DriftStreamSpec& spec);

  /// Labeled sample `index` of the requested regime. The label depends only
  /// on (seed, index) — NOT on the regime — so the same trace position keeps
  /// the same ground truth across the shift while its features move.
  Sample sample(std::uint64_t index, bool post_shift) const;

  /// Label of sample `index` without materializing the features.
  int label_at(std::uint64_t index) const;

  /// `count` consecutive samples starting at `begin`, one regime.
  void fill(std::uint64_t begin, std::size_t count, bool post_shift,
            std::vector<std::vector<float>>& xs, std::vector<int>& ys) const;

  /// Train/test dataset drawn from one regime (indices are offset far from
  /// the serving trace so evaluation data never aliases served requests).
  Dataset make_dataset(std::size_t train, std::size_t test,
                       bool post_shift) const;

  const DriftStreamSpec& spec() const { return spec_; }
  const std::vector<float>& pre_template(std::size_t c) const {
    return pre_.at(c);
  }
  const std::vector<float>& post_template(std::size_t c) const {
    return post_.at(c);
  }

 private:
  Rng index_rng(std::uint64_t index) const;

  DriftStreamSpec spec_;
  std::vector<std::vector<float>> pre_;   ///< per-class pre-shift templates
  std::vector<std::vector<float>> post_;  ///< blended post-shift templates
};

}  // namespace generic::data
