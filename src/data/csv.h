// CSV dataset I/O: the path for running the library on real data (the CLI
// tools under tools/ are built on this). One row per sample, numeric
// feature columns, integer class label in the last column by default.
// A header line is auto-detected (first field not parseable as a number)
// and skipped.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace generic::data {

struct LabeledSamples {
  std::vector<std::vector<float>> x;
  std::vector<int> y;
  std::size_t num_classes = 0;  ///< max label + 1
};

/// Parse a labelled CSV. `label_column` counts from 0; -1 means the last
/// column. Throws std::runtime_error on I/O failure and
/// std::invalid_argument on malformed content — rows whose field count
/// differs from the header/first row, non-numeric or non-finite (NaN/Inf)
/// cells, negative labels — with the offending 1-based file line in the
/// message.
LabeledSamples load_labeled_csv(const std::string& path,
                                int label_column = -1);

/// Parse an unlabelled CSV (all columns are features).
std::vector<std::vector<float>> load_unlabeled_csv(const std::string& path);

/// Write samples (+ labels in the last column) to CSV.
void save_labeled_csv(const std::string& path,
                      const std::vector<std::vector<float>>& x,
                      const std::vector<int>& y);

/// Stratified split of loaded samples into a Dataset.
Dataset to_dataset(std::string name, LabeledSamples samples,
                   double frac_train, std::uint64_t seed = 1);

}  // namespace generic::data
