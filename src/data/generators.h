// Primitive synthetic-data generators. Each primitive isolates one kind of
// discriminative structure; the benchmark clones in benchmarks.h mix them
// with per-dataset weights to mimic the real datasets of Table 1.
//
// The primitives are chosen to probe exactly the encoder failure modes the
// paper discusses in §3.2:
//  * templates        — distinct per-class means at fixed positions. Linear
//                       methods (RP, SVM) and positional encoders shine;
//                       order-free ngram statistics collapse.
//  * variance profile — zero mean everywhere, class-specific per-position
//                       variance. Invisible to any linear map (RP), visible
//                       to level-quantizing encoders.
//  * local motifs     — short class-specific waveforms at random offsets.
//                       Only window/subsequence encoders capture the shape;
//                       per-position marginals carry almost nothing.
//  * markov symbols   — class-specific symbol-transition statistics at
//                       arbitrary global offsets (language identification).
//                       Subsequence methods reach ~100%; positional binding
//                       actively hurts.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace generic::data {

/// Smooth standard-ish random curve of length d: an AR(1) walk, then
/// rescaled to zero mean / unit max-abs. Building block for templates and
/// envelopes.
std::vector<float> smooth_curve(std::size_t d, double smoothness, Rng& rng);

struct TemplateSpec {
  std::size_t classes = 10;
  std::size_t features = 64;
  double smoothness = 0.9;   ///< AR(1) coefficient of the class templates
  double amplitude = 1.0;    ///< template scale
  double noise = 0.3;        ///< iid Gaussian noise per feature
};

/// One sample: class template + noise.
std::vector<float> sample_template(const std::vector<float>& tmpl,
                                   double noise, Rng& rng);

/// Generate per-class templates.
std::vector<std::vector<float>> make_templates(const TemplateSpec& spec,
                                               Rng& rng);

struct VarianceSpec {
  std::size_t classes = 5;
  std::size_t features = 64;
  double smoothness = 0.8;
  double min_sigma = 0.25;  ///< envelope floor
  double max_sigma = 1.6;   ///< envelope ceiling
};

/// Per-class positive envelopes; samples are N(0, env[i]^2) per feature.
std::vector<std::vector<float>> make_envelopes(const VarianceSpec& spec,
                                               Rng& rng);
std::vector<float> sample_envelope(const std::vector<float>& env, Rng& rng);

struct MotifSpec {
  std::size_t classes = 2;
  std::size_t features = 64;
  std::size_t motif_len = 6;
  std::size_t motifs_per_class = 2;  ///< motif inventory size per class
  std::size_t insertions = 3;        ///< motifs planted per sample
  double motif_amplitude = 1.0;
  double background_noise = 0.35;
  bool positional = false;  ///< restrict each class's motifs to a home region
};

struct MotifBank {
  // motifs[c][k] is the k-th waveform of class c.
  std::vector<std::vector<std::vector<float>>> motifs;
  // home_lo/hi[c]: allowed insertion range when spec.positional is set.
  std::vector<std::size_t> home_lo, home_hi;
};

MotifBank make_motif_bank(const MotifSpec& spec, Rng& rng);
std::vector<float> sample_motifs(const MotifSpec& spec, const MotifBank& bank,
                                 std::size_t cls, Rng& rng);

struct MarkovSpec {
  std::size_t classes = 21;
  std::size_t features = 64;   ///< sequence length
  std::size_t alphabet = 26;
  double concentration = 0.85; ///< weight on class-specific transitions
  double unigram_bias = 0.0;   ///< weight on class-specific unigram skew
};

struct MarkovBank {
  // transition[c][s] is a cumulative distribution over next symbols.
  std::vector<std::vector<std::vector<double>>> transition_cdf;
  std::size_t alphabet = 0;
};

MarkovBank make_markov_bank(const MarkovSpec& spec, Rng& rng);
/// Sequence of symbols mapped to floats (symbol + 0.5) so a quantizer with
/// >= alphabet bins recovers symbol identity.
std::vector<float> sample_markov(const MarkovSpec& spec,
                                 const MarkovBank& bank, std::size_t cls,
                                 Rng& rng);

/// Element-wise a += w * b (feature mixing for composite benchmarks).
void mix_into(std::vector<float>& a, const std::vector<float>& b, float w);

}  // namespace generic::data
