// The eleven classification benchmark clones of Table 1.
//
// Each entry names the real dataset it stands in for and composes the
// generator primitives so that the clone exhibits the same discriminative
// structure (and therefore the same encoder win/loss pattern) as the
// original — see generators.h for the primitive-to-failure-mode mapping and
// DESIGN.md §3 for the substitution argument.
//
//   CARDIO  cardiotocography: plain tabular, 21 features, 10 classes
//   DNA     splice junctions: symbol composition + motifs, 3 classes
//   EEG     seizure detection: zero-mean local waveforms, 2 classes
//   EMG     gesture EMG: per-position variance envelopes, 5 classes
//   FACE    face vs non-face: global templates, 2 classes
//   ISOLET  spoken letters: smooth spectral templates, 26 classes
//   LANG    language id: order-free symbol transition statistics, 21 classes
//   MNIST   digits: positional templates, 10 classes
//   PAGE    page blocks: plain tabular, 10 features, 5 classes
//   PAMAP2  activity (IMU): positional motifs + weak templates, 12 classes
//   UCIHAR  activity (phones): templates + motifs, 6 classes
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "data/dataset.h"

namespace generic::data {

/// Names of the Table 1 benchmarks, in the paper's row order.
const std::vector<std::string>& benchmark_names();

/// Generate a benchmark clone by name (case-sensitive, as listed above).
/// The same (name, seed) pair always produces the identical dataset.
Dataset make_benchmark(std::string_view name, std::uint64_t seed = 2022);

/// Per-benchmark GENERIC encoder settings, mirroring the paper: window
/// n = 3 everywhere, ids skipped on the order-free sequence tasks
/// (LANG, DNA) where global position carries no information (§3.1).
struct GenericDatasetConfig {
  std::size_t window = 3;
  bool use_ids = true;
};
GenericDatasetConfig generic_config_for(std::string_view name);

}  // namespace generic::data
