// Dataset container and the synthetic benchmark registry.
//
// The paper evaluates on eleven real datasets (Table 1) plus the FCPS
// clustering suite and Iris (Table 2). Those datasets are not shipped here;
// instead each is replaced by a deterministic synthetic generator that
// reproduces the *structural property* the dataset exercises — positional
// templates, local temporal motifs, variance envelopes, order-free symbol
// statistics — because the paper's accuracy comparison (which encodings
// capture which structure) is driven entirely by that structure. See
// DESIGN.md §3 for the substitution rationale, and benchmarks.h for the
// per-dataset recipes.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"

namespace generic::data {

struct Dataset {
  std::string name;
  std::size_t num_classes = 0;
  std::vector<std::vector<float>> train_x;
  std::vector<int> train_y;
  std::vector<std::vector<float>> test_x;
  std::vector<int> test_y;

  std::size_t num_features() const {
    return train_x.empty() ? 0 : train_x.front().size();
  }
  std::size_t train_size() const { return train_x.size(); }
  std::size_t test_size() const { return test_x.size(); }
};

/// Unlabelled points + ground truth partition for clustering evaluation.
struct ClusterDataset {
  std::string name;
  std::size_t num_clusters = 0;
  std::vector<std::vector<float>> points;
  std::vector<int> labels;  ///< ground truth, used only for scoring

  std::size_t num_features() const {
    return points.empty() ? 0 : points.front().size();
  }
};

/// Shuffle a paired (X, y) sample set in place.
void shuffle_xy(std::vector<std::vector<float>>& xs, std::vector<int>& ys,
                Rng& rng);

/// Split `frac_train` of the samples (per class, preserving balance) into
/// the train side of a Dataset.
Dataset split_train_test(std::string name, std::size_t num_classes,
                         std::vector<std::vector<float>> xs,
                         std::vector<int> ys, double frac_train, Rng& rng);

}  // namespace generic::data
