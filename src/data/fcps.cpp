#include "data/fcps.h"

#include <cmath>
#include <stdexcept>

namespace generic::data {
namespace {

void add_gaussian_blob(ClusterDataset& ds, int label, std::size_t n,
                       const std::vector<float>& center, double sigma,
                       Rng& rng) {
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<float> p(center.size());
    for (std::size_t d = 0; d < p.size(); ++d)
      p[d] = center[d] + static_cast<float>(sigma * rng.normal());
    ds.points.push_back(std::move(p));
    ds.labels.push_back(label);
  }
}

ClusterDataset make_hepta(Rng& rng) {
  ClusterDataset ds;
  ds.name = "Hepta";
  ds.num_clusters = 7;
  const std::vector<std::vector<float>> centers{
      {0, 0, 0},  {3, 0, 0}, {-3, 0, 0}, {0, 3, 0},
      {0, -3, 0}, {0, 0, 3}, {0, 0, -3}};
  for (std::size_t c = 0; c < centers.size(); ++c)
    add_gaussian_blob(ds, static_cast<int>(c), 30, centers[c], 0.45, rng);
  return ds;
}

ClusterDataset make_tetra(Rng& rng) {
  ClusterDataset ds;
  ds.name = "Tetra";
  ds.num_clusters = 4;
  // Unit-edge tetrahedron vertices scaled so blobs almost touch.
  const float s = 1.35f;
  const std::vector<std::vector<float>> centers{
      {s, s, s}, {s, -s, -s}, {-s, s, -s}, {-s, -s, s}};
  for (std::size_t c = 0; c < centers.size(); ++c)
    add_gaussian_blob(ds, static_cast<int>(c), 100, centers[c], 0.85, rng);
  return ds;
}

ClusterDataset make_two_diamonds(Rng& rng) {
  ClusterDataset ds;
  ds.name = "TwoDiamonds";
  ds.num_clusters = 2;
  // Two uniform diamonds |x|+|y| <= 1 centred at (-1.1, 0) and (1.1, 0):
  // they nearly touch at the origin, the suite's decision-boundary stressor.
  for (int c = 0; c < 2; ++c) {
    const float cx = c == 0 ? -1.1f : 1.1f;
    for (int i = 0; i < 300; ++i) {
      float x, y;
      do {
        x = static_cast<float>(rng.uniform(-1.0, 1.0));
        y = static_cast<float>(rng.uniform(-1.0, 1.0));
      } while (std::abs(x) + std::abs(y) > 1.0f);
      ds.points.push_back({cx + x, y});
      ds.labels.push_back(c);
    }
  }
  return ds;
}

ClusterDataset make_wingnut(Rng& rng) {
  ClusterDataset ds;
  ds.name = "WingNut";
  ds.num_clusters = 2;
  // Two mirrored rectangular plates with a density gradient that pulls
  // centroid methods towards the dense corners.
  for (int c = 0; c < 2; ++c) {
    const float sign = c == 0 ? 1.0f : -1.0f;
    int placed = 0;
    while (placed < 250) {
      const float u = static_cast<float>(rng.uniform());
      const float v = static_cast<float>(rng.uniform());
      // Accept with probability proportional to position along x: denser
      // towards the inner edge.
      if (rng.uniform() > 0.25 + 0.75 * u) continue;
      const float x = sign * (0.3f + 2.2f * u);
      const float y = -1.0f + 2.0f * v;
      ds.points.push_back({x, y});
      ds.labels.push_back(c);
      ++placed;
    }
  }
  return ds;
}

ClusterDataset make_iris(Rng& rng) {
  ClusterDataset ds;
  ds.name = "Iris";
  ds.num_clusters = 3;
  // Gaussian fit of Fisher's iris (sepal length/width, petal length/width).
  struct Species {
    std::vector<float> mean;
    std::vector<float> sd;
  };
  const std::vector<Species> species{
      {{5.01f, 3.42f, 1.46f, 0.24f}, {0.35f, 0.38f, 0.17f, 0.11f}},
      {{5.94f, 2.77f, 4.26f, 1.33f}, {0.52f, 0.31f, 0.47f, 0.20f}},
      {{6.59f, 2.97f, 5.55f, 2.03f}, {0.64f, 0.32f, 0.55f, 0.27f}}};
  for (std::size_t c = 0; c < species.size(); ++c) {
    for (int i = 0; i < 50; ++i) {
      std::vector<float> p(4);
      for (int d = 0; d < 4; ++d)
        p[static_cast<std::size_t>(d)] =
            species[c].mean[static_cast<std::size_t>(d)] +
            species[c].sd[static_cast<std::size_t>(d)] *
                static_cast<float>(rng.normal());
      ds.points.push_back(std::move(p));
      ds.labels.push_back(static_cast<int>(c));
    }
  }
  return ds;
}

ClusterDataset make_lsun(Rng& rng) {
  // Three clusters shaped like the letters L, S (approximated by a dense
  // blob), U: different shapes and inter-cluster distances.
  ClusterDataset ds;
  ds.name = "Lsun";
  ds.num_clusters = 3;
  // L: two perpendicular bars.
  for (int i = 0; i < 100; ++i) {
    const bool vertical = rng.bernoulli(0.5);
    const float x = vertical ? static_cast<float>(rng.uniform(0.0, 0.4))
                             : static_cast<float>(rng.uniform(0.0, 2.0));
    const float y = vertical ? static_cast<float>(rng.uniform(0.0, 2.0))
                             : static_cast<float>(rng.uniform(0.0, 0.4));
    ds.points.push_back({x, y});
    ds.labels.push_back(0);
  }
  // Dense blob offset to the upper right.
  add_gaussian_blob(ds, 1, 100, {3.2f, 2.6f}, 0.25, rng);
  // U: a flat-bottomed arc further right.
  for (int i = 0; i < 100; ++i) {
    const float t = static_cast<float>(rng.uniform(0.0, 3.14159265));
    const float r = 0.8f + static_cast<float>(rng.uniform(-0.12, 0.12));
    ds.points.push_back({5.5f + r * std::cos(t), 0.6f - r * std::sin(t)});
    ds.labels.push_back(2);
  }
  return ds;
}

ClusterDataset make_chainlink(Rng& rng) {
  // Two interlocked tori — the classic not-linearly-separable FCPS case.
  ClusterDataset ds;
  ds.name = "Chainlink";
  ds.num_clusters = 2;
  auto ring = [&](int label, bool rotated, float cx) {
    for (int i = 0; i < 250; ++i) {
      const float t = static_cast<float>(rng.uniform(0.0, 6.2831853));
      const float noise = static_cast<float>(rng.normal() * 0.05);
      const float r = 1.0f + noise;
      float x = r * std::cos(t), y = r * std::sin(t), z =
          static_cast<float>(rng.normal() * 0.05);
      if (rotated) {  // rotate 90 degrees about x and thread through
        const float tmp = y;
        y = z;
        z = tmp;
        x += cx;
      }
      ds.points.push_back({x, y, z});
      ds.labels.push_back(label);
    }
  };
  ring(0, false, 0.0f);
  ring(1, true, 1.0f);
  return ds;
}

ClusterDataset make_atom(Rng& rng) {
  // Dense nucleus inside a hollow electron shell: different variances and
  // a containment relation no centroid method can express.
  ClusterDataset ds;
  ds.name = "Atom";
  ds.num_clusters = 2;
  add_gaussian_blob(ds, 0, 200, {0.0f, 0.0f, 0.0f}, 0.35, rng);
  for (int i = 0; i < 200; ++i) {
    // Uniform direction on the sphere, radius ~N(3, 0.15).
    float x, y, z, n2;
    do {
      x = static_cast<float>(rng.normal());
      y = static_cast<float>(rng.normal());
      z = static_cast<float>(rng.normal());
      n2 = x * x + y * y + z * z;
    } while (n2 < 1e-6f);
    const float r = 3.0f + static_cast<float>(rng.normal() * 0.15);
    const float inv = r / std::sqrt(n2);
    ds.points.push_back({x * inv, y * inv, z * inv});
    ds.labels.push_back(1);
  }
  return ds;
}

}  // namespace

const std::vector<std::string>& fcps_names() {
  static const std::vector<std::string> names{"Hepta", "Tetra", "TwoDiamonds",
                                              "WingNut", "Iris"};
  return names;
}

const std::vector<std::string>& fcps_extended_names() {
  static const std::vector<std::string> names{
      "Hepta", "Tetra",     "TwoDiamonds", "WingNut",
      "Iris",  "Lsun",      "Chainlink",   "Atom"};
  return names;
}

ClusterDataset make_fcps(std::string_view name, std::uint64_t seed) {
  const auto& names = fcps_extended_names();
  std::size_t index = names.size();
  for (std::size_t i = 0; i < names.size(); ++i)
    if (names[i] == name) index = i;
  if (index == names.size())
    throw std::invalid_argument("unknown FCPS dataset: " + std::string(name));
  Rng rng(seed ^ (0xFC95ULL + index * 0x9E3779B97F4A7C15ULL));
  ClusterDataset ds;
  switch (index) {
    case 0: ds = make_hepta(rng); break;
    case 1: ds = make_tetra(rng); break;
    case 2: ds = make_two_diamonds(rng); break;
    case 3: ds = make_wingnut(rng); break;
    case 4: ds = make_iris(rng); break;
    case 5: ds = make_lsun(rng); break;
    case 6: ds = make_chainlink(rng); break;
    default: ds = make_atom(rng); break;
  }
  // Shuffle so "first k points" centroid seeding (the GENERIC clustering
  // initialisation, §2.1) is not handed one cluster per contiguous block.
  shuffle_xy(ds.points, ds.labels, rng);
  return ds;
}

}  // namespace generic::data
