// Area / power / energy model of the GENERIC ASIC, calibrated to the
// paper's published numbers (§5.1, Figure 7):
//   * 14 nm, 500 MHz, total area 0.30 mm^2
//   * worst-case static power 0.25 mW (all class-memory banks on),
//     ~0.09-0.12 mW with application-opportunistic power gating
//   * average dynamic power ~1.8 mW while processing
//   * class memories dominate (~80-90% of power), level memory < 10%
//
// Dynamic energy is computed bottom-up from the CycleModel access counts
// with per-access energies chosen to land on those anchors; static energy
// integrates leakage over elapsed time. The three §4.3 energy features are
// modelled explicitly:
//   power gating     — class-memory static power scales with active banks
//   dimension demand — fewer passes, fewer accesses (falls out of counts)
//   voltage scaling  — a [20]-style curve maps a class-memory bit-error
//                      rate to static/dynamic power reduction factors
#pragma once

#include "arch/cycle_model.h"
#include "arch/spec.h"

namespace generic::arch {

struct Breakdown {
  double control = 0.0;
  double datapath = 0.0;
  double base_mem = 0.0;     ///< score + norm2 + id seed
  double feature_mem = 0.0;  ///< input memory
  double level_mem = 0.0;
  double class_mem = 0.0;

  double total() const {
    return control + datapath + base_mem + feature_mem + level_mem + class_mem;
  }
  Breakdown& operator+=(const Breakdown& o);
};

/// Voltage over-scaling operating point (§4.3.4). `bit_error_rate` is the
/// per-bit flip probability in the class SRAM at the scaled voltage;
/// the reductions divide the class-memory power.
struct VosSetting {
  double bit_error_rate = 0.0;
  double static_reduction = 1.0;
  double dynamic_reduction = 1.0;
};

/// Interpolated [20]-style operating point for a target bit error rate
/// (monotone: more errors <=> lower voltage <=> bigger savings).
VosSetting vos_for_error_rate(double bit_error_rate);

class EnergyModel {
 public:
  explicit EnergyModel(const ArchConstants& hw = {});

  /// Silicon area (mm^2) by component; totals 0.30.
  Breakdown area_mm2() const;

  /// Area multiplier of banking the class memories (§4.3.2: 4 banks cost
  /// ~20% class-memory area, 8 banks ~55%).
  double banking_area_overhead(std::size_t banks) const;

  /// Fraction of class-memory banks powered for an application (§4.3.2).
  /// Usage = classes*dims / (32*4K); banks round up to the bank grid.
  double active_bank_fraction(const AppSpec& spec, std::size_t banks) const;
  double active_bank_fraction(const AppSpec& spec) const {
    return active_bank_fraction(spec, hw_.class_banks);
  }

  /// Static power (mW). Worst case (no gating): 0.25 total.
  Breakdown static_power_full_mw() const;
  Breakdown static_power_mw(const AppSpec& spec,
                            const VosSetting& vos = {}) const;

  /// Dynamic energy (joules) of an access-count bundle.
  Breakdown dynamic_energy_j(const AppSpec& spec, const AccessCounts& counts,
                             const VosSetting& vos = {}) const;

  /// Average dynamic power (mW) over the counts' duration.
  Breakdown dynamic_power_mw(const AppSpec& spec, const AccessCounts& counts,
                             const VosSetting& vos = {}) const;

  /// Total energy (joules): dynamic + static integrated over elapsed time.
  double energy_j(const AppSpec& spec, const AccessCounts& counts,
                  const VosSetting& vos = {}) const;

  const ArchConstants& hw() const { return hw_; }

 private:
  ArchConstants hw_;
  CycleModel cycles_;
};

}  // namespace generic::arch
