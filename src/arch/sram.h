// Bit-accurate SRAM bank model used by the micro-architectural simulator
// (microarch.h). Each bank stores `depth` rows of `width_bits`, counts
// accesses, and can inject per-bit read upsets to model operation below
// the nominal supply — not just in the class memories (§4.3.4) but in any
// array, enabling the failure-injection studies DESIGN.md §6 calls for.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace generic::arch {

class Sram {
 public:
  Sram(std::string name, std::size_t depth, std::size_t width_bits);

  const std::string& name() const { return name_; }
  std::size_t depth() const { return depth_; }
  std::size_t width_bits() const { return width_bits_; }

  /// Write a row (low `width_bits` of each word used, row-major u64 words).
  void write_row(std::size_t row, const std::vector<std::uint64_t>& bits);

  /// Read a full row; counts one access and applies fault injection.
  std::vector<std::uint64_t> read_row(std::size_t row);

  /// Read `count` bits starting at bit `start` of `row` (wraps around the
  /// row, modelling the sliding-window fetch of the encoder register
  /// stack). One access.
  std::uint64_t read_bits(std::size_t row, std::size_t start,
                          std::size_t count);

  /// Convenience for narrow rows (<= 64 bits).
  std::uint64_t read_word(std::size_t row);
  void write_word(std::size_t row, std::uint64_t value);

  /// Enable per-bit read-upset injection at `rate` using `seed`.
  /// Upsets are transient (the stored value is not modified) — the model
  /// of read-path failures under voltage over-scaling.
  void set_read_upset_rate(double rate, std::uint64_t seed);

  /// Re-seed the fault RNG without touching the rate: two banks reseeded
  /// with the same value replay the identical upset pattern (determinism
  /// contract of the fault campaign; see tests/arch/sram_test.cpp).
  void reseed(std::uint64_t seed);

  double read_upset_rate() const { return upset_rate_; }

  /// Permanently kill a row: reads return all zeros, writes are dropped —
  /// the model of a manufacturing-defect / worn-out SRAM row backing the
  /// resilience campaign's dead-block fault kind.
  void mark_dead_row(std::size_t row);
  bool row_is_dead(std::size_t row) const;
  /// Revive all dead rows (their pre-death contents reappear; dropped
  /// writes stay lost).
  void clear_dead_rows();

  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }
  void reset_counters() {
    reads_ = 0;
    writes_ = 0;
  }

 private:
  std::uint64_t maybe_upset(std::uint64_t word, std::size_t bits);

  std::string name_;
  std::size_t depth_;
  std::size_t width_bits_;
  std::size_t words_per_row_;
  std::vector<std::uint64_t> data_;
  std::vector<bool> dead_rows_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  double upset_rate_ = 0.0;
  Rng fault_rng_{0};
};

}  // namespace generic::arch
