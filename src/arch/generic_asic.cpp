#include "arch/generic_asic.h"

#include <limits>
#include <stdexcept>

#include "common/mitchell.h"
#include "hdc/hypervector.h"

namespace generic::arch {
namespace {

enc::EncoderConfig encoder_config(const AppSpec& spec, const ArchConstants& hw,
                                  std::uint64_t seed) {
  enc::EncoderConfig cfg;
  cfg.dims = spec.dims;
  cfg.levels = hw.levels;
  cfg.window = spec.window;
  cfg.use_ids = spec.use_ids;
  cfg.seed = seed;
  return cfg;
}

}  // namespace

GenericAsic::GenericAsic(const AppSpec& spec, std::uint64_t seed,
                         const ArchConstants& hw)
    : spec_(spec),
      hw_(hw),
      cycles_(hw),
      energy_(hw),
      encoder_(encoder_config(spec, hw, seed)),
      active_dims_(spec.dims),
      fault_rng_(seed ^ 0xFA17ULL) {
  spec_.validate(hw_);
}

const model::HdcClassifier& GenericAsic::require_model() const {
  if (!model_) throw std::logic_error("GenericAsic: model not trained/loaded");
  return *model_;
}

std::size_t GenericAsic::train(const std::vector<std::vector<float>>& x,
                               const std::vector<int>& y, std::size_t epochs) {
  if (x.size() != y.size() || x.empty())
    throw std::invalid_argument("GenericAsic::train: bad input sizes");
  spec_.mode = Mode::kTraining;
  encoder_.fit(x);
  // Encode the stream once and bundle into class rows (§4.2.2 round one).
  std::vector<hdc::IntHV> encoded;
  encoded.reserve(x.size());
  for (const auto& sample : x) {
    encoded.push_back(encoder_.encode(sample));
    counts_ += cycles_.train_init_input(spec_);
  }
  model_.emplace(spec_.dims, spec_.classes, hw_.chunk);
  model_->train_init(encoded, y);

  // Retraining epochs: inference over the train stream (encodings stashed
  // in temporary class rows) plus an update per misprediction.
  std::size_t epoch = 0;
  for (; epoch < epochs; ++epoch) {
    std::size_t updates = 0;
    for (std::size_t i = 0; i < encoded.size(); ++i) {
      counts_ += cycles_.infer_input(spec_);
      const int pred = best_class(encoded[i]);
      if (pred == y[i]) continue;
      ++updates;
      counts_ += cycles_.retrain_update(spec_);
      hdc::add_into(model_->mutable_class_vector(static_cast<std::size_t>(pred)),
                    encoded[i], -1);
      hdc::add_into(model_->mutable_class_vector(static_cast<std::size_t>(y[i])),
                    encoded[i], +1);
      // Norm2 rows of the two touched classes refresh with the write-back
      // (§4.2.2), so the very next prediction already sees them.
      model_->recompute_norms(static_cast<std::size_t>(pred));
      model_->recompute_norms(static_cast<std::size_t>(y[i]));
    }
    if (updates == 0) break;
  }
  return epoch;
}

int GenericAsic::infer(std::span<const float> sample) {
  require_model();
  spec_.mode = Mode::kInference;
  AppSpec effective = spec_;
  effective.dims = active_dims_;  // fewer dims -> fewer passes (§4.3.3)
  counts_ += cycles_.infer_input(effective);
  return best_class(encoder_.encode(sample));
}

int GenericAsic::online_update(std::span<const float> sample, int label) {
  require_model();
  if (label < 0 || static_cast<std::size_t>(label) >= spec_.classes)
    throw std::invalid_argument("online_update: label out of range");
  spec_.mode = Mode::kTraining;
  counts_ += cycles_.infer_input(spec_);
  const auto encoded = encoder_.encode(sample);
  const int pred = best_class(encoded);
  if (pred != label) {
    counts_ += cycles_.retrain_update(spec_);
    hdc::add_into(model_->mutable_class_vector(static_cast<std::size_t>(pred)),
                  encoded, -1);
    hdc::add_into(model_->mutable_class_vector(static_cast<std::size_t>(label)),
                  encoded, +1);
    model_->recompute_norms(static_cast<std::size_t>(pred));
    model_->recompute_norms(static_cast<std::size_t>(label));
  }
  return pred;
}

std::vector<int> GenericAsic::cluster(const std::vector<std::vector<float>>& x,
                                      std::size_t epochs) {
  if (x.size() < spec_.classes)
    throw std::invalid_argument("GenericAsic::cluster: fewer inputs than k");
  spec_.mode = Mode::kClustering;
  encoder_.fit(x);
  std::vector<hdc::IntHV> encoded;
  encoded.reserve(x.size());
  for (const auto& sample : x) encoded.push_back(encoder_.encode(sample));

  const std::size_t k = spec_.classes;
  // First k encodings seed the centroids (§4.2.3); store them in the model
  // object so best_class/norm plumbing is shared with classification.
  model_.emplace(spec_.dims, k, hw_.chunk);
  std::vector<int> seed_labels(k);
  for (std::size_t c = 0; c < k; ++c) seed_labels[c] = static_cast<int>(c);
  model_->train_init(std::span(encoded.data(), k), seed_labels);

  std::vector<int> labels(encoded.size(), -1);
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    std::vector<hdc::IntHV> copy(k, hdc::IntHV(spec_.dims, 0));
    std::vector<std::size_t> members(k, 0);
    bool changed = false;
    for (std::size_t i = 0; i < encoded.size(); ++i) {
      counts_ += cycles_.cluster_input(spec_);
      const int c = best_class(encoded[i]);
      if (c != labels[i]) changed = true;
      labels[i] = c;
      hdc::add_into(copy[static_cast<std::size_t>(c)], encoded[i]);
      members[static_cast<std::size_t>(c)]++;
    }
    if (!changed) break;
    for (std::size_t c = 0; c < k; ++c)
      if (members[c] != 0) model_->mutable_class_vector(c) = std::move(copy[c]);
    model_->recompute_norms();
  }
  return labels;
}

void GenericAsic::restore_model(model::HdcClassifier m) {
  if (m.dims() != spec_.dims)
    throw std::invalid_argument("restore_model: dimension mismatch");
  spec_.bit_width = m.bit_width();
  model_ = std::move(m);
  active_dims_ = spec_.dims;
  constant_norms_ = false;
  vos_ = VosSetting{};
}

void GenericAsic::set_active_dims(std::size_t dims, bool constant_norms) {
  if (dims == 0 || dims > spec_.dims || dims % hw_.chunk != 0)
    throw std::invalid_argument(
        "set_active_dims: dims must be a 128-multiple <= trained dims");
  active_dims_ = dims;
  constant_norms_ = constant_norms;
}

void GenericAsic::quantize(int bit_width) {
  require_model();
  model_->quantize(bit_width);
  spec_.bit_width = bit_width;
}

void GenericAsic::apply_voltage_scaling(double bit_error_rate) {
  require_model();
  vos_ = vos_for_error_rate(bit_error_rate);
  model_->inject_bit_flips(bit_error_rate, fault_rng_);
}

int GenericAsic::best_class(const hdc::IntHV& encoded) const {
  const auto& model = require_model();
  const auto mode = constant_norms_ ? model::NormMode::kConstant
                                    : model::NormMode::kUpdated;
  if (exact_divider_) {
    int best = 0;
    double best_score = -std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < model.num_classes(); ++c) {
      const double s = model.score(encoded, c, active_dims_, mode);
      if (s > best_score) {
        best_score = s;
        best = static_cast<int>(c);
      }
    }
    return best;
  }
  // Hardware path: rank sign(dot) * dot^2 / norm entirely in the log
  // domain — 2 log2|dot| - log2(norm) with the corrected Mitchell
  // approximation (§4.2.1, [18]); negative dots rank below zero dots,
  // which rank below positive dots.
  int best = 0;
  int best_sign = -2;
  std::int64_t best_log = std::numeric_limits<std::int64_t>::min();
  for (std::size_t c = 0; c < model.num_classes(); ++c) {
    const auto& cls = model.class_vector(c);
    std::int64_t dot = 0;
    for (std::size_t j = 0; j < active_dims_; ++j)
      dot += static_cast<std::int64_t>(encoded[j]) * cls[j];
    std::int64_t norm = 0;
    const std::size_t chunks = constant_norms_ ? model.num_chunks()
                                               : active_dims_ / hw_.chunk;
    for (std::size_t kk = 0; kk < chunks; ++kk) norm += model.chunk_norm(c, kk);
    int sign;
    std::int64_t log_score;
    if (dot == 0 || norm == 0) {
      sign = 0;
      log_score = 0;
    } else {
      sign = dot > 0 ? 1 : -1;
      const auto mag = static_cast<std::uint64_t>(dot > 0 ? dot : -dot);
      log_score = 2 * mitchell_log2_corrected(mag) -
                  mitchell_log2_corrected(static_cast<std::uint64_t>(norm));
    }
    // Compare (sign, sign*log): positive beats zero beats negative; within
    // positives a bigger ratio wins, within negatives a smaller one does.
    const std::int64_t keyed = sign >= 0 ? log_score : -log_score;
    if (sign > best_sign || (sign == best_sign && keyed > best_log)) {
      best_sign = sign;
      best_log = keyed;
      best = static_cast<int>(c);
    }
  }
  return best;
}

}  // namespace generic::arch
