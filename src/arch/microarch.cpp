#include "arch/microarch.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "common/mitchell.h"

namespace generic::arch {
namespace {

/// Saturate a trained class element into the 16-bit row the silicon keeps.
std::uint64_t to_row16(std::int32_t v) {
  const std::int32_t sat = std::clamp(v, -32768, 32767);
  return static_cast<std::uint64_t>(static_cast<std::uint16_t>(sat));
}

std::int32_t from_row16(std::uint64_t word) {
  return static_cast<std::int32_t>(static_cast<std::int16_t>(
      static_cast<std::uint16_t>(word & 0xFFFFULL)));
}

}  // namespace

MicroArchSim::MicroArchSim(const AppSpec& spec,
                           const enc::GenericEncoder& encoder,
                           const model::HdcClassifier& classifier,
                           const ArchConstants& hw)
    : spec_(spec),
      hw_(hw),
      active_dims_(spec.dims),
      chunk_ok_(spec.dims / hw.chunk, true),
      encoder_(encoder),
      feature_mem_("feature", hw.max_features, 8),
      level_mem_("level", hw.levels, spec.dims),
      id_seed_("id-seed", 1, spec.dims),
      score_mem_("score", hw.max_classes, 64),
      norm_mem_("norm2", hw.max_classes * (hw.max_dims / hw.chunk), 48) {
  spec_.validate(hw_);
  if (classifier.dims() != spec_.dims ||
      classifier.num_classes() != spec_.classes)
    throw std::invalid_argument("MicroArchSim: model/spec mismatch");
  if (encoder.config().dims != spec_.dims ||
      encoder.config().window != spec_.window ||
      encoder.config().use_ids != spec_.use_ids)
    throw std::invalid_argument("MicroArchSim: encoder/spec mismatch");
  if (!encoder.quantizer().fitted())
    throw std::invalid_argument("MicroArchSim: encoder not fitted");

  // Level memory image: one row per quantization level.
  for (std::size_t l = 0; l < hw_.levels; ++l) {
    const auto& hv = encoder_.level_memory().level(l);
    level_mem_.write_row(l, {hv.words().begin(), hv.words().end()});
  }
  // The single id seed row (§4.3.1).
  const auto& seed = encoder_.id_memory().seed_id();
  id_seed_.write_row(0, {seed.words().begin(), seed.words().end()});

  // Class memories, striped per §4.3.2: dim 16p+k of class c is row
  // p*nC + c of CM k.
  const std::size_t m = hw_.m;
  const std::size_t passes = spec_.dims / m;
  class_mems_.reserve(m);
  for (std::size_t k = 0; k < m; ++k)
    class_mems_.emplace_back("class" + std::to_string(k),
                             hw_.max_dims / m * hw_.max_classes, 16);
  for (std::size_t p = 0; p < passes; ++p)
    for (std::size_t c = 0; c < spec_.classes; ++c)
      for (std::size_t k = 0; k < m; ++k)
        class_mems_[k].write_word(
            p * spec_.classes + c,
            to_row16(classifier.class_vector(c)[p * m + k]));

  // Norm2 memory: one row per (class, 128-dim chunk).
  const std::size_t chunks = spec_.dims / hw_.chunk;
  for (std::size_t c = 0; c < spec_.classes; ++c)
    for (std::size_t j = 0; j < chunks; ++j)
      norm_mem_.write_word(c * chunks + j,
                           static_cast<std::uint64_t>(
                               classifier.chunk_norm(c, j)) &
                               ((1ULL << 48) - 1));
}

void MicroArchSim::set_active_dims(std::size_t dims) {
  if (dims == 0 || dims > spec_.dims || dims % hw_.m != 0)
    throw std::invalid_argument("MicroArchSim: active dims must be m-multiple");
  active_dims_ = dims;
}

void MicroArchSim::set_block_mask(const std::vector<bool>& chunk_ok) {
  if (chunk_ok.size() != spec_.dims / hw_.chunk)
    throw std::invalid_argument(
        "MicroArchSim: block mask must have one entry per 128-dim chunk");
  bool any_active = false;
  for (std::size_t k = 0; k * hw_.chunk < active_dims_ && !any_active; ++k)
    any_active = chunk_ok[k];
  if (!any_active)
    throw std::invalid_argument(
        "MicroArchSim: block mask disables every active chunk");
  chunk_ok_ = chunk_ok;
}

void MicroArchSim::clear_block_mask() {
  chunk_ok_.assign(spec_.dims / hw_.chunk, true);
}

std::size_t MicroArchSim::stash_base() const {
  return (spec_.dims / hw_.m) * spec_.classes;
}

std::size_t MicroArchSim::copy_base() const {
  return stash_base() + spec_.dims / hw_.m;
}

void MicroArchSim::require_full_mask(const char* what) const {
  for (bool ok : chunk_ok_)
    if (!ok)
      throw std::logic_error(std::string("MicroArchSim: ") + what +
                             " requires a full block mask");
}

void MicroArchSim::require_temp_rows() const {
  const std::size_t need =
      copy_base() + (spec_.dims / hw_.m) * spec_.classes;
  if (need > class_mems_.front().depth())
    throw std::logic_error(
        "MicroArchSim: not enough free class-memory rows for temporary "
        "regions (reduce classes or dims)");
}

std::uint64_t MicroArchSim::run_frontend(std::span<const float> sample) {
  if (sample.size() != spec_.features)
    throw std::invalid_argument("MicroArchSim: feature count mismatch");
  const std::size_t m = hw_.m;
  const std::size_t n = spec_.window;
  const std::size_t d = spec_.features;
  const std::size_t nc = spec_.classes;
  const std::size_t dims = spec_.dims;
  const std::size_t passes = active_dims_ / m;

  std::uint64_t cycles = 0;

  // Load the input through the input port: quantize and store the bins.
  const auto bins = encoder_.quantizer().transform(sample);
  for (std::size_t e = 0; e < d; ++e) feature_mem_.write_word(e, bins[e]);

  // Clear score accumulators.
  for (std::size_t c = 0; c < nc; ++c) score_mem_.write_word(c, 0);
  scores_.assign(nc, 0);
  encoding_.assign(active_dims_, 0);

  const std::size_t slice_bits = m + n - 1;
  for (std::size_t p = 0; p < passes; ++p) {
    // Base dimension of this pass; slices start n-1 bits below so the
    // register stack can serve every window offset.
    const std::size_t base = p * m;
    // Masked (faulty) block: the controller skips the whole pass, exactly
    // like the trailing passes under dimension reduction.
    if (!chunk_ok_[base / hw_.chunk]) continue;
    const std::size_t slice_start = (base + dims - (n - 1)) % dims;

    std::vector<std::int32_t> partial(m, 0);
    std::vector<std::uint64_t> regs;  // level slices of the last n elements
    std::uint64_t id_bits = 0;        // tmp register contents (§4.3.1)

    for (std::size_t e = 0; e < d; ++e) {
      // One cycle: fetch the feature bin and the level slice.
      const auto bin = static_cast<std::size_t>(feature_mem_.read_word(e));
      const std::uint64_t slice = level_mem_.read_bits(
          bin % hw_.levels, slice_start, slice_bits);
      regs.push_back(slice);
      if (regs.size() > n) regs.erase(regs.begin());
      cycles += 1;

      if (e + 1 < n) continue;
      const std::size_t w = e + 1 - n;  // completed window index

      if (spec_.use_ids && w % m == 0) {
        // Refill the tmp register: 2m-1 seed bits cover the next m
        // windows' shifts.
        const std::size_t id_start = (base + dims - (w + m - 1) % dims) % dims;
        id_bits = id_seed_.read_bits(0, id_start, 2 * m - 1);
      }

      for (std::size_t k = 0; k < m; ++k) {
        // Window bit for dimension base+k: XOR over the n register slices,
        // each tapped at offset (k - j) relative to the slice base.
        unsigned bit = 0;
        for (std::size_t j = 0; j < n; ++j) {
          const std::size_t tap = k + (n - 1) - j;
          bit ^= static_cast<unsigned>((regs[j] >> tap) & 1ULL);
        }
        if (spec_.use_ids) {
          // Seed bit for dim base+k of window w: seed[(base+k-w) mod D];
          // the tap walks down within each m-window block.
          const std::size_t w0 = w - (w % m);
          const std::size_t tap = (m - 1) - (w - w0) + k;
          bit ^= static_cast<unsigned>((id_bits >> tap) & 1ULL);
        }
        partial[k] += bit ? 1 : -1;
      }
    }

    for (std::size_t k = 0; k < m; ++k) encoding_[base + k] = partial[k];

    // Pipelined search: one row from every class memory per class.
    for (std::size_t c = 0; c < nc; ++c) {
      std::int64_t dot = 0;
      for (std::size_t k = 0; k < m; ++k) {
        const std::int32_t cv =
            from_row16(class_mems_[k].read_word(p * nc + c));
        dot += static_cast<std::int64_t>(partial[k]) * cv;
      }
      const auto prev = static_cast<std::int64_t>(score_mem_.read_word(c));
      scores_[c] = prev + dot;
      score_mem_.write_word(c, static_cast<std::uint64_t>(scores_[c]));
      cycles += 1;
    }
  }
  return cycles;
}

int MicroArchSim::finalize(std::uint64_t& cycles) {
  const std::size_t chunks_total = spec_.dims / hw_.chunk;
  const std::size_t chunks_active = std::max<std::size_t>(
      1, std::min(chunks_total, active_dims_ / hw_.chunk));
  int best = 0;
  int best_sign = -2;
  std::int64_t best_log = std::numeric_limits<std::int64_t>::min();
  for (std::size_t c = 0; c < spec_.classes; ++c) {
    std::int64_t norm = 0;
    for (std::size_t j = 0; j < chunks_active; ++j) {
      if (!chunk_ok_[j]) continue;
      norm += static_cast<std::int64_t>(
          norm_mem_.read_bits(c * chunks_total + j, 0, 48));
    }
    const std::int64_t dot = scores_[c];
    int sign;
    std::int64_t log_score;
    if (dot == 0 || norm == 0) {
      sign = 0;
      log_score = 0;
    } else {
      sign = dot > 0 ? 1 : -1;
      const auto mag = static_cast<std::uint64_t>(dot > 0 ? dot : -dot);
      log_score = 2 * mitchell_log2_corrected(mag) -
                  mitchell_log2_corrected(static_cast<std::uint64_t>(norm));
    }
    const std::int64_t keyed = sign >= 0 ? log_score : -log_score;
    if (sign > best_sign || (sign == best_sign && keyed > best_log)) {
      best_sign = sign;
      best_log = keyed;
      best = static_cast<int>(c);
    }
    cycles += 1;
  }
  cycles += 4;  // divider latency tail (matches CycleModel)
  return best;
}

MicroArchSim::Result MicroArchSim::infer(std::span<const float> sample) {
  Result res;
  res.cycles = run_frontend(sample);
  res.label = finalize(res.cycles);
  return res;
}

std::uint64_t MicroArchSim::apply_update(std::size_t cls, int sign) {
  // Read-add-write over all passes of one class (3 x D/m cycles, §4.2.2):
  // class row + stashed encoding row in, updated class row out, with the
  // squared-norm accumulation riding the multiplier path.
  const std::size_t m = hw_.m;
  const std::size_t passes = spec_.dims / m;
  const std::size_t nc = spec_.classes;
  std::uint64_t cycles = 0;
  for (std::size_t p = 0; p < passes; ++p) {
    for (std::size_t k = 0; k < m; ++k) {
      const std::int32_t cur =
          from_row16(class_mems_[k].read_word(p * nc + cls));
      const std::int32_t enc_v =
          from_row16(class_mems_[k].read_word(stash_base() + p));
      class_mems_[k].write_word(p * nc + cls, to_row16(cur + sign * enc_v));
    }
    cycles += 3;
  }
  // Refresh the class's norm2 rows from the (saturated) stored values.
  const std::size_t chunks = spec_.dims / hw_.chunk;
  const std::size_t rows_per_chunk = hw_.chunk / m;
  for (std::size_t j = 0; j < chunks; ++j) {
    std::int64_t acc = 0;
    for (std::size_t r = 0; r < rows_per_chunk; ++r) {
      const std::size_t p = j * rows_per_chunk + r;
      for (std::size_t k = 0; k < m; ++k) {
        const std::int64_t v =
            from_row16(class_mems_[k].read_word(p * nc + cls));
        acc += v * v;
      }
    }
    norm_mem_.write_word(cls * chunks + j,
                         static_cast<std::uint64_t>(acc) & ((1ULL << 48) - 1));
  }
  return cycles;
}

MicroArchSim::Result MicroArchSim::train_step(std::span<const float> sample,
                                              int label) {
  if (label < 0 || static_cast<std::size_t>(label) >= spec_.classes)
    throw std::invalid_argument("MicroArchSim::train_step: label");
  require_temp_rows();
  if (active_dims_ != spec_.dims)
    throw std::logic_error("MicroArchSim: training runs at full dimensions");
  require_full_mask("training");

  Result res;
  res.cycles = run_frontend(sample);
  // Stash the encoding in the temporary rows while scoring (§4.2.2); the
  // writes overlap the search pipeline, so no extra cycles.
  const std::size_t m = hw_.m;
  for (std::size_t p = 0; p < spec_.dims / m; ++p)
    for (std::size_t k = 0; k < m; ++k)
      class_mems_[k].write_word(stash_base() + p,
                                to_row16(encoding_[p * m + k]));
  res.label = finalize(res.cycles);

  if (res.label != label) {
    res.cycles += apply_update(static_cast<std::size_t>(res.label), -1);
    res.cycles += apply_update(static_cast<std::size_t>(label), +1);
  }
  return res;
}

MicroArchSim::Result MicroArchSim::cluster_step(std::span<const float> sample) {
  require_temp_rows();
  if (active_dims_ != spec_.dims)
    throw std::logic_error("MicroArchSim: clustering runs at full dimensions");
  require_full_mask("clustering");

  Result res;
  res.cycles = run_frontend(sample);
  const std::size_t m = hw_.m;
  const std::size_t nc = spec_.classes;
  const std::size_t passes = spec_.dims / m;
  // Stash the encoding (one temporary-row write per pass).
  for (std::size_t p = 0; p < passes; ++p) {
    for (std::size_t k = 0; k < m; ++k)
      class_mems_[k].write_word(stash_base() + p,
                                to_row16(encoding_[p * m + k]));
    res.cycles += 1;
  }
  res.label = finalize(res.cycles);

  // Accumulate into the winning copy centroid: read copy + stash, write
  // copy back (2 cycles per pass).
  const auto cls = static_cast<std::size_t>(res.label);
  for (std::size_t p = 0; p < passes; ++p) {
    for (std::size_t k = 0; k < m; ++k) {
      const std::int32_t cur =
          from_row16(class_mems_[k].read_word(copy_base() + p * nc + cls));
      const std::int32_t enc_v =
          from_row16(class_mems_[k].read_word(stash_base() + p));
      class_mems_[k].write_word(copy_base() + p * nc + cls,
                                to_row16(cur + enc_v));
    }
    res.cycles += 2;
  }
  return res;
}

void MicroArchSim::swap_copies() {
  require_temp_rows();
  // The copy region becomes the live model for the next epoch (a region
  // swap in the controller's base registers — no data movement cycles);
  // empty copies keep the previous centroid. Norm2 rows refresh from the
  // new contents. Copies are then cleared for the next epoch.
  const std::size_t m = hw_.m;
  const std::size_t nc = spec_.classes;
  const std::size_t passes = spec_.dims / m;
  for (std::size_t c = 0; c < nc; ++c) {
    bool any = false;
    for (std::size_t p = 0; p < passes && !any; ++p)
      for (std::size_t k = 0; k < m && !any; ++k)
        any = class_mems_[k].read_word(copy_base() + p * nc + c) != 0;
    if (!any) continue;  // empty cluster: keep the old centroid
    for (std::size_t p = 0; p < passes; ++p)
      for (std::size_t k = 0; k < m; ++k) {
        const auto v = class_mems_[k].read_word(copy_base() + p * nc + c);
        class_mems_[k].write_word(p * nc + c, v);
        class_mems_[k].write_word(copy_base() + p * nc + c, 0);
      }
  }
  // Norm refresh for all centroids.
  const std::size_t chunks = spec_.dims / hw_.chunk;
  const std::size_t rows_per_chunk = hw_.chunk / m;
  for (std::size_t c = 0; c < nc; ++c)
    for (std::size_t j = 0; j < chunks; ++j) {
      std::int64_t acc = 0;
      for (std::size_t r = 0; r < rows_per_chunk; ++r) {
        const std::size_t p = j * rows_per_chunk + r;
        for (std::size_t k = 0; k < m; ++k) {
          const std::int64_t v =
              from_row16(class_mems_[k].read_word(p * nc + c));
          acc += v * v;
        }
      }
      norm_mem_.write_word(c * chunks + j,
                           static_cast<std::uint64_t>(acc) &
                               ((1ULL << 48) - 1));
    }
}

}  // namespace generic::arch
