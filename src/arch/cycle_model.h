// Analytic cycle and memory-access model of the GENERIC dataflow (§4.2).
//
// The encoder emits m = 16 partial dimensions per pass over the stored
// input; inference dot-products are pipelined with encoding, so one pass
// costs d feature fetches plus nC class-row reads (one row from each of the
// m distributed class memories serves m consecutive dimensions of one
// class). Encoding a full hypervector therefore takes D/m passes.
//
//   inference/input : (D/m) * (d + nC) + pipeline drain + score finalize
//   train-init/input: (D/m) * (d + 1)         (write one class row per pass)
//   retrain update  : 3 * (D/m) per touched class (read, add, write back,
//                     §4.2.2), two classes per misprediction
//   clustering/input: inference over k centroids + (D/m) stores of the
//                     encoding + (D/m) copy-centroid updates
//
// All counts are per input; callers multiply by dataset sizes and epochs.
#pragma once

#include <cstdint>

#include "arch/spec.h"

namespace generic::arch {

struct AccessCounts {
  std::uint64_t cycles = 0;
  std::uint64_t feature_reads = 0;   ///< input memory reads (8 b)
  std::uint64_t level_reads = 0;     ///< level memory reads (m bits)
  std::uint64_t id_reads = 0;        ///< id seed reads (m bits, §4.3.1)
  std::uint64_t class_reads = 0;     ///< class memory row reads (16 b x m)
  std::uint64_t class_writes = 0;    ///< class memory row writes
  std::uint64_t score_accesses = 0;  ///< score memory read-modify-writes
  std::uint64_t norm_accesses = 0;   ///< norm2 memory accesses
  std::uint64_t mac_ops = 0;         ///< dot-product MACs
  std::uint64_t divider_ops = 0;     ///< Mitchell log-divides

  AccessCounts& operator+=(const AccessCounts& o);
  friend AccessCounts operator+(AccessCounts a, const AccessCounts& b) {
    a += b;
    return a;
  }

  /// Scale every counter (e.g. by number of inputs).
  AccessCounts scaled(std::uint64_t factor) const;
};

class CycleModel {
 public:
  explicit CycleModel(const ArchConstants& hw = {}) : hw_(hw) {}

  /// Number of encoder passes for a spec: D/m (rounded up).
  std::uint64_t passes(const AppSpec& spec) const;

  /// Encode-only cost of one input (no search): used during training init.
  AccessCounts encode_input(const AppSpec& spec) const;

  /// Encode + similarity search of one input (inference or the scoring
  /// half of retraining/clustering).
  AccessCounts infer_input(const AppSpec& spec) const;

  /// Model update on one misprediction: subtract from the wrong class and
  /// add to the right one, plus norm2 refresh for both (§4.2.2).
  AccessCounts retrain_update(const AppSpec& spec) const;

  /// One training-initialization input: encode and accumulate into the
  /// labelled class row.
  AccessCounts train_init_input(const AppSpec& spec) const;

  /// One clustering input in an epoch: score vs k centroids, stash the
  /// encoding in temporary rows, update the copy centroid (§4.2.3).
  AccessCounts cluster_input(const AppSpec& spec) const;

  /// Back-to-back burst of `count` inferences — the IoT-gateway mode the
  /// paper motivates in §1. The input memory is double-buffered: while
  /// input i is processed (>= D/m passes x d cycles), input i+1 streams in
  /// through the serial port (d cycles), so only the first load is exposed.
  AccessCounts infer_burst(const AppSpec& spec, std::uint64_t count) const;

  /// Wall-clock seconds for a count at the architecture's clock.
  double seconds(const AccessCounts& counts) const;

  const ArchConstants& hw() const { return hw_; }

 private:
  ArchConstants hw_;
};

}  // namespace generic::arch
