#include "arch/sram.h"

#include <stdexcept>

#include "common/bitops.h"

namespace generic::arch {

Sram::Sram(std::string name, std::size_t depth, std::size_t width_bits)
    : name_(std::move(name)),
      depth_(depth),
      width_bits_(width_bits),
      words_per_row_(words_for_bits(width_bits)) {
  if (depth == 0 || width_bits == 0)
    throw std::invalid_argument("Sram: zero-sized array");
  data_.assign(depth * words_per_row_, 0ULL);
  dead_rows_.assign(depth, false);
}

void Sram::write_row(std::size_t row, const std::vector<std::uint64_t>& bits) {
  if (row >= depth_) throw std::out_of_range("Sram::write_row: " + name_);
  if (bits.size() != words_per_row_)
    throw std::invalid_argument("Sram::write_row: word count");
  if (dead_rows_[row]) {
    ++writes_;  // the access happens; the cells just don't hold it
    return;
  }
  for (std::size_t w = 0; w < words_per_row_; ++w) {
    std::uint64_t v = bits[w];
    // Mask the last word to the row width.
    if (w + 1 == words_per_row_ && width_bits_ % kWordBits != 0)
      v &= low_mask(width_bits_ % kWordBits);
    data_[row * words_per_row_ + w] = v;
  }
  ++writes_;
}

std::uint64_t Sram::maybe_upset(std::uint64_t word, std::size_t bits) {
  if (upset_rate_ <= 0.0) return word;
  for (std::size_t b = 0; b < bits; ++b)
    if (fault_rng_.bernoulli(upset_rate_)) word ^= (1ULL << b);
  return word;
}

std::vector<std::uint64_t> Sram::read_row(std::size_t row) {
  if (row >= depth_) throw std::out_of_range("Sram::read_row: " + name_);
  ++reads_;
  if (dead_rows_[row]) return std::vector<std::uint64_t>(words_per_row_, 0ULL);
  std::vector<std::uint64_t> out(words_per_row_);
  for (std::size_t w = 0; w < words_per_row_; ++w) {
    const std::size_t bits = (w + 1 == words_per_row_ &&
                              width_bits_ % kWordBits != 0)
                                 ? width_bits_ % kWordBits
                                 : kWordBits;
    out[w] = maybe_upset(data_[row * words_per_row_ + w], bits);
  }
  return out;
}

std::uint64_t Sram::read_bits(std::size_t row, std::size_t start,
                              std::size_t count) {
  if (row >= depth_) throw std::out_of_range("Sram::read_bits: " + name_);
  if (count == 0 || count > 64)
    throw std::invalid_argument("Sram::read_bits: count in [1, 64]");
  ++reads_;
  if (dead_rows_[row]) return 0;
  const std::uint64_t* rowp = &data_[row * words_per_row_];
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t bit = (start + i) % width_bits_;
    if (get_bit(rowp, bit)) out |= (1ULL << i);
  }
  return maybe_upset(out, count);
}

std::uint64_t Sram::read_word(std::size_t row) {
  if (width_bits_ > 64)
    throw std::logic_error("Sram::read_word on wide row: " + name_);
  return read_bits(row, 0, width_bits_);
}

void Sram::write_word(std::size_t row, std::uint64_t value) {
  if (width_bits_ > 64)
    throw std::logic_error("Sram::write_word on wide row: " + name_);
  write_row(row, {value});
}

void Sram::set_read_upset_rate(double rate, std::uint64_t seed) {
  upset_rate_ = rate;
  fault_rng_ = Rng(seed);
}

void Sram::reseed(std::uint64_t seed) { fault_rng_ = Rng(seed); }

void Sram::mark_dead_row(std::size_t row) {
  if (row >= depth_) throw std::out_of_range("Sram::mark_dead_row: " + name_);
  dead_rows_[row] = true;
}

bool Sram::row_is_dead(std::size_t row) const {
  if (row >= depth_) throw std::out_of_range("Sram::row_is_dead: " + name_);
  return dead_rows_[row];
}

void Sram::clear_dead_rows() { dead_rows_.assign(depth_, false); }

}  // namespace generic::arch
