#include "arch/tinyhd.h"

namespace generic::arch {

TinyHdModel::TinyHdModel(const ArchConstants& hw)
    : hw_(hw), cycles_(hw), energy_(hw) {}

AccessCounts TinyHdModel::infer_counts(const AppSpec& spec) const {
  AccessCounts c = cycles_.infer_input(spec);
  // No cosine normalization: drop the norm fetches and the divider tail
  // (the comparator is a running max over popcount scores).
  c.cycles -= c.divider_ops + 4;
  c.norm_accesses = 0;
  c.divider_ops = 0;
  return c;
}

double TinyHdModel::static_power_mw(const AppSpec& spec) const {
  Breakdown b = energy_.static_power_full_mw();
  // 1-bit class arrays leak ~16x less; same opportunistic gating applies.
  b.class_mem *= energy_.active_bank_fraction(spec) / 16.0;
  // No norm2 memory (the dominant part of the base-memory group).
  b.base_mem *= 0.5;
  return b.total();
}

double TinyHdModel::energy_per_input_j(const AppSpec& spec) const {
  AppSpec binary = spec;
  binary.bit_width = 1;  // scales class-array and MAC dynamic energy
  const auto counts = infer_counts(spec);
  const double dynamic = energy_.dynamic_energy_j(binary, counts).total();
  const double leak = static_power_mw(spec) * 1e-3 * cycles_.seconds(counts);
  return dynamic + leak;
}

double TinyHdModel::seconds_per_input(const AppSpec& spec) const {
  return cycles_.seconds(infer_counts(spec));
}

}  // namespace generic::arch
