// Behavioural model of the GENERIC accelerator (paper §4).
//
// GenericAsic executes the same algorithms as the software stack — the
// GENERIC encoder (Eq. 1), HDC train/retrain/inference and HDC clustering —
// while accounting every memory access and cycle through the CycleModel
// and scoring classes the way the silicon does: entirely in the log domain
// through the Mitchell divider (§4.2.1), never materialising a quotient.
//
// The model is behaviourally exact with respect to the algorithmic stack
// up to the Mitchell approximation (tests enforce both the exact-divider
// equivalence and a high agreement rate for the Mitchell path), and it is
// the vehicle for the §4.3 energy features:
//   * power gating        — implicit in the AppSpec (classes x dims)
//   * dimension reduction — set_active_dims() shortens every subsequent
//     encode/search to D'/m passes and switches to the stored sub-norms
//   * voltage over-scaling — apply_voltage_scaling() injects bit flips
//     into the (quantized) class memory at the operating point's error rate
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "arch/cycle_model.h"
#include "arch/energy_model.h"
#include "arch/spec.h"
#include "common/rng.h"
#include "encoding/encoders.h"
#include "model/hdc_classifier.h"

namespace generic::arch {

class GenericAsic {
 public:
  GenericAsic(const AppSpec& spec, std::uint64_t seed = 0xA51CULL,
              const ArchConstants& hw = {});

  const AppSpec& spec() const { return spec_; }

  /// Load training data through the input port and run training: one
  /// initialization pass plus up to `epochs` retraining epochs (early stop
  /// when an epoch makes no update). Returns retraining epochs executed.
  std::size_t train(const std::vector<std::vector<float>>& x,
                    const std::vector<int>& y, std::size_t epochs = 20);

  /// Classify one input. Requires a trained model.
  int infer(std::span<const float> sample);

  /// Online adaptation on a single labelled input: inference plus, on a
  /// misprediction, one retraining update (§4.2.2 applied sample-at-a-time
  /// — continuous learning while deployed). Returns the prediction made
  /// *before* any update.
  int online_update(std::span<const float> sample, int label);

  /// Cluster a stream into spec.classes centroids; returns final labels.
  std::vector<int> cluster(const std::vector<std::vector<float>>& x,
                           std::size_t epochs = 10);

  // ---- low-power controls (§4.3) ----

  /// On-demand dimension reduction: use only the first `dims` dimensions
  /// from now on (multiple of 128, <= trained dims). Norms come from the
  /// norm2 sub-norm memory ("Updated" mode); pass `constant_norms = true`
  /// to model the naive stale-norm variant of Figure 5.
  void set_active_dims(std::size_t dims, bool constant_norms = false);

  /// Quantize the class memory to `bw` bits (the spec bw input).
  void quantize(int bit_width);

  /// Enter a voltage-over-scaled operating point: flips each class-memory
  /// bit with the point's error rate and records the power reductions for
  /// subsequent energy reports.
  void apply_voltage_scaling(double bit_error_rate);

  /// Use an exact divider instead of the Mitchell approximation (for
  /// verification; the silicon always uses Mitchell).
  void set_exact_divider(bool exact) { exact_divider_ = exact; }

  /// Snapshot the trained class memories + norms (the config-port dump).
  model::HdcClassifier snapshot_model() const { return require_model(); }

  /// Restore a previously snapshotted model (the offline-training load path
  /// of the config port, §4.1) and reset every low-power knob to nominal.
  void restore_model(model::HdcClassifier m);

  // ---- accounting ----

  const AccessCounts& counts() const { return counts_; }
  void reset_counts() { counts_ = {}; }
  double elapsed_seconds() const { return cycles_.seconds(counts_); }
  /// Total energy (J) of everything since the last reset_counts().
  double energy_j() const { return energy_.energy_j(spec_, counts_, vos_); }
  const VosSetting& vos() const { return vos_; }
  const EnergyModel& energy_model() const { return energy_; }
  const CycleModel& cycle_model() const { return cycles_; }

  const model::HdcClassifier& classifier() const { return require_model(); }
  const enc::GenericEncoder& encoder() const { return encoder_; }

 private:
  const model::HdcClassifier& require_model() const;
  /// Class index with the best (dot^2 / norm) score, compared in the log
  /// domain via Mitchell (or exactly when exact_divider_ is set).
  int best_class(const hdc::IntHV& encoded) const;

  AppSpec spec_;
  ArchConstants hw_;
  CycleModel cycles_;
  EnergyModel energy_;
  enc::GenericEncoder encoder_;
  std::optional<model::HdcClassifier> model_;
  std::size_t active_dims_;
  bool constant_norms_ = false;
  bool exact_divider_ = false;
  VosSetting vos_;
  Rng fault_rng_;
  AccessCounts counts_;
};

}  // namespace generic::arch
