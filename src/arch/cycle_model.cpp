#include "arch/cycle_model.h"

namespace generic::arch {

AccessCounts& AccessCounts::operator+=(const AccessCounts& o) {
  cycles += o.cycles;
  feature_reads += o.feature_reads;
  level_reads += o.level_reads;
  id_reads += o.id_reads;
  class_reads += o.class_reads;
  class_writes += o.class_writes;
  score_accesses += o.score_accesses;
  norm_accesses += o.norm_accesses;
  mac_ops += o.mac_ops;
  divider_ops += o.divider_ops;
  return *this;
}

AccessCounts AccessCounts::scaled(std::uint64_t factor) const {
  AccessCounts out = *this;
  out.cycles *= factor;
  out.feature_reads *= factor;
  out.level_reads *= factor;
  out.id_reads *= factor;
  out.class_reads *= factor;
  out.class_writes *= factor;
  out.score_accesses *= factor;
  out.norm_accesses *= factor;
  out.mac_ops *= factor;
  out.divider_ops *= factor;
  return out;
}

std::uint64_t CycleModel::passes(const AppSpec& spec) const {
  return (spec.dims + hw_.m - 1) / hw_.m;
}

AccessCounts CycleModel::encode_input(const AppSpec& spec) const {
  AccessCounts c;
  const std::uint64_t p = passes(spec);
  const std::uint64_t windows = spec.features - spec.window + 1;
  // Each pass streams the d stored features through the level-register
  // stack (one feature fetch + one level-row read per element per pass).
  c.feature_reads = p * spec.features;
  c.level_reads = p * spec.features;
  // The id seed is read once per m window-steps thanks to the tmp register
  // (§4.3.1); id generation itself is a shift, not a memory access.
  c.id_reads = spec.use_ids ? (p * windows + hw_.m - 1) / hw_.m : 0;
  c.cycles = p * spec.features;
  return c;
}

AccessCounts CycleModel::infer_input(const AppSpec& spec) const {
  AccessCounts c = encode_input(spec);
  const std::uint64_t p = passes(spec);
  // Search is pipelined with encoding: after each pass, one row from each
  // of the m class memories per class, accumulated into the score memory.
  c.class_reads += p * spec.classes;
  c.score_accesses += p * spec.classes;
  c.mac_ops += p * spec.classes * hw_.m;
  c.cycles += p * spec.classes;
  // Finalize: read norm2, divide and compare per class.
  c.norm_accesses += spec.classes;
  c.divider_ops += spec.classes;
  c.cycles += spec.classes + 4;  // divider latency tail
  return c;
}

AccessCounts CycleModel::retrain_update(const AppSpec& spec) const {
  AccessCounts c;
  const std::uint64_t p = passes(spec);
  // Per class: read class rows, latch-add the stashed encoding rows, write
  // back -> 3 x D/m cycles (§4.2.2); two classes change per misprediction.
  c.class_reads = 2 * 2 * p;  // class row + temporary encoding row
  c.class_writes = 2 * p;
  c.cycles = 2 * 3 * p;
  // Squared-norm refresh of both classes (multiply-accumulate over rows,
  // pipelined with the write-back), then norm2 memory update.
  c.mac_ops += 2 * p * hw_.m;
  c.norm_accesses += 2 * (spec.dims / hw_.chunk);
  return c;
}

AccessCounts CycleModel::train_init_input(const AppSpec& spec) const {
  AccessCounts c = encode_input(spec);
  const std::uint64_t p = passes(spec);
  // Accumulate each m-dim slice into the labelled class row: read-add-write
  // one row of each class memory per pass.
  c.class_reads += p;
  c.class_writes += p;
  c.cycles += p;
  // Norm2 accumulation happens on the fly through the multiplier path.
  c.mac_ops += p * hw_.m;
  c.norm_accesses += spec.dims / hw_.chunk;
  return c;
}

AccessCounts CycleModel::cluster_input(const AppSpec& spec) const {
  // Score vs k centroids exactly like inference...
  AccessCounts c = infer_input(spec);
  const std::uint64_t p = passes(spec);
  // ...while stashing the encoded dimensions in temporary rows, then adding
  // them into the winning copy centroid (§4.2.3).
  c.class_writes += p;           // stash encoding
  c.class_reads += 2 * p;        // copy centroid + stashed encoding
  c.class_writes += p;           // write updated copy centroid
  c.cycles += 3 * p;
  return c;
}

AccessCounts CycleModel::infer_burst(const AppSpec& spec,
                                     std::uint64_t count) const {
  if (count == 0) return {};
  AccessCounts c = infer_input(spec).scaled(count);
  // The serial load of the first input cannot be hidden behind anything.
  c.cycles += spec.features;
  return c;
}

double CycleModel::seconds(const AccessCounts& counts) const {
  return static_cast<double>(counts.cycles) / hw_.clock_hz;
}

}  // namespace generic::arch
