// Phase-level power/energy tracing: the waveform-style view a power
// sign-off flow produces, at the granularity this model supports (phases,
// not clock edges). Callers bracket workload phases (load / train /
// inference burst / low-power inference ...) by recording the ASIC's
// access-count deltas; the trace prices each phase through the EnergyModel
// and can render a text table or CSV for plotting.
#pragma once

#include <string>
#include <vector>

#include "arch/cycle_model.h"
#include "arch/energy_model.h"
#include "arch/spec.h"

namespace generic::arch {

struct PhaseSample {
  std::string label;
  double seconds = 0.0;
  Breakdown energy_j;        ///< dynamic energy by component
  double static_energy_j = 0.0;
  double total_j() const { return energy_j.total() + static_energy_j; }
  double average_power_w() const {
    return seconds > 0.0 ? total_j() / seconds : 0.0;
  }
};

class PowerTrace {
 public:
  explicit PowerTrace(const ArchConstants& hw = {}) : cycles_(hw), energy_(hw) {}

  /// Price the access-count *delta* of one phase and append it.
  void record(std::string label, const AppSpec& spec,
              const AccessCounts& delta, const VosSetting& vos = {});

  const std::vector<PhaseSample>& samples() const { return samples_; }
  double total_energy_j() const;
  double total_seconds() const;

  /// Render as CSV (header + one row per phase) for external plotting.
  std::string to_csv() const;

 private:
  CycleModel cycles_;
  EnergyModel energy_;
  std::vector<PhaseSample> samples_;
};

}  // namespace generic::arch
