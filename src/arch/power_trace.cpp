#include "arch/power_trace.h"

#include <sstream>

namespace generic::arch {

void PowerTrace::record(std::string label, const AppSpec& spec,
                        const AccessCounts& delta, const VosSetting& vos) {
  PhaseSample s;
  s.label = std::move(label);
  s.seconds = cycles_.seconds(delta);
  s.energy_j = energy_.dynamic_energy_j(spec, delta, vos);
  s.static_energy_j =
      energy_.static_power_mw(spec, vos).total() * 1e-3 * s.seconds;
  samples_.push_back(std::move(s));
}

double PowerTrace::total_energy_j() const {
  double acc = 0.0;
  for (const auto& s : samples_) acc += s.total_j();
  return acc;
}

double PowerTrace::total_seconds() const {
  double acc = 0.0;
  for (const auto& s : samples_) acc += s.seconds;
  return acc;
}

std::string PowerTrace::to_csv() const {
  std::ostringstream out;
  out << "phase,seconds,control_j,datapath_j,base_mem_j,feature_mem_j,"
         "level_mem_j,class_mem_j,static_j,total_j,avg_power_w\n";
  for (const auto& s : samples_) {
    out << s.label << ',' << s.seconds << ',' << s.energy_j.control << ','
        << s.energy_j.datapath << ',' << s.energy_j.base_mem << ','
        << s.energy_j.feature_mem << ',' << s.energy_j.level_mem << ','
        << s.energy_j.class_mem << ',' << s.static_energy_j << ','
        << s.total_j() << ',' << s.average_power_w() << '\n';
  }
  return out.str();
}

}  // namespace generic::arch
