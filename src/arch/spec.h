// Application spec of the GENERIC accelerator (paper §4.1, the `spec` port).
//
// The controller is programmed per application with: hypervector
// dimensionality D_hv, number of input elements d, window length n, number
// of classes/centroids nC, effective bit-width bw and the operating mode.
// These few parameters are what give GENERIC its flexibility without an
// instruction set (§4.1).
#pragma once

#include <cstddef>
#include <stdexcept>

namespace generic::arch {

enum class Mode { kTraining, kInference, kClustering };

/// Architectural constants fixed at design time (paper §4/§5.1).
struct ArchConstants {
  std::size_t m = 16;              ///< dimensions generated per pass
  std::size_t max_dims = 4096;     ///< class memory rows cover 4K dims...
  std::size_t max_classes = 32;    ///< ...for up to 32 classes (trade-off ok)
  std::size_t max_features = 1024; ///< input memory depth
  std::size_t levels = 64;         ///< level memory rows
  std::size_t chunk = 128;         ///< sub-norm granularity (norm2 memory)
  std::size_t class_banks = 4;     ///< power-gating banks per class memory
  double clock_hz = 500e6;         ///< synthesis target (14 nm)
};

struct AppSpec {
  std::size_t dims = 4096;      ///< D_hv in use (multiple of chunk)
  std::size_t features = 64;    ///< d, elements per input
  std::size_t window = 3;       ///< n
  std::size_t classes = 2;      ///< nC (classes or centroids)
  int bit_width = 16;           ///< bw of class elements
  bool use_ids = true;          ///< bind window ids (Eq. 1) or skip
  Mode mode = Mode::kInference;

  /// Validate against the architectural envelope; throws on violation.
  /// The class-memory layout allows trading dims for classes:
  /// classes * dims must fit 32 * 4K rows (§4.1).
  void validate(const ArchConstants& hw = {}) const {
    if (dims == 0 || dims % hw.chunk != 0)
      throw std::invalid_argument("AppSpec: dims must be a nonzero multiple of 128");
    if (classes == 0 || classes > hw.max_classes)
      throw std::invalid_argument("AppSpec: classes out of range");
    if (classes * dims > hw.max_classes * hw.max_dims)
      throw std::invalid_argument("AppSpec: classes*dims exceeds class memory");
    if (features == 0 || features > hw.max_features)
      throw std::invalid_argument("AppSpec: features out of range");
    if (window == 0 || window > features)
      throw std::invalid_argument("AppSpec: window out of range");
    if (bit_width < 1 || bit_width > 16)
      throw std::invalid_argument("AppSpec: bit_width out of range");
  }
};

}  // namespace generic::arch
