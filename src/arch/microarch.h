// Cycle-level micro-architectural simulator of the GENERIC inference
// datapath (paper §4, Figure 4) — the reproduction's stand-in for the
// RTL model the authors verified in Modelsim (§5.1).
//
// Unlike GenericAsic (behavioural algorithms + analytic cycle counts),
// MicroArchSim actually executes the dataflow against bit-accurate SRAM
// banks:
//   * feature memory (1024 x 8b) holds the quantized input bins;
//   * level memory (64 x D) serves m-bit slices, widened by n-1 bits so
//     the sliding register stack can permute by window offset;
//   * the id *seed* row (1 x D) is read once per m windows and shifted in
//     the tmp register (§4.3.1's 1024x compression);
//   * 16 distributed class memories (8K x 16b each) striped per §4.3.2:
//     dimensions [16p, 16p+16) of class c live at row p*nC + c;
//   * score and norm2 memories accumulate the pipelined dot products and
//     serve the per-128-dim sub-norms;
//   * scores are compared through the corrected Mitchell log (§4.2.1).
//
// The simulator is verified three ways (tests/arch/microarch_test.cpp):
// predictions match GenericAsic exactly, the per-pass encoding equals the
// software GenericEncoder output bit-for-bit, and cycle/access counts
// match the analytic CycleModel formulae.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "arch/cycle_model.h"
#include "arch/spec.h"
#include "arch/sram.h"
#include "encoding/encoders.h"
#include "model/hdc_classifier.h"

namespace generic::arch {

class MicroArchSim {
 public:
  /// Build the memory image from a fitted encoder and a trained model.
  /// The encoder supplies the level table, the id seed and the quantizer;
  /// the classifier supplies class vectors (saturated to 16-bit rows, as
  /// the silicon stores them) and the norm2 sub-norms.
  MicroArchSim(const AppSpec& spec, const enc::GenericEncoder& encoder,
               const model::HdcClassifier& classifier,
               const ArchConstants& hw = {});

  struct Result {
    int label = -1;
    std::uint64_t cycles = 0;
  };

  /// Run one inference at cycle granularity.
  Result infer(std::span<const float> sample);

  /// Training-mode step (§4.2.2): score the labelled input and, on a
  /// misprediction, execute the read-add-write update of both touched
  /// classes (3 x D/m cycles each) plus the norm2 refresh. Returns the
  /// pre-update prediction; cycles include the update when it fired.
  Result train_step(std::span<const float> sample, int label);

  /// Clustering-mode step (§4.2.3): score the input against the k
  /// centroids in rows [0, k), stash the encoding, and accumulate it into
  /// the *copy* centroid held in the temporary row region. swap_copies()
  /// promotes the copies at the end of an epoch.
  Result cluster_step(std::span<const float> sample);
  void swap_copies();

  /// Encoded partial dimensions of the last inference (for bit-exactness
  /// checks against the software encoder).
  const std::vector<std::int32_t>& last_encoding() const { return encoding_; }

  /// Use only the first `dims` dimensions (multiple of m; sub-norm rows
  /// cover chunk multiples — pass a 128-multiple for exact norms).
  void set_active_dims(std::size_t dims);

  /// Skip an arbitrary subset of 128-dim blocks: passes whose chunk is
  /// masked are dropped from the encode/search pipeline and their norm2
  /// rows from the finalize sum — the §4.3.3 dimension-reduction datapath
  /// reused for graceful degradation when BlockGuard flags faulty blocks.
  /// `chunk_ok` has one entry per 128-dim chunk; at least one chunk inside
  /// the active dimension range must stay enabled. Training and clustering
  /// require a full (all-true) mask.
  void set_block_mask(const std::vector<bool>& chunk_ok);

  /// Restore the full (all-blocks-enabled) mask.
  void clear_block_mask();

  // Fault-injection access to every array.
  Sram& feature_memory() { return feature_mem_; }
  Sram& level_memory() { return level_mem_; }
  Sram& id_seed() { return id_seed_; }
  Sram& class_memory(std::size_t k) { return class_mems_.at(k); }
  Sram& score_memory() { return score_mem_; }
  Sram& norm_memory() { return norm_mem_; }
  std::size_t num_class_memories() const { return class_mems_.size(); }

 private:
  /// Shared encode+search frontend; fills encoding_ and scores_, returns
  /// the cycle count of the passes (load/score), excluding finalize.
  std::uint64_t run_frontend(std::span<const float> sample);
  /// Finalize: norm fetch + corrected-Mitchell compare; adds to cycles.
  int finalize(std::uint64_t& cycles);
  /// Read-add-write the stashed encoding into class row region `cls` with
  /// `sign`, refreshing its norm2 rows; returns cycles consumed.
  std::uint64_t apply_update(std::size_t cls, int sign);
  /// Row layout of the temporary regions (train stash / cluster copies).
  std::size_t stash_base() const;
  std::size_t copy_base() const;
  void require_temp_rows() const;
  void require_full_mask(const char* what) const;

  AppSpec spec_;
  ArchConstants hw_;
  std::size_t active_dims_;
  std::vector<bool> chunk_ok_;  ///< per-128-dim-chunk enable (degradation)
  const enc::GenericEncoder& encoder_;

  Sram feature_mem_;
  Sram level_mem_;
  Sram id_seed_;
  std::vector<Sram> class_mems_;
  Sram score_mem_;
  Sram norm_mem_;

  std::vector<std::int32_t> encoding_;
  std::vector<std::int64_t> scores_;
};

}  // namespace generic::arch
