#include "arch/energy_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace generic::arch {
namespace {

// ---- Calibration constants -------------------------------------------
// Per-access dynamic energies (joules). One "class read/write" moves a
// 16-bit row in each of the m=16 distributed class memories; level reads
// fetch an m-bit slice of one level row; see cycle_model.h for what each
// counter means. Values are chosen so the reference workload mix lands on
// the paper's anchors (≈1.8 mW dynamic, class memories ≈80%, level <10%).
constexpr double kE_class_row = 25e-12;
constexpr double kE_feature_read = 0.15e-12;
constexpr double kE_level_read = 0.25e-12;
constexpr double kE_id_read = 0.3e-12;
constexpr double kE_score = 0.6e-12;
constexpr double kE_norm = 0.6e-12;
constexpr double kE_mac = 0.12e-12;
constexpr double kE_divider = 2.0e-12;
constexpr double kE_control_cycle = 0.03e-12;
constexpr double kE_encoder_cycle = 0.22e-12;  // window XOR/shift datapath

// Area shares of the 0.30 mm^2 die (Figure 7(a); level memory < 10%).
constexpr double kAreaTotal = 0.30;
constexpr double kAreaShare_control = 0.050;
constexpr double kAreaShare_datapath = 0.096;
constexpr double kAreaShare_base = 0.025;
constexpr double kAreaShare_feature = 0.015;
constexpr double kAreaShare_level = 0.094;
constexpr double kAreaShare_class = 0.720;

// Static power shares of the worst-case 0.25 mW (Figure 7(b)).
constexpr double kStaticTotal = 0.25;  // mW, all banks on
constexpr double kStaticShare_control = 0.015;
constexpr double kStaticShare_datapath = 0.025;
constexpr double kStaticShare_base = 0.016;
constexpr double kStaticShare_feature = 0.010;
constexpr double kStaticShare_level = 0.050;
constexpr double kStaticShare_class = 0.884;

// [20]-style SRAM voltage-scaling curve: bit error rate vs power reduction
// factors (log-linear interpolation between points). Nominal voltage at
// ber = 0; the most aggressive point trades ~10% flips for ~7x static /
// ~3x dynamic savings (Figure 6 right axis).
struct VosPoint {
  double ber;
  double stat;
  double dyn;
};
constexpr VosPoint kVosCurve[] = {
    {1e-5, 1.15, 1.05}, {1e-4, 1.8, 1.3}, {1e-3, 2.6, 1.6},
    {3e-3, 3.4, 1.9},   {1e-2, 4.5, 2.2}, {3e-2, 5.6, 2.5},
    {5e-2, 6.2, 2.7},   {1e-1, 7.0, 3.0}};

}  // namespace

Breakdown& Breakdown::operator+=(const Breakdown& o) {
  control += o.control;
  datapath += o.datapath;
  base_mem += o.base_mem;
  feature_mem += o.feature_mem;
  level_mem += o.level_mem;
  class_mem += o.class_mem;
  return *this;
}

VosSetting vos_for_error_rate(double ber) {
  VosSetting out;
  out.bit_error_rate = ber;
  if (ber <= 0.0) return out;
  const auto* first = std::begin(kVosCurve);
  const auto* last = std::end(kVosCurve) - 1;
  if (ber <= first->ber) {
    out.static_reduction = first->stat;
    out.dynamic_reduction = first->dyn;
    return out;
  }
  if (ber >= last->ber) {
    out.static_reduction = last->stat;
    out.dynamic_reduction = last->dyn;
    return out;
  }
  for (const auto* p = first; p < last; ++p) {
    if (ber <= p[1].ber) {
      const double t =
          (std::log10(ber) - std::log10(p->ber)) /
          (std::log10(p[1].ber) - std::log10(p->ber));
      out.static_reduction = p->stat + t * (p[1].stat - p->stat);
      out.dynamic_reduction = p->dyn + t * (p[1].dyn - p->dyn);
      return out;
    }
  }
  return out;
}

EnergyModel::EnergyModel(const ArchConstants& hw) : hw_(hw), cycles_(hw) {}

Breakdown EnergyModel::area_mm2() const {
  Breakdown b;
  b.control = kAreaTotal * kAreaShare_control;
  b.datapath = kAreaTotal * kAreaShare_datapath;
  b.base_mem = kAreaTotal * kAreaShare_base;
  b.feature_mem = kAreaTotal * kAreaShare_feature;
  b.level_mem = kAreaTotal * kAreaShare_level;
  b.class_mem = kAreaTotal * kAreaShare_class;
  return b;
}

double EnergyModel::banking_area_overhead(std::size_t banks) const {
  // Overheads from §4.3.2 (sense amps / decoders duplicated per bank);
  // interpolate geometrically for other bank counts.
  switch (banks) {
    case 1: return 1.00;
    case 2: return 1.10;
    case 4: return 1.20;
    case 8: return 1.55;
    default:
      throw std::invalid_argument("banking_area_overhead: banks in {1,2,4,8}");
  }
}

double EnergyModel::active_bank_fraction(const AppSpec& spec,
                                         std::size_t banks) const {
  const double usage =
      static_cast<double>(spec.classes * spec.dims) /
      static_cast<double>(hw_.max_classes * hw_.max_dims);
  const double quantized =
      std::ceil(usage * static_cast<double>(banks)) / static_cast<double>(banks);
  return std::clamp(quantized, 1.0 / static_cast<double>(banks), 1.0);
}

Breakdown EnergyModel::static_power_full_mw() const {
  Breakdown b;
  b.control = kStaticTotal * kStaticShare_control;
  b.datapath = kStaticTotal * kStaticShare_datapath;
  b.base_mem = kStaticTotal * kStaticShare_base;
  b.feature_mem = kStaticTotal * kStaticShare_feature;
  b.level_mem = kStaticTotal * kStaticShare_level;
  b.class_mem = kStaticTotal * kStaticShare_class;
  return b;
}

Breakdown EnergyModel::static_power_mw(const AppSpec& spec,
                                       const VosSetting& vos) const {
  Breakdown b = static_power_full_mw();
  // Power gating is static/permanent per application (§4.3.2): only the
  // class-memory banks holding live rows leak.
  b.class_mem *= active_bank_fraction(spec);
  // Voltage over-scaling targets the class SRAM (the dominant consumer).
  b.class_mem /= vos.static_reduction;
  return b;
}

Breakdown EnergyModel::dynamic_energy_j(const AppSpec& spec,
                                        const AccessCounts& counts,
                                        const VosSetting& vos) const {
  Breakdown b;
  // Narrower class elements mask out bit lines and multiplier partial
  // products (§4.3.4): class-array and MAC energy scale with bw/16.
  const double bw_scale = static_cast<double>(spec.bit_width) / 16.0;
  b.class_mem = static_cast<double>(counts.class_reads + counts.class_writes) *
                kE_class_row * bw_scale / vos.dynamic_reduction;
  b.feature_mem = static_cast<double>(counts.feature_reads) * kE_feature_read;
  b.level_mem = static_cast<double>(counts.level_reads) * kE_level_read;
  b.base_mem = static_cast<double>(counts.id_reads) * kE_id_read +
               static_cast<double>(counts.score_accesses) * kE_score +
               static_cast<double>(counts.norm_accesses) * kE_norm;
  b.datapath = static_cast<double>(counts.mac_ops) * kE_mac * bw_scale +
               static_cast<double>(counts.divider_ops) * kE_divider +
               static_cast<double>(counts.feature_reads) * kE_encoder_cycle;
  b.control = static_cast<double>(counts.cycles) * kE_control_cycle;
  return b;
}

Breakdown EnergyModel::dynamic_power_mw(const AppSpec& spec,
                                        const AccessCounts& counts,
                                        const VosSetting& vos) const {
  Breakdown b = dynamic_energy_j(spec, counts, vos);
  const double seconds = cycles_.seconds(counts);
  if (seconds <= 0.0) return Breakdown{};
  const double to_mw = 1e3 / seconds;
  b.control *= to_mw;
  b.datapath *= to_mw;
  b.base_mem *= to_mw;
  b.feature_mem *= to_mw;
  b.level_mem *= to_mw;
  b.class_mem *= to_mw;
  return b;
}

double EnergyModel::energy_j(const AppSpec& spec, const AccessCounts& counts,
                             const VosSetting& vos) const {
  const double dynamic = dynamic_energy_j(spec, counts, vos).total();
  const double static_w = static_power_mw(spec, vos).total() * 1e-3;
  return dynamic + static_w * cycles_.seconds(counts);
}

}  // namespace generic::arch
