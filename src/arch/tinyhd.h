// First-principles model of a tiny-HD-style inference-only HDC engine
// (Khaleghi et al., DATE'21 [8]) built from the same component library as
// the GENERIC model, for an apples-to-apples architectural comparison in
// Figure 9 alongside the published (technology-scaled) anchor:
//   * binary (1-bit) class vectors — the class arrays shrink 16x and the
//     dot product degenerates to XOR+popcount;
//   * no training support: no temporary rows, no norm2 memory, and a
//     running-max comparator instead of the Mitchell divider (all binary
//     class vectors share the same norm);
//   * the same m=16-dims-per-pass encoding frontend.
// What this model quantifies: how much of GENERIC's energy premium over an
// inference-only engine is architectural (trainability: 16-bit arrays,
// norms, divider) versus implementation/technology.
#pragma once

#include "arch/cycle_model.h"
#include "arch/energy_model.h"
#include "arch/spec.h"

namespace generic::arch {

class TinyHdModel {
 public:
  explicit TinyHdModel(const ArchConstants& hw = {});

  /// Access counts of one inference: the GENERIC frontend without the
  /// norm fetch / divider tail.
  AccessCounts infer_counts(const AppSpec& spec) const;

  /// Static power: GENERIC's floor with 1-bit class arrays (16x smaller)
  /// and no norm2 memory.
  double static_power_mw(const AppSpec& spec) const;

  /// Total energy per inference (dynamic + leakage over the run).
  double energy_per_input_j(const AppSpec& spec) const;

  double seconds_per_input(const AppSpec& spec) const;

 private:
  ArchConstants hw_;
  CycleModel cycles_;
  EnergyModel energy_;
};

}  // namespace generic::arch
