// Deterministic closed-loop fleet coordinator (docs/fleet.md).
//
// run_closed_loop() is a discrete-event simulation over VIRTUAL time that
// interleaves two event sources into one global order:
//
//   * client sends — a min-heap keyed by (send_us, tenant, client), so
//     simultaneous sends always resolve in the same tenant/client order;
//   * model-engine events — each serve::ServeEngine's next scheduled
//     completion/retry, via the synchronous ServeEngine::tick() handle
//     (ties against sends go to the engines, lowest model index first).
//
// The loop advances strictly in virtual-time order: before a send at time
// T is routed, every engine event < T (and at T) has been ticked through,
// and every future resolving <= T has been harvested and delivered back to
// its ClientPort in (finish_us, tenant, client) order. Each delivery
// produces the client's next send at finish + think — never in the global
// past — so the whole schedule is a pure function of (FleetConfig, seed).
//
// ClientPort abstracts where the clients live: SimClientPort runs the
// ClientModel in-process (goldens, CI determinism sweeps); the socket
// driver (fleet/socket_driver.h) runs the same loop against real
// generic_fleet_client processes, replaying the identical schedule.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "fleet/client_model.h"
#include "fleet/engine.h"
#include "fleet/types.h"

namespace generic::fleet {

/// One closed-loop client as the coordinator sees it: a first send, then
/// exactly one next send (or done) per delivered response. on_response MAY
/// block (the socket driver waits for the remote client's next frame) —
/// the coordinator is single-threaded by design.
class ClientPort {
 public:
  virtual ~ClientPort() = default;
  virtual std::optional<Send> start() = 0;
  virtual std::optional<Send> on_response(const FleetResponse& resp) = 0;
};

/// In-process port: the ClientModel runs right here.
class SimClientPort : public ClientPort {
 public:
  SimClientPort(const FleetConfig& cfg, std::uint16_t tenant,
                std::uint16_t client, std::vector<std::uint32_t> model_queries)
      : model_(cfg, tenant, client, std::move(model_queries)) {}

  std::optional<Send> start() override { return model_.start(); }
  std::optional<Send> on_response(const FleetResponse& resp) override {
    return model_.on_response(resp);
  }

 private:
  ClientModel model_;
};

/// Build one SimClientPort per configured client, ordered (tenant-major,
/// client ordinal) — the same deterministic order the socket driver
/// reconstructs from HELLO identities.
std::vector<std::unique_ptr<ClientPort>> make_sim_ports(
    const FleetConfig& cfg, const FleetEngine& fleet);

/// Drive the closed loop to completion: every port's requests routed,
/// every response delivered. Returns the number of responses delivered.
/// Call fleet.finish() afterwards for the report.
std::size_t run_closed_loop(FleetEngine& fleet,
                            const std::vector<ClientPort*>& ports);

}  // namespace generic::fleet
