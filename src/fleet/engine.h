// FleetEngine: multi-model, multi-tenant routing over shared compute
// (docs/fleet.md).
//
// One FleetEngine owns a per-model serve::ServeEngine fleet, all sharing a
// single common::thread_pool for the heavy batched predictions. Every
// parsed request passes three gates, in order, all on the virtual clock:
//
//   1. TENANT QUOTA — an exact integer token bucket per tenant
//      (micro-tokens, quota_rps refill, quota_burst cap). Empty bucket ->
//      kQuotaRejected, rtrace kFleetQuota.
//   2. WEIGHTED SHEDDING — a per-model virtual backlog estimator
//      (busy_until advances by service-cost/lanes per admitted request).
//      If the projected delay exceeds the request's priority-class budget
//      (shed_budget_us) the request is shed, rtrace kFleetShed: under a
//      flood, batch traffic turns away ~16x earlier than critical traffic,
//      which is what keeps a high-priority tenant's latency flat while a
//      low-priority tenant storms (chaos tenant_storm pins this).
//   3. MODEL ENGINE — admitted requests become serve::Requests on the
//      model's ServeEngine, which applies its own high-water shedding,
//      deadlines, retries and degradation ladder; rtrace kFleetRoute.
//
// All route/complete/tick calls happen on the single coordinator thread
// (fleet/simulator.h), so fleet state needs no locks, and every tally lands
// in deterministic virtual-time order — the generic.fleet.v1 report is a
// pure function of (FleetConfig, seed).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "fleet/types.h"
#include "hdc/hypervector.h"
#include "model/hdc_classifier.h"
#include "serve/burn_monitor.h"
#include "serve/engine.h"

namespace generic::fleet {

/// One model's servable world: classifier + encoded query set + labels.
struct ModelWorld {
  std::shared_ptr<model::HdcClassifier> classifier;
  std::vector<hdc::IntHV> queries;
  std::vector<int> labels;
};

/// Build a model's world from its spec: seeded drift-stream dataset,
/// fitted GenericEncoder, fit classifier, encoded query set. Pure function
/// of (spec, pool-invariant kernels) — identical for any lane count.
ModelWorld build_world(const ModelSpec& spec, ThreadPool& pool);

/// Per-tenant or per-model serving tally (report view).
struct PartyStats {
  std::uint64_t requests = 0;
  std::array<std::uint64_t, kNumFleetStatuses> statuses{};
  std::uint64_t served = 0;   ///< ok + retried + degraded
  std::uint64_t correct = 0;  ///< served with predicted == ground truth
  obs::HistogramSnapshot latency;  ///< served latency, virtual us
};

/// Everything generic.fleet.v1 reports. Free of wall-clock and
/// thread-count fields: equal inputs render to equal bytes.
struct FleetReport {
  FleetConfig config;
  std::uint64_t requests = 0;
  std::uint64_t makespan_us = 0;
  std::array<std::uint64_t, kNumFleetStatuses> statuses{};
  std::vector<PartyStats> tenants;  ///< by tenant index
  std::vector<PartyStats> models;   ///< by model index
  std::vector<serve::ServeReport> model_reports;  ///< per-model engine view
  std::vector<serve::BurnAlert> slo_alerts;  ///< fleet-level burn edges
};

/// Render as schema `generic.fleet.v1`: fixed field order, "%.9g" doubles.
std::string fleet_report_to_json(const FleetReport& report);
void write_fleet_json(const std::string& path, const FleetReport& report);

/// Shared exporter fragment: one PartyStats object (statuses, accuracy,
/// latency percentiles). Used by the fleet and tenant_storm renderers so
/// the two schemas never drift.
void append_party_json(std::string& out, const PartyStats& s,
                       const char* indent);

class FleetEngine {
 public:
  /// `worlds` must align with cfg.models. The per-model ServeEngines start
  /// immediately, all sharing `pool`.
  FleetEngine(const FleetConfig& cfg, std::vector<ModelWorld> worlds,
              ThreadPool& pool);

  FleetEngine(const FleetEngine&) = delete;
  FleetEngine& operator=(const FleetEngine&) = delete;

  /// Route one send at virtual time s.send_us. Admitted: returns the
  /// engine future (resolve via the coordinator's tick protocol). Refused:
  /// returns nullopt and fills `rejection` with the terminal
  /// kQuotaRejected / kPriorityShed response (already tallied).
  std::optional<serve::ResponseFuture> route(const Send& s,
                                             FleetResponse& rejection);

  /// Convert a resolved engine response into the client-facing
  /// FleetResponse and tally it (statuses, accuracy, latency, burn).
  FleetResponse complete(const Send& s, const serve::Response& r);

  /// Advance model m's engine to `vt` (serve::ServeEngine::tick) and
  /// refresh its cached next-event time.
  void tick_model(std::size_t m, std::uint64_t vt);

  /// Cached next internal event of model m's engine
  /// (serve::ServeEngine::kNoEvent when idle).
  std::uint64_t next_event(std::size_t m) const { return next_event_[m]; }

  std::size_t num_models() const { return engines_.size(); }

  /// Servable query-set sizes, by model (the HELLO_ACK payload).
  std::vector<std::uint32_t> model_queries() const;

  /// Finish every model engine and assemble the fleet report. Call once,
  /// after the closed loop has fully drained.
  FleetReport finish();

 private:
  struct Tenant {
    std::uint64_t tokens_micro = 0;  ///< 1e6 micro-tokens per request
    std::uint64_t last_refill_us = 0;
    std::uint64_t quota_rps = 0;
    std::uint64_t cap_micro = 0;  ///< quota_burst * 1e6
    PriorityClass priority = PriorityClass::kStandard;
  };
  struct Model {
    std::uint64_t busy_until_us = 0;  ///< virtual backlog estimator
    std::uint64_t cost_us = 0;        ///< per-request backlog cost estimate
  };

  /// Live counting twin of PartyStats (histogram still recording).
  struct Tally {
    std::uint64_t requests = 0;
    std::array<std::uint64_t, kNumFleetStatuses> statuses{};
    std::uint64_t served = 0;
    std::uint64_t correct = 0;
    obs::Histogram latency;
  };
  void tally(Tally& t, FleetStatus s, bool served, bool correct,
             std::uint64_t latency_us);
  static PartyStats snapshot(const Tally& t);

  FleetConfig cfg_;
  std::vector<ModelWorld> worlds_;
  std::vector<std::unique_ptr<serve::ServeEngine>> engines_;
  std::vector<std::uint64_t> next_event_;
  std::vector<Tenant> tenants_;
  std::vector<Model> models_;
  std::vector<Tally> tenant_tally_;
  std::vector<Tally> model_tally_;
  std::uint64_t next_engine_id_ = 0;  ///< distinct serve::Request ids
  FleetReport report_;
  serve::BurnMonitor burn_;
  bool finished_ = false;
};

}  // namespace generic::fleet
