// tenant_storm: the fleet's chaos campaign (docs/fleet.md, docs/chaos.md).
//
// One low-priority tenant ("bronze", batch class) floods the fleet at
// roughly 10x its admission quota — a dense client population with tiny
// think times, all pinned on the fastest model. The scenario pins the two
// fairness stories the fleet's admission pipeline exists to tell:
//
//   - the storm is REFUSED: most of the flood dies at the token bucket or
//     the weighted shed gate, never reaching a model engine;
//   - the victims are PROTECTED: the other tenants' served fraction,
//     accuracy and (for the critical tenant) p99 latency stay within the
//     bounds they enjoy in calm weather.
//
// Like every chaos campaign the run is pure virtual time: the report is a
// byte-stable function of (quick, seed), pinned by the golden fixture under
// tests/chaos/golden/tenant_storm.json and compared across --threads in CI.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/engine.h"
#include "fleet/types.h"

namespace generic::fleet {

/// One invariant verdict, mirroring chaos::InvariantResult (kept local so
/// the fleet library does not depend on the chaos orchestrator).
struct StormInvariant {
  std::string name;
  bool enabled = false;
  bool passed = true;
  double value = 0.0;  ///< what the run measured
  double bound = 0.0;  ///< what the scenario demanded
};

struct StormReport {
  std::uint64_t seed = 0;
  bool quick = false;
  std::size_t flood_tenant = 0;  ///< index into fleet.config.tenants
  FleetReport fleet;
  std::vector<StormInvariant> invariants;
  bool passed = false;  ///< every enabled invariant held
};

/// The storm topology: default_fleet_config(quick) with the batch tenant
/// turned into a flood (6 clients, ~250us think, quota cut to 400 rps,
/// pinned on model 0) — offered load ~10x its admission quota.
FleetConfig tenant_storm_config(bool quick);

/// Run the campaign end to end on the simulated ingress path.
/// `threads` only changes wall-clock speed (0 = hardware).
StormReport run_tenant_storm(bool quick, std::uint64_t seed,
                             std::size_t threads);

/// Render as schema `generic.chaos.v1` (scenario "tenant_storm"): fixed
/// field order, "%.9g" doubles, no wall-clock or thread-count fields.
std::string storm_report_to_json(const StormReport& report);
void write_storm_json(const std::string& path, const StormReport& report);

}  // namespace generic::fleet
