#include "fleet/socket_driver.h"

#include <chrono>

namespace generic::fleet {

class SocketFleetDriver::Port : public ClientPort {
 public:
  Port(SocketFleetDriver& driver, PortState& state)
      : driver_(driver), state_(state) {}

  std::optional<Send> start() override { return driver_.pull(state_); }

  std::optional<Send> on_response(const FleetResponse& resp) override {
    net::WireResponse wire;
    wire.id = resp.id;
    wire.status = static_cast<std::uint8_t>(resp.status);
    wire.predicted = resp.predicted;
    wire.margin_micro = resp.margin_micro;
    wire.dims_used = resp.dims_used;
    wire.attempts = resp.attempts;
    wire.finish_us = resp.finish_us;
    wire.latency_us = resp.latency_us;
    wire.version = resp.version;
    wire.rung = resp.rung;
    if (!driver_.server_.send_response(state_.conn, wire)) {
      state_.closed = true;
      driver_.ok_ = false;
      return std::nullopt;
    }
    return driver_.pull(state_);
  }

 private:
  SocketFleetDriver& driver_;
  PortState& state_;
};

SocketFleetDriver::SocketFleetDriver(net::Server& server,
                                     const FleetConfig& cfg, int io_timeout_ms)
    : server_(server), cfg_(cfg), io_timeout_ms_(io_timeout_ms) {
  for (std::size_t t = 0; t < cfg_.tenants.size(); ++t) {
    for (std::size_t c = 0; c < cfg_.tenants[t].clients; ++c) {
      PortState s;
      s.tenant = static_cast<std::uint16_t>(t);
      s.client = static_cast<std::uint16_t>(c);
      states_.push_back(s);
    }
  }
  ports_.reserve(states_.size());
  for (PortState& s : states_)
    ports_.push_back(std::make_unique<Port>(*this, s));
}

SocketFleetDriver::~SocketFleetDriver() = default;

std::vector<ClientPort*> SocketFleetDriver::ports() {
  std::vector<ClientPort*> out;
  out.reserve(ports_.size());
  for (auto& p : ports_) out.push_back(p.get());
  return out;
}

void SocketFleetDriver::dispatch(const net::ServerEvent& ev) {
  using Kind = net::ServerEvent::Kind;
  switch (ev.kind) {
    case Kind::kAccept:
      break;  // identity arrives with the HELLO
    case Kind::kHello: {
      // Map the connection to its declared (tenant, client) slot. The
      // server already validated the tenant against the topology; the
      // client ordinal and uniqueness are fleet-level invariants.
      std::size_t idx = states_.size();
      for (std::size_t i = 0; i < states_.size(); ++i) {
        if (states_[i].tenant == ev.tenant && states_[i].client == ev.client) {
          idx = i;
          break;
        }
      }
      if (idx == states_.size()) {  // client ordinal out of range
        server_.kick(ev.conn, net::ProtoError::kBadPayload);
        ok_ = false;
        break;
      }
      if (states_[idx].connected) {  // duplicate identity
        server_.kick(ev.conn, net::ProtoError::kBadSequence);
        ok_ = false;
        break;
      }
      states_[idx].conn = ev.conn;
      states_[idx].connected = true;
      by_conn_[ev.conn] = idx;
      break;
    }
    case Kind::kRequest: {
      auto it = by_conn_.find(ev.conn);
      if (it == by_conn_.end()) {
        // Request from a connection that never mapped: protocol-level
        // HELLO passed but identity registration failed — kick it.
        server_.kick(ev.conn, net::ProtoError::kBadSequence);
        ok_ = false;
        break;
      }
      PortState& s = states_[it->second];
      Send send;
      send.send_us = ev.req.send_us;
      send.tenant = s.tenant;
      send.client = s.client;
      send.model = ev.req.model;
      send.id = ev.req.id;
      send.query = ev.req.query;
      send.deadline_rel_us = ev.req.deadline_rel_us;
      s.inbox.push_back(send);
      break;
    }
    case Kind::kBye:
    case Kind::kClosed: {
      auto it = by_conn_.find(ev.conn);
      if (it != by_conn_.end()) states_[it->second].closed = true;
      if (ev.error != net::ProtoError::kNone) ok_ = false;
      break;
    }
  }
}

std::optional<Send> SocketFleetDriver::pull(PortState& state) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(io_timeout_ms_);
  for (;;) {
    if (!state.inbox.empty()) {
      Send s = state.inbox.front();
      state.inbox.pop_front();
      return s;
    }
    if (state.closed) return std::nullopt;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) {
      ok_ = false;
      state.closed = true;
      return std::nullopt;
    }
    for (const net::ServerEvent& ev :
         server_.wait_conn(state.conn, static_cast<int>(left.count())))
      dispatch(ev);
  }
}

bool SocketFleetDriver::wait_ready(int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    bool all = true;
    for (const PortState& s : states_)
      all = all && s.connected && !s.inbox.empty();
    if (all) return true;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) return false;
    for (const net::ServerEvent& ev :
         server_.poll_once(static_cast<int>(std::min<long long>(50, left.count()))))
      dispatch(ev);
  }
}

}  // namespace generic::fleet
